package consolidation

// One benchmark per paper artifact (every table and figure of the
// evaluation, plus the Fig. 2 motivation and the Section III-B.4
// applications), regenerating the artifact through internal/experiments in
// Quick mode so `go test -bench=.` stays tractable. For publication-scale
// sweeps run `go run ./cmd/repro` instead.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/queueing"
	"repro/internal/replicate"
	"repro/internal/stats"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Seed: 42, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkFig2Consolidation regenerates the Fig. 2 motivation analysis:
// peak-of-sum vs sum-of-peaks for three diurnal workloads.
func BenchmarkFig2Consolidation(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig5WebIOImpact regenerates Fig. 5: Web throughput vs offered
// rate under the disk-I/O-bound fileset for native Linux and 1..9 VMs, and
// the linear impact-factor fit.
func BenchmarkFig5WebIOImpact(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6WebCPUImpact regenerates Fig. 6: the CPU-bound Web sweep and
// its linear impact-factor fit.
func BenchmarkFig6WebCPUImpact(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7VCPUPinning regenerates Fig. 7: DB throughput with pinned
// vs Xen-scheduled vCPUs.
func BenchmarkFig7VCPUPinning(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8DBImpact regenerates Fig. 8: the TPC-W closed-loop sweep,
// the OS-software ceiling, and the rational impact-factor fit.
func BenchmarkFig8DBImpact(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9WorkloadSelection regenerates Fig. 9: the intensive-workload
// selection knees on 4-server pools.
func BenchmarkFig9WorkloadSelection(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable1Model regenerates Table I: the model's M -> N sizing for
// the case-study rows plus the extended sweep.
func BenchmarkTable1Model(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig10Group1 regenerates Fig. 10: 6 dedicated servers vs 2/3/4
// consolidated servers (the 2-host deployment collapses).
func BenchmarkFig10Group1(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Group2 regenerates Fig. 11: 8 dedicated vs 4 consolidated
// servers with the 1.7x CPU-utilization improvement.
func BenchmarkFig11Group2(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12Power regenerates Fig. 12: total power of both deployments,
// busy and idle.
func BenchmarkFig12Power(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13WorkloadPower regenerates Fig. 13: the workload-only power
// comparison (total minus idle).
func BenchmarkFig13WorkloadPower(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkAllocatorBound regenerates the Section III-B.4 application (1):
// allocator scoring against the M = N bound.
func BenchmarkAllocatorBound(b *testing.B) { benchExperiment(b, "appa") }

// BenchmarkVirtualizationBound regenerates application (2): the ideal-
// virtualization bound.
func BenchmarkVirtualizationBound(b *testing.B) { benchExperiment(b, "appb") }

// BenchmarkModelValidation regenerates the model-vs-simulation loss
// probability sweep behind the paper's "simple but accurate enough" claim.
func BenchmarkModelValidation(b *testing.B) { benchExperiment(b, "modelval") }

// BenchmarkHeterogeneousFleets regenerates the future-work extension:
// heterogeneous fleet planning with packing and simulated validation.
func BenchmarkHeterogeneousFleets(b *testing.B) { benchExperiment(b, "hetero") }

// BenchmarkAblationTrafficForm regenerates the Eq. (5)-reading ablation.
func BenchmarkAblationTrafficForm(b *testing.B) { benchExperiment(b, "ablation-form") }

// BenchmarkAblationServiceSCV regenerates the service-time-insensitivity
// ablation.
func BenchmarkAblationServiceSCV(b *testing.B) { benchExperiment(b, "ablation-scv") }

// BenchmarkAblationBurstiness regenerates the Poisson-assumption
// sensitivity ablation.
func BenchmarkAblationBurstiness(b *testing.B) { benchExperiment(b, "ablation-burst") }

// BenchmarkAblationAllocGranularity regenerates the resource-flowing
// granularity ablation.
func BenchmarkAblationAllocGranularity(b *testing.B) { benchExperiment(b, "ablation-alloc") }

// BenchmarkSolveCaseStudy measures the analytic model itself — the paper's
// Fig. 4 algorithm end to end — independent of any simulation.
func BenchmarkSolveCaseStudy(b *testing.B) {
	m, err := experiments.CaseStudyModel(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDiurnal regenerates the nonstationary-traffic ablation:
// stationary Erlang sizing against a full simulated day of diurnal load.
func BenchmarkAblationDiurnal(b *testing.B) { benchExperiment(b, "ablation-diurnal") }

// BenchmarkReplications measures the parallel replication engine on a fixed
// 16-replication loss-system study, at one worker (the serial baseline) and
// at all CPUs. Results are bit-identical across the two sub-benchmarks by
// construction; only wall-clock should differ.
func BenchmarkReplications(b *testing.B) {
	cfg := queueing.Config{
		Servers:  8,
		Arrivals: workload.NewPoisson(6),
		Service:  stats.NewExponential(1),
		Horizon:  2_000,
		Warmup:   200,
		Seed:     42,
	}
	run := func(b *testing.B, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			set, err := queueing.RunReplications(context.Background(), cfg, replicate.Config{
				Replications: 16,
				Workers:      workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(set.Results) != 16 {
				b.Fatalf("got %d replications, want 16", len(set.Results))
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=numcpu", func(b *testing.B) { run(b, runtime.NumCPU()) })
}
