// Command benchdiff compares two benchmark/manifest JSON files and exits
// non-zero on a thresholded regression — the machine-checkable half of
// the CI bench-regression gate.
//
// Usage:
//
//	benchdiff [-ns-threshold 1.5] [-bytes-threshold 1.5] [-allow-allocs] old.json new.json
//
// Both simbench output (BENCH_simcore.json, a "benchmarks" array) and
// run manifests (a "metrics" snapshot) are accepted; each is flattened
// into metric rows named <benchmark>/ns_per_op etc. Gating rules apply
// by metric suffix:
//
//   - .../ns_per_op regresses when new > old × ns-threshold (wall-clock
//     noise gets a generous multiplicative margin);
//   - .../allocs_per_op regresses on any increase (allocation counts are
//     deterministic — 0 allocs/op is a property, not a measurement);
//   - .../bytes_per_op regresses when new > old × bytes-threshold;
//   - anything else is reported but never gates.
//
// Exit codes: 0 no regression (identical or improved), 1 regression,
// 2 metric present in old but missing from new, 3 usage or read error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Exit codes.
const (
	exitOK         = 0
	exitRegressed  = 1
	exitMissing    = 2
	exitUsageError = 3
)

// options are the gating thresholds.
type options struct {
	nsThreshold    float64 // ratio; new/old above this regresses
	bytesThreshold float64
	allowAllocs    bool // tolerate allocs/op increases
}

// benchFile is the subset of simbench's File / obs.Manifest layout
// benchdiff consumes.
type benchFile struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
	Metrics *metricsBlock `json:"metrics"`
	// A bare manifest carries the snapshot under "metrics"; a manifest
	// envelope inside a bench file is ignored in favour of "benchmarks".
}

type metricsBlock struct {
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// loadMetrics flattens one file into metric rows.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := map[string]float64{}
	switch {
	case len(f.Benchmarks) > 0:
		for _, b := range f.Benchmarks {
			m[b.Name+"/ns_per_op"] = b.NsPerOp
			m[b.Name+"/bytes_per_op"] = float64(b.BytesPerOp)
			m[b.Name+"/allocs_per_op"] = float64(b.AllocsPerOp)
		}
	case f.Metrics != nil:
		for k, v := range f.Metrics.Gauges {
			m[k] = v
		}
		for k, v := range f.Metrics.Counters {
			m[k] = float64(v)
		}
	default:
		return nil, fmt.Errorf("%s: neither a benchmarks array nor a metrics snapshot", path)
	}
	return m, nil
}

// verdict classifies one metric's movement.
type verdict int

const (
	vOK verdict = iota
	vRegressed
	vMissing
	vInfo // not a gated metric
)

// judge applies the suffix rule for one metric.
func judge(name string, old, cur float64, opts options) verdict {
	switch {
	case strings.HasSuffix(name, "/ns_per_op"):
		if cur > old*opts.nsThreshold {
			return vRegressed
		}
	case strings.HasSuffix(name, "/allocs_per_op"):
		if cur > old && !opts.allowAllocs {
			return vRegressed
		}
	case strings.HasSuffix(name, "/bytes_per_op"):
		if cur > old*opts.bytesThreshold {
			return vRegressed
		}
	default:
		return vInfo
	}
	return vOK
}

// diff compares the two metric sets, writes the report, and returns the
// exit code.
func diff(oldM, newM map[string]float64, opts options, out io.Writer) int {
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed, missing := 0, 0
	fmt.Fprintf(out, "%-60s %14s %14s %8s  %s\n", "metric", "old", "new", "delta", "verdict")
	for _, name := range names {
		old := oldM[name]
		cur, ok := newM[name]
		if !ok {
			missing++
			fmt.Fprintf(out, "%-60s %14.4g %14s %8s  MISSING\n", name, old, "-", "-")
			continue
		}
		v := judge(name, old, cur, opts)
		delta := "0%"
		if old != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(cur-old)/old)
		} else if cur != 0 {
			delta = "+inf"
		}
		label := "ok"
		switch v {
		case vRegressed:
			regressed++
			label = "REGRESSED"
		case vInfo:
			label = "info"
		default:
			if cur < old {
				label = "improved"
			}
		}
		fmt.Fprintf(out, "%-60s %14.4g %14.4g %8s  %s\n", name, old, cur, delta, label)
	}
	added := 0
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			added++
		}
	}
	if added > 0 {
		fmt.Fprintf(out, "(%d new metric(s) in the new file, not gated)\n", added)
	}
	switch {
	case regressed > 0:
		fmt.Fprintf(out, "FAIL: %d metric(s) regressed beyond thresholds (ns/op x%.2g, bytes/op x%.2g, allocs strict=%v)\n",
			regressed, opts.nsThreshold, opts.bytesThreshold, !opts.allowAllocs)
		return exitRegressed
	case missing > 0:
		fmt.Fprintf(out, "FAIL: %d metric(s) missing from the new file\n", missing)
		return exitMissing
	}
	fmt.Fprintln(out, "OK: no regressions")
	return exitOK
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nsThreshold := fs.Float64("ns-threshold", 1.5, "ns/op regression ratio (new/old beyond this fails)")
	bytesThreshold := fs.Float64("bytes-threshold", 1.5, "bytes/op regression ratio")
	allowAllocs := fs.Bool("allow-allocs", false, "tolerate allocs/op increases")
	if err := fs.Parse(args); err != nil {
		return exitUsageError
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] old.json new.json")
		return exitUsageError
	}
	if *nsThreshold <= 0 || *bytesThreshold <= 0 ||
		math.IsNaN(*nsThreshold) || math.IsNaN(*bytesThreshold) {
		fmt.Fprintln(stderr, "benchdiff: thresholds must be positive")
		return exitUsageError
	}
	oldM, err := loadMetrics(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return exitUsageError
	}
	newM, err := loadMetrics(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return exitUsageError
	}
	return diff(oldM, newM, options{
		nsThreshold:    *nsThreshold,
		bytesThreshold: *bytesThreshold,
		allowAllocs:    *allowAllocs,
	}, stdout)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
