package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a minimal simbench-shaped file and returns its path.
func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":100,"bytes_per_op":32,"allocs_per_op":1},
  {"name":"BenchmarkB","iterations":1000,"ns_per_op":2000,"bytes_per_op":0,"allocs_per_op":0}
]}`

// TestExitCodes pins benchdiff's contract for the four scenarios CI
// cares about: identical, improved, regressed, missing-metric.
func TestExitCodes(t *testing.T) {
	old := writeBench(t, "old.json", baseBench)
	cases := []struct {
		name     string
		newBody  string
		args     []string
		wantExit int
		wantOut  string
	}{
		{
			name:     "identical",
			newBody:  baseBench,
			wantExit: exitOK,
			wantOut:  "OK: no regressions",
		},
		{
			name: "improved",
			newBody: `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":80,"bytes_per_op":32,"allocs_per_op":1},
  {"name":"BenchmarkB","iterations":1000,"ns_per_op":1500,"bytes_per_op":0,"allocs_per_op":0}
]}`,
			wantExit: exitOK,
			wantOut:  "improved",
		},
		{
			name: "regressed ns/op beyond threshold",
			newBody: `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":200,"bytes_per_op":32,"allocs_per_op":1},
  {"name":"BenchmarkB","iterations":1000,"ns_per_op":2000,"bytes_per_op":0,"allocs_per_op":0}
]}`,
			wantExit: exitRegressed,
			wantOut:  "REGRESSED",
		},
		{
			name: "ns/op within threshold passes",
			newBody: `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":140,"bytes_per_op":32,"allocs_per_op":1},
  {"name":"BenchmarkB","iterations":1000,"ns_per_op":2900,"bytes_per_op":0,"allocs_per_op":0}
]}`,
			wantExit: exitOK,
			wantOut:  "OK: no regressions",
		},
		{
			name: "any allocs/op increase regresses",
			newBody: `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":100,"bytes_per_op":32,"allocs_per_op":1},
  {"name":"BenchmarkB","iterations":1000,"ns_per_op":2000,"bytes_per_op":0,"allocs_per_op":1}
]}`,
			wantExit: exitRegressed,
			wantOut:  "REGRESSED",
		},
		{
			name: "allocs increase tolerated with -allow-allocs",
			newBody: `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":100,"bytes_per_op":32,"allocs_per_op":1},
  {"name":"BenchmarkB","iterations":1000,"ns_per_op":2000,"bytes_per_op":0,"allocs_per_op":1}
]}`,
			args:     []string{"-allow-allocs"},
			wantExit: exitOK,
			wantOut:  "OK: no regressions",
		},
		{
			name: "missing metric",
			newBody: `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":100,"bytes_per_op":32,"allocs_per_op":1}
]}`,
			wantExit: exitMissing,
			wantOut:  "missing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := writeBench(t, "new.json", tc.newBody)
			var stdout, stderr bytes.Buffer
			args := append(append([]string(nil), tc.args...), old, newPath)
			got := run(args, &stdout, &stderr)
			if got != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.wantExit, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.wantOut) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
		})
	}
}

// TestRegressionBeatsMissing: when both occur, the exit code reports the
// regression (the more actionable failure).
func TestRegressionBeatsMissing(t *testing.T) {
	old := writeBench(t, "old.json", baseBench)
	newPath := writeBench(t, "new.json", `{"benchmarks":[
  {"name":"BenchmarkA","iterations":1000,"ns_per_op":500,"bytes_per_op":32,"allocs_per_op":1}
]}`)
	var stdout, stderr bytes.Buffer
	if got := run([]string{old, newPath}, &stdout, &stderr); got != exitRegressed {
		t.Fatalf("exit = %d, want %d (regression should win)\n%s", got, exitRegressed, stdout.String())
	}
}

// TestManifestMetricsAccepted: a bare run manifest (metrics snapshot,
// no benchmarks array) diffs by gauge/counter name.
func TestManifestMetricsAccepted(t *testing.T) {
	old := writeBench(t, "old.json",
		`{"metrics":{"gauges":{"X/ns_per_op":100},"counters":{"events":10}}}`)
	newPath := writeBench(t, "new.json",
		`{"metrics":{"gauges":{"X/ns_per_op":300},"counters":{"events":10}}}`)
	var stdout, stderr bytes.Buffer
	if got := run([]string{old, newPath}, &stdout, &stderr); got != exitRegressed {
		t.Fatalf("exit = %d, want %d\n%s", got, exitRegressed, stdout.String())
	}
	if !strings.Contains(stdout.String(), "events") {
		t.Fatalf("counter row missing from report:\n%s", stdout.String())
	}
}

// TestUsageErrors covers the exit-3 paths: bad flags, wrong arity,
// unreadable file, malformed JSON, nonsense thresholds.
func TestUsageErrors(t *testing.T) {
	old := writeBench(t, "old.json", baseBench)
	bad := writeBench(t, "bad.json", `{`)
	empty := writeBench(t, "empty.json", `{}`)
	cases := [][]string{
		{},
		{old},
		{"-ns-threshold", "-1", old, old},
		{"-no-such-flag", old, old},
		{old, filepath.Join(t.TempDir(), "nope.json")},
		{old, bad},
		{old, empty},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(args, &stdout, &stderr); got != exitUsageError {
			t.Errorf("run(%q) = %d, want %d", args, got, exitUsageError)
		}
	}
}
