// Command consolidate plans a VM-based data center with the paper's utility
// analytic model: given each service's arrival rate, per-resource serving
// rates and virtualization impact factors, it reports the dedicated server
// count M, the consolidated server count N, and the utilization and power
// comparisons (Section III).
//
// Input is either the built-in case study,
//
//	consolidate -casestudy -web 4 -db 4
//
// or a JSON spec:
//
//	consolidate -spec plan.json
//
// with the schema
//
//	{
//	  "lossTarget": 0.05,
//	  "form": "eq5-restricted",            // or "eq5-verbatim", "harmonic"
//	  "power": {"base": 250, "max": 340},  // optional, watts
//	  "services": [
//	    {
//	      "name": "web",
//	      "arrivalRate": 1280,
//	      "servingRates":  {"diskio": 1420, "cpu": 3360},
//	      "impactFactors": {"diskio": 0.98, "cpu": 0.63}
//	    }
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	specPath := flag.String("spec", "", "JSON spec file ('-' for stdin)")
	caseStudy := flag.Bool("casestudy", false, "use the paper's Web+DB case study")
	webServers := flag.Int("web", 4, "case study: dedicated Web pool size")
	dbServers := flag.Int("db", 4, "case study: dedicated DB pool size")
	sensitivity := flag.Float64("sensitivity", 0, "also run a ±FRACTION input-sensitivity sweep (e.g. 0.1)")
	writeSpec := flag.String("write", "", "write the resolved model spec as JSON to this file ('-' for stdout)")
	asJSON := flag.Bool("json", false, "print the solve result as JSON instead of text")
	flag.Parse()

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "consolidate: "+format+"\n", args...)
		os.Exit(1)
	}

	var model *core.Model
	switch {
	case *caseStudy:
		m, err := experiments.CaseStudyModel(*webServers, *dbServers)
		if err != nil {
			die("%v", err)
		}
		model = m
	case *specPath != "":
		var raw []byte
		var err error
		if *specPath == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*specPath)
		}
		if err != nil {
			die("%v", err)
		}
		model, err = parseSpec(raw)
		if err != nil {
			die("%v", err)
		}
	default:
		die("supply -spec FILE or -casestudy (see -h)")
	}

	res, err := model.Solve()
	if err != nil {
		die("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			die("%v", err)
		}
		return
	}
	fmt.Println(res)
	fmt.Println()
	fmt.Println("dedicated plan:")
	for _, sp := range res.Dedicated.PerService {
		fmt.Printf("  %-16s %2d servers (bottleneck: %s)\n", sp.Service, sp.Servers, sp.Bottleneck)
	}
	fmt.Println("consolidated plan:")
	for _, sp := range res.Consolidated.PerService {
		for resName, n := range sp.PerResource {
			fmt.Printf("  resource %-8s needs %2d servers\n", resName, n)
		}
	}

	if *sensitivity > 0 {
		rep, err := model.Sensitivity(*sensitivity)
		if err != nil {
			die("%v", err)
		}
		fmt.Printf("\n±%.0f%% input sensitivity (* = changes the consolidated plan):\n", *sensitivity*100)
		fmt.Print(rep)
	}

	if *writeSpec != "" {
		out := os.Stdout
		if *writeSpec != "-" {
			f, err := os.Create(*writeSpec)
			if err != nil {
				die("%v", err)
			}
			defer f.Close()
			out = f
		}
		if err := model.WriteJSON(out); err != nil {
			die("%v", err)
		}
	}
}

// parseSpec delegates to the library's JSON schema (core.ParseJSONBytes).
func parseSpec(raw []byte) (*core.Model, error) {
	return core.ParseJSONBytes(raw)
}
