// Command consolidate plans a VM-based data center with the paper's utility
// analytic model: given each service's arrival rate, per-resource serving
// rates and virtualization impact factors, it reports the dedicated server
// count M, the consolidated server count N, and the utilization and power
// comparisons (Section III).
//
// Input is the built-in case study,
//
//	consolidate -casestudy -web 4 -db 4
//
// a JSON model spec,
//
//	consolidate -spec plan.json
//
// with the schema
//
//	{
//	  "lossTarget": 0.05,
//	  "form": "eq5-restricted",            // or "eq5-verbatim", "harmonic"
//	  "power": {"base": 250, "max": 340},  // optional, watts
//	  "services": [
//	    {
//	      "name": "web",
//	      "arrivalRate": 1280,
//	      "servingRates":  {"diskio": 1420, "cpu": 3360},
//	      "impactFactors": {"diskio": 0.98, "cpu": 0.63}
//	    }
//	  ]
//	}
//
// or a declarative simulator scenario bridged through the shared
// evaluation layer (internal/eval),
//
//	consolidate -scenario examples/scenarios/casestudy.json -target 0.05
//
// which accepts the same files cmd/simulate runs. With -plan the command
// searches a placement instead of solving M/N: it prints the cheapest
// fleet (min-servers or min-power) whose worst per-service loss meets
// -target, as stable JSON suitable for byte-diffed goldens:
//
//	consolidate -scenario examples/scenarios/plan-hetero.json -plan -objective min-power
//
// A scenario with a "periods" block (named time bins with per-service
// rate multipliers) plans per bin with -plan -periods: each bin gets the
// cheapest feasible fleet, adjacent bins collapse onto one placement
// whenever -migration-cost (Wh per VM move) outweighs the energy saved,
// and the output adds the migration schedule and the day's watt-hours:
//
//	consolidate -scenario examples/scenarios/periods-day.json -plan -periods -migration-cost 12
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/scenario"
)

func main() {
	specPath := flag.String("spec", "", "JSON model spec file ('-' for stdin)")
	scenarioPath := flag.String("scenario", "", "declarative scenario JSON ('-' for stdin), bridged to the analytic model")
	caseStudy := flag.Bool("casestudy", false, "use the paper's Web+DB case study")
	webServers := flag.Int("web", 4, "case study: dedicated Web pool size")
	dbServers := flag.Int("db", 4, "case study: dedicated DB pool size")
	target := flag.Float64("target", experiments.LossTarget, "loss-probability target B in (0,1) for -scenario and -plan")
	doPlan := flag.Bool("plan", false, "search a placement meeting -target instead of solving M/N (requires -scenario)")
	doPeriods := flag.Bool("periods", false, "plan the scenario's time bins as a multi-period schedule (requires -plan and a periods scenario)")
	migrationCost := flag.Float64("migration-cost", 0, "period-plan charge in Wh per VM move, finite and >= 0 (requires -periods)")
	objective := flag.String("objective", plan.MinServers, `plan objective: "min-servers" or "min-power"`)
	planSeed := flag.Int64("plan-seed", 0, "plan annealing seed (0 adopts the scenario's seed)")
	evaluator := flag.String("evaluator", "analytic", `plan candidate scorer: "analytic" or "sim"`)
	sensitivity := flag.Float64("sensitivity", 0, "also run a ±FRACTION input-sensitivity sweep (e.g. 0.1)")
	writeSpec := flag.String("write", "", "write the resolved model spec as JSON to this file ('-' for stdout)")
	asJSON := flag.Bool("json", false, "print the solve result as JSON instead of text")
	flag.Parse()

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "consolidate: "+format+"\n", args...)
		os.Exit(1)
	}

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := checkFlagConflicts(explicit, *scenarioPath, *specPath, *caseStudy, *doPlan, *doPeriods); err != nil {
		die("%v", err)
	}

	var model *core.Model
	switch {
	case *caseStudy:
		m, err := experiments.CaseStudyModel(*webServers, *dbServers)
		if err != nil {
			die("%v", err)
		}
		model = m
	case *scenarioPath != "":
		s, err := loadScenario(*scenarioPath)
		if err != nil {
			die("%v", err)
		}
		if *doPlan {
			out, err := runPlan(s, *target, *objective, *planSeed, *evaluator, *doPeriods, *migrationCost)
			if err != nil {
				die("%v", err)
			}
			os.Stdout.Write(out)
			return
		}
		model, err = eval.ModelFromScenario(s, *target)
		if err != nil {
			die("%v", err)
		}
	case *specPath != "":
		var raw []byte
		var err error
		if *specPath == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*specPath)
		}
		if err != nil {
			die("%v", err)
		}
		model, err = parseSpec(raw)
		if err != nil {
			die("%v", err)
		}
	default:
		die("supply -spec FILE, -scenario FILE or -casestudy (see -h)")
	}

	res, err := model.Solve()
	if err != nil {
		die("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			die("%v", err)
		}
		return
	}
	fmt.Println(res)
	fmt.Println()
	fmt.Println("dedicated plan:")
	for _, sp := range res.Dedicated.PerService {
		fmt.Printf("  %-16s %2d servers (bottleneck: %s)\n", sp.Service, sp.Servers, sp.Bottleneck)
	}
	fmt.Println("consolidated plan:")
	for _, sp := range res.Consolidated.PerService {
		for resName, n := range sp.PerResource {
			fmt.Printf("  resource %-8s needs %2d servers\n", resName, n)
		}
	}

	if *sensitivity > 0 {
		rep, err := model.Sensitivity(*sensitivity)
		if err != nil {
			die("%v", err)
		}
		fmt.Printf("\n±%.0f%% input sensitivity (* = changes the consolidated plan):\n", *sensitivity*100)
		fmt.Print(rep)
	}

	if *writeSpec != "" {
		out := os.Stdout
		if *writeSpec != "-" {
			f, err := os.Create(*writeSpec)
			if err != nil {
				die("%v", err)
			}
			defer f.Close()
			out = f
		}
		if err := model.WriteJSON(out); err != nil {
			die("%v", err)
		}
	}
}

// checkFlagConflicts rejects contradictory combinations up front, before
// any defaulting can paper over them (the cmd/simulate convention).
func checkFlagConflicts(explicit map[string]bool, scenarioPath, specPath string, caseStudy, doPlan, doPeriods bool) error {
	sources := 0
	for _, set := range []bool{scenarioPath != "", specPath != "", caseStudy} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return errors.New("-scenario, -spec and -casestudy are mutually exclusive model sources")
	}
	if !caseStudy {
		for _, name := range []string{"web", "db"} {
			if explicit[name] {
				return fmt.Errorf("-%s shapes the built-in case study and needs -casestudy", name)
			}
		}
	}
	if explicit["target"] && scenarioPath == "" {
		return errors.New("-target needs -scenario: a -spec model carries its own lossTarget and the case study pins 0.05")
	}
	if doPeriods && !doPlan {
		return errors.New("-periods schedules per-bin placements and needs -plan")
	}
	if explicit["migration-cost"] && !doPeriods {
		return errors.New("-migration-cost charges period-plan reconfigurations and needs -periods")
	}
	if doPlan {
		if scenarioPath == "" {
			return errors.New("-plan needs -scenario: the planner searches placements of a declarative scenario")
		}
		for _, name := range []string{"sensitivity", "write", "json"} {
			if explicit[name] {
				return fmt.Errorf("-%s is a solve-mode flag, conflicting with -plan (a plan is always JSON)", name)
			}
		}
		return nil
	}
	for _, name := range []string{"objective", "plan-seed", "evaluator"} {
		if explicit[name] {
			return fmt.Errorf("-%s needs -plan", name)
		}
	}
	return nil
}

// loadScenario reads and parses a declarative scenario ('-' for stdin);
// validation and defaulting happen inside the evaluation layer.
func loadScenario(path string) (scenario.Scenario, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return scenario.Scenario{}, err
		}
		defer f.Close()
		r = f
	}
	return scenario.Parse(r)
}

// runPlan searches a placement for the scenario — a single fleet, or
// with periods a per-bin schedule — and renders it as the stable JSON
// cmd output and CI goldens byte-diff.
func runPlan(s scenario.Scenario, target float64, objective string, seed int64, evaluator string, periods bool, migrationCostWh float64) ([]byte, error) {
	var ev eval.Evaluator
	switch evaluator {
	case "analytic":
		ev = eval.NewAnalytic(nil)
	case "sim":
		ev = eval.NewSim(nil)
	default:
		return nil, fmt.Errorf(`-evaluator must be "analytic" or "sim", got %q`, evaluator)
	}
	spec := plan.Spec{
		Scenario:  s,
		Target:    target,
		Objective: objective,
		Seed:      seed,
	}
	if periods {
		// JSON cannot carry ±Inf, so the encodable CLI surface insists on
		// a finite charge (the library accepts +Inf to force a static
		// plan; experiments use that form directly).
		if math.IsNaN(migrationCostWh) || math.IsInf(migrationCostWh, 0) || migrationCostWh < 0 {
			return nil, fmt.Errorf("-migration-cost %g: want a finite charge >= 0 Wh per VM move", migrationCostWh)
		}
		pp, err := plan.SearchPeriods(context.Background(), ev, nil, spec, migrationCostWh)
		if err != nil {
			return nil, err
		}
		return pp.EncodeJSON()
	}
	p, err := plan.Search(context.Background(), ev, nil, spec)
	if err != nil {
		return nil, err
	}
	return p.EncodeJSON()
}

// parseSpec delegates to the library's JSON schema (core.ParseJSONBytes).
func parseSpec(raw []byte) (*core.Model, error) {
	return core.ParseJSONBytes(raw)
}
