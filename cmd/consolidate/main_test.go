package main

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the plan golden files")

const validSpec = `{
  "lossTarget": 0.05,
  "form": "harmonic",
  "power": {"base": 250, "max": 340},
  "services": [
    {
      "name": "web",
      "arrivalRate": 1280,
      "servingRates":  {"diskio": 1420, "cpu": 3360},
      "impactFactors": {"diskio": 0.98, "cpu": 0.63}
    },
    {
      "name": "db",
      "arrivalRate": 90,
      "servingRates": {"cpu": 100}
    }
  ]
}`

func TestParseSpecValid(t *testing.T) {
	m, err := parseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Services) != 2 {
		t.Fatalf("services = %d", len(m.Services))
	}
	if m.Form != core.TrafficHarmonic {
		t.Fatalf("form = %v", m.Form)
	}
	if m.Power.Base != 250 || m.Power.Max != 340 {
		t.Fatalf("power = %+v", m.Power)
	}
	if m.Services[0].ServingRates[core.DiskIO] != 1420 {
		t.Fatal("serving rates lost")
	}
	if m.Services[0].ImpactFactors[core.CPU] != 0.63 {
		t.Fatal("impact factors lost")
	}
	// The parsed model solves.
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers <= 0 {
		t.Fatal("degenerate plan")
	}
}

func TestParseSpecDefaultsToRestrictedForm(t *testing.T) {
	spec := strings.Replace(validSpec, `"form": "harmonic",`, "", 1)
	m, err := parseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if m.Form != core.TrafficEq5Restricted {
		t.Fatalf("default form = %v", m.Form)
	}
}

// The rejection table refuses contradictory flag combinations instead of
// silently preferring one source.
func TestCheckFlagConflicts(t *testing.T) {
	cases := []struct {
		name         string
		explicit     []string
		scenarioPath string
		specPath     string
		caseStudy    bool
		doPlan       bool
		doPeriods    bool
		wantErr      bool
	}{
		{name: "scenario alone", scenarioPath: "s.json"},
		{name: "plan over scenario", scenarioPath: "s.json", doPlan: true},
		{name: "scenario+spec", scenarioPath: "s.json", specPath: "m.json", wantErr: true},
		{name: "scenario+casestudy", scenarioPath: "s.json", caseStudy: true, wantErr: true},
		{name: "spec+casestudy", specPath: "m.json", caseStudy: true, wantErr: true},
		{name: "web without casestudy", explicit: []string{"web"}, scenarioPath: "s.json", wantErr: true},
		{name: "target without scenario", explicit: []string{"target"}, specPath: "m.json", wantErr: true},
		{name: "plan without scenario", specPath: "m.json", doPlan: true, wantErr: true},
		{name: "plan+json", explicit: []string{"json"}, scenarioPath: "s.json", doPlan: true, wantErr: true},
		{name: "plan+sensitivity", explicit: []string{"sensitivity"}, scenarioPath: "s.json", doPlan: true, wantErr: true},
		{name: "plan+write", explicit: []string{"write"}, scenarioPath: "s.json", doPlan: true, wantErr: true},
		{name: "objective without plan", explicit: []string{"objective"}, scenarioPath: "s.json", wantErr: true},
		{name: "plan-seed without plan", explicit: []string{"plan-seed"}, scenarioPath: "s.json", wantErr: true},
		{name: "evaluator without plan", explicit: []string{"evaluator"}, scenarioPath: "s.json", wantErr: true},
		{name: "target with scenario", explicit: []string{"target"}, scenarioPath: "s.json"},
		{name: "periods plan", explicit: []string{"periods"}, scenarioPath: "s.json", doPlan: true, doPeriods: true},
		{name: "periods without plan", explicit: []string{"periods"}, scenarioPath: "s.json", doPeriods: true, wantErr: true},
		{name: "migration-cost with periods", explicit: []string{"migration-cost"}, scenarioPath: "s.json", doPlan: true, doPeriods: true},
		{name: "migration-cost without periods", explicit: []string{"migration-cost"}, scenarioPath: "s.json", doPlan: true, wantErr: true},
		{name: "migration-cost without plan", explicit: []string{"migration-cost"}, scenarioPath: "s.json", wantErr: true},
	}
	for _, c := range cases {
		explicit := map[string]bool{}
		for _, name := range c.explicit {
			explicit[name] = true
		}
		err := checkFlagConflicts(explicit, c.scenarioPath, c.specPath, c.caseStudy, c.doPlan, c.doPeriods)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

// A scenario file loads through the shared evaluation layer and plans
// deterministically.
func TestRunPlanOnExampleScenario(t *testing.T) {
	s, err := loadScenario("../../examples/scenarios/casestudy.json")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runPlan(s, 0.05, "min-servers", 0, "analytic", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := runPlan(s, 0.05, "min-servers", 0, "analytic", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(again) {
		t.Fatal("plan output not byte-stable")
	}
	if out[len(out)-1] != '\n' {
		t.Fatal("plan output must be newline-terminated for byte-diffed goldens")
	}
	if _, err := runPlan(s, 0.05, "min-servers", 0, "quantum", false, 0); err == nil {
		t.Fatal("unknown evaluator accepted")
	}
}

// The encodable CLI surface pins a finite migration charge: JSON cannot
// carry ±Inf, so non-finite and negative costs are refused up front.
func TestRunPlanPeriodsRejectsNonFiniteCost(t *testing.T) {
	s, err := loadScenario("../../examples/scenarios/periods-day.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, cost := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), -3} {
		if _, err := runPlan(s, 0.05, "min-servers", 0, "analytic", true, cost); err == nil {
			t.Errorf("migration cost %g accepted", cost)
		}
	}
}

// The committed plan goldens are the same files CI's planner-smoke job
// byte-diffs against the real binary's stdout; regenerate with
// `go test ./cmd/consolidate -run TestPlanGoldens -update`.
func TestPlanGoldens(t *testing.T) {
	cases := []struct {
		golden    string
		scenario  string
		objective string
		periods   bool
		costWh    float64
	}{
		{golden: "plan-sharded-fleet.json", scenario: "../../examples/scenarios/sharded-fleet.json", objective: "min-servers"},
		{golden: "plan-hetero.json", scenario: "../../examples/scenarios/plan-hetero.json", objective: "min-power"},
		{golden: "plan-periods.json", scenario: "../../examples/scenarios/periods-day.json", objective: "min-servers", periods: true, costWh: 12},
	}
	for _, c := range cases {
		s, err := loadScenario(c.scenario)
		if err != nil {
			t.Fatalf("%s: %v", c.scenario, err)
		}
		out, err := runPlan(s, 0.05, c.objective, 0, "analytic", c.periods, c.costWh)
		if err != nil {
			t.Fatalf("%s: %v", c.golden, err)
		}
		path := filepath.Join("testdata", "golden", c.golden)
		if *update {
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if !bytes.Equal(out, want) {
			t.Errorf("%s drifted from its golden; got:\n%s", c.golden, out)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"garbage", `not json`},
		{"unknown form", strings.Replace(validSpec, "harmonic", "quantum", 1)},
		{"unknown field", `{"lossTarget":0.05,"bogus":1,"services":[]}`},
		{"invalid model", `{"lossTarget":0.05,"services":[]}`},
		{"bad loss target", strings.Replace(validSpec, "0.05", "1.5", 1)},
	}
	for _, c := range cases {
		if _, err := parseSpec([]byte(c.spec)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
