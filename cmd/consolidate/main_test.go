package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

const validSpec = `{
  "lossTarget": 0.05,
  "form": "harmonic",
  "power": {"base": 250, "max": 340},
  "services": [
    {
      "name": "web",
      "arrivalRate": 1280,
      "servingRates":  {"diskio": 1420, "cpu": 3360},
      "impactFactors": {"diskio": 0.98, "cpu": 0.63}
    },
    {
      "name": "db",
      "arrivalRate": 90,
      "servingRates": {"cpu": 100}
    }
  ]
}`

func TestParseSpecValid(t *testing.T) {
	m, err := parseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Services) != 2 {
		t.Fatalf("services = %d", len(m.Services))
	}
	if m.Form != core.TrafficHarmonic {
		t.Fatalf("form = %v", m.Form)
	}
	if m.Power.Base != 250 || m.Power.Max != 340 {
		t.Fatalf("power = %+v", m.Power)
	}
	if m.Services[0].ServingRates[core.DiskIO] != 1420 {
		t.Fatal("serving rates lost")
	}
	if m.Services[0].ImpactFactors[core.CPU] != 0.63 {
		t.Fatal("impact factors lost")
	}
	// The parsed model solves.
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers <= 0 {
		t.Fatal("degenerate plan")
	}
}

func TestParseSpecDefaultsToRestrictedForm(t *testing.T) {
	spec := strings.Replace(validSpec, `"form": "harmonic",`, "", 1)
	m, err := parseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if m.Form != core.TrafficEq5Restricted {
		t.Fatalf("default form = %v", m.Form)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"garbage", `not json`},
		{"unknown form", strings.Replace(validSpec, "harmonic", "quantum", 1)},
		{"unknown field", `{"lossTarget":0.05,"bogus":1,"services":[]}`},
		{"invalid model", `{"lossTarget":0.05,"services":[]}`},
		{"bad loss target", strings.Replace(validSpec, "0.05", "1.5", 1)},
	}
	for _, c := range cases {
		if _, err := parseSpec([]byte(c.spec)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
