// Command consolidated-load drives a running consolidated service with
// SPECweb-style sessions — diurnal NHPP session arrivals, geometric
// request counts, exponential think gaps — and writes a JSON report with
// throughput, error counts and latency percentiles.
//
//	consolidated-load -url http://127.0.0.1:8080 -duration 10s -o report.json
//
// With -max-p99 and/or -max-error-rate set it doubles as a gate: the exit
// code is 1 when the measured p99 latency or error rate exceeds the
// threshold, which is how CI fails the build on a serving regression.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: 0 on success, 1 on a failed run or a
// violated threshold, 2 on a usage error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("consolidated-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url          = fs.String("url", "", "base URL of the consolidated service (required)")
		duration     = fs.Duration("duration", 10*time.Second, "run length")
		rate         = fs.Float64("rate", 50, "mean session arrival rate (sessions/s)")
		meanRequests = fs.Float64("mean-requests", 5, "mean requests per session (geometric)")
		think        = fs.Duration("think", 50*time.Millisecond, "mean think gap between a session's requests")
		workers      = fs.Int("workers", 64, "maximum concurrent in-flight requests")
		timeout      = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		seed         = fs.Uint64("seed", 1, "schedule seed (same seed, same request sequence)")
		out          = fs.String("o", "", "write the JSON report here ('-' or empty = stdout)")
		maxP99       = fs.Float64("max-p99", 0, "fail (exit 1) if p99 latency exceeds this many milliseconds (0 disables)")
		maxErrRate   = fs.Float64("max-error-rate", -1, "fail (exit 1) if the error rate exceeds this fraction (negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "consolidated-load: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *url == "" {
		fmt.Fprintln(stderr, "consolidated-load: -url is required")
		return 2
	}
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	// A negative threshold would silently disable its gate — in CI that
	// reads as "passing". Reject it as the usage error it is.
	if *maxP99 < 0 {
		fmt.Fprintf(stderr, "consolidated-load: -max-p99 %g is negative (use 0 to disable the latency gate)\n", *maxP99)
		return 2
	}
	if explicit["max-error-rate"] && *maxErrRate < 0 {
		fmt.Fprintf(stderr, "consolidated-load: -max-error-rate %g is negative (omit the flag to disable the error-rate gate)\n", *maxErrRate)
		return 2
	}

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:      *url,
		Duration:     *duration,
		SessionRate:  *rate,
		MeanRequests: *meanRequests,
		ThinkMean:    *think,
		Workers:      *workers,
		Timeout:      *timeout,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "consolidated-load: %v\n", err)
		return 2
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "consolidated-load: encode report: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintf(stderr, "consolidated-load: write report: %v\n", err)
			return 1
		}
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "consolidated-load: write report: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s: %d requests, %.1f req/s, p99 %.2fms, error rate %.4f\n",
			*out, rep.Requests, rep.Throughput, rep.Latency.P99, rep.ErrorRate)
	}

	if rep.Requests == 0 {
		fmt.Fprintln(stderr, "consolidated-load: no requests completed")
		return 1
	}
	failed := false
	if *maxP99 > 0 && rep.Latency.P99 > *maxP99 {
		fmt.Fprintf(stderr, "consolidated-load: p99 %.2fms exceeds threshold %.2fms\n", rep.Latency.P99, *maxP99)
		failed = true
	}
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		fmt.Fprintf(stderr, "consolidated-load: error rate %.4f exceeds threshold %.4f (%d errors: %d timeouts, %d transport)\n",
			rep.ErrorRate, *maxErrRate, rep.Errors, rep.Timeouts, rep.Transport)
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
