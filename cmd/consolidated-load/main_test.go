package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

func startService(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunWritesReportAndPassesGates(t *testing.T) {
	url := startService(t)
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", url, "-duration", "700ms", "-rate", "40", "-seed", "7",
		"-o", out, "-max-p99", "2000", "-max-error-rate", "0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Requests int64 `json:"requests"`
		Errors   int64 `json:"errors"`
		Latency  struct {
			P99 float64 `json:"p99_ms"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if rep.Requests == 0 || rep.Errors != 0 || rep.Latency.P99 <= 0 {
		t.Fatalf("implausible report: %s", data)
	}
}

func TestReportToStdout(t *testing.T) {
	url := startService(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", url, "-duration", "300ms", "-rate", "30",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	var rep map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
}

// TestGateFailsOnErrors: a server that always 500s trips -max-error-rate.
func TestGateFailsOnErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", ts.URL, "-duration", "300ms", "-rate", "30", "-o", filepath.Join(t.TempDir(), "r.json"),
		"-max-error-rate", "0",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("error rate")) {
		t.Fatalf("stderr missing error-rate diagnostic: %s", stderr.String())
	}
}

// TestGateFailsOnP99: an impossible p99 threshold trips the latency gate.
func TestGateFailsOnP99(t *testing.T) {
	url := startService(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", url, "-duration", "300ms", "-rate", "30", "-o", filepath.Join(t.TempDir(), "r.json"),
		"-max-p99", "0.000001",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("p99")) {
		t.Fatalf("stderr missing p99 diagnostic: %s", stderr.String())
	}
}

func TestUsage(t *testing.T) {
	cases := [][]string{
		{},                                      // missing -url
		{"-no-such-flag"},                       // unknown flag
		{"-url", "x", "stray"},                  // positional
		{"-url", "http://e", "-duration", "0s"}, // rejected by loadgen config validation
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %s)", args, code, stderr.String())
		}
	}
}

// A negative gate threshold is a usage error (exit 2) with a message
// naming the flag — never a silently disabled gate.
func TestNegativeGateThresholdsRejected(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-url", "http://e", "-max-p99", "-1"}, "-max-p99"},
		{[]string{"-url", "http://e", "-max-error-rate", "-0.5"}, "-max-error-rate"},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), c.args, &stdout, &stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %s)", c.args, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), c.want) {
			t.Fatalf("run(%v) stderr %q does not name %s", c.args, stderr.String(), c.want)
		}
	}
	// The default -max-error-rate (-1, never set) still just disables the
	// gate; only an explicit negative is rejected. Missing -url keeps this
	// from starting a run.
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{}, &stdout, &stderr); code != 2 ||
		strings.Contains(stderr.String(), "max-error-rate") {
		t.Fatalf("default thresholds tripped the negative-gate check: %s", stderr.String())
	}
}
