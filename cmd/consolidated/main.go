// Command consolidated serves the capacity-planning API over HTTP/JSON:
// the paper's analytic questions as single-query GET endpoints
// (/v1/servers, /v1/loss), a batch endpoint (/v1/batch), what-if sweeps
// lowered onto the sweep engine (/v1/sweep), and operational endpoints
// (/healthz, /readyz, /metrics).
//
//	consolidated -addr 127.0.0.1:8080 -cache artifacts/cache
//
// On SIGINT/SIGTERM the server flips /readyz to 503 (so load balancers
// stop sending traffic), then drains in-flight connections for up to
// -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pool"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: 0 on a clean serve-and-drain cycle, 1
// on a runtime failure, 2 on a usage error.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("consolidated", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		cacheDir    = fs.String("cache", "", "sweep result cache directory (empty disables caching)")
		workers     = fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
		reqTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request work bound for POST endpoints")
		drain       = fs.Duration("drain", 10*time.Second, "graceful shutdown drain window")
		maxBody     = fs.Int64("max-body", 1<<20, "maximum POST body bytes")
		maxSweep    = fs.Int("max-sweep-points", 256, "maximum expanded grid size per sweep request")
		maxBatch    = fs.Int("max-batch", 4096, "maximum queries per batch request")
		readHeader  = fs.Duration("read-header-timeout", 5*time.Second, "connection read-header timeout")
		idleTimeout = fs.Duration("idle-timeout", 60*time.Second, "keep-alive idle timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "consolidated: unexpected arguments %q\n", fs.Args())
		return 2
	}

	cfg := serve.Config{
		MaxBodyBytes:    *maxBody,
		MaxBatchQueries: *maxBatch,
		MaxSweepPoints:  *maxSweep,
		RequestTimeout:  *reqTimeout,
	}
	if *workers != 0 {
		p, err := pool.New(*workers)
		if err != nil {
			fmt.Fprintf(stderr, "consolidated: %v\n", err)
			return 2
		}
		cfg.Pool = p
	}
	if *cacheDir != "" {
		cache, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "consolidated: open cache: %v\n", err)
			return 1
		}
		cfg.Cache = cache
	}

	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "consolidated: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "consolidated: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: *readHeader,
		IdleTimeout:       *idleTimeout,
	}

	// The "listening on" line is the boot handshake: tests and the CI
	// smoke job wait for it before sending traffic.
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "consolidated: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Shutdown sequence: stop advertising readiness first, then drain.
	srv.SetReady(false)
	fmt.Fprintf(stdout, "shutting down (drain %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "consolidated: drain: %v\n", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "consolidated: serve: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "bye")
	return 0
}
