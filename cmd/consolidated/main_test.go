package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// bootServer starts run() on an ephemeral port and returns the base URL
// plus a shutdown func that cancels the context and returns the exit code.
func bootServer(t *testing.T, extraArgs ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	done := make(chan int, 1)
	go func() {
		code := run(ctx, args, pw, &stderr)
		pw.Close()
		done <- code
	}()

	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		cancel()
		t.Fatalf("no boot line: %v (stderr %q)", err, stderr.String())
	}
	go io.Copy(io.Discard, pr) // keep later writes from blocking the pipe
	const prefix = "listening on "
	if !strings.HasPrefix(line, prefix) {
		cancel()
		t.Fatalf("unexpected boot line %q", line)
	}
	base := strings.TrimSpace(strings.TrimPrefix(line, prefix))

	var once sync.Once
	shutdown := func() int {
		once.Do(cancel)
		select {
		case code := <-done:
			done <- code
			return code
		case <-time.After(15 * time.Second):
			t.Fatalf("server did not shut down (stderr %q)", stderr.String())
			return -1
		}
	}
	t.Cleanup(func() { shutdown() })
	return base, shutdown
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeAndGracefulShutdown(t *testing.T) {
	base, shutdown := bootServer(t)

	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz %d", code)
	}
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("readyz %d", code)
	}
	code, body := get(t, base+"/v1/servers?rho=120&target=0.001")
	if code != 200 {
		t.Fatalf("servers %d: %s", code, body)
	}
	var ans struct {
		Servers int `json:"servers"`
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Servers != 151 {
		t.Fatalf("servers = %d, want 151", ans.Servers)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !bytes.Contains(body, []byte("http/servers/requests")) {
		t.Fatalf("metrics %d: %s", code, body)
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestShutdownDrainsInflight: a request in flight when shutdown starts
// still completes.
func TestShutdownDrainsInflight(t *testing.T) {
	base, shutdown := bootServer(t, "-drain", "10s")

	// A sweep is the slowest endpoint we have; fire it and shut down
	// while it runs.
	body := `{"name":"drain","base":{"name":"d","mode":"consolidated","services":[{"profile":{"preset":"specweb-ecommerce"},"overhead":{"preset":"web"},"arrivals":{"kind":"poisson","rate":400},"dedicated_servers":2}],"fleet":{"hosts":2},"horizon":12,"seed":7},"axes":[{"path":"fleet.hosts","values":[2,3]}]}`
	type result struct {
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		resc <- result{code: resp.StatusCode}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the server

	if code := shutdown(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", res.err)
	}
	if res.code != 200 {
		t.Fatalf("in-flight request status %d, want 200", res.code)
	}
}

func TestCacheFlag(t *testing.T) {
	dir := t.TempDir()
	base, _ := bootServer(t, "-cache", dir)
	body := `{"name":"cached","base":{"name":"c","mode":"consolidated","services":[{"profile":{"preset":"specweb-ecommerce"},"overhead":{"preset":"web"},"arrivals":{"kind":"poisson","rate":400},"dedicated_servers":2}],"fleet":{"hosts":2},"horizon":12,"seed":7},"axes":[{"path":"fleet.hosts","values":[2]}]}`
	for pass := 0; pass < 2; pass++ {
		resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("pass %d: status %d: %s", pass, resp.StatusCode, data)
		}
		var sr struct {
			Points []struct {
				CacheHit bool `json:"cache_hit"`
			} `json:"points"`
		}
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if want := pass == 1; len(sr.Points) != 1 || sr.Points[0].CacheHit != want {
			t.Fatalf("pass %d: cache_hit = %+v, want %v", pass, sr.Points, want)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-workers", "-3"},
	}
	for _, args := range cases {
		t.Run(fmt.Sprint(args), func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(context.Background(), args, &out, &errb); code != 2 {
				t.Fatalf("run(%v) = %d, want 2 (stderr %q)", args, code, errb.String())
			}
		})
	}
}

func TestListenFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errb.String())
	}
}
