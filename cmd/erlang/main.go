// Command erlang is an Erlang loss-formula calculator — the paper's Eq. (1)
// and (2) machinery exposed on the command line.
//
// Modes:
//
//	erlang -n 8 -rho 5            blocking probability B(n, rho)
//	erlang -rho 5 -target 0.01    smallest n with B(n, rho) <= target
//	erlang -n 8 -target 0.01      largest admissible traffic rho
//	erlang -n 8 -rho 5 -c         Erlang C waiting probability instead
//	erlang -n 8 -rho 5 -dist      stationary busy-server distribution
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/erlang"
)

func main() {
	n := flag.Int("n", 0, "number of servers")
	rho := flag.Float64("rho", -1, "offered traffic in Erlangs")
	target := flag.Float64("target", -1, "target loss probability")
	useC := flag.Bool("c", false, "compute Erlang C (waiting) instead of Erlang B")
	dist := flag.Bool("dist", false, "print the stationary busy-server distribution")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintf(os.Stderr, "erlang: %v\n", err)
		os.Exit(1)
	}

	switch {
	case *dist && *n > 0 && *rho >= 0:
		pi, err := erlang.StateDistribution(*n, *rho)
		if err != nil {
			die(err)
		}
		for k, p := range pi {
			fmt.Printf("pi[%d] = %.6g\n", k, p)
		}
	case *n > 0 && *rho >= 0 && *target < 0:
		if *useC {
			c, err := erlang.C(*n, *rho)
			if err != nil {
				die(err)
			}
			fmt.Printf("ErlangC(n=%d, rho=%g) = %.6g\n", *n, *rho, c)
			return
		}
		b, err := erlang.B(*n, *rho)
		if err != nil {
			die(err)
		}
		util, err := erlang.Utilization(*n, *rho)
		if err != nil {
			die(err)
		}
		fmt.Printf("ErlangB(n=%d, rho=%g) = %.6g (utilization %.4f)\n", *n, *rho, b, util)
	case *rho >= 0 && *target > 0 && *n == 0:
		servers, err := erlang.Servers(*rho, *target, 0)
		if err != nil {
			die(err)
		}
		fmt.Printf("Servers(rho=%g, B<=%g) = %d\n", *rho, *target, servers)
	case *n > 0 && *target > 0 && *rho < 0:
		traffic, err := erlang.Traffic(*n, *target)
		if err != nil {
			die(err)
		}
		fmt.Printf("Traffic(n=%d, B<=%g) = %.6g Erlangs\n", *n, *target, traffic)
	default:
		fmt.Fprintln(os.Stderr, "erlang: supply two of -n, -rho, -target (see -h)")
		os.Exit(2)
	}
}
