// Command erlang is an Erlang loss-formula calculator — the paper's Eq. (1)
// and (2) machinery exposed on the command line.
//
// Modes:
//
//	erlang -n 8 -rho 5            blocking probability B(n, rho)
//	erlang -rho 5 -target 0.01    smallest n with B(n, rho) <= target
//	erlang -n 8 -target 0.01      largest admissible traffic rho
//	erlang -n 8 -rho 5 -c         Erlang C waiting probability instead
//	erlang -n 8 -rho 5 -dist      stationary busy-server distribution
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/erlang"
)

// run is the testable entry point; it mirrors main's exit codes:
// 0 success, 1 computation error, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("erlang", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 0, "number of servers")
	rho := fs.Float64("rho", -1, "offered traffic in Erlangs")
	target := fs.Float64("target", -1, "target loss probability")
	useC := fs.Bool("c", false, "compute Erlang C (waiting) instead of Erlang B")
	dist := fs.Bool("dist", false, "print the stationary busy-server distribution")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "erlang: %v\n", err)
		return 1
	}

	switch {
	case *dist && *n > 0 && *rho >= 0:
		pi, err := erlang.StateDistribution(*n, *rho)
		if err != nil {
			return fail(err)
		}
		for k, p := range pi {
			fmt.Fprintf(stdout, "pi[%d] = %.6g\n", k, p)
		}
	case *n > 0 && *rho >= 0 && *target < 0:
		if *useC {
			c, err := erlang.C(*n, *rho)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "ErlangC(n=%d, rho=%g) = %.6g\n", *n, *rho, c)
			return 0
		}
		b, err := erlang.B(*n, *rho)
		if err != nil {
			return fail(err)
		}
		util, err := erlang.Utilization(*n, *rho)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "ErlangB(n=%d, rho=%g) = %.6g (utilization %.4f)\n", *n, *rho, b, util)
	case *rho >= 0 && *target > 0 && *n == 0:
		servers, err := erlang.Servers(*rho, *target, 0)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "Servers(rho=%g, B<=%g) = %d\n", *rho, *target, servers)
	case *n > 0 && *target > 0 && *rho < 0:
		traffic, err := erlang.Traffic(*n, *target)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "Traffic(n=%d, B<=%g) = %.6g Erlangs\n", *n, *target, traffic)
	default:
		fmt.Fprintln(stderr, "erlang: supply two of -n, -rho, -target (see -h)")
		return 2
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
