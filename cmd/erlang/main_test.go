package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestGoldenOutputs pins the CLI's exact output for each mode, so
// formatting and numeric changes both show up in review.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantExit int
		want     string // exact stdout
	}{
		{
			name:     "erlang B",
			args:     []string{"-n", "8", "-rho", "5"},
			wantExit: 0,
			want:     "ErlangB(n=8, rho=5) = 0.0700479 (utilization 0.5812)\n",
		},
		{
			name:     "erlang C",
			args:     []string{"-n", "8", "-rho", "5", "-c"},
			wantExit: 0,
			want:     "ErlangC(n=8, rho=5) = 0.167267\n",
		},
		{
			name:     "dimension servers",
			args:     []string{"-rho", "5", "-target", "0.01"},
			wantExit: 0,
			want:     "Servers(rho=5, B<=0.01) = 11\n",
		},
		{
			name:     "admissible traffic",
			args:     []string{"-n", "8", "-target", "0.01"},
			wantExit: 0,
			want:     "Traffic(n=8, B<=0.01) = 3.12756 Erlangs\n",
		},
		{
			name:     "state distribution",
			args:     []string{"-n", "3", "-rho", "2", "-dist"},
			wantExit: 0,
			want: "pi[0] = 0.157895\n" +
				"pi[1] = 0.315789\n" +
				"pi[2] = 0.315789\n" +
				"pi[3] = 0.210526\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.wantExit {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.wantExit, stderr.String())
			}
			if stdout.String() != tc.want {
				t.Fatalf("stdout = %q, want %q", stdout.String(), tc.want)
			}
		})
	}
}

// TestErrorExits pins the two failure modes: usage errors exit 2 and
// computation errors exit 1, both reporting on stderr only.
func TestErrorExits(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantExit int
		wantErr  string
	}{
		{
			name:     "no mode selected",
			args:     []string{"-n", "8"},
			wantExit: 2,
			wantErr:  "supply two of",
		},
		{
			name:     "all three flags is ambiguous",
			args:     []string{"-n", "8", "-rho", "5", "-target", "0.01"},
			wantExit: 2,
			wantErr:  "supply two of",
		},
		{
			name:     "unknown flag",
			args:     []string{"-bogus"},
			wantExit: 2,
			wantErr:  "flag provided but not defined",
		},
		{
			name:     "invalid target",
			args:     []string{"-rho", "5", "-target", "1.5"},
			wantExit: 1,
			wantErr:  "invalid input",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstderr: %s", got, tc.wantExit, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("unexpected stdout: %q", stdout.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr.String(), tc.wantErr)
			}
		})
	}
}
