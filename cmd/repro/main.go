// Command repro regenerates the paper's evaluation artifacts — every table
// and figure of Section IV plus the Fig. 2 motivation analysis and this
// repository's extension experiments — from the simulation substrates.
//
// Usage:
//
//	repro [-seed N] [-quick] [-parallel N] [-cache DIR] [-o DIR] [-list] [id ...]
//
// With no ids, every experiment runs in paper order. Use -list to see the
// available ids and -o to also write each artifact as a markdown file.
//
// All experiments share one simulation concurrency budget: -parallel sizes
// a single worker pool (0 = GOMAXPROCS) that every simulation unit — sweep
// point, replication, ablation run — draws from, so nothing oversubscribes
// no matter how many experiments are in flight. Completed simulation points
// are memoized in a content-addressed cache under -cache (keyed by the
// resolved scenario, the replication config and the engine version); a
// rerun with the same seed reads them back instead of simulating. The pool
// and per-experiment cache counters land in the run manifest.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/profiling"
	"repro/internal/sweep"
)

// outcome carries one experiment's results back to the printing loop.
type outcome struct {
	exp     experiments.Experiment
	tables  []*experiments.Table
	elapsed time.Duration
	err     error
}

func main() {
	seed := flag.Uint64("seed", 42, "root random seed for all simulations")
	quick := flag.Bool("quick", false, "shrink horizons and sweeps (~8x faster, noisier)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", 0, "simulation concurrency budget shared by all experiments (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "artifacts/cache", "content-addressed result cache directory; empty disables caching")
	outDir := flag.String("o", "", "also write each artifact as markdown into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	manifest := flag.String("manifest", "repro_manifest.json", "write a run manifest (config, seed, git rev, timings, per-experiment wall times, cache and pool counters) to this file; empty disables")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	man := obs.NewManifest("repro", *seed)

	p, err := pool.New(*parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: -parallel: %v\n", err)
		os.Exit(2)
	}
	var cache *sweep.Cache
	if *cacheDir != "" {
		cache, err = sweep.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: -cache: %v\n", err)
			os.Exit(1)
		}
	}
	reg := obs.NewRegistry()
	p.Observe(reg)
	engine := sweep.NewEngine(p, cache, reg)

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	ids := flag.Args()
	var todo []experiments.Experiment
	if len(ids) == 0 {
		todo = experiments.All()
	} else {
		for _, id := range ids {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}

	// Every experiment launches immediately: experiments are orchestrators
	// and hold no pool slots themselves, so in-flight parallelism is
	// bounded where it matters — at the simulation units, by the one shared
	// pool. Results print in submission order, so output stays
	// deterministic regardless of completion order.
	results := make([]outcome, len(todo))
	var wg sync.WaitGroup
	for i := range todo {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			start := time.Now()
			ecfg := cfg
			ecfg.Engine = engine.Scoped(todo[idx].ID)
			tables, err := todo[idx].Run(ecfg)
			results[idx] = outcome{
				exp:     todo[idx],
				tables:  tables,
				elapsed: time.Since(start),
				err:     err,
			}
		}(i)
	}
	wg.Wait()

	failed := false
	for _, res := range results {
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", res.exp.ID, res.err)
			failed = true
			continue
		}
		fmt.Printf("### %s — %s (%.1fs)\n\n", res.exp.ID, res.exp.Title, res.elapsed.Seconds())
		for _, t := range res.tables {
			fmt.Println(t.String())
		}
		if *outDir != "" {
			if err := writeMarkdown(*outDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "repro: writing %s: %v\n", res.exp.ID, err)
				failed = true
			}
		}
	}
	if *outDir != "" && !failed {
		if err := writeIndex(*outDir, results); err != nil {
			fmt.Fprintf(os.Stderr, "repro: writing index: %v\n", err)
			failed = true
		}
	}
	if *manifest != "" {
		ids := make([]string, len(todo))
		for i, e := range todo {
			ids[i] = e.ID
		}
		man.Config = map[string]any{
			"quick":       *quick,
			"parallel":    p.Size(),
			"cache_dir":   *cacheDir,
			"experiments": ids,
		}
		ran := reg.Counter("repro/experiments_run")
		failures := reg.Counter("repro/experiments_failed")
		for _, res := range results {
			ran.Inc()
			if res.err != nil {
				failures.Inc()
				continue
			}
			reg.Gauge("repro/" + res.exp.ID + "/wall_seconds").Set(res.elapsed.Seconds())
		}
		if err := man.Finish(reg.Snapshot()).WriteFile(*manifest); err != nil {
			fmt.Fprintf(os.Stderr, "repro: writing manifest: %v\n", err)
			failed = true
		} else {
			fmt.Printf("run manifest written to %s\n", *manifest)
		}
	}
	if failed {
		stopProfiles() // os.Exit skips deferred calls
		os.Exit(1)
	}
}

// writeMarkdown writes one experiment's tables to <dir>/<id>.md.
func writeMarkdown(dir string, res outcome) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n\n", res.exp.ID, res.exp.Title)
	fmt.Fprintf(&b, "Generated in %.1fs.\n\n", res.elapsed.Seconds())
	for _, t := range res.tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(dir, res.exp.ID+".md"), []byte(b.String()), 0o644)
}

// writeIndex writes a README linking the artifacts.
func writeIndex(dir string, results []outcome) error {
	var b strings.Builder
	b.WriteString("# Reproduced artifacts\n\n")
	sorted := append([]outcome(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].exp.ID < sorted[j].exp.ID })
	for _, res := range sorted {
		if res.err != nil {
			continue
		}
		fmt.Fprintf(&b, "- [%s](%s.md) — %s\n", res.exp.ID, res.exp.ID, res.exp.Title)
	}
	return os.WriteFile(filepath.Join(dir, "README.md"), []byte(b.String()), 0o644)
}
