// Command simbench runs the simulation-core benchmarks — the
// microbenchmarks (BenchmarkStationHighOccupancy, BenchmarkDesimSchedule*,
// BenchmarkTimingWheel, BenchmarkSweep*, BenchmarkServe*) plus the
// whole-pipeline macro
// benchmarks BenchmarkRepro, BenchmarkShardedRun and BenchmarkPlan — through `go test
// -bench` and records ns/op, B/op, allocs/op and (for the whole-run
// benchmarks) events/s in a JSON file, so the performance trajectory of
// the hot path is tracked in-repo from PR to PR.
//
// Usage:
//
//	go run ./cmd/simbench [-o BENCH_simcore.json] [-benchtime 20000x] [-macrotime 30x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Record is one benchmark measurement.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// EventsPerSec is the simulator's aggregate event rate, reported only
	// by the whole-run benchmarks (BenchmarkShardedRun).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// File is the BENCH_simcore.json layout: the legacy top-level fields
// (kept so older tooling still parses the file), the shared run-manifest
// envelope carrying provenance and a gauge mirror of every measurement,
// and the benchmark records themselves.
type File struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	BenchTime   string        `json:"bench_time"`
	Manifest    *obs.Manifest `json:"manifest,omitempty"`
	Benchmarks  []Record      `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
// BenchmarkStationHighOccupancy/k=1000-8  20000  215.2 ns/op  32 B/op  1 allocs/op
// with an optional custom events/s metric between ns/op and the -benchmem
// columns, e.g.
// BenchmarkShardedRun/shards=4-8  30  49581163 ns/op  3011370 events/s  ...
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.eE+]+) events/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// runBench executes one `go test -bench` invocation and parses its rows.
// benchmem is off for the parallel whole-run benchmark: its allocation
// counts jitter with goroutine scheduling, and the allocs gate treats any
// increase as a regression.
func runBench(pattern, benchtime string, benchmem bool, pkgs ...string) []Record {
	args := []string{"test", "-run", "^$", "-bench", pattern}
	if benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, "-benchtime", benchtime)
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	var records []Record
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var eps float64
		var bytes, allocs int64
		if m[4] != "" {
			eps, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			bytes, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			allocs, _ = strconv.ParseInt(m[6], 10, 64)
		}
		records = append(records, Record{
			Name:         m[1],
			Iterations:   iters,
			NsPerOp:      ns,
			BytesPerOp:   bytes,
			AllocsPerOp:  allocs,
			EventsPerSec: eps,
		})
	}
	return records
}

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output file")
	benchtime := flag.String("benchtime", "20000x", "go test -benchtime value for the microbenchmarks (a fixed count keeps runs comparable)")
	macrotime := flag.String("macrotime", "30x", "go test -benchtime value for the whole-run BenchmarkShardedRun (tens of ms per op)")
	flag.Parse()

	man := obs.NewManifest("simbench", 0)
	man.Config = map[string]string{"benchtime": *benchtime, "macrotime": *macrotime}

	records := runBench(
		"BenchmarkStationHighOccupancy|BenchmarkDesimSchedule|BenchmarkTimingWheel|BenchmarkSweep|BenchmarkRepro|BenchmarkServe",
		*benchtime, true,
		"./internal/cluster", "./internal/desim", "./internal/sweep", "./internal/serve")
	// The whole-run shard benchmark is ~10^5 slower per op than the
	// microbenchmarks; a fixed 20000x count would run for hours, so it
	// gets its own much smaller fixed count.
	records = append(records, runBench("BenchmarkShardedRun", *macrotime, false, "./internal/cluster")...)
	// The placement planner runs hundreds of evaluations per op (~20 ms);
	// like the sharded run it gets the macro count, and its pool-parallel
	// batches make allocation counts jitter, so -benchmem stays off.
	records = append(records, runBench("BenchmarkPlan", *macrotime, false, "./internal/plan")...)
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "simbench: no benchmark results parsed")
		os.Exit(1)
	}

	verCmd := exec.Command("go", "env", "GOVERSION")
	ver, _ := verCmd.Output()

	// Mirror every measurement into the manifest's metric snapshot so
	// bench files and run manifests share one machine-readable shape.
	reg := obs.NewRegistry()
	for _, r := range records {
		reg.Gauge(r.Name + "/ns_per_op").Set(r.NsPerOp)
		reg.Gauge(r.Name + "/bytes_per_op").Set(float64(r.BytesPerOp))
		reg.Gauge(r.Name + "/allocs_per_op").Set(float64(r.AllocsPerOp))
		if r.EventsPerSec > 0 {
			reg.Gauge(r.Name + "/events_per_sec").Set(r.EventsPerSec)
		}
	}
	man.Finish(reg.Snapshot())

	data, err := json.MarshalIndent(File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   strings.TrimSpace(string(ver)),
		BenchTime:   *benchtime,
		Manifest:    man,
		Benchmarks:  records,
	}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range records {
		fmt.Printf("%-45s %12.1f ns/op %6d B/op %4d allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/s", r.EventsPerSec)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s\n", *out)
}
