// Command simbench runs the simulation-core benchmarks — the
// microbenchmarks (BenchmarkStationHighOccupancy, BenchmarkDesimSchedule*,
// BenchmarkSweep*) plus the whole-pipeline macro benchmark BenchmarkRepro —
// through `go test -bench` and records ns/op, B/op and allocs/op in a JSON
// file, so the performance trajectory of the hot path is tracked in-repo
// from PR to PR.
//
// Usage:
//
//	go run ./cmd/simbench [-o BENCH_simcore.json] [-benchtime 20000x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Record is one benchmark measurement.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the BENCH_simcore.json layout: the legacy top-level fields
// (kept so older tooling still parses the file), the shared run-manifest
// envelope carrying provenance and a gauge mirror of every measurement,
// and the benchmark records themselves.
type File struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	BenchTime   string        `json:"bench_time"`
	Manifest    *obs.Manifest `json:"manifest,omitempty"`
	Benchmarks  []Record      `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
// BenchmarkStationHighOccupancy/k=1000-8  20000  215.2 ns/op  32 B/op  1 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output file")
	benchtime := flag.String("benchtime", "20000x", "go test -benchtime value (a fixed count keeps runs comparable)")
	flag.Parse()

	man := obs.NewManifest("simbench", 0)
	man.Config = map[string]string{"benchtime": *benchtime}

	args := []string{
		"test", "-run", "^$",
		"-bench", "BenchmarkStationHighOccupancy|BenchmarkDesimSchedule|BenchmarkSweep|BenchmarkRepro",
		"-benchmem", "-benchtime", *benchtime,
		"./internal/cluster", "./internal/desim", "./internal/sweep",
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	var records []Record
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytes, allocs int64
		if m[4] != "" {
			bytes, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		records = append(records, Record{
			Name:        m[1],
			Iterations:  iters,
			NsPerOp:     ns,
			BytesPerOp:  bytes,
			AllocsPerOp: allocs,
		})
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "simbench: no benchmark results parsed")
		os.Exit(1)
	}

	verCmd := exec.Command("go", "env", "GOVERSION")
	ver, _ := verCmd.Output()

	// Mirror every measurement into the manifest's metric snapshot so
	// bench files and run manifests share one machine-readable shape.
	reg := obs.NewRegistry()
	for _, r := range records {
		reg.Gauge(r.Name + "/ns_per_op").Set(r.NsPerOp)
		reg.Gauge(r.Name + "/bytes_per_op").Set(float64(r.BytesPerOp))
		reg.Gauge(r.Name + "/allocs_per_op").Set(float64(r.AllocsPerOp))
	}
	man.Finish(reg.Snapshot())

	data, err := json.MarshalIndent(File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   strings.TrimSpace(string(ver)),
		BenchTime:   *benchtime,
		Manifest:    man,
		Benchmarks:  records,
	}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range records {
		fmt.Printf("%-45s %12.1f ns/op %6d B/op %4d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %s\n", *out)
}
