// Command simulate runs the data-center simulator on a declarative
// scenario and prints per-service QoS, per-host utilization and power —
// the direct way to try "what if I consolidate my 4+4 pools onto 3 hosts?"
//
// The flags below are sugar for building the case-study scenario; the same
// pipeline accepts arbitrary scenarios as JSON (see examples/scenarios/):
//
//	simulate -mode dedicated -web-servers 4 -db-servers 4
//	simulate -mode consolidated -hosts 4 -alloc proportional -period 0.5 -cost 0.02
//	simulate -mode consolidated -hosts 3 -mtbf 300 -mttr 30   (failure injection)
//	simulate -reps 32 -precision 0.05 -workers 4 -timeout 2m  (CI-driven early stop)
//	simulate -scenario examples/scenarios/casestudy.json
//	simulate -preset fig9-db-closed
//	simulate -dump-scenario | simulate -scenario -             (identical run)
//	simulate -sweep examples/scenarios/sweep-hosts.json        (parameter grid)
//
// Every run resolves to one scenario.Scenario — dump it with
// -dump-scenario, feed it back with -scenario, find it embedded in the run
// manifest.
//
// -sweep runs a whole parameter grid instead of one scenario: the spec
// names a base scenario plus axes (parameter path → value list), each grid
// point gets a seed derived from (base seed, point index), all points share
// one -workers-sized pool, and completed points are memoized in the -cache
// directory so a rerun is free.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	mode := flag.String("mode", "consolidated", "dedicated or consolidated")
	hosts := flag.Int("hosts", 4, "consolidated pool size")
	webServers := flag.Int("web-servers", 4, "dedicated Web pool size (also sizes the offered load)")
	dbServers := flag.Int("db-servers", 4, "dedicated DB pool size (also sizes the offered load)")
	intensity := flag.Float64("intensity", scenario.SaturationIntensity, "offered load as a fraction of dedicated capacity")
	webRate := flag.Float64("web-rate", 0, "override Web arrival rate (req/s)")
	dbRate := flag.Float64("db-rate", 0, "override DB arrival rate (WIPS)")
	alloc := flag.String("alloc", "flowing", "flowing, static, proportional or priority")
	period := flag.Float64("period", 1, "reallocation period for proportional/priority (s)")
	cost := flag.Float64("cost", 0.01, "reallocation overhead fraction")
	horizon := flag.Float64("horizon", 120, "simulated seconds")
	seed := flag.Uint64("seed", 42, "random seed")
	mtbf := flag.Float64("mtbf", 0, "mean time between host failures (s, 0 = off)")
	mttr := flag.Float64("mttr", 0, "mean time to repair (s)")
	classes := flag.String("classes", "", `heterogeneous consolidated fleet, e.g. "amd:2,intel:3" `+
		`(amd = reference; intel = 1/1.2 capability; blade = 1/2). Overrides -hosts.`)
	reps := flag.Int("reps", 1, "independent replications (seed, seed+1, ...); >1 reports confidence intervals")
	workers := flag.Int("workers", 0, "parallel replication workers (0 = all CPUs); never changes results")
	shards := flag.Int("shards", 0, "parallel shards within one run, capped at the scenario's coupling components (0 = unsharded); never changes results")
	queue := flag.String("queue", "", `desim event queue: "auto", "heap" or "wheel" (empty = auto); never changes results`)
	precision := flag.Float64("precision", 0, "stop replicating once the 95% CI of pooled loss is relatively this tight (0 = off)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the replication study (0 = none)")
	scenarioFile := flag.String("scenario", "", `run a scenario JSON file ("-" = stdin) instead of the flag-built case study`)
	sweepFile := flag.String("sweep", "", `run a sweep spec JSON file ("-" = stdin): a base scenario plus parameter axes`)
	cacheDir := flag.String("cache", "artifacts/cache", "content-addressed sweep result cache directory; empty disables caching")
	preset := flag.String("preset", "", "run a registered scenario preset: "+strings.Join(scenario.Names(), ", "))
	dumpScenario := flag.Bool("dump-scenario", false, "print the resolved scenario as JSON and exit without running")
	quick := flag.Bool("quick", false, "CI smoke mode: shrink the horizon 8x and cap replications at 2")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	manifest := flag.String("manifest", "run_manifest.json", "write a run manifest (config, seed, git rev, timings, metrics) to this file; empty disables")
	traceFile := flag.String("trace", "", "write a JSONL scheduler event trace to this file")
	traceSample := flag.Int("trace-sample", 1, "record every Nth scheduler operation in the trace")
	flag.Parse()

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
		os.Exit(1)
	}

	if *workers < 0 {
		die("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", *workers)
	}
	if *shards < 0 {
		die("-shards must be >= 0 (0 disables sharding), got %d", *shards)
	}
	switch *queue {
	case "", "auto", "heap", "wheel":
	default:
		die(`-queue must be "auto", "heap" or "wheel", got %q`, *queue)
	}

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := checkFlagConflicts(explicit, *mode, *mtbf, *mttr, *reps, *scenarioFile, *preset, *sweepFile); err != nil {
		die("%v", err)
	}

	if *sweepFile != "" {
		runSweep(*sweepFile, *workers, *cacheDir, *quick, *manifest, die)
		return
	}

	var s scenario.Scenario
	var err error
	switch {
	case *scenarioFile != "":
		s, err = loadScenario(*scenarioFile)
	case *preset != "":
		s, err = scenario.Preset(*preset)
	default:
		s, err = flagScenario(flagValues{
			mode: *mode, hosts: *hosts, webServers: *webServers, dbServers: *dbServers,
			intensity: *intensity, webRate: *webRate, dbRate: *dbRate,
			alloc: *alloc, period: *period, cost: *cost,
			horizon: *horizon, seed: *seed, mtbf: *mtbf, mttr: *mttr,
			classes: *classes, reps: *reps, workers: *workers,
			shards: *shards, queue: *queue,
			precision: *precision, timeout: *timeout,
		})
	}
	if err != nil {
		die("%v", err)
	}

	if *quick {
		quicken(&s)
	}
	if err := s.Validate(); err != nil {
		die("%v", err)
	}
	s.ApplyDefaults()

	if *dumpScenario {
		if err := s.Encode(os.Stdout); err != nil {
			die("%v", err)
		}
		return
	}

	c, err := s.Compile()
	if err != nil {
		die("%v", err)
	}
	cfg := c.Cluster

	man := obs.NewManifest("simulate", cfg.Seed)
	man.Config = s

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		die("%v", err)
	}
	defer stopProfiles()

	var tracer *obs.TraceWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			die("%v", err)
		}
		tracer = obs.NewTraceWriter(f, *traceSample)
		cfg.Tracer = tracer
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "simulate: closing trace: %v\n", err)
			}
		}()
	}

	writeManifest := func(metrics obs.Snapshot) {
		if *manifest == "" {
			return
		}
		if err := man.Finish(metrics).WriteFile(*manifest); err != nil {
			die("writing manifest: %v", err)
		}
		fmt.Printf("\nrun manifest written to %s\n", *manifest)
	}

	fmt.Print(offeredLoadLine(s))

	if c.Replication.Replications > 1 {
		// Replication study: R parallel independent runs with seeds seed,
		// seed+1, ..., merged in replication order (identical results for
		// any -workers value), optionally stopped early once the pooled
		// loss CI is tight enough.
		ctx := context.Background()
		if c.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.Timeout)
			defer cancel()
		}
		engReg := obs.NewRegistry()
		rcfg := c.Replication
		rcfg.Obs = engReg
		set, err := cluster.Replications(ctx, cfg, rcfg)
		if errors.Is(err, context.DeadlineExceeded) && set != nil && len(set.Results) > 0 {
			fmt.Printf("timeout after %d/%d replications; reporting the completed prefix\n\n",
				len(set.Results), c.Replication.Replications)
		} else if err != nil {
			die("%v", err)
		}
		fmt.Println(set)
		totalFailures := int64(0)
		for _, r := range set.Results {
			totalFailures += r.Failures
		}
		if totalFailures > 0 {
			fmt.Printf("host failures injected: %d across %d replications\n",
				totalFailures, len(set.Results))
		}
		// The manifest pools the per-replication engine snapshots with the
		// replication engine's own metrics (wall times, worker occupancy).
		writeManifest(set.Obs.Merge(engReg.Snapshot()))
		return
	}

	res, err := cluster.Run(cfg)
	if err != nil {
		die("%v", err)
	}
	fmt.Println(res)
	fmt.Println()
	for _, h := range res.Hosts {
		fmt.Printf("host %d:", h.ID)
		for _, r := range []string{workload.CPU, workload.DiskIO} {
			fmt.Printf("  %s=%.3f", r, h.Utilization[r])
		}
		fmt.Println()
	}
	total, idle := res.Energy(c.Power, c.Platform)
	fmt.Printf("\npower (%s platform): mean %.0f W total, %.0f W idle floor, %.0f W workload\n",
		c.Platform, total/res.Window, idle/res.Window, (total-idle)/res.Window)
	if res.Failures > 0 {
		fmt.Printf("host failures injected: %d\n", res.Failures)
	}
	writeManifest(res.Obs)
}

// shapingFlags are the flags that describe the scenario itself; they
// conflict with -scenario and -preset, which carry a complete description.
var shapingFlags = []string{
	"mode", "hosts", "web-servers", "db-servers", "intensity", "web-rate",
	"db-rate", "alloc", "period", "cost", "horizon", "seed", "mtbf", "mttr",
	"classes", "reps", "workers", "shards", "queue", "precision", "timeout",
}

// checkFlagConflicts rejects contradictory combinations up front, before
// any defaulting can paper over them.
func checkFlagConflicts(explicit map[string]bool, mode string, mtbf, mttr float64, reps int, scenarioFile, preset, sweepFile string) error {
	if sweepFile != "" {
		for _, name := range []string{"scenario", "preset", "dump-scenario"} {
			if explicit[name] {
				return fmt.Errorf("-%s conflicts with -sweep: a sweep spec is not a single scenario", name)
			}
		}
		for _, name := range shapingFlags {
			if name == "workers" {
				continue // -workers sizes the shared pool; it never shapes results
			}
			if explicit[name] {
				return fmt.Errorf("-%s conflicts with -sweep: the spec's base scenario carries the full description (edit the JSON instead)", name)
			}
		}
		return nil
	}
	if scenarioFile != "" && preset != "" {
		return errors.New("-scenario and -preset are mutually exclusive")
	}
	if scenarioFile != "" || preset != "" {
		src := "-scenario"
		if preset != "" {
			src = "-preset"
		}
		for _, name := range shapingFlags {
			if explicit[name] {
				return fmt.Errorf("-%s conflicts with %s: the scenario carries the full description (edit the JSON instead)", name, src)
			}
		}
		return nil
	}
	if mode == "dedicated" {
		for _, name := range []string{"hosts", "classes", "alloc", "period", "cost"} {
			if explicit[name] {
				return fmt.Errorf("-%s is a consolidated-mode flag, conflicting with -mode dedicated", name)
			}
		}
	}
	if explicit["classes"] && explicit["hosts"] {
		return errors.New("-classes sizes the pool by itself, conflicting with -hosts")
	}
	if (mtbf > 0) != (mttr > 0) {
		return errors.New("-mtbf and -mttr must be set together (both positive) to enable failure injection")
	}
	if explicit["precision"] && reps <= 1 {
		return errors.New("-precision needs -reps > 1: early stopping compares replications")
	}
	return nil
}

// flagValues carries the flag-built case-study shape into flagScenario.
type flagValues struct {
	mode                  string
	hosts                 int
	webServers, dbServers int
	intensity             float64
	webRate, dbRate       float64
	alloc                 string
	period, cost          float64
	horizon               float64
	seed                  uint64
	mtbf, mttr            float64
	classes               string
	reps, workers         int
	shards                int
	queue                 string
	precision             float64
	timeout               time.Duration
}

// flagScenario lowers the case-study flags to a Scenario — the same
// pipeline a JSON file takes, so -dump-scenario round-trips exactly.
func flagScenario(v flagValues) (scenario.Scenario, error) {
	if v.mode != "dedicated" && v.mode != "consolidated" {
		return scenario.Scenario{}, fmt.Errorf("unknown mode %q", v.mode)
	}
	lambdaW := v.intensity * float64(v.webServers) * workload.WebDiskRate
	lambdaD := v.intensity * float64(v.dbServers) * workload.DBCPURate
	if v.webRate > 0 {
		lambdaW = v.webRate
	}
	if v.dbRate > 0 {
		lambdaD = v.dbRate
	}

	s := scenario.Scenario{
		Name: "simulate-flags",
		Mode: v.mode,
		Services: []scenario.Service{
			scenario.WebSpec(lambdaW, v.webServers),
			scenario.DBSpec(lambdaD, v.dbServers),
		},
		Horizon: v.horizon,
		Seed:    v.seed,
	}
	if v.mode == "consolidated" {
		s.Fleet.Hosts = v.hosts
		if v.classes != "" {
			hcs, err := parseClasses(v.classes)
			if err != nil {
				return scenario.Scenario{}, err
			}
			s.Fleet.Classes = hcs
			s.Fleet.Hosts = 0
		}
	}
	switch v.alloc {
	case "flowing":
		// nil Alloc = ideal on-demand resource flowing.
	case "static":
		s.Alloc = &scenario.Alloc{Policy: "static"}
	case "proportional":
		s.Alloc = &scenario.Alloc{Policy: "proportional", Period: v.period, MinShare: 0.05, Cost: v.cost}
	case "priority":
		s.Alloc = &scenario.Alloc{Policy: "priority", Period: v.period, Cost: v.cost}
	default:
		return scenario.Scenario{}, fmt.Errorf("unknown allocator %q", v.alloc)
	}
	if v.mtbf > 0 {
		s.Failures = &scenario.Failures{MTBF: v.mtbf, MTTR: v.mttr}
	}
	if v.reps > 1 || v.workers > 0 || v.shards > 0 || v.precision > 0 || v.timeout > 0 {
		s.Replication = &scenario.Replication{
			Reps:       v.reps,
			Workers:    v.workers,
			Shards:     v.shards,
			Precision:  v.precision,
			TimeoutSec: v.timeout.Seconds(),
		}
	}
	s.EventQueue = v.queue
	return s, nil
}

// runSweep executes a sweep spec: expand the grid, run every point on one
// shared pool with the content-addressed cache, print a per-point summary
// table and write the manifest.
func runSweep(path string, workers int, cacheDir string, quick bool, manifestPath string, die func(string, ...any)) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			die("%v", err)
		}
		defer f.Close()
		r = f
	}
	sp, err := sweep.ParseSpec(r)
	if err != nil {
		die("%v", err)
	}
	if quick {
		quicken(&sp.Base)
	}
	pts, err := sp.Expand()
	if err != nil {
		die("%v", err)
	}

	p, err := pool.New(workers)
	if err != nil {
		die("-workers: %v", err)
	}
	var cache *sweep.Cache
	if cacheDir != "" {
		cache, err = sweep.OpenCache(cacheDir)
		if err != nil {
			die("-cache: %v", err)
		}
	}
	reg := obs.NewRegistry()
	p.Observe(reg)
	eng := sweep.NewEngine(p, cache, reg)

	man := obs.NewManifest("simulate", sp.Base.Seed)
	man.Config = sp

	name := sp.Name
	if name == "" {
		name = path
	}
	fmt.Printf("sweep %s: %d points across %d axes, pool of %d\n\n", name, len(pts), len(sp.Axes), p.Size())

	start := time.Now()
	results, err := eng.RunPoints(context.Background(), pts)
	if err != nil {
		die("%v", err)
	}

	labelW := 0
	for _, pr := range results {
		if len(pr.Label) > labelW {
			labelW = len(pr.Label)
		}
	}
	hits := 0
	for _, pr := range results {
		mark := ""
		if pr.CacheHit {
			mark = "  (cached)"
			hits++
		}
		fmt.Printf("[%3d] %-*s  loss=%.4f  thpt=%.1f  util=%.3f  reps=%d%s\n",
			pr.Index, labelW, pr.Label,
			float64(pr.OverallLoss.Point), float64(pr.TotalThroughput.Point),
			float64(pr.BottleneckUtil.Point), pr.Replications, mark)
	}
	fmt.Printf("\n%d/%d points from cache, %.1fs\n", hits, len(results), time.Since(start).Seconds())

	if manifestPath != "" {
		if err := man.Finish(reg.Snapshot()).WriteFile(manifestPath); err != nil {
			die("writing manifest: %v", err)
		}
		fmt.Printf("run manifest written to %s\n", manifestPath)
	}
}

// loadScenario reads one scenario from a file or stdin ("-").
func loadScenario(path string) (scenario.Scenario, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return scenario.Scenario{}, err
		}
		defer f.Close()
		r = f
	}
	return scenario.Parse(r)
}

// quicken shrinks a scenario for CI smoke runs: horizon (and any explicit
// warmup) divide by 8, replications cap at 2 and early stopping turns off.
func quicken(s *scenario.Scenario) {
	if s.Horizon == 0 {
		s.Horizon = 120
	}
	s.Horizon /= 8
	if s.Warmup != nil {
		w := *s.Warmup / 8
		s.Warmup = &w
	}
	if s.Replication != nil && s.Replication.Reps > 2 {
		s.Replication.Reps = 2
	}
	if s.Replication != nil {
		s.Replication.Precision = 0
	}
}

// offeredLoadLine summarizes the offered load of open-loop services and
// the populations of closed-loop ones.
func offeredLoadLine(s scenario.Scenario) string {
	var b strings.Builder
	b.WriteString("offered load:")
	for i, svc := range s.Services {
		if i > 0 {
			b.WriteString(",")
		}
		name := svc.Name
		if name == "" {
			name = svc.Profile.Preset
		}
		if name == "" {
			name = svc.Profile.Name
		}
		if svc.Arrivals != nil {
			if p, err := svc.Arrivals.Build(); err == nil {
				fmt.Fprintf(&b, " %s %.0f req/s", name, p.Rate())
				continue
			}
		}
		fmt.Fprintf(&b, " %s %d clients", name, svc.Clients)
	}
	b.WriteString("\n\n")
	return b.String()
}

// parseClasses parses "name:count,name:count" into host-class specs using
// the scenario presets (amd = 1, intel = 1/1.2, blade = 0.5).
func parseClasses(spec string) ([]scenario.HostClass, error) {
	var out []scenario.HostClass
	for _, part := range strings.Split(spec, ",") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("class %q: want name:count", part)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("class %q: bad count %q", name, countStr)
		}
		hc := scenario.HostClass{Preset: name, Count: count}
		if err := hc.Validate(); err != nil {
			return nil, fmt.Errorf("unknown class %q (amd, intel, blade)", name)
		}
		out = append(out, hc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty class spec")
	}
	return out, nil
}
