// Command simulate runs the data-center simulator on the paper's case-study
// services and prints per-service QoS, per-host utilization and power — the
// direct way to try "what if I consolidate my 4+4 pools onto 3 hosts?"
//
// Examples:
//
//	simulate -mode dedicated -web-servers 4 -db-servers 4
//	simulate -mode consolidated -hosts 4
//	simulate -mode consolidated -hosts 4 -alloc static
//	simulate -mode consolidated -hosts 4 -alloc proportional -period 0.5 -cost 0.02
//	simulate -mode consolidated -hosts 3 -mtbf 300 -mttr 30   (failure injection)
//	simulate -mode consolidated -hosts 4 -reps 8               (replication study)
//	simulate -reps 32 -precision 0.05 -workers 4 -timeout 2m   (CI-driven early stop)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/profiling"
	"repro/internal/rainbow"
	"repro/internal/replicate"
	"repro/internal/virt"
	"repro/internal/workload"
)

// manifestConfig is the resolved-configuration block of the run
// manifest: every knob that shaped the simulation, after defaulting.
type manifestConfig struct {
	Mode      string  `json:"mode"`
	Hosts     int     `json:"hosts"`
	Classes   string  `json:"classes,omitempty"`
	Alloc     string  `json:"alloc"`
	Period    float64 `json:"period,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	Intensity float64 `json:"intensity"`
	WebRate   float64 `json:"web_rate"`
	DBRate    float64 `json:"db_rate"`
	Horizon   float64 `json:"horizon"`
	Warmup    float64 `json:"warmup"`
	MTBF      float64 `json:"mtbf,omitempty"`
	MTTR      float64 `json:"mttr,omitempty"`
	Reps      int     `json:"reps"`
	Workers   int     `json:"workers,omitempty"`
	Precision float64 `json:"precision,omitempty"`
}

func main() {
	mode := flag.String("mode", "consolidated", "dedicated or consolidated")
	hosts := flag.Int("hosts", 4, "consolidated pool size")
	webServers := flag.Int("web-servers", 4, "dedicated Web pool size (also sizes the offered load)")
	dbServers := flag.Int("db-servers", 4, "dedicated DB pool size (also sizes the offered load)")
	intensity := flag.Float64("intensity", 0.70, "offered load as a fraction of dedicated capacity")
	webRate := flag.Float64("web-rate", 0, "override Web arrival rate (req/s)")
	dbRate := flag.Float64("db-rate", 0, "override DB arrival rate (WIPS)")
	alloc := flag.String("alloc", "flowing", "flowing, static, proportional or priority")
	period := flag.Float64("period", 1, "reallocation period for proportional/priority (s)")
	cost := flag.Float64("cost", 0.01, "reallocation overhead fraction")
	horizon := flag.Float64("horizon", 120, "simulated seconds")
	seed := flag.Uint64("seed", 42, "random seed")
	mtbf := flag.Float64("mtbf", 0, "mean time between host failures (s, 0 = off)")
	mttr := flag.Float64("mttr", 0, "mean time to repair (s)")
	classes := flag.String("classes", "", `heterogeneous consolidated fleet, e.g. "amd:2,intel:3" `+
		`(amd = reference; intel = 1/1.2 capability; blade = 1/2). Overrides -hosts.`)
	reps := flag.Int("reps", 1, "independent replications (seed, seed+1, ...); >1 reports confidence intervals")
	workers := flag.Int("workers", 0, "parallel replication workers (0 = all CPUs); never changes results")
	precision := flag.Float64("precision", 0, "stop replicating once the 95% CI of pooled loss is relatively this tight (0 = off)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the replication study (0 = none)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	manifest := flag.String("manifest", "run_manifest.json", "write a run manifest (config, seed, git rev, timings, metrics) to this file; empty disables")
	traceFile := flag.String("trace", "", "write a JSONL scheduler event trace to this file")
	traceSample := flag.Int("trace-sample", 1, "record every Nth scheduler operation in the trace")
	flag.Parse()

	die := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
		os.Exit(1)
	}

	man := obs.NewManifest("simulate", *seed)

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		die("%v", err)
	}
	defer stopProfiles()

	lambdaW := *intensity * float64(*webServers) * workload.WebDiskRate
	lambdaD := *intensity * float64(*dbServers) * workload.DBCPURate
	if *webRate > 0 {
		lambdaW = *webRate
	}
	if *dbRate > 0 {
		lambdaD = *dbRate
	}

	cfg := cluster.Config{
		Services: []cluster.ServiceSpec{
			{
				Profile:          workload.SPECwebEcommerce(),
				Overhead:         virt.WebHostOverhead(),
				Arrivals:         workload.NewPoisson(lambdaW),
				DedicatedServers: *webServers,
			},
			{
				Profile:          workload.TPCWEbook(),
				Overhead:         virt.DBHostOverhead(),
				Arrivals:         workload.NewPoisson(lambdaD),
				DedicatedServers: *dbServers,
			},
		},
		ConsolidatedServers: *hosts,
		Horizon:             *horizon,
		Warmup:              *horizon / 6,
		Seed:                *seed,
		MTBF:                *mtbf,
		MTTR:                *mttr,
	}

	platform := power.NativeLinux
	switch *mode {
	case "dedicated":
		cfg.Mode = cluster.Dedicated
	case "consolidated":
		cfg.Mode = cluster.Consolidated
		platform = power.XenRainbow
	default:
		die("unknown mode %q", *mode)
	}

	if *classes != "" {
		if cfg.Mode != cluster.Consolidated {
			die("-classes requires -mode consolidated")
		}
		hcs, err := parseClasses(*classes)
		if err != nil {
			die("%v", err)
		}
		cfg.HostClasses = hcs
		cfg.ConsolidatedServers = 0
	}

	var tracer *obs.TraceWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			die("%v", err)
		}
		tracer = obs.NewTraceWriter(f, *traceSample)
		cfg.Tracer = tracer
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "simulate: closing trace: %v\n", err)
			}
		}()
	}

	man.Config = manifestConfig{
		Mode:      *mode,
		Hosts:     cfg.ConsolidatedServers,
		Classes:   *classes,
		Alloc:     *alloc,
		Period:    *period,
		Cost:      *cost,
		Intensity: *intensity,
		WebRate:   lambdaW,
		DBRate:    lambdaD,
		Horizon:   cfg.Horizon,
		Warmup:    cfg.Warmup,
		MTBF:      *mtbf,
		MTTR:      *mttr,
		Reps:      *reps,
		Workers:   *workers,
		Precision: *precision,
	}
	writeManifest := func(metrics obs.Snapshot) {
		if *manifest == "" {
			return
		}
		if err := man.Finish(metrics).WriteFile(*manifest); err != nil {
			die("writing manifest: %v", err)
		}
		fmt.Printf("\nrun manifest written to %s\n", *manifest)
	}

	switch *alloc {
	case "flowing":
		// nil Alloc = ideal on-demand resource flowing.
	case "static":
		cfg.Alloc = rainbow.Static{}
	case "proportional":
		cfg.Alloc = rainbow.Proportional{RebalancePeriod: *period, MinShare: 0.05, Cost: *cost}
	case "priority":
		cfg.Alloc = rainbow.Priority{Priorities: []int{0, 1}, RebalancePeriod: *period, Cost: *cost}
	default:
		die("unknown allocator %q", *alloc)
	}

	fmt.Printf("offered load: web %.0f req/s, db %.0f WIPS\n\n", lambdaW, lambdaD)

	if *reps > 1 {
		// Replication study: R parallel independent runs with seeds seed,
		// seed+1, ..., merged in replication order (identical results for
		// any -workers value), optionally stopped early once the pooled
		// loss CI is tight enough.
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		engReg := obs.NewRegistry()
		set, err := cluster.Replications(ctx, cfg, replicate.Config{
			Replications: *reps,
			Workers:      *workers,
			Precision:    *precision,
			Obs:          engReg,
		})
		if errors.Is(err, context.DeadlineExceeded) && set != nil && len(set.Results) > 0 {
			fmt.Printf("timeout after %d/%d replications; reporting the completed prefix\n\n",
				len(set.Results), *reps)
		} else if err != nil {
			die("%v", err)
		}
		fmt.Println(set)
		totalFailures := int64(0)
		for _, r := range set.Results {
			totalFailures += r.Failures
		}
		if totalFailures > 0 {
			fmt.Printf("host failures injected: %d across %d replications\n",
				totalFailures, len(set.Results))
		}
		// The manifest pools the per-replication engine snapshots with the
		// replication engine's own metrics (wall times, worker occupancy).
		writeManifest(set.Obs.Merge(engReg.Snapshot()))
		return
	}

	res, err := cluster.Run(cfg)
	if err != nil {
		die("%v", err)
	}
	fmt.Println(res)
	fmt.Println()
	for _, h := range res.Hosts {
		fmt.Printf("host %d:", h.ID)
		for _, r := range []string{workload.CPU, workload.DiskIO} {
			fmt.Printf("  %s=%.3f", r, h.Utilization[r])
		}
		fmt.Println()
	}
	total, idle := res.Energy(power.DefaultServer, platform)
	fmt.Printf("\npower (%s platform): mean %.0f W total, %.0f W idle floor, %.0f W workload\n",
		platform, total/res.Window, idle/res.Window, (total-idle)/res.Window)
	if res.Failures > 0 {
		fmt.Printf("host failures injected: %d\n", res.Failures)
	}
	writeManifest(res.Obs)
}

// parseClasses parses "name:count,name:count" into host classes with the
// built-in capability presets (amd = 1, intel = 1/1.2, blade = 0.5).
func parseClasses(spec string) ([]cluster.HostClass, error) {
	presets := map[string]map[string]float64{
		"amd":   nil, // reference
		"intel": {workload.CPU: 1 / 1.2, workload.DiskIO: 1 / 1.2},
		"blade": {workload.CPU: 0.5, workload.DiskIO: 0.5},
	}
	var out []cluster.HostClass
	for _, part := range strings.Split(spec, ",") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("class %q: want name:count", part)
		}
		capability, known := presets[name]
		if !known {
			return nil, fmt.Errorf("unknown class %q (amd, intel, blade)", name)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("class %q: bad count %q", name, countStr)
		}
		out = append(out, cluster.HostClass{Name: name, Count: count, Capability: capability})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty class spec")
	}
	return out, nil
}
