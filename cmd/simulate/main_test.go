package main

import (
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/workload"
)

func TestParseClasses(t *testing.T) {
	hcs, err := parseClasses("amd:2, intel:3,blade:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hcs) != 3 {
		t.Fatalf("classes = %d", len(hcs))
	}
	if hcs[0].Preset != "amd" || hcs[0].Count != 2 {
		t.Fatalf("amd class %+v", hcs[0])
	}
	// The presets carry through compilation to the cluster capability maps.
	s := scenario.Scenario{
		Services: []scenario.Service{scenario.WebSpec(100, 1)},
		Fleet:    scenario.Fleet{Classes: hcs},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got := c.Cluster.HostClasses
	if got[0].Capability != nil {
		t.Fatalf("amd capability %v", got[0].Capability)
	}
	if got[1].Capability[workload.CPU] != 1/1.2 {
		t.Fatalf("intel capability %v", got[1].Capability)
	}
	if got[2].Capability[workload.DiskIO] != 0.5 {
		t.Fatalf("blade capability %v", got[2].Capability)
	}
	for _, bad := range []string{"", "amd", "amd:x", "amd:0", "xeon:2", "amd:2;intel:1"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestCheckFlagConflicts(t *testing.T) {
	type call struct {
		name     string
		explicit []string
		mode     string
		mtbf     float64
		mttr     float64
		reps     int
		file     string
		preset   string
		sweep    string
		wantErr  bool
	}
	cases := []call{
		{name: "defaults", mode: "consolidated", reps: 1},
		{name: "dedicated plain", mode: "dedicated", reps: 1},
		{name: "dedicated with hosts", explicit: []string{"hosts"}, mode: "dedicated", reps: 1, wantErr: true},
		{name: "dedicated with classes", explicit: []string{"classes"}, mode: "dedicated", reps: 1, wantErr: true},
		{name: "dedicated with alloc", explicit: []string{"alloc"}, mode: "dedicated", reps: 1, wantErr: true},
		{name: "consolidated with alloc", explicit: []string{"alloc"}, mode: "consolidated", reps: 1},
		{name: "classes plus hosts", explicit: []string{"classes", "hosts"}, mode: "consolidated", reps: 1, wantErr: true},
		{name: "mttr without mtbf", mode: "consolidated", mttr: 30, reps: 1, wantErr: true},
		{name: "mtbf without mttr", mode: "consolidated", mtbf: 300, reps: 1, wantErr: true},
		{name: "failure pair", mode: "consolidated", mtbf: 300, mttr: 30, reps: 1},
		{name: "precision single run", explicit: []string{"precision"}, mode: "consolidated", reps: 1, wantErr: true},
		{name: "precision with reps", explicit: []string{"precision"}, mode: "consolidated", reps: 8},
		{name: "scenario plus seed", explicit: []string{"seed"}, mode: "consolidated", reps: 1, file: "x.json", wantErr: true},
		{name: "scenario plus manifest", explicit: []string{"manifest"}, mode: "consolidated", reps: 1, file: "x.json"},
		{name: "preset plus horizon", explicit: []string{"horizon"}, mode: "consolidated", reps: 1, preset: "casestudy-4+4", wantErr: true},
		{name: "scenario plus preset", mode: "consolidated", reps: 1, file: "x.json", preset: "casestudy-4+4", wantErr: true},
		{name: "sweep plain", mode: "consolidated", reps: 1, sweep: "grid.json"},
		{name: "sweep plus workers", explicit: []string{"workers"}, mode: "consolidated", reps: 1, sweep: "grid.json"},
		{name: "sweep plus seed", explicit: []string{"seed"}, mode: "consolidated", reps: 1, sweep: "grid.json", wantErr: true},
		{name: "sweep plus scenario", explicit: []string{"scenario"}, mode: "consolidated", reps: 1, file: "x.json", sweep: "grid.json", wantErr: true},
		{name: "sweep plus preset", explicit: []string{"preset"}, mode: "consolidated", reps: 1, preset: "casestudy-4+4", sweep: "grid.json", wantErr: true},
		{name: "sweep plus dump", explicit: []string{"dump-scenario"}, mode: "consolidated", reps: 1, sweep: "grid.json", wantErr: true},
	}
	for _, c := range cases {
		explicit := map[string]bool{}
		for _, f := range c.explicit {
			explicit[f] = true
		}
		err := checkFlagConflicts(explicit, c.mode, c.mtbf, c.mttr, c.reps, c.file, c.preset, c.sweep)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

// TestFlagScenarioMatchesDefaults pins that the flag-built scenario with
// default values compiles to the same cluster configuration shape the
// pre-scenario CLI constructed.
func TestFlagScenarioMatchesDefaults(t *testing.T) {
	s, err := flagScenario(flagValues{
		mode: "consolidated", hosts: 4, webServers: 4, dbServers: 4,
		intensity: scenario.SaturationIntensity, alloc: "flowing",
		period: 1, cost: 0.01, horizon: 120, seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Cluster
	if cfg.ConsolidatedServers != 4 || cfg.Horizon != 120 || cfg.Warmup != 20 || cfg.Seed != 42 {
		t.Fatalf("compiled shape %+v", cfg)
	}
	if cfg.Alloc != nil {
		t.Fatalf("flowing should compile to nil alloc, got %v", cfg.Alloc)
	}
	lambdaW, lambdaD := scenario.SaturationRates(4, 4)
	if got := cfg.Services[0].Arrivals.Rate(); got != lambdaW {
		t.Fatalf("web rate %g, want %g", got, lambdaW)
	}
	if got := cfg.Services[1].Arrivals.Rate(); got != lambdaD {
		t.Fatalf("db rate %g, want %g", got, lambdaD)
	}
}

func TestFlagScenarioAllocAndReplication(t *testing.T) {
	s, err := flagScenario(flagValues{
		mode: "consolidated", hosts: 3, webServers: 4, dbServers: 4,
		intensity: 0.5, alloc: "priority", period: 0.5, cost: 0.02,
		horizon: 60, seed: 1, reps: 8, workers: 2, precision: 0.05,
		timeout: 90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cluster.Alloc == nil || c.Cluster.Alloc.String() == "" {
		t.Fatal("priority alloc missing")
	}
	r := c.Replication
	if r.Replications != 8 || r.Workers != 2 || r.Precision != 0.05 || r.Seed != 1 {
		t.Fatalf("replication %+v", r)
	}
	if c.Timeout != 90*time.Second {
		t.Fatalf("timeout %v", c.Timeout)
	}
}

func TestQuicken(t *testing.T) {
	s, err := scenario.Preset("casestudy-4+4")
	if err != nil {
		t.Fatal(err)
	}
	s.Replication = &scenario.Replication{Reps: 16, Precision: 0.05}
	quicken(&s)
	if s.Horizon != 15 {
		t.Fatalf("horizon %g", s.Horizon)
	}
	if s.Replication.Reps != 2 || s.Replication.Precision != 0 {
		t.Fatalf("replication %+v", s.Replication)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
