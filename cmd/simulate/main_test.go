package main

import (
	"testing"

	"repro/internal/workload"
)

func TestParseClasses(t *testing.T) {
	hcs, err := parseClasses("amd:2, intel:3,blade:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hcs) != 3 {
		t.Fatalf("classes = %d", len(hcs))
	}
	if hcs[0].Name != "amd" || hcs[0].Count != 2 || hcs[0].Capability != nil {
		t.Fatalf("amd class %+v", hcs[0])
	}
	if hcs[1].Capability[workload.CPU] != 1/1.2 {
		t.Fatalf("intel capability %v", hcs[1].Capability)
	}
	if hcs[2].Capability[workload.DiskIO] != 0.5 {
		t.Fatalf("blade capability %v", hcs[2].Capability)
	}
	for _, bad := range []string{"", "amd", "amd:x", "amd:0", "xeon:2", "amd:2;intel:1"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
