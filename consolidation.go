package consolidation

import (
	"repro/internal/core"
	"repro/internal/erlang"
)

// The model types, re-exported from internal/core. See the package
// documentation in doc.go and the full reference in internal/core.
type (
	// Model is a complete input to the utility analytic model.
	Model = core.Model
	// Service describes one Internet service to be hosted.
	Service = core.Service
	// Resource identifies a physical resource type of a server.
	Resource = core.Resource
	// PowerParams is the linear server power model (Eq. 12–14).
	PowerParams = core.PowerParams
	// Result is the model's complete output: both plans and the paper's
	// comparison ratios.
	Result = core.Result
	// Plan describes one sized deployment (dedicated or consolidated).
	Plan = core.Plan
	// ServicePlan is the per-service sizing breakdown inside a Plan.
	ServicePlan = core.ServicePlan
	// Bound is the M = N planning bound of Section III-B.4.
	Bound = core.Bound
	// TrafficForm selects the Eq. (5) reading; see the constants below.
	TrafficForm = core.TrafficForm
	// ServerClass describes one hardware class of a heterogeneous data
	// center (the paper's Section V future work).
	ServerClass = core.ServerClass
	// HeterogeneousPlan is a heterogeneous packing of an Erlang-sized pool.
	HeterogeneousPlan = core.HeterogeneousPlan
	// HeterogeneousResult extends Result with physical-machine packings.
	HeterogeneousResult = core.HeterogeneousResult
	// PackObjective selects what heterogeneous packing minimizes.
	PackObjective = core.PackObjective
)

// The three readings of the consolidated-traffic formula (Eq. 5). See
// core.TrafficForm for the full discussion; the zero value
// (TrafficEq5Restricted) is the canonical reproduction form.
const (
	TrafficEq5Restricted = core.TrafficEq5Restricted
	TrafficEq5Verbatim   = core.TrafficEq5Verbatim
	TrafficHarmonic      = core.TrafficHarmonic
)

// Common resource names.
const (
	CPU     = core.CPU
	DiskIO  = core.DiskIO
	Memory  = core.Memory
	Network = core.Network
)

// Heterogeneous packing objectives.
const (
	MinMachines = core.MinMachines
	MinPower    = core.MinPower
)

// DefaultPower is the reconstructed case-study per-server power model.
var DefaultPower = core.DefaultPower

// PackServers covers an Erlang-sized pool with machines from heterogeneous
// classes; see core.PackServers.
func PackServers(requiredUnits int, resources []Resource, classes []ServerClass, objective PackObjective) (*HeterogeneousPlan, error) {
	return core.PackServers(requiredUnits, resources, classes, objective)
}

// ParseModelJSON reads a Model from its JSON schema (see internal/core's
// ParseJSON for the schema documentation); Model.WriteJSON is the inverse.
func ParseModelJSON(raw []byte) (*Model, error) { return core.ParseJSONBytes(raw) }

// ErlangB reports the Erlang B blocking probability for n servers offered
// rho Erlangs of Poisson traffic (Eq. 1, computed by the stable recursion
// of Eq. 2).
func ErlangB(n int, rho float64) (float64, error) { return erlang.B(n, rho) }

// ErlangServers reports the smallest n with ErlangB(n, rho) <= target —
// the sizing step of the paper's Fig. 4. A maxServers of 0 uses the
// package default cap.
func ErlangServers(rho, target float64, maxServers int) (int, error) {
	return erlang.Servers(rho, target, maxServers)
}

// ErlangTraffic reports the largest offered traffic n servers can carry at
// loss probability at most target — the admissible-load inverse behind the
// paper's workload-selection rule.
func ErlangTraffic(n int, target float64) (float64, error) {
	return erlang.Traffic(n, target)
}
