package consolidation

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the doc.go
// quick-start shows.
func TestFacadeEndToEnd(t *testing.T) {
	m := &Model{
		Services: []Service{
			{
				Name:        "web",
				ArrivalRate: 1280,
				ServingRates: map[Resource]float64{
					DiskIO: 1420,
					CPU:    3360,
				},
				ImpactFactors: map[Resource]float64{
					DiskIO: 0.98,
					CPU:    0.63,
				},
			},
			{
				Name:        "db",
				ArrivalRate: 90,
				ServingRates: map[Resource]float64{
					CPU: 100,
				},
			},
		},
		LossTarget: 0.05,
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers <= 0 || res.Consolidated.Servers <= 0 {
		t.Fatalf("degenerate plan: %+v", res)
	}
	if res.Consolidated.Servers > res.Dedicated.Servers {
		t.Fatalf("consolidation made things worse: M=%d N=%d",
			res.Dedicated.Servers, res.Consolidated.Servers)
	}
	bound, err := m.AllocatorBound(res.Dedicated.Servers)
	if err != nil {
		t.Fatal(err)
	}
	if bound.ThroughputImprovement < 1 {
		t.Fatalf("bound %v", bound)
	}
}

func TestFacadeErlangHelpers(t *testing.T) {
	b, err := ErlangB(4, 1.52)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 || b > 0.05 {
		t.Fatalf("ErlangB(4, 1.52) = %g", b)
	}
	n, err := ErlangServers(1.52, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("ErlangServers = %d, want 4", n)
	}
	rho, err := ErlangTraffic(4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1.5255) > 0.01 {
		t.Fatalf("ErlangTraffic = %g", rho)
	}
}

func TestFacadeConstants(t *testing.T) {
	if TrafficEq5Restricted != 0 {
		t.Fatal("restricted form must be the zero value")
	}
	if CPU != "cpu" || DiskIO != "diskio" || Memory != "memory" || Network != "network" {
		t.Fatal("resource constants wrong")
	}
	if DefaultPower.Base <= 0 || DefaultPower.Max <= DefaultPower.Base {
		t.Fatal("default power model wrong")
	}
}

func TestFacadePackServers(t *testing.T) {
	classes := []ServerClass{
		{Name: "big", Capability: map[Resource]float64{CPU: 2}},
		{Name: "small", Capability: map[Resource]float64{CPU: 0.5}},
	}
	plan, err := PackServers(4, []Resource{CPU}, classes, MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Machines != 2 || plan.Allocation["big"] != 2 {
		t.Fatalf("plan %v", plan)
	}
	if _, err := PackServers(-1, nil, classes, MinPower); err == nil {
		t.Fatal("negative units accepted")
	}
}

func TestFacadeParseModelJSON(t *testing.T) {
	m, err := ParseModelJSON([]byte(`{
		"lossTarget": 0.05,
		"services": [{
			"name": "svc",
			"arrivalRate": 10,
			"servingRates": {"cpu": 100}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers <= 0 {
		t.Fatal("degenerate plan")
	}
	if _, err := ParseModelJSON([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeSolveHeterogeneous(t *testing.T) {
	m := &Model{
		Services: []Service{{
			Name:         "svc",
			ArrivalRate:  150,
			ServingRates: map[Resource]float64{CPU: 100},
		}},
		LossTarget: 0.05,
	}
	het, err := m.SolveHeterogeneous([]ServerClass{{Name: "ref"}}, MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if het.Consolidated.Machines != het.Homogeneous.Consolidated.Servers {
		t.Fatal("reference fleet should match homogeneous N")
	}
	rep, err := m.Sensitivity(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseN != het.Homogeneous.Consolidated.Servers {
		t.Fatal("sensitivity base mismatch")
	}
}
