package consolidation_test

import (
	"fmt"
	"log"

	consolidation "repro"
)

// Example sizes the paper's group-2 case study: a Web service and a DB
// service, each of which would need four dedicated servers, consolidate
// onto four VM-based servers.
func Example() {
	web := consolidation.Service{
		Name:        "web",
		ArrivalRate: 2057, // req/s — the intensive workload of 4 dedicated servers
		ServingRates: map[consolidation.Resource]float64{
			consolidation.DiskIO: 1420,
			consolidation.CPU:    3360,
		},
		ImpactFactors: map[consolidation.Resource]float64{
			consolidation.DiskIO: 0.98,
			consolidation.CPU:    0.63,
		},
	}
	db := consolidation.Service{
		Name:        "db",
		ArrivalRate: 144.8, // WIPS
		ServingRates: map[consolidation.Resource]float64{
			consolidation.CPU: 100,
		},
	}
	m := &consolidation.Model{
		Services:   []consolidation.Service{web, db},
		LossTarget: 0.05,
	}
	res, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M=%d N=%d\n", res.Dedicated.Servers, res.Consolidated.Servers)
	// Output:
	// M=8 N=4
}

// ExampleErlangB computes the blocking probability at the case study's
// consolidated operating point.
func ExampleErlangB() {
	b, err := consolidation.ErlangB(4, 1.52)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B = %.4f\n", b)
	// Output:
	// B = 0.0496
}

// ExampleErlangServers sizes a pool for 10 Erlangs of traffic at 1 % loss.
func ExampleErlangServers() {
	n, err := consolidation.ErlangServers(10, 0.01, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("servers = %d\n", n)
	// Output:
	// servers = 18
}

// ExampleModel_AllocatorBound reproduces application (1) of the paper's
// Section III-B.4: the optimal QoS improvement any on-demand resource
// allocation algorithm can deliver at M = N.
func ExampleModel_AllocatorBound() {
	m := &consolidation.Model{
		Services: []consolidation.Service{
			{
				Name:        "web",
				ArrivalRate: 1213,
				ServingRates: map[consolidation.Resource]float64{
					consolidation.DiskIO: 1420,
					consolidation.CPU:    3360,
				},
				ImpactFactors: map[consolidation.Resource]float64{
					consolidation.DiskIO: 0.98,
					consolidation.CPU:    0.63,
				},
			},
			{
				Name:        "db",
				ArrivalRate: 85.4,
				ServingRates: map[consolidation.Resource]float64{
					consolidation.CPU: 100,
				},
			},
		},
		LossTarget: 0.05,
	}
	bound, err := m.AllocatorBound(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("improvement bound = %.3fx\n", bound.ThroughputImprovement)
	// Output:
	// improvement bound = 1.047x
}
