// Allocatoreval: score on-demand resource allocation policies against the
// model's theoretical optimum, exactly as Section III-B.4 prescribes —
// "the more close the improvements in QoS introduced by an on-demand
// resource allocation algorithm to such ratio of (1−B), the better this
// resource allocation algorithm is."
//
// It drives the data-center simulator with four Rainbow-style policies on
// the same consolidated hardware and compares each policy's delivered
// goodput to the ideal-flowing limit the model bounds.
//
//	go run ./examples/allocatoreval
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	// Group-1 case study: workloads that keep 3 consolidated hosts busy.
	const hosts = 3
	lambdaW, lambdaD := scenario.SaturationRates(hosts, hosts)

	base := scenario.Scenario{
		Mode: "consolidated",
		Services: []scenario.Service{
			scenario.WebSpec(lambdaW, 0),
			scenario.DBSpec(lambdaD, 0),
		},
		Fleet:   scenario.Fleet{Hosts: hosts},
		Horizon: 180,
		Warmup:  ptr(30.0),
		Seed:    7,
	}

	policies := []struct {
		name  string
		alloc *scenario.Alloc
	}{
		{"ideal-flowing (model's assumption)", nil},
		{"rainbow proportional (T=0.5s)", &scenario.Alloc{Policy: "proportional", Period: 0.5, MinShare: 0.05, Cost: 0.01}},
		{"rainbow priority (web first)", &scenario.Alloc{Policy: "priority", Priorities: []int{0, 1}, Period: 0.5, Cost: 0.01}},
		{"static partition (no flowing)", &scenario.Alloc{Policy: "static"}},
	}

	fmt.Printf("consolidated pool: %d hosts; offered web %.0f req/s, db %.0f WIPS\n\n",
		hosts, lambdaW, lambdaD)
	fmt.Printf("%-38s %10s %10s %10s %9s\n", "policy", "goodput", "web loss", "db loss", "resp(ms)")

	var flowingGoodput float64
	for i, p := range policies {
		res, err := run(base, p.alloc)
		if err != nil {
			log.Fatal(err)
		}
		served := float64(res.Services[0].Served + res.Services[1].Served)
		arrived := float64(res.Services[0].Arrivals + res.Services[1].Arrivals)
		goodput := served / arrived
		if i == 0 {
			flowingGoodput = goodput
		}
		fmt.Printf("%-38s %9.4f %10.4f %10.4f %9.2f\n",
			p.name, goodput,
			res.Services[0].LossProb, res.Services[1].LossProb,
			res.Services[0].ResponseTimes.Mean()*1000)
	}

	fmt.Println("\nscoring against the ideal-flowing limit (fraction of goodput realized):")
	for _, p := range policies[1:] {
		res, err := run(base, p.alloc)
		if err != nil {
			log.Fatal(err)
		}
		served := float64(res.Services[0].Served + res.Services[1].Served)
		arrived := float64(res.Services[0].Arrivals + res.Services[1].Arrivals)
		score := (served / arrived) / flowingGoodput
		fmt.Printf("  %-38s %.4f\n", p.name, score)
	}

	// The analytic side of the same question: the model's M = N bound.
	m, err := experiments.CaseStudyModel(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := m.AllocatorBound(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel's optimal (1-B) improvement at M = N = 6: %.4fx\n",
		bound.ThroughputImprovement)
	fmt.Println("(any runtime allocator's measured improvement should approach, not exceed, this)")
}

// run compiles the base scenario with the given allocation policy and
// executes one cluster run.
func run(s scenario.Scenario, alloc *scenario.Alloc) (*cluster.Result, error) {
	s.Alloc = alloc
	c, err := s.Compile()
	if err != nil {
		return nil, err
	}
	return cluster.Run(c.Cluster)
}

func ptr(v float64) *float64 { return &v }
