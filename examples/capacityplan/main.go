// Capacityplan: plan an Internet-oriented data center hosting the three
// service tiers the paper's introduction motivates — a Web front end, an
// application/API tier and a database — before any of them is deployed,
// sweeping the QoS target to see how the consolidation saving moves.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	consolidation "repro"
)

func services() []consolidation.Service {
	return []consolidation.Service{
		{
			Name:        "web-frontend",
			ArrivalRate: 5200, // requests/s across the site
			ServingRates: map[consolidation.Resource]float64{
				consolidation.CPU:     6000,
				consolidation.Network: 4500,
			},
			ImpactFactors: map[consolidation.Resource]float64{
				consolidation.CPU:     0.80,
				consolidation.Network: 0.92,
			},
		},
		{
			Name:        "api-tier",
			ArrivalRate: 1800,
			ServingRates: map[consolidation.Resource]float64{
				consolidation.CPU:    2400,
				consolidation.Memory: 5000,
			},
			ImpactFactors: map[consolidation.Resource]float64{
				consolidation.CPU: 0.85,
			},
		},
		{
			Name:        "database",
			ArrivalRate: 420,
			ServingRates: map[consolidation.Resource]float64{
				consolidation.CPU:    300,
				consolidation.DiskIO: 550,
			},
			ImpactFactors: map[consolidation.Resource]float64{
				consolidation.CPU:    0.90,
				consolidation.DiskIO: 0.75,
			},
		},
	}
}

func main() {
	fmt.Println("QoS sweep: loss target vs dedicated (M) and consolidated (N) servers")
	fmt.Printf("%-8s %4s %4s %8s %8s %8s\n", "B", "M", "N", "saving", "util x", "power")
	for _, b := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.10} {
		m := &consolidation.Model{
			Services:   services(),
			LossTarget: b,
		}
		res, err := m.Solve()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %4d %4d %7.1f%% %8.2f %7.1f%%\n",
			b, res.Dedicated.Servers, res.Consolidated.Servers,
			(1-float64(res.Consolidated.Servers)/float64(res.Dedicated.Servers))*100,
			res.UtilizationImprovement, res.PowerSaving*100)
	}

	// Detail at the paper's loss target.
	m := &consolidation.Model{Services: services(), LossTarget: 0.05}
	res, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDetailed plan at B = 0.05")
	fmt.Println(res)
	fmt.Println("\nPer-service dedicated sizing:")
	for _, sp := range res.Dedicated.PerService {
		fmt.Printf("  %-14s %2d servers, bottleneck %s\n", sp.Service, sp.Servers, sp.Bottleneck)
	}

	// How sensitive is the plan to the Eq. (5) reading? The harmonic
	// (work-conserving) form is the conservative choice.
	for _, form := range []consolidation.TrafficForm{
		consolidation.TrafficEq5Restricted,
		consolidation.TrafficHarmonic,
	} {
		m := &consolidation.Model{Services: services(), LossTarget: 0.05, Form: form}
		res, err := m.Solve()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nform=%-15s M=%d N=%d", form, res.Dedicated.Servers, res.Consolidated.Servers)
	}
	fmt.Println()
}
