// Heterofleet: plan the paper's case-study consolidation onto a *mixed*
// server fleet — the future work Section V names, seeded by the paper's own
// Discussion observation that its AMD servers ran the e-book DB workload
// about 20 % faster than its Intel servers.
//
// The flow: solve the homogeneous model (N reference servers), then cover
// those reference units with real machines from the available classes
// under two objectives (fewest machines vs lowest idle power), and check
// each fleet's predicted loss with the continuous Erlang B extension.
// Finally, a sensitivity sweep shows which inputs the plan hinges on.
//
//	go run ./examples/heterofleet
package main

import (
	"fmt"
	"log"
	"os"

	consolidation "repro"
	"repro/internal/experiments"
)

func main() {
	// The group-2 case study: Web + DB, four dedicated servers each.
	m, err := experiments.CaseStudyModel(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homogeneous plan: M=%d dedicated -> N=%d consolidated reference servers\n\n",
		res.Dedicated.Servers, res.Consolidated.Servers)

	// The machine room: two AMD boxes already racked, Intel available on
	// order (≈17 % slower per the paper's Discussion), plus a half-size
	// blade option.
	intelCapability := map[consolidation.Resource]float64{
		consolidation.CPU:    1 / 1.2,
		consolidation.DiskIO: 1 / 1.2,
	}
	classes := []consolidation.ServerClass{
		{Name: "amd-2350", Count: 2},
		{
			Name:       "intel-5140",
			Capability: intelCapability,
			Power:      consolidation.PowerParams{Base: 230, Max: 310},
		},
		{
			Name: "blade-half",
			Capability: map[consolidation.Resource]float64{
				consolidation.CPU:    0.5,
				consolidation.DiskIO: 0.5,
			},
			Power: consolidation.PowerParams{Base: 140, Max: 190},
		},
	}

	for _, objective := range []consolidation.PackObjective{
		consolidation.MinMachines, consolidation.MinPower,
	} {
		het, err := m.SolveHeterogeneous(classes, objective)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("objective %s:\n", objective)
		fmt.Printf("  dedicated:    %s\n", het.Dedicated)
		fmt.Printf("  consolidated: %s\n", het.Consolidated)
		fmt.Printf("  machine ratio %.2f; consolidated idle draw %.0f W\n",
			het.MachineRatio, het.Consolidated.IdlePower)
		loss, err := m.HeterogeneousLoss(classes, het.Consolidated.Allocation, m.Form)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  predicted consolidated loss (continuous Erlang B): %.4f (target %.2f)\n\n",
			loss, m.LossTarget)
	}

	// Which inputs is the plan sensitive to?
	rep, err := m.Sensitivity(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("±10% input sensitivity (rows marked * change the consolidated plan):")
	fmt.Print(rep)

	// Persist the model spec for the consolidate CLI.
	f, err := os.CreateTemp("", "plan-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := m.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel spec written to %s (usable with `go run ./cmd/consolidate -spec ...`)\n", f.Name())
}
