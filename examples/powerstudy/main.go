// Powerstudy: follow the paper's two case-study services through a full
// synthetic day — diurnal load curves, anti-correlated peaks — and compare
// the energy bill of dedicated hosting against VM-based consolidation,
// using the linear power model with the measured Xen platform factors
// (Figs. 12/13 generalized over time).
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/diurnal"
	"repro/internal/power"
	"repro/internal/workload"
)

func main() {
	// A day of Web traffic peaking mid-afternoon and DB traffic peaking in
	// the evening (report/checkout hours).
	webTrace, err := diurnal.Synthesize(diurnal.Config{
		Name: "web", Base: 1100, Peak: 3950, PeakHour: 14, Noise: 0.08, BinSec: 300,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	dbTrace, err := diurnal.Synthesize(diurnal.Config{
		Name: "db", Base: 90, Peak: 280, PeakHour: 20, Noise: 0.08, BinSec: 300,
	}, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Provision the pools for the peaks: dedicated pools sized per
	// service; the consolidated pool sized for the joint peak with the
	// case-study impact factors applied.
	const (
		webCap = workload.WebDiskRate // one dedicated Web server
		dbCap  = workload.DBCPURate   // one dedicated DB server
		aWI    = 0.98                 // consolidated disk impact
		aWC    = 0.63                 // consolidated CPU impact (web)
	)
	webServers := int(webTrace.Peak()/webCap) + 1
	dbServers := int(dbTrace.Peak()/dbCap) + 1

	// Consolidated: size for the worst 5-minute bin of joint demand,
	// measured in host-equivalents of work.
	hostDemand := func(web, db float64) float64 {
		disk := web / (webCap * aWI)
		cpu := web/(workload.WebCPURate*aWC) + db/dbCap
		if disk > cpu {
			return disk
		}
		return cpu
	}
	worst := 0.0
	for i := range webTrace.Values {
		if d := hostDemand(webTrace.Values[i], dbTrace.Values[i]); d > worst {
			worst = d
		}
	}
	consolidatedHosts := int(worst/0.95) + 1 // keep bins under 95 % busy

	fmt.Printf("provisioning: %d web + %d db dedicated servers vs %d consolidated hosts\n\n",
		webServers, dbServers, consolidatedHosts)

	// Meter both deployments through the day.
	dedMeter, err := power.NewMeter(power.DefaultServer, power.NativeLinux)
	if err != nil {
		log.Fatal(err)
	}
	consMeter, err := power.NewMeter(power.DefaultServer, power.XenRainbow)
	if err != nil {
		log.Fatal(err)
	}
	for i := range webTrace.Values {
		web := webTrace.Values[i]
		db := dbTrace.Values[i]

		// Dedicated: each pool's servers share their service's load.
		dedU := make([]float64, 0, webServers+dbServers)
		for k := 0; k < webServers; k++ {
			dedU = append(dedU, web/(float64(webServers)*webCap))
		}
		for k := 0; k < dbServers; k++ {
			dedU = append(dedU, db/(float64(dbServers)*dbCap))
		}
		if err := dedMeter.Observe(webTrace.BinSec, dedU); err != nil {
			log.Fatal(err)
		}

		// Consolidated: every host carries an equal slice of the joint
		// demand (ideal resource flowing).
		consU := make([]float64, consolidatedHosts)
		perHost := hostDemand(web, db) / float64(consolidatedHosts)
		for k := range consU {
			consU[k] = perHost
		}
		if err := consMeter.Observe(webTrace.BinSec, consU); err != nil {
			log.Fatal(err)
		}
	}

	cmp := power.Compare(dedMeter, consMeter)
	kwh := func(j float64) float64 { return j / 3.6e6 }
	fmt.Printf("dedicated:    %7.1f kWh total (%6.1f kWh idle floor)\n",
		kwh(dedMeter.Energy()), kwh(dedMeter.IdleEnergy()))
	fmt.Printf("consolidated: %7.1f kWh total (%6.1f kWh idle floor)\n",
		kwh(consMeter.Energy()), kwh(consMeter.IdleEnergy()))
	fmt.Printf("\ntotal saving:    %5.1f%%  (paper's case study: up to 53%%)\n", cmp.TotalSaving()*100)
	fmt.Println("  (this scenario saves less than the paper's: its Web CPU overhead factor")
	fmt.Println("   0.63 nearly doubles consolidated CPU work, so only one host is freed —")
	fmt.Println("   the sensitivity of the savings to the CPU impact factor in action)")
	fmt.Printf("idle saving:     %5.1f%%\n", cmp.IdleSaving()*100)
	fmt.Printf("workload saving: %5.1f%%  (paper: ~30%% from the Xen platform)\n", cmp.WorkloadSaving()*100)

	// The trace-level headroom that made this possible (Fig. 2).
	h, err := diurnal.Analyze(webCap, webTrace) // per-web-server units
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nweb peak/mean: %.2f (headroom analysis: %d dedicated servers for the peak)\n",
		webTrace.PeakToMean(), h.ServersDedicated)
}
