// Quickstart: size a two-service data center with the utility analytic
// model — the smallest end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	consolidation "repro"
)

func main() {
	// Two Internet services, characterized exactly as the paper prescribes
	// (Section III-B): mean Poisson arrival rate, mean serving rate of
	// each resource on one dedicated server, and the virtualization impact
	// factor per resource.
	web := consolidation.Service{
		Name:        "web",
		ArrivalRate: 1280, // requests/s
		ServingRates: map[consolidation.Resource]float64{
			consolidation.DiskIO: 1420, // requests/s one server's disk sustains
			consolidation.CPU:    3360,
		},
		ImpactFactors: map[consolidation.Resource]float64{
			consolidation.DiskIO: 0.98, // Xen overhead on disk I/O
			consolidation.CPU:    0.63, // Xen overhead on CPU
		},
	}
	db := consolidation.Service{
		Name:        "db",
		ArrivalRate: 90, // Web interactions/s
		ServingRates: map[consolidation.Resource]float64{
			consolidation.CPU: 100,
		},
		// No impact factor: multi-VM DB hosting matches native here.
	}

	m := &consolidation.Model{
		Services:   []consolidation.Service{web, db},
		LossTarget: 0.05, // at most 5 % of requests may be lost
	}

	res, err := m.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== plan ==")
	fmt.Println(res)

	// The same Erlang machinery is available directly: how much traffic
	// can 4 servers carry at 5 % loss?
	rho, err := consolidation.ErlangTraffic(4, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4 Erlang servers carry up to %.3f Erlangs at B <= 0.05\n", rho)

	// And the Section III-B.4 bound: with the same number of servers,
	// how much more goodput can consolidation-with-ideal-flowing deliver?
	bound, err := m.AllocatorBound(res.Dedicated.Servers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocator bound at M = N = %d: %.4fx goodput\n",
		res.Dedicated.Servers, bound.ThroughputImprovement)
}
