package cluster

import (
	"sync"

	"repro/internal/desim"
)

// Arena is the reusable allocation pool of one simulation run: the
// discrete-event simulator (whose event storage dominates a run's
// allocations) plus freelists for the request and jobRef objects churned
// on the dispatch hot path. A run borrows an arena, allocates through it,
// and returns it; the next run then schedules into already-grown event
// storage and recycles the previous run's request graph instead of
// re-allocating it.
//
// Reuse never changes results: the simulator is Reset to a state
// indistinguishable from a fresh one (clock, sequence numbers and
// counters restart at zero), and recycled requests and jobRefs are
// zeroed before they are handed out again.
//
// An arena is single-run state — never share one between concurrent
// runs. ArenaPool hands each concurrent run its own.
type Arena struct {
	sim      *desim.Simulator
	requests []*request
	jobRefs  []*jobRef
}

// NewArena returns an empty arena ready for its first run.
func NewArena() *Arena {
	return &Arena{sim: desim.New()}
}

func (a *Arena) getRequest() *request {
	if n := len(a.requests); n > 0 {
		req := a.requests[n-1]
		a.requests[n-1] = nil
		a.requests = a.requests[:n-1]
		return req
	}
	return &request{}
}

func (a *Arena) getJobRef() *jobRef {
	if n := len(a.jobRefs); n > 0 {
		j := a.jobRefs[n-1]
		a.jobRefs[n-1] = nil
		a.jobRefs = a.jobRefs[:n-1]
		return j
	}
	return &jobRef{}
}

// recycleRequest returns a completed request and its job references to
// the freelists. Only fully drained requests may be recycled: every
// jobRef must already be off its station's heap. Requests lost to host
// failures are deliberately left to the garbage collector — their refs
// may still be reachable from in-flight bookkeeping.
func (a *Arena) recycleRequest(req *request) {
	for i, j := range req.refs {
		*j = jobRef{}
		a.jobRefs = append(a.jobRefs, j)
		req.refs[i] = nil
	}
	refs, stations := req.refs[:0], req.stations[:0]
	for i := range req.stations {
		req.stations[i] = nil
	}
	*req = request{refs: refs, stations: stations}
	a.requests = append(a.requests, req)
}

// ArenaPool shares arenas across sequential runs while keeping each
// concurrent run on its own arena. The zero value is not usable; call
// NewArenaPool. Returned arenas have their simulator reset eagerly, so a
// pooled arena is always ready to run.
type ArenaPool struct {
	p sync.Pool
}

// NewArenaPool returns an empty pool; arenas are created on demand.
func NewArenaPool() *ArenaPool {
	ap := &ArenaPool{}
	ap.p.New = func() any { return NewArena() }
	return ap
}

// Get borrows an arena, creating one if none is free.
func (ap *ArenaPool) Get() *Arena { return ap.p.Get().(*Arena) }

// Put resets the arena's simulator and returns it to the pool.
func (ap *ArenaPool) Put(a *Arena) {
	a.sim.Reset()
	ap.p.Put(a)
}
