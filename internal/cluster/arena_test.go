package cluster

import (
	"context"
	"testing"

	"repro/internal/replicate"
)

// TestArenaRunMatchesPlain: a Run through a (repeatedly reused) arena must
// reproduce an arena-free Run bit for bit — the arena is an allocation
// optimization, never a semantic one. Round 2+ exercises the reuse path:
// recycled simulator storage and request/jobRef freelists.
func TestArenaRunMatchesPlain(t *testing.T) {
	cfg := replCfg()
	plain, err := Run(cloneConfig(cfg, cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	arenas := NewArenaPool()
	for round := 0; round < 3; round++ {
		c := cloneConfig(cfg, cfg.Seed)
		c.Arenas = arenas
		got, err := Run(c)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !sameResult(got, plain) {
			t.Fatalf("round %d: arena-backed run diverged from plain Run", round)
		}
	}
}

// TestArenaReplicationsDeterministic: whole replication studies through one
// shared pool — concurrent workers checking arenas in and out — stay
// identical to the arena-free study, run after run.
func TestArenaReplicationsDeterministic(t *testing.T) {
	ctx := context.Background()
	cfg := replCfg()
	rcfg := replicate.Config{Replications: 4, Workers: 2}

	base, err := Replications(ctx, cfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	pooled := cfg
	pooled.Arenas = NewArenaPool()
	for round := 0; round < 3; round++ {
		set, err := Replications(ctx, pooled, rcfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range base.Results {
			if !sameResult(set.Results[i], base.Results[i]) {
				t.Fatalf("round %d: replication %d diverged from the arena-free study", round, i)
			}
		}
		if set.OverallLoss != base.OverallLoss || set.TotalThroughput != base.TotalThroughput ||
			set.BottleneckUtil != base.BottleneckUtil {
			t.Fatalf("round %d: aggregate CIs diverged", round)
		}
	}
}
