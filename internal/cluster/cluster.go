package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/desim"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/virt"
	"repro/internal/workload"
)

// Mode selects the deployment style under test.
type Mode int

const (
	// Dedicated hosts one service per physical server pool on native Linux
	// (Fig. 1a / Fig. 3a).
	Dedicated Mode = iota
	// Consolidated hosts one VM per service on every shared physical
	// server, with resource flowing among VMs (Fig. 1b / Fig. 3b).
	Consolidated
)

func (m Mode) String() string {
	if m == Dedicated {
		return "dedicated"
	}
	return "consolidated"
}

// ServiceSpec describes one service to host.
type ServiceSpec struct {
	// Profile carries the service's native per-resource demands and OS
	// ceiling.
	Profile workload.ServiceProfile

	// Overhead carries the virtualization impact curves for this service
	// (consolidated mode only). The zero value means no overhead.
	Overhead virt.HostOverhead

	// Arrivals, when non-nil, drives the service open-loop (httperf
	// style). Mutually exclusive with Clients.
	Arrivals workload.ArrivalProcess

	// Clients, when positive, drives the service closed-loop with that
	// many emulated browsers (TPC-W style). Each browser thinks, issues
	// one request, waits for completion or loss, and thinks again.
	Clients int

	// ThinkTime is the closed-loop think-time distribution; nil means
	// exponential with mean 7 s (the TPC-W default).
	ThinkTime stats.Distribution

	// DedicatedServers is the service's pool size in Dedicated mode.
	DedicatedServers int

	// MemoryGB is the VM's memory allocation in Consolidated mode. Zero
	// means 1 GB — the paper's per-VM allocation ("each VM is allocated
	// 1GB memory").
	MemoryGB float64
}

// vmMemory reports the spec's effective VM memory.
func (s ServiceSpec) vmMemory() float64 {
	if s.MemoryGB == 0 {
		return 1
	}
	return s.MemoryGB
}

// Partition abstracts the Rainbow-style resource allocator used in
// Consolidated mode when resources are partitioned among VMs rather than
// ideally flowing. internal/rainbow provides implementations.
type Partition interface {
	// Shares maps per-VM backlogs (outstanding work) to per-VM capacity
	// shares summing to at most 1.
	Shares(backlogs []float64) []float64
	// Period is the rebalancing interval in seconds; 0 means shares are
	// computed once at start and never changed (static partitioning).
	Period() float64
	// Overhead is the fraction of host capacity lost to the reallocation
	// machinery while the policy is active, in [0, 1).
	Overhead() float64
	// String names the policy.
	String() string
}

// Config describes one cluster experiment.
type Config struct {
	// Mode selects dedicated or consolidated deployment.
	Mode Mode

	// Services are the services to host.
	Services []ServiceSpec

	// ConsolidatedServers is the shared pool size in Consolidated mode.
	// When HostClasses is set it may be left 0 (the class counts size the
	// pool) or must equal the summed class counts.
	ConsolidatedServers int

	// HostClasses, when non-empty, makes the Consolidated pool
	// heterogeneous: hosts are instantiated class by class, each with
	// per-resource capacity multipliers relative to the reference server
	// the service profiles were measured on — the paper's future-work
	// extension (Section V), mirrored analytically by core.ServerClass.
	HostClasses []HostClass

	// Alloc selects the resource allocator in Consolidated mode; nil means
	// ideal on-demand flowing (one shared station per host resource — the
	// model's assumption 4).
	Alloc Partition

	// AdmissionPerHost caps concurrent in-flight requests per host;
	// arrivals beyond the cap are lost (the dispatcher's overload drop).
	// Zero means 256.
	AdmissionPerHost int

	// Horizon and Warmup delimit the run; statistics cover
	// [Warmup, Horizon].
	Horizon float64
	Warmup  float64

	// Seed drives all randomness.
	Seed uint64

	// MTBF and MTTR, when positive, enable host failure injection with
	// exponential times-to-failure and times-to-repair. A failing host
	// loses its in-flight requests.
	MTBF float64
	MTTR float64

	// HostMemoryGB is each host's physical memory; zero means 8 GB (the
	// testbed's servers). In Consolidated mode the VMs' memory plus the
	// Domain-0 reservation must fit — the placement constraint Validate
	// enforces.
	HostMemoryGB float64

	// Dom0MemoryGB is the memory reserved for Domain 0 on consolidated
	// hosts; zero means 1 GB.
	Dom0MemoryGB float64

	// Tracer, when non-nil, receives every scheduler operation of the
	// run's discrete-event core (obs.TraceWriter writes them as JSONL).
	// Intended for single runs; replications sharing one tracer get
	// interleaved (but individually intact) lines.
	Tracer desim.Tracer

	// Arenas, when non-nil, supplies reusable allocation arenas: each run
	// borrows one (event storage plus request/jobRef freelists) and
	// returns it on completion, so sequential runs — replications of one
	// point, or consecutive sweep points — stop re-growing simulator
	// state. Purely an allocation optimization; results are identical
	// with or without it.
	Arenas *ArenaPool

	// Shards requests intra-run parallelism. The run is first partitioned
	// into coupling components — groups of hosts that never exchange
	// requests or share mutable state. In Dedicated mode every service's
	// pool is its own component (the dispatcher only routes a service to
	// its own hosts); in Consolidated mode every host serves every
	// service, so the whole fleet is one component. Components are packed
	// onto min(Shards, components) shards by a deterministic greedy
	// bin-packing, and each shard runs the full horizon on its own
	// simulator, arena and clock. 0 or 1 means sequential (the pre-shard
	// engine, event for event). Because shards share nothing during the
	// run and all RNG substreams are derived purely from (seed, label),
	// results are independent of the shard count and of goroutine
	// scheduling. A non-nil Tracer forces a single shard (trace writers
	// are not goroutine-safe and interleaved shard clocks would garble
	// the event log).
	Shards int

	// EventQueue selects the discrete-event queue implementation per
	// shard: "heap" (binary min-heap, the default engine), "wheel"
	// (hierarchical timing wheel for dense short-horizon event mixes;
	// sparse or far-future events spill to an internal overflow heap), or
	// ""/"auto" (heap for sequential runs — keeping default output
	// byte-identical release to release — and a density estimate for
	// sharded runs). The queues pop in the identical total order, so the
	// choice never changes results.
	EventQueue string

	// Pool, when non-nil, bounds the extra goroutines a sharded run may
	// claim. The caller is assumed to hold one slot for the run itself
	// (the replication engine's worker); up to Shards-1 extra slots are
	// claimed non-blockingly, so shards × replication workers never
	// oversubscribe the machine, and shards that find the pool busy
	// simply run on the caller's goroutine.
	Pool *pool.Pool
}

// HostClass describes one hardware class of a heterogeneous consolidated
// pool.
type HostClass struct {
	// Name identifies the class in reports.
	Name string

	// Count is how many hosts of this class to instantiate.
	Count int

	// Capability maps each resource to the class's speed relative to the
	// reference server (station capacity multiplier); missing resources
	// default to 1.
	Capability map[string]float64
}

// Validate checks the class.
func (h HostClass) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("%w: host class has no name", ErrInvalidConfig)
	}
	if h.Count <= 0 {
		return fmt.Errorf("%w: host class %q count %d", ErrInvalidConfig, h.Name, h.Count)
	}
	for r, v := range h.Capability {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: host class %q capability[%s] = %g", ErrInvalidConfig, h.Name, r, v)
		}
	}
	return nil
}

func (h HostClass) capabilityOn(r string) float64 {
	v, ok := h.Capability[r]
	if !ok {
		return 1
	}
	return v
}

// ErrInvalidConfig reports an unusable cluster configuration.
var ErrInvalidConfig = errors.New("cluster: invalid config")

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Services) == 0 {
		return fmt.Errorf("%w: no services", ErrInvalidConfig)
	}
	for i, s := range c.Services {
		if err := s.Profile.Validate(); err != nil {
			return fmt.Errorf("%w: service %d: %v", ErrInvalidConfig, i, err)
		}
		if s.Arrivals == nil && s.Clients <= 0 {
			return fmt.Errorf("%w: service %q has neither arrivals nor clients", ErrInvalidConfig, s.Profile.Name)
		}
		if s.Arrivals != nil && s.Clients > 0 {
			return fmt.Errorf("%w: service %q is both open- and closed-loop", ErrInvalidConfig, s.Profile.Name)
		}
		if c.Mode == Dedicated && s.DedicatedServers <= 0 {
			return fmt.Errorf("%w: service %q needs a dedicated pool size", ErrInvalidConfig, s.Profile.Name)
		}
	}
	if c.Mode == Consolidated {
		classTotal := 0
		for _, hc := range c.HostClasses {
			if err := hc.Validate(); err != nil {
				return err
			}
			classTotal += hc.Count
		}
		switch {
		case len(c.HostClasses) > 0 && c.ConsolidatedServers != 0 && c.ConsolidatedServers != classTotal:
			return fmt.Errorf("%w: ConsolidatedServers %d != summed class counts %d",
				ErrInvalidConfig, c.ConsolidatedServers, classTotal)
		case len(c.HostClasses) == 0 && c.ConsolidatedServers <= 0:
			return fmt.Errorf("%w: consolidated pool size %d", ErrInvalidConfig, c.ConsolidatedServers)
		}
	}
	if c.AdmissionPerHost < 0 {
		return fmt.Errorf("%w: admission %d", ErrInvalidConfig, c.AdmissionPerHost)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("%w: horizon %g", ErrInvalidConfig, c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("%w: warmup %g (horizon %g)", ErrInvalidConfig, c.Warmup, c.Horizon)
	}
	if (c.MTBF != 0) != (c.MTTR != 0) {
		return fmt.Errorf("%w: MTBF and MTTR must be set together", ErrInvalidConfig)
	}
	if c.MTBF < 0 || c.MTTR < 0 {
		return fmt.Errorf("%w: negative failure parameters", ErrInvalidConfig)
	}
	if c.HostMemoryGB < 0 || c.Dom0MemoryGB < 0 ||
		math.IsNaN(c.HostMemoryGB) || math.IsNaN(c.Dom0MemoryGB) {
		return fmt.Errorf("%w: negative memory sizes", ErrInvalidConfig)
	}
	if c.Shards < 0 {
		return fmt.Errorf("%w: shards %d (negative; 0 means sequential)", ErrInvalidConfig, c.Shards)
	}
	switch c.EventQueue {
	case "", "auto", "heap", "wheel":
	default:
		return fmt.Errorf("%w: event queue %q (want auto, heap or wheel)", ErrInvalidConfig, c.EventQueue)
	}
	if c.Mode == Consolidated {
		// Memory placement: every consolidated host carries one VM per
		// service plus Domain 0.
		need := c.dom0Memory()
		for _, s := range c.Services {
			if s.MemoryGB < 0 || math.IsNaN(s.MemoryGB) {
				return fmt.Errorf("%w: service %q memory %g", ErrInvalidConfig, s.Profile.Name, s.MemoryGB)
			}
			need += s.vmMemory()
		}
		if have := c.hostMemory(); need > have {
			return fmt.Errorf("%w: %d VMs + Domain 0 need %.1f GB but hosts have %.1f GB",
				ErrInvalidConfig, len(c.Services), need, have)
		}
	}
	return nil
}

func (c *Config) hostMemory() float64 {
	if c.HostMemoryGB == 0 {
		return 8 // the testbed's 8 GB servers
	}
	return c.HostMemoryGB
}

func (c *Config) dom0Memory() float64 {
	if c.Dom0MemoryGB == 0 {
		return 1
	}
	return c.Dom0MemoryGB
}

func (c *Config) admission() int {
	if c.AdmissionPerHost == 0 {
		return 256
	}
	return c.AdmissionPerHost
}

// nativeRate reports the effective native serving rate of service spec on
// resource r: the hardware serving rate capped by the OS ceiling on the
// bottleneck resource (a single OS image cannot exceed the ceiling no
// matter the spare hardware).
func nativeRate(p workload.ServiceProfile, r string) float64 {
	rate := p.ServingRate(r)
	if p.OSCeiling > 0 {
		if br, _ := p.BottleneckResource(); br == r && p.OSCeiling < rate {
			rate = p.OSCeiling
		}
	}
	return rate
}

// resourceSet returns the sorted union of resources demanded by the
// services.
func resourceSet(services []ServiceSpec) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range services {
		for r := range s.Profile.Demands {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	// Insertion sort (tiny slices, stdlib-only, deterministic order).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k] < out[k-1]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// activeVMs reports how many of the host's services place demand on r —
// the v fed to the impact curves (DESIGN.md: impact factors are evaluated
// at the per-resource active VM count).
func activeVMs(services []ServiceSpec, indexes []int, r string) int {
	n := 0
	for _, idx := range indexes {
		if !math.IsInf(services[idx].Profile.ServingRate(r), 1) {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}
