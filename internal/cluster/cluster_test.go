package cluster

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/rainbow"
	"repro/internal/stats"
	"repro/internal/virt"
	"repro/internal/workload"
)

// webSpec builds an open-loop Web service spec at the given request rate.
func webSpec(rate float64, servers int) ServiceSpec {
	return ServiceSpec{
		Profile:          workload.SPECwebEcommerce(),
		Overhead:         virt.WebHostOverhead(),
		Arrivals:         workload.NewPoisson(rate),
		DedicatedServers: servers,
	}
}

// dbSpec builds a closed-loop DB service spec with the given emulated
// browsers.
func dbSpec(clients, servers int) ServiceSpec {
	return ServiceSpec{
		Profile:          workload.TPCWEbook(),
		Overhead:         virt.DBHostOverhead(),
		Clients:          clients,
		DedicatedServers: servers,
	}
}

func TestValidateConfig(t *testing.T) {
	good := Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(100, 1)},
		Horizon:  10,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no services", func(c *Config) { c.Services = nil }},
		{"no driver", func(c *Config) { c.Services[0].Arrivals = nil }},
		{"both drivers", func(c *Config) { c.Services[0].Clients = 5 }},
		{"no pool", func(c *Config) { c.Services[0].DedicatedServers = 0 }},
		{"bad horizon", func(c *Config) { c.Horizon = 0 }},
		{"bad warmup", func(c *Config) { c.Warmup = 20 }},
		{"negative admission", func(c *Config) { c.AdmissionPerHost = -1 }},
		{"mtbf without mttr", func(c *Config) { c.MTBF = 10 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{
				Mode:     Dedicated,
				Services: []ServiceSpec{webSpec(100, 1)},
				Horizon:  10,
			}
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("mutation %q accepted", c.name)
			}
		})
	}
	bad := Config{
		Mode:                Consolidated,
		Services:            []ServiceSpec{webSpec(100, 0)},
		ConsolidatedServers: 0,
		Horizon:             10,
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("consolidated without pool size accepted")
	}
}

func TestLightLoadDedicated(t *testing.T) {
	// One server, 100 req/s against a 1420/s disk: nearly no loss, mean
	// response near the bottleneck demand mean (PS at rho≈0.07).
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(100, 1)},
		Horizon:  120,
		Warmup:   20,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	web := res.Services[0]
	if web.LossProb > 0.001 {
		t.Fatalf("light load lost %.4f", web.LossProb)
	}
	if stats.RelativeError(web.Throughput, 100) > 0.05 {
		t.Fatalf("throughput %.1f, want ~100", web.Throughput)
	}
	// Bottleneck is disk (1/1420 s); the CPU leg is faster, so the
	// makespan is close to the disk demand inflated slightly by PS.
	mrt := web.ResponseTimes.Mean()
	if mrt < 1/1420.0 || mrt > 3/1420.0 {
		t.Fatalf("mean response %.6f s", mrt)
	}
	// Utilization ≈ rho on disk = 100/1420.
	if stats.RelativeError(res.MeanUtilization(workload.DiskIO), 100/1420.0) > 0.15 {
		t.Fatalf("disk utilization %.4f", res.MeanUtilization(workload.DiskIO))
	}
	// Percentile estimates are ordered: mean <= p95 <= p99 <= max.
	if web.RespP95 < mrt || web.RespP99 < web.RespP95 ||
		web.RespP99 > web.ResponseTimes.Max()+1e-9 {
		t.Fatalf("percentiles disordered: mean=%.5f p95=%.5f p99=%.5f max=%.5f",
			mrt, web.RespP95, web.RespP99, web.ResponseTimes.Max())
	}
}

func TestSaturationThroughputNative(t *testing.T) {
	// Overdriving one dedicated server: throughput caps at ~μ_wi = 1420.
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(3000, 1)},
		Horizon:  60,
		Warmup:   10,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	web := res.Services[0]
	if stats.RelativeError(web.Throughput, 1420) > 0.08 {
		t.Fatalf("saturated throughput %.1f, want ~1420", web.Throughput)
	}
	if web.LossProb < 0.4 {
		t.Fatalf("overload loss %.3f too low", web.LossProb)
	}
	// Disk pegged.
	if res.MeanUtilization(workload.DiskIO) < 0.95 {
		t.Fatalf("disk utilization %.3f under overload", res.MeanUtilization(workload.DiskIO))
	}
}

func TestConsolidatedOverheadReducesWebCapacity(t *testing.T) {
	// One consolidated host with v identical Web VMs: capacity scales by
	// a_wi(v) (Fig. 5's shape). v = 4 → 1.082-0.408 = 0.674.
	v := 4
	specs := make([]ServiceSpec, v)
	for i := range specs {
		specs[i] = webSpec(3000/float64(v), 0)
	}
	res, err := Run(Config{
		Mode:                Consolidated,
		Services:            specs,
		ConsolidatedServers: 1,
		Horizon:             60,
		Warmup:              10,
		Seed:                3,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.TotalThroughput()
	want := 1420 * virt.WebDiskIOCurve.At(v)
	if stats.RelativeError(total, want) > 0.10 {
		t.Fatalf("consolidated throughput %.1f, want ~%.1f", total, want)
	}
}

func TestDBMultiVMBeatsNative(t *testing.T) {
	// Fig. 8: one host, native vs 2 DB VMs. Native caps at ~100 WIPS (OS
	// ceiling); two VMs reach ~148 (a_dc(2) = 1.48).
	native, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{dbSpec(3000, 1)},
		Horizon:  120,
		Warmup:   20,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	nWIPS := native.Services[0].Throughput
	if stats.RelativeError(nWIPS, 100) > 0.08 {
		t.Fatalf("native WIPS %.1f, want ~100", nWIPS)
	}

	twoVMs, err := Run(Config{
		Mode:                Consolidated,
		Services:            []ServiceSpec{dbSpec(1500, 0), dbSpec(1500, 0)},
		ConsolidatedServers: 1,
		Horizon:             120,
		Warmup:              20,
		Seed:                5,
	})
	if err != nil {
		t.Fatal(err)
	}
	vWIPS := twoVMs.TotalThroughput()
	if stats.RelativeError(vWIPS, 148) > 0.08 {
		t.Fatalf("2-VM WIPS %.1f, want ~148", vWIPS)
	}
	if vWIPS <= nWIPS {
		t.Fatal("multi-VM DB did not beat native (Fig. 8 shape)")
	}
}

func TestClosedLoopLittlesLaw(t *testing.T) {
	// 100 EBs with 7 s mean think time on an unloaded pool: WIPS ≈
	// clients/(think+resp) ≈ 100/7.
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{dbSpec(100, 2)},
		Horizon:  400,
		Warmup:   50,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := res.Services[0]
	want := 100.0 / (7 + db.ResponseTimes.Mean())
	if stats.RelativeError(db.Throughput, want) > 0.08 {
		t.Fatalf("WIPS %.2f, Little's law predicts %.2f", db.Throughput, want)
	}
}

func TestGroupOneCaseStudyShape(t *testing.T) {
	// Fig. 10's qualitative claim: with the group-1 workloads, three
	// consolidated hosts keep losses near the dedicated 3+3 deployment,
	// while two consolidated hosts overload and the DB experiment
	// collapses. The experimental operating point is the knee of Fig. 9 —
	// ≈70 % of the dedicated pools' capacity (see DESIGN.md): λ_w =
	// 0.7·3·1420 = 2982 req/s, λ_d = 0.7·3·100 = 210 WIPS offered. At that
	// point 3 consolidated hosts run their CPUs at ≈0.94 (stable) while 2
	// hosts would need 1.4 CPUs' worth of work per host.
	mk := func(mode Mode, consolidated int, seed uint64) *Result {
		cfg := Config{
			Mode: mode,
			Services: []ServiceSpec{
				webSpec(2982, 3),
				{
					Profile:          workload.TPCWEbook(),
					Overhead:         virt.DBHostOverhead(),
					Arrivals:         workload.NewPoisson(210),
					DedicatedServers: 3,
				},
			},
			ConsolidatedServers: consolidated,
			Horizon:             120,
			Warmup:              20,
			Seed:                seed,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dedicated := mk(Dedicated, 0, 10)
	cons3 := mk(Consolidated, 3, 11)
	cons2 := mk(Consolidated, 2, 12)

	for i, name := range []string{"web", "db"} {
		d := dedicated.Services[i].LossProb
		c3 := cons3.Services[i].LossProb
		c2 := cons2.Services[i].LossProb
		if c3 > d+0.10 {
			t.Errorf("%s: 3 consolidated lose %.3f vs dedicated %.3f", name, c3, d)
		}
		if c2 < c3+0.05 {
			t.Errorf("%s: 2 consolidated (%.3f) should clearly exceed 3 consolidated (%.3f)", name, c2, c3)
		}
	}
	// 2 consolidated hosts are overloaded: DB throughput collapses below
	// the offered rate by a wide margin (the paper's "failure" bar).
	if cons2.Services[1].Throughput > 0.8*210 {
		t.Errorf("2-host DB throughput %.1f did not collapse", cons2.Services[1].Throughput)
	}
}

func TestStaticPartitionWorseThanFlowing(t *testing.T) {
	// Asymmetric load: web heavy, db light. Ideal flowing serves both;
	// static 50/50 partitioning starves the web VM.
	services := func() []ServiceSpec {
		return []ServiceSpec{
			webSpec(1200, 0),
			{
				Profile:  workload.TPCWEbook(),
				Overhead: virt.DBHostOverhead(),
				Arrivals: workload.NewPoisson(5),
			},
		}
	}
	flowing, err := Run(Config{
		Mode:                Consolidated,
		Services:            services(),
		ConsolidatedServers: 1,
		Horizon:             60,
		Warmup:              10,
		Seed:                20,
	})
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(Config{
		Mode:                Consolidated,
		Services:            services(),
		ConsolidatedServers: 1,
		Alloc:               rainbow.Static{},
		Horizon:             60,
		Warmup:              10,
		Seed:                20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.Services[0].Throughput >= flowing.Services[0].Throughput {
		t.Fatalf("static web %.1f >= flowing web %.1f",
			static.Services[0].Throughput, flowing.Services[0].Throughput)
	}
}

func TestProportionalPolicyApproachesFlowing(t *testing.T) {
	// Rainbow's demand-proportional reallocation with a short period and
	// tiny cost should land between static and ideal flowing.
	services := func() []ServiceSpec {
		return []ServiceSpec{
			webSpec(1200, 0),
			{
				Profile:  workload.TPCWEbook(),
				Overhead: virt.DBHostOverhead(),
				Arrivals: workload.NewPoisson(5),
			},
		}
	}
	run := func(alloc Partition, seed uint64) float64 {
		res, err := Run(Config{
			Mode:                Consolidated,
			Services:            services(),
			ConsolidatedServers: 1,
			Alloc:               alloc,
			Horizon:             60,
			Warmup:              10,
			Seed:                seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Services[0].Throughput
	}
	static := run(rainbow.Static{}, 30)
	prop := run(rainbow.Proportional{RebalancePeriod: 0.1, MinShare: 0.05, Cost: 0.01}, 30)
	if prop <= static {
		t.Fatalf("proportional %.1f <= static %.1f", prop, static)
	}
}

func TestFailureInjection(t *testing.T) {
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(500, 2)},
		Horizon:  200,
		Warmup:   10,
		Seed:     7,
		MTBF:     30,
		MTTR:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected")
	}
	web := res.Services[0]
	// Conservation: arrivals = served + lost (+ small in-flight tail).
	diff := web.Arrivals - web.Served - web.Lost
	if diff < 0 || diff > 600 {
		t.Fatalf("conservation: arrivals=%d served=%d lost=%d",
			web.Arrivals, web.Served, web.Lost)
	}
	if web.Lost == 0 {
		t.Fatal("failures lost no requests")
	}
}

func TestRoundRobinBalances(t *testing.T) {
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(2000, 4)},
		Horizon:  60,
		Warmup:   10,
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All four hosts should see nearly identical disk utilization.
	var min, max float64 = 2, -1
	for _, h := range res.Hosts {
		u := h.Utilization[workload.DiskIO]
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max-min > 0.05 {
		t.Fatalf("unbalanced utilizations: min=%.3f max=%.3f", min, max)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) *Result {
		res, err := Run(Config{
			Mode:     Dedicated,
			Services: []ServiceSpec{webSpec(800, 2)},
			Horizon:  30,
			Warmup:   5,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	if a.Services[0].Arrivals != b.Services[0].Arrivals ||
		a.Services[0].Served != b.Services[0].Served ||
		a.Services[0].Lost != b.Services[0].Lost {
		t.Fatal("identical seeds diverged")
	}
	c := run(43)
	if a.Services[0].Served == c.Services[0].Served &&
		a.Services[0].Arrivals == c.Services[0].Arrivals {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(100, 1)},
		Horizon:  20,
		Warmup:   2,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Service("specweb-ecommerce") == nil {
		t.Fatal("named lookup failed")
	}
	if res.Service("nope") != nil {
		t.Fatal("phantom service found")
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
	if res.Mode.String() != "dedicated" || Consolidated.String() != "consolidated" {
		t.Fatal("mode names wrong")
	}
}

func TestAdmissionLimit(t *testing.T) {
	// A tiny admission limit converts overload into losses (loss-system
	// behaviour) instead of unbounded PS slowdown.
	res, err := Run(Config{
		Mode:             Dedicated,
		Services:         []ServiceSpec{webSpec(3000, 1)},
		AdmissionPerHost: 4,
		Horizon:          30,
		Warmup:           5,
		Seed:             10,
	})
	if err != nil {
		t.Fatal(err)
	}
	web := res.Services[0]
	if web.LossProb < 0.3 {
		t.Fatalf("tight admission lost only %.3f", web.LossProb)
	}
	// Response times stay bounded: with at most 4 jobs sharing the disk,
	// the makespan stays below ~4x a generous demand quantile.
	if web.ResponseTimes.Max() > 4*20.0/1420 {
		t.Fatalf("response max %.4f too large for MPL 4", web.ResponseTimes.Max())
	}
}

func TestConsolidatedHostsShareAllServices(t *testing.T) {
	res, err := Run(Config{
		Mode: Consolidated,
		Services: []ServiceSpec{
			webSpec(500, 0),
			{
				Profile:  workload.TPCWEbook(),
				Overhead: virt.DBHostOverhead(),
				Arrivals: workload.NewPoisson(40),
			},
		},
		ConsolidatedServers: 2,
		Horizon:             60,
		Warmup:              10,
		Seed:                11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both hosts carry CPU work from both services.
	for _, h := range res.Hosts {
		if h.Utilization[workload.CPU] <= 0 {
			t.Fatalf("host %d has no CPU work", h.ID)
		}
	}
	// No losses at this comfortable load.
	for _, s := range res.Services {
		if s.LossProb > 0.01 {
			t.Fatalf("%s loss %.3f", s.Name, s.LossProb)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	res, err := Run(Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{webSpec(700, 1)},
		Horizon:  60,
		Warmup:   10,
		Seed:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	total, idle := res.Energy(power.DefaultServer, power.NativeLinux)
	if total <= idle {
		t.Fatal("busy servers should exceed idle energy")
	}
	if res.MeanPower(power.DefaultServer, power.NativeLinux) <= 0 {
		t.Fatal("mean power not positive")
	}
	if math.IsNaN(total) || math.IsNaN(idle) {
		t.Fatal("NaN energy")
	}
}

func TestClusterServiceTimeInsensitivity(t *testing.T) {
	// The saturated throughput of a host depends on the demand MEAN, not
	// its distribution — the cluster-level echo of Erlang insensitivity.
	run := func(scv float64, seed uint64) float64 {
		profile := workload.SPECwebEcommerce().WithDemandSCV(scv)
		res, err := Run(Config{
			Mode: Dedicated,
			Services: []ServiceSpec{{
				Profile:          profile,
				Arrivals:         workload.NewPoisson(3000),
				DedicatedServers: 1,
			}},
			Horizon: 60,
			Warmup:  10,
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Services[0].Throughput
	}
	det := run(0, 41)
	exp := run(1, 41)
	hyper := run(4, 41)
	if stats.RelativeError(det, exp) > 0.05 || stats.RelativeError(hyper, exp) > 0.05 {
		t.Fatalf("saturated throughput varies with SCV: det=%.0f exp=%.0f h2=%.0f",
			det, exp, hyper)
	}
}

func BenchmarkClusterRunGroupTwo(b *testing.B) {
	// Simulator throughput on the group-2 consolidated deployment.
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Mode: Consolidated,
			Services: []ServiceSpec{
				webSpec(3976, 0),
				{
					Profile:  workload.TPCWEbook(),
					Overhead: dbSpec(1, 1).Overhead,
					Arrivals: workload.NewPoisson(280),
				},
			},
			ConsolidatedServers: 4,
			Horizon:             10,
			Warmup:              2,
			Seed:                uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestClusterWithDiurnalNHPPArrivals(t *testing.T) {
	// The cluster accepts any ArrivalProcess: drive a dedicated pool with
	// a two-phase diurnal NHPP and verify the served volume matches the
	// trace's mean rate.
	day := workload.NewNHPP([]float64{200, 800}, 30, true) // mean 500/s
	res, err := Run(Config{
		Mode: Dedicated,
		Services: []ServiceSpec{{
			Profile:          workload.SPECwebEcommerce(),
			Arrivals:         day,
			DedicatedServers: 1,
		}},
		Horizon: 120,
		Warmup:  0,
		Seed:    91,
	})
	if err != nil {
		t.Fatal(err)
	}
	web := res.Services[0]
	if stats.RelativeError(web.Throughput, 500) > 0.08 {
		t.Fatalf("NHPP throughput %.1f, want ~500", web.Throughput)
	}
	if web.LossProb > 0.01 {
		t.Fatalf("unexpected losses %.4f at 56%% peak load", web.LossProb)
	}
}
