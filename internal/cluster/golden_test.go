package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rainbow"
	"repro/internal/stats"
	"repro/internal/virt"
	"repro/internal/workload"
)

// The golden-metrics equivalence test pins the observable output of fixed-seed
// cluster runs across internal rewrites of the simulation core. The stored
// goldens were captured from the original O(k)-per-event station physics and
// the boxed-event desim heap; the virtual-time / event-arena implementations
// must reproduce them: integer counters exactly, float metrics to within
// goldenTol relative error (the rewrites are algebraically identical but
// associate float additions differently).
//
// Regenerate with: go test ./internal/cluster -run TestGoldenMetrics -update

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_metrics.json from the current implementation")

const goldenTol = 1e-9

// goldenService is the per-service slice of a Result we pin.
type goldenService struct {
	Name      string  `json:"name"`
	Arrivals  int64   `json:"arrivals"`
	Served    int64   `json:"served"`
	Lost      int64   `json:"lost"`
	LossProb  float64 `json:"loss_prob"`
	Thr       float64 `json:"throughput"`
	MeanResp  float64 `json:"mean_resp"`
	RespP95   float64 `json:"resp_p95"`
	RespP99   float64 `json:"resp_p99"`
	RespCount int64   `json:"resp_count"`
}

// goldenHost pins one host's utilization map.
type goldenHost struct {
	ID          int                `json:"id"`
	Utilization map[string]float64 `json:"utilization"`
	Bottleneck  float64            `json:"bottleneck"`
}

type goldenResult struct {
	Case     string          `json:"case"`
	Failures int64           `json:"failures"`
	Window   float64         `json:"window"`
	Services []goldenService `json:"services"`
	Hosts    []goldenHost    `json:"hosts"`
}

// goldenCases are the fixed-seed runs the equivalence test replays. They
// cover both modes, open and closed loops, partitioned allocation with
// periodic rebalancing, and failure injection — every code path through
// station add/advance/complete/setCapacity/clear.
func goldenCases() map[string]Config {
	webOpen := func(rate float64) ServiceSpec {
		return ServiceSpec{
			Profile:          workload.SPECwebEcommerce(),
			Overhead:         virt.WebHostOverhead(),
			Arrivals:         workload.NewPoisson(rate),
			DedicatedServers: 2,
		}
	}
	dbOpen := func(rate float64) ServiceSpec {
		return ServiceSpec{
			Profile:          workload.TPCWEbook(),
			Overhead:         virt.DBHostOverhead(),
			Arrivals:         workload.NewPoisson(rate),
			DedicatedServers: 2,
		}
	}
	dbClosed := func(clients int) ServiceSpec {
		return ServiceSpec{
			Profile:          workload.TPCWEbook(),
			Overhead:         virt.DBHostOverhead(),
			Clients:          clients,
			ThinkTime:        stats.NewExponential(1.0 / 3.5),
			DedicatedServers: 2,
		}
	}
	return map[string]Config{
		"consolidated-flowing-open": {
			Mode:                Consolidated,
			Services:            []ServiceSpec{webOpen(0.7 * 2 * workload.WebDiskRate), dbOpen(0.7 * 2 * workload.DBCPURate)},
			ConsolidatedServers: 3,
			Horizon:             300,
			Warmup:              50,
			Seed:                7,
		},
		"dedicated-closed": {
			Mode: Dedicated,
			Services: []ServiceSpec{
				{
					Profile:          workload.SPECwebEcommerce(),
					Overhead:         virt.WebHostOverhead(),
					Clients:          40,
					ThinkTime:        stats.NewExponential(1.0 / 2),
					DedicatedServers: 2,
				},
				dbClosed(20),
			},
			Horizon: 200,
			Warmup:  40,
			Seed:    11,
		},
		"consolidated-partitioned-failures": {
			Mode:                Consolidated,
			Services:            []ServiceSpec{webOpen(0.6 * 2 * workload.WebDiskRate), dbClosed(30)},
			ConsolidatedServers: 3,
			Alloc:               rainbow.Proportional{RebalancePeriod: 0.5, MinShare: 0.05, Cost: 0.01},
			MTBF:                120,
			MTTR:                20,
			Horizon:             300,
			Warmup:              50,
			Seed:                13,
		},
	}
}

func captureGolden(name string, res *Result) goldenResult {
	g := goldenResult{Case: name, Failures: res.Failures, Window: res.Window}
	for _, s := range res.Services {
		mean := s.ResponseTimes.Mean()
		if math.IsNaN(mean) {
			mean = 0
		}
		g.Services = append(g.Services, goldenService{
			Name:      s.Name,
			Arrivals:  s.Arrivals,
			Served:    s.Served,
			Lost:      s.Lost,
			LossProb:  s.LossProb,
			Thr:       s.Throughput,
			MeanResp:  mean,
			RespP95:   s.RespP95,
			RespP99:   s.RespP99,
			RespCount: s.ResponseTimes.N(),
		})
	}
	for _, h := range res.Hosts {
		g.Hosts = append(g.Hosts, goldenHost{ID: h.ID, Utilization: h.Utilization, Bottleneck: h.Bottleneck})
	}
	return g
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= goldenTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestGoldenMetrics(t *testing.T) {
	path := filepath.Join("testdata", "golden_metrics.json")
	got := map[string]goldenResult{}
	for name, cfg := range goldenCases() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got[name] = captureGolden(name, res)
	}

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update first): %v", err)
	}
	var want map[string]goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	for name := range got {
		g, w := got[name], want[name]
		if w.Case == "" {
			t.Errorf("%s: no golden recorded", name)
			continue
		}
		check := func(field string, gv, wv float64) {
			if !closeEnough(gv, wv) {
				t.Errorf("%s: %s = %v, golden %v", name, field, gv, wv)
			}
		}
		if g.Failures != w.Failures {
			t.Errorf("%s: failures = %d, golden %d", name, g.Failures, w.Failures)
		}
		check("window", g.Window, w.Window)
		if len(g.Services) != len(w.Services) {
			t.Fatalf("%s: %d services, golden %d", name, len(g.Services), len(w.Services))
		}
		for i := range g.Services {
			gs, ws := g.Services[i], w.Services[i]
			pre := fmt.Sprintf("service %s", gs.Name)
			if gs.Arrivals != ws.Arrivals || gs.Served != ws.Served || gs.Lost != ws.Lost || gs.RespCount != ws.RespCount {
				t.Errorf("%s: %s counters = (%d,%d,%d,%d), golden (%d,%d,%d,%d)", name, pre,
					gs.Arrivals, gs.Served, gs.Lost, gs.RespCount,
					ws.Arrivals, ws.Served, ws.Lost, ws.RespCount)
			}
			check(pre+" loss", gs.LossProb, ws.LossProb)
			check(pre+" throughput", gs.Thr, ws.Thr)
			check(pre+" mean resp", gs.MeanResp, ws.MeanResp)
			check(pre+" p95", gs.RespP95, ws.RespP95)
			check(pre+" p99", gs.RespP99, ws.RespP99)
		}
		if len(g.Hosts) != len(w.Hosts) {
			t.Fatalf("%s: %d hosts, golden %d", name, len(g.Hosts), len(w.Hosts))
		}
		for i := range g.Hosts {
			gh, wh := g.Hosts[i], w.Hosts[i]
			check(fmt.Sprintf("host %d bottleneck", gh.ID), gh.Bottleneck, wh.Bottleneck)
			for res, u := range wh.Utilization {
				check(fmt.Sprintf("host %d util[%s]", gh.ID, res), gh.Utilization[res], u)
			}
		}
	}
}
