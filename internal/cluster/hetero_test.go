package cluster

import (
	"testing"

	"repro/internal/rainbow"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestHostClassValidate(t *testing.T) {
	good := HostClass{Name: "amd", Count: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []HostClass{
		{Name: "", Count: 1},
		{Name: "x", Count: 0},
		{Name: "x", Count: 1, Capability: map[string]float64{"cpu": 0}},
		{Name: "x", Count: 1, Capability: map[string]float64{"cpu": -2}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad class %d accepted", i)
		}
	}
}

func TestHostClassPoolSizing(t *testing.T) {
	cfg := Config{
		Mode:     Consolidated,
		Services: []ServiceSpec{webSpec(100, 0)},
		HostClasses: []HostClass{
			{Name: "a", Count: 2},
			{Name: "b", Count: 1},
		},
		Horizon: 5,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mismatched explicit pool size rejected.
	cfg.ConsolidatedServers = 5
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched pool size accepted")
	}
	// Matching explicit pool size allowed.
	cfg.ConsolidatedServers = 3
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Mode:     Consolidated,
		Services: []ServiceSpec{webSpec(100, 0)},
		HostClasses: []HostClass{
			{Name: "a", Count: 2},
			{Name: "b", Count: 1},
		},
		Horizon: 10,
		Warmup:  1,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 3 {
		t.Fatalf("hosts = %d, want 3", len(res.Hosts))
	}
}

func TestHeterogeneousCapacityScalesThroughput(t *testing.T) {
	// One saturated host at capability 1 vs one at capability 1.2 (the
	// paper's AMD-vs-Intel Discussion observation): throughput scales by
	// the capability.
	run := func(capability float64) float64 {
		res, err := Run(Config{
			Mode:     Consolidated,
			Services: []ServiceSpec{webSpec(3000, 0)},
			HostClasses: []HostClass{{
				Name:       "class",
				Count:      1,
				Capability: map[string]float64{workload.DiskIO: capability, workload.CPU: capability},
			}},
			Horizon: 40,
			Warmup:  8,
			Seed:    3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalThroughput()
	}
	slow := run(1.0)
	fast := run(1.2)
	if stats.RelativeError(fast/slow, 1.2) > 0.05 {
		t.Fatalf("capability 1.2 gave %.1f vs %.1f (ratio %.3f, want 1.2)",
			fast, slow, fast/slow)
	}
}

func TestHeterogeneousUtilizationNormalized(t *testing.T) {
	// A fast host at light load shows *lower* utilization than a reference
	// host at the same load — the fraction-of-machine normalization.
	run := func(capability float64) float64 {
		res, err := Run(Config{
			Mode:     Consolidated,
			Services: []ServiceSpec{webSpec(500, 0)},
			HostClasses: []HostClass{{
				Name:       "class",
				Count:      1,
				Capability: map[string]float64{workload.DiskIO: capability, workload.CPU: capability},
			}},
			Horizon: 40,
			Warmup:  8,
			Seed:    4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanUtilization(workload.DiskIO)
	}
	ref := run(1.0)
	fast := run(1.5)
	if fast >= ref {
		t.Fatalf("fast host utilization %.3f >= reference %.3f", fast, ref)
	}
	if stats.RelativeError(fast, ref/1.5) > 0.1 {
		t.Fatalf("normalization off: %.3f vs %.3f/1.5", fast, ref)
	}
}

func TestHeterogeneousMixedPoolGroupTwo(t *testing.T) {
	// The group-2 case study on a mixed AMD/Intel pool: to carry the same
	// load as 4 reference (AMD) hosts, an Intel-heavy pool needs a fifth
	// machine — matching core.SolveHeterogeneous's packing arithmetic.
	lambdaW := 0.7 * 4 * workload.WebDiskRate
	lambdaD := 0.7 * 4 * workload.DBCPURate
	services := func() []ServiceSpec {
		return []ServiceSpec{
			webSpec(lambdaW, 4),
			{
				Profile:  workload.TPCWEbook(),
				Overhead: dbSpec(1, 4).Overhead,
				Arrivals: workload.NewPoisson(lambdaD),
			},
		}
	}
	intelCap := map[string]float64{workload.CPU: 1 / 1.2, workload.DiskIO: 1 / 1.2}
	fourIntel, err := Run(Config{
		Mode:        Consolidated,
		Services:    services(),
		HostClasses: []HostClass{{Name: "intel", Count: 4, Capability: intelCap}},
		Horizon:     60,
		Warmup:      10,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fiveIntel, err := Run(Config{
		Mode:        Consolidated,
		Services:    services(),
		HostClasses: []HostClass{{Name: "intel", Count: 5, Capability: intelCap}},
		Horizon:     60,
		Warmup:      10,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 Intel machines = 3.33 reference units < the ~3.8 units of work:
	// overloaded (losses). 5 Intel = 4.17 units: fine.
	if fourIntel.Services[0].LossProb+fourIntel.Services[1].LossProb <
		fiveIntel.Services[0].LossProb+fiveIntel.Services[1].LossProb+0.01 {
		t.Fatalf("4 intel hosts (loss %.3f/%.3f) should lose more than 5 (%.3f/%.3f)",
			fourIntel.Services[0].LossProb, fourIntel.Services[1].LossProb,
			fiveIntel.Services[0].LossProb, fiveIntel.Services[1].LossProb)
	}
	if fiveIntel.Services[1].LossProb > 0.02 {
		t.Fatalf("5 intel hosts still losing %.3f", fiveIntel.Services[1].LossProb)
	}
}

func TestMemoryPlacementConstraint(t *testing.T) {
	// The Fig. 5/6/8 sweeps co-locate up to 9 VMs on an 8 GB host with
	// 1 GB Domain 0: 9 + 1 > 8 would reject the paper's own experiment, so
	// those sweeps set HostMemoryGB accordingly — here we verify both
	// sides of the constraint.
	services := []ServiceSpec{webSpec(100, 0), dbSpec(10, 0)}
	ok := Config{
		Mode:                Consolidated,
		Services:            services,
		ConsolidatedServers: 1,
		Horizon:             5,
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("2 VMs + dom0 on 8 GB rejected: %v", err)
	}
	// 2 fat VMs exceed the default host.
	fat := Config{
		Mode: Consolidated,
		Services: []ServiceSpec{
			func() ServiceSpec { s := webSpec(100, 0); s.MemoryGB = 4; return s }(),
			func() ServiceSpec { s := dbSpec(10, 0); s.MemoryGB = 4; return s }(),
		},
		ConsolidatedServers: 1,
		Horizon:             5,
	}
	if err := fat.Validate(); err == nil {
		t.Fatal("over-committed memory accepted")
	}
	// A bigger host fixes it.
	fat.HostMemoryGB = 16
	if err := fat.Validate(); err != nil {
		t.Fatalf("16 GB host rejected: %v", err)
	}
	// Negative memory rejected.
	bad := ok
	bad.Services = append([]ServiceSpec(nil), services...)
	bad.Services[0].MemoryGB = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative VM memory accepted")
	}
	bad2 := ok
	bad2.HostMemoryGB = -8
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative host memory accepted")
	}
	// Dedicated mode carries no VM memory constraint.
	ded := Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{func() ServiceSpec { s := webSpec(100, 1); s.MemoryGB = 100; return s }()},
		Horizon:  5,
	}
	if err := ded.Validate(); err != nil {
		t.Fatalf("dedicated memory constraint misapplied: %v", err)
	}
}

func TestClassIndependentBlockingOnSharedPool(t *testing.T) {
	// PASTA corollary: on a saturated shared pool with arrival-time
	// admission drops, every Poisson class sees (approximately) the same
	// blocking probability, regardless of its per-request demand. Web
	// requests are ~14x lighter than DB interactions, yet their loss
	// probabilities agree under overload.
	res, err := Run(Config{
		Mode: Consolidated,
		Services: []ServiceSpec{
			webSpec(6000, 0), // heavy overload
			{
				Profile:  workload.TPCWEbook(),
				Overhead: dbSpec(1, 1).Overhead,
				Arrivals: workload.NewPoisson(400),
			},
		},
		ConsolidatedServers: 1,
		AdmissionPerHost:    32,
		Horizon:             60,
		Warmup:              10,
		Seed:                71,
	})
	if err != nil {
		t.Fatal(err)
	}
	web, db := res.Services[0], res.Services[1]
	if web.LossProb < 0.2 || db.LossProb < 0.2 {
		t.Fatalf("pool not saturated: web %.3f db %.3f", web.LossProb, db.LossProb)
	}
	if stats.RelativeError(web.LossProb, db.LossProb) > 0.15 {
		t.Fatalf("class-dependent blocking: web %.3f vs db %.3f",
			web.LossProb, db.LossProb)
	}
}

func TestCombinedHeterogeneousFailurePartitioned(t *testing.T) {
	// Integration stress: heterogeneous hosts + partitioned allocation +
	// failure injection together, checking conservation and sane metrics.
	res, err := Run(Config{
		Mode: Consolidated,
		Services: []ServiceSpec{
			webSpec(1500, 0),
			{
				Profile:  workload.TPCWEbook(),
				Overhead: dbSpec(1, 1).Overhead,
				Arrivals: workload.NewPoisson(100),
			},
		},
		HostClasses: []HostClass{
			{Name: "amd", Count: 2},
			{Name: "intel", Count: 2, Capability: map[string]float64{
				workload.CPU: 1 / 1.2, workload.DiskIO: 1 / 1.2}},
		},
		Alloc:   rainbow.Proportional{RebalancePeriod: 0.5, MinShare: 0.05, Cost: 0.01},
		Horizon: 120,
		Warmup:  20,
		Seed:    73,
		MTBF:    40,
		MTTR:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected")
	}
	for _, s := range res.Services {
		diff := s.Arrivals - s.Served - s.Lost
		if diff < 0 || diff > 300 {
			t.Fatalf("%s conservation: arrivals=%d served=%d lost=%d",
				s.Name, s.Arrivals, s.Served, s.Lost)
		}
		if s.Served == 0 {
			t.Fatalf("%s served nothing", s.Name)
		}
	}
	for _, h := range res.Hosts {
		for r, u := range h.Utilization {
			if u < 0 || u > 1.0+1e-9 {
				t.Fatalf("host %d %s utilization %g", h.ID, r, u)
			}
		}
	}
}
