package cluster

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/stats"
)

// ServiceMetrics aggregates one service's post-warmup behaviour.
type ServiceMetrics struct {
	Name     string
	Arrivals int64
	Served   int64
	Lost     int64

	// LossProb is Lost/Arrivals.
	LossProb float64

	// Throughput is Served per second of observation window — the paper's
	// replies/s (Web) or WIPS (DB).
	Throughput float64

	// ResponseTimes summarizes sojourn times of served requests.
	ResponseTimes stats.Accumulator

	// RespP95 and RespP99 are online (P-squared) estimates of the 95th and
	// 99th percentile response times of served requests, in seconds.
	RespP95 float64
	RespP99 float64
}

// HostMetrics aggregates one host's utilization.
type HostMetrics struct {
	ID int

	// Utilization maps each resource to its delivered-work fraction of the
	// full host capacity over the run.
	Utilization map[string]float64

	// Bottleneck is the maximum over resources.
	Bottleneck float64
}

// Result is the outcome of one cluster experiment.
type Result struct {
	Mode     Mode
	Services []ServiceMetrics
	Hosts    []HostMetrics

	// Failures counts host failure events (failure injection only).
	Failures int64

	// Window is the post-warmup observation duration in seconds.
	Window float64

	// Obs is the run's engine-metric snapshot (event counts, admissions,
	// losses, virtual-time advances, per-station occupancy) — the metrics
	// block run manifests embed. Unlike the service metrics above, these
	// counters cover the whole run including warmup.
	Obs obs.Snapshot
}

func newResult(cfg *Config) *Result {
	res := &Result{Mode: cfg.Mode}
	for _, s := range cfg.Services {
		res.Services = append(res.Services, ServiceMetrics{Name: s.Profile.Name})
	}
	return res
}

// Service returns metrics for the named service (nil if absent). When the
// same profile is deployed several times the first match wins; use the
// index-based Services slice for replicas.
func (r *Result) Service(name string) *ServiceMetrics {
	for i := range r.Services {
		if r.Services[i].Name == name {
			return &r.Services[i]
		}
	}
	return nil
}

// TotalThroughput sums service throughputs (only meaningful when metrics
// share a unit).
func (r *Result) TotalThroughput() float64 {
	sum := 0.0
	for _, s := range r.Services {
		sum += s.Throughput
	}
	return sum
}

// MeanUtilization reports the across-host mean utilization of one
// resource.
func (r *Result) MeanUtilization(resource string) float64 {
	if len(r.Hosts) == 0 {
		return 0
	}
	sum := 0.0
	for _, h := range r.Hosts {
		sum += h.Utilization[resource]
	}
	return sum / float64(len(r.Hosts))
}

// MeanBottleneckUtilization reports the across-host mean of each host's
// bottleneck-resource utilization — the "average server utilization" u_s
// the power model consumes.
func (r *Result) MeanBottleneckUtilization() float64 {
	if len(r.Hosts) == 0 {
		return 0
	}
	sum := 0.0
	for _, h := range r.Hosts {
		sum += h.Bottleneck
	}
	return sum / float64(len(r.Hosts))
}

// Energy integrates the linear power model over the run for every host,
// on the given platform, returning joules. Idle reports the energy the
// same number of powered-on idle hosts would have drawn.
func (r *Result) Energy(model power.ServerModel, platform power.Platform) (total, idle float64) {
	for _, h := range r.Hosts {
		total += model.Draw(h.Bottleneck, platform) * r.Window
		idle += model.IdleDraw(platform) * r.Window
	}
	return total, idle
}

// MeanPower reports the time-average power draw in watts on the given
// platform.
func (r *Result) MeanPower(model power.ServerModel, platform power.Platform) float64 {
	if r.Window <= 0 {
		return 0
	}
	total, _ := r.Energy(model, platform)
	return total / r.Window
}

// String renders a compact report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d hosts, window %.0fs\n", r.Mode, len(r.Hosts), r.Window)
	for _, s := range r.Services {
		mrt := s.ResponseTimes.Mean()
		if math.IsNaN(mrt) {
			mrt = 0
		}
		fmt.Fprintf(&b, "  %-20s thr=%8.2f loss=%6.4f resp=%7.4fs p95=%7.4fs (n=%d)\n",
			s.Name, s.Throughput, s.LossProb, mrt, s.RespP95, s.Served)
	}
	fmt.Fprintf(&b, "  mean bottleneck utilization: %.3f", r.MeanBottleneckUtilization())
	return b.String()
}
