package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestRunObsSnapshot checks that a run leaves a coherent engine-metric
// snapshot on its Result: event counts, admissions/losses consistent
// with the service metrics, virtual-time advances, and one occupancy
// gauge per station.
func TestRunObsSnapshot(t *testing.T) {
	cfg := Config{
		Mode:             Dedicated,
		Services:         []ServiceSpec{flatSpec(workload.NewPoisson(5))},
		Horizon:          200,
		Warmup:           50,
		Seed:             7,
		AdmissionPerHost: 2, // force some losses
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Obs
	if s.Counters["desim/events_fired"] == 0 || s.Counters["desim/events_scheduled"] == 0 {
		t.Fatalf("engine counters missing: %v", s.Counters)
	}
	// Stations cancel-and-replace completion events constantly; the
	// cancellation counter must reflect that.
	if s.Counters["desim/events_cancelled"] == 0 {
		t.Fatalf("no cancellations recorded: %v", s.Counters)
	}
	if s.Counters["cluster/vt_advances"] == 0 {
		t.Fatalf("no virtual-time advances recorded: %v", s.Counters)
	}
	// Engine admissions/losses cover the whole run (warmup included), so
	// they must be at least the post-warmup service tallies.
	sm := res.Services[0]
	if adm := s.Counters["cluster/admissions"]; adm < uint64(sm.Served) {
		t.Fatalf("admissions %d < served %d", adm, sm.Served)
	}
	if sm.Lost == 0 {
		t.Fatal("test config produced no losses; tighten AdmissionPerHost")
	}
	if lost := s.Counters["cluster/losses"]; lost < uint64(sm.Lost) {
		t.Fatalf("engine losses %d < counted losses %d", lost, sm.Lost)
	}
	occ, ok := s.Gauges["cluster/station/h0/cpu/mean_occupancy"]
	if !ok {
		t.Fatalf("missing station occupancy gauge: %v", s.Gauges)
	}
	if occ <= 0 {
		t.Fatalf("mean occupancy = %g, want > 0", occ)
	}
	if s.Gauges["desim/queue_high_water"] <= 0 {
		t.Fatalf("queue high water missing: %v", s.Gauges)
	}
	// The snapshot must serialize cleanly (no NaN/Inf gauges).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not serializable: %v", err)
	}
}

// TestRunTracerWired checks that Config.Tracer receives the run's
// scheduler operations as parseable JSONL.
func TestRunTracerWired(t *testing.T) {
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf, 1)
	cfg := Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{flatSpec(workload.NewPoisson(5))},
		Horizon:  50,
		Seed:     7,
		Tracer:   tw,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if uint64(len(lines)) < res.Obs.Counters["desim/events_fired"] {
		t.Fatalf("trace lines %d < fired events %d", len(lines), res.Obs.Counters["desim/events_fired"])
	}
	for _, line := range lines[:10] {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
	}
}

// TestRunDeterminismUnaffectedByObs pins that observability never
// perturbs the physics: two identical runs, one traced and one not,
// produce identical service metrics.
func TestRunDeterminismUnaffectedByObs(t *testing.T) {
	base := Config{
		Mode:     Dedicated,
		Services: []ServiceSpec{flatSpec(workload.NewPoisson(5))},
		Horizon:  200,
		Warmup:   50,
		Seed:     11,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Tracer = obs.NewTraceWriter(&bytes.Buffer{}, 100)
	again, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.Services[0], again.Services[0]
	if a.Arrivals != b.Arrivals || a.Served != b.Served || a.Lost != b.Lost {
		t.Fatalf("tracing changed the run: %+v vs %+v", a, b)
	}
}
