package cluster

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/replicate"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ServiceCIs carries confidence intervals over one service's
// per-replication metrics.
type ServiceCIs struct {
	Name       string
	Loss       stats.CI // mean per-replication loss probability
	Throughput stats.CI // mean per-replication throughput
	RespMean   stats.CI // mean of per-replication mean response times
	RespP95    stats.CI // mean of per-replication p95 estimates
	RespP99    stats.CI // mean of per-replication p99 estimates
}

// ReplicationSet is the outcome of a replication study over Run.
type ReplicationSet struct {
	// Results holds one full Result per completed replication, in
	// replication order.
	Results []*Result

	// Services aggregates each service's metrics across replications.
	Services []ServiceCIs

	// OverallLoss is the CI over the per-replication pooled loss
	// probability (all services' losses over all services' arrivals) — the
	// early-stop metric.
	OverallLoss stats.CI

	// TotalThroughput is the CI over per-replication total throughput.
	TotalThroughput stats.CI

	// BottleneckUtil is the CI over per-replication mean bottleneck
	// utilization (the u_s the power model consumes).
	BottleneckUtil stats.CI

	// EarlyStopped reports whether the precision target was reached before
	// all requested replications ran.
	EarlyStopped bool

	// Obs merges the per-replication engine-metric snapshots: counters
	// and histograms sum, gauges keep their maximum across replications.
	Obs obs.Snapshot
}

// overallLoss pools every service's counters into one loss probability.
func overallLoss(res *Result) float64 {
	var lost, arrived int64
	for _, s := range res.Services {
		lost += s.Lost
		arrived += s.Arrivals
	}
	if arrived == 0 {
		return 0
	}
	return float64(lost) / float64(arrived)
}

// cloneConfig deep-copies the parts of cfg a concurrent replication would
// otherwise share: the Services slice and any stateful arrival processes.
func cloneConfig(cfg Config, seed uint64) Config {
	c := cfg
	c.Seed = seed
	c.Services = append([]ServiceSpec(nil), cfg.Services...)
	for i := range c.Services {
		if c.Services[i].Arrivals != nil {
			c.Services[i].Arrivals = workload.Clone(c.Services[i].Arrivals)
		}
	}
	return c
}

// Replications runs independent replications of cfg through the parallel
// replication engine: replication r uses seed cfg.Seed+r (rcfg.Seed is
// ignored), results merge in replication order so the outcome is identical
// for any worker count, and rcfg.Precision > 0 enables CI-driven early
// stopping on the pooled loss probability. Stateful arrival processes are
// cloned per replication, so concurrent runs never share phase state.
func Replications(ctx context.Context, cfg Config, rcfg replicate.Config) (*ReplicationSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rcfg.Replications <= 0 {
		return nil, fmt.Errorf("%w: replications=%d", ErrInvalidConfig, rcfg.Replications)
	}
	rcfg.Seed = cfg.Seed
	if cfg.Pool == nil {
		// Sharded runs claim their extra goroutines from the same budget
		// the replication workers draw on, so shards × workers never
		// oversubscribe the machine.
		cfg.Pool = rcfg.Pool
	}
	eng, err := replicate.Run(ctx, rcfg,
		func(_ int, seed uint64) (*Result, error) {
			return Run(cloneConfig(cfg, seed))
		},
		overallLoss)
	if eng == nil {
		return nil, err
	}
	set := aggregate(eng, rcfg.Confidence)
	return set, err
}

// aggregate folds per-replication results into cross-replication CIs.
func aggregate(eng *replicate.Result[*Result], confidence float64) *ReplicationSet {
	if confidence == 0 {
		confidence = 0.95
	}
	set := &ReplicationSet{
		Results:      eng.Outputs,
		OverallLoss:  eng.CI,
		EarlyStopped: eng.EarlyStopped,
	}
	if len(eng.Outputs) == 0 {
		return set
	}
	for _, res := range eng.Outputs {
		set.Obs = set.Obs.Merge(res.Obs)
	}
	var total, bottleneck stats.Accumulator
	nsvc := len(eng.Outputs[0].Services)
	type svcAcc struct {
		loss, thr, respMean, p95, p99 stats.Accumulator
	}
	accs := make([]svcAcc, nsvc)
	for _, res := range eng.Outputs {
		total.Add(res.TotalThroughput())
		bottleneck.Add(res.MeanBottleneckUtilization())
		for i := range res.Services {
			sm := &res.Services[i]
			accs[i].loss.Add(sm.LossProb)
			accs[i].thr.Add(sm.Throughput)
			if m := sm.ResponseTimes.Mean(); !math.IsNaN(m) {
				accs[i].respMean.Add(m)
			}
			accs[i].p95.Add(sm.RespP95)
			accs[i].p99.Add(sm.RespP99)
		}
	}
	set.TotalThroughput = total.MeanCI(confidence)
	set.BottleneckUtil = bottleneck.MeanCI(confidence)
	for i := range accs {
		set.Services = append(set.Services, ServiceCIs{
			Name:       eng.Outputs[0].Services[i].Name,
			Loss:       accs[i].loss.MeanCI(confidence),
			Throughput: accs[i].thr.MeanCI(confidence),
			RespMean:   accs[i].respMean.MeanCI(confidence),
			RespP95:    accs[i].p95.MeanCI(confidence),
			RespP99:    accs[i].p99.MeanCI(confidence),
		})
	}
	return set
}

// String renders a compact cross-replication report.
func (s *ReplicationSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d replications", len(s.Results))
	if s.EarlyStopped {
		b.WriteString(" (early stop)")
	}
	fmt.Fprintf(&b, ", pooled loss %s\n", s.OverallLoss)
	for _, svc := range s.Services {
		fmt.Fprintf(&b, "  %-20s thr=%8.2f ±%-7.2f loss=%6.4f ±%-7.4f resp=%7.4fs ±%.4f\n",
			svc.Name, svc.Throughput.Point, svc.Throughput.HalfWidth(),
			svc.Loss.Point, svc.Loss.HalfWidth(),
			svc.RespMean.Point, svc.RespMean.HalfWidth())
	}
	fmt.Fprintf(&b, "  total throughput %s\n  mean bottleneck utilization %s",
		s.TotalThroughput, s.BottleneckUtil)
	return b.String()
}
