package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/replicate"
	"repro/internal/workload"
)

// replCfg is a small consolidated experiment with a *stateful* arrival
// process (MMPP2), so the tests also cover per-replication cloning: sharing
// one MMPP2 across replications would leak phase state and break
// determinism.
func replCfg() Config {
	spec := flatSpec(workload.NewMMPP2(8, 2, 3, 3)) // mean rate 5
	spec.DedicatedServers = 0
	return Config{
		Mode:                Consolidated,
		Services:            []ServiceSpec{spec},
		ConsolidatedServers: 2,
		Horizon:             400,
		Warmup:              40,
		Seed:                29,
	}
}

func sameResult(a, b *Result) bool {
	if len(a.Services) != len(b.Services) {
		return false
	}
	for i := range a.Services {
		x, y := a.Services[i], b.Services[i]
		if x.Arrivals != y.Arrivals || x.Served != y.Served || x.Lost != y.Lost ||
			x.Throughput != y.Throughput || x.RespP95 != y.RespP95 {
			return false
		}
	}
	for i := range a.Hosts {
		if a.Hosts[i].Bottleneck != b.Hosts[i].Bottleneck {
			return false
		}
	}
	return true
}

// TestReplicationsDeterministicAcrossWorkers: merged results are
// bit-identical for workers 1 and 4, and replication 0 reproduces a plain
// Run with the base seed (so R=1 studies equal single runs exactly).
func TestReplicationsDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	cfg := replCfg()
	single, err := Run(cloneConfig(cfg, cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	var ref *ReplicationSet
	for _, workers := range []int{1, 4} {
		set, err := Replications(ctx, cfg, replicate.Config{Replications: 4, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(set.Results) != 4 {
			t.Fatalf("workers=%d: %d results", workers, len(set.Results))
		}
		if !sameResult(set.Results[0], single) {
			t.Fatalf("workers=%d: replication 0 diverged from plain Run", workers)
		}
		if ref == nil {
			ref = set
			continue
		}
		for i := range ref.Results {
			if !sameResult(set.Results[i], ref.Results[i]) {
				t.Fatalf("workers=%d: replication %d diverged", workers, i)
			}
		}
		if set.OverallLoss != ref.OverallLoss || set.TotalThroughput != ref.TotalThroughput ||
			set.BottleneckUtil != ref.BottleneckUtil {
			t.Fatalf("workers=%d: aggregate CIs diverged", workers)
		}
	}
	// The original config's arrival process must be untouched by cloning:
	// a fresh study from the same config reproduces the same bytes.
	again, err := Replications(ctx, cfg, replicate.Config{Replications: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again.OverallLoss != ref.OverallLoss {
		t.Fatal("re-running the study from the same config diverged (arrival state leaked)")
	}
}

func TestReplicationsAggregates(t *testing.T) {
	cfg := replCfg()
	set, err := Replications(context.Background(), cfg, replicate.Config{Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Services) != 1 || set.Services[0].Name != "flat" {
		t.Fatalf("services %+v", set.Services)
	}
	svc := set.Services[0]
	if svc.Throughput.Point <= 0 || svc.RespMean.Point <= 0 {
		t.Fatalf("degenerate service CIs %+v", svc)
	}
	if set.TotalThroughput.Point != svc.Throughput.Point {
		t.Fatalf("total %v != sole service %v", set.TotalThroughput.Point, svc.Throughput.Point)
	}
	if set.BottleneckUtil.Point <= 0 || set.BottleneckUtil.Point > 1 {
		t.Fatalf("bottleneck utilization %v", set.BottleneckUtil.Point)
	}
	out := set.String()
	if !strings.Contains(out, "3 replications") || !strings.Contains(out, "flat") {
		t.Fatalf("report: %s", out)
	}

	if _, err := Replications(context.Background(), cfg, replicate.Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("zero replications: %v", err)
	}
	bad := cfg
	bad.Horizon = 0
	if _, err := Replications(context.Background(), bad, replicate.Config{Replications: 2}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid config: %v", err)
	}
}

// TestReplicationsEarlyStop: with loose precision the study stops at the
// floor instead of burning all replications.
func TestReplicationsEarlyStop(t *testing.T) {
	cfg := replCfg()
	set, err := Replications(context.Background(), cfg,
		replicate.Config{Replications: 12, Precision: 10, MinReplications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !set.EarlyStopped || len(set.Results) != 2 {
		t.Fatalf("early=%v n=%d, want stop at the floor of 2", set.EarlyStopped, len(set.Results))
	}
}
