package cluster

import (
	"fmt"
	"math"

	"repro/internal/desim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// request is one in-flight service request.
type request struct {
	service  int
	host     *host
	arrived  desim.Time
	refs     []*jobRef
	stations []*station
	left     int  // stations still draining
	counted  bool // arrived after warmup
	client   int  // closed-loop client index, -1 for open loop
	dead     bool // lost to host failure
}

// host is one physical server.
type host struct {
	id       int
	shard    int   // which shard simulator owns this host's events
	services []int // indexes into cfg.Services hosted here
	// stations[r] in flowing mode; vmStations[vmPos][r] in partitioned
	// mode (vmPos indexes host.services).
	stations   map[string]*station
	vmStations []map[string]*station
	// ordered lists every station of the host in deterministic build
	// order (sorted resource order, VMs in position order), so run-time
	// visitors iterate without sorting map keys per call.
	ordered  []*station
	inflight int
	up       bool
	// capability reports the host's per-resource speed relative to the
	// reference server; utilization fractions are normalized by it.
	capability func(resource string) float64
}

// everyStation visits all stations of the host in sorted resource order,
// keeping callers deterministic.
func (h *host) everyStation(fn func(*station)) {
	for _, st := range h.ordered {
		fn(st)
	}
}

// runner holds the live simulation state.
type runner struct {
	cfg *Config

	// One simulator (and arena) per shard. Shard 0 is the whole run when
	// sequential; otherwise every coupling component lives entirely on
	// one shard and shards share no mutable state while running (see
	// shard.go). svcShard maps each service to its shard; nil means
	// everything on shard 0. The *One arrays back the slices in the
	// common sequential case so it allocates nothing per run.
	nshards  int
	sims     []*desim.Simulator
	arenas   []*Arena // nil = allocate requests/jobRefs individually
	svcShard []int
	// shardFailures is the per-shard single-writer failure count, summed
	// into Result.Failures at finish.
	shardFailures []int64
	simsOne       [1]*desim.Simulator
	arenasOne     [1]*Arena
	failuresOne   [1]int64
	// elapsed is the wall-clock time of the event loops, feeding the
	// events-per-second gauge on sharded runs.
	elapsed float64

	root      *stats.Stream
	hosts     []*host
	byService [][]*host  // dispatch pools per service
	rrNext    []int      // round-robin cursors per service
	resources [][]string // per-service sorted demanded resources
	demands   []*stats.Stream
	thinks    []*stats.Stream
	p95, p99  []*stats.P2Quantile // per-service response-time percentiles
	res       *Result

	// Observability: every run owns a registry (isolated per replication,
	// so parallel replications never contend) snapshotted into Result.Obs.
	reg           *obs.Registry
	obsAdmissions *obs.Counter
	obsLosses     *obs.Counter
	obsFailures   *obs.Counter
}

// Run builds and executes the experiment, returning aggregated metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		cfg:  &cfg,
		root: stats.NewStream(cfg.Seed, fmt.Sprintf("cluster/%s", cfg.Mode)),
		reg:  obs.NewRegistry(),
	}
	r.planShards()
	if r.nshards == 1 {
		r.sims = r.simsOne[:]
		r.shardFailures = r.failuresOne[:]
	} else {
		r.sims = make([]*desim.Simulator, r.nshards)
		r.shardFailures = make([]int64, r.nshards)
	}
	if cfg.Arenas != nil {
		if r.nshards == 1 {
			r.arenas = r.arenasOne[:]
		} else {
			r.arenas = make([]*Arena, r.nshards)
		}
		for s := range r.sims {
			a := cfg.Arenas.Get()
			r.arenas[s] = a
			r.sims[s] = a.sim
			defer cfg.Arenas.Put(a)
		}
	} else {
		for s := range r.sims {
			r.sims[s] = desim.New()
		}
	}
	r.applyQueue()
	if cfg.Tracer != nil {
		r.sims[0].SetTracer(cfg.Tracer) // planShards forced nshards = 1
	}
	r.res = newResult(&cfg)
	r.build()
	r.registerObs()
	if cfg.Warmup > 0 {
		// Snapshot delivered work at the warmup boundary so finish() can
		// scope utilization to the same post-warmup window as loss and
		// throughput. Each shard snapshots its own hosts on its own clock.
		for s := 0; s < r.nshards; s++ {
			s := s
			r.sims[s].At(cfg.Warmup, func() {
				for _, h := range r.hosts {
					if h.shard == s {
						h.everyStation(func(st *station) { st.snapshotWarmup() })
					}
				}
			})
		}
	}
	r.startDrivers()
	if cfg.MTBF > 0 {
		r.startFailures()
	}
	r.runShards()
	r.finish()
	return r.res, nil
}

// build creates hosts and stations.
func (r *runner) build() {
	cfg := r.cfg
	r.byService = make([][]*host, len(cfg.Services))
	r.rrNext = make([]int, len(cfg.Services))
	r.demands = make([]*stats.Stream, len(cfg.Services))
	r.thinks = make([]*stats.Stream, len(cfg.Services))
	r.resources = make([][]string, len(cfg.Services))
	r.p95 = make([]*stats.P2Quantile, len(cfg.Services))
	r.p99 = make([]*stats.P2Quantile, len(cfg.Services))
	for i := range cfg.Services {
		r.p95[i] = stats.NewP2Quantile(0.95)
		r.p99[i] = stats.NewP2Quantile(0.99)
		r.demands[i] = r.root.Substream(fmt.Sprintf("demand/%d", i))
		r.thinks[i] = r.root.Substream(fmt.Sprintf("think/%d", i))
		// Map iteration order is randomized; sample demands in a fixed,
		// sorted resource order so runs are seed-deterministic.
		r.resources[i] = resourceSet(cfg.Services[i : i+1])
	}

	mkStation := func(shard int, name string, capacity float64) *station {
		st := newStation(r.sims[shard], name, capacity, r.onStationDone)
		if r.arenas != nil {
			st.newJob = r.arenas[shard].getJobRef
		} else {
			// No arena: the runner never reads a request's refs after
			// completion, so stations can recycle jobRefs locally.
			st.recycleJobs = true
		}
		return st
	}
	newHost := func(id, shard int, services []int, capability func(string) float64) *host {
		h := &host{id: id, shard: shard, services: services, up: true, capability: capability}
		resources := resourceSet(pick(cfg.Services, services))
		if cfg.Mode == Consolidated && cfg.Alloc != nil {
			// Partitioned: one station per VM per resource.
			shares := cfg.Alloc.Shares(make([]float64, len(services)))
			h.vmStations = make([]map[string]*station, len(services))
			for pos := range services {
				h.vmStations[pos] = map[string]*station{}
				for _, res := range resources {
					cap := shares[pos] * (1 - cfg.Alloc.Overhead()) * capability(res)
					name := fmt.Sprintf("h%d/vm%d/%s", id, pos, res)
					st := mkStation(shard, name, cap)
					h.vmStations[pos][res] = st
					h.ordered = append(h.ordered, st)
				}
			}
		} else {
			// Flowing (or dedicated): one shared station per resource.
			h.stations = map[string]*station{}
			for _, res := range resources {
				name := fmt.Sprintf("h%d/%s", id, res)
				st := mkStation(shard, name, capability(res))
				h.stations[res] = st
				h.ordered = append(h.ordered, st)
			}
		}
		return h
	}
	referenceHost := func(string) float64 { return 1 }

	switch cfg.Mode {
	case Dedicated:
		id := 0
		for svc := range cfg.Services {
			for k := 0; k < cfg.Services[svc].DedicatedServers; k++ {
				h := newHost(id, r.shardOf(svc), []int{svc}, referenceHost)
				id++
				r.hosts = append(r.hosts, h)
				r.byService[svc] = append(r.byService[svc], h)
			}
		}
	case Consolidated:
		all := make([]int, len(cfg.Services))
		for i := range all {
			all[i] = i
		}
		addHost := func(id int, capability func(string) float64) {
			h := newHost(id, 0, all, capability)
			r.hosts = append(r.hosts, h)
			for svc := range cfg.Services {
				r.byService[svc] = append(r.byService[svc], h)
			}
		}
		if len(cfg.HostClasses) > 0 {
			id := 0
			for _, hc := range cfg.HostClasses {
				hc := hc
				for k := 0; k < hc.Count; k++ {
					addHost(id, hc.capabilityOn)
					id++
				}
			}
		} else {
			for k := 0; k < cfg.ConsolidatedServers; k++ {
				addHost(k, referenceHost)
			}
		}
	}

	// Periodic Rainbow rebalancing. Consolidated mode is a single
	// coupling component, so the tick always lives on shard 0.
	if cfg.Mode == Consolidated && cfg.Alloc != nil && cfg.Alloc.Period() > 0 {
		sim := r.sims[0]
		var tick func()
		tick = func() {
			for _, h := range r.hosts {
				if !h.up || h.vmStations == nil {
					continue
				}
				backlogs := make([]float64, len(h.vmStations))
				for pos, vm := range h.vmStations {
					for _, st := range vm {
						backlogs[pos] += st.backlog()
					}
				}
				shares := cfg.Alloc.Shares(backlogs)
				for pos, vm := range h.vmStations {
					for res, st := range vm {
						st.setCapacity(shares[pos] * (1 - cfg.Alloc.Overhead()) * h.capability(res))
					}
				}
			}
			if sim.Now()+cfg.Alloc.Period() <= cfg.Horizon {
				sim.After(cfg.Alloc.Period(), tick)
			}
		}
		sim.After(cfg.Alloc.Period(), tick)
	}
}

// registerObs publishes the run's engine counters: the discrete-event
// core's schedule/fire/cancel/compaction counts, dispatcher admissions
// and losses (atomic counters — per-request, off the per-event hot
// path), virtual-time advances summed over stations (each station keeps
// a plain field; the registry reads them only at snapshot), and one
// mean-occupancy gauge per station. Must run after build().
//
// Sequential runs keep the exact pre-shard metric set under "desim" so
// default manifests stay byte-identical. Sharded runs publish each
// shard's engine under "desim/shard<i>" plus merged "desim" totals
// (sums; high-water and slots report the max and sum across shards), a
// shard-count gauge, and the merged events-per-second throughput of the
// parallel event loops.
func (r *runner) registerObs() {
	if r.nshards == 1 {
		obs.RegisterSimulator(r.reg, "desim", r.sims[0])
	} else {
		for s, sim := range r.sims {
			obs.RegisterSimulator(r.reg, fmt.Sprintf("desim/shard%d", s), sim)
		}
		sum := func(field func(desim.Stats) uint64) func() uint64 {
			return func() uint64 {
				var total uint64
				for _, sim := range r.sims {
					total += field(sim.Stats())
				}
				return total
			}
		}
		r.reg.CounterFunc("desim/events_scheduled", sum(func(s desim.Stats) uint64 { return s.Scheduled }))
		r.reg.CounterFunc("desim/events_fired", sum(func(s desim.Stats) uint64 { return s.Fired }))
		r.reg.CounterFunc("desim/events_cancelled", sum(func(s desim.Stats) uint64 { return s.Cancelled }))
		r.reg.CounterFunc("desim/arena_compactions", sum(func(s desim.Stats) uint64 { return s.Compactions }))
		r.reg.GaugeFunc("desim/queue_high_water", func() float64 {
			m := 0
			for _, sim := range r.sims {
				if q := sim.Stats().MaxQueue; q > m {
					m = q
				}
			}
			return float64(m)
		})
		r.reg.GaugeFunc("desim/arena_slots", func() float64 {
			total := 0
			for _, sim := range r.sims {
				total += sim.Stats().ArenaSlots
			}
			return float64(total)
		})
		r.reg.GaugeFunc("cluster/shards", func() float64 { return float64(r.nshards) })
		r.reg.GaugeFunc("cluster/events_per_sec", func() float64 {
			if r.elapsed <= 0 {
				return 0
			}
			var fired uint64
			for _, sim := range r.sims {
				fired += sim.Stats().Fired
			}
			return float64(fired) / r.elapsed
		})
	}
	r.obsAdmissions = r.reg.Counter("cluster/admissions")
	r.obsLosses = r.reg.Counter("cluster/losses")
	r.obsFailures = r.reg.Counter("cluster/host_failures")
	r.reg.CounterFunc("cluster/vt_advances", func() uint64 {
		var total uint64
		for _, h := range r.hosts {
			h.everyStation(func(st *station) { total += st.advances })
		}
		return total
	})
	for _, h := range r.hosts {
		h.everyStation(func(st *station) {
			r.reg.GaugeFunc("cluster/station/"+st.name+"/mean_occupancy", func() float64 {
				return st.meanOccupancy(st.sim.Now())
			})
		})
	}
}

func pick(specs []ServiceSpec, idx []int) []ServiceSpec {
	out := make([]ServiceSpec, 0, len(idx))
	for _, i := range idx {
		out = append(out, specs[i])
	}
	return out
}

// startDrivers launches open-loop arrival streams and closed-loop clients.
func (r *runner) startDrivers() {
	for svc := range r.cfg.Services {
		spec := &r.cfg.Services[svc]
		sim := r.sims[r.shardOf(svc)]
		if spec.Arrivals != nil {
			svc := svc
			arr := r.root.Substream(fmt.Sprintf("arrivals/%d", svc))
			var loop func()
			loop = func() {
				r.dispatch(svc, -1)
				gap := spec.Arrivals.Next(arr)
				if sim.Now()+gap <= r.cfg.Horizon {
					sim.After(gap, loop)
				}
			}
			first := spec.Arrivals.Next(arr)
			if first <= r.cfg.Horizon {
				sim.At(first, loop)
			}
			continue
		}
		// Closed loop: stagger client starts uniformly over one think time.
		for c := 0; c < spec.Clients; c++ {
			svc, c := svc, c
			start := r.thinkTime(svc) * r.thinks[svc].Float64()
			if start > r.cfg.Horizon {
				continue
			}
			sim.At(start, func() { r.dispatch(svc, c) })
		}
	}
}

// thinkTime samples a think time for service svc.
func (r *runner) thinkTime(svc int) float64 {
	spec := &r.cfg.Services[svc]
	if spec.ThinkTime != nil {
		return spec.ThinkTime.Sample(r.thinks[svc])
	}
	return r.thinks[svc].ExpFloat64() * 7 // TPC-W default mean think time
}

// clientThink schedules the next request of a closed-loop client.
func (r *runner) clientThink(svc, client int) {
	d := r.thinkTime(svc)
	sim := r.sims[r.shardOf(svc)]
	if sim.Now()+d <= r.cfg.Horizon {
		sim.After(d, func() { r.dispatch(svc, client) })
	}
}

// dispatch routes one request of service svc (client >= 0 for closed loop)
// through the LVS round-robin dispatcher.
func (r *runner) dispatch(svc, client int) {
	shard := r.shardOf(svc)
	now := r.sims[shard].Now()
	counted := now >= r.cfg.Warmup
	sm := &r.res.Services[svc]
	if counted {
		sm.Arrivals++
	}
	h := r.pickHost(svc)
	if h == nil || h.inflight >= r.cfg.admission() {
		r.obsLosses.Inc()
		if counted {
			sm.Lost++
		}
		if client >= 0 {
			r.clientThink(svc, client)
		}
		return
	}
	req := r.newRequest(shard)
	req.service, req.host, req.arrived = svc, h, now
	req.counted, req.client = counted, client
	r.admit(req)
}

// pickHost returns the next live host in round-robin order. Down hosts are
// probed but do not burn cursor positions: the cursor lands just past the
// host actually chosen, so a failed host never shifts the rotation among
// the survivors.
func (r *runner) pickHost(svc int) *host {
	pool := r.byService[svc]
	n := len(pool)
	if n == 0 {
		return nil
	}
	start := r.rrNext[svc] % n
	for k := 0; k < n; k++ {
		idx := (start + k) % n
		if h := pool[idx]; h.up {
			r.rrNext[svc] = idx + 1
			return h
		}
	}
	return nil
}

// admit deposits the request's work on its host's stations.
func (r *runner) admit(req *request) {
	cfg := r.cfg
	spec := &cfg.Services[req.service]
	h := req.host
	h.inflight++
	r.obsAdmissions.Inc()

	// Which station set serves this request?
	vmPos := -1
	if h.vmStations != nil {
		for pos, s := range h.services {
			if s == req.service {
				vmPos = pos
				break
			}
		}
	}

	for _, res := range r.resources[req.service] {
		dist := spec.Profile.Demands[res]
		hwRate := spec.Profile.ServingRate(res)
		if math.IsInf(hwRate, 1) {
			continue
		}
		natRate := nativeRate(spec.Profile, res)
		// Sample a hardware-speed demand and rescale to native speed.
		work := dist.Sample(r.demands[req.service]) * hwRate / natRate
		if cfg.Mode == Consolidated {
			v := activeVMs(cfg.Services, h.services, res)
			factor, err := spec.Overhead.RawFactor(res, v)
			if err == nil && factor > 0 {
				work /= factor
			}
		}
		var st *station
		if vmPos >= 0 {
			st = h.vmStations[vmPos][res]
		} else {
			st = h.stations[res]
		}
		if st == nil {
			continue
		}
		req.stations = append(req.stations, st)
		req.refs = append(req.refs, st.add(req, work))
		req.left++
	}
	if req.left == 0 {
		// Degenerate profile with no finite demands: complete immediately.
		r.completeRequest(req)
	}
}

// onStationDone fires when one station finishes a request's work there.
func (r *runner) onStationDone(req *request, _ *station) {
	if req.dead {
		return
	}
	req.left--
	if req.left == 0 {
		r.completeRequest(req)
	}
}

func (r *runner) completeRequest(req *request) {
	req.host.inflight--
	sm := &r.res.Services[req.service]
	// counted implies the arrival was post-warmup, and time only moves
	// forward, so no boundary re-check is needed here.
	if req.counted {
		sm.Served++
		rt := r.sims[req.host.shard].Now() - req.arrived
		sm.ResponseTimes.Add(rt)
		r.p95[req.service].Add(rt)
		r.p99[req.service].Add(rt)
	}
	if req.client >= 0 {
		r.clientThink(req.service, req.client)
	}
	// A completed request has drained every station (left == 0), so its
	// whole object graph is free for reuse. Failure-path requests never
	// get here and stay with the garbage collector.
	if r.arenas != nil && !req.dead {
		r.arenas[req.host.shard].recycleRequest(req)
	}
}

// newRequest hands out a zeroed request, recycled when an arena is
// attached.
func (r *runner) newRequest(shard int) *request {
	if r.arenas != nil {
		return r.arenas[shard].getRequest()
	}
	return &request{}
}

// startFailures arms the host failure/repair processes. Each host's
// process lives on its own shard's simulator; the failure count is
// written per shard (single writer) and summed at finish.
func (r *runner) startFailures() {
	for _, h := range r.hosts {
		h := h
		sim := r.sims[h.shard]
		fs := r.root.Substream(fmt.Sprintf("failures/%d", h.id))
		var fail, repair func()
		fail = func() {
			h.up = false
			r.shardFailures[h.shard]++
			r.obsFailures.Inc()
			// Lose all in-flight requests on this host, in a deterministic
			// order (map iteration would perturb the think-time stream).
			seen := map[*request]bool{}
			var victims []*request
			h.everyStation(func(st *station) {
				for _, req := range st.clear() {
					if !seen[req] {
						seen[req] = true
						victims = append(victims, req)
					}
				}
			})
			for _, req := range victims {
				req.dead = true
				h.inflight--
				r.obsLosses.Inc()
				if req.counted {
					r.res.Services[req.service].Lost++
				}
				if req.client >= 0 {
					r.clientThink(req.service, req.client)
				}
			}
			d := fs.ExpFloat64() * r.cfg.MTTR
			if sim.Now()+d <= r.cfg.Horizon {
				sim.After(d, repair)
			}
		}
		repair = func() {
			h.up = true
			d := fs.ExpFloat64() * r.cfg.MTBF
			if sim.Now()+d <= r.cfg.Horizon {
				sim.After(d, fail)
			}
		}
		d := fs.ExpFloat64() * r.cfg.MTBF
		if d <= r.cfg.Horizon {
			sim.After(d, fail)
		}
	}
}

// finish closes statistics at the horizon.
func (r *runner) finish() {
	for _, n := range r.shardFailures {
		r.res.Failures += n
	}
	window := r.cfg.Horizon - r.cfg.Warmup
	for i := range r.res.Services {
		sm := &r.res.Services[i]
		if sm.Arrivals > 0 {
			sm.LossProb = float64(sm.Lost) / float64(sm.Arrivals)
		}
		if window > 0 {
			sm.Throughput = float64(sm.Served) / window
		}
		if v := r.p95[i].Value(); !math.IsNaN(v) {
			sm.RespP95 = v
		}
		if v := r.p99[i].Value(); !math.IsNaN(v) {
			sm.RespP99 = v
		}
	}
	for _, h := range r.hosts {
		hm := HostMetrics{ID: h.id, Utilization: map[string]float64{}}
		collect := func(st *station, res string) {
			st.advance()
			// Work delivered inside the observation window, normalized by
			// the host's full capacity on the resource over that window: a
			// fraction of the machine kept busy — the same interval loss
			// and throughput are scoped to.
			u := st.windowWork() / (window * h.capability(res))
			hm.Utilization[res] += u
		}
		for res, st := range h.stations {
			collect(st, res)
		}
		for _, vm := range h.vmStations {
			for res, st := range vm {
				collect(st, res)
			}
		}
		for res, u := range hm.Utilization {
			if u > 1 {
				hm.Utilization[res] = 1
			}
			if hm.Utilization[res] > hm.Bottleneck {
				hm.Bottleneck = hm.Utilization[res]
			}
		}
		r.res.Hosts = append(r.res.Hosts, hm)
	}
	r.res.Window = window
	r.res.Obs = r.reg.Snapshot()
}
