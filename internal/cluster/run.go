package cluster

import (
	"fmt"
	"math"

	"repro/internal/desim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// request is one in-flight service request.
type request struct {
	service  int
	host     *host
	arrived  desim.Time
	refs     []*jobRef
	stations []*station
	left     int  // stations still draining
	counted  bool // arrived after warmup
	client   int  // closed-loop client index, -1 for open loop
	dead     bool // lost to host failure
}

// host is one physical server.
type host struct {
	id       int
	services []int // indexes into cfg.Services hosted here
	// stations[r] in flowing mode; vmStations[vmPos][r] in partitioned
	// mode (vmPos indexes host.services).
	stations   map[string]*station
	vmStations []map[string]*station
	inflight   int
	up         bool
	// capability reports the host's per-resource speed relative to the
	// reference server; utilization fractions are normalized by it.
	capability func(resource string) float64
}

// everyStation visits all stations of the host in sorted resource order,
// keeping callers deterministic.
func (h *host) everyStation(fn func(*station)) {
	for _, res := range sortedKeys(h.stations) {
		fn(h.stations[res])
	}
	for _, vm := range h.vmStations {
		for _, res := range sortedKeys(vm) {
			fn(vm[res])
		}
	}
}

func sortedKeys(m map[string]*station) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for k := i; k > 0 && keys[k] < keys[k-1]; k-- {
			keys[k], keys[k-1] = keys[k-1], keys[k]
		}
	}
	return keys
}

// runner holds the live simulation state.
type runner struct {
	cfg       *Config
	sim       *desim.Simulator
	arena     *Arena // nil = allocate requests/jobRefs individually
	root      *stats.Stream
	hosts     []*host
	byService [][]*host  // dispatch pools per service
	rrNext    []int      // round-robin cursors per service
	resources [][]string // per-service sorted demanded resources
	demands   []*stats.Stream
	thinks    []*stats.Stream
	p95, p99  []*stats.P2Quantile // per-service response-time percentiles
	res       *Result

	// Observability: every run owns a registry (isolated per replication,
	// so parallel replications never contend) snapshotted into Result.Obs.
	reg           *obs.Registry
	obsAdmissions *obs.Counter
	obsLosses     *obs.Counter
	obsFailures   *obs.Counter
}

// Run builds and executes the experiment, returning aggregated metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var ar *Arena
	sim := desim.New()
	if cfg.Arenas != nil {
		ar = cfg.Arenas.Get()
		sim = ar.sim
		defer cfg.Arenas.Put(ar)
	}
	r := &runner{
		cfg:   &cfg,
		sim:   sim,
		arena: ar,
		root:  stats.NewStream(cfg.Seed, fmt.Sprintf("cluster/%s", cfg.Mode)),
		reg:   obs.NewRegistry(),
	}
	if cfg.Tracer != nil {
		r.sim.SetTracer(cfg.Tracer)
	}
	r.res = newResult(&cfg)
	r.build()
	r.registerObs()
	if cfg.Warmup > 0 {
		// Snapshot delivered work at the warmup boundary so finish() can
		// scope utilization to the same post-warmup window as loss and
		// throughput.
		r.sim.At(cfg.Warmup, func() {
			for _, h := range r.hosts {
				h.everyStation(func(st *station) { st.snapshotWarmup() })
			}
		})
	}
	r.startDrivers()
	if cfg.MTBF > 0 {
		r.startFailures()
	}
	r.sim.Run(cfg.Horizon)
	r.finish()
	return r.res, nil
}

// build creates hosts and stations.
func (r *runner) build() {
	cfg := r.cfg
	r.byService = make([][]*host, len(cfg.Services))
	r.rrNext = make([]int, len(cfg.Services))
	r.demands = make([]*stats.Stream, len(cfg.Services))
	r.thinks = make([]*stats.Stream, len(cfg.Services))
	r.resources = make([][]string, len(cfg.Services))
	r.p95 = make([]*stats.P2Quantile, len(cfg.Services))
	r.p99 = make([]*stats.P2Quantile, len(cfg.Services))
	for i := range cfg.Services {
		r.p95[i] = stats.NewP2Quantile(0.95)
		r.p99[i] = stats.NewP2Quantile(0.99)
		r.demands[i] = r.root.Substream(fmt.Sprintf("demand/%d", i))
		r.thinks[i] = r.root.Substream(fmt.Sprintf("think/%d", i))
		// Map iteration order is randomized; sample demands in a fixed,
		// sorted resource order so runs are seed-deterministic.
		r.resources[i] = resourceSet(cfg.Services[i : i+1])
	}

	mkStation := func(name string, capacity float64) *station {
		st := newStation(r.sim, name, capacity, r.onStationDone)
		if r.arena != nil {
			st.newJob = r.newJobRef
		}
		return st
	}
	newHost := func(id int, services []int, capability func(string) float64) *host {
		h := &host{id: id, services: services, up: true, capability: capability}
		resources := resourceSet(pick(cfg.Services, services))
		if cfg.Mode == Consolidated && cfg.Alloc != nil {
			// Partitioned: one station per VM per resource.
			shares := cfg.Alloc.Shares(make([]float64, len(services)))
			h.vmStations = make([]map[string]*station, len(services))
			for pos := range services {
				h.vmStations[pos] = map[string]*station{}
				for _, res := range resources {
					cap := shares[pos] * (1 - cfg.Alloc.Overhead()) * capability(res)
					name := fmt.Sprintf("h%d/vm%d/%s", id, pos, res)
					h.vmStations[pos][res] = mkStation(name, cap)
				}
			}
		} else {
			// Flowing (or dedicated): one shared station per resource.
			h.stations = map[string]*station{}
			for _, res := range resources {
				name := fmt.Sprintf("h%d/%s", id, res)
				h.stations[res] = mkStation(name, capability(res))
			}
		}
		return h
	}
	referenceHost := func(string) float64 { return 1 }

	switch cfg.Mode {
	case Dedicated:
		id := 0
		for svc := range cfg.Services {
			for k := 0; k < cfg.Services[svc].DedicatedServers; k++ {
				h := newHost(id, []int{svc}, referenceHost)
				id++
				r.hosts = append(r.hosts, h)
				r.byService[svc] = append(r.byService[svc], h)
			}
		}
	case Consolidated:
		all := make([]int, len(cfg.Services))
		for i := range all {
			all[i] = i
		}
		addHost := func(id int, capability func(string) float64) {
			h := newHost(id, all, capability)
			r.hosts = append(r.hosts, h)
			for svc := range cfg.Services {
				r.byService[svc] = append(r.byService[svc], h)
			}
		}
		if len(cfg.HostClasses) > 0 {
			id := 0
			for _, hc := range cfg.HostClasses {
				hc := hc
				for k := 0; k < hc.Count; k++ {
					addHost(id, hc.capabilityOn)
					id++
				}
			}
		} else {
			for k := 0; k < cfg.ConsolidatedServers; k++ {
				addHost(k, referenceHost)
			}
		}
	}

	// Periodic Rainbow rebalancing.
	if cfg.Mode == Consolidated && cfg.Alloc != nil && cfg.Alloc.Period() > 0 {
		var tick func()
		tick = func() {
			for _, h := range r.hosts {
				if !h.up || h.vmStations == nil {
					continue
				}
				backlogs := make([]float64, len(h.vmStations))
				for pos, vm := range h.vmStations {
					for _, st := range vm {
						backlogs[pos] += st.backlog()
					}
				}
				shares := cfg.Alloc.Shares(backlogs)
				for pos, vm := range h.vmStations {
					for res, st := range vm {
						st.setCapacity(shares[pos] * (1 - cfg.Alloc.Overhead()) * h.capability(res))
					}
				}
			}
			if r.sim.Now()+cfg.Alloc.Period() <= cfg.Horizon {
				r.sim.After(cfg.Alloc.Period(), tick)
			}
		}
		r.sim.After(cfg.Alloc.Period(), tick)
	}
}

// registerObs publishes the run's engine counters: the discrete-event
// core's schedule/fire/cancel/compaction counts, dispatcher admissions
// and losses (atomic counters — per-request, off the per-event hot
// path), virtual-time advances summed over stations (each station keeps
// a plain field; the registry reads them only at snapshot), and one
// mean-occupancy gauge per station. Must run after build().
func (r *runner) registerObs() {
	obs.RegisterSimulator(r.reg, "desim", r.sim)
	r.obsAdmissions = r.reg.Counter("cluster/admissions")
	r.obsLosses = r.reg.Counter("cluster/losses")
	r.obsFailures = r.reg.Counter("cluster/host_failures")
	r.reg.CounterFunc("cluster/vt_advances", func() uint64 {
		var total uint64
		for _, h := range r.hosts {
			h.everyStation(func(st *station) { total += st.advances })
		}
		return total
	})
	for _, h := range r.hosts {
		h.everyStation(func(st *station) {
			r.reg.GaugeFunc("cluster/station/"+st.name+"/mean_occupancy", func() float64 {
				return st.meanOccupancy(st.sim.Now())
			})
		})
	}
}

func pick(specs []ServiceSpec, idx []int) []ServiceSpec {
	out := make([]ServiceSpec, 0, len(idx))
	for _, i := range idx {
		out = append(out, specs[i])
	}
	return out
}

// startDrivers launches open-loop arrival streams and closed-loop clients.
func (r *runner) startDrivers() {
	for svc := range r.cfg.Services {
		spec := &r.cfg.Services[svc]
		if spec.Arrivals != nil {
			svc := svc
			arr := r.root.Substream(fmt.Sprintf("arrivals/%d", svc))
			var loop func()
			loop = func() {
				r.dispatch(svc, -1)
				gap := spec.Arrivals.Next(arr)
				if r.sim.Now()+gap <= r.cfg.Horizon {
					r.sim.After(gap, loop)
				}
			}
			first := spec.Arrivals.Next(arr)
			if first <= r.cfg.Horizon {
				r.sim.At(first, loop)
			}
			continue
		}
		// Closed loop: stagger client starts uniformly over one think time.
		for c := 0; c < spec.Clients; c++ {
			svc, c := svc, c
			start := r.thinkTime(svc) * r.thinks[svc].Float64()
			if start > r.cfg.Horizon {
				continue
			}
			r.sim.At(start, func() { r.dispatch(svc, c) })
		}
	}
}

// thinkTime samples a think time for service svc.
func (r *runner) thinkTime(svc int) float64 {
	spec := &r.cfg.Services[svc]
	if spec.ThinkTime != nil {
		return spec.ThinkTime.Sample(r.thinks[svc])
	}
	return r.thinks[svc].ExpFloat64() * 7 // TPC-W default mean think time
}

// clientThink schedules the next request of a closed-loop client.
func (r *runner) clientThink(svc, client int) {
	d := r.thinkTime(svc)
	if r.sim.Now()+d <= r.cfg.Horizon {
		r.sim.After(d, func() { r.dispatch(svc, client) })
	}
}

// dispatch routes one request of service svc (client >= 0 for closed loop)
// through the LVS round-robin dispatcher.
func (r *runner) dispatch(svc, client int) {
	now := r.sim.Now()
	counted := now >= r.cfg.Warmup
	sm := &r.res.Services[svc]
	if counted {
		sm.Arrivals++
	}
	h := r.pickHost(svc)
	if h == nil || h.inflight >= r.cfg.admission() {
		r.obsLosses.Inc()
		if counted {
			sm.Lost++
		}
		if client >= 0 {
			r.clientThink(svc, client)
		}
		return
	}
	req := r.newRequest()
	req.service, req.host, req.arrived = svc, h, now
	req.counted, req.client = counted, client
	r.admit(req)
}

// pickHost returns the next live host in round-robin order. Down hosts are
// probed but do not burn cursor positions: the cursor lands just past the
// host actually chosen, so a failed host never shifts the rotation among
// the survivors.
func (r *runner) pickHost(svc int) *host {
	pool := r.byService[svc]
	n := len(pool)
	if n == 0 {
		return nil
	}
	start := r.rrNext[svc] % n
	for k := 0; k < n; k++ {
		idx := (start + k) % n
		if h := pool[idx]; h.up {
			r.rrNext[svc] = idx + 1
			return h
		}
	}
	return nil
}

// admit deposits the request's work on its host's stations.
func (r *runner) admit(req *request) {
	cfg := r.cfg
	spec := &cfg.Services[req.service]
	h := req.host
	h.inflight++
	r.obsAdmissions.Inc()

	// Which station set serves this request?
	vmPos := -1
	if h.vmStations != nil {
		for pos, s := range h.services {
			if s == req.service {
				vmPos = pos
				break
			}
		}
	}

	for _, res := range r.resources[req.service] {
		dist := spec.Profile.Demands[res]
		hwRate := spec.Profile.ServingRate(res)
		if math.IsInf(hwRate, 1) {
			continue
		}
		natRate := nativeRate(spec.Profile, res)
		// Sample a hardware-speed demand and rescale to native speed.
		work := dist.Sample(r.demands[req.service]) * hwRate / natRate
		if cfg.Mode == Consolidated {
			v := activeVMs(cfg.Services, h.services, res)
			factor, err := spec.Overhead.RawFactor(res, v)
			if err == nil && factor > 0 {
				work /= factor
			}
		}
		var st *station
		if vmPos >= 0 {
			st = h.vmStations[vmPos][res]
		} else {
			st = h.stations[res]
		}
		if st == nil {
			continue
		}
		req.stations = append(req.stations, st)
		req.refs = append(req.refs, st.add(req, work))
		req.left++
	}
	if req.left == 0 {
		// Degenerate profile with no finite demands: complete immediately.
		r.completeRequest(req)
	}
}

// onStationDone fires when one station finishes a request's work there.
func (r *runner) onStationDone(req *request, _ *station) {
	if req.dead {
		return
	}
	req.left--
	if req.left == 0 {
		r.completeRequest(req)
	}
}

func (r *runner) completeRequest(req *request) {
	req.host.inflight--
	sm := &r.res.Services[req.service]
	// counted implies the arrival was post-warmup, and time only moves
	// forward, so no boundary re-check is needed here.
	if req.counted {
		sm.Served++
		rt := r.sim.Now() - req.arrived
		sm.ResponseTimes.Add(rt)
		r.p95[req.service].Add(rt)
		r.p99[req.service].Add(rt)
	}
	if req.client >= 0 {
		r.clientThink(req.service, req.client)
	}
	// A completed request has drained every station (left == 0), so its
	// whole object graph is free for reuse. Failure-path requests never
	// get here and stay with the garbage collector.
	if r.arena != nil && !req.dead {
		r.arena.recycleRequest(req)
	}
}

// newRequest hands out a zeroed request, recycled when an arena is
// attached.
func (r *runner) newRequest() *request {
	if r.arena != nil {
		return r.arena.getRequest()
	}
	return &request{}
}

// newJobRef hands out a zeroed jobRef, recycled when an arena is
// attached.
func (r *runner) newJobRef() *jobRef {
	if r.arena != nil {
		return r.arena.getJobRef()
	}
	return &jobRef{}
}

// startFailures arms the host failure/repair processes.
func (r *runner) startFailures() {
	for _, h := range r.hosts {
		h := h
		fs := r.root.Substream(fmt.Sprintf("failures/%d", h.id))
		var fail, repair func()
		fail = func() {
			h.up = false
			r.res.Failures++
			r.obsFailures.Inc()
			// Lose all in-flight requests on this host, in a deterministic
			// order (map iteration would perturb the think-time stream).
			seen := map[*request]bool{}
			var victims []*request
			h.everyStation(func(st *station) {
				for _, req := range st.clear() {
					if !seen[req] {
						seen[req] = true
						victims = append(victims, req)
					}
				}
			})
			for _, req := range victims {
				req.dead = true
				h.inflight--
				r.obsLosses.Inc()
				if req.counted {
					r.res.Services[req.service].Lost++
				}
				if req.client >= 0 {
					r.clientThink(req.service, req.client)
				}
			}
			d := fs.ExpFloat64() * r.cfg.MTTR
			if r.sim.Now()+d <= r.cfg.Horizon {
				r.sim.After(d, repair)
			}
		}
		repair = func() {
			h.up = true
			d := fs.ExpFloat64() * r.cfg.MTBF
			if r.sim.Now()+d <= r.cfg.Horizon {
				r.sim.After(d, fail)
			}
		}
		d := fs.ExpFloat64() * r.cfg.MTBF
		if d <= r.cfg.Horizon {
			r.sim.After(d, fail)
		}
	}
}

// finish closes statistics at the horizon.
func (r *runner) finish() {
	window := r.cfg.Horizon - r.cfg.Warmup
	for i := range r.res.Services {
		sm := &r.res.Services[i]
		if sm.Arrivals > 0 {
			sm.LossProb = float64(sm.Lost) / float64(sm.Arrivals)
		}
		if window > 0 {
			sm.Throughput = float64(sm.Served) / window
		}
		if v := r.p95[i].Value(); !math.IsNaN(v) {
			sm.RespP95 = v
		}
		if v := r.p99[i].Value(); !math.IsNaN(v) {
			sm.RespP99 = v
		}
	}
	for _, h := range r.hosts {
		hm := HostMetrics{ID: h.id, Utilization: map[string]float64{}}
		collect := func(st *station, res string) {
			st.advance()
			// Work delivered inside the observation window, normalized by
			// the host's full capacity on the resource over that window: a
			// fraction of the machine kept busy — the same interval loss
			// and throughput are scoped to.
			u := st.windowWork() / (window * h.capability(res))
			hm.Utilization[res] += u
		}
		for res, st := range h.stations {
			collect(st, res)
		}
		for _, vm := range h.vmStations {
			for res, st := range vm {
				collect(st, res)
			}
		}
		for res, u := range hm.Utilization {
			if u > 1 {
				hm.Utilization[res] = 1
			}
			if hm.Utilization[res] > hm.Bottleneck {
				hm.Bottleneck = hm.Utilization[res]
			}
		}
		r.res.Hosts = append(r.res.Hosts, hm)
	}
	r.res.Window = window
	r.res.Obs = r.reg.Snapshot()
}
