package cluster

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// flatSpec builds a minimal one-resource open-loop service: CPU work is
// exponential with mean 1/10 s, so offered load λ=5 keeps one reference
// server at utilization 0.5.
func flatSpec(arrivals workload.ArrivalProcess) ServiceSpec {
	return ServiceSpec{
		Profile: workload.ServiceProfile{
			Name: "flat",
			Demands: map[string]stats.Distribution{
				workload.CPU: stats.NewExponential(10),
			},
		},
		Arrivals:         arrivals,
		DedicatedServers: 1,
	}
}

// TestUtilizationScopedToWindow is the warmup-accounting regression test:
// utilization must describe the post-warmup window — the same interval loss
// and throughput are scoped to — not the whole run. The load is made
// asymmetric around the warmup boundary with a non-homogeneous Poisson
// process, so pre-fix accounting (all work over the whole horizon) lands
// near the 50/50 blend and fails both directions.
func TestUtilizationScopedToWindow(t *testing.T) {
	run := func(rates []float64) *Result {
		cfg := Config{
			Mode:     Dedicated,
			Services: []ServiceSpec{flatSpec(workload.NewNHPP(rates, 500, false))},
			Horizon:  1000,
			Warmup:   500,
			Seed:     17,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Busy warmup, idle window: only the in-flight residue at the boundary
	// drains inside the window, so utilization must be almost zero. The
	// broken accounting reported ≈0.25 (half the warmup's 0.5 load spread
	// over the doubled interval).
	idle := run([]float64{5, 0})
	if u := idle.Hosts[0].Bottleneck; u > 0.02 {
		t.Errorf("idle-window utilization %.4f, want ~0 (warmup work leaked in)", u)
	}
	if thr := idle.Services[0].Throughput; thr > 0.1 {
		t.Errorf("idle-window throughput %.4f, want ~0", thr)
	}

	// Idle warmup, busy window: utilization must reflect the window's full
	// 0.5 load; the broken accounting diluted it to ≈0.25.
	busy := run([]float64{0, 5})
	u := busy.Hosts[0].Bottleneck
	if u < 0.4 || u > 0.6 {
		t.Errorf("busy-window utilization %.4f, want ≈0.5 (diluted by idle warmup)", u)
	}
	// Utilization and throughput now describe the same interval:
	// u ≈ throughput × mean work per request (1/10 s).
	if thr := busy.Services[0].Throughput; stats.RelativeError(u, thr/10) > 0.1 {
		t.Errorf("utilization %.4f inconsistent with throughput %.4f over the window", u, thr)
	}
}

// TestPickHostSkipsDownHosts pins the round-robin dispatch order around a
// host failure: a down host is skipped without burning cursor positions, so
// the rotation among survivors is unperturbed, and the host rejoins at its
// slot after repair.
func TestPickHostSkipsDownHosts(t *testing.T) {
	hosts := []*host{{id: 0, up: true}, {id: 1, up: true}, {id: 2, up: true}}
	r := &runner{byService: [][]*host{hosts}, rrNext: make([]int, 1)}
	picks := func(n int) []int {
		var ids []int
		for i := 0; i < n; i++ {
			h := r.pickHost(0)
			if h == nil {
				ids = append(ids, -1)
				continue
			}
			ids = append(ids, h.id)
		}
		return ids
	}
	equal := func(got, want []int) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	if got := picks(4); !equal(got, []int{0, 1, 2, 0}) {
		t.Fatalf("healthy rotation %v", got)
	}
	hosts[1].up = false
	if got := picks(4); !equal(got, []int{2, 0, 2, 0}) {
		t.Fatalf("rotation with host 1 down: %v", got)
	}
	hosts[1].up = true
	if got := picks(3); !equal(got, []int{1, 2, 0}) {
		t.Fatalf("rotation after repair %v", got)
	}
	hosts[0].up, hosts[1].up, hosts[2].up = false, false, false
	if got := picks(2); !equal(got, []int{-1, -1}) {
		t.Fatalf("all-down pool returned %v", got)
	}
	if r.pickHost(0) != nil {
		t.Fatal("all-down pool yielded a host")
	}
}
