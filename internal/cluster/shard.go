package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Intra-run sharding.
//
// A conservative time-window protocol (barrier every W of simulated time,
// W = the minimum cross-shard latency) was the first design here, with
// per-shard single-writer mailboxes carrying dispatch→admit messages. It
// degenerates for this model: the only cross-shard edge, dispatch→admit,
// is instantaneous (the LVS dispatcher forwards in zero simulated time),
// and admission feedback (host.inflight against AdmissionPerHost) reads
// the destination host's state at the dispatch instant — so the lookahead
// W is 0 and every window collapses to lock-step. Instead the run is cut
// where W is infinite: along coupling components, host groups with no
// cross edges at all. In Dedicated mode the dispatcher routes each
// service only to its own pool and every RNG substream is derived purely
// from (seed, label), so each service — hosts, drivers, failure
// processes, percentile trackers — is a closed subsystem; in Consolidated
// mode every host serves every service and the fleet is one component.
// Components never exchange events, so no mailboxes, barriers or W are
// needed: each shard runs the full horizon independently and results are
// exact by construction, not merely within a synchronization tolerance.

// planShards decides the shard count and assigns every coupling component
// (service, in Dedicated mode) to a shard. The assignment is a
// deterministic greedy bin-packing — components sorted by descending
// weight (host count plus closed-loop population, a proxy for event
// volume), heaviest first onto the least-loaded shard, all ties broken by
// lowest index — so a fixed (config, shard count) always yields the same
// layout regardless of worker scheduling.
func (r *runner) planShards() {
	components := 1
	if r.cfg.Mode == Dedicated {
		components = len(r.cfg.Services)
	}
	n := r.cfg.Shards
	if n < 1 {
		n = 1
	}
	if n > components {
		n = components
	}
	if r.cfg.Tracer != nil {
		n = 1
	}
	r.nshards = n
	if n == 1 {
		// nil svcShard = every service on shard 0 (see runner.shardOf);
		// the sequential path allocates nothing for the plan.
		return
	}
	r.svcShard = make([]int, len(r.cfg.Services))
	order := make([]int, len(r.cfg.Services))
	for i := range order {
		order[i] = i
	}
	weight := func(svc int) float64 {
		s := &r.cfg.Services[svc]
		return float64(s.DedicatedServers + s.Clients)
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := weight(order[a]), weight(order[b])
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	load := make([]float64, n)
	for _, svc := range order {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		r.svcShard[svc] = best
		w := weight(svc)
		if w < 1 {
			w = 1
		}
		load[best] += w
	}
}

// shardOf maps a service to the shard owning its coupling component (a
// nil plan means a sequential run: everything on shard 0).
func (r *runner) shardOf(svc int) int {
	if r.svcShard == nil {
		return 0
	}
	return r.svcShard[svc]
}

// wheelAutoThreshold is the estimated event count beyond which "auto"
// prefers the timing wheel on sharded runs. Below it the heap's smaller
// constant factors win; the choice never changes results either way.
const wheelAutoThreshold = 1 << 17

// estimatedEvents is a coarse event-volume forecast used only for queue
// selection: expected requests (open loop: rate × horizon; closed loop:
// clients × horizon / the 7 s default think time) times a small constant
// for per-resource completions and reschedule churn.
func (c *Config) estimatedEvents() float64 {
	total := 0.0
	for i := range c.Services {
		s := &c.Services[i]
		switch {
		case s.Arrivals != nil:
			total += s.Arrivals.Rate() * c.Horizon
		case s.Clients > 0:
			total += float64(s.Clients) * c.Horizon / 7
		}
	}
	return 4 * total
}

// applyQueue configures every shard simulator's event queue before any
// event is scheduled. "auto" (or empty) keeps the heap for sequential
// runs — the default single-shard engine stays byte-identical, engine
// counters included — and picks by estimated density for sharded runs.
// Arena-pooled simulators may arrive in either mode from a previous run,
// so both branches set the mode explicitly.
func (r *runner) applyQueue() {
	kind := r.cfg.EventQueue
	if kind == "" || kind == "auto" {
		kind = "heap"
		if r.nshards > 1 && r.cfg.estimatedEvents() >= wheelAutoThreshold {
			kind = "wheel"
		}
	}
	if kind == "wheel" {
		// Granularity: 2^20 ticks per horizon puts the dense head of the
		// queue on the wheel's fine levels while the 2^24-tick span still
		// covers 16 horizons before anything spills to the overflow heap.
		tick := r.cfg.Horizon / (1 << 20)
		for _, sim := range r.sims {
			sim.UseWheel(tick)
		}
		return
	}
	for _, sim := range r.sims {
		sim.UseHeap()
	}
}

// runShards executes every shard to the horizon. Sequential runs stay on
// the caller's goroutine (identical to the pre-shard engine); parallel
// runs claim up to nshards-1 extra pool slots non-blockingly — the caller
// already holds one slot for the run itself, and a busy pool just means
// more shards run on fewer goroutines. Shards are handed out through an
// atomic counter so an early-finishing worker picks up remaining shards.
func (r *runner) runShards() {
	start := time.Now()
	defer func() { r.elapsed = time.Since(start).Seconds() }()
	if r.nshards == 1 {
		r.sims[0].Run(r.cfg.Horizon)
		return
	}
	extra := 0
	for extra < r.nshards-1 && r.cfg.Pool.TryAcquire() {
		extra++
	}
	var next atomic.Int64
	work := func() {
		for {
			s := int(next.Add(1)) - 1
			if s >= r.nshards {
				return
			}
			r.sims[s].Run(r.cfg.Horizon)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for i := 0; i < extra; i++ {
		r.cfg.Pool.Release()
	}
}
