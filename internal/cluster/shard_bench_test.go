package cluster

import (
	"fmt"
	"testing"
)

// benchShardConfig is a four-component dedicated fleet sized so per-shard
// event-loop work dominates orchestration: on a multi-core machine
// shards=4 should approach 4x the shards=1 wall clock. Equal weights keep
// the bin-packing balanced, so the critical path is one component.
func benchShardConfig(seed uint64, shards int) Config {
	return Config{
		Mode: Dedicated,
		Services: []ServiceSpec{
			webSpec(2500, 2),
			webSpec(2500, 2),
			webSpec(2500, 2),
			webSpec(2500, 2),
		},
		Horizon: 5,
		Warmup:  1,
		Seed:    seed,
		Shards:  shards,
	}
}

// BenchmarkShardedRun measures whole-run wall clock at one and four
// shards, reporting the simulator's aggregate event rate. The shards=1
// case runs the exact pre-shard sequential engine; the ratio between the
// two sub-benchmarks is the parallel speedup (bounded by GOMAXPROCS).
func BenchmarkShardedRun(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var fired uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(benchShardConfig(uint64(i), shards))
				if err != nil {
					b.Fatal(err)
				}
				fired += res.Obs.Counters["desim/events_fired"]
			}
			b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
