package cluster

import (
	"testing"

	"repro/internal/desim"
	"repro/internal/obs"
	"repro/internal/pool"
)

// fourServiceConfig is a dedicated fleet with deliberately unequal
// component weights, so the bin-packing has real decisions to make.
func fourServiceConfig(shards int) Config {
	return Config{
		Mode: Dedicated,
		Services: []ServiceSpec{
			webSpec(1000, 4),
			webSpec(1000, 1),
			dbSpec(200, 2),
			webSpec(1000, 1),
		},
		Horizon: 10,
		Warmup:  1,
		Seed:    7,
		Shards:  shards,
	}
}

func planFor(t *testing.T, cfg Config) *runner {
	t.Helper()
	r := &runner{cfg: &cfg}
	r.planShards()
	return r
}

func TestPlanShardsLayout(t *testing.T) {
	// Weights are 4, 1, 202 (200 clients + 2 hosts), 1: the greedy pack at
	// two shards puts the DB component alone and the three Web components
	// together.
	r := planFor(t, fourServiceConfig(2))
	if r.nshards != 2 {
		t.Fatalf("nshards = %d, want 2", r.nshards)
	}
	want := []int{1, 1, 0, 1}
	for svc, shard := range r.svcShard {
		if shard != want[svc] {
			t.Fatalf("svcShard = %v, want %v", r.svcShard, want)
		}
	}
}

func TestPlanShardsClamps(t *testing.T) {
	if r := planFor(t, fourServiceConfig(16)); r.nshards != 4 {
		t.Errorf("shard count must clamp to the component count, got %d", r.nshards)
	}
	if r := planFor(t, fourServiceConfig(0)); r.nshards != 1 {
		t.Errorf("shards=0 must run unsharded, got %d", r.nshards)
	}
	cons := fourServiceConfig(4)
	cons.Mode = Consolidated
	cons.ConsolidatedServers = 4
	for i := range cons.Services {
		cons.Services[i].DedicatedServers = 0
	}
	if r := planFor(t, cons); r.nshards != 1 {
		t.Errorf("a consolidated fleet is one coupling component, got %d shards", r.nshards)
	}
	traced := fourServiceConfig(4)
	traced.Tracer = obs.NewTraceWriter(discard{}, 1)
	if r := planFor(t, traced); r.nshards != 1 {
		t.Errorf("tracing must force a single shard, got %d", r.nshards)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestApplyQueueSelection(t *testing.T) {
	cases := []struct {
		name   string
		queue  string
		shards int
		rate   float64
		want   string
	}{
		{"default sequential stays heap", "", 1, 1e5, "heap"},
		{"auto sequential stays heap", "auto", 1, 1e5, "heap"},
		{"auto dense sharded picks wheel", "", 4, 1e5, "wheel"},
		{"auto sparse sharded keeps heap", "", 4, 10, "heap"},
		{"forced wheel", "wheel", 1, 10, "wheel"},
		{"forced heap", "heap", 4, 1e5, "heap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fourServiceConfig(tc.shards)
			cfg.EventQueue = tc.queue
			for i := range cfg.Services {
				if cfg.Services[i].Arrivals != nil {
					cfg.Services[i] = webSpec(tc.rate, cfg.Services[i].DedicatedServers)
				}
			}
			r := planFor(t, cfg)
			r.sims = make([]*desim.Simulator, r.nshards)
			for s := range r.sims {
				r.sims[s] = desim.New()
			}
			r.applyQueue()
			for s, sim := range r.sims {
				if got := sim.QueueKind(); got != tc.want {
					t.Fatalf("shard %d queue = %s, want %s", s, got, tc.want)
				}
			}
		})
	}
}

// TestShardedRunMatchesSequential pins determinism at the cluster level
// with a mixed open/closed fleet, failure injection and a bounded pool
// (smaller than the shard count, so the work-stealing loop runs shards on
// fewer goroutines than requested).
func TestShardedRunMatchesSequential(t *testing.T) {
	build := func(shards int, p *pool.Pool) Config {
		cfg := fourServiceConfig(shards)
		cfg.MTBF = 40
		cfg.MTTR = 5
		cfg.Pool = p
		return cfg
	}
	want, err := Run(build(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		p, err := pool.New(2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(build(shards, p))
		if err != nil {
			t.Fatal(err)
		}
		if p.Active() != 0 {
			t.Fatalf("shards=%d leaked %d pool slots", shards, p.Active())
		}
		assertSameResult(t, want, got, shards)
	}
}

// assertSameResult compares everything except the Obs snapshot, whose
// per-shard engine counters legitimately differ between layouts.
func assertSameResult(t *testing.T, want, got *Result, shards int) {
	t.Helper()
	w, g := *want, *got
	w.Obs, g.Obs = obs.Snapshot{}, obs.Snapshot{}
	if w.String() != g.String() {
		t.Fatalf("shards=%d report diverged:\nwant %s\ngot  %s", shards, w.String(), g.String())
	}
	if w.Failures != g.Failures || w.Window != g.Window {
		t.Fatalf("shards=%d failures/window diverged: %d/%.3f vs %d/%.3f",
			shards, w.Failures, w.Window, g.Failures, g.Window)
	}
	for i := range w.Services {
		if w.Services[i] != g.Services[i] {
			t.Fatalf("shards=%d service %d diverged:\nwant %+v\ngot  %+v",
				shards, i, w.Services[i], g.Services[i])
		}
	}
	if len(w.Hosts) != len(g.Hosts) {
		t.Fatalf("shards=%d host count diverged: %d vs %d", shards, len(w.Hosts), len(g.Hosts))
	}
	for i := range w.Hosts {
		if w.Hosts[i].Bottleneck != g.Hosts[i].Bottleneck {
			t.Fatalf("shards=%d host %d bottleneck diverged: %v vs %v",
				shards, i, w.Hosts[i].Bottleneck, g.Hosts[i].Bottleneck)
		}
		for res, u := range w.Hosts[i].Utilization {
			if g.Hosts[i].Utilization[res] != u {
				t.Fatalf("shards=%d host %d %s utilization diverged: %v vs %v",
					shards, i, res, u, g.Hosts[i].Utilization[res])
			}
		}
	}
}
