// Package cluster simulates the paper's testbed: pools of physical servers
// hosting Internet services either on dedicated native-Linux machines or
// consolidated onto Xen hosts as one VM per service, with LVS-style
// round-robin request dispatch, per-resource processor-sharing contention,
// virtualization overhead from the internal/virt curves, optional on-demand
// resource flowing between VMs (Rainbow), closed- and open-loop load
// generation, admission-control losses, host failure injection, and power
// metering hooks.
//
// The physical model: every host owns one station per resource type. A
// station is a processor-sharing server of capacity 1 work-unit/second; a
// request deposits, on each resource it touches, an amount of work equal to
// its sampled native demand divided by the virtualization impact factor for
// its service on that resource (consolidated hosts only). Work drains at
// capacity/k when k jobs share the station. A request finishes when its
// work on every station has drained; its response time is the makespan.
// Saturation, contention knees, response-time explosions and loss behaviour
// all emerge from this shared-capacity physics.
//
// Stations implement processor sharing in virtual time: V accumulates the
// service attained by every resident job (dV/dt = capacity/k), a job
// admitted at V_admit with w units of work finishes when V reaches the
// fixed threshold V_admit + w, and jobs sit in a min-heap keyed by that
// threshold. Advancing the clock is O(1) regardless of occupancy,
// admission and completion are O(log k); no per-event scan over resident
// jobs remains.
package cluster

import (
	"math"
	"sort"

	"repro/internal/desim"
)

// jobRef tracks one request's work on one station.
type jobRef struct {
	req       *request
	threshold float64 // attained-service level V at which the job completes
	seq       uint64  // admission order; FIFO tie-break for equal thresholds
	heapIdx   int     // position in station.jobs, maintained by the heap ops
}

// station is a processor-sharing resource server.
type station struct {
	name     string
	capacity float64   // work units per second when any job present
	jobs     []*jobRef // min-heap keyed by (threshold, seq)

	// V is the attained-service accumulator: the total service any job
	// resident since station creation would have received. Thresholds are
	// expressed on this axis, so capacity changes only alter dV/dt going
	// forward — setCapacity rebases by draining at the old rate first.
	V   float64
	seq uint64 // next admission sequence number

	sim        *desim.Simulator
	lastUpdate desim.Time
	busy       desim.TimeAverage // 0/1 busy indicator over [warmup, now]
	occ        desim.TimeAverage // resident-job count over [warmup, now]
	advances   uint64            // virtual-time advance count (observability)
	workDone   float64
	warmWork   float64 // workDone at the warmup boundary

	pending    desim.Handle // the station's next-completion event
	completeFn func()       // cached method value; avoids an alloc per reschedule
	doneBuf    []*jobRef    // scratch for complete; reused across events
	onDone     func(*request, *station)
	newJob     func() *jobRef // optional arena allocator; nil = plain alloc

	// recycleJobs opts into the station-local jobRef freelist: completed
	// jobs are zeroed and reused by later admissions. Safe only when no
	// caller retains a jobRef past completion (the runner's contract —
	// request refs are never read again without an arena); direct users
	// that probe heapIdx on stale refs must leave it off.
	recycleJobs bool
	freeJobs    []*jobRef
}

func newStation(sim *desim.Simulator, name string, capacity float64, onDone func(*request, *station)) *station {
	st := &station{
		name:     name,
		capacity: capacity,
		sim:      sim,
		onDone:   onDone,
	}
	st.completeFn = st.complete
	st.busy.Set(sim.Now(), 0)
	st.occ.Set(sim.Now(), 0)
	st.lastUpdate = sim.Now()
	return st
}

// advance accrues attained service for the elapsed time since the last
// update: O(1), independent of occupancy.
func (st *station) advance() {
	now := st.sim.Now()
	dt := now - st.lastUpdate
	st.lastUpdate = now
	k := len(st.jobs)
	if dt <= 0 || k == 0 {
		return
	}
	st.advances++
	st.V += st.capacity / float64(k) * dt
	st.workDone += st.capacity * dt
}

// snapshotWarmup records the work delivered so far and restarts the busy
// observation window, marking the start of the measurement interval.
// advance is idempotent at a fixed timestamp (work deposited at the
// boundary drains only after it), so the snapshot does not depend on event
// ordering within the boundary instant.
func (st *station) snapshotWarmup() {
	st.advance()
	st.warmWork = st.workDone
	st.busy.Reset(st.sim.Now())
	st.occ.Reset(st.sim.Now())
}

// windowWork reports the work delivered since the warmup snapshot.
func (st *station) windowWork() float64 { return st.workDone - st.warmWork }

// setCapacity changes the station's capacity (resource flowing / Rainbow
// rebalancing), draining work at the old rate first so V is rebased to the
// boundary before the new rate applies.
func (st *station) setCapacity(c float64) {
	st.advance()
	if c < 0 {
		c = 0
	}
	st.capacity = c
	st.reschedule()
}

// add deposits work for req and returns the job reference.
func (st *station) add(req *request, work float64) *jobRef {
	st.advance()
	var j *jobRef
	switch {
	case st.newJob != nil:
		j = st.newJob()
	case st.recycleJobs && len(st.freeJobs) > 0:
		n := len(st.freeJobs) - 1
		j = st.freeJobs[n]
		st.freeJobs[n] = nil
		st.freeJobs = st.freeJobs[:n]
	default:
		j = &jobRef{}
	}
	j.req, j.threshold, j.seq = req, st.V+math.Max(work, 0), st.seq
	st.seq++
	st.pushJob(j)
	st.busy.Set(st.sim.Now(), 1)
	st.occ.Set(st.sim.Now(), float64(len(st.jobs)))
	st.reschedule()
	return j
}

// remove takes a job off the station (request abandoned or host failed).
func (st *station) remove(j *jobRef) {
	st.advance()
	if j.heapIdx >= 0 && j.heapIdx < len(st.jobs) && st.jobs[j.heapIdx] == j {
		st.deleteJob(j.heapIdx)
	}
	if len(st.jobs) == 0 {
		st.busy.Set(st.sim.Now(), 0)
	}
	st.occ.Set(st.sim.Now(), float64(len(st.jobs)))
	st.reschedule()
}

// reschedule recomputes the station's next completion event from the
// earliest threshold: O(1) plus the event-queue operation.
func (st *station) reschedule() {
	if st.pending.Pending() {
		st.pending.Cancel()
	}
	if len(st.jobs) == 0 || st.capacity <= 0 {
		return
	}
	// The min job completes when V grows by (threshold - V), and V grows at
	// capacity/k per second.
	eta := (st.jobs[0].threshold - st.V) * float64(len(st.jobs)) / st.capacity
	if eta < 0 {
		eta = 0
	}
	st.pending = st.sim.After(eta, st.completeFn)
}

// completeEps absorbs float residue when deciding whether a job's threshold
// has been reached, scaled to V because threshold-V is a difference of
// like-magnitude accumulators.
const completeEps = 1e-12

// complete fires when the earliest job's threshold is reached. The event
// was scheduled for exactly the heap minimum, so at least one job is due;
// further jobs sharing the threshold (ties) complete in the same event, in
// admission order by the heap's seq tie-break.
func (st *station) complete() {
	st.advance()
	done := st.doneBuf[:0]
	eps := completeEps * math.Max(1, st.V)
	for len(st.jobs) > 0 {
		top := st.jobs[0]
		if len(done) > 0 && top.threshold-st.V > eps {
			break
		}
		st.popJob()
		done = append(done, top)
	}
	if len(st.jobs) == 0 {
		st.busy.Set(st.sim.Now(), 0)
	}
	st.occ.Set(st.sim.Now(), float64(len(st.jobs)))
	st.reschedule()
	for _, j := range done {
		st.onDone(j.req, st)
	}
	// Drop request references before the buffer is parked for reuse;
	// opted-in stations recycle the completed jobRefs themselves.
	for i, j := range done {
		if st.recycleJobs {
			*j = jobRef{}
			j.heapIdx = -1
			st.freeJobs = append(st.freeJobs, j)
		}
		done[i] = nil
	}
	st.doneBuf = done[:0]
}

// remaining reports the work units left for job j.
func (st *station) remaining(j *jobRef) float64 {
	r := j.threshold - st.V
	if r < 0 {
		return 0
	}
	return r
}

// backlog reports the total outstanding work on the station, first
// draining up to now (the Rainbow allocators' rebalancing input).
func (st *station) backlog() float64 {
	st.advance()
	total := 0.0
	for _, j := range st.jobs {
		total += st.remaining(j)
	}
	return total
}

// utilization reports the station's busy fraction over the current
// observation window: [warmup, now] once snapshotWarmup has run, [0, now]
// otherwise.
func (st *station) utilization(now desim.Time) float64 {
	st.busy.Finish(now)
	u := st.busy.Average()
	if math.IsNaN(u) {
		return 0
	}
	return u
}

// meanOccupancy reports the time-average resident-job count over the
// current observation window: [warmup, now] once snapshotWarmup has run,
// [0, now] otherwise.
func (st *station) meanOccupancy(now desim.Time) float64 {
	st.occ.Finish(now)
	v := st.occ.Average()
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// clear drops all jobs (host failure) and returns the affected requests in
// admission order, keeping failure handling deterministic.
func (st *station) clear() []*request {
	st.advance()
	if len(st.jobs) == 0 {
		st.reschedule()
		return nil
	}
	jobs := append([]*jobRef(nil), st.jobs...)
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	reqs := make([]*request, len(jobs))
	for i, j := range jobs {
		reqs[i] = j.req
	}
	st.jobs = nil
	st.busy.Set(st.sim.Now(), 0)
	st.occ.Set(st.sim.Now(), 0)
	st.reschedule()
	return reqs
}

// Job-heap primitives: a binary min-heap over (threshold, seq) with
// position indexes maintained on every move so remove is O(log k).

func (st *station) jobLess(a, b *jobRef) bool {
	if a.threshold != b.threshold {
		return a.threshold < b.threshold
	}
	return a.seq < b.seq
}

func (st *station) pushJob(j *jobRef) {
	st.jobs = append(st.jobs, j)
	st.siftJobUp(len(st.jobs) - 1)
}

func (st *station) popJob() *jobRef {
	j := st.jobs[0]
	n := len(st.jobs) - 1
	st.jobs[0] = st.jobs[n]
	st.jobs[n] = nil
	st.jobs = st.jobs[:n]
	if n > 0 {
		st.siftJobDown(0)
	}
	j.heapIdx = -1
	return j
}

// deleteJob removes the job at heap position i.
func (st *station) deleteJob(i int) {
	j := st.jobs[i]
	n := len(st.jobs) - 1
	if i != n {
		st.jobs[i] = st.jobs[n]
		st.jobs[n] = nil
		st.jobs = st.jobs[:n]
		// The swapped-in element may need to move either way.
		st.siftJobDown(i)
		st.siftJobUp(i)
	} else {
		st.jobs[n] = nil
		st.jobs = st.jobs[:n]
	}
	j.heapIdx = -1
}

func (st *station) siftJobUp(i int) {
	jobs := st.jobs
	node := jobs[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !st.jobLess(node, jobs[parent]) {
			break
		}
		jobs[i] = jobs[parent]
		jobs[i].heapIdx = i
		i = parent
	}
	jobs[i] = node
	node.heapIdx = i
}

func (st *station) siftJobDown(i int) {
	jobs := st.jobs
	n := len(jobs)
	node := jobs[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && st.jobLess(jobs[r], jobs[child]) {
			child = r
		}
		if !st.jobLess(jobs[child], node) {
			break
		}
		jobs[i] = jobs[child]
		jobs[i].heapIdx = i
		i = child
	}
	jobs[i] = node
	node.heapIdx = i
}
