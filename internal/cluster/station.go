// Package cluster simulates the paper's testbed: pools of physical servers
// hosting Internet services either on dedicated native-Linux machines or
// consolidated onto Xen hosts as one VM per service, with LVS-style
// round-robin request dispatch, per-resource processor-sharing contention,
// virtualization overhead from the internal/virt curves, optional on-demand
// resource flowing between VMs (Rainbow), closed- and open-loop load
// generation, admission-control losses, host failure injection, and power
// metering hooks.
//
// The physical model: every host owns one station per resource type. A
// station is a processor-sharing server of capacity 1 work-unit/second; a
// request deposits, on each resource it touches, an amount of work equal to
// its sampled native demand divided by the virtualization impact factor for
// its service on that resource (consolidated hosts only). Work drains at
// capacity/k when k jobs share the station. A request finishes when its
// work on every station has drained; its response time is the makespan.
// Saturation, contention knees, response-time explosions and loss behaviour
// all emerge from this shared-capacity physics.
package cluster

import (
	"math"

	"repro/internal/desim"
)

// jobRef tracks one request's work on one station.
type jobRef struct {
	req       *request
	remaining float64 // work units left
}

// station is a processor-sharing resource server.
type station struct {
	name     string
	capacity float64 // work units per second when any job present
	jobs     []*jobRef

	sim        *desim.Simulator
	lastUpdate desim.Time
	busy       desim.TimeAverage // 0/1 busy indicator
	workDone   float64
	warmWork   float64 // workDone at the warmup boundary

	pending desim.Handle // the station's next-completion event
	onDone  func(*request, *station)
}

func newStation(sim *desim.Simulator, name string, capacity float64, onDone func(*request, *station)) *station {
	st := &station{
		name:     name,
		capacity: capacity,
		sim:      sim,
		onDone:   onDone,
	}
	st.busy.Set(sim.Now(), 0)
	st.lastUpdate = sim.Now()
	return st
}

// drainRate reports the per-job drain rate with the current occupancy.
func (st *station) drainRate() float64 {
	k := len(st.jobs)
	if k == 0 {
		return 0
	}
	return st.capacity / float64(k)
}

// advance drains work for the elapsed time since the last update.
func (st *station) advance() {
	now := st.sim.Now()
	dt := now - st.lastUpdate
	st.lastUpdate = now
	if dt <= 0 || len(st.jobs) == 0 {
		return
	}
	rate := st.drainRate()
	drained := rate * dt
	for _, j := range st.jobs {
		j.remaining -= drained
		if j.remaining < 0 {
			j.remaining = 0
		}
	}
	st.workDone += st.capacity * dt
}

// snapshotWarmup records the work delivered so far, marking the start of
// the observation window. advance is idempotent at a fixed timestamp (work
// deposited at the boundary drains only after it), so the snapshot does not
// depend on event ordering within the boundary instant.
func (st *station) snapshotWarmup() {
	st.advance()
	st.warmWork = st.workDone
}

// windowWork reports the work delivered since the warmup snapshot.
func (st *station) windowWork() float64 { return st.workDone - st.warmWork }

// setCapacity changes the station's capacity (resource flowing / Rainbow
// rebalancing), draining work at the old rate first.
func (st *station) setCapacity(c float64) {
	st.advance()
	if c < 0 {
		c = 0
	}
	st.capacity = c
	st.reschedule()
}

// add deposits work for req and returns the job reference.
func (st *station) add(req *request, work float64) *jobRef {
	st.advance()
	j := &jobRef{req: req, remaining: math.Max(work, 0)}
	st.jobs = append(st.jobs, j)
	st.busy.Set(st.sim.Now(), 1)
	st.reschedule()
	return j
}

// remove takes a job off the station (request abandoned or host failed).
func (st *station) remove(j *jobRef) {
	st.advance()
	for i, cur := range st.jobs {
		if cur == j {
			st.jobs[i] = st.jobs[len(st.jobs)-1]
			st.jobs = st.jobs[:len(st.jobs)-1]
			break
		}
	}
	if len(st.jobs) == 0 {
		st.busy.Set(st.sim.Now(), 0)
	}
	st.reschedule()
}

// reschedule recomputes the station's next completion event.
func (st *station) reschedule() {
	if st.pending.Pending() {
		st.pending.Cancel()
	}
	if len(st.jobs) == 0 || st.capacity <= 0 {
		return
	}
	minRemaining := math.Inf(1)
	for _, j := range st.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	eta := minRemaining / st.drainRate()
	st.pending = st.sim.After(eta, st.complete)
}

// complete fires when the earliest job's work hits zero.
func (st *station) complete() {
	st.advance()
	// Collect every job whose work has drained (ties possible).
	var done []*jobRef
	kept := st.jobs[:0]
	for _, j := range st.jobs {
		if j.remaining <= 1e-12 {
			done = append(done, j)
		} else {
			kept = append(kept, j)
		}
	}
	st.jobs = kept
	if len(st.jobs) == 0 {
		st.busy.Set(st.sim.Now(), 0)
	}
	st.reschedule()
	for _, j := range done {
		st.onDone(j.req, st)
	}
}

// utilization reports the station's busy fraction over [warmup, now].
func (st *station) utilization(now desim.Time) float64 {
	st.busy.Finish(now)
	u := st.busy.Average()
	if math.IsNaN(u) {
		return 0
	}
	return u
}

// clear drops all jobs (host failure) and returns the affected requests.
func (st *station) clear() []*request {
	st.advance()
	var reqs []*request
	for _, j := range st.jobs {
		reqs = append(reqs, j.req)
	}
	st.jobs = nil
	st.busy.Set(st.sim.Now(), 0)
	st.reschedule()
	return reqs
}
