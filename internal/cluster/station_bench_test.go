package cluster

import (
	"fmt"
	"testing"

	"repro/internal/desim"
)

// BenchmarkStationHighOccupancy measures one arrival→completion cycle at a
// station already holding k long-running jobs — the high-occupancy regime
// where the original implementation paid O(k) per event (scan-to-drain in
// advance, scan-for-min in reschedule, scan-to-collect in complete) and the
// virtual-time formulation pays O(log k). Each iteration admits one short
// job and runs the simulator until its completion event fires.
func BenchmarkStationHighOccupancy(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sim := desim.New()
			done := 0
			st := newStation(sim, "bench", 1, func(*request, *station) { done++ })
			st.recycleJobs = true // the runner's non-arena configuration
			for i := 0; i < k; i++ {
				st.add(&request{}, 1e15) // background jobs that never finish
			}
			req := &request{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.add(req, 1e-9)
				sim.Run(sim.Now() + 1)
			}
			b.StopTimer()
			if done != b.N {
				b.Fatalf("completed %d of %d short jobs", done, b.N)
			}
		})
	}
}
