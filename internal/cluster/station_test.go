package cluster

import (
	"math"
	"testing"

	"repro/internal/desim"
)

// stationHarness wires a station to a simulator and records completions.
type stationHarness struct {
	sim  *desim.Simulator
	st   *station
	done []*request
}

func newStationHarness(capacity float64) *stationHarness {
	h := &stationHarness{sim: desim.New()}
	h.st = newStation(h.sim, "test", capacity, func(req *request, _ *station) {
		h.done = append(h.done, req)
	})
	return h
}

func TestStationSingleJob(t *testing.T) {
	h := newStationHarness(1)
	req := &request{}
	h.st.add(req, 2.0)
	h.sim.RunAll()
	if len(h.done) != 1 || h.done[0] != req {
		t.Fatal("job did not complete")
	}
	if h.sim.Now() != 2.0 {
		t.Fatalf("completion at %g, want 2", h.sim.Now())
	}
}

func TestStationProcessorSharing(t *testing.T) {
	// Two equal jobs sharing capacity 1: both finish at 2*work.
	h := newStationHarness(1)
	a, b := &request{}, &request{}
	h.st.add(a, 1.0)
	h.st.add(b, 1.0)
	h.sim.RunAll()
	if len(h.done) != 2 {
		t.Fatalf("completions: %d", len(h.done))
	}
	if math.Abs(h.sim.Now()-2.0) > 1e-9 {
		t.Fatalf("last completion at %g, want 2", h.sim.Now())
	}
}

func TestStationUnequalJobs(t *testing.T) {
	// Jobs of work 1 and 3 under PS: the short one leaves at t=2 (each
	// drains at 1/2), then the long one drains alone: 3-1=2 left at rate 1
	// -> t=4.
	h := newStationHarness(1)
	short, long := &request{}, &request{}
	h.st.add(short, 1.0)
	h.st.add(long, 3.0)

	var firstDone, lastDone desim.Time
	h.st.onDone = func(req *request, _ *station) {
		if req == short {
			firstDone = h.sim.Now()
		} else {
			lastDone = h.sim.Now()
		}
	}
	h.sim.RunAll()
	if math.Abs(firstDone-2.0) > 1e-9 {
		t.Fatalf("short job at %g, want 2", firstDone)
	}
	if math.Abs(lastDone-4.0) > 1e-9 {
		t.Fatalf("long job at %g, want 4", lastDone)
	}
}

func TestStationLateArrival(t *testing.T) {
	// Job A (work 2) alone for 1 s, then B (work 1) joins. A has 1 left;
	// both drain at 1/2. B finishes at t=3; A at t=3 too (both had 1 left
	// at t=1... A: 1 left, B: 1 left, equal -> both at t=3).
	h := newStationHarness(1)
	a, b := &request{}, &request{}
	h.st.add(a, 2.0)
	h.sim.At(1.0, func() { h.st.add(b, 1.0) })
	h.sim.RunAll()
	if len(h.done) != 2 {
		t.Fatalf("completions: %d", len(h.done))
	}
	if math.Abs(h.sim.Now()-3.0) > 1e-9 {
		t.Fatalf("finished at %g, want 3", h.sim.Now())
	}
}

func TestStationCapacityScaling(t *testing.T) {
	// Capacity 2 halves completion times.
	h := newStationHarness(2)
	h.st.add(&request{}, 2.0)
	h.sim.RunAll()
	if math.Abs(h.sim.Now()-1.0) > 1e-9 {
		t.Fatalf("finished at %g, want 1", h.sim.Now())
	}
}

func TestStationSetCapacityMidFlight(t *testing.T) {
	// Work 2 at capacity 1; at t=1 capacity drops to 0.5: 1 unit left at
	// rate 0.5 -> finishes at t=3.
	h := newStationHarness(1)
	h.st.add(&request{}, 2.0)
	h.sim.At(1.0, func() { h.st.setCapacity(0.5) })
	h.sim.RunAll()
	if math.Abs(h.sim.Now()-3.0) > 1e-9 {
		t.Fatalf("finished at %g, want 3", h.sim.Now())
	}
}

func TestStationZeroCapacityStalls(t *testing.T) {
	h := newStationHarness(1)
	h.st.add(&request{}, 1.0)
	h.sim.At(0.5, func() { h.st.setCapacity(0) })
	h.sim.Run(100)
	if len(h.done) != 0 {
		t.Fatal("job completed with zero capacity")
	}
	// Restore capacity: remaining 0.5 drains.
	var doneAt desim.Time
	h.st.onDone = func(*request, *station) { doneAt = h.sim.Now() }
	h.st.setCapacity(1)
	h.sim.Run(200)
	if math.Abs(doneAt-100.5) > 1e-9 {
		t.Fatalf("finished at %g, want 100.5", doneAt)
	}
}

func TestStationRemove(t *testing.T) {
	h := newStationHarness(1)
	a, b := &request{}, &request{}
	ja := h.st.add(a, 1.0)
	h.st.add(b, 1.0)
	// Remove A at t=0.5; B then has 0.75 left at full rate -> t=1.25.
	h.sim.At(0.5, func() { h.st.remove(ja) })
	h.sim.RunAll()
	if len(h.done) != 1 || h.done[0] != b {
		t.Fatal("wrong completions after remove")
	}
	if math.Abs(h.sim.Now()-1.25) > 1e-9 {
		t.Fatalf("finished at %g, want 1.25", h.sim.Now())
	}
}

func TestStationClear(t *testing.T) {
	h := newStationHarness(1)
	a, b := &request{}, &request{}
	h.st.add(a, 5)
	h.st.add(b, 5)
	victims := h.st.clear()
	if len(victims) != 2 {
		t.Fatalf("cleared %d jobs", len(victims))
	}
	h.sim.RunAll()
	if len(h.done) != 0 {
		t.Fatal("cleared jobs completed")
	}
}

func TestStationUtilizationAndWork(t *testing.T) {
	h := newStationHarness(1)
	h.st.add(&request{}, 1.0) // busy [0, 1]
	h.sim.At(3.0, func() { h.st.add(&request{}, 1.0) })
	h.sim.RunAll() // busy [3, 4]
	u := h.st.utilization(4.0)
	if math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization %g, want 0.5", u)
	}
	h.st.advance()
	if math.Abs(h.st.workDone-2.0) > 1e-9 {
		t.Fatalf("work done %g, want 2", h.st.workDone)
	}
}

func TestStationSimultaneousCompletions(t *testing.T) {
	// Equal works complete together in one event.
	h := newStationHarness(1)
	for i := 0; i < 5; i++ {
		h.st.add(&request{}, 1.0)
	}
	h.sim.RunAll()
	if len(h.done) != 5 {
		t.Fatalf("completions: %d", len(h.done))
	}
	if math.Abs(h.sim.Now()-5.0) > 1e-9 {
		t.Fatalf("finished at %g, want 5", h.sim.Now())
	}
}

func TestStationZeroWorkCompletesImmediately(t *testing.T) {
	h := newStationHarness(1)
	h.st.add(&request{}, 0)
	h.sim.RunAll()
	if len(h.done) != 1 {
		t.Fatal("zero-work job did not complete")
	}
	if h.sim.Now() != 0 {
		t.Fatalf("completed at %g", h.sim.Now())
	}
}
