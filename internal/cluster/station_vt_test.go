package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/desim"
)

// TestStationUtilizationWindowedAtWarmup is the regression test for the
// warmup-window contract: the busy fraction must cover [warmup, now] only.
// Load is asymmetric around the boundary — busy 100% of the pre-warmup
// interval and 25% of the post-warmup one — so averaging the transient in
// would report (2+1)/6 = 0.5 instead of 0.25.
func TestStationUtilizationWindowedAtWarmup(t *testing.T) {
	h := newStationHarness(1)
	h.st.add(&request{}, 2.0) // busy [0, 2]: the whole pre-warmup window
	h.sim.At(2.0, func() { h.st.snapshotWarmup() })
	h.sim.At(2.0, func() { h.st.add(&request{}, 1.0) }) // busy [2, 3]
	h.sim.Run(6.0)
	if got := h.st.utilization(6.0); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("post-warmup utilization = %g, want 0.25 (warmup transient leaked in)", got)
	}
	// windowWork is scoped identically: 1 unit delivered in [2, 6].
	h.st.advance()
	if got := h.st.windowWork(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("windowWork = %g, want 1", got)
	}
}

// refStation is the pre-rewrite O(k)-per-event processor-sharing physics,
// kept verbatim as the oracle for the virtual-time formulation: per-job
// remaining-work counters drained by capacity/k·dt on every event, linear
// scans for the minimum, and completion collection by threshold on
// remaining work.
type refStation struct {
	capacity   float64
	jobs       []*refJob
	sim        *desim.Simulator
	lastUpdate desim.Time
	pending    desim.Handle
	onDone     func(id int)
}

type refJob struct {
	id        int
	remaining float64
}

func newRefStation(sim *desim.Simulator, capacity float64, onDone func(int)) *refStation {
	return &refStation{capacity: capacity, sim: sim, lastUpdate: sim.Now(), onDone: onDone}
}

func (st *refStation) advance() {
	now := st.sim.Now()
	dt := now - st.lastUpdate
	st.lastUpdate = now
	if dt <= 0 || len(st.jobs) == 0 {
		return
	}
	drained := st.capacity / float64(len(st.jobs)) * dt
	for _, j := range st.jobs {
		j.remaining -= drained
		if j.remaining < 0 {
			j.remaining = 0
		}
	}
}

func (st *refStation) add(id int, work float64) *refJob {
	st.advance()
	j := &refJob{id: id, remaining: math.Max(work, 0)}
	st.jobs = append(st.jobs, j)
	st.reschedule()
	return j
}

func (st *refStation) remove(j *refJob) {
	st.advance()
	for i, cur := range st.jobs {
		if cur == j {
			st.jobs = append(st.jobs[:i], st.jobs[i+1:]...)
			break
		}
	}
	st.reschedule()
}

func (st *refStation) setCapacity(c float64) {
	st.advance()
	if c < 0 {
		c = 0
	}
	st.capacity = c
	st.reschedule()
}

func (st *refStation) reschedule() {
	if st.pending.Pending() {
		st.pending.Cancel()
	}
	if len(st.jobs) == 0 || st.capacity <= 0 {
		return
	}
	minRemaining := math.Inf(1)
	for _, j := range st.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	st.pending = st.sim.After(minRemaining*float64(len(st.jobs))/st.capacity, st.complete)
}

func (st *refStation) complete() {
	st.advance()
	var done []*refJob
	kept := st.jobs[:0]
	for _, j := range st.jobs {
		if j.remaining <= 1e-12 {
			done = append(done, j)
		} else {
			kept = append(kept, j)
		}
	}
	st.jobs = kept
	st.reschedule()
	for _, j := range done {
		st.onDone(j.id)
	}
}

// TestStationMatchesReferencePhysics drives the virtual-time station and
// the pre-rewrite reference through identical randomized schedules of
// arrivals, departures and capacity changes, and requires identical
// completion order with completion times matching to float tolerance.
func TestStationMatchesReferencePhysics(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		type completion struct {
			id int
			at desim.Time
		}
		runOne := func(impl string) []completion {
			// A fresh identically seeded stream per run: both runs draw the
			// same operation sequence and the same work samples.
			rng := rand.New(rand.NewSource(seed))
			sim := desim.New()
			var got []completion
			var addNew func(id int) // wired per implementation below

			newSt := newStation(sim, "vt", 1, nil)
			refSt := newRefStation(sim, 1, nil)
			if impl == "vt" {
				newSt.onDone = func(req *request, _ *station) {
					got = append(got, completion{id: req.service, at: sim.Now()})
				}
			} else {
				refSt.onDone = func(id int) {
					got = append(got, completion{id: id, at: sim.Now()})
				}
			}

			var newJobs []*jobRef
			var refJobs []*refJob
			addNew = func(id int) {
				work := rng.ExpFloat64() * 0.5
				if impl == "vt" {
					newJobs = append(newJobs, newSt.add(&request{service: id}, work))
				} else {
					refJobs = append(refJobs, refSt.add(id, work))
				}
			}

			// A randomized schedule of operations at random times. The rng
			// draws are identical across the two runs because the operation
			// sequence is generated identically (same seed, same draw
			// order).
			tNow := 0.0
			for op := 0; op < 120; op++ {
				tNow += rng.ExpFloat64() * 0.2
				at := tNow
				id := op
				switch k := rng.Intn(10); {
				case k < 6: // arrival
					sim.At(at, func() { addNew(id) })
				case k < 8: // capacity change
					c := 0.25 + rng.Float64()*1.5
					sim.At(at, func() {
						if impl == "vt" {
							newSt.setCapacity(c)
						} else {
							refSt.setCapacity(c)
						}
					})
				default: // remove an arbitrary resident job
					pick := rng.Intn(1 << 20)
					sim.At(at, func() {
						if impl == "vt" {
							if len(newJobs) > 0 {
								j := newJobs[pick%len(newJobs)]
								newJobs = append(newJobs[:pick%len(newJobs)], newJobs[pick%len(newJobs)+1:]...)
								if j.heapIdx >= 0 {
									newSt.remove(j)
								}
							}
						} else {
							if len(refJobs) > 0 {
								j := refJobs[pick%len(refJobs)]
								refJobs = append(refJobs[:pick%len(refJobs)], refJobs[pick%len(refJobs)+1:]...)
								refSt.remove(j)
							}
						}
					})
				}
			}
			sim.Run(tNow + 1000)
			return got
		}

		vt := runOne("vt")
		ref := runOne("ref")
		if len(vt) != len(ref) {
			t.Fatalf("seed %d: %d completions vs reference %d", seed, len(vt), len(ref))
		}
		for i := range vt {
			if vt[i].id != ref[i].id {
				t.Fatalf("seed %d: completion %d is job %d, reference job %d", seed, i, vt[i].id, ref[i].id)
			}
			if math.Abs(vt[i].at-ref[i].at) > 1e-9*math.Max(1, ref[i].at) {
				t.Fatalf("seed %d: job %d completes at %.15g, reference %.15g", seed, vt[i].id, vt[i].at, ref[i].at)
			}
		}
	}
}

// TestStationRemoveMidHeap exercises heap deletion from interior positions:
// jobs removed in an order unrelated to their completion order.
func TestStationRemoveMidHeap(t *testing.T) {
	h := newStationHarness(1)
	var refs []*jobRef
	for i := 0; i < 7; i++ {
		refs = append(refs, h.st.add(&request{service: i}, float64(i+1)))
	}
	// Remove jobs 3, 0, 6 — middle, min, max thresholds.
	h.sim.At(0.5, func() {
		h.st.remove(refs[3])
		h.st.remove(refs[0])
		h.st.remove(refs[6])
	})
	h.sim.RunAll()
	if len(h.done) != 4 {
		t.Fatalf("%d completions, want 4", len(h.done))
	}
	// Survivors complete shortest-work-first: services 1, 2, 4, 5.
	for i, want := range []int{1, 2, 4, 5} {
		if h.done[i].service != want {
			t.Fatalf("completion %d is service %d, want %d", i, h.done[i].service, want)
		}
	}
}

// TestStationBacklog checks the Rainbow rebalancing input: outstanding work
// drained to the current instant.
func TestStationBacklog(t *testing.T) {
	h := newStationHarness(1)
	h.st.add(&request{}, 2.0)
	h.st.add(&request{}, 4.0)
	if got := h.st.backlog(); math.Abs(got-6.0) > 1e-9 {
		t.Fatalf("backlog = %g, want 6", got)
	}
	// After 1s at capacity 1 shared by 2 jobs, each drained 0.5.
	h.sim.At(1.0, func() {
		if got := h.st.backlog(); math.Abs(got-5.0) > 1e-9 {
			t.Fatalf("backlog at t=1 = %g, want 5", got)
		}
	})
	h.sim.RunAll()
	if got := h.st.backlog(); got != 0 {
		t.Fatalf("backlog after drain = %g, want 0", got)
	}
}

// TestStationClearReturnsAdmissionOrder pins the deterministic failure
// path: clear reports victims in admission order regardless of their heap
// arrangement.
func TestStationClearReturnsAdmissionOrder(t *testing.T) {
	h := newStationHarness(1)
	// Decreasing work => heap order is the reverse of admission order.
	for i := 0; i < 6; i++ {
		h.st.add(&request{service: i}, float64(6-i))
	}
	victims := h.st.clear()
	if len(victims) != 6 {
		t.Fatalf("cleared %d jobs", len(victims))
	}
	for i, req := range victims {
		if req.service != i {
			t.Fatalf("victim %d is service %d, want admission order", i, req.service)
		}
	}
}
