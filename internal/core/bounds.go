package core

import (
	"fmt"
	"math"
)

// Bound is the output of the Section III-B.4 planning applications: with
// the dedicated and consolidated deployments forced to the same size
// (M = N), the ratio of delivered throughput fractions (1−B) bounds what
// any runtime mechanism can achieve.
type Bound struct {
	// Servers is the common deployment size the bound was evaluated at.
	Servers int

	// DedicatedLoss and ConsolidatedLoss are the model's request-loss
	// probabilities at that size.
	DedicatedLoss    float64
	ConsolidatedLoss float64

	// ThroughputImprovement is (1−B_consolidated)/(1−B_dedicated) — the
	// paper's "ratio of (1−B)". Values above 1 mean consolidation (with
	// ideal on-demand resource flowing) can deliver that much more
	// goodput than dedicated hosting on the same hardware.
	ThroughputImprovement float64
}

func (b Bound) String() string {
	return fmt.Sprintf("servers=%d B_ded=%.4g B_cons=%.4g improvement=%.4f",
		b.Servers, b.DedicatedLoss, b.ConsolidatedLoss, b.ThroughputImprovement)
}

// AllocatorBound evaluates application (1) of Section III-B.4: with M = N =
// servers, the ratio of (1−B) in the consolidated deployment to that in the
// dedicated deployment. It is the optimal improvement in QoS (throughput)
// that *any* on-demand resource-allocation algorithm can provide, because
// the model's "servers serve on demand" assumption is exactly the ideal
// resource-flowing limit. A real algorithm's measured improvement can be
// scored against this bound: the closer, the better the algorithm.
//
// The consolidated loss is computed under the model's Form; impact
// factors apply (the algorithm cannot undo virtualization overhead).
func (m *Model) AllocatorBound(servers int) (Bound, error) {
	return m.bound(servers, false)
}

// VirtualizationBound evaluates application (2) of Section III-B.4: the
// same M = N comparison with every impact factor forced to 1, bounding the
// QoS improvement an ideal zero-overhead virtualization product could
// deliver over dedicated native-Linux servers.
func (m *Model) VirtualizationBound(servers int) (Bound, error) {
	return m.bound(servers, true)
}

func (m *Model) bound(servers int, idealVirt bool) (Bound, error) {
	if err := m.Validate(); err != nil {
		return Bound{}, err
	}
	if servers <= 0 {
		return Bound{}, fmt.Errorf("%w: bound requires positive server count, got %d", ErrInvalidModel, servers)
	}
	target := m
	if idealVirt {
		clone := *m
		clone.Services = make([]Service, len(m.Services))
		for i, s := range m.Services {
			cs := s
			cs.ImpactFactors = nil // defaults to 1 everywhere
			clone.Services[i] = cs
		}
		target = &clone
	}
	ded, err := m.LossAtServers(servers, true, m.Form)
	if err != nil {
		return Bound{}, err
	}
	cons, err := target.LossAtServers(servers, false, m.Form)
	if err != nil {
		return Bound{}, err
	}
	b := Bound{Servers: servers, DedicatedLoss: ded, ConsolidatedLoss: cons}
	if ded < 1 {
		b.ThroughputImprovement = (1 - cons) / (1 - ded)
	} else {
		b.ThroughputImprovement = math.Inf(1)
	}
	return b, nil
}

// ScoreAllocator grades a measured allocator the way Section III-B.4
// prescribes: given the goodput improvement an allocation algorithm
// actually achieved at M = N = servers (measured (1−B_cons)/(1−B_ded)),
// it reports the fraction of the model's optimal bound the algorithm
// realizes, in [0, 1] (capped). 1 means the algorithm matches ideal
// on-demand resource flowing.
func (m *Model) ScoreAllocator(servers int, measuredImprovement float64) (float64, error) {
	bound, err := m.AllocatorBound(servers)
	if err != nil {
		return 0, err
	}
	if bound.ThroughputImprovement <= 0 || math.IsInf(bound.ThroughputImprovement, 1) {
		return 0, fmt.Errorf("core: degenerate allocator bound %v", bound)
	}
	// Both improvements are ratios >= ~0; normalize the *gain* over 1.0
	// when the bound exceeds 1 (a do-nothing allocator has improvement 1
	// and gain 0), else fall back to the raw ratio.
	if bound.ThroughputImprovement > 1 {
		gain := measuredImprovement - 1
		if gain < 0 {
			gain = 0
		}
		score := gain / (bound.ThroughputImprovement - 1)
		if score > 1 {
			score = 1
		}
		return score, nil
	}
	score := measuredImprovement / bound.ThroughputImprovement
	if score > 1 {
		score = 1
	}
	if score < 0 {
		score = 0
	}
	return score, nil
}
