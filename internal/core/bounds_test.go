package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllocatorBoundImproves(t *testing.T) {
	// At M = N = 6 with group-1 traffic, ideal resource flowing should
	// lose strictly fewer requests than static dedication: pooled Erlang
	// servers beat partitioned ones.
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AllocatorBound(6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Servers != 6 {
		t.Fatalf("bound servers = %d", b.Servers)
	}
	if b.ConsolidatedLoss >= b.DedicatedLoss {
		t.Fatalf("consolidation did not improve: %+v", b)
	}
	if b.ThroughputImprovement <= 1 {
		t.Fatalf("improvement = %g, want > 1", b.ThroughputImprovement)
	}
	if b.String() == "" {
		t.Fatal("empty bound string")
	}
}

func TestVirtualizationBoundBeatsAllocatorBound(t *testing.T) {
	// Removing virtualization overhead can only help, so the
	// ideal-virtualization bound dominates the allocator bound.
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := m.AllocatorBound(8)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := m.VirtualizationBound(8)
	if err != nil {
		t.Fatal(err)
	}
	if vb.ConsolidatedLoss > ab.ConsolidatedLoss+1e-12 {
		t.Fatalf("ideal virtualization lost more: %g vs %g",
			vb.ConsolidatedLoss, ab.ConsolidatedLoss)
	}
	if vb.ThroughputImprovement < ab.ThroughputImprovement-1e-12 {
		t.Fatalf("vb %g < ab %g", vb.ThroughputImprovement, ab.ThroughputImprovement)
	}
	// The virtualization bound must not mutate the original model.
	if m.Services[0].ImpactFactors[DiskIO] != 0.98 {
		t.Fatal("VirtualizationBound mutated the model")
	}
}

func TestBoundErrors(t *testing.T) {
	m := caseStudyModel(100, 10, 0.05)
	if _, err := m.AllocatorBound(0); err == nil {
		t.Fatal("zero servers accepted")
	}
	bad := &Model{}
	if _, err := bad.AllocatorBound(4); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestScoreAllocator(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := m.AllocatorBound(6)
	if err != nil {
		t.Fatal(err)
	}
	// An allocator achieving the bound exactly scores 1.
	s, err := m.ScoreAllocator(6, bound.ThroughputImprovement)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("perfect allocator scored %g", s)
	}
	// A do-nothing allocator (improvement 1.0) scores 0.
	s, err = m.ScoreAllocator(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("null allocator scored %g", s)
	}
	// Halfway.
	mid := 1 + (bound.ThroughputImprovement-1)/2
	s, err = m.ScoreAllocator(6, mid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("halfway allocator scored %g", s)
	}
	// Better than the bound caps at 1.
	s, err = m.ScoreAllocator(6, bound.ThroughputImprovement*2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("super-bound allocator scored %g", s)
	}
}

// Property: the bound's losses are valid probabilities and the improvement
// is finite and positive for sane inputs.
func TestBoundSanityProperty(t *testing.T) {
	f := func(lw, ld uint16, srv uint8) bool {
		m := caseStudyModel(float64(lw%4000)+50, float64(ld%300)+5, 0.05)
		servers := int(srv)%12 + 2
		b, err := m.AllocatorBound(servers)
		if err != nil {
			return false
		}
		if b.DedicatedLoss < 0 || b.DedicatedLoss > 1 {
			return false
		}
		if b.ConsolidatedLoss < 0 || b.ConsolidatedLoss > 1 {
			return false
		}
		return b.ThroughputImprovement > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
