package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/erlang"
)

// This file implements the paper's stated future work (Sections IV-D and
// V): "expanding the utility analytic model to fit data centers with
// heterogeneous servers". The paper already sketches the mechanism — "all
// the heterogeneous servers can be normalized to the homogeneous servers.
// For example, CPU of a server which has two 2.0GHz Quad-Core processors
// can be normalized to 1, then CPU of a server which has one 2.0GHz
// Quad-Core processor can be normalized to 0.5" — and its Discussion
// section motivates it with the measured ~20 % throughput gap between the
// AMD and Intel servers of its own testbed.
//
// The extension: servers come in classes, each with a per-resource
// capability relative to the reference server the model's μ values were
// measured on. Sizing proceeds in two steps:
//
//  1. the Erlang step sizes the pool in *reference-server units* exactly as
//     the homogeneous model does (Fig. 4), then
//  2. a packing step covers those units with physical machines from the
//     available classes, minimizing either machine count or power draw.
//
// The normalization is an approximation — a loss system with unequal
// server rates is not exactly an Erlang pool of fractional servers — and
// the test suite quantifies the gap against simulation.

// ServerClass describes one hardware class in a heterogeneous data center.
type ServerClass struct {
	// Name identifies the class ("amd-2350", "intel-5140", ...).
	Name string

	// Count is how many machines of this class are available; 0 means
	// unlimited.
	Count int

	// Capability maps each resource to this class's speed relative to the
	// reference server (the one the model's serving rates were measured
	// on). A resource absent from the map defaults to 1. The paper's
	// Discussion example: the AMD server runs the e-book DB workload ~20 %
	// faster than the Intel one, so with AMD as reference the Intel class
	// has Capability[CPU] ≈ 0.83.
	Capability map[Resource]float64

	// Power is the class's power model; the zero value means the model's
	// default.
	Power PowerParams
}

// capabilityOn reports the class's capability on resource j (default 1).
func (c ServerClass) capabilityOn(j Resource) float64 {
	v, ok := c.Capability[j]
	if !ok {
		return 1
	}
	return v
}

// effectiveCapability reports the class's binding capability across the
// given resources: the minimum, since a machine must keep up on every
// resource it serves.
func (c ServerClass) effectiveCapability(resources []Resource) float64 {
	min := math.Inf(1)
	for _, j := range resources {
		if v := c.capabilityOn(j); v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 1
	}
	return min
}

// Validate checks the class.
func (c ServerClass) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: server class has no name", ErrInvalidModel)
	}
	if c.Count < 0 {
		return fmt.Errorf("%w: class %q count %d", ErrInvalidModel, c.Name, c.Count)
	}
	for j, v := range c.Capability {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: class %q capability[%s] = %g", ErrInvalidModel, c.Name, j, v)
		}
	}
	return c.power().Validate()
}

func (c ServerClass) power() PowerParams {
	if c.Power == (PowerParams{}) {
		return DefaultPower
	}
	return c.Power
}

// PackObjective selects what the heterogeneous packing minimizes.
type PackObjective int

const (
	// MinMachines minimizes the number of physical machines.
	MinMachines PackObjective = iota
	// MinPower minimizes the summed idle power draw of the chosen
	// machines (the dominant term, since idle draw exceeds half of peak).
	MinPower
)

func (o PackObjective) String() string {
	if o == MinPower {
		return "min-power"
	}
	return "min-machines"
}

// HeterogeneousPlan is the outcome of covering an Erlang-sized pool with
// machines from heterogeneous classes.
type HeterogeneousPlan struct {
	// ReferenceServers is the Erlang sizing in reference-server units (the
	// homogeneous model's N or a service's n).
	ReferenceServers int

	// Allocation maps class name to machines used.
	Allocation map[string]int

	// Machines is the total physical machine count.
	Machines int

	// CapabilityUnits is the summed effective capability of the chosen
	// machines (>= ReferenceServers).
	CapabilityUnits float64

	// IdlePower and PeakPower are the summed per-class power draws of the
	// chosen machines, in watts.
	IdlePower float64
	PeakPower float64

	// Objective echoes the packing objective.
	Objective PackObjective
}

func (p *HeterogeneousPlan) String() string {
	names := make([]string, 0, len(p.Allocation))
	for n := range p.Allocation {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("%d reference units -> %d machines (", p.ReferenceServers, p.Machines)
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%dx %s", p.Allocation[n], n)
	}
	return s + ")"
}

// ErrInsufficientCapacity reports that the available classes cannot cover
// the required capability.
var ErrInsufficientCapacity = fmt.Errorf("%w: insufficient heterogeneous capacity", ErrInvalidModel)

// PackServers covers requiredUnits reference-server units with machines
// from the given classes under the objective, greedily taking the most
// efficient class first (capability per machine for MinMachines,
// capability per idle watt for MinPower). The greedy cover is within one
// machine of optimal for MinMachines with unlimited counts and is the
// standard practical heuristic otherwise.
func PackServers(requiredUnits int, resources []Resource, classes []ServerClass, objective PackObjective) (*HeterogeneousPlan, error) {
	if requiredUnits < 0 {
		return nil, fmt.Errorf("%w: required units %d", ErrInvalidModel, requiredUnits)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no server classes", ErrInvalidModel)
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	type scored struct {
		class ServerClass
		cap   float64
		score float64 // higher = take first
	}
	scoredClasses := make([]scored, 0, len(classes))
	for _, c := range classes {
		cap := c.effectiveCapability(resources)
		score := cap
		if objective == MinPower {
			score = cap / c.power().Base
		}
		scoredClasses = append(scoredClasses, scored{class: c, cap: cap, score: score})
	}
	sort.SliceStable(scoredClasses, func(a, b int) bool {
		return scoredClasses[a].score > scoredClasses[b].score
	})

	plan := &HeterogeneousPlan{
		ReferenceServers: requiredUnits,
		Allocation:       map[string]int{},
		Objective:        objective,
	}
	remaining := float64(requiredUnits)
	for _, sc := range scoredClasses {
		if remaining <= 0 {
			break
		}
		avail := sc.class.Count
		unlimited := avail == 0
		need := int(math.Ceil(remaining / sc.cap))
		take := need
		if !unlimited && take > avail {
			take = avail
		}
		if take == 0 {
			continue
		}
		plan.Allocation[sc.class.Name] += take
		plan.Machines += take
		plan.CapabilityUnits += float64(take) * sc.cap
		plan.IdlePower += float64(take) * sc.class.power().Base
		plan.PeakPower += float64(take) * sc.class.power().Max
		remaining -= float64(take) * sc.cap
	}
	if remaining > 1e-9 {
		return nil, fmt.Errorf("%w: %g reference units uncovered", ErrInsufficientCapacity, remaining)
	}
	return plan, nil
}

// HeterogeneousResult extends the homogeneous Result with physical-machine
// packings for both deployments.
type HeterogeneousResult struct {
	Homogeneous *Result

	// Dedicated covers each service's pool separately (machines cannot be
	// shared across services in the dedicated deployment); Consolidated
	// covers the shared pool.
	Dedicated    *HeterogeneousPlan
	PerService   map[string]*HeterogeneousPlan
	Consolidated *HeterogeneousPlan

	// MachineRatio is dedicated machines / consolidated machines — the
	// heterogeneous analogue of M/N.
	MachineRatio float64
}

// SolveHeterogeneous runs the homogeneous model and then packs both
// deployments onto the available server classes. The same classes are
// offered to both deployments; Count limits apply to each deployment
// independently (the comparison asks "how many machines would each design
// buy", not "can both coexist").
func (m *Model) SolveHeterogeneous(classes []ServerClass, objective PackObjective) (*HeterogeneousResult, error) {
	res, err := m.Solve()
	if err != nil {
		return nil, err
	}
	resources := m.resources()
	out := &HeterogeneousResult{
		Homogeneous: res,
		PerService:  map[string]*HeterogeneousPlan{},
	}

	total := &HeterogeneousPlan{Allocation: map[string]int{}, Objective: objective}
	for _, sp := range res.Dedicated.PerService {
		// Each service only binds on the resources it demands.
		var svcResources []Resource
		for _, svc := range m.Services {
			if svc.Name != sp.Service {
				continue
			}
			for _, j := range resources {
				if svc.demandsResource(j) {
					svcResources = append(svcResources, j)
				}
			}
		}
		p, err := PackServers(sp.Servers, svcResources, classes, objective)
		if err != nil {
			return nil, fmt.Errorf("core: packing service %q: %w", sp.Service, err)
		}
		out.PerService[sp.Service] = p
		total.ReferenceServers += p.ReferenceServers
		total.Machines += p.Machines
		total.CapabilityUnits += p.CapabilityUnits
		total.IdlePower += p.IdlePower
		total.PeakPower += p.PeakPower
		for name, n := range p.Allocation {
			total.Allocation[name] += n
		}
	}
	out.Dedicated = total

	cons, err := PackServers(res.Consolidated.Servers, resources, classes, objective)
	if err != nil {
		return nil, fmt.Errorf("core: packing consolidated pool: %w", err)
	}
	out.Consolidated = cons
	if cons.Machines > 0 {
		out.MachineRatio = float64(total.Machines) / float64(cons.Machines)
	}
	return out, nil
}

// HeterogeneousLoss approximates the loss probability of a heterogeneous
// pool serving the consolidated workload: the pool's summed effective
// capability (in reference-server units) is treated as a fractional Erlang
// server count, evaluated with the continuous Erlang B extension
// (erlang.BContinuous). The approximation is exact at integer capability
// sums and interpolates smoothly between them; the simulation test suite
// bounds the pooling approximation's error elsewhere.
func (m *Model) HeterogeneousLoss(classes []ServerClass, allocation map[string]int, form TrafficForm) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	resources := m.resources()
	units := 0.0
	for _, c := range classes {
		n := allocation[c.Name]
		if n < 0 {
			return 0, fmt.Errorf("%w: negative allocation for %q", ErrInvalidModel, c.Name)
		}
		units += float64(n) * c.effectiveCapability(resources)
	}
	worst := 0.0
	for _, j := range resources {
		rho := m.ConsolidatedTraffic(j, form)
		b, err := erlang.BContinuous(units, rho)
		if err != nil {
			return 0, err
		}
		if b > worst {
			worst = b
		}
	}
	return worst, nil
}
