package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// amdIntelClasses models the paper's own Discussion observation: the AMD
// server runs the e-book DB workload ~20 % faster than the Intel one. With
// AMD as the reference, Intel's CPU capability is 1/1.2 ≈ 0.83.
func amdIntelClasses(amd, intel int) []ServerClass {
	return []ServerClass{
		{
			Name:  "amd-2350",
			Count: amd,
			// Reference class: capability 1 everywhere.
		},
		{
			Name:       "intel-5140",
			Count:      intel,
			Capability: map[Resource]float64{CPU: 1 / 1.2},
			Power:      PowerParams{Base: 230, Max: 310},
		},
	}
}

func TestServerClassValidate(t *testing.T) {
	good := amdIntelClasses(2, 2)[1]
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ServerClass{
		{Name: ""},
		{Name: "x", Count: -1},
		{Name: "x", Capability: map[Resource]float64{CPU: 0}},
		{Name: "x", Capability: map[Resource]float64{CPU: math.NaN()}},
		{Name: "x", Power: PowerParams{Base: 10, Max: 5}},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("bad class %d accepted", i)
		}
	}
}

func TestEffectiveCapability(t *testing.T) {
	c := ServerClass{Name: "x", Capability: map[Resource]float64{CPU: 0.8, DiskIO: 1.2}}
	if got := c.effectiveCapability([]Resource{CPU, DiskIO}); got != 0.8 {
		t.Fatalf("effective = %g, want min", got)
	}
	if got := c.effectiveCapability([]Resource{DiskIO}); got != 1.2 {
		t.Fatalf("effective = %g", got)
	}
	// Unspecified resources default to 1.
	if got := c.effectiveCapability([]Resource{Memory}); got != 1 {
		t.Fatalf("default = %g", got)
	}
	// Empty resource list defaults to 1.
	if got := c.effectiveCapability(nil); got != 1 {
		t.Fatalf("empty = %g", got)
	}
}

func TestPackServersMinMachines(t *testing.T) {
	classes := []ServerClass{
		{Name: "big", Count: 2, Capability: map[Resource]float64{CPU: 2}},
		{Name: "small", Count: 0, Capability: map[Resource]float64{CPU: 0.5}},
	}
	plan, err := PackServers(5, []Resource{CPU}, classes, MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: 2 big (4 units) + 2 small (1 unit) = 5 units, 4 machines.
	if plan.Allocation["big"] != 2 || plan.Allocation["small"] != 2 {
		t.Fatalf("allocation %v", plan.Allocation)
	}
	if plan.Machines != 4 || plan.CapabilityUnits != 5 {
		t.Fatalf("machines=%d units=%g", plan.Machines, plan.CapabilityUnits)
	}
	if plan.String() == "" {
		t.Fatal("empty plan string")
	}
}

func TestPackServersMinPower(t *testing.T) {
	classes := []ServerClass{
		// Fast but power-hungry.
		{Name: "hot", Capability: map[Resource]float64{CPU: 2}, Power: PowerParams{Base: 600, Max: 700}},
		// Slower but far more efficient per watt: 1/200 > 2/600.
		{Name: "cool", Capability: map[Resource]float64{CPU: 1}, Power: PowerParams{Base: 200, Max: 280}},
	}
	plan, err := PackServers(4, []Resource{CPU}, classes, MinPower)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Allocation["cool"] != 4 || plan.Allocation["hot"] != 0 {
		t.Fatalf("min-power allocation %v", plan.Allocation)
	}
	if plan.IdlePower != 800 {
		t.Fatalf("idle power %g", plan.IdlePower)
	}
	// MinMachines prefers the fast class.
	plan2, err := PackServers(4, []Resource{CPU}, classes, MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Allocation["hot"] != 2 {
		t.Fatalf("min-machines allocation %v", plan2.Allocation)
	}
	if MinMachines.String() == MinPower.String() {
		t.Fatal("objective names collide")
	}
}

func TestPackServersInsufficient(t *testing.T) {
	classes := []ServerClass{{Name: "only", Count: 2}}
	if _, err := PackServers(5, []Resource{CPU}, classes, MinMachines); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatal("insufficient capacity accepted")
	}
}

func TestPackServersErrors(t *testing.T) {
	if _, err := PackServers(-1, nil, amdIntelClasses(1, 1), MinMachines); err == nil {
		t.Fatal("negative units accepted")
	}
	if _, err := PackServers(1, nil, nil, MinMachines); err == nil {
		t.Fatal("no classes accepted")
	}
	if _, err := PackServers(1, nil, []ServerClass{{}}, MinMachines); err == nil {
		t.Fatal("invalid class accepted")
	}
	// Zero units is a valid empty plan.
	plan, err := PackServers(0, nil, amdIntelClasses(1, 1), MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Machines != 0 {
		t.Fatalf("zero-unit plan used %d machines", plan.Machines)
	}
}

func TestSolveHeterogeneousCaseStudy(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// All-reference classes reproduce the homogeneous result exactly.
	res, err := m.SolveHeterogeneous([]ServerClass{{Name: "ref"}}, MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Machines != res.Homogeneous.Dedicated.Servers {
		t.Fatalf("dedicated machines %d != M %d",
			res.Dedicated.Machines, res.Homogeneous.Dedicated.Servers)
	}
	if res.Consolidated.Machines != res.Homogeneous.Consolidated.Servers {
		t.Fatalf("consolidated machines %d != N %d",
			res.Consolidated.Machines, res.Homogeneous.Consolidated.Servers)
	}
	if res.MachineRatio != 2 {
		t.Fatalf("machine ratio %g", res.MachineRatio)
	}

	// A pool with slower Intel machines needs more of them.
	intelOnly := []ServerClass{{
		Name:       "intel-5140",
		Capability: map[Resource]float64{CPU: 1 / 1.2},
	}}
	res2, err := m.SolveHeterogeneous(intelOnly, MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Consolidated.Machines < res.Consolidated.Machines {
		t.Fatalf("slower machines reduced the pool: %d vs %d",
			res2.Consolidated.Machines, res.Consolidated.Machines)
	}
	// Per-service breakdown present for both services.
	if len(res.PerService) != 2 {
		t.Fatalf("per-service plans: %d", len(res.PerService))
	}
}

func TestSolveHeterogeneousMixedFleet(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Only 2 AMD machines available; the rest must be Intel.
	res, err := m.SolveHeterogeneous(amdIntelClasses(2, 0), MinMachines)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consolidated.Allocation["amd-2350"] != 2 {
		t.Fatalf("consolidated allocation %v", res.Consolidated.Allocation)
	}
	if res.Consolidated.Allocation["intel-5140"] < 2 {
		t.Fatalf("expected intel fill-in, got %v", res.Consolidated.Allocation)
	}
	if res.Consolidated.CapabilityUnits < float64(res.Homogeneous.Consolidated.Servers) {
		t.Fatal("under-covered pool")
	}
}

func TestHeterogeneousLoss(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	classes := amdIntelClasses(0, 0)
	// 4 reference machines: same as the homogeneous N, loss <= target.
	loss, err := m.HeterogeneousLoss(classes, map[string]int{"amd-2350": 4}, m.Form)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.LossAtServers(4, false, m.Form)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-direct) > 1e-12 {
		t.Fatalf("integer-capability loss %g != direct %g", loss, direct)
	}
	// Intel machines are worth less: same count, higher loss.
	lossIntel, err := m.HeterogeneousLoss(classes, map[string]int{"intel-5140": 4}, m.Form)
	if err != nil {
		t.Fatal(err)
	}
	if lossIntel <= loss {
		t.Fatalf("slower machines should lose more: %g vs %g", lossIntel, loss)
	}
	// Fractional interpolation lies between the integer brackets.
	loss35, err := m.HeterogeneousLoss(classes,
		map[string]int{"amd-2350": 3, "intel-5140": 1}, m.Form) // 3.833 units
	if err != nil {
		t.Fatal(err)
	}
	loss3, _ := m.LossAtServers(3, false, m.Form)
	loss4, _ := m.LossAtServers(4, false, m.Form)
	if loss35 < loss4-1e-12 || loss35 > loss3+1e-12 {
		t.Fatalf("interpolated loss %g outside [%g, %g]", loss35, loss4, loss3)
	}
	// Negative allocations rejected.
	if _, err := m.HeterogeneousLoss(classes, map[string]int{"amd-2350": -1}, m.Form); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

// Property: packing always covers the requirement, never exceeds class
// counts, and MinMachines uses no more machines than MinPower. (MinPower's
// greedy can spend *more* idle watts than MinMachines when count limits
// force a fill-in — it is a heuristic, not an optimum — so no idle-power
// dominance is asserted; TestPackServersMinPower covers the unconstrained
// case where the objective does win.)
func TestPackingProperty(t *testing.T) {
	f := func(units uint8, bigCount, smallCount uint8) bool {
		classes := []ServerClass{
			{Name: "big", Count: int(bigCount), Capability: map[Resource]float64{CPU: 2},
				Power: PowerParams{Base: 500, Max: 600}},
			{Name: "small", Count: int(smallCount), Capability: map[Resource]float64{CPU: 1},
				Power: PowerParams{Base: 200, Max: 260}},
		}
		req := int(units) % 32
		mm, errM := PackServers(req, []Resource{CPU}, classes, MinMachines)
		mp, errP := PackServers(req, []Resource{CPU}, classes, MinPower)
		if errM != nil || errP != nil {
			// Both must agree on feasibility.
			return (errM != nil) == (errP != nil)
		}
		if mm.CapabilityUnits < float64(req) || mp.CapabilityUnits < float64(req) {
			return false
		}
		if bigCount > 0 && mm.Allocation["big"] > int(bigCount) {
			return false
		}
		if smallCount > 0 && mp.Allocation["small"] > int(smallCount) {
			return false
		}
		return mm.Machines <= mp.Machines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
