package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The JSON representation of a Model, for CLI tools and config files. The
// schema is deliberately explicit (no map[Resource] in the wire format
// beyond resource-name keys) and versioned by leniency: unknown fields are
// rejected so typos surface instead of silently defaulting.
//
//	{
//	  "lossTarget": 0.05,
//	  "form": "eq5-restricted",            // or "eq5-verbatim", "harmonic"
//	  "utilizationScale": 1,               // optional, the paper's b
//	  "power": {"base": 250, "max": 340},  // optional, watts
//	  "services": [
//	    {
//	      "name": "web",
//	      "arrivalRate": 1280,
//	      "servingRates":  {"diskio": 1420, "cpu": 3360},
//	      "impactFactors": {"diskio": 0.98, "cpu": 0.63}
//	    }
//	  ]
//	}
type modelJSON struct {
	LossTarget       float64       `json:"lossTarget"`
	Form             string        `json:"form,omitempty"`
	UtilizationScale float64       `json:"utilizationScale,omitempty"`
	Power            *powerJSON    `json:"power,omitempty"`
	Services         []serviceJSON `json:"services"`
	Resources        []string      `json:"resources,omitempty"`
}

type powerJSON struct {
	Base float64 `json:"base"`
	Max  float64 `json:"max"`
}

type serviceJSON struct {
	Name          string             `json:"name"`
	ArrivalRate   float64            `json:"arrivalRate"`
	ServingRates  map[string]float64 `json:"servingRates"`
	ImpactFactors map[string]float64 `json:"impactFactors,omitempty"`
}

// formNames maps wire names to TrafficForm values.
var formNames = map[string]TrafficForm{
	"":               TrafficEq5Restricted,
	"eq5-restricted": TrafficEq5Restricted,
	"eq5-verbatim":   TrafficEq5Verbatim,
	"harmonic":       TrafficHarmonic,
}

// ParseJSON reads a model from JSON, rejecting unknown fields and
// validating the result.
func ParseJSON(r io.Reader) (*Model, error) {
	var mj modelJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: parsing model JSON: %w", err)
	}
	form, ok := formNames[mj.Form]
	if !ok {
		return nil, fmt.Errorf("%w: unknown traffic form %q", ErrInvalidModel, mj.Form)
	}
	m := &Model{
		LossTarget:       mj.LossTarget,
		Form:             form,
		UtilizationScale: mj.UtilizationScale,
	}
	if mj.Power != nil {
		m.Power = PowerParams{Base: mj.Power.Base, Max: mj.Power.Max}
	}
	for _, r := range mj.Resources {
		m.Resources = append(m.Resources, Resource(r))
	}
	for _, sj := range mj.Services {
		svc := Service{
			Name:        sj.Name,
			ArrivalRate: sj.ArrivalRate,
		}
		if len(sj.ServingRates) > 0 {
			svc.ServingRates = map[Resource]float64{}
			for r, mu := range sj.ServingRates {
				svc.ServingRates[Resource(r)] = mu
			}
		}
		if len(sj.ImpactFactors) > 0 {
			svc.ImpactFactors = map[Resource]float64{}
			for r, a := range sj.ImpactFactors {
				svc.ImpactFactors[Resource(r)] = a
			}
		}
		m.Services = append(m.Services, svc)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseJSONBytes is ParseJSON over a byte slice.
func ParseJSONBytes(raw []byte) (*Model, error) {
	return ParseJSON(bytes.NewReader(raw))
}

// WriteJSON writes the model as indented JSON. The model is validated
// first so round-trips stay inside the schema's domain.
func (m *Model) WriteJSON(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	mj := modelJSON{
		LossTarget:       m.LossTarget,
		UtilizationScale: m.UtilizationScale,
	}
	switch m.Form {
	case TrafficEq5Restricted:
		mj.Form = "" // the default reads back identically
	case TrafficEq5Verbatim:
		mj.Form = "eq5-verbatim"
	case TrafficHarmonic:
		mj.Form = "harmonic"
	default:
		return fmt.Errorf("%w: unserializable traffic form %d", ErrInvalidModel, int(m.Form))
	}
	if m.Power != (PowerParams{}) {
		mj.Power = &powerJSON{Base: m.Power.Base, Max: m.Power.Max}
	}
	for _, r := range m.Resources {
		mj.Resources = append(mj.Resources, string(r))
	}
	for _, svc := range m.Services {
		sj := serviceJSON{
			Name:        svc.Name,
			ArrivalRate: svc.ArrivalRate,
		}
		if len(svc.ServingRates) > 0 {
			sj.ServingRates = map[string]float64{}
			for r, mu := range svc.ServingRates {
				sj.ServingRates[string(r)] = mu
			}
		}
		if len(svc.ImpactFactors) > 0 {
			sj.ImpactFactors = map[string]float64{}
			for r, a := range svc.ImpactFactors {
				sj.ImpactFactors[string(r)] = a
			}
		}
		mj.Services = append(mj.Services, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mj)
}
