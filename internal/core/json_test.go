package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const jsonSpec = `{
  "lossTarget": 0.05,
  "form": "harmonic",
  "utilizationScale": 0.8,
  "power": {"base": 250, "max": 340},
  "services": [
    {
      "name": "web",
      "arrivalRate": 1280,
      "servingRates":  {"diskio": 1420, "cpu": 3360},
      "impactFactors": {"diskio": 0.98, "cpu": 0.63}
    },
    {
      "name": "db",
      "arrivalRate": 90,
      "servingRates": {"cpu": 100}
    }
  ]
}`

func TestParseJSON(t *testing.T) {
	m, err := ParseJSONBytes([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	if m.LossTarget != 0.05 || m.Form != TrafficHarmonic || m.UtilizationScale != 0.8 {
		t.Fatalf("model header: %+v", m)
	}
	if m.Power.Base != 250 || m.Power.Max != 340 {
		t.Fatalf("power: %+v", m.Power)
	}
	if len(m.Services) != 2 {
		t.Fatalf("services: %d", len(m.Services))
	}
	if m.Services[0].ServingRates[DiskIO] != 1420 ||
		m.Services[0].ImpactFactors[CPU] != 0.63 {
		t.Fatal("service maps lost")
	}
	if m.Services[1].ImpactFactors != nil {
		t.Fatal("absent impact factors should stay nil")
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"garbage", "nope"},
		{"unknown field", `{"lossTarget":0.05,"bogus":1,"services":[]}`},
		{"bad form", strings.Replace(jsonSpec, "harmonic", "psychic", 1)},
		{"invalid model", `{"lossTarget":0.05,"services":[]}`},
		{"loss out of range", strings.Replace(jsonSpec, "0.05", "7", 1)},
	}
	for _, c := range cases {
		if _, err := ParseJSONBytes([]byte(c.spec)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig, err := ParseJSONBytes([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(&buf)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
	}
	// The two models must solve identically.
	a, err := orig.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Dedicated.Servers != b.Dedicated.Servers ||
		a.Consolidated.Servers != b.Consolidated.Servers {
		t.Fatalf("round-trip changed the plan: %v vs %v", a, b)
	}
	if math.Abs(a.PowerSaving-b.PowerSaving) > 1e-12 {
		t.Fatal("round-trip changed power")
	}
	if back.Form != TrafficHarmonic {
		t.Fatal("form lost in round trip")
	}
}

func TestWriteJSONDefaultFormOmitted(t *testing.T) {
	m := caseStudyModel(100, 10, 0.05)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"form"`) {
		t.Fatalf("default form serialized:\n%s", buf.String())
	}
	// Resources list survives.
	if !strings.Contains(buf.String(), `"resources"`) {
		t.Fatal("resources dropped")
	}
}

func TestWriteJSONInvalidModel(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Model{}).WriteJSON(&buf); err == nil {
		t.Fatal("invalid model serialized")
	}
}
