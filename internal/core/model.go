// Package core implements the paper's primary contribution: the utility
// analytic model for Internet-oriented server consolidation in VM-based
// data centers (Section III).
//
// Given, for each concurrent service i and each physical resource type j:
//
//   - the mean Poisson arrival rate λᵢ of requests for the service,
//   - the mean serving rate μᵢⱼ of one dedicated physical server's resource
//     j for those requests, and
//   - the virtualization impact factor aᵢⱼ ∈ (0, 1] — the ratio of the QoS
//     delivered by VMs to that delivered by native Linux on resource j,
//
// the model predicts, before any service is deployed:
//
//   - M — the number of dedicated physical servers needed so every service
//     meets a target request-loss probability B (Eq. 6),
//   - N — the number of VM-based consolidated servers needed for the same
//     loss probability (Eq. 7), via the consolidated traffic of Eq. (5),
//   - the ratio of mean resource utilizations U_M/U_N (Eq. 8–11), and
//   - the ratio of power draws P_M/P_N under the linear server power model
//     P = S_base + (S_max − S_base)·u (Eq. 12–14).
//
// Two planning applications from Section III-B.4 are provided as well:
// bounding the QoS improvement achievable by any on-demand resource
// allocation algorithm (AllocatorBound) and by an ideal overhead-free
// virtualization layer (VirtualizationBound).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Resource identifies a physical resource type of a server. The model
// assumes distinct resource types do not interact (assumption 3 of
// Section III-B.1).
type Resource string

// The resource types used throughout the paper's case study. Additional
// resource types may be introduced freely; the model treats Resource values
// opaquely.
const (
	CPU     Resource = "cpu"
	DiskIO  Resource = "diskio"
	Memory  Resource = "memory"
	Network Resource = "network"
)

// Service describes one Internet service to be hosted.
type Service struct {
	// Name identifies the service in reports.
	Name string

	// ArrivalRate is the mean arrival rate λᵢ of the service's Poisson
	// request stream, in requests per unit time (assumption 2).
	ArrivalRate float64

	// ServingRates maps each resource j to μᵢⱼ, the mean rate at which one
	// dedicated physical server's resource j completes this service's
	// requests. A resource absent from the map — or mapped to +Inf — places
	// zero demand on that resource (the paper's μ_di: "the demand on disk
	// I/O by requests accessing DB service is close to zero").
	ServingRates map[Resource]float64

	// ImpactFactors maps each resource j to aᵢⱼ ∈ (0, 1], the degree of
	// performance degradation virtualization imposes on this service's use
	// of resource j. A resource absent from the map defaults to 1 (no
	// degradation). Impact factors only affect the consolidated scenario.
	ImpactFactors map[Resource]float64
}

// demandsResource reports whether the service places nonzero demand on j.
func (s Service) demandsResource(j Resource) bool {
	mu, ok := s.ServingRates[j]
	return ok && !math.IsInf(mu, 1)
}

// servingRate returns μᵢⱼ, or +Inf when the service places no demand on j.
func (s Service) servingRate(j Resource) float64 {
	mu, ok := s.ServingRates[j]
	if !ok {
		return math.Inf(1)
	}
	return mu
}

// impactFactor returns aᵢⱼ, defaulting to 1.
func (s Service) impactFactor(j Resource) float64 {
	a, ok := s.ImpactFactors[j]
	if !ok {
		return 1
	}
	return a
}

// offeredTraffic returns ρᵢⱼ = λᵢ/μᵢⱼ (Eq. 3), the service's offered load
// on resource j in Erlangs of dedicated-server capacity.
func (s Service) offeredTraffic(j Resource) float64 {
	mu := s.servingRate(j)
	if math.IsInf(mu, 1) {
		return 0
	}
	return s.ArrivalRate / mu
}

// PowerParams carries the linear server power model of Section III-B.3:
// a server draws Base watts when idle and Max watts at full utilization,
// interpolating linearly in between (ref. [1] of the paper).
type PowerParams struct {
	Base float64 // S_base, watts
	Max  float64 // S_max, watts
}

// Validate checks the power parameters.
func (p PowerParams) Validate() error {
	if p.Base < 0 || p.Max < p.Base || math.IsNaN(p.Base) || math.IsNaN(p.Max) {
		return fmt.Errorf("%w: power params base=%g max=%g", ErrInvalidModel, p.Base, p.Max)
	}
	return nil
}

// Draw reports the instantaneous power draw of one server at utilization u
// (clamped to [0, 1]).
func (p PowerParams) Draw(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return p.Base + (p.Max-p.Base)*u
}

// DefaultPower is the reconstructed per-server power model used by the case
// study (see DESIGN.md): servers hosting the case-study workloads draw only
// a few percent more than idle ones, matching the paper's "up to 7 %"
// observation and Barroso & Hölzle's finding that idle servers consume more
// than half of peak.
var DefaultPower = PowerParams{Base: 250, Max: 340}

// Model is a complete input to the utility analytic model.
type Model struct {
	// Services are the concurrent services to host (the paper's i = 1..I).
	Services []Service

	// Resources are the resource types considered (the paper's j = 1..R).
	// If empty, the union of all resources mentioned by the services is
	// used, in sorted order.
	Resources []Resource

	// LossTarget is B, the request-loss probability both deployments must
	// guarantee, in (0, 1).
	LossTarget float64

	// Power parameterizes the power comparison; zero value means
	// DefaultPower.
	Power PowerParams

	// UtilizationScale is the paper's proportionality constant b in Eq. (8)
	// relating demanded resources to measured utilization. The ratio
	// U_M/U_N is independent of b (Eq. 11) but absolute utilizations and
	// the power comparison are not. Zero means 1.
	UtilizationScale float64

	// MaxServers caps the Erlang-B sizing search; zero means the package
	// default.
	MaxServers int

	// Form selects the Eq. (5) reading used for consolidated-traffic
	// computations throughout (sizing N, utilization, power, bounds). The
	// zero value, TrafficEq5Restricted, is the canonical reproduction form:
	// it is the only reading consistent with both of the paper's headline
	// results (Table I's M=6→N=3 / M=8→N=4 and the ≈1.5× utilization
	// improvement). See TrafficForm and DESIGN.md §2.
	Form TrafficForm
}

// ErrInvalidModel reports a model that fails validation.
var ErrInvalidModel = errors.New("core: invalid model")

// Validate checks the model for domain errors: no services, non-positive
// arrival rates, non-positive serving rates, impact factors outside (0, 1],
// or a loss target outside (0, 1).
func (m *Model) Validate() error {
	if len(m.Services) == 0 {
		return fmt.Errorf("%w: no services", ErrInvalidModel)
	}
	if m.LossTarget <= 0 || m.LossTarget >= 1 || math.IsNaN(m.LossTarget) {
		return fmt.Errorf("%w: loss target %g outside (0,1)", ErrInvalidModel, m.LossTarget)
	}
	if m.UtilizationScale < 0 || math.IsNaN(m.UtilizationScale) {
		return fmt.Errorf("%w: utilization scale %g", ErrInvalidModel, m.UtilizationScale)
	}
	if err := m.power().Validate(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for i, s := range m.Services {
		if s.Name == "" {
			return fmt.Errorf("%w: service %d has no name", ErrInvalidModel, i)
		}
		if seen[s.Name] {
			return fmt.Errorf("%w: duplicate service name %q", ErrInvalidModel, s.Name)
		}
		seen[s.Name] = true
		if s.ArrivalRate <= 0 || math.IsNaN(s.ArrivalRate) || math.IsInf(s.ArrivalRate, 0) {
			return fmt.Errorf("%w: service %q arrival rate %g", ErrInvalidModel, s.Name, s.ArrivalRate)
		}
		demand := false
		for j, mu := range s.ServingRates {
			if mu <= 0 || math.IsNaN(mu) {
				return fmt.Errorf("%w: service %q resource %q serving rate %g", ErrInvalidModel, s.Name, j, mu)
			}
			if !math.IsInf(mu, 1) {
				demand = true
			}
		}
		if !demand {
			return fmt.Errorf("%w: service %q demands no resource", ErrInvalidModel, s.Name)
		}
		for j, a := range s.ImpactFactors {
			if a <= 0 || a > 1 || math.IsNaN(a) {
				return fmt.Errorf("%w: service %q resource %q impact factor %g outside (0,1]", ErrInvalidModel, s.Name, j, a)
			}
		}
	}
	return nil
}

// resources returns the model's resource list, defaulting to the sorted
// union of resources mentioned by the services.
func (m *Model) resources() []Resource {
	if len(m.Resources) > 0 {
		return m.Resources
	}
	set := map[Resource]bool{}
	for _, s := range m.Services {
		for j := range s.ServingRates {
			set[j] = true
		}
	}
	out := make([]Resource, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (m *Model) power() PowerParams {
	if m.Power == (PowerParams{}) {
		return DefaultPower
	}
	return m.Power
}

func (m *Model) utilizationScale() float64 {
	if m.UtilizationScale == 0 {
		return 1
	}
	return m.UtilizationScale
}

// TotalArrivalRate reports λ = Σᵢ λᵢ, the consolidated arrival rate (the
// superposition of independent Poisson streams is Poisson).
func (m *Model) TotalArrivalRate() float64 {
	sum := 0.0
	for _, s := range m.Services {
		sum += s.ArrivalRate
	}
	return sum
}

// TrafficForm selects how the consolidated offered traffic ρ'ⱼ of Eq. (5)
// is computed. The paper's Eq. (4) defines the consolidated serving rate as
// the arrival-weighted *arithmetic* mean of μᵢⱼ·aᵢⱼ, which behaves
// inconsistently when services with zero demand on a resource (μᵢⱼ = +Inf)
// participate: their infinitely fast phantom work dilutes the mean and the
// resource appears unloaded. The paper itself needs one reading of the
// formula to obtain Table I's server counts and a different one to obtain
// its 1.5× utilization claim (see DESIGN.md §2), so this package exposes
// all three readings and lets the caller choose per use.
type TrafficForm int

const (
	// TrafficEq5Restricted (the default) applies Eq. (5) over only the
	// services that place nonzero demand on resource j (both in the λ
	// numerator and the denominator):
	//
	//	ρ'ⱼ = (Σ_{i∈Dⱼ} λᵢ)² / Σ_{i∈Dⱼ} λᵢ·μᵢⱼ·aᵢⱼ,  Dⱼ = {i : μᵢⱼ < ∞}.
	//
	// This is the only reading consistent with both of the paper's
	// headline results — Table I's server counts and the ≈1.5× model-side
	// utilization improvement — and is the canonical reproduction form.
	TrafficEq5Restricted TrafficForm = iota

	// TrafficEq5Verbatim is Eq. (5) exactly as printed: ρ'ⱼ = λ²/Σᵢ
	// λᵢ·μᵢⱼ·aᵢⱼ over all services. A single zero-demand service (μᵢⱼ =
	// +Inf) contributes an infinitely fast phantom term that drives ρ'ⱼ to
	// 0, so resources demanded by only a subset of services never bind.
	// Retained for ablation; it understates consolidated work.
	TrafficEq5Verbatim

	// TrafficHarmonic is the work-conserving correction: the merged
	// stream's mean service demand is the arrival-weighted mean of
	// 1/(μᵢⱼ·aᵢⱼ), so ρ'ⱼ = Σᵢ λᵢ/(μᵢⱼ·aᵢⱼ). This is the form that agrees
	// with discrete-event simulation for heterogeneous service mixes (see
	// the modelval experiment) and is offered as the corrected model.
	TrafficHarmonic
)

// String names the traffic form for reports.
func (f TrafficForm) String() string {
	switch f {
	case TrafficEq5Restricted:
		return "eq5-restricted"
	case TrafficEq5Verbatim:
		return "eq5-verbatim"
	case TrafficHarmonic:
		return "harmonic"
	default:
		return fmt.Sprintf("TrafficForm(%d)", int(f))
	}
}

// ConsolidatedTraffic reports ρ'ⱼ, the consolidated offered load on
// resource j in Erlangs, under the given form. See TrafficForm for the
// three readings of Eq. (5).
func (m *Model) ConsolidatedTraffic(j Resource, form TrafficForm) float64 {
	switch form {
	case TrafficEq5Verbatim:
		lambda := 0.0
		denom := 0.0
		for _, s := range m.Services {
			lambda += s.ArrivalRate
			mu := s.servingRate(j)
			if math.IsInf(mu, 1) {
				// An infinitely fast term dominates the arithmetic mean:
				// μ'ⱼ → ∞, so ρ'ⱼ → 0.
				return 0
			}
			denom += s.ArrivalRate * mu * s.impactFactor(j)
		}
		if denom == 0 {
			return 0
		}
		return lambda * lambda / denom
	case TrafficEq5Restricted:
		lambda := 0.0
		denom := 0.0
		for _, s := range m.Services {
			mu := s.servingRate(j)
			if math.IsInf(mu, 1) {
				continue
			}
			lambda += s.ArrivalRate
			denom += s.ArrivalRate * mu * s.impactFactor(j)
		}
		if denom == 0 {
			return 0
		}
		return lambda * lambda / denom
	case TrafficHarmonic:
		sum := 0.0
		for _, s := range m.Services {
			mu := s.servingRate(j)
			if math.IsInf(mu, 1) {
				continue
			}
			sum += s.ArrivalRate / (mu * s.impactFactor(j))
		}
		return sum
	default:
		panic(fmt.Sprintf("core: unknown traffic form %d", int(form)))
	}
}

// ConsolidatedServingRate reports μ'ⱼ = λ/ρ'ⱼ under the given form (Eq. 4),
// or +Inf when the resource carries no consolidated traffic.
func (m *Model) ConsolidatedServingRate(j Resource, form TrafficForm) float64 {
	rho := m.ConsolidatedTraffic(j, form)
	if rho == 0 {
		return math.Inf(1)
	}
	return m.TotalArrivalRate() / rho
}
