package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// webService and dbService build the paper's case-study services with the
// reconstructed constants of DESIGN.md §2. Impact factors are the paper's
// fitted curves evaluated at the number of VMs that actively contend for
// each resource on a consolidated host (one Web VM + one DB VM), clamped
// to (0, 1]:
//
//	a_wi = a_wi(v=1) = 1.082 − 0.102·1 = 0.98  (disk I/O, Fig. 5b; only
//	       the Web VM touches disk)
//	a_wc = a_wc(v=2) = 0.658 − 0.0139·2 ≈ 0.63 (CPU, Fig. 6b)
//	a_dc = a_dc(v=2) = 1.85·4/(1+4) = 1.48 → 1.00 (CPU&software, Fig. 8b)
func webService(lambda float64) Service {
	return Service{
		Name:        "web",
		ArrivalRate: lambda,
		ServingRates: map[Resource]float64{
			DiskIO: 1420, // μ_wi
			CPU:    3360, // μ_wc
		},
		ImpactFactors: map[Resource]float64{
			DiskIO: 0.98, // a_wi at v=1 (only the Web VM does disk I/O)
			CPU:    0.63, // a_wc at v=2
		},
	}
}

func dbService(lambda float64) Service {
	return Service{
		Name:        "db",
		ArrivalRate: lambda,
		ServingRates: map[Resource]float64{
			CPU: 100, // μ_dc
			// Disk I/O demand "close to zero": resource omitted.
		},
		ImpactFactors: map[Resource]float64{
			CPU: 1.00, // a_dc at v=2, clamped
		},
	}
}

func caseStudyModel(lambdaW, lambdaD, lossTarget float64) *Model {
	return &Model{
		Services:   []Service{webService(lambdaW), dbService(lambdaD)},
		Resources:  []Resource{CPU, DiskIO},
		LossTarget: lossTarget,
	}
}

func TestValidateRejectsBadInputs(t *testing.T) {
	valid := caseStudyModel(100, 10, 0.05)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"no services", func(m *Model) { m.Services = nil }},
		{"loss target 0", func(m *Model) { m.LossTarget = 0 }},
		{"loss target 1", func(m *Model) { m.LossTarget = 1 }},
		{"loss target NaN", func(m *Model) { m.LossTarget = math.NaN() }},
		{"negative scale", func(m *Model) { m.UtilizationScale = -1 }},
		{"unnamed service", func(m *Model) { m.Services[0].Name = "" }},
		{"duplicate names", func(m *Model) { m.Services[1].Name = "web" }},
		{"zero arrival", func(m *Model) { m.Services[0].ArrivalRate = 0 }},
		{"negative arrival", func(m *Model) { m.Services[0].ArrivalRate = -5 }},
		{"infinite arrival", func(m *Model) { m.Services[0].ArrivalRate = math.Inf(1) }},
		{"zero serving rate", func(m *Model) { m.Services[0].ServingRates[CPU] = 0 }},
		{"impact factor 0", func(m *Model) { m.Services[0].ImpactFactors[CPU] = 0 }},
		{"impact factor >1", func(m *Model) { m.Services[0].ImpactFactors[CPU] = 1.5 }},
		{"no demand", func(m *Model) {
			m.Services[0].ServingRates = map[Resource]float64{CPU: math.Inf(1)}
		}},
		{"bad power", func(m *Model) { m.Power = PowerParams{Base: 100, Max: 50} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := caseStudyModel(100, 10, 0.05)
			c.mutate(m)
			if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
				t.Fatalf("mutation %q not rejected (err=%v)", c.name, err)
			}
		})
	}
}

func TestOfferedTrafficEq3(t *testing.T) {
	w := webService(2840)
	if got := w.offeredTraffic(DiskIO); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("rho_wi = %g, want 2", got)
	}
	d := dbService(50)
	if got := d.offeredTraffic(DiskIO); got != 0 {
		t.Fatalf("zero-demand traffic = %g", got)
	}
	if got := d.offeredTraffic(CPU); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rho_dc = %g", got)
	}
}

func TestResourcesDefaultUnion(t *testing.T) {
	m := &Model{Services: []Service{webService(1), dbService(1)}, LossTarget: 0.05}
	rs := m.resources()
	if len(rs) != 2 || rs[0] != CPU || rs[1] != DiskIO {
		t.Fatalf("resources = %v", rs)
	}
}

func TestConsolidatedTrafficForms(t *testing.T) {
	m := caseStudyModel(1000, 100, 0.05)
	lambda := m.TotalArrivalRate()
	if lambda != 1100 {
		t.Fatalf("lambda = %g", lambda)
	}

	// Eq5 verbatim on CPU: λ²/(λw·μwc·awc + λd·μdc·adc).
	wantCPU := lambda * lambda / (1000*3360*0.63 + 100*100*1.00)
	if got := m.ConsolidatedTraffic(CPU, TrafficEq5Verbatim); math.Abs(got-wantCPU) > 1e-9 {
		t.Fatalf("eq5 cpu = %g, want %g", got, wantCPU)
	}
	// Eq5 verbatim on disk: DB's infinite rate zeroes the traffic.
	if got := m.ConsolidatedTraffic(DiskIO, TrafficEq5Verbatim); got != 0 {
		t.Fatalf("eq5 disk = %g, want 0", got)
	}
	// Restricted Eq5 on disk: only the web service participates.
	wantDisk := 1000.0 * 1000.0 / (1000 * 1420 * 0.98)
	if got := m.ConsolidatedTraffic(DiskIO, TrafficEq5Restricted); math.Abs(got-wantDisk) > 1e-9 {
		t.Fatalf("restricted disk = %g, want %g", got, wantDisk)
	}
	// Harmonic on CPU: Σ λi/(μij·aij).
	wantHarm := 1000/(3360*0.63) + 100/(100*1.00)
	if got := m.ConsolidatedTraffic(CPU, TrafficHarmonic); math.Abs(got-wantHarm) > 1e-9 {
		t.Fatalf("harmonic cpu = %g, want %g", got, wantHarm)
	}
	// Harmonic always >= Eq5 (arithmetic-mean rate understates work,
	// AM-HM inequality).
	for _, j := range []Resource{CPU, DiskIO} {
		if m.ConsolidatedTraffic(j, TrafficHarmonic) < m.ConsolidatedTraffic(j, TrafficEq5Verbatim)-1e-12 {
			t.Fatalf("harmonic < eq5 on %s", j)
		}
	}
}

func TestConsolidatedTrafficSingleServiceFormsAgree(t *testing.T) {
	// With one service all three forms must coincide: λ/(μ·a).
	m := &Model{Services: []Service{webService(710)}, LossTarget: 0.05}
	want := 710.0 / (1420 * 0.98)
	for _, f := range []TrafficForm{TrafficEq5Verbatim, TrafficEq5Restricted, TrafficHarmonic} {
		if got := m.ConsolidatedTraffic(DiskIO, f); math.Abs(got-want) > 1e-9 {
			t.Fatalf("%v disk = %g, want %g", f, got, want)
		}
	}
}

func TestConsolidatedServingRateEq4(t *testing.T) {
	m := caseStudyModel(1000, 100, 0.05)
	mu := m.ConsolidatedServingRate(CPU, TrafficEq5Verbatim)
	// μ' = λ/ρ' = Σ λi·μi·ai / λ (arithmetic mean).
	want := (1000*3360*0.63 + 100*100*1.00) / 1100
	if math.Abs(mu-want) > 1e-6 {
		t.Fatalf("mu' = %g, want %g", mu, want)
	}
	if !math.IsInf(m.ConsolidatedServingRate(DiskIO, TrafficEq5Verbatim), 1) {
		t.Fatal("zero-traffic resource should have infinite rate")
	}
}

func TestTrafficFormString(t *testing.T) {
	if TrafficEq5Verbatim.String() != "eq5-verbatim" ||
		TrafficEq5Restricted.String() != "eq5-restricted" ||
		TrafficHarmonic.String() != "harmonic" {
		t.Fatal("TrafficForm names wrong")
	}
	if TrafficForm(99).String() == "" {
		t.Fatal("unknown form should still render")
	}
}

func TestPowerParams(t *testing.T) {
	p := PowerParams{Base: 250, Max: 340}
	if p.Draw(0) != 250 || p.Draw(1) != 340 {
		t.Fatal("power endpoints wrong")
	}
	if math.Abs(p.Draw(0.5)-295) > 1e-12 {
		t.Fatal("power midpoint wrong")
	}
	// Clamping.
	if p.Draw(-1) != 250 || p.Draw(2) != 340 {
		t.Fatal("power clamp broken")
	}
	if err := (PowerParams{Base: -1, Max: 10}).Validate(); err == nil {
		t.Fatal("negative base accepted")
	}
}

func TestImpactFactorDefaults(t *testing.T) {
	s := Service{Name: "x", ArrivalRate: 1, ServingRates: map[Resource]float64{CPU: 10}}
	if s.impactFactor(CPU) != 1 {
		t.Fatal("missing impact factor should default to 1")
	}
}

func TestBottleneckResource(t *testing.T) {
	w := webService(1)
	j, mu := w.BottleneckResource()
	if j != DiskIO || mu != 1420 {
		t.Fatalf("bottleneck = %s/%g", j, mu)
	}
}

// Property: for any positive arrival rates, harmonic traffic >= eq5 traffic
// on every resource (AM-HM), and the restricted form falls between 0 and
// the harmonic form.
func TestTrafficFormOrderingProperty(t *testing.T) {
	f := func(lw, ld uint16) bool {
		m := caseStudyModel(float64(lw)+1, float64(ld)+1, 0.05)
		for _, j := range []Resource{CPU, DiskIO} {
			e5 := m.ConsolidatedTraffic(j, TrafficEq5Verbatim)
			re := m.ConsolidatedTraffic(j, TrafficEq5Restricted)
			ha := m.ConsolidatedTraffic(j, TrafficHarmonic)
			if e5 < 0 || re < 0 || ha < 0 {
				return false
			}
			if ha < e5-1e-9 || ha < re-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
