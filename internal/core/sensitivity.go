package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sensitivity analysis: which inputs move the plan? The model's inputs
// (arrival rates, serving rates, impact factors, the loss target) are
// estimates; a planner needs to know which of them the server counts
// actually hinge on before trusting a 50 %-savings headline. Perturb
// quantifies that by re-solving the model with each input scaled up and
// down by a relative step and reporting the resulting M and N.

// Perturbation identifies one perturbed input and the plan it produces.
type Perturbation struct {
	// Parameter names the input, e.g. "web.arrivalRate",
	// "db.servingRate[cpu]", "web.impactFactor[diskio]", "lossTarget".
	Parameter string

	// Factor is the multiplicative change applied (e.g. 1.1 or 0.9).
	Factor float64

	// M and N are the resulting server counts.
	M, N int

	// DeltaM and DeltaN are the changes relative to the base plan.
	DeltaM, DeltaN int
}

// SensitivityReport is the full perturbation sweep.
type SensitivityReport struct {
	BaseM, BaseN int
	Rows         []Perturbation
}

// Critical reports the perturbations that changed N (the consolidated
// plan), most impactful first.
func (r *SensitivityReport) Critical() []Perturbation {
	var out []Perturbation
	for _, p := range r.Rows {
		if p.DeltaN != 0 {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		da, db := out[a].DeltaN, out[b].DeltaN
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da > db
	})
	return out
}

// String renders the report compactly.
func (r *SensitivityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "base plan: M=%d N=%d\n", r.BaseM, r.BaseN)
	for _, p := range r.Rows {
		marker := " "
		if p.DeltaN != 0 {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %-28s x%.2f -> M=%d (%+d) N=%d (%+d)\n",
			marker, p.Parameter, p.Factor, p.M, p.DeltaM, p.N, p.DeltaN)
	}
	return b.String()
}

// Sensitivity re-solves the model with every input perturbed by ±step
// (relative, e.g. 0.1 for ±10 %) and reports the plans. Impact factors are
// clamped to (0, 1] after scaling; the loss target to (0, 1). A zero step
// defaults to 0.1.
func (m *Model) Sensitivity(step float64) (*SensitivityReport, error) {
	if step == 0 {
		step = 0.1
	}
	if step <= 0 || step >= 1 {
		return nil, fmt.Errorf("%w: sensitivity step %g outside (0,1)", ErrInvalidModel, step)
	}
	base, err := m.Solve()
	if err != nil {
		return nil, err
	}
	report := &SensitivityReport{
		BaseM: base.Dedicated.Servers,
		BaseN: base.Consolidated.Servers,
	}

	solvePerturbed := func(name string, factor float64, mutate func(*Model)) error {
		clone := m.clone()
		mutate(clone)
		res, err := clone.Solve()
		if err != nil {
			return fmt.Errorf("core: sensitivity %s x%.2f: %w", name, factor, err)
		}
		report.Rows = append(report.Rows, Perturbation{
			Parameter: name,
			Factor:    factor,
			M:         res.Dedicated.Servers,
			N:         res.Consolidated.Servers,
			DeltaM:    res.Dedicated.Servers - report.BaseM,
			DeltaN:    res.Consolidated.Servers - report.BaseN,
		})
		return nil
	}

	factors := []float64{1 + step, 1 - step}
	for si := range m.Services {
		svc := m.Services[si]
		for _, f := range factors {
			si, f := si, f
			name := fmt.Sprintf("%s.arrivalRate", svc.Name)
			if err := solvePerturbed(name, f, func(c *Model) {
				c.Services[si].ArrivalRate *= f
			}); err != nil {
				return nil, err
			}
		}
		for _, j := range sortedResources(svc.ServingRates) {
			if math.IsInf(svc.ServingRates[j], 1) {
				continue
			}
			for _, f := range factors {
				si, j, f := si, j, f
				name := fmt.Sprintf("%s.servingRate[%s]", svc.Name, j)
				if err := solvePerturbed(name, f, func(c *Model) {
					c.Services[si].ServingRates[j] *= f
				}); err != nil {
					return nil, err
				}
			}
		}
		for _, j := range sortedResources(svc.ImpactFactors) {
			for _, f := range factors {
				si, j, f := si, j, f
				name := fmt.Sprintf("%s.impactFactor[%s]", svc.Name, j)
				if err := solvePerturbed(name, f, func(c *Model) {
					a := c.Services[si].ImpactFactors[j] * f
					if a > 1 {
						a = 1
					}
					if a <= 0 {
						a = 0.01
					}
					c.Services[si].ImpactFactors[j] = a
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, f := range factors {
		f := f
		if err := solvePerturbed("lossTarget", f, func(c *Model) {
			b := c.LossTarget * f
			if b >= 1 {
				b = 0.999
			}
			c.LossTarget = b
		}); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// clone deep-copies the model's mutable parts.
func (m *Model) clone() *Model {
	c := *m
	c.Services = make([]Service, len(m.Services))
	for i, s := range m.Services {
		cs := s
		cs.ServingRates = make(map[Resource]float64, len(s.ServingRates))
		for k, v := range s.ServingRates {
			cs.ServingRates[k] = v
		}
		if s.ImpactFactors != nil {
			cs.ImpactFactors = make(map[Resource]float64, len(s.ImpactFactors))
			for k, v := range s.ImpactFactors {
				cs.ImpactFactors[k] = v
			}
		}
		c.Services[i] = cs
	}
	c.Resources = append([]Resource(nil), m.Resources...)
	return &c
}

func sortedResources(m map[Resource]float64) []Resource {
	out := make([]Resource, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
