package core

import (
	"strings"
	"testing"
)

func TestSensitivityBasics(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Sensitivity(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseM != 8 || rep.BaseN != 4 {
		t.Fatalf("base plan M=%d N=%d", rep.BaseM, rep.BaseN)
	}
	// Two services: 2 arrival params + 3 serving rates (web disk, web cpu,
	// db cpu) + 3 impact factors + lossTarget = 9 params x 2 directions.
	if len(rep.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rep.Rows))
	}
	// The model must not be mutated by the sweep.
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers != 8 || res.Consolidated.Servers != 4 {
		t.Fatal("Sensitivity mutated the model")
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestSensitivityDirections(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Sensitivity(0.1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Perturbation{}
	for _, p := range rep.Rows {
		byKey[p.Parameter+sign(p.Factor)] = p
	}
	// More web traffic can only grow the plan; less can only shrink it.
	if p := byKey["web.arrivalRate+"]; p.DeltaM < 0 || p.DeltaN < 0 {
		t.Fatalf("raising web traffic shrank the plan: %+v", p)
	}
	if p := byKey["web.arrivalRate-"]; p.DeltaM > 0 || p.DeltaN > 0 {
		t.Fatalf("lowering web traffic grew the plan: %+v", p)
	}
	// Faster disks can only shrink the plan.
	if p := byKey["web.servingRate[diskio]+"]; p.DeltaM > 0 || p.DeltaN > 0 {
		t.Fatalf("faster disks grew the plan: %+v", p)
	}
	// A tighter loss target can only grow the plan.
	if p := byKey["lossTarget-"]; p.DeltaM < 0 || p.DeltaN < 0 {
		t.Fatalf("tighter QoS shrank the plan: %+v", p)
	}
	// Critical list only contains rows with DeltaN != 0 and the report
	// marks them.
	for _, p := range rep.Critical() {
		if p.DeltaN == 0 {
			t.Fatalf("non-critical row in Critical(): %+v", p)
		}
		if !strings.Contains(rep.String(), p.Parameter) {
			t.Fatalf("critical row %s missing from report", p.Parameter)
		}
	}
}

func sign(f float64) string {
	if f > 1 {
		return "+"
	}
	return "-"
}

func TestSensitivityStepValidation(t *testing.T) {
	m := caseStudyModel(100, 10, 0.05)
	if _, err := m.Sensitivity(-0.1); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := m.Sensitivity(1.5); err == nil {
		t.Fatal("step >= 1 accepted")
	}
	// Zero defaults to 0.1 and succeeds.
	if _, err := m.Sensitivity(0); err != nil {
		t.Fatal(err)
	}
	// Invalid model propagates.
	if _, err := (&Model{}).Sensitivity(0.1); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	m := caseStudyModel(100, 10, 0.05)
	c := m.clone()
	c.Services[0].ServingRates[CPU] = 1
	c.Services[0].ImpactFactors[CPU] = 0.5
	c.Services[0].ArrivalRate = 999
	if m.Services[0].ServingRates[CPU] == 1 ||
		m.Services[0].ImpactFactors[CPU] == 0.5 ||
		m.Services[0].ArrivalRate == 999 {
		t.Fatal("clone shares state with the original")
	}
}
