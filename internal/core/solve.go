package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/erlang"
)

// ServicePlan records the dedicated-server sizing of one service: the
// per-resource server requirements n_{ij} and the binding maximum
// (Fig. 4's max_n[k]).
type ServicePlan struct {
	Service     string
	PerResource map[Resource]int
	Servers     int      // max over resources
	Bottleneck  Resource // a resource achieving the max
}

// Plan describes one deployment (dedicated or consolidated) produced by
// Solve.
type Plan struct {
	// Servers is the total number of physical servers (M or N).
	Servers int

	// PerService is the per-service breakdown. For the consolidated plan it
	// holds a single pseudo-service entry named "consolidated" carrying the
	// per-resource requirements of the merged workload.
	PerService []ServicePlan

	// Traffic maps each resource to its offered load in Erlangs — per
	// Eq. (3) summed over services for the dedicated plan, per Eq. (5)
	// (under the plan's traffic form) for the consolidated plan.
	Traffic map[Resource]float64

	// Utilization is the model's mean resource-utilization index (Eq. 8–10)
	// including the proportionality constant b. Because it sums demand over
	// resource types it is a utility index that may exceed 1; the power
	// model clamps it.
	Utilization float64

	// Power is the plan's mean power draw in watts under the linear model
	// (Eq. 12–13) with utilization clamped to [0, 1].
	Power float64
}

// Result is the complete output of the utility analytic model: the two
// plans and the paper's three comparison ratios.
type Result struct {
	Dedicated    Plan // M servers
	Consolidated Plan // N servers

	// ServerRatio is M/N (Eq. 6–7); > 1 means consolidation saves servers.
	ServerRatio float64

	// UtilizationRatio is U_M/U_N (Eq. 11). Values < 1 mean consolidation
	// raises per-server utilization; the paper quotes the inverse ("1.5
	// times improvement"), available as UtilizationImprovement.
	UtilizationRatio float64

	// UtilizationImprovement is U_N/U_M, the paper's headline form.
	UtilizationImprovement float64

	// PowerRatio is P_M/P_N (Eq. 14); > 1 means consolidation saves power.
	PowerRatio float64

	// PowerSaving is 1 − P_N/P_M, the fraction of power saved by
	// consolidating (the paper's "up to 53 %").
	PowerSaving float64

	// LossTarget echoes the model's B.
	LossTarget float64

	// Form echoes the Eq. (5) reading used.
	Form TrafficForm
}

// String renders the result as a compact report.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "M=%d N=%d (ratio %.2f) at B=%g\n", r.Dedicated.Servers,
		r.Consolidated.Servers, r.ServerRatio, r.LossTarget)
	fmt.Fprintf(&b, "U_M=%.4f U_N=%.4f (improvement %.2fx)\n",
		r.Dedicated.Utilization, r.Consolidated.Utilization, r.UtilizationImprovement)
	fmt.Fprintf(&b, "P_M=%.1fW P_N=%.1fW (saving %.1f%%)",
		r.Dedicated.Power, r.Consolidated.Power, r.PowerSaving*100)
	return b.String()
}

// Solve runs the utility analytic model end to end — the algorithm of the
// paper's Fig. 4 plus the utilization (Eq. 8–11) and power (Eq. 12–14)
// comparisons. It validates the model first.
func (m *Model) Solve() (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ded, err := m.DedicatedPlan()
	if err != nil {
		return nil, err
	}
	cons, err := m.ConsolidatedPlan()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dedicated:    *ded,
		Consolidated: *cons,
		LossTarget:   m.LossTarget,
		Form:         m.Form,
	}
	if cons.Servers > 0 {
		res.ServerRatio = float64(ded.Servers) / float64(cons.Servers)
	} else {
		res.ServerRatio = math.Inf(1)
	}
	if cons.Utilization > 0 {
		res.UtilizationRatio = ded.Utilization / cons.Utilization
	} else {
		res.UtilizationRatio = math.Inf(1)
	}
	if ded.Utilization > 0 {
		res.UtilizationImprovement = cons.Utilization / ded.Utilization
	} else {
		res.UtilizationImprovement = math.Inf(1)
	}
	if cons.Power > 0 {
		res.PowerRatio = ded.Power / cons.Power
	}
	if ded.Power > 0 {
		res.PowerSaving = 1 - cons.Power/ded.Power
	}
	return res, nil
}

// DedicatedPlan sizes the dedicated deployment: for each service i and
// resource j it finds the smallest nᵢⱼ with Eₙ(ρᵢⱼ) ≤ B, takes the maximum
// over resources per service, and sums over services (Fig. 4, first loop;
// Eq. 6). Impact factors do not apply — dedicated servers run native Linux.
func (m *Model) DedicatedPlan() (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	resources := m.resources()
	plan := &Plan{Traffic: map[Resource]float64{}}
	for _, j := range resources {
		total := 0.0
		for _, s := range m.Services {
			total += s.offeredTraffic(j)
		}
		plan.Traffic[j] = total
	}
	for _, s := range m.Services {
		sp := ServicePlan{Service: s.Name, PerResource: map[Resource]int{}}
		for _, j := range resources {
			rho := s.offeredTraffic(j)
			n, err := erlang.Servers(rho, m.LossTarget, m.MaxServers)
			if err != nil {
				return nil, fmt.Errorf("core: sizing service %q resource %q: %w", s.Name, j, err)
			}
			sp.PerResource[j] = n
			if n > sp.Servers || (n == sp.Servers && sp.Bottleneck == "") {
				sp.Servers = n
				sp.Bottleneck = j
			}
		}
		plan.PerService = append(plan.PerService, sp)
		plan.Servers += sp.Servers
	}
	m.fillUtilizationAndPower(plan, true)
	return plan, nil
}

// ConsolidatedPlan sizes the consolidated deployment: the merged workload's
// per-resource traffic ρ'ⱼ (Eq. 5 under Form) is sized by Erlang B
// per resource, and N is the maximum over resources (Fig. 4, second loop;
// Eq. 7).
func (m *Model) ConsolidatedPlan() (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	resources := m.resources()
	plan := &Plan{Traffic: map[Resource]float64{}}
	sp := ServicePlan{Service: "consolidated", PerResource: map[Resource]int{}}
	for _, j := range resources {
		rho := m.ConsolidatedTraffic(j, m.Form)
		plan.Traffic[j] = rho
		n, err := erlang.Servers(rho, m.LossTarget, m.MaxServers)
		if err != nil {
			return nil, fmt.Errorf("core: sizing consolidated resource %q: %w", j, err)
		}
		sp.PerResource[j] = n
		if n > sp.Servers || (n == sp.Servers && sp.Bottleneck == "") {
			sp.Servers = n
			sp.Bottleneck = j
		}
	}
	plan.PerService = []ServicePlan{sp}
	plan.Servers = sp.Servers
	m.fillUtilizationAndPower(plan, false)
	return plan, nil
}

// fillUtilizationAndPower computes Eq. (9)/(10) and Eq. (12)/(13) for a
// sized plan.
func (m *Model) fillUtilizationAndPower(plan *Plan, dedicated bool) {
	b := m.utilizationScale()
	resources := m.resources()
	demand := 0.0 // Σ offered work in Erlangs across resources
	if dedicated {
		// Eq. (9): U_M = b · Σᵢ Σⱼ λᵢ/μᵢⱼ / M.
		for _, s := range m.Services {
			for _, j := range resources {
				demand += s.offeredTraffic(j)
			}
		}
	} else {
		// Eq. (10): U_N = b · Σⱼ λ/μ'ⱼ / N under the utilization form.
		form := m.Form
		for _, j := range resources {
			demand += m.ConsolidatedTraffic(j, form)
		}
	}
	if plan.Servers > 0 {
		plan.Utilization = b * demand / float64(plan.Servers)
	} else {
		plan.Utilization = 0
	}
	plan.Power = m.power().Draw(plan.Utilization) * float64(plan.Servers)
}

// PerResourceUtilization reports the per-resource mean utilization of a
// deployment with the given server count: offered work on j divided by
// servers. For the consolidated case the work is computed under form. The
// result may exceed 1, signalling overload on that resource.
func (m *Model) PerResourceUtilization(servers int, dedicated bool, form TrafficForm) map[Resource]float64 {
	out := map[Resource]float64{}
	if servers <= 0 {
		return out
	}
	for _, j := range m.resources() {
		var work float64
		if dedicated {
			for _, s := range m.Services {
				work += s.offeredTraffic(j)
			}
		} else {
			work = m.ConsolidatedTraffic(j, form)
		}
		out[j] = m.utilizationScale() * work / float64(servers)
	}
	return out
}

// LossAtServers reports the model's request-loss probability when the
// deployment is forced to a given server count, rather than sized.
//
// For the dedicated case, servers are apportioned to services by largest
// remainder of their sized shares, and the system-wide loss is the
// arrival-weighted mean of per-service losses, each the maximum over
// resources. For the consolidated case the loss is the maximum over
// resources of Eₙ(ρ'ⱼ). This is the machinery behind the Section III-B.4
// applications (AllocatorBound, VirtualizationBound).
func (m *Model) LossAtServers(servers int, dedicated bool, form TrafficForm) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if servers < 0 {
		return 0, fmt.Errorf("%w: negative server count %d", ErrInvalidModel, servers)
	}
	resources := m.resources()
	if !dedicated {
		worst := 0.0
		for _, j := range resources {
			rho := m.ConsolidatedTraffic(j, form)
			bl, err := erlang.B(servers, rho)
			if err != nil {
				return 0, err
			}
			if bl > worst {
				worst = bl
			}
		}
		return worst, nil
	}
	alloc := m.ApportionServers(servers)
	lambda := m.TotalArrivalRate()
	loss := 0.0
	for i, s := range m.Services {
		worst := 0.0
		for _, j := range resources {
			bl, err := erlang.B(alloc[i], s.offeredTraffic(j))
			if err != nil {
				return 0, err
			}
			if bl > worst {
				worst = bl
			}
		}
		loss += s.ArrivalRate / lambda * worst
	}
	return loss, nil
}

// ApportionServers divides a fixed pool of servers among the services in
// proportion to their offered bottleneck traffic, using the largest-
// remainder method, with every service guaranteed at least one server when
// servers >= len(Services). It is used by LossAtServers for the dedicated
// scenario.
func (m *Model) ApportionServers(servers int) []int {
	nsvc := len(m.Services)
	alloc := make([]int, nsvc)
	if servers <= 0 || nsvc == 0 {
		return alloc
	}
	weights := make([]float64, nsvc)
	total := 0.0
	for i, s := range m.Services {
		w := 0.0
		for _, j := range m.resources() {
			if rho := s.offeredTraffic(j); rho > w {
				w = rho
			}
		}
		if w == 0 {
			w = 1e-9
		}
		weights[i] = w
		total += w
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, nsvc)
	assigned := 0
	for i := range m.Services {
		share := float64(servers) * weights[i] / total
		alloc[i] = int(math.Floor(share))
		fracs[i] = frac{idx: i, rem: share - math.Floor(share)}
		assigned += alloc[i]
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for k := 0; assigned < servers; k++ {
		alloc[fracs[k%nsvc].idx]++
		assigned++
	}
	// Guarantee one server per service when the pool allows it.
	if servers >= nsvc {
		for i := range alloc {
			if alloc[i] == 0 {
				// Take one from the largest allocation.
				maxIdx := 0
				for k := range alloc {
					if alloc[k] > alloc[maxIdx] {
						maxIdx = k
					}
				}
				alloc[maxIdx]--
				alloc[i]++
			}
		}
	}
	return alloc
}
