package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// TestCaseStudyGroup1 reproduces the paper's group-1 experiment: six
// dedicated servers (3 Web + 3 DB) consolidate to three shared servers
// (Fig. 10, Table I row 1) at the reconstructed loss target B = 0.05, with
// each service offered the "intensive workload" its dedicated pool can
// afford (Fig. 9 rule).
func TestCaseStudyGroup1(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05) // rates replaced below
	m, err := base.WithIntensiveWorkloads([]int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers != 6 {
		t.Fatalf("M = %d, want 6", res.Dedicated.Servers)
	}
	if res.Consolidated.Servers != 3 {
		t.Fatalf("N = %d, want 3 (paper Table I / Fig. 10)", res.Consolidated.Servers)
	}
	if math.Abs(res.ServerRatio-2.0) > 1e-12 {
		t.Fatalf("server ratio = %g", res.ServerRatio)
	}
}

// TestCaseStudyGroup2 reproduces group 2: eight dedicated servers (4+4)
// consolidate to four (Fig. 11, Table I row 2), with a model-side
// utilization improvement near the paper's 1.5×.
func TestCaseStudyGroup2(t *testing.T) {
	base := caseStudyModel(1, 1, 0.05)
	m, err := base.WithIntensiveWorkloads([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedicated.Servers != 8 {
		t.Fatalf("M = %d, want 8", res.Dedicated.Servers)
	}
	if res.Consolidated.Servers != 4 {
		t.Fatalf("N = %d, want 4 (paper Table I / Fig. 11)", res.Consolidated.Servers)
	}
	// Paper: model predicts ≈1.5× utilization improvement (measured 1.7×).
	if res.UtilizationImprovement < 1.3 || res.UtilizationImprovement > 1.7 {
		t.Fatalf("utilization improvement = %.3f, want ~1.5", res.UtilizationImprovement)
	}
	// Paper: up to 53 % power saving (model side lands lower because it
	// excludes the Xen platform offsets; expect >= 35 %).
	if res.PowerSaving < 0.35 || res.PowerSaving > 0.60 {
		t.Fatalf("power saving = %.3f", res.PowerSaving)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestIntensiveWorkloadSaturates(t *testing.T) {
	w := webService(1)
	lambda, err := w.IntensiveWorkload(4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// At the intensive workload, exactly 4 servers are needed for the
	// bottleneck resource (disk I/O) — not 3, not 5.
	m := &Model{Services: []Service{webService(lambda)}, LossTarget: 0.05}
	plan, err := m.DedicatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Servers != 4 {
		t.Fatalf("intensive workload needs %d servers, want 4", plan.Servers)
	}
	if plan.PerService[0].Bottleneck != DiskIO {
		t.Fatalf("bottleneck = %s, want diskio", plan.PerService[0].Bottleneck)
	}
	// 1 % more load must push past 4 servers' admissible traffic.
	m2 := &Model{Services: []Service{webService(lambda * 1.02)}, LossTarget: 0.05}
	plan2, err := m2.DedicatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Servers <= 4 {
		t.Fatalf("workload not intensive: %d servers at 1.02x", plan2.Servers)
	}
}

func TestIntensiveWorkloadErrors(t *testing.T) {
	w := webService(1)
	if _, err := w.IntensiveWorkload(0, 0.05); err == nil {
		t.Fatal("zero servers accepted")
	}
	s := Service{Name: "none", ArrivalRate: 1,
		ServingRates: map[Resource]float64{CPU: math.Inf(1)}}
	if _, err := s.IntensiveWorkload(2, 0.05); err == nil {
		t.Fatal("demandless service accepted")
	}
}

func TestWithIntensiveWorkloadsLengthMismatch(t *testing.T) {
	m := caseStudyModel(1, 1, 0.05)
	if _, err := m.WithIntensiveWorkloads([]int{3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDedicatedPlanBreakdown(t *testing.T) {
	m := caseStudyModel(2000, 150, 0.05)
	plan, err := m.DedicatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerService) != 2 {
		t.Fatalf("per-service entries = %d", len(plan.PerService))
	}
	total := 0
	for _, sp := range plan.PerService {
		if sp.Servers <= 0 {
			t.Fatalf("service %s sized to %d", sp.Service, sp.Servers)
		}
		// The binding resource's requirement equals the service total.
		if sp.PerResource[sp.Bottleneck] != sp.Servers {
			t.Fatalf("bottleneck inconsistency in %+v", sp)
		}
		total += sp.Servers
	}
	if total != plan.Servers {
		t.Fatalf("M = %d != sum %d", plan.Servers, total)
	}
	// Dedicated traffic is the plain sum of per-service offered loads.
	wantCPU := 2000.0/3360 + 150.0/100
	if math.Abs(plan.Traffic[CPU]-wantCPU) > 1e-9 {
		t.Fatalf("dedicated cpu traffic = %g, want %g", plan.Traffic[CPU], wantCPU)
	}
}

func TestConsolidatedPlanUsesSizingForm(t *testing.T) {
	m := caseStudyModel(2000, 150, 0.05)
	eq5Plan, err := m.ConsolidatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	m.Form = TrafficHarmonic
	harmPlan, err := m.ConsolidatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	if harmPlan.Servers < eq5Plan.Servers {
		t.Fatalf("harmonic sizing %d < eq5 sizing %d", harmPlan.Servers, eq5Plan.Servers)
	}
}

func TestSolveInvalidModel(t *testing.T) {
	m := &Model{}
	if _, err := m.Solve(); err == nil {
		t.Fatal("empty model solved")
	}
	if _, err := m.DedicatedPlan(); err == nil {
		t.Fatal("empty model planned")
	}
	if _, err := m.ConsolidatedPlan(); err == nil {
		t.Fatal("empty model planned")
	}
}

func TestLossAtServersConsolidated(t *testing.T) {
	m := caseStudyModel(2000, 150, 0.05)
	// Sized N must meet the target; N-1 must not (tightness of Fig. 4).
	plan, err := m.ConsolidatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	loss, err := m.LossAtServers(plan.Servers, false, TrafficEq5Restricted)
	if err != nil {
		t.Fatal(err)
	}
	if loss > m.LossTarget {
		t.Fatalf("loss at N = %g exceeds target", loss)
	}
	lossLess, err := m.LossAtServers(plan.Servers-1, false, TrafficEq5Restricted)
	if err != nil {
		t.Fatal(err)
	}
	if lossLess <= m.LossTarget {
		t.Fatalf("N not minimal: loss at N-1 = %g", lossLess)
	}
}

func TestLossAtServersDedicatedWeighting(t *testing.T) {
	m := caseStudyModel(2000, 150, 0.05)
	plan, err := m.DedicatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	loss, err := m.LossAtServers(plan.Servers, true, TrafficEq5Restricted)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || loss > m.LossTarget+0.05 {
		t.Fatalf("dedicated loss = %g", loss)
	}
	if _, err := m.LossAtServers(-1, true, TrafficEq5Restricted); err == nil {
		t.Fatal("negative servers accepted")
	}
}

func TestApportionServers(t *testing.T) {
	m := caseStudyModel(2840, 200, 0.05) // rho_w=2, rho_d=2: equal bottlenecks
	alloc := m.ApportionServers(8)
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation %v does not sum to 8", alloc)
	}
	if alloc[0] != 4 || alloc[1] != 4 {
		t.Fatalf("equal traffic should split evenly, got %v", alloc)
	}
	// Every service gets at least one server when possible.
	m2 := caseStudyModel(28400, 1, 0.05) // web dominates
	alloc2 := m2.ApportionServers(5)
	if alloc2[1] < 1 {
		t.Fatalf("starved service: %v", alloc2)
	}
	if alloc2[0]+alloc2[1] != 5 {
		t.Fatalf("allocation %v does not sum to 5", alloc2)
	}
	// Degenerate pool.
	zero := m.ApportionServers(0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero pool allocated %v", zero)
	}
}

func TestApportionSumsProperty(t *testing.T) {
	f := func(lw, ld uint16, srv uint8) bool {
		m := caseStudyModel(float64(lw)+1, float64(ld)+1, 0.05)
		n := int(srv) % 64
		alloc := m.ApportionServers(n)
		sum := 0
		for _, a := range alloc {
			if a < 0 {
				return false
			}
			sum += a
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPerResourceUtilization(t *testing.T) {
	m := caseStudyModel(2840, 200, 0.05)
	util := m.PerResourceUtilization(8, true, TrafficEq5Restricted)
	// Dedicated disk work = 2840/1420 = 2 Erlangs over 8 servers.
	if math.Abs(util[DiskIO]-0.25) > 1e-9 {
		t.Fatalf("disk utilization = %g", util[DiskIO])
	}
	if len(m.PerResourceUtilization(0, true, TrafficEq5Restricted)) != 0 {
		t.Fatal("zero servers should yield empty map")
	}
}

// Property: consolidation never needs more servers than dedication when
// virtualization is free (a ≡ 1) and sizing uses the work-conserving
// harmonic form. (Pooling Erlang servers is always at least as efficient —
// the core economic claim of the paper.)
func TestConsolidationNeverWorseProperty(t *testing.T) {
	f := func(lw, ld uint16, bRaw uint8) bool {
		lambdaW := float64(lw%5000) + 10
		lambdaD := float64(ld%400) + 1
		target := 0.005 + float64(bRaw)/256*0.2
		m := caseStudyModel(lambdaW, lambdaD, target)
		for i := range m.Services {
			m.Services[i].ImpactFactors = nil // ideal virtualization
		}
		m.Form = TrafficHarmonic
		res, err := m.Solve()
		if err != nil {
			return false
		}
		return res.Consolidated.Servers <= res.Dedicated.Servers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the utilization ratio U_M/U_N is independent of the
// proportionality constant b (Eq. 11: "the exact value of parameter b has
// no impact on this ratio").
func TestUtilizationRatioIndependentOfScale(t *testing.T) {
	f := func(bRaw uint8) bool {
		scale := 0.1 + float64(bRaw)/256*0.9
		m1 := caseStudyModel(2000, 150, 0.05)
		m2 := caseStudyModel(2000, 150, 0.05)
		m2.UtilizationScale = scale
		r1, err1 := m1.Solve()
		r2, err2 := m2.Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.UtilizationRatio-r2.UtilizationRatio) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sizing is monotone — lowering the loss target can never reduce
// the number of servers, and raising traffic can never reduce it.
func TestSizingMonotonicityProperty(t *testing.T) {
	f := func(lw uint16) bool {
		lambda := float64(lw%4000) + 100
		tight := caseStudyModel(lambda, lambda/10, 0.01)
		loose := caseStudyModel(lambda, lambda/10, 0.10)
		rt, err1 := tight.Solve()
		rl, err2 := loose.Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		if rt.Dedicated.Servers < rl.Dedicated.Servers {
			return false
		}
		return rt.Consolidated.Servers >= rl.Consolidated.Servers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultFormIsRestricted(t *testing.T) {
	var m Model
	if m.Form != TrafficEq5Restricted {
		t.Fatal("zero-value Form should be the restricted (canonical) reading")
	}
}

func TestExplicitResourceSubset(t *testing.T) {
	// Restricting Model.Resources to CPU makes the model blind to disk
	// load: the Web service sizes from its (light) CPU demand only.
	full := caseStudyModel(2000, 150, 0.05)
	fullPlan, err := full.DedicatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly := caseStudyModel(2000, 150, 0.05)
	cpuOnly.Resources = []Resource{CPU}
	cpuPlan, err := cpuOnly.DedicatedPlan()
	if err != nil {
		t.Fatal(err)
	}
	if cpuPlan.Servers >= fullPlan.Servers {
		t.Fatalf("cpu-only plan %d >= full plan %d", cpuPlan.Servers, fullPlan.Servers)
	}
	if _, ok := cpuPlan.Traffic[DiskIO]; ok {
		t.Fatal("disk traffic leaked into a cpu-only plan")
	}
}

func TestManyServicesModel(t *testing.T) {
	// A 12-service mix solves and consolidation still wins under the
	// canonical form (statistical multiplexing at scale).
	var services []Service
	for i := 0; i < 12; i++ {
		services = append(services, Service{
			Name:        fmt.Sprintf("svc%d", i),
			ArrivalRate: 40 + 15*float64(i),
			ServingRates: map[Resource]float64{
				CPU: 100 + 10*float64(i%4),
			},
			ImpactFactors: map[Resource]float64{CPU: 0.9},
		})
	}
	m := &Model{Services: services, LossTarget: 0.02}
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Consolidated.Servers >= res.Dedicated.Servers {
		t.Fatalf("no multiplexing gain at scale: M=%d N=%d",
			res.Dedicated.Servers, res.Consolidated.Servers)
	}
	if res.ServerRatio < 1.2 {
		t.Fatalf("server ratio %.2f too small for 12 services", res.ServerRatio)
	}
}
