package core

import (
	"fmt"
	"math"

	"repro/internal/erlang"
)

// IntensiveWorkload implements the paper's workload-selection rule
// (Section IV-C.2, Fig. 9): "selecting the intensive workload that the
// servers can afford" — the largest Poisson arrival rate λ a pool of
// `servers` dedicated servers can carry for this service at loss
// probability at most target. It is the Erlang-B admissible-traffic inverse
// scaled by the service's bottleneck serving rate.
//
// The returned rate saturates the bottleneck resource exactly: offering
// more raises the loss probability above target ("more ... workloads result
// in remarkable difference ... in service performance"), offering less
// leaves headroom.
func (s Service) IntensiveWorkload(servers int, target float64) (float64, error) {
	if servers <= 0 {
		return 0, fmt.Errorf("%w: IntensiveWorkload requires positive servers, got %d", ErrInvalidModel, servers)
	}
	muBottleneck := math.Inf(1)
	for _, mu := range s.ServingRates {
		if mu < muBottleneck {
			muBottleneck = mu
		}
	}
	if math.IsInf(muBottleneck, 1) {
		return 0, fmt.Errorf("%w: service %q demands no resource", ErrInvalidModel, s.Name)
	}
	rho, err := erlang.Traffic(servers, target)
	if err != nil {
		return 0, err
	}
	return rho * muBottleneck, nil
}

// BottleneckResource reports the service's bottleneck resource on a
// dedicated server — the one with the smallest serving rate — and that
// rate. The second return is +Inf if the service demands nothing.
func (s Service) BottleneckResource() (Resource, float64) {
	var best Resource
	bestMu := math.Inf(1)
	for j, mu := range s.ServingRates {
		if mu < bestMu || (mu == bestMu && j < best) {
			best, bestMu = j, mu
		}
	}
	return best, bestMu
}

// DefaultWorkloadIntensity is the fraction of the Erlang-admissible
// traffic used when selecting case-study workloads. The paper picks its
// intensive workloads from the discrete operating points measured in
// Fig. 9, which sit slightly inside the admissible bound; 0.95 reproduces
// that slack (see DESIGN.md §2).
const DefaultWorkloadIntensity = 0.95

// WithIntensiveWorkloads returns a copy of the model in which every
// service's arrival rate is replaced by its intensive workload for the
// given per-service dedicated server counts — the exact input-preparation
// step the paper performs before Table I. dedicatedServers[i] corresponds
// to Services[i]. The selected rate is DefaultWorkloadIntensity times the
// exact Erlang-admissible bound; use WithWorkloadIntensity to override.
func (m *Model) WithIntensiveWorkloads(dedicatedServers []int) (*Model, error) {
	return m.WithWorkloadIntensity(dedicatedServers, DefaultWorkloadIntensity)
}

// WithWorkloadIntensity is WithIntensiveWorkloads with an explicit
// intensity in (0, 1]: the fraction of each service's Erlang-admissible
// traffic to offer. Intensity 1 sits exactly on the loss-target boundary.
func (m *Model) WithWorkloadIntensity(dedicatedServers []int, intensity float64) (*Model, error) {
	if len(dedicatedServers) != len(m.Services) {
		return nil, fmt.Errorf("%w: need %d server counts, got %d",
			ErrInvalidModel, len(m.Services), len(dedicatedServers))
	}
	if intensity <= 0 || intensity > 1 || math.IsNaN(intensity) {
		return nil, fmt.Errorf("%w: workload intensity %g outside (0,1]", ErrInvalidModel, intensity)
	}
	clone := *m
	clone.Services = make([]Service, len(m.Services))
	for i, s := range m.Services {
		lambda, err := s.IntensiveWorkload(dedicatedServers[i], m.LossTarget)
		if err != nil {
			return nil, fmt.Errorf("core: service %q: %w", s.Name, err)
		}
		cs := s
		cs.ArrivalRate = lambda * intensity
		clone.Services[i] = cs
	}
	return &clone, nil
}
