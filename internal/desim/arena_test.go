package desim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestArenaSlotReuse verifies that firing and reaping return slots to the
// free list: a bounded working set must not grow the arena no matter how
// many events pass through it.
func TestArenaSlotReuse(t *testing.T) {
	s := New()
	fn := func() {}
	for round := 0; round < 1000; round++ {
		s.After(1, fn)
		s.After(2, fn)
		s.RunAll()
	}
	if got := s.arenaSize(); got > 4 {
		t.Fatalf("arena grew to %d slots for a working set of 2", got)
	}
}

// TestArenaCancelThenRescheduleReusesSlot verifies the cancel→reap→reuse
// cycle: a cancelled event's slot is reclaimed once popped and handed to a
// later schedule.
func TestArenaCancelThenRescheduleReusesSlot(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { t.Error("cancelled event fired") })
	if !h.Cancel() {
		t.Fatal("cancel failed")
	}
	s.RunAll() // reaps the cancelled event, freeing its slot
	size := s.arenaSize()
	h2 := s.At(2, func() { fired = true })
	if got := s.arenaSize(); got != size {
		t.Fatalf("reschedule grew the arena %d -> %d instead of reusing the freed slot", size, got)
	}
	if !h2.Pending() {
		t.Fatal("rescheduled event not pending")
	}
	s.RunAll()
	if !fired {
		t.Fatal("rescheduled event did not fire")
	}
}

// TestHandleGenerationRecycling verifies that a handle to a dead event goes
// inert when its slot is recycled: it must not observe — or cancel — the
// new occupant.
func TestHandleGenerationRecycling(t *testing.T) {
	s := New()
	stale := s.At(1, func() {})
	s.RunAll() // fires; slot released
	fired := false
	fresh := s.At(2, func() { fired = true }) // recycles the slot
	if stale.idx != fresh.idx {
		t.Fatalf("test premise broken: slots differ (%d vs %d)", stale.idx, fresh.idx)
	}
	if stale.Pending() {
		t.Fatal("stale handle reports pending after recycling")
	}
	if stale.Cancel() {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	if !fresh.Pending() {
		t.Fatal("fresh handle not pending")
	}
	s.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
	if fresh.Pending() || fresh.Cancel() {
		t.Fatal("fired handle still live")
	}
}

// TestFIFOPropertyAgainstReference is the firing-order equivalence
// property: for randomized schedules dense with ties, the heap must fire
// events exactly as a stable sort by (time, schedule order) would.
func TestFIFOPropertyAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 50 + rng.Intn(200)
		type ref struct {
			at  Time
			ord int
		}
		refs := make([]ref, 0, n)
		var got []int
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(8)) // few distinct times -> many ties
			refs = append(refs, ref{at: at, ord: i})
			s.At(at, func() { got = append(got, i) })
		}
		// Reference scheduler: stable sort on time keeps insertion order
		// within ties.
		sort.SliceStable(refs, func(a, b int) bool { return refs[a].at < refs[b].at })
		s.RunAll()
		if len(got) != n {
			t.Fatalf("seed %d: fired %d of %d", seed, len(got), n)
		}
		for i := range got {
			if got[i] != refs[i].ord {
				t.Fatalf("seed %d: firing order diverges from reference at %d: got %v", seed, i, got)
			}
		}
	}
}

// TestFIFOPropertyWithCancellations extends the reference property with
// random cancellations (including cancels from inside running events) and
// compaction churn.
func TestFIFOPropertyWithCancellations(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		s := New()
		n := 100 + rng.Intn(300)
		type ev struct {
			at        Time
			ord       int
			cancelled bool
		}
		evs := make([]*ev, n)
		handles := make([]Handle, n)
		var got []int
		for i := 0; i < n; i++ {
			i := i
			evs[i] = &ev{at: Time(rng.Intn(10)), ord: i}
			handles[i] = s.At(evs[i].at, func() { got = append(got, i) })
		}
		// Cancel a random third up front (triggers compaction at scale).
		for i := range evs {
			if rng.Intn(3) == 0 {
				evs[i].cancelled = true
				if !handles[i].Cancel() {
					t.Fatalf("seed %d: cancel %d failed", seed, i)
				}
			}
		}
		want := make([]int, 0, n)
		for _, at := range []Time{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} {
			for _, e := range evs {
				if e.at == at && !e.cancelled {
					want = append(want, e.ord)
				}
			}
		}
		s.RunAll()
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: order diverges at %d", seed, i)
			}
		}
	}
}

// TestCompactionReapsCancelledBacklog verifies that a cancel-heavy workload
// cannot grow the queue without bound: lazy deletion compacts once
// cancelled events outnumber live ones.
func TestCompactionReapsCancelledBacklog(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 10000; i++ {
		// A far-future event that is immediately replaced — the cluster
		// station reschedule pattern.
		h := s.After(1e12, fn)
		h.Cancel()
	}
	if got := s.Pending(); got > 256 {
		t.Fatalf("queue holds %d entries; compaction should have reaped the cancelled backlog", got)
	}
	if got := s.arenaSize(); got > 256 {
		t.Fatalf("arena grew to %d slots under cancel churn", got)
	}
}

// TestScheduleFireNoAllocs pins the acceptance criterion directly: the
// steady-state schedule/fire path allocates nothing.
func TestScheduleFireNoAllocs(t *testing.T) {
	s := New()
	fn := func() {}
	// Prime capacity.
	for i := 0; i < 128; i++ {
		s.After(1, fn)
	}
	s.RunAll()
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			s.After(Time(i%5)+1, fn)
		}
		s.RunAll()
	})
	if avg != 0 {
		t.Fatalf("schedule/fire allocates %.2f allocs per round", avg)
	}
}

// TestCancelledEventKeepsClockSemantics: reaping a cancelled head event
// must not advance the clock to its timestamp.
func TestCancelledEventKeepsClockSemantics(t *testing.T) {
	s := New()
	h := s.At(5, func() {})
	var at Time
	s.At(7, func() { at = s.Now() })
	h.Cancel()
	s.RunAll()
	if at != 7 {
		t.Fatalf("live event fired at %g", at)
	}
	if s.Now() != 7 {
		t.Fatalf("clock = %g, want 7 (cancelled event must not move it)", s.Now())
	}
}
