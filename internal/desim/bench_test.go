package desim

import "testing"

// BenchmarkDesimSchedule measures the schedule→fire round trip: each
// iteration schedules batchSize events at staggered times and drains them.
// The event arena must keep this path allocation-free in steady state (slot
// reuse through the free list; heap and arena capacity retained across
// iterations), so allocs/op reports 0.
func BenchmarkDesimSchedule(b *testing.B) {
	const batchSize = 64
	s := New()
	fn := func() {}
	// Prime the arena and heap so growth is excluded from the steady state.
	for k := 0; k < batchSize; k++ {
		s.After(Time(k%7)+1, fn)
	}
	s.RunAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < batchSize; k++ {
			s.After(Time(k%7)+1, fn)
		}
		s.RunAll()
	}
}

// BenchmarkTimingWheel compares the two event-queue implementations on a
// dense short-horizon mix (the cluster's think-time + service-completion
// pattern): many events land within a few ticks of now, a tail lands far
// out. Sub-benchmarks share the workload so heap vs wheel ns/op is a
// direct read of queue cost.
func BenchmarkTimingWheel(b *testing.B) {
	const batchSize = 256
	run := func(b *testing.B, s *Simulator) {
		fn := func() {}
		for k := 0; k < batchSize; k++ {
			s.After(Time(k%13)*0.5+0.1, fn)
		}
		s.RunAll()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < batchSize; k++ {
				d := Time(k%13)*0.5 + 0.1
				if k%64 == 0 {
					d = 5000 // sparse far tail
				}
				s.After(d, fn)
			}
			s.RunAll()
		}
	}
	b.Run("queue=heap", func(b *testing.B) { run(b, New()) })
	b.Run("queue=wheel", func(b *testing.B) {
		s := New()
		s.UseWheel(0.25)
		run(b, s)
	})
}

// BenchmarkDesimScheduleCancel measures the schedule→cancel→reap path —
// the cluster simulator's reschedule pattern, where nearly every pending
// completion event is cancelled and replaced before it fires.
func BenchmarkDesimScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	tick := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.After(2, fn)
		h.Cancel()
		s.After(1, tick)
		s.RunAll() // fires tick, reaps the cancelled event
	}
}
