package desim

import "testing"

// BenchmarkDesimSchedule measures the schedule→fire round trip: each
// iteration schedules batchSize events at staggered times and drains them.
// The event arena must keep this path allocation-free in steady state (slot
// reuse through the free list; heap and arena capacity retained across
// iterations), so allocs/op reports 0.
func BenchmarkDesimSchedule(b *testing.B) {
	const batchSize = 64
	s := New()
	fn := func() {}
	// Prime the arena and heap so growth is excluded from the steady state.
	for k := 0; k < batchSize; k++ {
		s.After(Time(k%7)+1, fn)
	}
	s.RunAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < batchSize; k++ {
			s.After(Time(k%7)+1, fn)
		}
		s.RunAll()
	}
}

// BenchmarkDesimScheduleCancel measures the schedule→cancel→reap path —
// the cluster simulator's reschedule pattern, where nearly every pending
// completion event is cancelled and replaced before it fires.
func BenchmarkDesimScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	tick := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.After(2, fn)
		h.Cancel()
		s.After(1, tick)
		s.RunAll() // fires tick, reaps the cancelled event
	}
}
