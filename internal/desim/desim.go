// Package desim is a minimal, deterministic discrete-event simulation
// engine: a simulation clock, a pending-event heap with stable FIFO
// tie-breaking, cancellable events, and time-weighted statistics. It is the
// laboratory substrate on which the queueing and cluster simulators run in
// place of the paper's physical testbed.
package desim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.cancelled || h.ev.fired {
		return false
	}
	h.ev.cancelled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool {
	return h.ev != nil && !h.ev.cancelled && !h.ev.fired
}

type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator owns the clock and the event queue. The zero value is not
// usable; call New.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// New returns a simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now reports the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// ErrPast reports an attempt to schedule an event before the current time.
var ErrPast = errors.New("desim: cannot schedule event in the past")

// At schedules fn to run at absolute time t. It panics if t precedes the
// current time (a simulation bug, not a recoverable condition).
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Errorf("%w: now=%g, requested=%g", ErrPast, s.now, t))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is reached, or Stop is called. Events scheduled exactly at the
// horizon do fire; later events stay queued. It returns the number of
// events executed during this call.
func (s *Simulator) Run(horizon Time) uint64 {
	s.stopped = false
	var count uint64
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.events)
		if next.cancelled {
			continue
		}
		s.now = next.at
		next.fired = true
		next.fn()
		s.fired++
		count++
	}
	if s.now < horizon && !s.stopped && !math.IsInf(horizon, 1) {
		// Advance the clock to the horizon even if the queue drained, so
		// time-weighted statistics cover the whole window. RunAll (infinite
		// horizon) leaves the clock at the last event instead.
		s.now = horizon
	}
	return count
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() uint64 {
	return s.Run(math.Inf(1))
}

// Pending reports the number of events still queued (including cancelled
// events not yet reaped).
func (s *Simulator) Pending() int { return len(s.events) }

// TimeAverage tracks the time-weighted average of a piecewise-constant
// signal, e.g. the number of busy servers. Call Set at every change with
// the current simulated time; read Average at the end.
type TimeAverage struct {
	started  bool
	lastT    Time
	lastV    float64
	area     float64
	duration float64
	max      float64
}

// Set records that the signal takes value v from time t onward.
func (a *TimeAverage) Set(t Time, v float64) {
	if a.started {
		dt := t - a.lastT
		if dt > 0 {
			a.area += a.lastV * dt
			a.duration += dt
		}
	} else {
		a.started = true
		a.max = v
	}
	if v > a.max {
		a.max = v
	}
	a.lastT = t
	a.lastV = v
}

// Finish closes the observation window at time t without changing the
// value.
func (a *TimeAverage) Finish(t Time) { a.Set(t, a.lastV) }

// Average reports the time-weighted mean (NaN if no time has elapsed).
func (a *TimeAverage) Average() float64 {
	if a.duration == 0 {
		return math.NaN()
	}
	return a.area / a.duration
}

// Max reports the largest value observed.
func (a *TimeAverage) Max() float64 {
	if !a.started {
		return math.NaN()
	}
	return a.max
}

// Duration reports the observed time span.
func (a *TimeAverage) Duration() float64 { return a.duration }

// Current reports the most recently set value.
func (a *TimeAverage) Current() float64 { return a.lastV }
