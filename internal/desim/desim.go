// Package desim is a minimal, deterministic discrete-event simulation
// engine: a simulation clock, a pending-event heap with stable FIFO
// tie-breaking, cancellable events, and time-weighted statistics. It is the
// laboratory substrate on which the queueing and cluster simulators run in
// place of the paper's physical testbed.
//
// Events live in a slice-backed arena rather than as individual heap
// allocations: scheduling reuses slots through a free list, handles address
// slots by (index, generation) so stale handles go inert when a slot is
// recycled, and cancellation is lazy — a cancelled event stays queued until
// it is popped or until cancelled events outnumber live ones, at which
// point the queue is compacted in place. The steady-state schedule/fire
// path performs no allocations.
package desim

import (
	"errors"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Handle identifies a scheduled event and allows cancelling it. The zero
// Handle is valid and refers to no event. Handles stay cheap to copy and
// never keep a fired event alive: once the event fires or is reaped, the
// slot's generation advances and the handle goes inert.
type Handle struct {
	sim *Simulator
	idx int32
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.sim == nil {
		return false
	}
	ev := &h.sim.arena[h.idx]
	if ev.gen != h.gen || ev.state != statePending {
		return false
	}
	ev.state = stateCancelled
	h.sim.cancelled++
	h.sim.cancelledTotal++
	if h.sim.tracer != nil {
		h.sim.tracer.TraceEvent(TraceCancel, h.sim.now, ev.at)
	}
	h.sim.maybeCompact()
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool {
	if h.sim == nil {
		return false
	}
	ev := &h.sim.arena[h.idx]
	return ev.gen == h.gen && ev.state == statePending
}

// Event slot states. A slot cycles free -> pending -> (cancelled ->) free;
// the generation counter advances each time the slot returns to free.
const (
	stateFree = iota
	statePending
	stateCancelled
)

// event is one arena slot.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint32
	state uint8
}

// Simulator owns the clock and the event queue. The zero value is not
// usable; call New.
type Simulator struct {
	now       Time
	arena     []event // slot storage; grows, never shrinks
	free      []int32 // recycled slot indexes
	queue     []int32 // binary min-heap of slot indexes, keyed by (at, seq)
	seq       uint64
	cancelled int // cancelled events still sitting in queue
	stopped   bool

	// Engine counters. The simulator is single-writer by construction
	// (events fire on one goroutine), so these are plain fields — an
	// increment, not an atomic — and the observability registry reads
	// them through Stats() only when a snapshot is taken. This keeps the
	// schedule/fire path allocation-free and within noise of the
	// uninstrumented engine.
	fired          uint64
	scheduled      uint64
	cancelledTotal uint64
	compactions    uint64
	maxQueue       int

	// wheel, when non-nil, replaces the binary heap with the hierarchical
	// timing wheel (see wheel.go); wheelSpare parks a built wheel across
	// UseHeap/UseWheel flips so alternating runs reuse its storage.
	wheel      *timingWheel
	wheelSpare *timingWheel

	tracer Tracer
}

// TraceOp labels one scheduler operation for event tracing.
type TraceOp uint8

// Scheduler operations reported to a Tracer.
const (
	TraceSchedule TraceOp = iota // event accepted by At/After; at = firing time
	TraceFire                    // event popped and executed; at = firing time
	TraceCancel                  // pending event cancelled; at = firing time it will no longer get
	TraceCompact                 // cancelled-event compaction pass; at = now
)

// String names the operation.
func (op TraceOp) String() string {
	switch op {
	case TraceSchedule:
		return "schedule"
	case TraceFire:
		return "fire"
	case TraceCancel:
		return "cancel"
	case TraceCompact:
		return "compact"
	}
	return "unknown"
}

// Tracer observes scheduler operations for post-hoc debugging of sim
// schedules. Implementations must not call back into the simulator.
// obs.TraceWriter is the JSONL implementation.
type Tracer interface {
	TraceEvent(op TraceOp, now, at Time)
}

// SetTracer installs (or, with nil, removes) the scheduler tracer. The
// untraced path costs one predictable nil check per operation.
func (s *Simulator) SetTracer(t Tracer) { s.tracer = t }

// Stats is a point-in-time copy of the engine counters.
type Stats struct {
	// Scheduled counts events accepted by At/After.
	Scheduled uint64
	// Fired counts events executed.
	Fired uint64
	// Cancelled counts successful Handle.Cancel calls.
	Cancelled uint64
	// Compactions counts cancelled-event compaction passes.
	Compactions uint64
	// MaxQueue is the high-water mark of the pending-event heap
	// (including not-yet-reaped cancelled events).
	MaxQueue int
	// ArenaSlots is the number of event slots ever allocated.
	ArenaSlots int
}

// Stats reports the engine counters.
func (s *Simulator) Stats() Stats {
	return Stats{
		Scheduled:   s.scheduled,
		Fired:       s.fired,
		Cancelled:   s.cancelledTotal,
		Compactions: s.compactions,
		MaxQueue:    s.maxQueue,
		ArenaSlots:  len(s.arena),
	}
}

// New returns a simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Reset returns the simulator to its initial state — clock at 0, empty
// queue, zeroed counters — while keeping the arena, free-list and queue
// capacity, so a reused simulator runs its next workload without
// re-growing event storage. Handles from before the Reset go inert: every
// in-use slot's generation advances, exactly as if its event had fired.
// A reset simulator is indistinguishable from a fresh one to its events
// (the clock and the FIFO tie-breaking sequence restart at zero), so
// reuse never changes simulation results.
func (s *Simulator) Reset() {
	for i := range s.arena {
		ev := &s.arena[i]
		if ev.state != stateFree {
			ev.gen++
			ev.state = stateFree
		}
		ev.fn = nil
	}
	// Refill the free list high-to-low: pops come from the tail, so a
	// reused simulator hands out slots in the same 0, 1, 2, ... order a
	// fresh one grows them.
	s.free = s.free[:0]
	for i := len(s.arena) - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	s.queue = s.queue[:0]
	s.now, s.seq, s.cancelled, s.stopped = 0, 0, 0, false
	s.fired, s.scheduled, s.cancelledTotal, s.compactions, s.maxQueue = 0, 0, 0, 0, 0
	if s.wheel != nil {
		s.wheel.reset()
	}
}

// Now reports the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// ErrPast reports an attempt to schedule an event before the current time.
var ErrPast = errors.New("desim: cannot schedule event in the past")

// At schedules fn to run at absolute time t. It panics if t precedes the
// current time (a simulation bug, not a recoverable condition).
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Errorf("%w: now=%g, requested=%g", ErrPast, s.now, t))
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.arena = append(s.arena, event{})
		idx = int32(len(s.arena) - 1)
	}
	ev := &s.arena[idx]
	ev.at, ev.seq, ev.fn, ev.state = t, s.seq, fn, statePending
	s.seq++
	if s.wheel != nil {
		s.wheel.insert(idx, t)
		if n := s.wheel.pending(); n > s.maxQueue {
			s.maxQueue = n
		}
	} else {
		s.queue = append(s.queue, idx)
		s.siftUp(len(s.queue) - 1)
		if len(s.queue) > s.maxQueue {
			s.maxQueue = len(s.queue)
		}
	}
	s.scheduled++
	if s.tracer != nil {
		s.tracer.TraceEvent(TraceSchedule, s.now, t)
	}
	return Handle{sim: s, idx: idx, gen: ev.gen}
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) Handle {
	return s.At(s.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is reached, or Stop is called. Events scheduled exactly at the
// horizon do fire; later events stay queued. It returns the number of
// events executed during this call.
func (s *Simulator) Run(horizon Time) uint64 {
	if s.wheel != nil {
		return s.runWheel(horizon)
	}
	s.stopped = false
	var count uint64
	for len(s.queue) > 0 && !s.stopped {
		idx := s.queue[0]
		ev := &s.arena[idx]
		if ev.at > horizon {
			break
		}
		s.popTop()
		if ev.state == stateCancelled {
			s.cancelled--
			s.release(idx)
			continue
		}
		s.now = ev.at
		fn := ev.fn
		// Release before firing: the slot is immediately reusable by events
		// fn schedules, and handles to this event go inert — matching the
		// fired-event semantics (Pending false, Cancel a no-op).
		s.release(idx)
		if s.tracer != nil {
			s.tracer.TraceEvent(TraceFire, s.now, s.now)
		}
		fn()
		s.fired++
		count++
	}
	if s.now < horizon && !s.stopped && !math.IsInf(horizon, 1) {
		// Advance the clock to the horizon even if the queue drained, so
		// time-weighted statistics cover the whole window. RunAll (infinite
		// horizon) leaves the clock at the last event instead.
		s.now = horizon
	}
	return count
}

// runWheel is the Run loop over the timing-wheel queue: identical fire
// semantics, with the pop coming off the wheel's due-heap instead of the
// main binary heap.
func (s *Simulator) runWheel(horizon Time) uint64 {
	s.stopped = false
	var count uint64
	w := s.wheel
	for !s.stopped {
		idx, ok := w.next()
		if !ok {
			break
		}
		ev := &s.arena[idx]
		if ev.at > horizon {
			break
		}
		w.popCur()
		if ev.state == stateCancelled {
			s.cancelled--
			s.release(idx)
			continue
		}
		s.now = ev.at
		fn := ev.fn
		s.release(idx)
		if s.tracer != nil {
			s.tracer.TraceEvent(TraceFire, s.now, s.now)
		}
		fn()
		s.fired++
		count++
	}
	if s.now < horizon && !s.stopped && !math.IsInf(horizon, 1) {
		s.now = horizon
	}
	return count
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() uint64 {
	return s.Run(math.Inf(1))
}

// Pending reports the number of events still queued (including cancelled
// events not yet reaped).
func (s *Simulator) Pending() int {
	if s.wheel != nil {
		return s.wheel.pending()
	}
	return len(s.queue)
}

// release returns a slot to the free list and advances its generation so
// outstanding handles to it go inert.
func (s *Simulator) release(idx int32) {
	ev := &s.arena[idx]
	ev.fn = nil // drop the closure reference for the garbage collector
	ev.gen++
	ev.state = stateFree
	s.free = append(s.free, idx)
}

// maybeCompact reaps cancelled events eagerly once they outnumber live
// ones, so workloads that cancel far-future events (the cluster stations
// rescheduling completions) cannot grow the queue without bound. Removing
// entries never changes the firing order of live events: pop order is the
// total order (at, seq), independent of the heap's internal arrangement.
func (s *Simulator) maybeCompact() {
	if s.wheel != nil {
		if s.cancelled <= s.wheel.pending()/2 || s.wheel.pending() < 64 {
			return
		}
		s.wheel.compact()
		s.cancelled = 0
		s.compactions++
		if s.tracer != nil {
			s.tracer.TraceEvent(TraceCompact, s.now, s.now)
		}
		return
	}
	if s.cancelled <= len(s.queue)/2 || len(s.queue) < 64 {
		return
	}
	kept := s.queue[:0]
	for _, idx := range s.queue {
		if s.arena[idx].state == stateCancelled {
			s.release(idx)
			continue
		}
		kept = append(kept, idx)
	}
	s.queue = kept
	s.cancelled = 0
	s.compactions++
	if s.tracer != nil {
		s.tracer.TraceEvent(TraceCompact, s.now, s.now)
	}
	// Heapify bottom-up: O(n).
	for i := len(s.queue)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// less orders slots by (at, seq): FIFO among simultaneous events.
func (s *Simulator) less(a, b int32) bool {
	ea, eb := &s.arena[a], &s.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// siftUp restores the heap property from position i toward the root.
func (s *Simulator) siftUp(i int) {
	q := s.queue
	node := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(node, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = node
}

// popTop removes the minimum element.
func (s *Simulator) popTop() {
	q := s.queue
	n := len(q) - 1
	q[0] = q[n]
	s.queue = q[:n]
	if n > 0 {
		s.siftDown(0)
	}
}

// siftDown restores the heap property from position i toward the leaves.
func (s *Simulator) siftDown(i int) {
	q := s.queue
	n := len(q)
	node := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.less(q[r], q[child]) {
			child = r
		}
		if !s.less(q[child], node) {
			break
		}
		q[i] = q[child]
		i = child
	}
	q[i] = node
}

// arenaSize reports the number of slots ever allocated (test hook for slot
// reuse).
func (s *Simulator) arenaSize() int { return len(s.arena) }

// TimeAverage tracks the time-weighted average of a piecewise-constant
// signal, e.g. the number of busy servers. Call Set at every change with
// the current simulated time; read Average at the end.
type TimeAverage struct {
	started  bool
	lastT    Time
	lastV    float64
	area     float64
	duration float64
	max      float64
}

// Set records that the signal takes value v from time t onward.
func (a *TimeAverage) Set(t Time, v float64) {
	if a.started {
		dt := t - a.lastT
		if dt > 0 {
			a.area += a.lastV * dt
			a.duration += dt
		}
	} else {
		a.started = true
		a.max = v
	}
	if v > a.max {
		a.max = v
	}
	a.lastT = t
	a.lastV = v
}

// Finish closes the observation window at time t without changing the
// value.
func (a *TimeAverage) Finish(t Time) { a.Set(t, a.lastV) }

// Reset closes the window at t and restarts accumulation from t with the
// current value, discarding everything observed before t. Statistics
// scoped to a post-warmup window snapshot their signals with Reset at the
// warmup boundary.
func (a *TimeAverage) Reset(t Time) {
	a.Set(t, a.lastV)
	a.area = 0
	a.duration = 0
	a.max = a.lastV
}

// Average reports the time-weighted mean (NaN if no time has elapsed).
func (a *TimeAverage) Average() float64 {
	if a.duration == 0 {
		return math.NaN()
	}
	return a.area / a.duration
}

// Max reports the largest value observed.
func (a *TimeAverage) Max() float64 {
	if !a.started {
		return math.NaN()
	}
	return a.max
}

// Duration reports the observed time span.
func (a *TimeAverage) Duration() float64 { return a.duration }

// Current reports the most recently set value.
func (a *TimeAverage) Current() float64 { return a.lastV }
