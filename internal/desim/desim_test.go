package desim

import (
	"math"
	"testing"
)

func TestEventsFireInOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	n := s.RunAll()
	if n != 3 {
		t.Fatalf("fired %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %g", s.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fireTime Time
	s.At(10, func() {
		s.After(5, func() { fireTime = s.Now() })
	})
	s.RunAll()
	if fireTime != 15 {
		t.Fatalf("After fired at %g", fireTime)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.At(1, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	if !h.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if h.Cancel() {
		t.Fatal("second cancel should be a no-op")
	}
	if h.Pending() {
		t.Fatal("cancelled handle still pending")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	h := s.At(1, func() {})
	s.RunAll()
	if h.Cancel() {
		t.Fatal("cancel after fire should fail")
	}
	if h.Pending() {
		t.Fatal("fired handle still pending")
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	n := s.Run(3) // events at the horizon fire
	if n != 3 {
		t.Fatalf("fired %d events before horizon", n)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %g after horizon run", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Continue to the end.
	s.Run(100)
	if len(fired) != 5 {
		t.Fatalf("total fired = %d", len(fired))
	}
	// Clock advances to the horizon even with an empty queue.
	if s.Now() != 100 {
		t.Fatalf("clock = %g", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() {
		count++
		s.Stop()
	})
	s.At(2, func() { count++ })
	s.RunAll()
	if count != 1 {
		t.Fatalf("stop did not halt run: count=%d", count)
	}
	// Resume runs the remaining event.
	s.RunAll()
	if count != 2 {
		t.Fatalf("resume failed: count=%d", count)
	}
}

func TestCascadingEvents(t *testing.T) {
	// An M/D/1-style self-scheduling chain: each event schedules the next.
	s := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			s.After(1, step)
		}
	}
	s.At(0, step)
	s.RunAll()
	if count != 1000 {
		t.Fatalf("chain executed %d steps", count)
	}
	if s.Now() != 999 {
		t.Fatalf("clock = %g", s.Now())
	}
	if s.Fired() != 1000 {
		t.Fatalf("Fired() = %d", s.Fired())
	}
}

// resetWorkload is a deterministic event script touching scheduling,
// relative scheduling, cancellation and FIFO ties; it returns the fire
// trace so runs on different simulators can be compared exactly.
func resetWorkload(s *Simulator) []Time {
	var trace []Time
	record := func() { trace = append(trace, s.Now()) }
	s.At(3, record)
	s.At(1, func() {
		record()
		s.After(0.5, record)
	})
	s.At(2, record) // FIFO tie with the cancelled twin below
	s.At(2, record).Cancel()
	s.RunAll()
	return trace
}

// TestResetMatchesFresh: a reset simulator must be indistinguishable from
// a fresh one — same fire order, same clock, same counters — while keeping
// its arena (that is the whole point of reuse).
func TestResetMatchesFresh(t *testing.T) {
	want := resetWorkload(New())

	s := New()
	resetWorkload(s)
	slots := s.Stats().ArenaSlots
	if slots == 0 {
		t.Fatal("workload grew no arena slots")
	}
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Stats().Fired != 0 || s.Stats().Scheduled != 0 {
		t.Fatalf("Reset left state behind: now=%g pending=%d stats=%+v", s.Now(), s.Pending(), s.Stats())
	}
	if got := s.Stats().ArenaSlots; got != slots {
		t.Fatalf("Reset resized the arena: %d -> %d slots", slots, got)
	}

	got := resetWorkload(s)
	if len(got) != len(want) {
		t.Fatalf("reset run fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire trace diverged at %d: reset=%v fresh=%v", i, got, want)
		}
	}
}

// TestResetInertsStaleHandles: handles created before a Reset must neither
// report pending nor cancel whatever event now occupies their old slot.
func TestResetInertsStaleHandles(t *testing.T) {
	s := New()
	stale := s.At(5, func() { t.Error("event from before Reset fired") })
	s.Reset()
	if stale.Pending() {
		t.Fatal("stale handle still pending after Reset")
	}
	if stale.Cancel() {
		t.Fatal("stale handle cancelled something after Reset")
	}

	// The stale handle's slot is recycled by the next schedule; the stale
	// handle must not be able to kill the new occupant.
	fired := false
	s.At(1, func() { fired = true })
	stale.Cancel()
	s.RunAll()
	if !fired {
		t.Fatal("stale handle cancelled a post-Reset event")
	}
}

func TestTimeAverage(t *testing.T) {
	var a TimeAverage
	a.Set(0, 1)  // value 1 on [0, 10)
	a.Set(10, 3) // value 3 on [10, 20)
	a.Finish(20)
	if math.Abs(a.Average()-2) > 1e-12 {
		t.Fatalf("average = %g", a.Average())
	}
	if a.Max() != 3 {
		t.Fatalf("max = %g", a.Max())
	}
	if a.Duration() != 20 {
		t.Fatalf("duration = %g", a.Duration())
	}
	if a.Current() != 3 {
		t.Fatalf("current = %g", a.Current())
	}
}

func TestTimeAverageEmpty(t *testing.T) {
	var a TimeAverage
	if !math.IsNaN(a.Average()) || !math.IsNaN(a.Max()) {
		t.Fatal("empty TimeAverage should be NaN")
	}
}

func TestTimeAverageZeroWidthUpdates(t *testing.T) {
	var a TimeAverage
	a.Set(0, 5)
	a.Set(0, 7) // zero-width segment contributes nothing
	a.Finish(10)
	if math.Abs(a.Average()-7) > 1e-12 {
		t.Fatalf("average = %g", a.Average())
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for k := 0; k < 1000; k++ {
			s.At(Time(k%17), func() {})
		}
		s.RunAll()
	}
}
