package desim_test

import (
	"testing"

	"repro/internal/desim"
	"repro/internal/obs"
)

func TestStatsCountEngineActivity(t *testing.T) {
	sim := desim.New()
	h := sim.After(10, func() {})
	for i := 0; i < 5; i++ {
		sim.After(float64(i)+1, func() {})
	}
	h.Cancel()
	sim.RunAll()
	st := sim.Stats()
	if st.Scheduled != 6 {
		t.Fatalf("scheduled = %d, want 6", st.Scheduled)
	}
	if st.Fired != 5 {
		t.Fatalf("fired = %d, want 5", st.Fired)
	}
	if st.Cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", st.Cancelled)
	}
	if st.MaxQueue != 6 {
		t.Fatalf("queue high water = %d, want 6", st.MaxQueue)
	}
	if st.ArenaSlots == 0 {
		t.Fatal("arena slots = 0")
	}
}

func TestRegisterSimulatorSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	sim := desim.New()
	obs.RegisterSimulator(reg, "desim", sim)
	sim.After(1, func() {})
	sim.RunAll()
	s := reg.Snapshot()
	if s.Counters["desim/events_scheduled"] != 1 || s.Counters["desim/events_fired"] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
	if s.Gauges["desim/queue_high_water"] != 1 {
		t.Fatalf("snapshot gauges = %v", s.Gauges)
	}
}

// TestScheduleFireNoAllocsWithMetrics is the allocation regression test
// for the instrumented engine: the schedule→fire path must stay at
// 0 allocs/op with the engine counters live and the simulator registered
// in an observability registry (PR 2 bought this property; the
// observability layer must not spend it). Snapshots are taken between
// measured rounds to prove collection does not perturb the hot path.
func TestScheduleFireNoAllocsWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sim := desim.New()
	obs.RegisterSimulator(reg, "desim", sim)
	fn := func() {}
	// Prime arena, free list and heap so steady state excludes growth.
	for k := 0; k < 64; k++ {
		sim.After(desim.Time(k%7)+1, fn)
	}
	sim.RunAll()

	if n := testing.AllocsPerRun(200, func() {
		for k := 0; k < 64; k++ {
			sim.After(desim.Time(k%7)+1, fn)
		}
		h := sim.After(100, fn)
		h.Cancel()
		sim.RunAll()
	}); n != 0 {
		t.Fatalf("instrumented schedule/fire path allocates %v allocs/op, want 0", n)
	}
	if s := reg.Snapshot(); s.Counters["desim/events_fired"] == 0 {
		t.Fatal("metrics were not live during the allocation test")
	}
}
