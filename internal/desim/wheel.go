package desim

import (
	"fmt"
	"math"
	"math/bits"
)

// Hierarchical timing wheel: an alternative event queue for dense,
// short-horizon schedules (per-request completions and think times in a
// large fleet), selectable per run via Simulator.UseWheel.
//
// Time is bucketed into fixed-width ticks. Three levels of 256 slots each
// cover 2^24 ticks ahead of the wheel's current tick; level L buckets
// events 256^L..256^(L+1)-1 ticks out by tick>>(8L) mod 256. Events due at
// or before the current tick sit in curq, a small (at, seq) min-heap, and
// events beyond the wheel span sit in far, another (at, seq) min-heap.
// Advancing the wheel finds the earliest occupied region via per-level
// occupancy bitmaps, cascades coarse slots into finer ones, and drains the
// winning slot into curq.
//
// The wheel is an exact drop-in for the binary heap: every pop comes off
// curq, which orders events by the same (at, seq) total order the heap
// uses, and the advance logic only moves the current tick to the minimum
// occupied tick, so the fire sequence — and therefore every simulation
// result — is bit-identical whichever queue a run selects. The win is
// constant-time scheduling for near-future events instead of O(log n)
// sifts through one big heap.
const (
	wheelBits      = 8
	wheelSlots     = 1 << wheelBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 3
	wheelSpanTicks = int64(1) << (wheelBits * wheelLevels)

	// maxWheelTick clamps tick conversion so +Inf or absurd times never
	// overflow int64; clamped events collapse into one far bucket where
	// the (at, seq) heap still orders them exactly.
	maxWheelTick = int64(1) << 62
)

type timingWheel struct {
	sim  *Simulator
	tick float64 // seconds per tick
	inv  float64 // 1/tick

	// cur is the wheel position: every event with tickOf(at) <= cur has
	// fired or sits in curq. It only moves forward, and only onto the
	// minimum occupied tick, so nothing is ever skipped.
	cur   int64
	count int // events resident in the level slots

	levels [wheelLevels][wheelSlots][]int32
	occ    [wheelLevels][wheelSlots / 64]uint64

	curq []int32 // min-heap by (at, seq): due events
	far  []int32 // min-heap by (at, seq): events beyond the wheel span
}

func newTimingWheel(s *Simulator, tick float64) *timingWheel {
	w := &timingWheel{sim: s, tick: tick, inv: 1 / tick}
	w.cur = w.tickOf(s.now)
	return w
}

// tickOf maps an absolute time to its tick. Multiplication by a positive
// constant and truncation are both monotone, so tick order never inverts
// event order — the property ordering correctness rests on.
func (w *timingWheel) tickOf(at Time) int64 {
	x := at * w.inv
	if x >= float64(maxWheelTick) {
		return maxWheelTick
	}
	return int64(x)
}

// pending reports the number of queued events (including cancelled ones
// not yet reaped).
func (w *timingWheel) pending() int {
	return len(w.curq) + w.count + len(w.far)
}

// insert files one arena slot index by its firing time.
func (w *timingWheel) insert(idx int32, at Time) {
	t := w.tickOf(at)
	d := t - w.cur
	if d <= 0 {
		w.heapPush(&w.curq, idx)
		return
	}
	var level int
	switch {
	case d < wheelSlots:
		level = 0
	case d < 1<<(2*wheelBits):
		level = 1
	case d < wheelSpanTicks:
		level = 2
	default:
		w.heapPush(&w.far, idx)
		return
	}
	slot := int(t>>uint(level*wheelBits)) & wheelMask
	w.levels[level][slot] = append(w.levels[level][slot], idx)
	w.occ[level][slot>>6] |= 1 << uint(slot&63)
	w.count++
}

// next advances the wheel until curq holds the globally earliest pending
// event and returns it (without popping). False means the queue is empty.
func (w *timingWheel) next() (int32, bool) {
	for {
		if len(w.curq) > 0 {
			return w.curq[0], true
		}
		if w.count == 0 {
			if len(w.far) == 0 {
				return 0, false
			}
			// Nothing in the wheel: jump straight to the earliest far
			// event and pull the far heap's near window in.
			w.cur = w.tickOf(w.sim.arena[w.far[0]].at)
			w.drainFar(w.cur + wheelSpanTicks - 1)
			continue
		}

		// The earliest occupied region per level. Ties prefer the coarser
		// level: a coarse slot starting at the same tick may hold events
		// due before (or among) the fine candidate's, so it must cascade
		// first — and the wheel may never move into a block whose
		// coarse slot is still occupied, or those events would fall out
		// of the scan windows below.
		best, bestLevel, bestEnd := int64(math.MaxInt64), -1, int64(0)
		if t, ok := w.nextL0(); ok {
			best, bestLevel, bestEnd = t, 0, t
		}
		for level := 1; level < wheelLevels; level++ {
			if b, ok := w.nextBlock(level); ok {
				shift := uint(level * wheelBits)
				if start := b << shift; start <= best {
					best, bestLevel, bestEnd = start, level, (b+1)<<shift-1
				}
			}
		}
		if bestLevel < 0 {
			panic("desim: timing wheel lost events")
		}
		if len(w.far) > 0 {
			ft := w.tickOf(w.sim.arena[w.far[0]].at)
			if ft < best {
				// Far events precede every wheel event: bring them in
				// (they fit — best is within the span) and rescan.
				w.drainFar(best - 1)
				continue
			}
			if ft <= bestEnd {
				// Far events interleave with the winning region. Advance
				// first so they land below the region's level, then merge.
				w.cur = best
				w.drainFar(bestEnd)
			}
		}
		w.cur = best
		w.drainSlot(bestLevel, best)
	}
}

// popCur removes curq's top (which next() made the global minimum).
func (w *timingWheel) popCur() {
	w.heapPop(&w.curq)
}

// nextL0 finds the earliest occupied level-0 slot at or after the current
// tick. Offset 0 is included: the wheel can advance onto a tick whose
// level-0 slot was populated before a coarser cascade moved cur there.
func (w *timingWheel) nextL0() (int64, bool) {
	start := int(w.cur) & wheelMask
	s, ok := nextBit(&w.occ[0], start)
	if !ok {
		return 0, false
	}
	off := int64((s - start + wheelSlots) & wheelMask)
	return w.cur + off, true
}

// nextBlock finds the earliest occupied block index at the given level,
// scanning the 256 blocks after the current one. The current block's slot
// is never occupied: events land there only with a delta of at least one
// full block, and cur enters a block only after its slot cascaded.
func (w *timingWheel) nextBlock(level int) (int64, bool) {
	shift := uint(level * wheelBits)
	base := w.cur >> shift
	start := int(base+1) & wheelMask
	s, ok := nextBit(&w.occ[level], start)
	if !ok {
		return 0, false
	}
	off := int64((s - start + wheelSlots) & wheelMask)
	return base + 1 + off, true
}

// nextBit finds the first set bit in circular order starting at start.
func nextBit(bm *[wheelSlots / 64]uint64, start int) (int, bool) {
	word, bit := start>>6, uint(start&63)
	if rest := bm[word] >> bit << bit; rest != 0 {
		return word<<6 + bits.TrailingZeros64(rest), true
	}
	for k := 1; k <= len(bm); k++ {
		i := (word + k) % len(bm)
		if bm[i] != 0 {
			s := i<<6 + bits.TrailingZeros64(bm[i])
			if k == len(bm) && s >= start {
				// Wrapped fully: only bits before start remain unseen.
				return 0, false
			}
			return s, true
		}
	}
	return 0, false
}

// drainSlot empties the slot covering tick t at the given level,
// re-filing each event relative to the (already advanced) current tick:
// level-0 events and exact-tick events go to curq, coarser ones cascade
// down a level. Cancelled events are reaped for free on the way.
func (w *timingWheel) drainSlot(level int, t int64) {
	slot := int(t>>uint(level*wheelBits)) & wheelMask
	evs := w.levels[level][slot]
	// Reinsertion always targets curq or a strictly finer level (the
	// delta to cur shrank below this level's block size), so retaining
	// the backing array for reuse cannot alias the loop below.
	w.levels[level][slot] = evs[:0]
	w.occ[level][slot>>6] &^= 1 << uint(slot&63)
	w.count -= len(evs)
	for _, idx := range evs {
		ev := &w.sim.arena[idx]
		if ev.state == stateCancelled {
			w.sim.cancelled--
			w.sim.release(idx)
			continue
		}
		w.insert(idx, ev.at)
	}
}

// drainFar moves far-heap events with tick <= limit into the wheel.
// Callers guarantee limit is within the wheel span of cur, so re-filing
// never bounces an event back to the far heap.
func (w *timingWheel) drainFar(limit int64) {
	for len(w.far) > 0 {
		idx := w.far[0]
		ev := &w.sim.arena[idx]
		if w.tickOf(ev.at) > limit {
			return
		}
		w.heapPop(&w.far)
		if ev.state == stateCancelled {
			w.sim.cancelled--
			w.sim.release(idx)
			continue
		}
		w.insert(idx, ev.at)
	}
}

// reset empties the wheel, keeping slot capacity, for arena-style reuse.
func (w *timingWheel) reset() {
	for level := range w.levels {
		for word, bm := range w.occ[level] {
			for bm != 0 {
				bit := bits.TrailingZeros64(bm)
				bm &= bm - 1
				slot := word<<6 + bit
				w.levels[level][slot] = w.levels[level][slot][:0]
			}
			w.occ[level][word] = 0
		}
	}
	w.curq = w.curq[:0]
	w.far = w.far[:0]
	w.cur = w.tickOf(w.sim.now)
	w.count = 0
}

// compact reaps cancelled events from every wheel structure in place —
// the wheel-mode counterpart of the heap's outnumber compaction.
func (w *timingWheel) compact() {
	w.curq = w.filterHeap(w.curq)
	w.far = w.filterHeap(w.far)
	for level := range w.levels {
		for word, bm := range w.occ[level] {
			for bm != 0 {
				bit := bits.TrailingZeros64(bm)
				bm &= bm - 1
				slot := word<<6 + bit
				evs := w.levels[level][slot]
				kept := evs[:0]
				for _, idx := range evs {
					if w.sim.arena[idx].state == stateCancelled {
						w.sim.release(idx)
						continue
					}
					kept = append(kept, idx)
				}
				w.count -= len(evs) - len(kept)
				w.levels[level][slot] = kept
				if len(kept) == 0 {
					w.occ[level][word] &^= 1 << uint(bit)
				}
			}
		}
	}
}

// filterHeap drops cancelled events from a heap slice and restores the
// heap property.
func (w *timingWheel) filterHeap(q []int32) []int32 {
	kept := q[:0]
	for _, idx := range q {
		if w.sim.arena[idx].state == stateCancelled {
			w.sim.release(idx)
			continue
		}
		kept = append(kept, idx)
	}
	for i := len(kept)/2 - 1; i >= 0; i-- {
		w.siftDown(kept, i)
	}
	return kept
}

// Heap primitives over (at, seq), shared by curq and far. Identical
// ordering to the Simulator's main heap, which is what makes the wheel an
// exact substitute.

func (w *timingWheel) heapPush(q *[]int32, idx int32) {
	*q = append(*q, idx)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.sim.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (w *timingWheel) heapPop(q *[]int32) {
	h := *q
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	if n > 0 {
		w.siftDown(h[:n], 0)
	}
}

func (w *timingWheel) siftDown(h []int32, i int) {
	n := len(h)
	node := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && w.sim.less(h[r], h[child]) {
			child = r
		}
		if !w.sim.less(h[child], node) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = node
}

// UseWheel switches the simulator's event queue to a hierarchical timing
// wheel with the given tick granularity in seconds (for a dense run, the
// horizon divided by about 2^20 works well: the three-level span then
// covers 16 horizons before the far heap is needed). It must be called
// while no events are pending — queue choice is per run, decided before
// scheduling starts — and panics otherwise, like any scheduling bug.
// Queue choice never affects results, only speed.
func (s *Simulator) UseWheel(tick Time) {
	if !(tick > 0) || math.IsInf(tick, 1) {
		panic(fmt.Errorf("desim: wheel tick %g (want a positive, finite granularity)", tick))
	}
	if s.Pending() > 0 {
		panic(fmt.Errorf("desim: UseWheel with %d events pending", s.Pending()))
	}
	if s.wheel == nil && s.wheelSpare != nil {
		s.wheel, s.wheelSpare = s.wheelSpare, nil
	}
	if s.wheel != nil {
		s.wheel.tick, s.wheel.inv = tick, 1/tick
		s.wheel.reset()
		return
	}
	s.wheel = newTimingWheel(s, tick)
}

// UseHeap switches the simulator back to the binary-heap event queue (the
// default). Like UseWheel it requires an empty queue. The wheel's storage
// is parked for reuse, so alternating runs do not reallocate it.
func (s *Simulator) UseHeap() {
	if s.Pending() > 0 {
		panic(fmt.Errorf("desim: UseHeap with %d events pending", s.Pending()))
	}
	if s.wheel != nil {
		s.wheelSpare, s.wheel = s.wheel, nil
	}
}

// QueueKind names the active event queue: "heap" or "wheel".
func (s *Simulator) QueueKind() string {
	if s.wheel != nil {
		return "wheel"
	}
	return "heap"
}
