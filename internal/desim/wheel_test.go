package desim

import (
	"math"
	"math/rand"
	"testing"
)

// runRecorded drives one randomized schedule storm against a simulator and
// records the (time, tag) sequence of fired events. The workload exercises
// nested scheduling from callbacks, FIFO ties, cancellations and far-future
// events — every path whose order the wheel must reproduce exactly.
func runRecorded(t *testing.T, s *Simulator, seed int64) []struct {
	at  Time
	tag int
} {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var fired []struct {
		at  Time
		tag int
	}
	next := 0
	var handles []Handle
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			tag := next
			next++
			var d Time
			switch rng.Intn(10) {
			case 0:
				d = 0 // same-instant tie
			case 1:
				d = 1e6 * (1 + rng.Float64()) // far beyond any wheel span
			default:
				d = rng.Float64() * 10
			}
			h := s.After(d, func() {
				fired = append(fired, struct {
					at  Time
					tag int
				}{s.Now(), tag})
				if depth < 3 && rng.Intn(3) == 0 {
					schedule(depth + 1)
				}
			})
			handles = append(handles, h)
			if rng.Intn(5) == 0 && len(handles) > 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		}
	}
	for round := 0; round < 30; round++ {
		schedule(0)
		s.Run(s.Now() + rng.Float64()*20)
	}
	s.RunAll()
	return fired
}

// TestWheelMatchesHeap is the exactness property the timing wheel rests
// on: for randomized schedules, the wheel fires the identical (time, tag)
// sequence as the binary heap. Note the callbacks consume a shared RNG, so
// any ordering divergence cascades and cannot go unnoticed.
func TestWheelMatchesHeap(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		heapSim := New()
		want := runRecorded(t, heapSim, seed)

		for _, tick := range []Time{1e-3, 0.25, 50} {
			wheelSim := New()
			wheelSim.UseWheel(tick)
			got := runRecorded(t, wheelSim, seed)
			if len(got) != len(want) {
				t.Fatalf("seed %d tick %g: wheel fired %d events, heap %d", seed, tick, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d tick %g: event %d = %+v, heap fired %+v", seed, tick, i, got[i], want[i])
				}
			}
			hs, ws := heapSim.Stats(), wheelSim.Stats()
			if hs.Fired != ws.Fired || hs.Scheduled != ws.Scheduled {
				t.Fatalf("seed %d tick %g: stats diverge: heap %+v wheel %+v", seed, tick, hs, ws)
			}
		}
	}
}

// TestWheelFIFOTies checks same-instant events fire in scheduling order
// across slot, cascade and far paths.
func TestWheelFIFOTies(t *testing.T) {
	s := New()
	s.UseWheel(0.5)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		s.At(3, func() { order = append(order, i) })
	}
	// Far-heap entries at the same instant, scheduled after.
	for i := 20; i < 25; i++ {
		i := i
		s.At(1e9, func() { order = append(order, i) })
	}
	for i := 25; i < 30; i++ {
		i := i
		s.At(1e9, func() { order = append(order, i) })
	}
	s.RunAll()
	if len(order) != 30 {
		t.Fatalf("fired %d of 30", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("position %d fired tag %d (want FIFO order)", i, got)
		}
	}
}

// TestWheelHorizonAndResume checks Run's horizon semantics: events at the
// horizon fire, later ones stay queued and fire on a later Run, and the
// clock lands on the horizon when the queue drains early.
func TestWheelHorizonAndResume(t *testing.T) {
	s := New()
	s.UseWheel(0.1)
	var fired []Time
	for _, at := range []Time{1, 5, 5.0001, 42, 1e7} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.Run(5)
	if len(fired) != 2 || s.Now() != 5 {
		t.Fatalf("after Run(5): fired %v, now %g", fired, s.Now())
	}
	s.Run(50)
	if len(fired) != 4 || s.Now() != 50 {
		t.Fatalf("after Run(50): fired %v, now %g", fired, s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want the far event", s.Pending())
	}
	s.RunAll()
	if len(fired) != 5 || s.Now() != 1e7 {
		t.Fatalf("after RunAll: fired %v, now %g", fired, s.Now())
	}
}

// TestWheelCancelAndCompact checks lazy cancellation on the wheel:
// cancelled events never fire, outnumbering cancels trigger a compaction
// pass, and slots are actually reclaimed.
func TestWheelCancelAndCompact(t *testing.T) {
	s := New()
	s.UseWheel(0.01)
	fired := 0
	var handles []Handle
	for i := 0; i < 500; i++ {
		d := Time(i%97)*0.37 + 0.01
		if i%50 == 0 {
			d = 1e8 // some on the far heap
		}
		handles = append(handles, s.After(d, func() { fired++ }))
	}
	for i, h := range handles {
		if i%3 != 0 { // cancel 2 of 3 so cancels outnumber live events
			if !h.Cancel() {
				t.Fatalf("cancel %d failed", i)
			}
		}
	}
	s.RunAll()
	if fired != 167 {
		t.Fatalf("fired %d, want 167", fired)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("expected at least one compaction pass")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending %d after RunAll", s.Pending())
	}
}

// TestWheelResetMatchesFresh checks a Reset (or re-UseWheel) simulator
// reproduces a fresh one bit for bit, the arena-reuse contract.
func TestWheelResetMatchesFresh(t *testing.T) {
	fresh := New()
	fresh.UseWheel(0.2)
	want := runRecorded(t, fresh, 99)

	reused := New()
	reused.UseWheel(0.2)
	runRecorded(t, reused, 7) // dirty it with a different workload
	reused.Reset()
	got := runRecorded(t, reused, 99)
	if len(got) != len(want) {
		t.Fatalf("reused fired %d events, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, fresh fired %+v", i, got[i], want[i])
		}
	}
}

// TestWheelQueueSwitch checks UseWheel/UseHeap flip the queue only while
// empty and report the active kind.
func TestWheelQueueSwitch(t *testing.T) {
	s := New()
	if s.QueueKind() != "heap" {
		t.Fatalf("default queue %q", s.QueueKind())
	}
	s.UseWheel(1)
	if s.QueueKind() != "wheel" {
		t.Fatalf("queue %q after UseWheel", s.QueueKind())
	}
	s.UseHeap()
	s.UseWheel(2) // reuses the parked wheel with a new granularity
	if s.QueueKind() != "wheel" {
		t.Fatalf("queue %q after re-UseWheel", s.QueueKind())
	}
	s.After(1, func() {})
	mustPanic(t, func() { s.UseHeap() })
	mustPanic(t, func() { s.UseWheel(1) })
	s.RunAll()
	s.UseHeap()
	mustPanic(t, func() { s.UseWheel(0) })
	mustPanic(t, func() { s.UseWheel(math.Inf(1)) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// TestWheelInfinityEvent checks +Inf firing times (legal on the heap) are
// clamped into the far bucket and still fire last, in order.
func TestWheelInfinityEvent(t *testing.T) {
	s := New()
	s.UseWheel(0.5)
	var order []int
	s.At(math.Inf(1), func() { order = append(order, 2) })
	s.At(3, func() { order = append(order, 1) })
	s.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v", order)
	}
}
