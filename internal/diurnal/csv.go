package diurnal

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the series as two columns, `seconds,value`, with a
// header row. The format round-trips through ReadCSV and imports cleanly
// into spreadsheet/plotting tools.
func (s Series) WriteCSV(w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", s.Name}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{
			strconv.FormatFloat(float64(i)*s.BinSec, 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a two-column `seconds,value` series written by WriteCSV or
// exported from a monitoring system. The first row is treated as a header
// (the second column's header becomes the series name); timestamps must be
// evenly spaced and ascending — the spacing becomes BinSec.
func ReadCSV(r io.Reader) (Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return Series{}, fmt.Errorf("diurnal: reading CSV: %w", err)
	}
	if len(records) < 3 { // header + at least two samples to fix the bin width
		return Series{}, errors.New("diurnal: CSV needs a header and at least two samples")
	}
	out := Series{Name: records[0][1]}
	var prevT float64
	for i, rec := range records[1:] {
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return Series{}, fmt.Errorf("diurnal: row %d timestamp %q: %w", i+1, rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return Series{}, fmt.Errorf("diurnal: row %d value %q: %w", i+1, rec[1], err)
		}
		switch i {
		case 0:
			if t != 0 {
				return Series{}, fmt.Errorf("diurnal: first timestamp %g, want 0", t)
			}
		case 1:
			if t <= 0 {
				return Series{}, fmt.Errorf("diurnal: non-ascending timestamps at row %d", i+1)
			}
			out.BinSec = t
		default:
			want := prevT + out.BinSec
			if diff := t - want; diff > 1e-6*out.BinSec || diff < -1e-6*out.BinSec {
				return Series{}, fmt.Errorf("diurnal: uneven spacing at row %d (%g, want %g)", i+1, t, want)
			}
		}
		prevT = t
		out.Values = append(out.Values, v)
	}
	if err := out.Validate(); err != nil {
		return Series{}, err
	}
	return out, nil
}
