package diurnal

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig, err := Synthesize(Config{
		Name: "web", Base: 10, Peak: 100, PeakHour: 12, Noise: 0.1, BinSec: 300,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "web" || back.BinSec != 300 {
		t.Fatalf("metadata lost: %q %g", back.Name, back.BinSec)
	}
	if len(back.Values) != len(orig.Values) {
		t.Fatalf("length %d vs %d", len(back.Values), len(orig.Values))
	}
	for i := range orig.Values {
		if back.Values[i] != orig.Values[i] {
			t.Fatalf("value %d changed: %g vs %g", i, back.Values[i], orig.Values[i])
		}
	}
}

func TestWriteCSVInvalidSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := (Series{}).WriteCSV(&buf); err == nil {
		t.Fatal("empty series written")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"too short", "seconds,x\n0,1\n"},
		{"bad timestamp", "seconds,x\nzero,1\n60,2\n120,3\n"},
		{"bad value", "seconds,x\n0,one\n60,2\n120,3\n"},
		{"nonzero start", "seconds,x\n10,1\n70,2\n130,3\n"},
		{"descending", "seconds,x\n0,1\n-60,2\n-120,3\n"},
		{"uneven spacing", "seconds,x\n0,1\n60,2\n200,3\n"},
		{"wrong columns", "seconds,x,y\n0,1,2\n"},
		{"negative value", "seconds,x\n0,1\n60,-5\n120,3\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestReadCSVMinimal(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("seconds,load\n0,5\n30,7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "load" || s.BinSec != 30 || len(s.Values) != 2 {
		t.Fatalf("parsed %+v", s)
	}
}
