// Package diurnal synthesizes diurnal workload time series and computes
// the consolidation-headroom statistics behind the paper's motivation
// (Figs. 1 and 2): the peak of a sum of workloads is lower than the sum of
// their peaks, which is exactly the slack server consolidation converts
// into saved machines. (Formerly internal/trace; renamed to stop colliding
// with the obs JSONL event tracer.)
package diurnal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Series is a regularly sampled workload intensity trace (e.g. requests/s
// per time bin).
type Series struct {
	Name   string
	BinSec float64   // seconds per bin
	Values []float64 // intensity per bin
}

// Validate checks the series.
func (s Series) Validate() error {
	if len(s.Values) == 0 {
		return errors.New("diurnal: empty series")
	}
	if s.BinSec <= 0 || math.IsNaN(s.BinSec) {
		return fmt.Errorf("diurnal: bin width %g", s.BinSec)
	}
	for i, v := range s.Values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("diurnal: bin %d value %g", i, v)
		}
	}
	return nil
}

// Peak reports the series maximum.
func (s Series) Peak() float64 { return stats.Max(s.Values) }

// Mean reports the series mean.
func (s Series) Mean() float64 { return stats.Mean(s.Values) }

// PeakToMean reports the peak-to-mean ratio, the burstiness measure that
// determines consolidation headroom (NaN for a zero-mean series).
func (s Series) PeakToMean() float64 {
	m := s.Mean()
	if m == 0 {
		return math.NaN()
	}
	return s.Peak() / m
}

// Config parameterizes a synthetic one-day workload: a sinusoidal daily
// cycle with a configurable peak hour, plus multiplicative noise — the
// canonical shape of Internet-service traffic the paper's Fig. 2 sketches.
type Config struct {
	Name     string
	Base     float64 // off-peak intensity floor, > 0
	Peak     float64 // peak intensity, >= Base
	PeakHour float64 // hour of day [0, 24) at which the cycle tops out
	Noise    float64 // multiplicative noise amplitude in [0, 1)
	BinSec   float64 // bin width; 0 means 60 s
	Hours    float64 // duration; 0 means 24 h
}

// Synthesize builds the series deterministically from the seed.
func Synthesize(cfg Config, seed uint64) (Series, error) {
	if cfg.Base <= 0 || cfg.Peak < cfg.Base {
		return Series{}, fmt.Errorf("diurnal: base %g, peak %g", cfg.Base, cfg.Peak)
	}
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return Series{}, fmt.Errorf("diurnal: noise %g", cfg.Noise)
	}
	bin := cfg.BinSec
	if bin == 0 {
		bin = 60
	}
	hours := cfg.Hours
	if hours == 0 {
		hours = 24
	}
	n := int(hours * 3600 / bin)
	if n <= 0 {
		return Series{}, fmt.Errorf("diurnal: %g hours at %gs bins", hours, bin)
	}
	// The stream label deliberately keeps the package's pre-rename "trace/"
	// prefix: the label feeds the RNG, so changing it would change every
	// synthesized series and the pinned Fig. 2 outputs built on them.
	s := stats.NewStream(seed, "trace/"+cfg.Name)
	out := Series{Name: cfg.Name, BinSec: bin, Values: make([]float64, n)}
	amp := (cfg.Peak - cfg.Base) / 2
	mid := cfg.Base + amp
	for i := 0; i < n; i++ {
		hour := float64(i) * bin / 3600
		phase := 2 * math.Pi * (hour - cfg.PeakHour) / 24
		v := mid + amp*math.Cos(phase)
		if cfg.Noise > 0 {
			v *= 1 + cfg.Noise*(2*s.Float64()-1)
		}
		if v < 0 {
			v = 0
		}
		out.Values[i] = v
	}
	return out, nil
}

// Sum adds aligned series bin-wise (the consolidated workload). All series
// must share bin width and length.
func Sum(series ...Series) (Series, error) {
	if len(series) == 0 {
		return Series{}, errors.New("diurnal: nothing to sum")
	}
	first := series[0]
	out := Series{Name: "sum", BinSec: first.BinSec, Values: make([]float64, len(first.Values))}
	for _, s := range series {
		if s.BinSec != first.BinSec || len(s.Values) != len(first.Values) {
			return Series{}, fmt.Errorf("diurnal: misaligned series %q", s.Name)
		}
		for i, v := range s.Values {
			out.Values[i] += v
		}
	}
	return out, nil
}

// Headroom is the Fig. 2 consolidation analysis of a set of workloads.
type Headroom struct {
	SumOfPeaks float64 // capacity dedicated hosting must provision
	PeakOfSum  float64 // capacity consolidated hosting must provision
	// Saving is 1 − PeakOfSum/SumOfPeaks: the provisioning fraction
	// consolidation avoids before any virtualization overhead.
	Saving float64
	// ServersDedicated and ServersConsolidated translate the peaks into
	// machine counts given a per-server capacity.
	ServersDedicated    int
	ServersConsolidated int
}

// Analyze computes the headroom of consolidating the given workloads onto
// servers with the given per-server capacity (same intensity unit as the
// series). Dedicated provisioning rounds each service's peak up
// separately; consolidated provisioning rounds the summed peak up once.
func Analyze(serverCapacity float64, series ...Series) (Headroom, error) {
	if serverCapacity <= 0 || math.IsNaN(serverCapacity) {
		return Headroom{}, fmt.Errorf("diurnal: server capacity %g", serverCapacity)
	}
	if len(series) == 0 {
		return Headroom{}, errors.New("diurnal: no series")
	}
	var h Headroom
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return Headroom{}, err
		}
		p := s.Peak()
		h.SumOfPeaks += p
		h.ServersDedicated += int(math.Ceil(p / serverCapacity))
	}
	sum, err := Sum(series...)
	if err != nil {
		return Headroom{}, err
	}
	h.PeakOfSum = sum.Peak()
	h.ServersConsolidated = int(math.Ceil(h.PeakOfSum / serverCapacity))
	if h.SumOfPeaks > 0 {
		h.Saving = 1 - h.PeakOfSum/h.SumOfPeaks
	}
	return h, nil
}

// CapacityLine reports the smallest provisioning level (same unit as the
// series) that keeps the fraction of bins above it at or below
// lossBudget — the horizontal "how many servers are needed to guarantee
// performance ... in some probability level" line of Fig. 2(b). A
// lossBudget of 0 returns the peak.
func CapacityLine(s Series, lossBudget float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if lossBudget < 0 || lossBudget >= 1 {
		return 0, fmt.Errorf("diurnal: loss budget %g", lossBudget)
	}
	return stats.Quantile(s.Values, 1-lossBudget), nil
}
