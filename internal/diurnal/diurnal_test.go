package diurnal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiurnalShape(t *testing.T) {
	s, err := Synthesize(Config{
		Name: "web", Base: 100, Peak: 1000, PeakHour: 14,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 24*60 {
		t.Fatalf("bins = %d", len(s.Values))
	}
	// Peak near the configured hour, trough 12h away.
	peakBin := 14 * 60
	troughBin := 2 * 60
	if math.Abs(s.Values[peakBin]-1000) > 1 {
		t.Fatalf("peak value %g", s.Values[peakBin])
	}
	if math.Abs(s.Values[troughBin]-100) > 1 {
		t.Fatalf("trough value %g", s.Values[troughBin])
	}
	if s.Peak() < s.Mean() {
		t.Fatal("peak below mean")
	}
	if s.PeakToMean() <= 1 {
		t.Fatalf("peak-to-mean %g", s.PeakToMean())
	}
}

func TestDiurnalNoiseAndDeterminism(t *testing.T) {
	cfg := Config{Name: "x", Base: 50, Peak: 200, PeakHour: 10, Noise: 0.2}
	a, err := Synthesize(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthesize(cfg, 7)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed diverged")
		}
	}
	c, _ := Synthesize(cfg, 8)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestDiurnalErrors(t *testing.T) {
	if _, err := Synthesize(Config{Base: 0, Peak: 1}, 1); err == nil {
		t.Fatal("zero base accepted")
	}
	if _, err := Synthesize(Config{Base: 10, Peak: 5}, 1); err == nil {
		t.Fatal("peak < base accepted")
	}
	if _, err := Synthesize(Config{Base: 1, Peak: 2, Noise: 1}, 1); err == nil {
		t.Fatal("noise 1 accepted")
	}
	if _, err := Synthesize(Config{Base: 1, Peak: 2, Hours: 0.001, BinSec: 3600}, 1); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestSumAlignment(t *testing.T) {
	a, _ := Synthesize(Config{Name: "a", Base: 10, Peak: 20, PeakHour: 3}, 1)
	b, _ := Synthesize(Config{Name: "b", Base: 10, Peak: 20, PeakHour: 15}, 2)
	sum, err := Sum(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sum.Values {
		if math.Abs(sum.Values[i]-(a.Values[i]+b.Values[i])) > 1e-12 {
			t.Fatal("sum wrong")
		}
	}
	short := Series{Name: "short", BinSec: 60, Values: []float64{1}}
	if _, err := Sum(a, short); err == nil {
		t.Fatal("misaligned sum accepted")
	}
	if _, err := Sum(); err == nil {
		t.Fatal("empty sum accepted")
	}
}

func TestAnalyzeAntiCorrelatedWorkloads(t *testing.T) {
	// Two services peaking 12 h apart: the consolidated peak is far below
	// the sum of peaks — the Fig. 2 story.
	a, _ := Synthesize(Config{Name: "day", Base: 100, Peak: 1000, PeakHour: 14}, 1)
	b, _ := Synthesize(Config{Name: "night", Base: 100, Peak: 1000, PeakHour: 2}, 2)
	h, err := Analyze(500, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.SumOfPeaks-2000) > 2 {
		t.Fatalf("sum of peaks %g", h.SumOfPeaks)
	}
	// Anti-phased sinusoids sum to a constant mid+mid = 1100.
	if math.Abs(h.PeakOfSum-1100) > 5 {
		t.Fatalf("peak of sum %g", h.PeakOfSum)
	}
	if h.Saving < 0.40 || h.Saving > 0.50 {
		t.Fatalf("saving %g", h.Saving)
	}
	if h.ServersDedicated != 4 || h.ServersConsolidated != 3 {
		t.Fatalf("servers %d -> %d", h.ServersDedicated, h.ServersConsolidated)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	a, _ := Synthesize(Config{Name: "a", Base: 1, Peak: 2}, 1)
	if _, err := Analyze(0, a); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := Analyze(10); err == nil {
		t.Fatal("no series accepted")
	}
	bad := Series{Name: "bad", BinSec: 60, Values: []float64{-1}}
	if _, err := Analyze(10, bad); err == nil {
		t.Fatal("invalid series accepted")
	}
}

func TestCapacityLine(t *testing.T) {
	s := Series{Name: "s", BinSec: 1, Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	// Zero budget: the peak.
	v, err := CapacityLine(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("line = %g", v)
	}
	// 10 % budget: the 90th percentile.
	v, err = CapacityLine(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-9.1) > 1e-12 {
		t.Fatalf("line = %g", v)
	}
	if _, err := CapacityLine(s, 1); err == nil {
		t.Fatal("budget 1 accepted")
	}
	if _, err := CapacityLine(Series{}, 0); err == nil {
		t.Fatal("empty series accepted")
	}
}

// Property: consolidation never needs more provisioning than dedication
// (peak of sum <= sum of peaks) and the saving is in [0, 1).
func TestHeadroomProperty(t *testing.T) {
	f := func(p1, p2 uint8, h1, h2 uint8) bool {
		a, err := Synthesize(Config{
			Name: "a", Base: 10, Peak: 10 + float64(p1),
			PeakHour: float64(h1 % 24), BinSec: 600,
		}, uint64(p1))
		if err != nil {
			return false
		}
		b, err := Synthesize(Config{
			Name: "b", Base: 10, Peak: 10 + float64(p2),
			PeakHour: float64(h2 % 24), BinSec: 600,
		}, uint64(p2))
		if err != nil {
			return false
		}
		hr, err := Analyze(25, a, b)
		if err != nil {
			return false
		}
		return hr.PeakOfSum <= hr.SumOfPeaks+1e-9 && hr.Saving >= 0 && hr.Saving < 1 &&
			hr.ServersConsolidated <= hr.ServersDedicated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
