package diurnal

import "math"

// dayShapeValues is the canonical 24-bin diurnal rate-multiplier profile:
// a night trough and an evening peak around a mean of roughly 1, the
// coarse version of the paper's Fig. 2 daily cycle. It is the single
// source both the load harness (loadgen.DefaultShape) and the scenario
// periods defaulting draw from.
var dayShapeValues = []float64{
	0.3, 0.2, 0.2, 0.2, 0.3, 0.4, 0.6, 0.9, 1.2, 1.4, 1.5, 1.4,
	1.3, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.7, 1.4, 1.0, 0.7, 0.5,
}

// DayShape returns the canonical one-day rate-multiplier series: 24
// hourly bins. The returned series owns its values — callers may mutate
// it freely.
func DayShape() Series {
	return Series{
		Name:   "day-shape",
		BinSec: 3600,
		Values: append([]float64(nil), dayShapeValues...),
	}
}

// At reports the intensity of the bin whose window
// [bin·BinSec, (bin+1)·BinSec) strictly contains t, wrapping t cyclically
// onto the series period (the series describes a repeating day). An
// invalid series (no values, non-positive bin width) reports NaN.
//
// Plain truncation int(t/BinSec) can land one bin early when t sits on a
// bin edge that is not exactly representable: the quotient t/BinSec
// rounds just below the integer, so the lookup reads the previous bin
// whose window has already ended. Like the NHPP rateAt guard, At sweeps
// forward until the window end strictly exceeds t.
func (s Series) At(t float64) float64 {
	n := len(s.Values)
	if n == 0 || !(s.BinSec > 0) || math.IsNaN(t) || math.IsInf(t, 0) {
		return math.NaN()
	}
	period := s.BinSec * float64(n)
	t = math.Mod(t, period)
	if t < 0 {
		t += period
	}
	bin := int(t / s.BinSec)
	if bin >= n {
		bin = n - 1
	}
	for bin+1 < n && float64(bin+1)*s.BinSec <= t {
		bin++
	}
	return s.Values[bin]
}
