package diurnal

import (
	"math"
	"testing"
)

func TestDayShape(t *testing.T) {
	s := DayShape()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 24 || s.BinSec != 3600 {
		t.Fatalf("day shape is %d bins of %gs", len(s.Values), s.BinSec)
	}
	// The canonical shape keeps a mean near 1 (it multiplies base rates)
	// and a clear evening peak over the night trough.
	if m := s.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("day shape mean %g", m)
	}
	if s.Peak() != 1.8 || s.Values[2] != 0.2 {
		t.Fatalf("day shape drifted: peak %g, 2am %g", s.Peak(), s.Values[2])
	}
	// The returned series owns its values.
	s.Values[0] = 99
	if DayShape().Values[0] == 99 {
		t.Fatal("DayShape aliases its backing array")
	}
}

func TestSeriesAt(t *testing.T) {
	s := Series{BinSec: 10, Values: []float64{1, 2, 3}}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 1}, {9.999, 1}, {10, 2}, {25, 3}, {29.999, 3},
		{30, 1},  // wraps onto the next day
		{65, 1},  // two full periods in
		{-5, 3},  // negative times wrap backwards
		{-30, 1}, // exactly one period back
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if !math.IsNaN((Series{}).At(1)) || !math.IsNaN(s.At(math.Inf(1))) {
		t.Error("invalid lookups must report NaN")
	}
}

// TestSeriesAtBoundaryBins pins the float-truncation contract At shares
// with the NHPP rateAt guard: with a bin width that is not exactly
// representable (1/80 s here), a time sitting exactly on a bin edge can
// make int(t/BinSec) round one bin low, so a naive lookup reads a bin
// whose window has already ended. At must report the bin whose window
// strictly contains t.
func TestSeriesAtBoundaryBins(t *testing.T) {
	const binSec = 0.0125
	// Find a boundary whose quotient rounds down across the integer.
	k := 0
	for i := 1; i < 1_000_000; i++ {
		edge := float64(i) * binSec
		if int(edge/binSec) < i {
			k = i
			break
		}
	}
	if k == 0 {
		t.Skip("no truncating boundary below 1e6 for this bin width")
	}
	n := k + 2 // keep the truncating edge interior to one period
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	s := Series{BinSec: binSec, Values: values}
	edge := float64(k) * binSec
	if got := s.At(edge); got != float64(k) {
		t.Fatalf("At(edge %d) = %g, want %d (read the already-ended bin)", k, got, k)
	}
}
