package erlang

import (
	"fmt"
	"math"
)

// BContinuous extends the Erlang B formula to a non-integral number of
// servers x >= 0 using the classical integral representation
//
//	1/B(x, ρ) = ρ · ∫₀^∞ e^(−ρt) · (1+t)^x dt
//
// (Jagerman 1974). The continuous extension is the right tool for
// heterogeneous pools whose summed capability is fractional in
// reference-server units (core.HeterogeneousLoss): it interpolates the
// integer Erlang B values smoothly and exactly agrees with B(n, ρ) at
// integers.
//
// The integral is evaluated with an adaptive Simpson rule on the
// substituted form u = ρt (so the integrand decays as e^−u), split at the
// integrand's scale. Accuracy is ~1e-10 relative over the practical range
// (x ≤ ~10⁴, ρ ≤ ~10⁴); the test suite checks agreement with the integer
// recursion.
func BContinuous(x, rho float64) (float64, error) {
	if x < 0 || rho < 0 || math.IsNaN(x) || math.IsNaN(rho) || math.IsInf(x, 0) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: BContinuous(x=%g, rho=%g)", ErrInvalidInput, x, rho)
	}
	if rho == 0 {
		if x == 0 {
			return 1, nil
		}
		return 0, nil
	}
	// Large loads/pools: downshift with the recursion B(x) from B(x-1):
	// the integral only needs the fractional part, improving conditioning.
	frac := x - math.Floor(x)
	steps := int(math.Floor(x))
	b, err := bContinuousSmall(frac, rho)
	if err != nil {
		return 0, err
	}
	for k := 1; k <= steps; k++ {
		// Same recursion as Eq. (2) with non-integer index:
		// B(y, ρ) = ρ·B(y−1, ρ) / (y + ρ·B(y−1, ρ)).
		y := frac + float64(k)
		b = rho * b / (y + rho*b)
	}
	return b, nil
}

// bContinuousSmall evaluates the integral representation for 0 <= x < 1.
func bContinuousSmall(x, rho float64) (float64, error) {
	if x == 0 {
		return 1, nil
	}
	// 1/B = ρ ∫₀^∞ e^{−ρt} (1+t)^x dt. Substituting u = ρt:
	// 1/B = ∫₀^∞ e^{−u} (1 + u/ρ)^x du.
	f := func(u float64) float64 {
		return math.Exp(-u) * math.Pow(1+u/rho, x)
	}
	// The integrand decays like e^{-u} with a subpolynomial factor
	// ((1+u/ρ)^x with x<1), so truncating at u = 60 + 10x leaves a
	// remainder below e^-50 relative. Integrate adaptively.
	upper := 60.0 + 10*x
	integral := adaptiveSimpson(f, 0, upper, 1e-12, 30)
	if integral <= 0 || math.IsNaN(integral) {
		return 0, fmt.Errorf("erlang: continuous integral failed for x=%g rho=%g", x, rho)
	}
	return 1 / integral, nil
}

// adaptiveSimpson integrates f over [a, b] with tolerance eps and maximum
// recursion depth.
func adaptiveSimpson(f func(float64) float64, a, b, eps float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	s := simpson(fa, fc, fb, b-a)
	return adaptiveSimpsonAux(f, a, b, eps, s, fa, fb, fc, depth)
}

func simpson(fa, fm, fb, h float64) float64 {
	return h / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, eps, whole, fa, fb, fc float64, depth int) float64 {
	c := (a + b) / 2
	d := (a + c) / 2
	e := (c + b) / 2
	fd, fe := f(d), f(e)
	left := simpson(fa, fd, fc, c-a)
	right := simpson(fc, fe, fb, b-c)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*eps*(1+math.Abs(whole)) {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, c, eps/2, left, fa, fc, fd, depth-1) +
		adaptiveSimpsonAux(f, c, b, eps/2, right, fc, fb, fe, depth-1)
}

// ServersContinuous reports the smallest fractional server count x (to the
// given resolution, default 1e-6) with BContinuous(x, rho) <= target — the
// capability-units sizing companion for heterogeneous pools.
func ServersContinuous(rho, target, resolution float64) (float64, error) {
	if rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: ServersContinuous(rho=%g)", ErrInvalidInput, rho)
	}
	if target <= 0 || target > 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("%w: ServersContinuous(target=%g)", ErrInvalidInput, target)
	}
	if resolution <= 0 {
		resolution = 1e-6
	}
	if rho == 0 {
		return 0, nil
	}
	// Bracket with the integer search, then bisect the final unit.
	n, err := Servers(rho, target, 0)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	lo, hi := float64(n-1), float64(n)
	for hi-lo > resolution {
		mid := (lo + hi) / 2
		b, err := BContinuous(mid, rho)
		if err != nil {
			return 0, err
		}
		if b <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
