package erlang

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBContinuousMatchesIntegerRecursion(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 10, 50, 200} {
		for _, rho := range []float64{0.1, 1, 2.5, 10, 100} {
			want := MustB(n, rho)
			got, err := BContinuous(float64(n), rho)
			if err != nil {
				t.Fatalf("BContinuous(%d, %g): %v", n, rho, err)
			}
			if math.Abs(got-want) > 1e-8*(1+want) {
				t.Errorf("BContinuous(%d, %g) = %.12g, recursion %.12g", n, rho, got, want)
			}
		}
	}
}

func TestBContinuousInterpolatesMonotonically(t *testing.T) {
	// Between consecutive integers, B is strictly decreasing in x.
	rho := 2.0
	prev, _ := BContinuous(1, rho)
	for x := 1.1; x <= 3.001; x += 0.1 {
		b, err := BContinuous(x, rho)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("B not decreasing at x=%.1f: %g >= %g", x, b, prev)
		}
		prev = b
	}
}

func TestBContinuousBrackets(t *testing.T) {
	// The fractional value sits between the integer neighbours.
	for _, rho := range []float64{0.5, 1.52, 5} {
		for _, x := range []float64{0.5, 1.25, 2.75, 3.5} {
			lo := MustB(int(math.Ceil(x)), rho)
			hi := MustB(int(math.Floor(x)), rho)
			b, err := BContinuous(x, rho)
			if err != nil {
				t.Fatal(err)
			}
			if b < lo-1e-12 || b > hi+1e-12 {
				t.Errorf("B(%g, %g) = %g outside [%g, %g]", x, rho, b, lo, hi)
			}
		}
	}
}

func TestBContinuousEdgeCases(t *testing.T) {
	if b, _ := BContinuous(0, 0); b != 1 {
		t.Fatal("B(0,0) != 1")
	}
	if b, _ := BContinuous(2.5, 0); b != 0 {
		t.Fatal("B(2.5, 0) != 0")
	}
	for _, bad := range [][2]float64{{-1, 1}, {1, -1}, {math.NaN(), 1}, {1, math.Inf(1)}} {
		if _, err := BContinuous(bad[0], bad[1]); err == nil {
			t.Errorf("BContinuous(%v) accepted", bad)
		}
	}
}

func TestServersContinuous(t *testing.T) {
	rho, target := 1.52, 0.05
	x, err := ServersContinuous(rho, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Must satisfy the target...
	b, _ := BContinuous(x, rho)
	if b > target+1e-9 {
		t.Fatalf("B(%g) = %g exceeds target", x, b)
	}
	// ...and be tight within the resolution.
	b2, _ := BContinuous(x-1e-3, rho)
	if b2 <= target {
		t.Fatalf("x = %g not minimal (B(x-0.001) = %g)", x, b2)
	}
	// The integer answer brackets the fractional one.
	n, _ := Servers(rho, target, 0)
	if x > float64(n) || x < float64(n-1) {
		t.Fatalf("x = %g outside (%d-1, %d]", x, n, n)
	}
}

func TestServersContinuousEdge(t *testing.T) {
	if x, err := ServersContinuous(0, 0.01, 0); err != nil || x != 0 {
		t.Fatalf("zero traffic: x=%g err=%v", x, err)
	}
	if _, err := ServersContinuous(-1, 0.01, 0); err == nil {
		t.Fatal("negative traffic accepted")
	}
	if _, err := ServersContinuous(1, 0, 0); err == nil {
		t.Fatal("zero target accepted")
	}
}

// Property: BContinuous stays in (0, 1], decreases in x and increases in ρ.
func TestBContinuousProperties(t *testing.T) {
	f := func(xRaw, rhoRaw uint16) bool {
		x := float64(xRaw%800)/10 + 0.05
		rho := float64(rhoRaw%500)/10 + 0.05
		b, err := BContinuous(x, rho)
		if err != nil || b <= 0 || b > 1 {
			return false
		}
		b2, err := BContinuous(x+0.3, rho)
		if err != nil || b2 > b+1e-12 {
			return false
		}
		b3, err := BContinuous(x, rho*1.2)
		return err == nil && b3 >= b-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBContinuous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = BContinuous(42.7, 38.5)
	}
}
