package erlang

import (
	"fmt"
	"math"
)

// This file adds the Engset loss model: the finite-source counterpart of
// Erlang B. The paper drives its DB service with a *finite* population of
// TPC-W emulated browsers, each thinking for a mean time 1/α between
// requests — exactly the Engset setting. With few sources, blocking is
// lower than Erlang B predicts at the same offered load (a blocked or
// in-service customer generates no new arrivals); as the population grows
// with per-source rate shrinking, Engset converges to Erlang B, which is
// why the paper's Poisson approximation is adequate at hundreds of EBs.

// Engset computes the (call-congestion) blocking probability of a loss
// system with n servers and N sources, each generating requests at rate
// alpha while idle, with mean service time 1/mu. It uses the stable
// recursion over n:
//
//	E₀ = 1,  Eⱼ = (N−j)·a·Eⱼ₋₁ / (j + (N−j)·a·Eⱼ₋₁),  a = alpha/mu
//
// which gives the probability an *arriving* request finds all servers
// busy (call congestion, the quantity comparable to the paper's B).
// Engset requires N >= 1 source and returns Erlang-B-like edge behaviour:
// 0 blocking when n >= N (a server per source always exists).
func Engset(n, sources int, alpha, mu float64) (float64, error) {
	if n < 0 || sources < 1 {
		return 0, fmt.Errorf("%w: Engset(n=%d, N=%d)", ErrInvalidInput, n, sources)
	}
	if alpha <= 0 || mu <= 0 || math.IsNaN(alpha) || math.IsNaN(mu) ||
		math.IsInf(alpha, 0) || math.IsInf(mu, 0) {
		return 0, fmt.Errorf("%w: Engset(alpha=%g, mu=%g)", ErrInvalidInput, alpha, mu)
	}
	if n >= sources {
		return 0, nil
	}
	if n == 0 {
		return 1, nil
	}
	a := alpha / mu
	// Call congestion for N sources equals time congestion for N−1
	// sources (the arriving customer sees the system without itself):
	// recurse with N−1.
	m := float64(sources - 1)
	e := 1.0
	for j := 1; j <= n; j++ {
		fj := float64(j)
		e = (m - fj + 1) * a * e / (fj + (m-fj+1)*a*e)
	}
	return e, nil
}

// EngsetOfferedRate reports the effective mean arrival rate of the Engset
// population: sources cycling between thinking (rate alpha while idle) and
// being served. It solves the fixed point λ = N·alpha·(1−λ/(N·alpha) −
// λ/(N·mu_total))… in the simplified form used for reporting: each source
// contributes alpha/(1+a(1−B)) requests per unit time is beyond what the
// experiments need, so this helper returns the zero-blocking upper bound
//
//	λ ≈ N / (1/alpha + 1/mu)
//
// — N browsers each completing a think-serve cycle of mean length
// 1/alpha + 1/mu. It matches the cluster simulator's closed-loop
// throughput under light load (Little's law) and is the quantity the
// paper's EB counts translate to.
func EngsetOfferedRate(sources int, alpha, mu float64) (float64, error) {
	if sources < 1 || alpha <= 0 || mu <= 0 {
		return 0, fmt.Errorf("%w: EngsetOfferedRate(N=%d, alpha=%g, mu=%g)",
			ErrInvalidInput, sources, alpha, mu)
	}
	return float64(sources) / (1/alpha + 1/mu), nil
}

// EngsetServers reports the smallest n with Engset call congestion at most
// target — the finite-source analogue of Servers.
func EngsetServers(sources int, alpha, mu, target float64) (int, error) {
	if target <= 0 || target > 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("%w: EngsetServers(target=%g)", ErrInvalidInput, target)
	}
	for n := 0; n <= sources; n++ {
		b, err := Engset(n, sources, alpha, mu)
		if err != nil {
			return 0, err
		}
		if b <= target {
			return n, nil
		}
	}
	return sources, nil
}
