package erlang

import (
	"math"
	"testing"
	"testing/quick"
)

// engsetDirect computes Engset call congestion from the truncated binomial
// stationary distribution with N−1 sources — an independent oracle.
func engsetDirect(n, sources int, a float64) float64 {
	if n >= sources {
		return 0
	}
	m := sources - 1
	// E = C(m, n) a^n / Σ_{k=0..n} C(m, k) a^k, computed in log space.
	logTerm := func(k int) float64 {
		lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
		return lg(float64(m+1)) - lg(float64(k+1)) - lg(float64(m-k+1)) + float64(k)*math.Log(a)
	}
	maxLog := math.Inf(-1)
	for k := 0; k <= n; k++ {
		if lt := logTerm(k); lt > maxLog {
			maxLog = lt
		}
	}
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += math.Exp(logTerm(k) - maxLog)
	}
	return math.Exp(logTerm(n)-maxLog) / sum
}

func TestEngsetMatchesDirectFormula(t *testing.T) {
	for _, c := range []struct {
		n, sources int
		a          float64
	}{
		{1, 2, 0.5}, {2, 5, 0.3}, {4, 10, 0.8}, {10, 50, 0.2}, {20, 200, 0.15},
	} {
		got, err := Engset(c.n, c.sources, c.a, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := engsetDirect(c.n, c.sources, c.a)
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Errorf("Engset(%d, %d, a=%g) = %.10g, direct %.10g", c.n, c.sources, c.a, got, want)
		}
	}
}

func TestEngsetEdgeCases(t *testing.T) {
	// Enough servers for every source: no blocking.
	if b, _ := Engset(5, 5, 1, 1); b != 0 {
		t.Fatal("n >= N should not block")
	}
	if b, _ := Engset(10, 5, 1, 1); b != 0 {
		t.Fatal("n > N should not block")
	}
	// No servers: always blocked.
	if b, _ := Engset(0, 5, 1, 1); b != 1 {
		t.Fatal("n = 0 should always block")
	}
	for _, bad := range []struct {
		n, src    int
		alpha, mu float64
	}{
		{-1, 5, 1, 1}, {1, 0, 1, 1}, {1, 5, 0, 1}, {1, 5, 1, 0},
		{1, 5, math.NaN(), 1}, {1, 5, 1, math.Inf(1)},
	} {
		if _, err := Engset(bad.n, bad.src, bad.alpha, bad.mu); err == nil {
			t.Errorf("Engset(%+v) accepted", bad)
		}
	}
}

func TestEngsetConvergesToErlangB(t *testing.T) {
	// Fix the offered load at rho = N·a/(1+a) ≈ 4 Erlangs while N grows:
	// Engset call congestion approaches Erlang B.
	n := 6
	rho := 4.0
	want := MustB(n, rho)
	var prevGap float64 = math.Inf(1)
	for _, sources := range []int{10, 50, 200, 2000} {
		// Choose a so that offered load N·a/(1+a) = rho.
		a := rho / (float64(sources) - rho)
		b, err := Engset(n, sources, a, 1)
		if err != nil {
			t.Fatal(err)
		}
		gap := math.Abs(b - want)
		if gap > prevGap+1e-12 {
			t.Fatalf("N=%d: gap %.6f grew from %.6f", sources, gap, prevGap)
		}
		prevGap = gap
	}
	if prevGap > 0.002 {
		t.Fatalf("Engset did not converge to Erlang B: final gap %.5f", prevGap)
	}
}

func TestEngsetBelowErlangB(t *testing.T) {
	// At equal offered load, finite sources block LESS than Poisson
	// arrivals: blocked sources stop generating.
	n, sources := 4, 12
	rho := 3.0
	a := rho / (float64(sources) - rho)
	engset, _ := Engset(n, sources, a, 1)
	erlang := MustB(n, rho)
	if engset >= erlang {
		t.Fatalf("Engset %.5f >= Erlang B %.5f at equal load", engset, erlang)
	}
}

func TestEngsetOfferedRate(t *testing.T) {
	// 100 EBs, 7 s think, 10 ms service: λ ≈ 100/7.01 ≈ 14.27/s — the
	// Little's-law value the cluster simulator reproduces.
	rate, err := EngsetOfferedRate(100, 1.0/7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-100/7.01) > 1e-9 {
		t.Fatalf("offered rate %.4f", rate)
	}
	if _, err := EngsetOfferedRate(0, 1, 1); err == nil {
		t.Fatal("zero sources accepted")
	}
}

func TestEngsetServers(t *testing.T) {
	sources, alpha, mu := 50, 0.2, 1.0
	n, err := EngsetServers(sources, alpha, mu, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Engset(n, sources, alpha, mu)
	if b > 0.01 {
		t.Fatalf("sized %d servers but blocking %.4f", n, b)
	}
	if n > 0 {
		prev, _ := Engset(n-1, sources, alpha, mu)
		if prev <= 0.01 {
			t.Fatalf("sizing not minimal: n-1 blocks only %.4f", prev)
		}
	}
	if _, err := EngsetServers(10, 1, 1, 0); err == nil {
		t.Fatal("zero target accepted")
	}
}

// Property: Engset blocking lies in [0, 1], decreases with servers and
// increases with per-source demand.
func TestEngsetProperties(t *testing.T) {
	f := func(nRaw, srcRaw uint8, aRaw uint16) bool {
		sources := int(srcRaw)%100 + 2
		n := int(nRaw) % sources
		a := float64(aRaw)/2000 + 0.01
		b, err := Engset(n, sources, a, 1)
		if err != nil || b < 0 || b > 1 {
			return false
		}
		b2, err := Engset(n+1, sources, a, 1)
		if err != nil || b2 > b+1e-12 {
			return false
		}
		b3, err := Engset(n, sources, a*1.5, 1)
		return err == nil && b3 >= b-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
