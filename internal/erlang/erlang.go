// Package erlang implements the Erlang loss machinery the paper's utility
// analytic model is built on (Section III-A): the Erlang B loss formula
// computed by the numerically stable recursion of Eq. (2), its inverses over
// the number of servers and over the offered traffic, the Erlang C delay
// formula, and supporting quantities (carried traffic, per-server
// utilization).
//
// Throughout, traffic ρ = λ/μ is the offered load in Erlangs, n is the
// number of servers (the paper's "capability units"), and B is the loss
// (blocking) probability. By the PASTA property, the time-blocking
// probability p_n and the call-blocking probability B coincide for Poisson
// arrivals — the identity the paper states below Eq. (1).
package erlang

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidInput reports out-of-domain arguments (negative traffic,
// negative server counts, probabilities outside (0,1), ...).
var ErrInvalidInput = errors.New("erlang: invalid input")

// B computes the Erlang B blocking probability for n servers offered ρ
// Erlangs of Poisson traffic, using the stable forward recursion
//
//	E₀(ρ) = 1,   Eₙ(ρ) = ρ·Eₙ₋₁(ρ) / (n + ρ·Eₙ₋₁(ρ))
//
// which is Eq. (2) of the paper. The recursion avoids the factorial
// overflow of the closed form (Eq. 1) and is exact in exact arithmetic.
// B returns an error if ρ < 0 or n < 0. By convention B(0, ρ) = 1 for
// ρ > 0 (no servers lose everything) and B(n, 0) = 0 for n > 0.
func B(n int, rho float64) (float64, error) {
	if n < 0 || rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: B(n=%d, rho=%g)", ErrInvalidInput, n, rho)
	}
	if rho == 0 {
		if n == 0 {
			return 1, nil
		}
		return 0, nil
	}
	b := 1.0
	for k := 1; k <= n; k++ {
		b = rho * b / (float64(k) + rho*b)
	}
	return b, nil
}

// MustB is B for inputs known to be valid; it panics on error. It exists
// for table literals and tests.
func MustB(n int, rho float64) float64 {
	b, err := B(n, rho)
	if err != nil {
		panic(err)
	}
	return b
}

// BClosedForm computes Erlang B by the textbook closed form of Eq. (1),
//
//	B = (ρⁿ/n!) / Σ_{k=0..n} ρᵏ/k!
//
// evaluated in log space to avoid overflow. It exists as an independent
// oracle for testing the recursion; production code should use B.
func BClosedForm(n int, rho float64) (float64, error) {
	if n < 0 || rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: BClosedForm(n=%d, rho=%g)", ErrInvalidInput, n, rho)
	}
	if rho == 0 {
		if n == 0 {
			return 1, nil
		}
		return 0, nil
	}
	logRho := math.Log(rho)
	// log(ρᵏ/k!) for k = 0..n; normalize by the max to avoid overflow when
	// exponentiating.
	logTerms := make([]float64, n+1)
	maxLog := math.Inf(-1)
	for k := 0; k <= n; k++ {
		logTerms[k] = float64(k)*logRho - logGamma(float64(k)+1)
		if logTerms[k] > maxLog {
			maxLog = logTerms[k]
		}
	}
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += math.Exp(logTerms[k] - maxLog)
	}
	return math.Exp(logTerms[n]-maxLog) / sum, nil
}

func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Servers returns the smallest number of servers n such that
// B(n, rho) <= target — the iterative sizing step in the paper's Fig. 4
// ("when Eₙ(ρ) <= B is satisfied firstly, n is the result"). The target
// loss probability must lie in (0, 1]. maxServers caps the search to keep
// pathological inputs (target → 0 with huge ρ) bounded; pass 0 for the
// default cap of 10 million.
func Servers(rho, target float64, maxServers int) (int, error) {
	if rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: Servers(rho=%g)", ErrInvalidInput, rho)
	}
	if target <= 0 || target > 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("%w: Servers(target=%g)", ErrInvalidInput, target)
	}
	if maxServers <= 0 {
		maxServers = 10_000_000
	}
	if rho == 0 {
		return 0, nil
	}
	b := 1.0
	if b <= target {
		return 0, nil
	}
	// Carried traffic cannot exceed the server count, so B(n, ρ) ≥ 1 − n/ρ:
	// every n below ρ(1 − target) is guaranteed to fail the test. Seed the
	// search there, running the recursion branch-free up to that point
	// (shaved by two steps to absorb floating-point slack in the bound),
	// then continue stepping with the threshold check. Identical results to
	// the full scan — the recursion values are the same — without testing
	// the ~ρ server counts that cannot possibly qualify.
	skip := int(rho*(1-target)) - 2
	if skip > maxServers {
		skip = maxServers
	}
	n := 1
	for ; n <= skip; n++ {
		b = rho * b / (float64(n) + rho*b)
	}
	for ; n <= maxServers; n++ {
		b = rho * b / (float64(n) + rho*b)
		if b <= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("erlang: Servers(rho=%g, target=%g) exceeds cap %d", rho, target, maxServers)
}

// Traffic returns the largest offered traffic ρ such that B(n, ρ) <= target,
// i.e. the admissible-load inverse of Erlang B. It is the quantity behind
// the paper's workload-selection rule ("the intensive workload that the
// servers can afford", Section IV-C.2): the heaviest Poisson load n servers
// can carry at the given loss probability. n must be positive and target in
// (0, 1).
func Traffic(n int, target float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: Traffic(n=%d)", ErrInvalidInput, n)
	}
	if target <= 0 || target >= 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("%w: Traffic(target=%g)", ErrInvalidInput, target)
	}
	// B(n, ρ) is continuous and strictly increasing in ρ on (0, ∞) with
	// limits 0 and 1, so bisection on ρ converges. Bracket the root first.
	lo, hi := 0.0, float64(n)
	for {
		b, _ := B(n, hi)
		if b > target {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("erlang: Traffic(n=%d, target=%g) failed to bracket", n, target)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		b, _ := B(n, mid)
		if b <= target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
	}
	return lo, nil
}

// C computes the Erlang C probability that an arriving request must wait in
// an M/M/n queue with offered traffic ρ Erlangs. It requires ρ < n for
// stability (otherwise every request waits and C returns 1). Although the
// paper's model is a pure loss model, Erlang C is the natural companion for
// the response-time view of the cluster simulator.
func C(n int, rho float64) (float64, error) {
	if n <= 0 || rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: C(n=%d, rho=%g)", ErrInvalidInput, n, rho)
	}
	if rho >= float64(n) {
		return 1, nil
	}
	b, err := B(n, rho)
	if err != nil {
		return 0, err
	}
	// Standard identity: C = n·B / (n - ρ(1-B)).
	return float64(n) * b / (float64(n) - rho*(1-b)), nil
}

// CarriedTraffic reports the traffic actually carried by n servers offered
// ρ Erlangs: ρ·(1 − B(n, ρ)).
func CarriedTraffic(n int, rho float64) (float64, error) {
	b, err := B(n, rho)
	if err != nil {
		return 0, err
	}
	return rho * (1 - b), nil
}

// Utilization reports the mean per-server utilization of n servers offered
// ρ Erlangs: carried traffic divided by n. Utilization(0, ρ) is 0 by
// convention.
func Utilization(n int, rho float64) (float64, error) {
	if n == 0 {
		return 0, nil
	}
	c, err := CarriedTraffic(n, rho)
	if err != nil {
		return 0, err
	}
	return c / float64(n), nil
}

// MeanWaitMM reports the mean waiting time in queue of an M/M/n system with
// arrival rate lambda and per-server rate mu (Erlang C × 1/(nμ−λ)). It
// returns +Inf for unstable systems.
func MeanWaitMM(n int, lambda, mu float64) (float64, error) {
	if n <= 0 || lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("%w: MeanWaitMM(n=%d, lambda=%g, mu=%g)", ErrInvalidInput, n, lambda, mu)
	}
	rho := lambda / mu
	if rho >= float64(n) {
		return math.Inf(1), nil
	}
	c, err := C(n, rho)
	if err != nil {
		return 0, err
	}
	return c / (float64(n)*mu - lambda), nil
}

// StateDistribution returns the stationary distribution π₀..πₙ of the
// number of busy servers in an M/G/n/n loss system offered ρ Erlangs —
// the truncated-Poisson form underlying Eq. (1). The Erlang insensitivity
// theorem makes this valid for any service-time distribution with the same
// mean, which the simulation test suite verifies empirically.
func StateDistribution(n int, rho float64) ([]float64, error) {
	if n < 0 || rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return nil, fmt.Errorf("%w: StateDistribution(n=%d, rho=%g)", ErrInvalidInput, n, rho)
	}
	pi := make([]float64, n+1)
	// Compute ρᵏ/k! relative to the largest term for stability.
	logRho := math.Log(rho)
	if rho == 0 {
		pi[0] = 1
		return pi, nil
	}
	maxLog := math.Inf(-1)
	logs := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		logs[k] = float64(k)*logRho - logGamma(float64(k)+1)
		if logs[k] > maxLog {
			maxLog = logs[k]
		}
	}
	sum := 0.0
	for k := 0; k <= n; k++ {
		pi[k] = math.Exp(logs[k] - maxLog)
		sum += pi[k]
	}
	for k := 0; k <= n; k++ {
		pi[k] /= sum
	}
	return pi, nil
}
