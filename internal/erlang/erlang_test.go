package erlang

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// Classic textbook values for Erlang B (Gross & Harris / standard traffic
// tables), to four significant figures.
func TestBKnownValues(t *testing.T) {
	cases := []struct {
		n    int
		rho  float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{3, 1, 1.0 / 16.0},
		{5, 3, 0.1101},
		{10, 5, 0.01838},
		{10, 9, 0.1680},
		{20, 12, 0.009796}, // verified with exact rational arithmetic
		{100, 90, 0.026957},
	}
	for _, c := range cases {
		got, err := B(c.n, c.rho)
		if err != nil {
			t.Fatalf("B(%d, %g): %v", c.n, c.rho, err)
		}
		if math.Abs(got-c.want)/c.want > 5e-4 {
			t.Errorf("B(%d, %g) = %.6f, want %.6f", c.n, c.rho, got, c.want)
		}
	}
}

func TestBEdgeCases(t *testing.T) {
	if b, _ := B(0, 2); b != 1 {
		t.Fatalf("B(0, 2) = %g, want 1", b)
	}
	if b, _ := B(0, 0); b != 1 {
		t.Fatalf("B(0, 0) = %g, want 1", b)
	}
	if b, _ := B(3, 0); b != 0 {
		t.Fatalf("B(3, 0) = %g, want 0", b)
	}
}

func TestBInvalidInputs(t *testing.T) {
	for _, c := range []struct {
		n   int
		rho float64
	}{{-1, 1}, {1, -1}, {1, math.NaN()}, {1, math.Inf(1)}} {
		if _, err := B(c.n, c.rho); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("B(%d, %g) should fail", c.n, c.rho)
		}
	}
}

func TestMustBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustB(-1, 1) did not panic")
		}
	}()
	MustB(-1, 1)
}

func TestBMatchesClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10, 50, 170, 500} {
		for _, rho := range []float64{0.1, 1, 5, 25, 100, 400} {
			rec, err := B(n, rho)
			if err != nil {
				t.Fatal(err)
			}
			cf, err := BClosedForm(n, rho)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rec-cf) > 1e-10*(1+cf) {
				t.Errorf("B(%d, %g): recursion %.12g vs closed form %.12g", n, rho, rec, cf)
			}
		}
	}
}

func TestBLargeScaleStability(t *testing.T) {
	// The recursion must stay finite and in (0, 1) far beyond where the
	// naive factorial form overflows (n! overflows float64 at n = 171).
	b, err := B(10000, 9800)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 || b >= 1 || math.IsNaN(b) {
		t.Fatalf("B(10000, 9800) = %g", b)
	}
}

// Property: B ∈ [0, 1], decreasing in n, increasing in ρ.
func TestBProperties(t *testing.T) {
	f := func(nRaw uint8, rhoRaw uint16) bool {
		n := int(nRaw)%200 + 1
		rho := float64(rhoRaw)/100 + 0.01
		b0, err := B(n, rho)
		if err != nil || b0 < 0 || b0 > 1 {
			return false
		}
		b1, err := B(n+1, rho)
		if err != nil || b1 > b0 {
			return false // adding a server cannot increase blocking
		}
		b2, err := B(n, rho*1.1)
		if err != nil || b2 < b0 {
			return false // more traffic cannot decrease blocking
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestServers(t *testing.T) {
	cases := []struct {
		rho    float64
		target float64
		want   int
	}{
		{0, 0.01, 0},
		{1, 0.5, 1},
		{1, 0.2, 2},
		{1, 0.0625, 3},
		{5, 0.02, 10}, // B(10,5)=0.0184<=0.02, B(9,5)=0.0375>0.02
	}
	for _, c := range cases {
		got, err := Servers(c.rho, c.target, 0)
		if err != nil {
			t.Fatalf("Servers(%g, %g): %v", c.rho, c.target, err)
		}
		if got != c.want {
			t.Errorf("Servers(%g, %g) = %d, want %d", c.rho, c.target, got, c.want)
		}
	}
}

func TestServersIsMinimal(t *testing.T) {
	// Property: the returned n satisfies the target and n-1 does not.
	f := func(rhoRaw uint16, tRaw uint8) bool {
		rho := float64(rhoRaw)/50 + 0.05
		target := (float64(tRaw)/256)*0.4 + 0.001
		n, err := Servers(rho, target, 0)
		if err != nil {
			return false
		}
		bn, _ := B(n, rho)
		if bn > target {
			return false
		}
		if n > 0 {
			prev, _ := B(n-1, rho)
			if prev <= target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServersInvalid(t *testing.T) {
	if _, err := Servers(-1, 0.1, 0); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("negative traffic should fail")
	}
	if _, err := Servers(1, 0, 0); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("zero target should fail")
	}
	if _, err := Servers(1, 1.5, 0); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("target > 1 should fail")
	}
}

func TestServersCap(t *testing.T) {
	if _, err := Servers(1e6, 1e-9, 10); err == nil {
		t.Fatal("cap should trigger")
	}
}

func TestTrafficRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 4, 8, 50} {
		for _, target := range []float64{0.01, 0.02, 0.05, 0.2} {
			rho, err := Traffic(n, target)
			if err != nil {
				t.Fatalf("Traffic(%d, %g): %v", n, target, err)
			}
			// At the admissible traffic, exactly n servers are needed.
			b, _ := B(n, rho)
			if b > target+1e-9 {
				t.Errorf("Traffic(%d, %g) = %g but B = %g exceeds target", n, target, rho, b)
			}
			// Offering 1 % more traffic should violate the target (tightness).
			b2, _ := B(n, rho*1.01)
			if b2 <= target {
				t.Errorf("Traffic(%d, %g) = %g is not tight (B at 1.01rho = %g)", n, target, rho, b2)
			}
		}
	}
}

func TestTrafficInvalid(t *testing.T) {
	if _, err := Traffic(0, 0.1); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("zero servers should fail")
	}
	if _, err := Traffic(3, 0); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("zero target should fail")
	}
	if _, err := Traffic(3, 1); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("target=1 should fail")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/2 with rho=1: C = 1/3 (standard result).
	c, err := C(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1.0/3.0) > 1e-12 {
		t.Fatalf("C(2, 1) = %g, want 1/3", c)
	}
	// Unstable system: everyone waits.
	c, _ = C(2, 3)
	if c != 1 {
		t.Fatalf("C(2, 3) = %g, want 1", c)
	}
}

func TestErlangCBoundsB(t *testing.T) {
	// C >= B always (waiting is more likely than loss at same load).
	for _, n := range []int{1, 2, 5, 20} {
		for _, rho := range []float64{0.1, 0.5 * float64(n), 0.9 * float64(n)} {
			b, _ := B(n, rho)
			c, _ := C(n, rho)
			if c < b-1e-12 {
				t.Errorf("C(%d,%g)=%g < B=%g", n, rho, c, b)
			}
		}
	}
}

func TestMeanWaitMM(t *testing.T) {
	// M/M/1: W_q = rho/(mu-lambda) with rho=lambda/mu.
	w, err := MeanWaitMM(1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-1.0) > 1e-12 { // C(1,0.5)=0.5; 0.5/(1-0.5)=1
		t.Fatalf("W_q = %g, want 1", w)
	}
	if w, _ := MeanWaitMM(1, 2, 1); !math.IsInf(w, 1) {
		t.Fatal("unstable system should have infinite wait")
	}
	if _, err := MeanWaitMM(0, 1, 1); !errors.Is(err, ErrInvalidInput) {
		t.Fatal("invalid n should fail")
	}
}

func TestCarriedTrafficAndUtilization(t *testing.T) {
	n, rho := 5, 3.0
	b, _ := B(n, rho)
	carried, err := CarriedTraffic(n, rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(carried-rho*(1-b)) > 1e-12 {
		t.Fatal("carried traffic identity broken")
	}
	u, err := Utilization(n, rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-carried/float64(n)) > 1e-12 {
		t.Fatal("utilization identity broken")
	}
	if u0, _ := Utilization(0, 1); u0 != 0 {
		t.Fatal("Utilization(0, rho) should be 0")
	}
}

func TestUtilizationBounded(t *testing.T) {
	// Property: utilization is in [0, 1) even under overload.
	f := func(nRaw uint8, rhoRaw uint16) bool {
		n := int(nRaw)%50 + 1
		rho := float64(rhoRaw) / 10
		u, err := Utilization(n, rho)
		return err == nil && u >= 0 && u < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateDistribution(t *testing.T) {
	pi, err := StateDistribution(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated Poisson with rho=1: proportional to 1, 1, 1/2, 1/6.
	denom := 1 + 1 + 0.5 + 1.0/6
	want := []float64{1 / denom, 1 / denom, 0.5 / denom, (1.0 / 6) / denom}
	for k := range want {
		if math.Abs(pi[k]-want[k]) > 1e-12 {
			t.Fatalf("pi = %v, want %v", pi, want)
		}
	}
	// The last state's probability equals Erlang B.
	b, _ := B(3, 1)
	if math.Abs(pi[3]-b) > 1e-12 {
		t.Fatal("pi[n] != B")
	}
}

func TestStateDistributionSumsToOne(t *testing.T) {
	f := func(nRaw uint8, rhoRaw uint16) bool {
		n := int(nRaw) % 300
		rho := float64(rhoRaw) / 37
		pi, err := StateDistribution(n, rho)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateDistributionZeroTraffic(t *testing.T) {
	pi, err := StateDistribution(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 1 {
		t.Fatalf("pi = %v", pi)
	}
}

func BenchmarkErlangBRecursion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = B(1000, 950)
	}
}

func BenchmarkErlangServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Servers(950, 0.01, 0)
	}
}

// serversLinearScan is the pre-optimization implementation of Servers — a
// plain scan checking every n from 1 — kept as the oracle for the seeded
// search.
func serversLinearScan(rho, target float64, maxServers int) (int, bool) {
	if rho == 0 {
		return 0, true
	}
	b := 1.0
	if b <= target {
		return 0, true
	}
	for n := 1; n <= maxServers; n++ {
		b = rho * b / (float64(n) + rho*b)
		if b <= target {
			return n, true
		}
	}
	return 0, false
}

// TestServersMatchesLinearScan cross-checks the seeded search against the
// plain scan over a grid spanning tiny to large traffic and loose to tight
// targets — the two must agree exactly, including on cap overflows.
func TestServersMatchesLinearScan(t *testing.T) {
	rhos := []float64{0.01, 0.1, 0.5, 1, 1.52, 2, 5, 9.9, 37.5, 100, 317.2, 1000, 12345.6}
	targets := []float64{1e-6, 1e-3, 0.01, 0.02, 0.05, 0.1, 0.3, 0.5, 0.9, 0.999, 1}
	const cap = 100_000
	for _, rho := range rhos {
		for _, target := range targets {
			want, ok := serversLinearScan(rho, target, cap)
			got, err := Servers(rho, target, cap)
			if ok != (err == nil) {
				t.Fatalf("Servers(%g, %g): err=%v, scan ok=%v", rho, target, err, ok)
			}
			if ok && got != want {
				t.Errorf("Servers(%g, %g) = %d, linear scan %d", rho, target, got, want)
			}
		}
	}
	// Degenerate caps: the seeded search must still respect tiny caps that
	// sit inside the skipped range.
	for _, cap := range []int{1, 2, 10} {
		want, ok := serversLinearScan(1000, 0.01, cap)
		got, err := Servers(1000, 0.01, cap)
		if ok != (err == nil) || (ok && got != want) {
			t.Errorf("cap %d: got (%d, %v), scan (%d, %v)", cap, got, err, want, ok)
		}
	}
}
