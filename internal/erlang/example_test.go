package erlang_test

import (
	"fmt"
	"log"

	"repro/internal/erlang"
)

// ExampleB evaluates the paper's Eq. (1) at the case-study operating point:
// four consolidated servers offered 1.52 Erlangs.
func ExampleB() {
	b, err := erlang.B(4, 1.52)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B(4, 1.52) = %.4f\n", b)
	// Output:
	// B(4, 1.52) = 0.0496
}

// ExampleServers runs the iterative sizing step of the paper's Fig. 4.
func ExampleServers() {
	n, err := erlang.Servers(2.5, 0.02, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("servers for 2.5 Erlangs at B<=0.02: %d\n", n)
	// Output:
	// servers for 2.5 Erlangs at B<=0.02: 7
}

// ExampleTraffic computes the admissible load behind the paper's
// intensive-workload selection rule.
func ExampleTraffic() {
	rho, err := erlang.Traffic(3, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 servers carry %.3f Erlangs at B<=0.05\n", rho)
	// Output:
	// 3 servers carry 0.899 Erlangs at B<=0.05
}

// ExampleEngset sizes for a finite population of TPC-W emulated browsers:
// 50 EBs thinking 7 s between requests of mean 10 ms.
func ExampleEngset() {
	blocking, err := erlang.Engset(2, 50, 1.0/7, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Engset blocking with 2 servers, 50 EBs: %.6f\n", blocking)
	// Output:
	// Engset blocking with 2 servers, 50 EBs: 0.002238
}

// ExampleBContinuous evaluates the fractional-server extension used for
// heterogeneous pools: 3 AMD machines plus 1 Intel machine worth 0.83 of
// an AMD give 3.83 reference servers.
func ExampleBContinuous() {
	b, err := erlang.BContinuous(3.83, 1.52)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B(3.83, 1.52) = %.4f\n", b)
	// Output:
	// B(3.83, 1.52) = 0.0598
}
