package erlang

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Memo memoizes the Erlang B recursion per offered traffic ρ so that a
// serving system answering the same capacity questions over and over pays
// the O(n) recursion once and every later lookup is a table read.
//
// For each distinct ρ the memo keeps the recursion prefix
//
//	b[i] = B(i, ρ),  i = 0..len-1
//
// which answers every derived query without recomputation: B(n, ρ) is
// b[n], Servers(ρ, target) is a binary search (b is strictly decreasing in
// i for ρ > 0), and Erlang C, carried traffic and utilization are O(1)
// arithmetic on b[n].
//
// Concurrency scheme: the full table set lives behind one atomic pointer
// to an immutable map. Readers do a single atomic load and then touch only
// immutable data — no locks, no allocation, no retries. Growth (a new ρ,
// or a longer prefix for a known ρ) happens under a mutex: the grower
// copies the map, installs the extended table, and publishes the new map
// with one atomic store. Readers holding the old map still see correct
// (just shorter) tables. Published prefixes are never mutated — extension
// copies into a fresh slice — so a torn read is impossible by
// construction.
//
// Memory is bounded: at most MaxRhos distinct traffics are memoized, each
// with at most MaxPrefix recursion entries. Queries outside those bounds
// fall back to the direct recursion — correct, just not O(1) — so a
// client spraying distinct ρ values degrades throughput, never memory.
type Memo struct {
	tables atomic.Pointer[map[uint64]*rhoTable]

	mu sync.Mutex // serializes growth; never held on the read path

	maxRhos   int
	maxPrefix int

	hits     atomic.Uint64
	misses   atomic.Uint64
	fallback atomic.Uint64
}

// rhoTable is the immutable recursion prefix for one offered traffic.
type rhoTable struct {
	rho float64
	b   []float64 // b[i] = B(i, rho); never mutated once published
}

// Memo sizing defaults: 4096 traffics × up to 64 Ki servers each bounds
// the worst case around 2 GiB but typical serving workloads (tables grow
// only as far as queries demand) at a few megabytes.
const (
	DefaultMaxRhos   = 4096
	DefaultMaxPrefix = 1 << 16
)

// NewMemo returns an empty memo. maxRhos caps the number of distinct
// traffic values memoized and maxPrefix the per-traffic table length;
// zero or negative values select the package defaults.
func NewMemo(maxRhos, maxPrefix int) *Memo {
	if maxRhos <= 0 {
		maxRhos = DefaultMaxRhos
	}
	if maxPrefix <= 0 {
		maxPrefix = DefaultMaxPrefix
	}
	m := &Memo{maxRhos: maxRhos, maxPrefix: maxPrefix}
	empty := map[uint64]*rhoTable{}
	m.tables.Store(&empty)
	return m
}

// Hits reports lookups served entirely from published tables.
func (m *Memo) Hits() uint64 { return m.hits.Load() }

// Misses reports lookups that had to grow a table.
func (m *Memo) Misses() uint64 { return m.misses.Load() }

// Fallbacks reports lookups answered by the direct recursion because a
// capacity bound (MaxRhos or MaxPrefix) was hit.
func (m *Memo) Fallbacks() uint64 { return m.fallback.Load() }

// Rhos reports the number of memoized traffic values.
func (m *Memo) Rhos() int { return len(*m.tables.Load()) }

// lookup returns the published table for rho, or nil.
func (m *Memo) lookup(rho float64) *rhoTable {
	return (*m.tables.Load())[math.Float64bits(rho)]
}

// B reports the Erlang B blocking probability B(n, rho), from the memo
// when possible.
func (m *Memo) B(n int, rho float64) (float64, error) {
	if n < 0 || rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: B(n=%d, rho=%g)", ErrInvalidInput, n, rho)
	}
	if t := m.lookup(rho); t != nil && n < len(t.b) {
		m.hits.Add(1)
		return t.b[n], nil
	}
	if n >= m.maxPrefix {
		m.fallback.Add(1)
		return B(n, rho)
	}
	t, err := m.grow(rho, n+1, 0)
	if err != nil {
		return 0, err
	}
	return t.b[n], nil
}

// Servers reports the smallest n with B(n, rho) <= target, from the memo
// when possible. The target must lie in (0, 1].
func (m *Memo) Servers(rho, target float64) (int, error) {
	if rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: Servers(rho=%g)", ErrInvalidInput, rho)
	}
	if target <= 0 || target > 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("%w: Servers(target=%g)", ErrInvalidInput, target)
	}
	if rho == 0 {
		return 0, nil
	}
	if t := m.lookup(rho); t != nil {
		if n, ok := t.search(target); ok {
			m.hits.Add(1)
			return n, nil
		}
	}
	// The table (if any) is too short for this target. Grow it to cover
	// the answer, unless the answer itself lies beyond the prefix cap.
	n, err := Servers(rho, target, 0)
	if err != nil {
		return 0, err
	}
	if n >= m.maxPrefix {
		m.fallback.Add(1)
		return n, nil
	}
	if _, err := m.grow(rho, n+1, 0); err != nil {
		return 0, err
	}
	return n, nil
}

// C reports the Erlang C waiting probability for n servers offered rho
// Erlangs, derived from the memoized B by the standard identity.
func (m *Memo) C(n int, rho float64) (float64, error) {
	if n <= 0 || rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0, fmt.Errorf("%w: C(n=%d, rho=%g)", ErrInvalidInput, n, rho)
	}
	if rho >= float64(n) {
		return 1, nil
	}
	b, err := m.B(n, rho)
	if err != nil {
		return 0, err
	}
	return float64(n) * b / (float64(n) - rho*(1-b)), nil
}

// Utilization reports the mean per-server utilization of n servers
// offered rho Erlangs, derived from the memoized B.
func (m *Memo) Utilization(n int, rho float64) (float64, error) {
	if n == 0 {
		return 0, nil
	}
	b, err := m.B(n, rho)
	if err != nil {
		return 0, err
	}
	return rho * (1 - b) / float64(n), nil
}

// search finds the smallest n in the prefix with b[n] <= target. ok is
// false when the prefix is too short to contain the answer.
func (t *rhoTable) search(target float64) (n int, ok bool) {
	last := len(t.b) - 1
	if last < 0 || t.b[last] > target {
		return 0, false
	}
	// b is non-increasing in n (strictly decreasing for rho > 0), so the
	// predicate b[i] <= target is monotone: binary search for its first
	// true position.
	lo, hi := 0, last
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.b[mid] <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// grow publishes a table for rho covering at least minLen recursion
// entries and returns it. pad reserves extra headroom beyond minLen so a
// run of slowly increasing demands does not republish per step; growth
// always at least doubles for the same reason. Returns an error only if
// capacity bounds force a fallback and the direct recursion fails (which
// validated inputs cannot).
func (m *Memo) grow(rho float64, minLen, pad int) (*rhoTable, error) {
	if minLen > m.maxPrefix {
		minLen = m.maxPrefix
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	old := *m.tables.Load()
	cur := old[math.Float64bits(rho)]
	if cur != nil && len(cur.b) >= minLen {
		// Another grower got here first.
		return cur, nil
	}
	if cur == nil && len(old) >= m.maxRhos {
		// Table budget exhausted: serve this traffic unmemoized.
		m.fallback.Add(1)
		return m.direct(rho, minLen)
	}
	m.misses.Add(1)

	want := minLen + pad
	if cur != nil && want < 2*len(cur.b) {
		want = 2 * len(cur.b)
	}
	if want < 64 {
		want = 64
	}
	if want > m.maxPrefix {
		want = m.maxPrefix
	}

	b := make([]float64, want)
	start := 1
	if rho == 0 {
		// Degenerate but valid: B(0,0)=1, B(n,0)=0.
		b[0] = 1
		for i := 1; i < want; i++ {
			b[i] = 0
		}
	} else {
		b[0] = 1
		if cur != nil {
			// Resume the recursion where the published prefix ends; the
			// recursion is a pure left fold, so the continuation is exact.
			copy(b, cur.b)
			start = len(cur.b)
		}
		v := b[start-1]
		for i := start; i < want; i++ {
			v = rho * v / (float64(i) + rho*v)
			b[i] = v
		}
	}

	next := make(map[uint64]*rhoTable, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	t := &rhoTable{rho: rho, b: b}
	next[math.Float64bits(rho)] = t
	m.tables.Store(&next)
	return t, nil
}

// direct builds a throwaway table via the plain recursion, without
// publishing it — the overflow path when MaxRhos is exhausted.
func (m *Memo) direct(rho float64, n int) (*rhoTable, error) {
	b := make([]float64, n)
	b[0] = 1
	if rho == 0 {
		for i := 1; i < n; i++ {
			b[i] = 0
		}
		return &rhoTable{rho: rho, b: b}, nil
	}
	v := 1.0
	for i := 1; i < n; i++ {
		v = rho * v / (float64(i) + rho*v)
		b[i] = v
	}
	return &rhoTable{rho: rho, b: b}, nil
}

// Preheat materializes tables for the given traffics up to servers
// entries each, so a service can warm its cache before declaring itself
// ready. Invalid inputs are reported, valid ones are still heated.
func (m *Memo) Preheat(rhos []float64, servers int) error {
	if servers <= 0 {
		servers = 1024
	}
	var firstErr error
	for _, rho := range rhos {
		if rho < 0 || math.IsNaN(rho) || math.IsInf(rho, 0) {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: Preheat(rho=%g)", ErrInvalidInput, rho)
			}
			continue
		}
		if _, err := m.grow(rho, servers, 0); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
