package erlang

import (
	"math"
	"sync"
	"testing"
)

// TestMemoMatchesDirect pins every memo query against the plain
// implementations across a grid of traffics, server counts and targets,
// including repeat queries that hit warm tables.
func TestMemoMatchesDirect(t *testing.T) {
	m := NewMemo(0, 0)
	rhos := []float64{0, 0.1, 1, 5, 42.5, 120, 1000}
	for pass := 0; pass < 2; pass++ { // second pass must hit warm tables
		for _, rho := range rhos {
			for _, n := range []int{0, 1, 2, 7, 50, 300} {
				want := MustB(n, rho)
				got, err := m.B(n, rho)
				if err != nil {
					t.Fatalf("Memo.B(%d, %g): %v", n, rho, err)
				}
				if got != want {
					t.Errorf("Memo.B(%d, %g) = %g, want %g", n, rho, got, want)
				}
			}
			for _, target := range []float64{0.5, 0.1, 0.01, 1e-4} {
				want, err := Servers(rho, target, 0)
				if err != nil {
					t.Fatalf("Servers(%g, %g): %v", rho, target, err)
				}
				got, err := m.Servers(rho, target)
				if err != nil {
					t.Fatalf("Memo.Servers(%g, %g): %v", rho, target, err)
				}
				if got != want {
					t.Errorf("Memo.Servers(%g, %g) = %d, want %d", rho, target, got, want)
				}
			}
		}
	}
	for _, rho := range []float64{0.1, 5, 120} {
		for _, n := range []int{1, 8, 200} {
			wantC, _ := C(n, rho)
			gotC, err := m.C(n, rho)
			if err != nil || gotC != wantC {
				t.Errorf("Memo.C(%d, %g) = %g, %v; want %g", n, rho, gotC, err, wantC)
			}
			wantU, _ := Utilization(n, rho)
			gotU, err := m.Utilization(n, rho)
			if err != nil || gotU != wantU {
				t.Errorf("Memo.Utilization(%d, %g) = %g, %v; want %g", n, rho, gotU, err, wantU)
			}
		}
	}
}

// TestMemoRejectsInvalid mirrors the plain functions' domain checks.
func TestMemoRejectsInvalid(t *testing.T) {
	m := NewMemo(0, 0)
	if _, err := m.B(-1, 5); err == nil {
		t.Error("B(-1, 5) accepted")
	}
	if _, err := m.B(3, -2); err == nil {
		t.Error("B(3, -2) accepted")
	}
	if _, err := m.B(3, math.NaN()); err == nil {
		t.Error("B(3, NaN) accepted")
	}
	if _, err := m.Servers(5, 0); err == nil {
		t.Error("Servers(5, 0) accepted")
	}
	if _, err := m.Servers(5, 1.5); err == nil {
		t.Error("Servers(5, 1.5) accepted")
	}
	if _, err := m.Servers(math.Inf(1), 0.1); err == nil {
		t.Error("Servers(+Inf, 0.1) accepted")
	}
	if _, err := m.C(0, 5); err == nil {
		t.Error("C(0, 5) accepted")
	}
	if _, err := m.Utilization(3, math.NaN()); err == nil {
		t.Error("Utilization(3, NaN) accepted")
	}
}

// TestMemoWarmPathAllocations proves the read path allocates nothing once
// tables are warm — the property the serving hot path is built on.
func TestMemoWarmPathAllocations(t *testing.T) {
	m := NewMemo(0, 0)
	if _, err := m.Servers(120, 1e-4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.B(64, 120); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.Servers(120, 0.01); err != nil {
			t.Fatal(err)
		}
		if _, err := m.B(64, 120); err != nil {
			t.Fatal(err)
		}
		if _, err := m.C(130, 120); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Utilization(130, 120); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm memo path allocates %v allocs/op, want 0", allocs)
	}
}

// TestMemoCaps exercises both capacity bounds: distinct-rho overflow falls
// back without publishing, and prefix overflow answers directly.
func TestMemoCaps(t *testing.T) {
	m := NewMemo(2, 128)
	for _, rho := range []float64{1, 2, 3, 4} {
		got, err := m.B(5, rho)
		if err != nil {
			t.Fatal(err)
		}
		if want := MustB(5, rho); got != want {
			t.Errorf("B(5, %g) = %g, want %g", rho, got, want)
		}
	}
	if got := m.Rhos(); got != 2 {
		t.Errorf("memoized %d rhos, want cap 2", got)
	}
	if m.Fallbacks() == 0 {
		t.Error("rho overflow did not count a fallback")
	}

	// Prefix cap: the answer for this target needs > 128 servers.
	want, err := Servers(200, 1e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want <= 128 {
		t.Fatalf("test expects answer > 128, got %d", want)
	}
	got, err := m.Servers(200, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Servers(200, 1e-6) = %d, want %d", got, want)
	}
	big, err := m.B(500, 200)
	if err != nil {
		t.Fatal(err)
	}
	if wantB := MustB(500, 200); big != wantB {
		t.Errorf("B(500, 200) = %g, want %g", big, wantB)
	}
}

// TestMemoConcurrentGrowth hammers one memo from many goroutines with
// interleaved reads and growth; run under -race this is the proof of the
// copy-on-write publication scheme.
func TestMemoConcurrentGrowth(t *testing.T) {
	m := NewMemo(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rho := float64(1 + (g*7+i)%40)
				n := 1 + (g+i)%300
				got, err := m.B(n, rho)
				if err != nil {
					t.Errorf("B(%d, %g): %v", n, rho, err)
					return
				}
				if want := MustB(n, rho); got != want {
					t.Errorf("B(%d, %g) = %g, want %g", n, rho, got, want)
					return
				}
				if _, err := m.Servers(rho, 0.01); err != nil {
					t.Errorf("Servers(%g, 0.01): %v", rho, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Hits() == 0 || m.Misses() == 0 {
		t.Errorf("expected both hits and misses, got %d/%d", m.Hits(), m.Misses())
	}
}

// TestMemoPreheat verifies preheated tables serve without growth and that
// invalid traffics are reported but do not abort the rest.
func TestMemoPreheat(t *testing.T) {
	m := NewMemo(0, 0)
	if err := m.Preheat([]float64{5, 120}, 512); err != nil {
		t.Fatal(err)
	}
	misses := m.Misses()
	if _, err := m.Servers(120, 0.01); err != nil {
		t.Fatal(err)
	}
	if _, err := m.B(400, 5); err != nil {
		t.Fatal(err)
	}
	if m.Misses() != misses {
		t.Errorf("preheated queries still grew tables (%d -> %d misses)", misses, m.Misses())
	}
	if err := m.Preheat([]float64{math.NaN(), 7}, 64); err == nil {
		t.Error("Preheat(NaN) reported no error")
	}
	if m.lookup(7) == nil {
		t.Error("valid rho after invalid one was not heated")
	}
}
