package eval

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/erlang"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/virt"
	"repro/internal/workload"
)

// Analytic scores candidates with the paper's utility analytic model: the
// scenario is bridged to a core.Model (ModelFromScenario), the fleet's
// capability units size an Erlang B loss per resource, and utilization and
// watts follow Eq. (9)–(14) with the platform factors of internal/power.
//
// Integer-unit fleets are answered from the shared copy-on-write
// erlang.Memo tables (lock-free reads, so concurrent candidate batches
// share one growing table set); fractional capability units fall back to
// the continuous Erlang B extension.
type Analytic struct {
	memo *erlang.Memo
}

// NewAnalytic builds an analytic evaluator over the given memo; nil
// builds a private unbounded memo.
func NewAnalytic(memo *erlang.Memo) *Analytic {
	if memo == nil {
		memo = erlang.NewMemo(0, 0)
	}
	return &Analytic{memo: memo}
}

// Memo exposes the evaluator's Erlang tables, so a host process (the HTTP
// service) can share one memo between its hot single-query path and the
// planner.
func (a *Analytic) Memo() *erlang.Memo { return a.memo }

// evalLossTarget is the placeholder sizing target used when bridging a
// scenario for fixed-fleet evaluation: Evaluate never sizes, it only reads
// traffic, so any value in (0, 1) works.
const evalLossTarget = 0.5

// Evaluate scores the candidate analytically. It accepts raw or resolved
// scenarios (defaults are applied to a private clone) and returns
// ErrUnsupported for scenarios outside the analytic model's domain —
// closed-loop services, failure injection, or non-flowing allocators.
func (a *Analytic) Evaluate(ctx context.Context, s scenario.Scenario) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	resolved := s.Clone()
	resolved.ApplyDefaults()
	if err := resolved.Validate(); err != nil {
		return Result{}, err
	}
	m, err := ModelFromScenario(resolved, evalLossTarget)
	if err != nil {
		return Result{}, err
	}
	resources, err := ScenarioResources(resolved)
	if err != nil {
		return Result{}, err
	}
	serverModel, platform := scenarioPower(resolved)

	res := Result{Source: "analytic", Mode: resolved.Mode}
	if resolved.Mode == "dedicated" {
		return a.evaluateDedicated(res, resolved, m, resources, serverModel, platform)
	}
	return a.evaluateConsolidated(res, resolved, m, resources, serverModel, platform)
}

// evaluateConsolidated scores a consolidated fleet: loss per resource is
// Erlang B of the merged traffic ρ'ⱼ (Eq. 5) over the fleet's capability
// units, a service's loss is the worst over the resources it demands, and
// watts sum per-class draws at the Eq. (10) utilization.
func (a *Analytic) evaluateConsolidated(res Result, s scenario.Scenario, m *core.Model, resources []string, serverModel power.ServerModel, platform power.Platform) (Result, error) {
	hosts, units := FleetUnits(s, resources)
	res.Hosts = hosts
	res.CapabilityUnits = units

	lossByResource := make(map[string]float64, len(resources))
	demand := 0.0
	for _, r := range resources {
		rho := m.ConsolidatedTraffic(core.Resource(r), m.Form)
		demand += rho
		b, err := a.loss(units, rho)
		if err != nil {
			return Result{}, err
		}
		lossByResource[r] = b
		if b > res.Loss {
			res.Loss = b
		}
	}
	res.Services = make([]ServiceLoss, len(m.Services))
	for i, svc := range m.Services {
		worst := 0.0
		for r, mu := range svc.ServingRates {
			if math.IsInf(mu, 1) {
				continue
			}
			if b := lossByResource[string(r)]; b > worst {
				worst = b
			}
		}
		res.Services[i] = ServiceLoss{Name: svc.Name, Loss: worst}
	}
	if units > 0 {
		res.Utilization = demand / units
	}
	res.Watts = fleetWatts(s, res.Utilization, serverModel, platform)
	return res, nil
}

// evaluateDedicated scores per-service dedicated pools: each service's
// pool of DedicatedServers reference servers sees its own offered traffic
// ρᵢⱼ = λᵢ/μᵢⱼ (Eq. 3), and watts sum per-pool draws at each pool's
// Eq. (9) utilization.
func (a *Analytic) evaluateDedicated(res Result, s scenario.Scenario, m *core.Model, resources []string, serverModel power.ServerModel, platform power.Platform) (Result, error) {
	res.Services = make([]ServiceLoss, len(m.Services))
	totalDemand := 0.0
	for i, svc := range m.Services {
		n := s.Services[i].DedicatedServers
		res.Hosts += n
		worst := 0.0
		demand := 0.0
		for _, mu := range svc.ServingRates {
			if math.IsInf(mu, 1) {
				continue
			}
			rho := svc.ArrivalRate / mu
			demand += rho
			b, err := a.loss(float64(n), rho)
			if err != nil {
				return Result{}, err
			}
			if b > worst {
				worst = b
			}
		}
		res.Services[i] = ServiceLoss{Name: svc.Name, Loss: worst}
		if worst > res.Loss {
			res.Loss = worst
		}
		totalDemand += demand
		if n > 0 {
			res.Watts += power.SteadyStateDraw(serverModel, n, demand/float64(n), platform)
		}
	}
	res.CapabilityUnits = float64(res.Hosts)
	if res.Hosts > 0 {
		res.Utilization = totalDemand / float64(res.Hosts)
	}
	return res, nil
}

// loss evaluates Erlang B over a possibly fractional server count: the
// memoized integer tables when units is whole, the continuous extension
// otherwise.
func (a *Analytic) loss(units, rho float64) (float64, error) {
	if rho == 0 {
		if units == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if n := math.Round(units); math.Abs(units-n) < 1e-9 && n >= 0 {
		return a.memo.B(int(n), rho)
	}
	return erlang.BContinuous(units, rho)
}

// fleetWatts sums the steady-state draw of a consolidated fleet at uniform
// utilization u, honoring per-class power overrides.
func fleetWatts(s scenario.Scenario, u float64, fleetModel power.ServerModel, platform power.Platform) float64 {
	if len(s.Fleet.Classes) == 0 {
		return power.SteadyStateDraw(fleetModel, s.Fleet.Hosts, u, platform)
	}
	watts := 0.0
	for _, hc := range s.Fleet.Classes {
		model := fleetModel
		if hc.Power != nil {
			model = power.ServerModel{Base: hc.Power.BaseW, Max: hc.Power.MaxW}
		}
		watts += power.SteadyStateDraw(model, hc.Count, u, platform)
	}
	return watts
}

// scenarioPower reads the resolved scenario's power model and platform.
func scenarioPower(s scenario.Scenario) (power.ServerModel, power.Platform) {
	model := power.DefaultServer
	platform := power.XenRainbow
	if s.Power != nil {
		if s.Power.BaseW != 0 || s.Power.MaxW != 0 {
			model = power.ServerModel{Base: s.Power.BaseW, Max: s.Power.MaxW}
		}
		if s.Power.Platform == "linux" {
			platform = power.NativeLinux
		}
	} else if s.Mode == "dedicated" {
		platform = power.NativeLinux
	}
	return model, platform
}

// ModelFromScenario bridges a declarative scenario to the paper's analytic
// model: per-service arrival rates come from the built arrival process's
// mean rate, serving rates from the compiled demand profile (μ = 1/mean
// demand, Eq. 3), and impact factors from the overhead curves evaluated at
// the number of co-located VMs actively demanding each resource — exactly
// the case-study convention (disk at v = 1, CPU at v = 2 for the Web+DB
// pair).
//
// The scenario must be analytic-model shaped: every service open-loop, no
// failure injection, and no explicit allocator (the model assumes ideal
// on-demand resource flowing). Anything else returns ErrUnsupported; the
// sim evaluator handles those scenarios.
func ModelFromScenario(s scenario.Scenario, lossTarget float64) (*core.Model, error) {
	resolved := s.Clone()
	resolved.ApplyDefaults()
	if err := resolved.Validate(); err != nil {
		return nil, err
	}
	if resolved.Periods != nil {
		return nil, fmt.Errorf("%w: a periods scenario is time-varying; evaluate its resolved bins (EvaluatePeriods)", ErrUnsupported)
	}
	if resolved.Failures != nil {
		return nil, fmt.Errorf("%w: failure injection has no analytic form", ErrUnsupported)
	}
	if resolved.Alloc != nil {
		return nil, fmt.Errorf("%w: explicit allocator policies have no analytic form (the model assumes ideal flowing)", ErrUnsupported)
	}

	resources, err := ScenarioResources(resolved)
	if err != nil {
		return nil, err
	}
	// vms[r] counts the services demanding resource r: the number of
	// co-located VMs actively using r on a consolidated host, which is the
	// v the impact curves a(v) are evaluated at.
	vms := make(map[string]int, len(resources))
	profiles := make([]profileInfo, len(resolved.Services))
	for i := range resolved.Services {
		svc := resolved.Services[i]
		profile, err := svc.CompileProfile()
		if err != nil {
			return nil, fmt.Errorf("eval: service %d: %w", i, err)
		}
		overhead, err := svc.CompileOverhead()
		if err != nil {
			return nil, fmt.Errorf("eval: service %d: %w", i, err)
		}
		profiles[i] = profileInfo{name: profile.Name, profile: profile, overhead: overhead}
		for r := range profile.Demands {
			vms[r]++
		}
	}

	m := &core.Model{LossTarget: lossTarget}
	for _, r := range resources {
		m.Resources = append(m.Resources, core.Resource(r))
	}
	seen := map[string]int{}
	for i := range resolved.Services {
		svc := resolved.Services[i]
		if svc.Clients > 0 || svc.Arrivals == nil {
			return nil, fmt.Errorf("%w: service %q is closed-loop (no open-loop arrival rate; use the sim evaluator)", ErrUnsupported, profiles[i].name)
		}
		proc, err := svc.Arrivals.Build()
		if err != nil {
			return nil, fmt.Errorf("eval: service %d arrivals: %w", i, err)
		}
		name := profiles[i].name
		// The analytic model requires unique service names; disambiguate
		// duplicates positionally like reports do.
		if n := seen[name]; n > 0 {
			name = fmt.Sprintf("%s#%d", name, n+1)
		}
		seen[profiles[i].name]++

		cs := core.Service{
			Name:          name,
			ArrivalRate:   proc.Rate(),
			ServingRates:  map[core.Resource]float64{},
			ImpactFactors: map[core.Resource]float64{},
		}
		for r := range profiles[i].profile.Demands {
			mu := profiles[i].profile.ServingRate(r)
			// The OS software ceiling caps a single OS image's completion
			// rate regardless of spare hardware (Fig. 8): the paper's
			// Table I uses the capped rate as the DB service's μ.
			if ceil := profiles[i].profile.OSCeiling; ceil > 0 && mu > ceil {
				mu = ceil
			}
			cs.ServingRates[core.Resource(r)] = mu
			a, err := profiles[i].overhead.Factor(r, vms[r])
			if err != nil {
				return nil, fmt.Errorf("eval: service %d overhead on %q: %w", i, r, err)
			}
			cs.ImpactFactors[core.Resource(r)] = a
		}
		m.Services = append(m.Services, cs)
	}
	if resolved.Power != nil {
		m.Power = core.PowerParams{Base: resolved.Power.BaseW, Max: resolved.Power.MaxW}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

type profileInfo struct {
	name     string
	profile  workload.ServiceProfile
	overhead virt.HostOverhead
}
