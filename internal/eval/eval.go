// Package eval is the single evaluation layer behind every consumer of the
// consolidation model: one Evaluator interface scores a resolved
// scenario.Scenario candidate — per-service loss probabilities, servers
// used, utilization and watts — and two implementations answer it from the
// two substrates the repository already has.
//
//   - Analytic answers from the paper's utility analytic model (Eq. 5–14)
//     via the copy-on-write memoized Erlang tables (erlang.Memo) for
//     integer fleets and the continuous Erlang B extension for fractional
//     capability units (heterogeneous fleets).
//   - Sim lowers the candidate onto the existing sweep engine, so scores
//     inherit the shared worker-pool budget and the content-addressed
//     result cache: re-evaluating a candidate a search has already visited
//     is a cache hit, not a simulation.
//
// cmd/consolidate (-scenario/-plan), internal/serve (POST /v1/plan) and
// the planner-vs-analytic ablation in internal/experiments all consume the
// model through this layer; internal/plan searches placements with it. See
// DESIGN.md §12.
package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/scenario"
)

// ErrUnsupported reports a scenario an evaluator cannot score (for
// example, a closed-loop service has no open-loop arrival rate for the
// analytic model).
var ErrUnsupported = errors.New("eval: unsupported scenario")

// ServiceLoss is one service's loss probability in a Result.
type ServiceLoss struct {
	Name string  `json:"name"`
	Loss float64 `json:"loss"`
}

// Result is one candidate's score. Loss is the worst per-service loss
// probability — the quantity the sizing constraint "every service meets
// the target B" checks — so a candidate is feasible at target B exactly
// when Loss <= B.
type Result struct {
	// Source names the evaluator that produced the result ("analytic" or
	// "sim").
	Source string `json:"source"`

	// Mode echoes the scenario mode ("dedicated" or "consolidated").
	Mode string `json:"mode"`

	// Hosts is the physical machine count of the candidate fleet.
	Hosts int `json:"hosts"`

	// CapabilityUnits is the fleet's summed effective capability in
	// reference-server units (equals Hosts for homogeneous fleets).
	CapabilityUnits float64 `json:"capability_units"`

	// Loss is the worst per-service loss probability.
	Loss float64 `json:"loss"`

	// Services carries the per-service losses in scenario order.
	Services []ServiceLoss `json:"services"`

	// Utilization is the deployment's mean utilization under the paper's
	// Eq. (9)/(10) convention: offered work summed over resources divided
	// by (capability units of) servers.
	Utilization float64 `json:"utilization"`

	// Watts is the fleet's steady-state power draw under the linear server
	// model and the scenario's platform factors.
	Watts float64 `json:"watts"`

	// CacheHit reports whether a memoized score answered the evaluation
	// (sim evaluator only). Excluded from JSON so serialized results stay
	// independent of cache state.
	CacheHit bool `json:"-"`
}

// Evaluator scores one resolved scenario candidate. Implementations must
// be safe for concurrent use: the placement search evaluates candidate
// batches in parallel.
type Evaluator interface {
	Evaluate(ctx context.Context, s scenario.Scenario) (Result, error)
}

// SelfBudgeted is implemented by evaluators that already draw their
// simulation work from a shared pool budget (Sim, via the sweep engine).
// Callers fanning evaluations out must not wrap such evaluators in pool
// slots of the same pool: holding a slot while the engine waits for one
// deadlocks at pool size 1.
type SelfBudgeted interface {
	SelfBudgeted() bool
}

// ScenarioResources reports the sorted union of resources the scenario's
// services place demand on — the resource list the analytic model and the
// capability normalization both use.
func ScenarioResources(s scenario.Scenario) ([]string, error) {
	set := map[string]bool{}
	for i := range s.Services {
		profile, err := s.Services[i].CompileProfile()
		if err != nil {
			return nil, fmt.Errorf("eval: service %d: %w", i, err)
		}
		for r := range profile.Demands {
			set[r] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out, nil
}

// ClassCapability reports a host class's binding capability across the
// given resources: the minimum multiplier, since a machine must keep up on
// every resource it serves (mirrors core.ServerClass.effectiveCapability).
func ClassCapability(hc scenario.HostClass, resources []string) float64 {
	cap := hc.ResolvedCapability()
	min := math.Inf(1)
	for _, r := range resources {
		v, ok := cap[r]
		if !ok {
			v = 1
		}
		if v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		return 1
	}
	return min
}

// FleetUnits reports the physical machine count and the summed effective
// capability (in reference-server units) of a consolidated scenario's
// fleet over the given resources. Homogeneous fleets report
// units == hosts.
func FleetUnits(s scenario.Scenario, resources []string) (hosts int, units float64) {
	if len(s.Fleet.Classes) == 0 {
		return s.Fleet.Hosts, float64(s.Fleet.Hosts)
	}
	for _, hc := range s.Fleet.Classes {
		hosts += hc.Count
		units += float64(hc.Count) * ClassCapability(hc, resources)
	}
	return hosts, units
}
