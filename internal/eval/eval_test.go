package eval_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/erlang"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/scenario"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// The bridge must reproduce the hand-built case-study model exactly: same
// arrival rates, serving rates and impact factors (the impact factors are
// the overhead curves at v = co-located VMs demanding the resource, which
// is the convention CaseStudyModel hard-codes).
func TestModelFromScenarioMatchesCaseStudy(t *testing.T) {
	want, err := experiments.CaseStudyModel(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the declarative services at the model's own operating point so
	// the two pipelines describe the same system.
	s := scenario.Scenario{
		Mode: "consolidated",
		Services: []scenario.Service{
			scenario.WebSpec(want.Services[0].ArrivalRate, 4),
			scenario.DBSpec(want.Services[1].ArrivalRate, 4),
		},
		Fleet: scenario.Fleet{Hosts: 4},
	}
	got, err := eval.ModelFromScenario(s, experiments.LossTarget)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Services) != len(want.Services) {
		t.Fatalf("services = %d, want %d", len(got.Services), len(want.Services))
	}
	for i, w := range want.Services {
		g := got.Services[i]
		if !almost(g.ArrivalRate, w.ArrivalRate, 1e-9) {
			t.Errorf("service %d arrival rate %g, want %g", i, g.ArrivalRate, w.ArrivalRate)
		}
		for j, mu := range w.ServingRates {
			if math.IsInf(mu, 1) {
				continue
			}
			if !almost(g.ServingRates[j], mu, 1e-9*mu) {
				t.Errorf("service %d serving rate[%s] %g, want %g", i, j, g.ServingRates[j], mu)
			}
		}
		for j, a := range w.ImpactFactors {
			if !almost(g.ImpactFactors[j], a, 1e-12) {
				t.Errorf("service %d impact[%s] %g, want %g", i, j, g.ImpactFactors[j], a)
			}
		}
	}
	// The bridged model sizes identically.
	wantRes, err := want.Solve()
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := got.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Consolidated.Servers != wantRes.Consolidated.Servers ||
		gotRes.Dedicated.Servers != wantRes.Dedicated.Servers {
		t.Errorf("sizing (M=%d, N=%d), want (M=%d, N=%d)",
			gotRes.Dedicated.Servers, gotRes.Consolidated.Servers,
			wantRes.Dedicated.Servers, wantRes.Consolidated.Servers)
	}
}

func TestModelFromScenarioRejectsClosedLoop(t *testing.T) {
	s := scenario.Scenario{
		Mode:     "consolidated",
		Services: []scenario.Service{scenario.DBClosedSpec(100, 0)},
	}
	if _, err := eval.ModelFromScenario(s, 0.05); !errors.Is(err, eval.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	if _, err := eval.NewAnalytic(nil).Evaluate(context.Background(), s); !errors.Is(err, eval.ErrUnsupported) {
		t.Fatalf("Evaluate err = %v, want ErrUnsupported", err)
	}
}

// A consolidated homogeneous fleet's analytic loss must equal the worst
// per-resource Erlang B of the bridged model's consolidated traffic, and
// watts must follow SteadyStateDraw at the Eq. (10) utilization.
func TestAnalyticConsolidatedMatchesCore(t *testing.T) {
	s := scenario.CaseStudy(4, 4, "consolidated", 4)
	res, err := eval.NewAnalytic(nil).Evaluate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "analytic" || res.Mode != "consolidated" {
		t.Fatalf("source/mode = %s/%s", res.Source, res.Mode)
	}
	if res.Hosts != 4 || res.CapabilityUnits != 4 {
		t.Fatalf("hosts=%d units=%g, want 4/4", res.Hosts, res.CapabilityUnits)
	}

	m, err := eval.ModelFromScenario(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss, demand := 0.0, 0.0
	for _, j := range []core.Resource{core.CPU, core.DiskIO} {
		rho := m.ConsolidatedTraffic(j, m.Form)
		demand += rho
		b, err := erlang.B(4, rho)
		if err != nil {
			t.Fatal(err)
		}
		if b > wantLoss {
			wantLoss = b
		}
	}
	if !almost(res.Loss, wantLoss, 1e-12) {
		t.Errorf("loss %g, want %g", res.Loss, wantLoss)
	}
	wantUtil := demand / 4
	if !almost(res.Utilization, wantUtil, 1e-12) {
		t.Errorf("utilization %g, want %g", res.Utilization, wantUtil)
	}
	wantWatts := power.SteadyStateDraw(power.DefaultServer, 4, wantUtil, power.XenRainbow)
	if !almost(res.Watts, wantWatts, 1e-9) {
		t.Errorf("watts %g, want %g", res.Watts, wantWatts)
	}
	if len(res.Services) != 2 {
		t.Fatalf("services = %d", len(res.Services))
	}
}

// A dedicated scenario's per-service losses are plain Erlang B over each
// pool.
func TestAnalyticDedicated(t *testing.T) {
	s := scenario.CaseStudy(4, 4, "dedicated", 0)
	res, err := eval.NewAnalytic(nil).Evaluate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 8 {
		t.Fatalf("hosts = %d, want 8", res.Hosts)
	}
	m, err := eval.ModelFromScenario(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, svc := range m.Services {
		worst := 0.0
		for _, mu := range svc.ServingRates {
			if math.IsInf(mu, 1) {
				continue
			}
			b, err := erlang.B(4, svc.ArrivalRate/mu)
			if err != nil {
				t.Fatal(err)
			}
			if b > worst {
				worst = b
			}
		}
		if !almost(res.Services[i].Loss, worst, 1e-12) {
			t.Errorf("service %d loss %g, want %g", i, res.Services[i].Loss, worst)
		}
	}
}

// Fractional capability units (heterogeneous fleets) go through the
// continuous Erlang B extension.
func TestAnalyticHeteroFractionalUnits(t *testing.T) {
	s := scenario.CaseStudy(4, 4, "consolidated", 0)
	s.Fleet.Hosts = 0
	s.Fleet.Classes = []scenario.HostClass{
		{Preset: "amd", Count: 2},
		{Preset: "intel", Count: 2},
	}
	res, err := eval.NewAnalytic(nil).Evaluate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	wantUnits := 2 + 2/1.2
	if !almost(res.CapabilityUnits, wantUnits, 1e-12) || res.Hosts != 4 {
		t.Fatalf("hosts=%d units=%g, want 4/%g", res.Hosts, res.CapabilityUnits, wantUnits)
	}
	m, err := eval.ModelFromScenario(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss := 0.0
	for _, j := range []core.Resource{core.CPU, core.DiskIO} {
		b, err := erlang.BContinuous(wantUnits, m.ConsolidatedTraffic(j, m.Form))
		if err != nil {
			t.Fatal(err)
		}
		if b > wantLoss {
			wantLoss = b
		}
	}
	if !almost(res.Loss, wantLoss, 1e-10) {
		t.Errorf("loss %g, want %g", res.Loss, wantLoss)
	}
}

// Per-class power overrides shift the watts accounting.
func TestAnalyticPerClassPower(t *testing.T) {
	s := scenario.CaseStudy(4, 4, "consolidated", 0)
	s.Fleet.Hosts = 0
	s.Fleet.Classes = []scenario.HostClass{
		{Preset: "amd", Count: 2},
		{Preset: "intel", Count: 2, Power: &scenario.Power{BaseW: 230, MaxW: 310}},
	}
	res, err := eval.NewAnalytic(nil).Evaluate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization
	want := power.SteadyStateDraw(power.DefaultServer, 2, u, power.XenRainbow) +
		power.SteadyStateDraw(power.ServerModel{Base: 230, Max: 310}, 2, u, power.XenRainbow)
	if !almost(res.Watts, want, 1e-9) {
		t.Errorf("watts %g, want %g", res.Watts, want)
	}
}

// The sim evaluator is deterministic and reports the same fleet shape as
// the analytic one.
func TestSimEvaluator(t *testing.T) {
	s := scenario.CaseStudy(2, 2, "consolidated", 2)
	s.Horizon = 20
	ev := eval.NewSim(nil)
	res, err := ev.Evaluate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "sim" || res.Hosts != 2 || res.CapabilityUnits != 2 {
		t.Fatalf("source=%s hosts=%d units=%g", res.Source, res.Hosts, res.CapabilityUnits)
	}
	if res.Loss < 0 || res.Loss > 1 || math.IsNaN(res.Loss) {
		t.Fatalf("loss %g outside [0,1]", res.Loss)
	}
	if res.Watts <= 0 {
		t.Fatalf("watts %g", res.Watts)
	}
	again, err := ev.Evaluate(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	again.CacheHit = res.CacheHit
	if resultsDiffer(res, again) {
		t.Fatalf("sim evaluation not deterministic: %+v vs %+v", res, again)
	}
	var asAny any = ev
	if sb, ok := asAny.(eval.SelfBudgeted); !ok || !sb.SelfBudgeted() {
		t.Fatal("sim evaluator must report itself pool-budgeted")
	}
}

func resultsDiffer(a, b eval.Result) bool {
	if a.Source != b.Source || a.Mode != b.Mode || a.Hosts != b.Hosts ||
		a.CapabilityUnits != b.CapabilityUnits || a.Loss != b.Loss ||
		a.Utilization != b.Utilization || a.Watts != b.Watts ||
		len(a.Services) != len(b.Services) {
		return true
	}
	for i := range a.Services {
		if a.Services[i] != b.Services[i] {
			return true
		}
	}
	return false
}

func TestFleetUnits(t *testing.T) {
	s := scenario.Scenario{Fleet: scenario.Fleet{Hosts: 5}}
	if h, u := eval.FleetUnits(s, []string{"cpu"}); h != 5 || u != 5 {
		t.Fatalf("homogeneous: %d/%g", h, u)
	}
	s = scenario.Scenario{Fleet: scenario.Fleet{Classes: []scenario.HostClass{
		{Preset: "amd", Count: 1},
		{Name: "fast-disk", Count: 2, Capability: map[string]float64{"diskio": 1.5}},
	}}}
	// fast-disk binds on cpu (capability 1) across {cpu, diskio}.
	if h, u := eval.FleetUnits(s, []string{"cpu", "diskio"}); h != 3 || u != 3 {
		t.Fatalf("hetero: %d/%g", h, u)
	}
	if h, u := eval.FleetUnits(s, []string{"diskio"}); h != 3 || !almost(u, 4, 1e-12) {
		t.Fatalf("diskio-only: %d/%g", h, u)
	}
}
