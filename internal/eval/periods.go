package eval

import (
	"context"

	"repro/internal/scenario"
)

// PeriodResult is one time bin's evaluation in a multi-period score.
type PeriodResult struct {
	// Name is the bin's name from the periods spec.
	Name string `json:"name"`

	// Seconds is the bin's duration.
	Seconds float64 `json:"seconds"`

	// Result is the bin's stationary sub-scenario evaluation.
	Result Result `json:"result"`

	// EnergyWh is the bin's energy at the result's steady-state draw:
	// Watts × Seconds / 3600.
	EnergyWh float64 `json:"energy_wh"`
}

// BatchEvaluator is implemented by evaluators that can score many
// candidates as one batch. Sim lowers the whole batch onto a single
// sweep-engine run, so the bins of a periods scenario share one pass
// through the pool budget and the content-addressed cache; evaluators
// without the method are scored candidate by candidate.
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, cands []scenario.Scenario) ([]Result, error)
}

// EvaluateBatch scores candidates through ev: one engine batch when ev
// batches natively, else sequentially in index order. Results are
// index-addressed against cands either way.
func EvaluateBatch(ctx context.Context, ev Evaluator, cands []scenario.Scenario) ([]Result, error) {
	if be, ok := ev.(BatchEvaluator); ok {
		return be.EvaluateBatch(ctx, cands)
	}
	out := make([]Result, len(cands))
	for i := range cands {
		r, err := ev.Evaluate(ctx, cands[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// EvaluatePeriods scores a periods scenario bin by bin: each bin's
// stationary sub-scenario (scenario.ResolvePeriods) is evaluated on the
// fixed fleet the scenario declares, and the bins come back in period
// order with their energies. The Analytic evaluator prices every bin off
// its shared Erlang memo tables; Sim runs all bins as one sweep-engine
// batch.
func EvaluatePeriods(ctx context.Context, ev Evaluator, s scenario.Scenario) ([]PeriodResult, error) {
	bins, err := s.ResolvePeriods()
	if err != nil {
		return nil, err
	}
	cands := make([]scenario.Scenario, len(bins))
	for i, b := range bins {
		cands[i] = b.Scenario
	}
	results, err := EvaluateBatch(ctx, ev, cands)
	if err != nil {
		return nil, err
	}
	out := make([]PeriodResult, len(bins))
	for i, b := range bins {
		out[i] = PeriodResult{
			Name:     b.Name,
			Seconds:  b.Seconds,
			Result:   results[i],
			EnergyWh: results[i].Watts * b.Seconds / 3600,
		}
	}
	return out, nil
}
