package eval_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/eval"
	"repro/internal/scenario"
)

// periodsScenario is a small multi-period fixture: the case-study service
// mix on a fixed 4-host fleet across three uneven bins.
func periodsScenario() scenario.Scenario {
	s := scenario.Scenario{
		Name: "eval-periods",
		Mode: "consolidated",
		Services: []scenario.Service{
			scenario.WebSpec(3976, 0),
			scenario.DBSpec(280, 0),
		},
		Fleet:   scenario.Fleet{Hosts: 4},
		Horizon: 20,
		Periods: &scenario.Periods{
			BinSec: 1800,
			Bins: []scenario.PeriodBin{
				{Name: "trough", Multiplier: 0.3},
				{Name: "shoulder", Multiplier: 0.8},
				{Name: "peak", Multiplier: 1.2},
			},
		},
	}
	return s
}

// Both evaluators refuse a periods scenario whole: it has no single
// stationary operating point, so callers must go through EvaluatePeriods.
func TestEvaluatorsRejectPeriods(t *testing.T) {
	s := periodsScenario()
	for _, ev := range []eval.Evaluator{eval.NewAnalytic(nil), eval.NewSim(nil)} {
		if _, err := ev.Evaluate(context.Background(), s); !errors.Is(err, eval.ErrUnsupported) {
			t.Errorf("%T.Evaluate: err = %v, want ErrUnsupported", ev, err)
		}
	}
	if _, err := eval.ModelFromScenario(s, 0.05); !errors.Is(err, eval.ErrUnsupported) {
		t.Errorf("ModelFromScenario: err = %v, want ErrUnsupported", err)
	}
}

// EvaluatePeriods is exactly per-bin Evaluate on the resolved stationary
// sub-scenarios — same bin names, durations, Results, and Watts×time/3600
// energy accounting.
func TestEvaluatePeriodsMatchesPerBin(t *testing.T) {
	s := periodsScenario()
	bins, err := s.ResolvePeriods()
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []eval.Evaluator{eval.NewAnalytic(nil), eval.NewSim(nil)} {
		prs, err := eval.EvaluatePeriods(context.Background(), ev, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(prs) != len(bins) {
			t.Fatalf("%T: %d period results for %d bins", ev, len(prs), len(bins))
		}
		for i, pr := range prs {
			if pr.Name != bins[i].Name || pr.Seconds != bins[i].Seconds {
				t.Fatalf("%T bin %d: %s/%g, want %s/%g",
					ev, i, pr.Name, pr.Seconds, bins[i].Name, bins[i].Seconds)
			}
			want, err := ev.Evaluate(context.Background(), bins[i].Scenario)
			if err != nil {
				t.Fatal(err)
			}
			got := pr.Result
			got.CacheHit = want.CacheHit
			if resultsDiffer(got, want) {
				t.Errorf("%T bin %s: batched result diverged from per-bin Evaluate:\n%+v\n%+v",
					ev, pr.Name, got, want)
			}
			if wantWh := want.Watts * bins[i].Seconds / 3600; pr.EnergyWh != got.Watts*bins[i].Seconds/3600 || !almost(pr.EnergyWh, wantWh, 1e-9) {
				t.Errorf("%T bin %s: energy %g Wh, want %g", ev, pr.Name, pr.EnergyWh, wantWh)
			}
		}
		// Heavier bins must cost strictly more energy per second.
		if prs[0].Result.Watts >= prs[2].Result.Watts {
			t.Errorf("%T: trough draw %g W not below peak draw %g W",
				ev, prs[0].Result.Watts, prs[2].Result.Watts)
		}
	}
}

// Batch evaluation is shard-invariant: splitting a candidate batch into
// sub-batches and concatenating the results reproduces the single-batch
// answer element for element.
func TestSimEvaluateBatchShards(t *testing.T) {
	s := periodsScenario()
	bins, err := s.ResolvePeriods()
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]scenario.Scenario, len(bins))
	for i, b := range bins {
		cands[i] = b.Scenario
	}
	ev := eval.NewSim(nil)
	whole, err := ev.EvaluateBatch(context.Background(), cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) != len(cands) {
		t.Fatalf("results = %d, want %d", len(whole), len(cands))
	}
	var split []eval.Result
	for _, part := range [][]scenario.Scenario{cands[:1], cands[1:]} {
		rs, err := ev.EvaluateBatch(context.Background(), part)
		if err != nil {
			t.Fatal(err)
		}
		split = append(split, rs...)
	}
	for i := range whole {
		a, b := whole[i], split[i]
		b.CacheHit = a.CacheHit
		if resultsDiffer(a, b) {
			t.Errorf("candidate %d: whole-batch and split-batch results diverged:\n%+v\n%+v", i, a, b)
		}
	}
}

// The package-level EvaluateBatch falls back to sequential Evaluate for
// evaluators without native batching, preserving index addressing.
func TestEvaluateBatchFallback(t *testing.T) {
	s := periodsScenario()
	bins, err := s.ResolvePeriods()
	if err != nil {
		t.Fatal(err)
	}
	cands := []scenario.Scenario{bins[0].Scenario, bins[2].Scenario}
	ev := eval.NewAnalytic(nil)
	got, err := eval.EvaluateBatch(context.Background(), ev, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cands {
		want, err := ev.Evaluate(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if resultsDiffer(got[i], want) {
			t.Errorf("candidate %d diverged from sequential Evaluate", i)
		}
	}
}
