package eval

import (
	"context"
	"fmt"
	"math"

	"repro/internal/pool"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Sim scores candidates by discrete-event simulation, lowered onto the
// existing sweep engine: every evaluation is one sweep point, so it draws
// workers from the shared pool budget and — when the engine has a cache —
// is memoized content-addressed. A placement search that revisits a
// candidate pays a file read, not a simulation.
type Sim struct {
	engine *sweep.Engine
}

// NewSim builds a sim evaluator over the given engine; nil builds a
// private cacheless engine on a GOMAXPROCS pool.
func NewSim(engine *sweep.Engine) *Sim {
	if engine == nil {
		p, err := pool.New(0)
		if err != nil {
			panic(err) // pool.New(0) cannot fail
		}
		engine = sweep.NewEngine(p, nil, nil)
	}
	return &Sim{engine: engine}
}

// SelfBudgeted reports that the sweep engine already draws simulation
// workers from the shared pool: callers must not wrap Evaluate in slots of
// the same pool.
func (e *Sim) SelfBudgeted() bool { return true }

// Evaluate runs the candidate through the sweep engine and folds the
// point summary into the shared Result shape.
func (e *Sim) Evaluate(ctx context.Context, s scenario.Scenario) (Result, error) {
	results, err := e.EvaluateBatch(ctx, []scenario.Scenario{s})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// EvaluateBatch runs all candidates through the sweep engine as one
// point batch — one pass through the pool budget and the result cache —
// and folds each point summary into the shared Result shape, index-
// addressed against cands. Loss is the worst per-service simulated loss;
// a service whose window saw no arrivals reports the overall loss
// instead of NaN.
func (e *Sim) EvaluateBatch(ctx context.Context, cands []scenario.Scenario) ([]Result, error) {
	points := make([]sweep.Point, len(cands))
	resolved := make([]scenario.Scenario, len(cands))
	for i := range cands {
		r := cands[i].Clone()
		r.ApplyDefaults()
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.Periods != nil {
			return nil, fmt.Errorf("%w: a periods scenario is time-varying; evaluate its resolved bins (EvaluatePeriods)", ErrUnsupported)
		}
		label := r.Name
		if label == "" {
			label = "candidate"
		}
		resolved[i] = r
		points[i] = sweep.Point{Index: i, Label: label, Scenario: r}
	}
	prs, err := e.engine.RunPoints(ctx, points)
	if err != nil {
		return nil, err
	}
	if len(prs) != len(points) {
		return nil, fmt.Errorf("eval: sim returned %d points for %d candidates", len(prs), len(points))
	}
	out := make([]Result, len(prs))
	for i, pr := range prs {
		res, err := foldSimPoint(resolved[i], pr)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// foldSimPoint folds one sweep point summary into the shared Result shape.
func foldSimPoint(resolved scenario.Scenario, pr sweep.PointResult) (Result, error) {
	resources, err := ScenarioResources(resolved)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Source:   "sim",
		Mode:     resolved.Mode,
		Hosts:    pr.Hosts,
		CacheHit: pr.CacheHit,
	}
	if resolved.Mode == "dedicated" {
		res.CapabilityUnits = float64(pr.Hosts)
	} else {
		_, res.CapabilityUnits = FleetUnits(resolved, resources)
	}
	overall := float64(pr.OverallLoss.Point)
	res.Services = make([]ServiceLoss, len(pr.Services))
	for i, sp := range pr.Services {
		loss := float64(sp.Loss.Point)
		if math.IsNaN(loss) {
			loss = overall
		}
		res.Services[i] = ServiceLoss{Name: sp.Name, Loss: loss}
		if loss > res.Loss {
			res.Loss = loss
		}
	}
	res.Utilization = float64(pr.BottleneckUtil.Point)
	if pr.Window > 0 {
		res.Watts = (float64(pr.EnergyBusyJ) + float64(pr.EnergyIdleJ)) / pr.Window
	}
	return res, nil
}
