package eval

import (
	"context"
	"fmt"
	"math"

	"repro/internal/pool"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Sim scores candidates by discrete-event simulation, lowered onto the
// existing sweep engine: every evaluation is one sweep point, so it draws
// workers from the shared pool budget and — when the engine has a cache —
// is memoized content-addressed. A placement search that revisits a
// candidate pays a file read, not a simulation.
type Sim struct {
	engine *sweep.Engine
}

// NewSim builds a sim evaluator over the given engine; nil builds a
// private cacheless engine on a GOMAXPROCS pool.
func NewSim(engine *sweep.Engine) *Sim {
	if engine == nil {
		p, err := pool.New(0)
		if err != nil {
			panic(err) // pool.New(0) cannot fail
		}
		engine = sweep.NewEngine(p, nil, nil)
	}
	return &Sim{engine: engine}
}

// SelfBudgeted reports that the sweep engine already draws simulation
// workers from the shared pool: callers must not wrap Evaluate in slots of
// the same pool.
func (e *Sim) SelfBudgeted() bool { return true }

// Evaluate runs the candidate through the sweep engine and folds the
// point summary into the shared Result shape. Loss is the worst
// per-service simulated loss; a service whose window saw no arrivals
// reports the overall loss instead of NaN.
func (e *Sim) Evaluate(ctx context.Context, s scenario.Scenario) (Result, error) {
	resolved := s.Clone()
	resolved.ApplyDefaults()
	if err := resolved.Validate(); err != nil {
		return Result{}, err
	}
	label := resolved.Name
	if label == "" {
		label = "candidate"
	}
	results, err := e.engine.RunPoints(ctx, []sweep.Point{{Index: 0, Label: label, Scenario: resolved}})
	if err != nil {
		return Result{}, err
	}
	if len(results) != 1 {
		return Result{}, fmt.Errorf("eval: sim returned %d points for one candidate", len(results))
	}
	pr := results[0]

	resources, err := ScenarioResources(resolved)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Source:   "sim",
		Mode:     resolved.Mode,
		Hosts:    pr.Hosts,
		CacheHit: pr.CacheHit,
	}
	if resolved.Mode == "dedicated" {
		res.CapabilityUnits = float64(pr.Hosts)
	} else {
		_, res.CapabilityUnits = FleetUnits(resolved, resources)
	}
	overall := float64(pr.OverallLoss.Point)
	res.Services = make([]ServiceLoss, len(pr.Services))
	for i, sp := range pr.Services {
		loss := float64(sp.Loss.Point)
		if math.IsNaN(loss) {
			loss = overall
		}
		res.Services[i] = ServiceLoss{Name: sp.Name, Loss: loss}
		if loss > res.Loss {
			res.Loss = loss
		}
	}
	res.Utilization = float64(pr.BottleneckUtil.Point)
	if pr.Window > 0 {
		res.Watts = (float64(pr.EnergyBusyJ) + float64(pr.EnergyIdleJ)) / pr.Window
	}
	return res, nil
}
