package experiments

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/virt"
	"repro/internal/workload"
)

// The canonical case-study calibration (DESIGN.md §2). Two services — the
// SPECweb2005-driven e-commerce Web service and the TPC-W-driven e-book DB
// service — with reconstructed serving rates and the impact factors
// produced by the paper's own fitted curves evaluated at the per-resource
// active VM count of a consolidated host (disk: only the Web VM → v = 1;
// CPU: both VMs → v = 2), clamped to the model's (0, 1] domain.
const (
	// LossTarget is the per-row loss probability B of Table I.
	LossTarget = 0.05

	// ModelIntensity is the fraction of the Erlang-admissible traffic the
	// model-side workload selection uses (the Fig. 9 rule picks discrete
	// operating points slightly inside the bound).
	ModelIntensity = core.DefaultWorkloadIntensity

	// SaturationIntensity is the fraction of dedicated pool *capacity* the
	// cluster-level experiments offer — the knee of Fig. 9's curves, and
	// the highest load at which the model-predicted consolidated pool
	// still meets QoS (see DESIGN.md).
	SaturationIntensity = 0.70
)

// caseStudyImpact evaluates the fitted curves at the consolidated host's
// per-resource active VM counts, clamped to (0, 1].
func caseStudyImpact() (aWI, aWC, aDC float64) {
	clampWI := virt.Clamped{Curve: virt.WebDiskIOCurve}
	clampWC := virt.Clamped{Curve: virt.WebCPUCurve}
	clampDC := virt.Clamped{Curve: virt.DBCPUCurve}
	return clampWI.At(1), clampWC.At(2), clampDC.At(2)
}

// WebService builds the Web service for the analytic model at arrival rate
// lambda (requests/s).
func WebService(lambda float64) core.Service {
	aWI, aWC, _ := caseStudyImpact()
	return core.Service{
		Name:        "web",
		ArrivalRate: lambda,
		ServingRates: map[core.Resource]float64{
			core.DiskIO: workload.WebDiskRate,
			core.CPU:    workload.WebCPURate,
		},
		ImpactFactors: map[core.Resource]float64{
			core.DiskIO: aWI,
			core.CPU:    aWC,
		},
	}
}

// DBService builds the DB service for the analytic model at arrival rate
// lambda (WIPS offered).
func DBService(lambda float64) core.Service {
	_, _, aDC := caseStudyImpact()
	return core.Service{
		Name:        "db",
		ArrivalRate: lambda,
		ServingRates: map[core.Resource]float64{
			core.CPU: workload.DBCPURate,
		},
		ImpactFactors: map[core.Resource]float64{
			core.CPU: aDC,
		},
	}
}

// CaseStudyModel builds the two-service analytic model with the intensive
// workloads of the given dedicated pool sizes (webServers Web + dbServers
// DB).
func CaseStudyModel(webServers, dbServers int) (*core.Model, error) {
	base := &core.Model{
		Services:   []core.Service{WebService(1), DBService(1)},
		Resources:  []core.Resource{core.CPU, core.DiskIO},
		LossTarget: LossTarget,
		Power:      core.PowerParams{Base: power.DefaultServer.Base, Max: power.DefaultServer.Max},
	}
	return base.WithIntensiveWorkloads([]int{webServers, dbServers})
}

// saturationRates reports the cluster-level case-study arrival rates for
// pools of the given sizes: SaturationIntensity × pool capacity on each
// service's bottleneck.
func saturationRates(webServers, dbServers int) (lambdaW, lambdaD float64) {
	lambdaW = SaturationIntensity * float64(webServers) * workload.WebDiskRate
	lambdaD = SaturationIntensity * float64(dbServers) * workload.DBCPURate
	return
}

// webClusterSpec builds the cluster-simulator Web service at rate lambda.
func webClusterSpec(lambda float64, dedicated int) cluster.ServiceSpec {
	return cluster.ServiceSpec{
		Profile:          workload.SPECwebEcommerce(),
		Overhead:         virt.WebHostOverhead(),
		Arrivals:         workload.NewPoisson(lambda),
		DedicatedServers: dedicated,
	}
}

// dbClusterSpec builds the cluster-simulator DB service at rate lambda
// (open loop, for the deployment comparisons; Fig. 7/8/9a drive the DB
// closed-loop with emulated browsers instead).
func dbClusterSpec(lambda float64, dedicated int) cluster.ServiceSpec {
	return cluster.ServiceSpec{
		Profile:          workload.TPCWEbook(),
		Overhead:         virt.DBHostOverhead(),
		Arrivals:         workload.NewPoisson(lambda),
		DedicatedServers: dedicated,
	}
}

// dbClosedSpec builds the closed-loop DB service with the given emulated
// browsers.
func dbClosedSpec(clients, dedicated int) cluster.ServiceSpec {
	return cluster.ServiceSpec{
		Profile:          workload.TPCWEbook(),
		Overhead:         virt.DBHostOverhead(),
		Clients:          clients,
		DedicatedServers: dedicated,
	}
}
