package experiments

import (
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/virt"
	"repro/internal/workload"
)

// The canonical case-study calibration (DESIGN.md §2). Two services — the
// SPECweb2005-driven e-commerce Web service and the TPC-W-driven e-book DB
// service — with reconstructed serving rates and the impact factors
// produced by the paper's own fitted curves evaluated at the per-resource
// active VM count of a consolidated host (disk: only the Web VM → v = 1;
// CPU: both VMs → v = 2), clamped to the model's (0, 1] domain.
const (
	// LossTarget is the per-row loss probability B of Table I.
	LossTarget = 0.05

	// ModelIntensity is the fraction of the Erlang-admissible traffic the
	// model-side workload selection uses (the Fig. 9 rule picks discrete
	// operating points slightly inside the bound).
	ModelIntensity = core.DefaultWorkloadIntensity

	// SaturationIntensity is the fraction of dedicated pool *capacity* the
	// cluster-level experiments offer — the knee of Fig. 9's curves, and
	// the highest load at which the model-predicted consolidated pool
	// still meets QoS (see DESIGN.md). The canonical value lives with the
	// scenario presets, which are the experiments' source of truth.
	SaturationIntensity = scenario.SaturationIntensity
)

// caseStudyImpact evaluates the fitted curves at the consolidated host's
// per-resource active VM counts, clamped to (0, 1].
func caseStudyImpact() (aWI, aWC, aDC float64) {
	clampWI := virt.Clamped{Curve: virt.WebDiskIOCurve}
	clampWC := virt.Clamped{Curve: virt.WebCPUCurve}
	clampDC := virt.Clamped{Curve: virt.DBCPUCurve}
	return clampWI.At(1), clampWC.At(2), clampDC.At(2)
}

// WebService builds the Web service for the analytic model at arrival rate
// lambda (requests/s).
func WebService(lambda float64) core.Service {
	aWI, aWC, _ := caseStudyImpact()
	return core.Service{
		Name:        "web",
		ArrivalRate: lambda,
		ServingRates: map[core.Resource]float64{
			core.DiskIO: workload.WebDiskRate,
			core.CPU:    workload.WebCPURate,
		},
		ImpactFactors: map[core.Resource]float64{
			core.DiskIO: aWI,
			core.CPU:    aWC,
		},
	}
}

// DBService builds the DB service for the analytic model at arrival rate
// lambda (WIPS offered).
func DBService(lambda float64) core.Service {
	_, _, aDC := caseStudyImpact()
	return core.Service{
		Name:        "db",
		ArrivalRate: lambda,
		ServingRates: map[core.Resource]float64{
			core.CPU: workload.DBCPURate,
		},
		ImpactFactors: map[core.Resource]float64{
			core.CPU: aDC,
		},
	}
}

// CaseStudyModel builds the two-service analytic model with the intensive
// workloads of the given dedicated pool sizes (webServers Web + dbServers
// DB).
func CaseStudyModel(webServers, dbServers int) (*core.Model, error) {
	base := &core.Model{
		Services:   []core.Service{WebService(1), DBService(1)},
		Resources:  []core.Resource{core.CPU, core.DiskIO},
		LossTarget: LossTarget,
		Power:      core.PowerParams{Base: power.DefaultServer.Base, Max: power.DefaultServer.Max},
	}
	return base.WithIntensiveWorkloads([]int{webServers, dbServers})
}

// The cluster-simulator side of the case study builds its service specs
// through internal/scenario (scenario.WebSpec, scenario.DBSpec,
// scenario.DBClosedSpec, scenario.WebSessionsSpec and the registered
// presets) — one declarative pipeline shared with cmd/simulate and any
// scenario JSON a reader writes.
