package experiments

import (
	"context"

	"repro/internal/diurnal"
	"repro/internal/erlang"
	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// DiurnalRow is one provisioning strategy evaluated against a full
// synthetic day of non-stationary traffic.
type DiurnalRow struct {
	Strategy string
	Servers  int
	SimLoss  float64
	ModelB   float64 // the Erlang B value the strategy was sized from
}

// DiurnalResult is the nonstationarity ablation: the Erlang model assumes
// a stationary Poisson stream, but real Internet traffic follows daily
// cycles (Fig. 2). Sizing from the *mean* rate under-provisions because
// losses concentrate at the peak; sizing from the *peak* rate (the Fig. 2
// capacity line) restores the QoS target at the cost of more servers.
type DiurnalResult struct {
	MeanRate float64
	PeakRate float64
	Rows     []DiurnalRow
}

// Diurnal simulates one day of NHPP traffic against pools sized three
// ways: from the mean rate, from the daily peak, and from the 95th
// percentile of the cycle.
func Diurnal(cfg Config) (*DiurnalResult, error) {
	day, err := diurnal.Synthesize(diurnal.Config{
		Name: "web-day", Base: 1.0, Peak: 5.0, PeakHour: 14, Noise: 0.05,
		BinSec: 900, // 15-minute bins keep the NHPP windows coarse
	}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const target = 0.02
	mu := 1.0 // unit service rate: trace values are offered Erlangs

	res := &DiurnalResult{
		MeanRate: day.Mean(),
		PeakRate: day.Peak(),
	}

	sizeFor := func(rho float64) (int, float64, error) {
		n, err := erlang.Servers(rho, target, 0)
		if err != nil {
			return 0, 0, err
		}
		b, err := erlang.B(n, rho)
		return n, b, err
	}
	p95, err := diurnal.CapacityLine(day, 0.05)
	if err != nil {
		return nil, err
	}
	strategies := []struct {
		name string
		rho  float64
	}{
		{"size-for-mean", day.Mean()},
		{"size-for-p95", p95},
		{"size-for-peak", day.Peak()},
	}

	// One simulated day (or an eighth of one in Quick mode, preserving the
	// cycle by compressing the bin width).
	binSec := day.BinSec
	if cfg.Quick {
		binSec /= 8
	}
	res.Rows = make([]DiurnalRow, len(strategies))
	for i, s := range strategies {
		n, modelB, err := sizeFor(s.rho)
		if err != nil {
			return nil, err
		}
		res.Rows[i] = DiurnalRow{Strategy: s.name, Servers: n, ModelB: modelB}
	}
	// The three day-long sims share the pool and memoize on the synthetic
	// day's parameters (which, with cfg.Seed, pin the trace bit-exactly).
	e := cfg.engine().Scoped("ablation-diurnal")
	err = e.Go(context.Background(), len(res.Rows), func(ctx context.Context, i int) error {
		seed := cfg.Seed + uint64(i)
		loss, err := sweep.Cached(ctx, e,
			cacheKey("ablation-diurnal/day", "web-day", 1.0, 5.0, 14, 0.05, day.BinSec,
				cfg.Seed, binSec, res.Rows[i].Servers, seed),
			func(context.Context) (float64, error) {
				sim, err := queueing.Simulate(queueing.Config{
					Servers:  res.Rows[i].Servers,
					Arrivals: workload.FromTrace(day.Values, binSec, true),
					Service:  stats.NewExponential(mu),
					Horizon:  binSec * float64(len(day.Values)),
					Warmup:   0, // the cycle has no transient: start at the trough-adjacent bin
					Seed:     seed,
				})
				if err != nil {
					return 0, err
				}
				return sim.LossProb, nil
			})
		if err != nil {
			return err
		}
		res.Rows[i].SimLoss = loss
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Tables renders the nonstationarity ablation.
func (r *DiurnalResult) Tables() []*Table {
	t := &Table{
		ID:      "ablation-diurnal",
		Title:   "nonstationary (diurnal) traffic vs stationary Erlang sizing, one simulated day",
		Columns: []string{"strategy", "servers", "model B at sizing point", "simulated day loss"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, row.Servers, row.ModelB, row.SimLoss)
	}
	t.Notes = append(t.Notes,
		"losses concentrate at the daily peak: sizing from the mean rate misses the QoS target",
		"sizing from the peak (Fig. 2's capacity line) restores it — the model must be fed peak-period rates")
	return []*Table{t}
}

func runDiurnal(cfg Config) ([]*Table, error) {
	r, err := Diurnal(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}
