package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// smoothedCostWh is the per-VM-move migration charge of the ablation's
// middle policy: a handful of watt-hours, the order of one live
// migration's transfer energy, so smoothing keeps the big diurnal swings
// but stops chasing single-host wiggles.
const smoothedCostWh = 12.0

// DiurnalPlanRow is one migration-cost policy in the multi-period
// planning ablation.
type DiurnalPlanRow struct {
	Policy      string
	CostWh      float64 // +Inf for the forced-static policy
	Segments    int
	Migrations  int
	MinHosts    int
	MaxHosts    int
	EnergyWh    float64
	MigrationWh float64
	TotalWh     float64
	MaxBinLoss  float64
}

// DiurnalPlanResult couples the policy rows with the headline
// comparison — the static-peak and smoothed day totals — and one
// simulated validation of the smoothed plan's peak bin.
type DiurnalPlanResult struct {
	Rows        []DiurnalPlanRow
	StaticWh    float64
	SmoothedWh  float64
	PeakSimLoss float64
}

// DiurnalPlan exercises the multi-period planner (internal/plan,
// DESIGN.md §13) on the group-2 case study under the canonical 24-bin
// diurnal day: the same fleet question the paper's static sizing
// answers, but asked per hour. Three migration-cost policies bracket
// the design space — an infinite cost forces the static peak fleet, a
// zero cost resizes every hour, and a moderate cost smooths in
// between — and the smoothed day must strictly beat the static one on
// watt-hours while every bin stays under the loss target. The smoothed
// plan's peak bin is then re-scored by the cluster simulator.
func DiurnalPlan(cfg Config) (*DiurnalPlanResult, error) {
	base := scenario.CaseStudy(4, 4, "consolidated", 4)
	base.Seed = cfg.Seed
	base.Periods = &scenario.Periods{}

	ev := eval.NewAnalytic(nil)
	ctx := context.Background()
	policies := []struct {
		name string
		cost float64
	}{
		{"static-peak", math.Inf(1)},
		{"smoothed", smoothedCostWh},
		{"per-bin", 0},
	}
	res := &DiurnalPlanResult{}
	var smoothed plan.PeriodPlan
	for _, pol := range policies {
		pp, err := plan.SearchPeriods(ctx, ev, nil,
			plan.Spec{Scenario: base, Target: LossTarget}, pol.cost)
		if err != nil {
			return nil, fmt.Errorf("ablation-diurnal-plan: %s: %w", pol.name, err)
		}
		row := DiurnalPlanRow{
			Policy:      pol.name,
			CostWh:      pol.cost,
			Segments:    pp.Bins[len(pp.Bins)-1].Segment + 1,
			Migrations:  len(pp.Migrations),
			MinHosts:    pp.Bins[0].Hosts,
			EnergyWh:    pp.EnergyWh,
			MigrationWh: pp.MigrationWh,
			TotalWh:     pp.TotalWh,
		}
		for _, b := range pp.Bins {
			if b.Hosts < row.MinHosts {
				row.MinHosts = b.Hosts
			}
			if b.Hosts > row.MaxHosts {
				row.MaxHosts = b.Hosts
			}
			if b.Result.Loss > row.MaxBinLoss {
				row.MaxBinLoss = b.Result.Loss
			}
		}
		res.Rows = append(res.Rows, row)
		switch pol.name {
		case "static-peak":
			res.StaticWh = pp.TotalWh
		case "smoothed":
			res.SmoothedWh = pp.TotalWh
			smoothed = pp
		}
	}

	// Validate the smoothed plan where it is most stressed: re-score its
	// busiest bin's placement with the cluster simulator.
	bins, err := base.ResolvePeriods()
	if err != nil {
		return nil, err
	}
	peak := 0
	for i, b := range smoothed.Bins {
		if b.Hosts > smoothed.Bins[peak].Hosts ||
			(b.Hosts == smoothed.Bins[peak].Hosts && b.Result.Watts > smoothed.Bins[peak].Result.Watts) {
			peak = i
		}
	}
	pb := smoothed.Bins[peak]
	placed := plan.Plan{Hosts: pb.Hosts, Classes: pb.Classes, Dedicated: pb.Dedicated}.Apply(bins[peak].Scenario)
	placed.Horizon = cfg.scale(120)
	placed.Warmup = nil // re-derive from the (possibly Quick-shrunk) horizon
	sim := eval.NewSim(cfg.engine().Scoped("ablation-diurnal-plan"))
	simRes, err := sim.Evaluate(ctx, placed)
	if err != nil {
		return nil, fmt.Errorf("ablation-diurnal-plan: simulating peak bin %s: %w", pb.Name, err)
	}
	res.PeakSimLoss = simRes.Loss
	return res, nil
}

// Tables renders the ablation.
func (r *DiurnalPlanResult) Tables() []*Table {
	t := &Table{
		ID:    "ablation-diurnal-plan",
		Title: "multi-period diurnal planning vs a static peak fleet (DESIGN.md §13)",
		Columns: []string{"policy", "cost Wh/move", "segments", "migrations",
			"hosts", "energy Wh", "migration Wh", "total Wh", "max bin B"},
	}
	for _, row := range r.Rows {
		cost := fmt.Sprintf("%g", row.CostWh)
		if math.IsInf(row.CostWh, 1) {
			cost = "inf"
		}
		t.AddRow(row.Policy, cost, row.Segments, row.Migrations,
			fmt.Sprintf("%d–%d", row.MinHosts, row.MaxHosts),
			row.EnergyWh, row.MigrationWh, row.TotalWh, row.MaxBinLoss)
	}
	if r.StaticWh > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"smoothed day spends %.1f kWh vs %.1f kWh static — %.0f%% saved with every bin under B = %g (tested)",
			r.SmoothedWh/1000, r.StaticWh/1000, 100*(r.StaticWh-r.SmoothedWh)/r.StaticWh, LossTarget))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"simulated loss at the smoothed plan's peak bin: %.4f", r.PeakSimLoss))
	return []*Table{t}
}

func runDiurnalPlan(cfg Config) ([]*Table, error) {
	r, err := DiurnalPlan(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}
