package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/pool"
	"repro/internal/sweep"
)

// defaultEngine backs experiments run without an injected engine (library
// callers, tests): a GOMAXPROCS-bounded pool, no cache, private metrics.
var defaultEngine = sync.OnceValue(func() *sweep.Engine {
	p, err := pool.New(0)
	if err != nil {
		panic(err) // pool.New(0) cannot fail
	}
	return sweep.NewEngine(p, nil, nil)
})

func (c Config) engine() *sweep.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return defaultEngine()
}

// runPoints executes an experiment's declarative point list through the
// shared sweep engine, scoping its progress and cache counters under the
// experiment ID. Results come back in point order.
func (c Config) runPoints(id string, pts []sweep.Point) ([]sweep.PointResult, error) {
	for i := range pts {
		pts[i].Index = i
	}
	return c.engine().Scoped(id).RunPoints(context.Background(), pts)
}

// cacheKey renders arbitrary experiment parameters into a content address
// for sweep.Cached. Every input that shapes the result — rates, sizes,
// horizons and seeds — must appear among the parts.
func cacheKey(parts ...any) string {
	ss := make([]string, len(parts))
	for i, p := range parts {
		ss[i] = fmt.Sprint(p)
	}
	return sweep.Key(ss...)
}
