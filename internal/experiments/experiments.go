// Package experiments reproduces every table and figure of the paper's
// evaluation (Section IV) plus the motivation analysis of Fig. 2, using the
// simulation substrates in place of the authors' 17-server testbed. Each
// ExpXXX function returns a structured result with a Table method that
// renders the same rows/series the paper reports; cmd/repro prints them and
// bench_test.go regenerates them under `go test -bench`.
//
// The headline reproduction targets (shape, not absolute numbers) are
// listed in DESIGN.md §3 and the achieved values are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sweep"
)

// Config controls experiment execution.
type Config struct {
	// Seed drives all simulations; experiments derive deterministic
	// sub-seeds from it.
	Seed uint64

	// Quick shrinks horizons and sweep densities by roughly an order of
	// magnitude, for tests and fast benchmarking. Shapes survive; noise
	// grows.
	Quick bool

	// Engine, when non-nil, executes every simulation: its pool is the one
	// concurrency budget all experiments share, and its cache memoizes
	// completed points across runs. Nil falls back to a process-wide
	// default engine (GOMAXPROCS-bounded, no cache). The engine never
	// changes results — seeds do.
	Engine *sweep.Engine
}

// scale returns v shrunk under Quick mode.
func (c Config) scale(v float64) float64 {
	if c.Quick {
		return v / 8
	}
	return v
}

// Table is a printable experiment artifact: the rows/series of one paper
// table or figure.
type Table struct {
	ID      string // e.g. "fig5a", "table1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow formats and appends one row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown, for writing
// artifacts to report files (cmd/repro -o).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its runner for the cmd/repro registry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) ([]*Table, error)
}

// All lists every reproducible artifact in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Consolidation headroom of diurnal workloads (motivation, Fig. 2)", runFig2},
		{"fig5", "Web throughput & disk-I/O impact factor vs #VMs (Fig. 5)", runFig5},
		{"fig6", "Web throughput & CPU impact factor vs #VMs (Fig. 6)", runFig6},
		{"fig7", "vCPU pinning effect on DB throughput (Fig. 7)", runFig7},
		{"fig8", "DB throughput & CPU/software impact factor vs #VMs (Fig. 8)", runFig8},
		{"fig9", "Workload selection on 4-server pools (Fig. 9)", runFig9},
		{"table1", "Utility analytic model inputs and outputs (Table I)", runTable1},
		{"fig10", "Group 1: 6 dedicated vs 2/3/4 consolidated servers (Fig. 10)", runFig10},
		{"fig11", "Group 2: 8 dedicated vs 4 consolidated servers (Fig. 11)", runFig11},
		{"fig12", "Total power: 8 dedicated vs 4 consolidated (Fig. 12)", runFig12},
		{"fig13", "Workload-only power (Fig. 13)", runFig13},
		{"appa", "Allocator QoS bound at M = N (Section III-B.4 app. 1)", runAppA},
		{"appb", "Ideal-virtualization bound at M = N (Section III-B.4 app. 2)", runAppB},
		{"modelval", "Model vs simulation loss probability (Section IV claim)", runModelVal},
		{"hetero", "Heterogeneous fleets (Section V future work)", runHetero},
		{"ablation-form", "Ablation: the three Eq. (5) readings", runFormAblation},
		{"ablation-scv", "Ablation: service-time insensitivity", runSCVAblation},
		{"ablation-burst", "Ablation: Poisson-assumption sensitivity", runBurstAblation},
		{"ablation-alloc", "Ablation: resource-flowing granularity", runAllocAblation},
		{"ablation-diurnal", "Ablation: nonstationary diurnal traffic", runDiurnal},
		{"ablation-plan", "Ablation: placement planner vs analytic sizing", runPlanAblation},
		{"ablation-diurnal-plan", "Ablation: multi-period diurnal planning vs static peak", runDiurnalPlan},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
