package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// quickCfg runs experiments in the reduced mode used by CI-style tests.
func quickCfg() Config { return Config{Seed: 42, Quick: true} }

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bee"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("str", int64(7))
	tab.AddRow(12345.6, 0.00001)
	tab.Notes = append(tab.Notes, "hello")
	s := tab.String()
	for _, want := range []string{"demo", "a", "bee", "str", "hello", "12346"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("table1"); !ok {
		t.Fatal("lookup table1 failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestFig2Headroom(t *testing.T) {
	r, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Headroom.PeakOfSum >= r.Headroom.SumOfPeaks {
		t.Fatal("no consolidation headroom")
	}
	if r.Headroom.ServersConsolidated >= r.Headroom.ServersDedicated {
		t.Fatalf("servers %d -> %d", r.Headroom.ServersDedicated, r.Headroom.ServersConsolidated)
	}
	if r.Line99 <= 0 || r.Line99 > r.Sum.Peak() {
		t.Fatalf("capacity line %g", r.Line99)
	}
	if len(r.Tables()) != 2 {
		t.Fatal("fig2 table count")
	}
}

func TestTable1PaperRows(t *testing.T) {
	r, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].M != 6 || r.Rows[0].N != 3 {
		t.Fatalf("row 1: M=%d N=%d, want 6->3", r.Rows[0].M, r.Rows[0].N)
	}
	if r.Rows[1].M != 8 || r.Rows[1].N != 4 {
		t.Fatalf("row 2: M=%d N=%d, want 8->4", r.Rows[1].M, r.Rows[1].N)
	}
	// Headline claims.
	if r.Rows[1].UtilizationImprovement < 1.3 || r.Rows[1].UtilizationImprovement > 1.7 {
		t.Fatalf("utilization improvement %.2f", r.Rows[1].UtilizationImprovement)
	}
	if r.Rows[1].PowerSaving < 0.35 || r.Rows[1].PowerSaving > 0.60 {
		t.Fatalf("power saving %.2f", r.Rows[1].PowerSaving)
	}
	if r.Rows[0].ServerSaving != 0.5 || r.Rows[1].ServerSaving != 0.5 {
		t.Fatal("server saving should be 50% in both rows")
	}
	// Extended sweep keeps saving at or above ~40 %.
	for _, row := range r.Extended {
		if row.N > row.M {
			t.Fatalf("extended row M=%d N=%d", row.M, row.N)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.FitLinear == nil {
		t.Fatal("no linear fit")
	}
	// Impact factor declines with VM count.
	if r.FitLinear.Slope >= 0 {
		t.Fatalf("slope %.4f should be negative", r.FitLinear.Slope)
	}
	// First VM is near-native (intercept+slope ~0.98).
	if a1 := r.Impacts[r.VMCounts[0]]; a1 < 0.85 || a1 > 1.1 {
		t.Fatalf("impact at v=1 is %.3f", a1)
	}
	// Throughput at 4 VMs is clearly below native at saturation.
	last := len(r.Loads) - 1
	vMax := r.VMCounts[len(r.VMCounts)-1]
	if r.PerVM[vMax][last] >= r.Native[last] {
		t.Fatalf("v=%d throughput %.0f >= native %.0f at saturation",
			vMax, r.PerVM[vMax][last], r.Native[last])
	}
	if len(r.Tables()) != 2 {
		t.Fatal("table count")
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.FitLinear == nil || r.FitLinear.Slope >= 0 {
		t.Fatal("CPU impact should decline")
	}
	// Fig. 6: virtualized CPU performance is much worse than native —
	// impact well below 1 even at v=1 (~0.64).
	if a1 := r.Impacts[1]; a1 > 0.80 {
		t.Fatalf("CPU impact at v=1 = %.3f, want well below 1", a1)
	}
}

func TestFig7PinningPenalty(t *testing.T) {
	r, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.PlateauRatio()
	if ratio < 0.65 || ratio > 0.85 {
		t.Fatalf("unpinned/pinned plateau ratio %.3f, want ~0.75", ratio)
	}
	if len(r.Tables()) != 1 {
		t.Fatal("table count")
	}
}

func TestFig8OSCeiling(t *testing.T) {
	r, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.FitRational == nil {
		t.Fatal("no rational fit")
	}
	// Native and 1 VM deliver roughly half of the multi-VM plateau.
	a1 := r.Impacts[1]
	if a1 < 0.8 || a1 > 1.05 {
		t.Fatalf("v=1 impact %.3f, want ~0.92", a1)
	}
	aMax := r.Impacts[r.VMCounts[len(r.VMCounts)-1]]
	if aMax < 1.3 {
		t.Fatalf("multi-VM impact %.3f, want > 1.3 (Fig. 8's doubling)", aMax)
	}
	// The fitted coefficient approximates the reconstructed 1.85.
	if r.FitRational.C < 1.5 || r.FitRational.C > 2.2 {
		t.Fatalf("fitted C = %.3f", r.FitRational.C)
	}
}

func TestFig9Knees(t *testing.T) {
	r, err := Fig9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// DB WIPS saturates at (roughly) the pool limit.
	maxWIPS := 0.0
	for _, w := range r.WIPS {
		if w > maxWIPS {
			maxWIPS = w
		}
	}
	if maxWIPS > r.WIPSLimit*1.05 {
		t.Fatalf("WIPS %.1f exceeded the limit %.1f", maxWIPS, r.WIPSLimit)
	}
	if maxWIPS < r.WIPSLimit*0.85 {
		t.Fatalf("WIPS never approached the limit: %.1f vs %.1f", maxWIPS, r.WIPSLimit)
	}
	// Web response time grows with sessions.
	first, last := r.RespTime[0], r.RespTime[len(r.RespTime)-1]
	if last <= first {
		t.Fatalf("response time flat: %.5f .. %.5f", first, last)
	}
	// Selected operating points sit inside the sweep.
	if r.SelectedEBs <= r.EBs[0] || r.SelectedSessions <= r.Sessions[0] {
		t.Fatal("selected workloads out of range")
	}
}

func TestFig10GroupOne(t *testing.T) {
	r, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ded, c2, c3, c4 := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3]
	// 2 consolidated hosts collapse the DB service.
	if c2.DBWips > 0.8*ded.DBWips {
		t.Fatalf("2-host DB WIPS %.1f vs dedicated %.1f — no collapse", c2.DBWips, ded.DBWips)
	}
	// 3 consolidated hosts match dedicated within 10 %.
	if rel := relErr(c3.DBWips, ded.DBWips); rel > 0.10 {
		t.Fatalf("3-host DB WIPS %.1f vs dedicated %.1f", c3.DBWips, ded.DBWips)
	}
	if c3.WebLoss > ded.WebLoss+0.10 {
		t.Fatalf("3-host web loss %.3f vs dedicated %.3f", c3.WebLoss, ded.WebLoss)
	}
	// 4 consolidated hosts also fine.
	if rel := relErr(c4.DBWips, ded.DBWips); rel > 0.10 {
		t.Fatalf("4-host DB WIPS %.1f vs dedicated %.1f", c4.DBWips, ded.DBWips)
	}
}

func TestFig11GroupTwo(t *testing.T) {
	r, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ded, cons := r.Rows[0], r.Rows[1]
	if rel := relErr(cons.DBWips, ded.DBWips); rel > 0.10 {
		t.Fatalf("consolidated DB WIPS %.1f vs dedicated %.1f", cons.DBWips, ded.DBWips)
	}
	// CPU utilization improvement in the paper's neighbourhood (1.5–2.2x
	// across our reconstruction; paper measured 1.7x).
	if r.CPUImprovement < 1.4 || r.CPUImprovement > 2.3 {
		t.Fatalf("CPU improvement %.2fx", r.CPUImprovement)
	}
}

func TestFig12And13Power(t *testing.T) {
	r, err := Fig12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: up to 53 % total power saving; our reconstruction lands
	// nearby.
	if r.TotalSaving < 0.45 || r.TotalSaving > 0.62 {
		t.Fatalf("total saving %.3f", r.TotalSaving)
	}
	// Idle Xen platform saves (halved servers x 0.91).
	if r.IdleSaving < 0.50 || r.IdleSaving > 0.60 {
		t.Fatalf("idle saving %.3f", r.IdleSaving)
	}
	// Workload-only (Fig. 13): positive, dominated by the Xen 30 % active
	// factor.
	if r.WorkloadSaving < 0.10 {
		t.Fatalf("workload saving %.3f", r.WorkloadSaving)
	}
	if len(r.Tables()) != 1 || len(r.Fig13Tables()) != 1 {
		t.Fatal("table counts")
	}
}

func TestAppAScores(t *testing.T) {
	r, err := AppA(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var flowing, static *AppARow
	for i := range r.Rows {
		switch r.Rows[i].Policy {
		case "ideal-flowing":
			flowing = &r.Rows[i]
		case "static-partition":
			static = &r.Rows[i]
		}
	}
	if flowing == nil || static == nil {
		t.Fatal("rows missing")
	}
	// Ideal flowing approaches the bound; static stays below it.
	if flowing.Score < 0.7 {
		t.Fatalf("ideal flowing scored %.3f against its own bound", flowing.Score)
	}
	if static.Score >= flowing.Score {
		t.Fatalf("static %.3f >= flowing %.3f", static.Score, flowing.Score)
	}
	if flowing.MeasuredImprovement <= 1 {
		t.Fatalf("flowing improvement %.4f <= 1", flowing.MeasuredImprovement)
	}
}

func TestAppBVirtualizationGap(t *testing.T) {
	r, err := AppB(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.IdealVirt.ThroughputImprovement < r.WithXen.ThroughputImprovement-1e-9 {
		t.Fatal("ideal virtualization should dominate")
	}
	if r.IdealVirt.ConsolidatedLoss > r.WithXen.ConsolidatedLoss+1e-12 {
		t.Fatal("ideal virtualization should lose fewer requests")
	}
}

func TestModelValAccuracy(t *testing.T) {
	r, err := ModelVal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var homoErr float64
	homoCount := 0
	harmBetter := 0
	harmTotal := 0
	for _, row := range r.Rows {
		if strings.HasPrefix(row.Label, "case-study") {
			continue
		}
		homoErr += row.AbsErr
		homoCount++
	}
	if homoCount == 0 {
		t.Fatal("no homogeneous rows")
	}
	if avg := homoErr / float64(homoCount); avg > 0.02 {
		t.Fatalf("homogeneous mean |err| %.4f — Erlang machinery off", avg)
	}
	// In heterogeneous rows, the harmonic reading should beat Eq. (5)
	// verbatim for the same n.
	byN := map[int]map[core.TrafficForm]float64{}
	for _, row := range r.Rows {
		if !strings.HasPrefix(row.Label, "case-study") {
			continue
		}
		if byN[row.Servers] == nil {
			byN[row.Servers] = map[core.TrafficForm]float64{}
		}
		byN[row.Servers][row.Form] = row.AbsErr
	}
	for _, errs := range byN {
		harmTotal++
		if errs[core.TrafficHarmonic] <= errs[core.TrafficEq5Verbatim] {
			harmBetter++
		}
	}
	if harmBetter*2 < harmTotal {
		t.Fatalf("harmonic beat eq5 in only %d/%d heterogeneous points", harmBetter, harmTotal)
	}
}

func TestRunnersProduceTables(t *testing.T) {
	// Smoke-run the whole registry through the cmd/repro entry points,
	// skipping the heavyweight sweeps already covered above.
	skip := map[string]bool{"fig5": true, "fig6": true, "fig7": true, "fig8": true,
		"fig9": true, "fig10": true, "fig11": true, "fig12": true, "fig13": true,
		"appa": true, "modelval": true}
	for _, e := range All() {
		if skip[e.ID] {
			continue
		}
		tables, err := e.Run(quickCfg())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.ID)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s table %s is empty", e.ID, tab.ID)
			}
			if tab.String() == "" {
				t.Fatalf("%s table %s renders empty", e.ID, tab.ID)
			}
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID:      "demo",
		Title:   "demo title",
		Columns: []string{"x", "y"},
	}
	tab.AddRow(1, 2)
	tab.Notes = append(tab.Notes, "a note")
	md := tab.Markdown()
	for _, want := range []string{"### demo", "| x | y |", "|---|---|", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// Short rows pad instead of panicking.
	tab.Rows = append(tab.Rows, []string{"only"})
	if !strings.Contains(tab.Markdown(), "| only |  |") {
		t.Fatal("short row not padded")
	}
}
