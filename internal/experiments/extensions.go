package experiments

// Extension experiments beyond the paper's artifacts: the heterogeneous-
// server planning the paper names as future work, and ablations of the
// modelling choices DESIGN.md calls out (the Eq. 5 reading, service-time
// variability, arrival burstiness, and the resource-flowing granularity).

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/erlang"
	"repro/internal/queueing"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// HeteroRow is one fleet configuration of the heterogeneous-planning
// experiment.
type HeteroRow struct {
	Fleet      string
	Objective  core.PackObjective
	Machines   int
	Units      float64
	IdlePowerW float64
	ModelLoss  float64
	SimDBLoss  float64
	SimWebLoss float64
}

// HeteroResult is the future-work experiment: the group-2 case study
// planned onto heterogeneous fleets (the paper's AMD-vs-Intel Discussion
// observation: Intel machines run the case-study workloads ~20 % slower).
type HeteroResult struct {
	Homogeneous *core.Result
	Rows        []HeteroRow
}

// Hetero plans the group-2 consolidated pool on three fleets — all-AMD
// (reference), all-Intel (0.83× capability), and a mixed fleet with two
// AMD machines — packs them with core.PackServers, predicts the loss with
// the interpolated Erlang approximation, and validates each packing in the
// cluster simulator at the saturation workloads. The validation runs are a
// declarative point list on the sweep engine: the packing/model loop stays
// serial (it is pure arithmetic), the six simulations run concurrently.
func Hetero(cfg Config) (*HeteroResult, error) {
	m, err := CaseStudyModel(4, 4)
	if err != nil {
		return nil, err
	}
	res, err := m.Solve()
	if err != nil {
		return nil, err
	}
	out := &HeteroResult{Homogeneous: res}

	intelCapability := map[core.Resource]float64{
		core.CPU:    1 / 1.2,
		core.DiskIO: 1 / 1.2,
	}
	fleets := []struct {
		name    string
		classes []core.ServerClass
	}{
		{"all-amd", []core.ServerClass{{Name: "amd-2350"}}},
		{"all-intel", []core.ServerClass{{Name: "intel-5140", Capability: intelCapability,
			Power: core.PowerParams{Base: 230, Max: 310}}}},
		{"mixed-2amd", []core.ServerClass{
			{Name: "amd-2350", Count: 2},
			{Name: "intel-5140", Capability: intelCapability,
				Power: core.PowerParams{Base: 230, Max: 310}},
		}},
	}

	horizon := cfg.scale(120)
	warmup := horizon / 6

	var pts []sweep.Point
	for _, fleet := range fleets {
		for _, objective := range []core.PackObjective{core.MinMachines, core.MinPower} {
			plan, err := core.PackServers(res.Consolidated.Servers,
				[]core.Resource{core.CPU, core.DiskIO}, fleet.classes, objective)
			if err != nil {
				return nil, fmt.Errorf("hetero: fleet %s: %w", fleet.name, err)
			}
			modelLoss, err := m.HeterogeneousLoss(fleet.classes, plan.Allocation, m.Form)
			if err != nil {
				return nil, err
			}

			// Validate the packing in the simulator.
			var classes []scenario.HostClass
			for _, c := range fleet.classes {
				n := plan.Allocation[c.Name]
				if n == 0 {
					continue
				}
				capability := map[string]float64{}
				for r, v := range c.Capability {
					capability[string(r)] = v
				}
				classes = append(classes, scenario.HostClass{
					Name: c.Name, Count: n, Capability: capability,
				})
			}
			s := scenario.CaseStudy(4, 4, "consolidated", 0)
			s.Fleet.Classes = classes
			s.Horizon = horizon
			s.Warmup = &warmup
			s.Seed = cfg.Seed + uint64(len(out.Rows))
			pts = append(pts, sweep.Point{
				Label:    fmt.Sprintf("%s/%s", fleet.name, objective),
				Scenario: s,
			})
			out.Rows = append(out.Rows, HeteroRow{
				Fleet:      fleet.name,
				Objective:  objective,
				Machines:   plan.Machines,
				Units:      plan.CapabilityUnits,
				IdlePowerW: plan.IdlePower,
				ModelLoss:  modelLoss,
			})
		}
	}
	sims, err := cfg.runPoints("hetero", pts)
	if err != nil {
		return nil, err
	}
	for i := range out.Rows {
		out.Rows[i].SimDBLoss = float64(sims[i].Services[1].Loss.Point)
		out.Rows[i].SimWebLoss = float64(sims[i].Services[0].Loss.Point)
	}
	return out, nil
}

// Tables renders the heterogeneous planning.
func (r *HeteroResult) Tables() []*Table {
	t := &Table{
		ID:    "hetero",
		Title: "heterogeneous fleets for the group-2 consolidated pool (future work of Section V)",
		Columns: []string{"fleet", "objective", "machines", "capability units",
			"idle W", "model B", "sim web loss", "sim db loss"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Fleet, row.Objective.String(), row.Machines, row.Units,
			row.IdlePowerW, row.ModelLoss, row.SimWebLoss, row.SimDBLoss)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("homogeneous model: N = %d reference servers", r.Homogeneous.Consolidated.Servers),
		"capability normalization per the paper's Section III-B.1 sketch; Intel = AMD/1.2 per its Discussion")
	return []*Table{t}
}

func runHetero(cfg Config) ([]*Table, error) {
	r, err := Hetero(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// FormAblationRow compares the three Eq. (5) readings for one service mix.
type FormAblationRow struct {
	Mix  string
	B    float64
	M    int
	NPer map[core.TrafficForm]int
}

// FormAblation sizes the consolidated pool under all three readings of
// Eq. (5) across service mixes of increasing heterogeneity — the
// quantitative version of the DESIGN.md §2 discussion of the paper's
// internally inconsistent formula.
func FormAblation(cfg Config) ([]FormAblationRow, error) {
	mixes := []struct {
		name     string
		services []core.Service
	}{
		{"homogeneous (2x web)", []core.Service{
			WebService(1), renameService(WebService(1), "web2"),
		}},
		{"case study (web+db)", []core.Service{WebService(1), DBService(1)}},
		{"extreme (web + 10x-slow db)", []core.Service{
			WebService(1),
			func() core.Service {
				s := DBService(1)
				s.ServingRates[core.CPU] = 10
				return s
			}(),
		}},
	}
	var rows []FormAblationRow
	for _, mix := range mixes {
		for _, b := range []float64{0.01, 0.05} {
			base := &core.Model{Services: mix.services, LossTarget: b}
			m, err := base.WithIntensiveWorkloads([]int{4, 4})
			if err != nil {
				return nil, err
			}
			row := FormAblationRow{Mix: mix.name, B: b, NPer: map[core.TrafficForm]int{}}
			ded, err := m.DedicatedPlan()
			if err != nil {
				return nil, err
			}
			row.M = ded.Servers
			for _, form := range []core.TrafficForm{
				core.TrafficEq5Verbatim, core.TrafficEq5Restricted, core.TrafficHarmonic,
			} {
				m.Form = form
				cons, err := m.ConsolidatedPlan()
				if err != nil {
					return nil, err
				}
				row.NPer[form] = cons.Servers
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func renameService(s core.Service, name string) core.Service {
	s.Name = name
	return s
}

func runFormAblation(cfg Config) ([]*Table, error) {
	rows, err := FormAblation(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-form",
		Title:   "consolidated sizing N under the three Eq. (5) readings",
		Columns: []string{"service mix", "B", "M", "N(eq5-verbatim)", "N(eq5-restricted)", "N(harmonic)"},
	}
	for _, r := range rows {
		t.AddRow(r.Mix, r.B, r.M,
			r.NPer[core.TrafficEq5Verbatim],
			r.NPer[core.TrafficEq5Restricted],
			r.NPer[core.TrafficHarmonic])
	}
	t.Notes = append(t.Notes,
		"all readings coincide for homogeneous mixes; they diverge with service heterogeneity",
		"harmonic is the work-conserving (conservative) reading; verbatim erases minority-class work")
	return []*Table{t}, nil
}

// SCVAblationRow is one service-time-variability point.
type SCVAblationRow struct {
	SCV     float64
	SimLoss float64
	ErlangB float64
	AbsErr  float64
}

// SCVAblation probes the Erlang insensitivity the model's assumption 2
// leans on: M/G/n/n loss across service-time SCVs from deterministic to
// extremely bursty. The five sims run concurrently on the shared pool,
// memoized per (scv, horizon, seed).
func SCVAblation(cfg Config) ([]SCVAblationRow, error) {
	const n, rho = 4, 2.5
	want := erlang.MustB(n, rho)
	horizon := cfg.scale(8000)
	scvs := []float64{0, 0.25, 1, 4, 16}
	rows := make([]SCVAblationRow, len(scvs))
	e := cfg.engine().Scoped("ablation-scv")
	err := e.Go(context.Background(), len(scvs), func(ctx context.Context, i int) error {
		scv := scvs[i]
		seed := cfg.Seed + uint64(i)
		loss, err := sweep.Cached(ctx, e,
			cacheKey("ablation-scv/mgnn", n, rho, scv, horizon, seed),
			func(context.Context) (float64, error) {
				var svc stats.Distribution
				switch {
				case scv == 0:
					svc = stats.Deterministic{Value: 1}
				case scv < 1:
					svc = stats.ErlangKWithMean(1, int(1/scv+0.5))
				case scv == 1:
					svc = stats.NewExponential(1)
				default:
					svc = stats.HyperExpWithSCV(1, scv)
				}
				sim, err := queueing.Simulate(queueing.Config{
					Servers:  n,
					Arrivals: workload.NewPoisson(rho),
					Service:  svc,
					Horizon:  horizon,
					Warmup:   horizon / 10,
					Seed:     seed,
				})
				if err != nil {
					return 0, err
				}
				return sim.LossProb, nil
			})
		if err != nil {
			return err
		}
		rows[i] = SCVAblationRow{
			SCV:     scv,
			SimLoss: loss,
			ErlangB: want,
			AbsErr:  abs(loss - want),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func runSCVAblation(cfg Config) ([]*Table, error) {
	rows, err := SCVAblation(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-scv",
		Title:   "Erlang insensitivity: M/G/4/4 loss at rho=2.5 across service-time SCV",
		Columns: []string{"service SCV", "sim B", "Erlang B", "|err|"},
	}
	for _, r := range rows {
		t.AddRow(r.SCV, r.SimLoss, r.ErlangB, r.AbsErr)
	}
	t.Notes = append(t.Notes,
		"the loss probability is insensitive to the service-time distribution beyond its mean — ",
		"the theorem behind the model's 'general steady distribution' assumption")
	return []*Table{t}, nil
}

// BurstAblationRow is one arrival-burstiness point.
type BurstAblationRow struct {
	Burstiness float64 // peak-to-mean rate ratio of the MMPP
	SimLoss    float64
	ErlangB    float64
	Ratio      float64 // sim/erlang
}

// BurstAblation quantifies the model's exposure to its Poisson assumption:
// MMPP arrivals with growing burstiness at a fixed mean rate, against the
// Erlang B value the model would predict. Concurrent and memoized like the
// SCV ablation.
func BurstAblation(cfg Config) ([]BurstAblationRow, error) {
	const n = 4
	meanRate := 2.5
	want := erlang.MustB(n, meanRate)
	horizon := cfg.scale(8000)
	bursts := []float64{1, 2, 4, 8}
	rows := make([]BurstAblationRow, len(bursts))
	e := cfg.engine().Scoped("ablation-burst")
	err := e.Go(context.Background(), len(bursts), func(ctx context.Context, i int) error {
		burst := bursts[i]
		seed := cfg.Seed + 100 + uint64(i)
		loss, err := sweep.Cached(ctx, e,
			cacheKey("ablation-burst/mmpp", n, meanRate, burst, horizon, seed),
			func(context.Context) (float64, error) {
				var arr workload.ArrivalProcess
				if burst == 1 {
					arr = workload.NewPoisson(meanRate)
				} else {
					// Two phases with rate ratio burst², holding times chosen so
					// the stationary mean stays meanRate and the hot phase carries
					// `burst` times the mean.
					hot := meanRate * burst
					cold := meanRate * (2 - burst)
					if cold < 0.05*meanRate {
						cold = 0.05 * meanRate
					}
					// Solve holding weights for the exact mean.
					// mean = (hot*h1 + cold*h2)/(h1+h2) with h2 = 1:
					// h1 = (mean - cold) / (hot - mean).
					h1 := (meanRate - cold) / (hot - meanRate)
					arr = workload.NewMMPP2(hot, cold, h1*2, 2)
				}
				sim, err := queueing.Simulate(queueing.Config{
					Servers:  n,
					Arrivals: arr,
					Service:  stats.NewExponential(1),
					Horizon:  horizon,
					Warmup:   horizon / 10,
					Seed:     seed,
				})
				if err != nil {
					return 0, err
				}
				return sim.LossProb, nil
			})
		if err != nil {
			return err
		}
		rows[i] = BurstAblationRow{
			Burstiness: burst,
			SimLoss:    loss,
			ErlangB:    want,
			Ratio:      loss / want,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func runBurstAblation(cfg Config) ([]*Table, error) {
	rows, err := BurstAblation(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-burst",
		Title:   "Poisson-assumption sensitivity: MMPP/M/4/4 loss vs burstiness at fixed mean rate",
		Columns: []string{"peak/mean rate", "sim B", "Erlang B", "sim/model"},
	}
	for _, r := range rows {
		t.AddRow(r.Burstiness, r.SimLoss, r.ErlangB, r.Ratio)
	}
	t.Notes = append(t.Notes,
		"burstier-than-Poisson arrivals (Paxson & Floyd [11]) make the model optimistic —",
		"sizing from Erlang B under-provisions for correlated traffic")
	return []*Table{t}, nil
}

// AllocAblationRow is one resource-flowing-granularity point.
type AllocAblationRow struct {
	Policy    string
	Goodput   float64
	WebLoss   float64
	DBLoss    float64
	WebRespMS float64
}

// AllocAblation sweeps the Rainbow reallocation period and cost on the
// group-1 consolidated pool: how fine-grained must resource flowing be for
// the model's assumption 4 ("servers serve on demand") to hold? One
// declarative point per policy.
func AllocAblation(cfg Config) ([]AllocAblationRow, error) {
	horizon := cfg.scale(120)
	warmup := horizon / 6
	lambdaW, lambdaD := scenario.SaturationRates(3, 3)
	proportional := func(period, cost float64) *scenario.Alloc {
		return &scenario.Alloc{Policy: "proportional", Period: period, MinShare: 0.05, Cost: cost}
	}
	policies := []struct {
		name  string
		alloc *scenario.Alloc
	}{
		{"ideal-flowing", nil},
		{"proportional T=0.1s", proportional(0.1, 0.01)},
		{"proportional T=1s", proportional(1, 0.01)},
		{"proportional T=10s", proportional(10, 0.01)},
		{"proportional T=1s cost=10%", proportional(1, 0.10)},
		{"static", &scenario.Alloc{Policy: "static"}},
	}
	pts := make([]sweep.Point, len(policies))
	for i, p := range policies {
		pts[i] = sweep.Point{
			Label: p.name,
			Scenario: scenario.Scenario{
				Mode: "consolidated",
				Services: []scenario.Service{
					scenario.WebSpec(lambdaW, 0),
					scenario.DBSpec(lambdaD, 0),
				},
				Fleet:   scenario.Fleet{Hosts: 3},
				Alloc:   p.alloc,
				Horizon: horizon,
				Warmup:  &warmup,
				Seed:    cfg.Seed + uint64(i),
			},
		}
	}
	out, err := cfg.runPoints("ablation-alloc", pts)
	if err != nil {
		return nil, err
	}
	rows := make([]AllocAblationRow, len(policies))
	for i, p := range policies {
		pr := out[i]
		served := pr.Services[0].Served + pr.Services[1].Served
		arrived := pr.Services[0].Arrivals + pr.Services[1].Arrivals
		goodput := 0.0
		if arrived > 0 {
			goodput = served / arrived
		}
		rows[i] = AllocAblationRow{
			Policy:    p.name,
			Goodput:   goodput,
			WebLoss:   float64(pr.Services[0].Loss.Point),
			DBLoss:    float64(pr.Services[1].Loss.Point),
			WebRespMS: float64(pr.Services[0].RespMean.Point) * 1000,
		}
	}
	return rows, nil
}

func runAllocAblation(cfg Config) ([]*Table, error) {
	rows, err := AllocAblation(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-alloc",
		Title:   "resource-flowing granularity on the group-1 pool (3 hosts at saturation)",
		Columns: []string{"policy", "goodput", "web loss", "db loss", "web resp (ms)"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, r.Goodput, r.WebLoss, r.DBLoss, r.WebRespMS)
	}
	t.Notes = append(t.Notes,
		"the model's assumption 4 is the ideal-flowing row; coarser reallocation degrades toward static")
	return []*Table{t}, nil
}
