package experiments

import (
	"testing"

	"repro/internal/core"
)

func TestHeteroFleets(t *testing.T) {
	r, err := Hetero(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 3 fleets x 2 objectives
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byFleet := map[string]HeteroRow{}
	for _, row := range r.Rows {
		if row.Objective == core.MinMachines {
			byFleet[row.Fleet] = row
		}
		// Every packing must cover the homogeneous N.
		if row.Units < float64(r.Homogeneous.Consolidated.Servers) {
			t.Fatalf("fleet %s under-covered: %.2f units", row.Fleet, row.Units)
		}
		// QoS survives the packing: no meaningful simulated losses.
		if row.SimDBLoss > 0.05 || row.SimWebLoss > 0.05 {
			t.Fatalf("fleet %s (%s) lost web=%.3f db=%.3f",
				row.Fleet, row.Objective, row.SimWebLoss, row.SimDBLoss)
		}
	}
	// The reference fleet uses exactly N machines; slower Intel fleets
	// need at least as many.
	if byFleet["all-amd"].Machines != r.Homogeneous.Consolidated.Servers {
		t.Fatalf("all-amd machines = %d", byFleet["all-amd"].Machines)
	}
	if byFleet["all-intel"].Machines <= byFleet["all-amd"].Machines {
		t.Fatalf("intel fleet %d <= amd fleet %d machines",
			byFleet["all-intel"].Machines, byFleet["all-amd"].Machines)
	}
	if len(r.Tables()) != 1 {
		t.Fatal("table count")
	}
}

func TestFormAblationDivergence(t *testing.T) {
	rows, err := FormAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		verbatim := r.NPer[core.TrafficEq5Verbatim]
		restricted := r.NPer[core.TrafficEq5Restricted]
		harmonic := r.NPer[core.TrafficHarmonic]
		// The harmonic (work-conserving) reading never sizes smaller than
		// the others.
		if harmonic < verbatim || harmonic < restricted {
			t.Fatalf("%s B=%g: harmonic %d below eq5 readings %d/%d",
				r.Mix, r.B, harmonic, verbatim, restricted)
		}
		// Homogeneous mixes agree across readings.
		if r.Mix == "homogeneous (2x web)" && (verbatim != restricted || restricted != harmonic) {
			t.Fatalf("homogeneous mix diverged: %v", r.NPer)
		}
	}
	// The extreme mix must actually diverge.
	diverged := false
	for _, r := range rows {
		if r.Mix == "extreme (web + 10x-slow db)" &&
			r.NPer[core.TrafficHarmonic] > r.NPer[core.TrafficEq5Verbatim] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("extreme mix did not separate the readings")
	}
}

func TestSCVAblationInsensitivity(t *testing.T) {
	rows, err := SCVAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AbsErr > 0.03 {
			t.Fatalf("SCV %g: |err| %.4f — insensitivity violated", r.SCV, r.AbsErr)
		}
	}
}

func TestBurstAblationMonotone(t *testing.T) {
	rows, err := BurstAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Poisson row matches Erlang B.
	if rows[0].Ratio < 0.85 || rows[0].Ratio > 1.15 {
		t.Fatalf("Poisson row ratio %.3f", rows[0].Ratio)
	}
	// Burstiness inflates loss beyond the model, monotonically in the
	// sweep's tail.
	if rows[len(rows)-1].Ratio < 1.3 {
		t.Fatalf("max burstiness ratio %.3f — no sensitivity detected", rows[len(rows)-1].Ratio)
	}
	if rows[len(rows)-1].SimLoss <= rows[1].SimLoss {
		t.Fatalf("loss not growing with burstiness: %v", rows)
	}
}

func TestAllocAblationOrdering(t *testing.T) {
	rows, err := AllocAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AllocAblationRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	ideal := byName["ideal-flowing"]
	static := byName["static"]
	fine := byName["proportional T=0.1s"]
	coarse := byName["proportional T=10s"]
	if ideal.Goodput < 0.97 {
		t.Fatalf("ideal flowing goodput %.3f", ideal.Goodput)
	}
	if static.Goodput >= ideal.Goodput {
		t.Fatalf("static %.3f >= ideal %.3f", static.Goodput, ideal.Goodput)
	}
	if fine.Goodput <= static.Goodput {
		t.Fatalf("fine-grained flowing %.3f <= static %.3f", fine.Goodput, static.Goodput)
	}
	if coarse.Goodput > fine.Goodput+0.02 {
		t.Fatalf("coarse %.3f should not beat fine %.3f", coarse.Goodput, fine.Goodput)
	}
}

func TestDiurnalSizingStrategies(t *testing.T) {
	r, err := Diurnal(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]DiurnalRow{}
	for _, row := range r.Rows {
		byName[row.Strategy] = row
	}
	mean := byName["size-for-mean"]
	peak := byName["size-for-peak"]
	p95 := byName["size-for-p95"]
	// Mean sizing misses the target badly; peak sizing meets it.
	if mean.SimLoss < 2*mean.ModelB {
		t.Fatalf("mean sizing lost only %.4f (model %.4f) — nonstationarity not visible",
			mean.SimLoss, mean.ModelB)
	}
	if peak.SimLoss > 0.02 {
		t.Fatalf("peak sizing lost %.4f, want <= target", peak.SimLoss)
	}
	// Provisioning cost ordering.
	if !(mean.Servers < p95.Servers && p95.Servers <= peak.Servers) {
		t.Fatalf("server ordering broken: %d / %d / %d",
			mean.Servers, p95.Servers, peak.Servers)
	}
	if len(r.Tables()) != 1 {
		t.Fatal("table count")
	}
}
