package experiments

import (
	"fmt"

	"repro/internal/diurnal"
)

// Fig2Result is the motivation analysis: three diurnal workloads with
// staggered peaks consolidated onto shared servers.
type Fig2Result struct {
	Series   []diurnal.Series
	Sum      diurnal.Series
	Headroom diurnal.Headroom
	// Line99 is the "guarantee performance in some probability level"
	// capacity line of Fig. 2(b), at a 1 % exceedance budget.
	Line99 float64
}

// Fig2 synthesizes three anti-correlated diurnal workloads (the "three
// applications with various features" of the paper's Fig. 2) and computes
// the consolidation headroom.
func Fig2(cfg Config) (*Fig2Result, error) {
	specs := []diurnal.Config{
		{Name: "web-shop", Base: 150, Peak: 1000, PeakHour: 14, Noise: 0.10},
		{Name: "batch-report", Base: 100, Peak: 800, PeakHour: 2, Noise: 0.10},
		{Name: "mail", Base: 120, Peak: 600, PeakHour: 9, Noise: 0.10},
	}
	res := &Fig2Result{}
	for i, sc := range specs {
		s, err := diurnal.Synthesize(sc, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, s)
	}
	sum, err := diurnal.Sum(res.Series...)
	if err != nil {
		return nil, err
	}
	res.Sum = sum
	const serverCapacity = 400 // intensity units one server carries
	h, err := diurnal.Analyze(serverCapacity, res.Series...)
	if err != nil {
		return nil, err
	}
	res.Headroom = h
	line, err := diurnal.CapacityLine(sum, 0.01)
	if err != nil {
		return nil, err
	}
	res.Line99 = line
	return res, nil
}

// Tables renders the per-workload peaks and the headroom summary.
func (r *Fig2Result) Tables() []*Table {
	per := &Table{
		ID:      "fig2a",
		Title:   "Dedicated workloads: peaks and means",
		Columns: []string{"workload", "peak", "mean", "peak/mean"},
	}
	for _, s := range r.Series {
		per.AddRow(s.Name, s.Peak(), s.Mean(), s.PeakToMean())
	}
	sum := &Table{
		ID:      "fig2b",
		Title:   "Consolidated workload: headroom",
		Columns: []string{"metric", "value"},
	}
	sum.AddRow("sum of peaks", r.Headroom.SumOfPeaks)
	sum.AddRow("peak of sum", r.Headroom.PeakOfSum)
	sum.AddRow("provisioning saving", fmt.Sprintf("%.1f%%", r.Headroom.Saving*100))
	sum.AddRow("servers dedicated", r.Headroom.ServersDedicated)
	sum.AddRow("servers consolidated", r.Headroom.ServersConsolidated)
	sum.AddRow("99% capacity line", r.Line99)
	sum.Notes = append(sum.Notes,
		"peak of consolidated workloads is not higher than the sum of the dedicated peaks (Fig. 2)")
	return []*Table{per, sum}
}

func runFig2(cfg Config) ([]*Table, error) {
	r, err := Fig2(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}
