package experiments

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// SessionRate converts the paper's Fig. 9(b) x-axis (SPECweb2005 sessions)
// into request rate: each session issues this many requests per second
// (reconstructed; see DESIGN.md). Canonical value: the scenario presets.
const SessionRate = scenario.SessionRate

// Fig9Result is the workload-selection experiment on 4-server pools.
type Fig9Result struct {
	// DB part (Fig. 9a): WIPS vs emulated browsers with the upper limit.
	EBs       []float64
	WIPS      []float64
	WIPSLimit float64
	// Web part (Fig. 9b): mean response time vs sessions.
	Sessions []float64
	RespTime []float64
	// Selected operating points (the red circles).
	SelectedEBs      float64
	SelectedSessions float64
}

// Fig9 sweeps both services on dedicated 4-server pools to locate the
// intensive workloads: the knees where more load stops helping (DB WIPS
// saturates at the pool limit; Web response time turns upward). Both
// sweeps run as one point list through the shared engine; each point
// averages two replications — the knees are read off noisy curves, so the
// variance reduction matters here.
func Fig9(cfg Config) (*Fig9Result, error) {
	// Closed-loop emulated browsers think for 7 s between interactions, so
	// the horizon must dominate the think time even in Quick mode.
	horizon := cfg.scale(240)
	warmup := horizon / 4
	res := &Fig9Result{WIPSLimit: 4 * workload.DBCPURate}

	point := func(label string, svc scenario.Service, seed uint64) sweep.Point {
		return sweep.Point{
			Label: label,
			Scenario: scenario.Scenario{
				Mode:        "dedicated",
				Services:    []scenario.Service{svc},
				Horizon:     horizon,
				Warmup:      &warmup,
				Seed:        seed,
				Replication: &scenario.Replication{Reps: 2},
			},
		}
	}

	ebs := sweepLoads(cfg, 500, 5000, 500)
	sessions := sweepLoads(cfg, 400, 3200, 400)
	var pts []sweep.Point
	for _, eb := range ebs {
		pts = append(pts, point(fmt.Sprintf("db ebs=%g", eb),
			scenario.DBClosedSpec(int(eb), 4), cfg.Seed+uint64(eb)))
	}
	for _, n := range sessions {
		// Drive the Web pool with real SPECweb-style sessions: trains of
		// ~10 requests separated by half-second think gaps, at a session
		// arrival rate that offers sessions*SessionRate requests/s overall.
		pts = append(pts, point(fmt.Sprintf("web sessions=%g", n),
			scenario.WebSessionsSpec(n, 4), cfg.Seed+uint64(n)*3))
	}
	out, err := cfg.runPoints("fig9", pts)
	if err != nil {
		return nil, err
	}
	for i, eb := range ebs {
		res.EBs = append(res.EBs, eb)
		res.WIPS = append(res.WIPS, float64(out[i].TotalThroughput.Point))
	}
	for i, n := range sessions {
		res.Sessions = append(res.Sessions, n)
		res.RespTime = append(res.RespTime, float64(out[len(ebs)+i].Services[0].RespMean.Point))
	}

	// The selection rule: the knee sits at SaturationIntensity of pool
	// capacity.
	lambdaW, lambdaD := scenario.SaturationRates(4, 4)
	res.SelectedSessions = lambdaW / SessionRate
	res.SelectedEBs = lambdaD * 7 // Little's law with 7 s think time
	return res, nil
}

// Tables renders both panels.
func (r *Fig9Result) Tables() []*Table {
	a := &Table{
		ID:      "fig9a",
		Title:   "DB service on 4 servers: WIPS vs EBs (with wips upper limit)",
		Columns: []string{"EBs", "WIPS", "wips upper limit"},
	}
	for i := range r.EBs {
		a.AddRow(r.EBs[i], r.WIPS[i], r.WIPSLimit)
	}
	a.Notes = append(a.Notes,
		fmt.Sprintf("selected intensive workload: %.0f EBs (red circle)", r.SelectedEBs))
	b := &Table{
		ID:      "fig9b",
		Title:   "Web service on 4 servers: avg response time vs sessions",
		Columns: []string{"sessions", "avg resp time (s)"},
	}
	for i := range r.Sessions {
		b.AddRow(r.Sessions[i], r.RespTime[i])
	}
	b.Notes = append(b.Notes,
		fmt.Sprintf("selected intensive workload: %.0f sessions (red circle)", r.SelectedSessions))
	return []*Table{a, b}
}

func runFig9(cfg Config) ([]*Table, error) {
	r, err := Fig9(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// DeploymentRow summarizes one deployment bar of Fig. 10/11.
type DeploymentRow struct {
	Label      string
	Servers    int
	DBWips     float64
	WebResp    float64
	DBLoss     float64
	WebLoss    float64
	CPUUtil    float64 // mean CPU utilization across hosts
	DiskUtil   float64
	Bottleneck float64
	Point      *sweep.PointResult
}

// GroupResult carries one case-study group comparison.
type GroupResult struct {
	ID   string
	Rows []DeploymentRow
	// CPUImprovement is consolidated/dedicated mean CPU utilization for
	// the group's headline deployment (Fig. 11's 1.7x claim).
	CPUImprovement float64
}

// runGroup simulates the dedicated deployment (webServers+dbServers) and
// each consolidated size in consSizes, at the group's saturation
// workloads — one declarative point list over the CaseStudy preset.
func runGroup(cfg Config, id string, webServers, dbServers int, consSizes []int) (*GroupResult, error) {
	horizon := cfg.scale(120)
	warmup := horizon / 6

	point := func(label, mode string, consolidated int, seed uint64) sweep.Point {
		s := scenario.CaseStudy(webServers, dbServers, mode, consolidated)
		s.Horizon = horizon
		s.Warmup = &warmup
		s.Seed = seed
		return sweep.Point{Label: label, Scenario: s}
	}

	dedLabel := fmt.Sprintf("%d dedicated", webServers+dbServers)
	pts := []sweep.Point{point(dedLabel, "dedicated", 0, cfg.Seed+1)}
	labels := []string{dedLabel}
	servers := []int{webServers + dbServers}
	for i, n := range consSizes {
		label := fmt.Sprintf("%d consolidated", n)
		pts = append(pts, point(label, "consolidated", n, cfg.Seed+10+uint64(i)))
		labels = append(labels, label)
		servers = append(servers, n)
	}
	out, err := cfg.runPoints(id, pts)
	if err != nil {
		return nil, err
	}

	res := &GroupResult{ID: id}
	for i := range out {
		pr := &out[i]
		res.Rows = append(res.Rows, DeploymentRow{
			Label:      labels[i],
			Servers:    servers[i],
			DBWips:     float64(pr.Services[1].Throughput.Point),
			WebResp:    float64(pr.Services[0].RespMean.Point),
			DBLoss:     float64(pr.Services[1].Loss.Point),
			WebLoss:    float64(pr.Services[0].Loss.Point),
			CPUUtil:    float64(pr.Utilization[workload.CPU]),
			DiskUtil:   float64(pr.Utilization[workload.DiskIO]),
			Bottleneck: float64(pr.BottleneckUtil.Point),
			Point:      pr,
		})
	}

	// Headline CPU improvement: last consolidated row vs dedicated.
	last := res.Rows[len(res.Rows)-1]
	if res.Rows[0].CPUUtil > 0 {
		res.CPUImprovement = last.CPUUtil / res.Rows[0].CPUUtil
	}
	return res, nil
}

// Tables renders the group bars.
func (r *GroupResult) Tables() []*Table {
	t := &Table{
		ID:    r.ID,
		Title: "dedicated vs consolidated deployments at the case-study workloads",
		Columns: []string{"deployment", "servers", "DB WIPS", "web resp (s)",
			"DB loss", "web loss", "cpu util", "disk util"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.Servers, row.DBWips, row.WebResp,
			row.DBLoss, row.WebLoss, row.CPUUtil, row.DiskUtil)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"CPU utilization improvement (consolidated vs dedicated): %.2fx (paper: 1.7x measured, 1.5x model)",
		r.CPUImprovement))
	return []*Table{t}
}

// Fig10 is group 1: 6 dedicated servers (3 Web + 3 DB) against 2, 3 and 4
// consolidated servers. The 2-server deployment overloads — the paper's
// missing bar ("the failure of this experiment because of too many
// workloads for servers to afford") — and 3 consolidated servers match the
// dedicated performance.
func Fig10(cfg Config) (*GroupResult, error) {
	return runGroup(cfg, "fig10", 3, 3, []int{2, 3, 4})
}

func runFig10(cfg Config) ([]*Table, error) {
	r, err := Fig10(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// Fig11 is group 2: 8 dedicated servers (4 + 4) against 4 consolidated
// servers, with the 1.7x CPU utilization improvement.
func Fig11(cfg Config) (*GroupResult, error) {
	return runGroup(cfg, "fig11", 4, 4, []int{4})
}

func runFig11(cfg Config) ([]*Table, error) {
	r, err := Fig11(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// PowerResult carries the Fig. 12/13 power comparison of group 2.
type PowerResult struct {
	// Energies in joules over the observation window.
	DedicatedBusy    float64
	DedicatedIdle    float64
	ConsolidatedBusy float64
	ConsolidatedIdle float64
	Window           float64

	TotalSaving    float64 // Fig. 12 headline (busy deployments)
	IdleSaving     float64
	WorkloadSaving float64 // Fig. 13 headline (busy minus idle)
}

// Fig12 measures total power of the group-2 deployments — 8 dedicated
// Linux servers vs 4 consolidated Xen servers — busy and idle, through the
// simulated electric parameter tester. The energies come straight off the
// sweep points: each point's compiled power model is the testbed server on
// the platform its mode implies (native Linux dedicated, Xen Rainbow
// consolidated).
func Fig12(cfg Config) (*PowerResult, error) {
	group, err := Fig11(cfg)
	if err != nil {
		return nil, err
	}
	ded := group.Rows[0].Point
	cons := group.Rows[len(group.Rows)-1].Point

	res := &PowerResult{Window: ded.Window}
	res.DedicatedBusy = float64(ded.EnergyBusyJ)
	res.DedicatedIdle = float64(ded.EnergyIdleJ)
	res.ConsolidatedBusy = float64(cons.EnergyBusyJ)
	res.ConsolidatedIdle = float64(cons.EnergyIdleJ)

	cmp := power.Comparison{
		DedicatedTotal:    res.DedicatedBusy,
		ConsolidatedTotal: res.ConsolidatedBusy,
		DedicatedIdle:     res.DedicatedIdle,
		ConsolidatedIdle:  res.ConsolidatedIdle,
	}
	res.TotalSaving = cmp.TotalSaving()
	res.IdleSaving = cmp.IdleSaving()
	res.WorkloadSaving = cmp.WorkloadSaving()
	return res, nil
}

// Tables renders the Fig. 12 bars (total power, busy and idle).
func (r *PowerResult) Tables() []*Table {
	t := &Table{
		ID:      "fig12",
		Title:   "total power: 8 dedicated (Linux) vs 4 consolidated (Xen)",
		Columns: []string{"deployment", "busy (W)", "idle (W)", "busy/idle"},
	}
	w := r.Window
	t.AddRow("8 dedicated", r.DedicatedBusy/w, r.DedicatedIdle/w,
		r.DedicatedBusy/r.DedicatedIdle)
	t.AddRow("4 consolidated", r.ConsolidatedBusy/w, r.ConsolidatedIdle/w,
		r.ConsolidatedBusy/r.ConsolidatedIdle)
	t.Notes = append(t.Notes,
		fmt.Sprintf("total power saving: %.1f%% (paper: up to 53%%)", r.TotalSaving*100),
		"busy servers draw only a few percent more than idle ones (paper: up to 7%)")
	return []*Table{t}
}

func runFig12(cfg Config) ([]*Table, error) {
	r, err := Fig12(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// Fig13 isolates the power consumed by the workloads themselves (total
// minus idle), reproducing the paper's 30 % Xen active-energy saving.
func Fig13(cfg Config) (*PowerResult, error) {
	return Fig12(cfg)
}

// Fig13Tables renders the workload-only view.
func (r *PowerResult) Fig13Tables() []*Table {
	t := &Table{
		ID:      "fig13",
		Title:   "power consumed by workloads (total minus idle)",
		Columns: []string{"deployment", "workload power (W)"},
	}
	w := r.Window
	t.AddRow("8 dedicated", (r.DedicatedBusy-r.DedicatedIdle)/w)
	t.AddRow("4 consolidated", (r.ConsolidatedBusy-r.ConsolidatedIdle)/w)
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload power saving: %.1f%% (paper: ~30%% from the Xen platform alone)", r.WorkloadSaving*100),
		fmt.Sprintf("idle power saving: %.1f%% (server count halves; idle Xen draws 9%% less)", r.IdleSaving*100))
	return []*Table{t}
}

func runFig13(cfg Config) ([]*Table, error) {
	r, err := Fig13(cfg)
	if err != nil {
		return nil, err
	}
	return r.Fig13Tables(), nil
}
