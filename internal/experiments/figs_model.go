package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/erlang"
	"repro/internal/queueing"
	"repro/internal/replicate"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Table1Row is one row of the paper's Table I: dedicated servers M and the
// selected workloads/loss target in, consolidated servers N out, plus the
// comparison ratios the model derives.
type Table1Row struct {
	M       int
	LambdaW float64
	LambdaD float64
	B       float64
	N       int

	UtilizationImprovement float64
	PowerSaving            float64
	ServerSaving           float64
}

// Table1Result carries the case-study rows plus an extended sweep.
type Table1Result struct {
	Rows     []Table1Row // M = 6 and M = 8, the paper's rows
	Extended []Table1Row // additional M values (our extension)
}

// Table1 runs the utility analytic model for the paper's two case-study
// rows (M = 6 → N = 3, M = 8 → N = 4) and extends the sweep to larger data
// centers.
func Table1(cfg Config) (*Table1Result, error) {
	res := &Table1Result{}
	row := func(perService int) (Table1Row, error) {
		m, err := CaseStudyModel(perService, perService)
		if err != nil {
			return Table1Row{}, err
		}
		out, err := m.Solve()
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			M:                      out.Dedicated.Servers,
			LambdaW:                m.Services[0].ArrivalRate,
			LambdaD:                m.Services[1].ArrivalRate,
			B:                      LossTarget,
			N:                      out.Consolidated.Servers,
			UtilizationImprovement: out.UtilizationImprovement,
			PowerSaving:            out.PowerSaving,
			ServerSaving:           1 - float64(out.Consolidated.Servers)/float64(out.Dedicated.Servers),
		}, nil
	}
	for _, perService := range []int{3, 4} {
		r, err := row(perService)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, r)
	}
	extended := []int{2, 6, 8, 12, 16}
	if cfg.Quick {
		extended = []int{2, 8}
	}
	for _, perService := range extended {
		r, err := row(perService)
		if err != nil {
			return nil, err
		}
		res.Extended = append(res.Extended, r)
	}
	return res, nil
}

// Tables renders Table I and the extension.
func (r *Table1Result) Tables() []*Table {
	t := &Table{
		ID:      "table1",
		Title:   "THE INPUTS AND OUTPUT TO UTILITY ANALYTIC MODEL",
		Columns: []string{"M", "lambda_w", "lambda_d", "B", "N", "util x", "power saved", "servers saved"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.M, row.LambdaW, row.LambdaD, row.B, row.N,
			row.UtilizationImprovement,
			fmt.Sprintf("%.1f%%", row.PowerSaving*100),
			fmt.Sprintf("%.1f%%", row.ServerSaving*100))
	}
	t.Notes = append(t.Notes,
		"paper: 6 dedicated -> 3 consolidated, 8 dedicated -> 4 consolidated (50% infrastructure saved)",
		"paper: model-side utilization improvement ~1.5x, measured 1.7x")
	ext := &Table{
		ID:      "table1x",
		Title:   "extended sweep (our addition): scale planning for larger pools",
		Columns: t.Columns,
	}
	for _, row := range r.Extended {
		ext.AddRow(row.M, row.LambdaW, row.LambdaD, row.B, row.N,
			row.UtilizationImprovement,
			fmt.Sprintf("%.1f%%", row.PowerSaving*100),
			fmt.Sprintf("%.1f%%", row.ServerSaving*100))
	}
	return []*Table{t, ext}
}

func runTable1(cfg Config) ([]*Table, error) {
	r, err := Table1(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// AppARow scores one allocation policy against the model's M = N bound.
type AppARow struct {
	Policy                string
	MeasuredImprovement   float64
	BoundImprovement      float64
	Score                 float64 // fraction of the optimal gain realized
	SimDedicatedLoss      float64
	SimConsolidatedLoss   float64
	ModelDedicatedLoss    float64
	ModelConsolidatedLoss float64
}

// AppAResult is the Section III-B.4 application (1) experiment.
type AppAResult struct {
	Servers int
	Rows    []AppARow
}

// AppA evaluates on-demand resource allocation algorithms the way Section
// III-B.4 prescribes: fix M = N, compute the model's optimal (1−B) ratio,
// then measure real allocators in the queueing laboratory and score them
// against the bound. The "allocators" are Erlang-style loss systems:
// dedicated = per-service partitions of the pool; consolidated = the full
// pool shared (ideal flowing); an intermediate static split models a
// consolidation without flowing. The five loss simulations fan out through
// the shared pool and memoize per operating point.
func AppA(cfg Config) (*AppAResult, error) {
	m, err := CaseStudyModel(3, 3)
	if err != nil {
		return nil, err
	}
	servers := 6
	bound, err := m.AllocatorBound(servers)
	if err != nil {
		return nil, err
	}

	horizon := cfg.scale(3000)
	warmup := horizon / 10

	// The Erlang laboratory: each "server" serves the consolidated stream
	// at the Eq. (4) rate; dedicated partitions serve their own streams.
	lambdaW := m.Services[0].ArrivalRate
	lambdaD := m.Services[1].ArrivalRate
	lambda := lambdaW + lambdaD

	// Consolidated with ideal flowing serves the merged stream at the
	// consolidated rate of Eq. (4) on the binding resource; the static
	// split keeps the partitions but virtualized (impact factors apply).
	muPrime := m.ConsolidatedServingRate(core.DiskIO, m.Form)
	if v := m.ConsolidatedServingRate(core.CPU, m.Form); v < muPrime {
		muPrime = v
	}
	aWI, _, aDC := caseStudyImpact()

	sims := []struct {
		n    int
		rate float64
		mu   float64
		seed uint64
	}{
		{3, lambdaW, workload.WebDiskRate, cfg.Seed + 1},       // dedicated web
		{3, lambdaD, workload.DBCPURate, cfg.Seed + 2},         // dedicated db
		{servers, lambda, muPrime, cfg.Seed + 3},               // ideal flowing
		{3, lambdaW, workload.WebDiskRate * aWI, cfg.Seed + 4}, // static web
		{3, lambdaD, workload.DBCPURate * aDC, cfg.Seed + 5},   // static db
	}
	losses := make([]float64, len(sims))
	e := cfg.engine().Scoped("appa")
	err = e.Go(context.Background(), len(sims), func(ctx context.Context, i int) error {
		j := sims[i]
		v, err := sweep.Cached(ctx, e,
			cacheKey("appa/loss-sim", j.n, j.rate, j.mu, horizon, warmup, j.seed),
			func(context.Context) (float64, error) {
				r, err := queueing.Simulate(queueing.Config{
					Servers:  j.n,
					Arrivals: workload.NewPoisson(j.rate),
					Service:  stats.NewExponential(j.mu),
					Horizon:  horizon,
					Warmup:   warmup,
					Seed:     j.seed,
				})
				if err != nil {
					return 0, err
				}
				return r.LossProb, nil
			})
		losses[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}

	dedicatedLoss := (lambdaW*losses[0] + lambdaD*losses[1]) / lambda
	flowLoss := losses[2]
	staticLoss := (lambdaW*losses[3] + lambdaD*losses[4]) / lambda

	mkRow := func(name string, consLoss float64) AppARow {
		improvement := (1 - consLoss) / (1 - dedicatedLoss)
		score, _ := m.ScoreAllocator(servers, improvement)
		return AppARow{
			Policy:                name,
			MeasuredImprovement:   improvement,
			BoundImprovement:      bound.ThroughputImprovement,
			Score:                 score,
			SimDedicatedLoss:      dedicatedLoss,
			SimConsolidatedLoss:   consLoss,
			ModelDedicatedLoss:    bound.DedicatedLoss,
			ModelConsolidatedLoss: bound.ConsolidatedLoss,
		}
	}
	return &AppAResult{
		Servers: servers,
		Rows: []AppARow{
			mkRow("ideal-flowing", flowLoss),
			mkRow("static-partition", staticLoss),
		},
	}, nil
}

// Tables renders the allocator scoring.
func (r *AppAResult) Tables() []*Table {
	t := &Table{
		ID:    "appa",
		Title: fmt.Sprintf("allocator QoS bound at M = N = %d", r.Servers),
		Columns: []string{"policy", "measured (1-B) ratio", "model bound", "score",
			"sim B_ded", "sim B_cons", "model B_ded", "model B_cons"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy, row.MeasuredImprovement, row.BoundImprovement, row.Score,
			row.SimDedicatedLoss, row.SimConsolidatedLoss,
			row.ModelDedicatedLoss, row.ModelConsolidatedLoss)
	}
	t.Notes = append(t.Notes,
		"the closer an algorithm's (1-B) ratio to the bound, the better (Section III-B.4)")
	return []*Table{t}
}

func runAppA(cfg Config) ([]*Table, error) {
	r, err := AppA(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// AppBResult is application (2): the ideal-virtualization bound.
type AppBResult struct {
	Servers   int
	WithXen   core.Bound
	IdealVirt core.Bound
}

// AppB computes the M = N throughput bound twice: with the measured Xen
// impact factors and with a ≡ 1, separating the gain of consolidation
// itself from the loss to virtualization overhead.
func AppB(Config) (*AppBResult, error) {
	m, err := CaseStudyModel(4, 4)
	if err != nil {
		return nil, err
	}
	servers := 8
	withXen, err := m.AllocatorBound(servers)
	if err != nil {
		return nil, err
	}
	ideal, err := m.VirtualizationBound(servers)
	if err != nil {
		return nil, err
	}
	return &AppBResult{Servers: servers, WithXen: withXen, IdealVirt: ideal}, nil
}

// Tables renders the virtualization bound.
func (r *AppBResult) Tables() []*Table {
	t := &Table{
		ID:      "appb",
		Title:   fmt.Sprintf("ideal-virtualization bound at M = N = %d", r.Servers),
		Columns: []string{"virtualization", "B_dedicated", "B_consolidated", "(1-B) ratio"},
	}
	t.AddRow("measured Xen factors", r.WithXen.DedicatedLoss, r.WithXen.ConsolidatedLoss,
		r.WithXen.ThroughputImprovement)
	t.AddRow("ideal (a = 1)", r.IdealVirt.DedicatedLoss, r.IdealVirt.ConsolidatedLoss,
		r.IdealVirt.ThroughputImprovement)
	t.Notes = append(t.Notes,
		"the gap between rows is the QoS headroom better virtualization products could reclaim")
	return []*Table{t}
}

func runAppB(cfg Config) ([]*Table, error) {
	r, err := AppB(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// ModelValRow compares the model's loss prediction with simulation for one
// operating point.
type ModelValRow struct {
	Label     string
	Servers   int
	Traffic   float64
	Form      core.TrafficForm
	ModelLoss float64
	SimLoss   float64
	SimCI     stats.CI
	AbsErr    float64
}

// ModelValResult is the "simple but accurate enough" validation sweep.
type ModelValResult struct {
	Rows []ModelValRow
}

// lossStudy is the memoized outcome of one replication study: the loss CI
// in the JSON-safe interval form.
type lossStudy struct {
	Loss         sweep.Interval `json:"loss"`
	EarlyStopped bool           `json:"early_stopped,omitempty"`
}

// ModelVal validates the Erlang machinery and the Eq. (5) readings against
// discrete-event simulation: homogeneous pools (where every reading
// coincides and Erlang B is exact), and the heterogeneous case-study mix
// (where the readings diverge and the work-conserving harmonic form tracks
// the simulation). Each operating point is estimated by parallel
// independent replications with CI-driven early stopping — the noisiest
// sweep in the suite, and the one the replication engine pays off most on.
// The replications draw their concurrency from the shared pool and each
// study memoizes its loss interval.
func ModelVal(cfg Config) (*ModelValResult, error) {
	horizon := cfg.scale(6000)
	warmup := horizon / 10
	res := &ModelValResult{}
	reps := replicate.Config{
		Replications:    4,
		Precision:       0.05,
		MinReplications: 2,
	}
	if cfg.Quick {
		reps.Replications = 2
	}
	e := cfg.engine().Scoped("modelval")
	study := func(key string, c queueing.Config) (lossStudy, error) {
		return sweep.Cached(context.Background(), e, key,
			func(ctx context.Context) (lossStudy, error) {
				rcfg := reps
				rcfg.Pool = e.Pool()
				set, err := queueing.RunReplications(ctx, c, rcfg)
				if err != nil {
					return lossStudy{}, err
				}
				return lossStudy{
					Loss: sweep.Interval{
						Point: sweep.JFloat(set.LossCI.Point),
						Lo:    sweep.JFloat(set.LossCI.Lo),
						Hi:    sweep.JFloat(set.LossCI.Hi),
					},
					EarlyStopped: set.EarlyStopped,
				}, nil
			})
	}
	repsKey := func(parts ...any) []any {
		return append(parts, horizon, warmup, reps.Replications, reps.Precision, reps.MinReplications)
	}

	// Homogeneous sweeps: M/M/n/n and M/G/n/n vs Erlang B.
	homo := []struct {
		label string
		n     int
		rho   float64
		scv   float64
	}{
		{"M/M/3/3 rho=2", 3, 2, 1},
		{"M/D/4/4 rho=1.5", 4, 1.5, 0},
		{"M/H2/6/6 rho=5", 6, 5, 4},
	}
	for i, h := range homo {
		var svc stats.Distribution
		switch {
		case h.scv == 0:
			svc = stats.Deterministic{Value: 1}
		case h.scv == 1:
			svc = stats.NewExponential(1)
		default:
			svc = stats.HyperExpWithSCV(1, h.scv)
		}
		seed := cfg.Seed + uint64(i)
		st, err := study(
			cacheKey(repsKey("modelval/homo", h.n, h.rho, h.scv, seed)...),
			queueing.Config{
				Servers:  h.n,
				Arrivals: workload.NewPoisson(h.rho),
				Service:  svc,
				Horizon:  horizon,
				Warmup:   warmup,
				Seed:     seed,
			})
		if err != nil {
			return nil, err
		}
		ci := st.Loss.CI(0.95)
		want := erlang.MustB(h.n, h.rho)
		res.Rows = append(res.Rows, ModelValRow{
			Label:     h.label,
			Servers:   h.n,
			Traffic:   h.rho,
			ModelLoss: want,
			SimLoss:   ci.Point,
			SimCI:     ci,
			AbsErr:    abs(ci.Point - want),
		})
	}

	// Heterogeneous case-study mix: merged Web+DB stream on a shared pool,
	// per-request service rate depending on the class — the situation
	// where the three Eq. (5) readings differ.
	m, err := CaseStudyModel(4, 4)
	if err != nil {
		return nil, err
	}
	lambdaW := m.Services[0].ArrivalRate
	lambdaD := m.Services[1].ArrivalRate
	lambda := lambdaW + lambdaD
	aWI, aWC, aDC := caseStudyImpact()
	_ = aWC
	// Per-request demand on the shared pool (bottleneck view): a Web
	// request needs 1/(mu_wi*a_wi) server-seconds, a DB request
	// 1/(mu_dc*a_dc) — a two-class hyperexponential mix.
	mix := classMix{
		p1: lambdaW / lambda,
		m1: 1 / (workload.WebDiskRate * aWI),
		m2: 1 / (workload.DBCPURate * aDC),
	}
	for _, n := range []int{4, 6, 8, 10} {
		seed := cfg.Seed + uint64(n)*77
		st, err := study(
			cacheKey(repsKey("modelval/mix", n, lambda, mix.p1, mix.m1, mix.m2, seed)...),
			queueing.Config{
				Servers:  n,
				Arrivals: workload.NewPoisson(lambda),
				Service:  mix,
				Horizon:  horizon,
				Warmup:   warmup,
				Seed:     seed,
			})
		if err != nil {
			return nil, err
		}
		ci := st.Loss.CI(0.95)
		for _, form := range []core.TrafficForm{core.TrafficEq5Verbatim, core.TrafficEq5Restricted, core.TrafficHarmonic} {
			worst := 0.0
			rho := 0.0
			for _, j := range []core.Resource{core.CPU, core.DiskIO} {
				r := m.ConsolidatedTraffic(j, form)
				bl := erlang.MustB(n, r)
				if bl > worst {
					worst = bl
					rho = r
				}
			}
			res.Rows = append(res.Rows, ModelValRow{
				Label:     fmt.Sprintf("case-study mix n=%d (%s)", n, form),
				Servers:   n,
				Traffic:   rho,
				Form:      form,
				ModelLoss: worst,
				SimLoss:   ci.Point,
				SimCI:     ci,
				AbsErr:    abs(ci.Point - worst),
			})
		}
	}
	return res, nil
}

// classMix is a two-class exponential service mixture (Web/DB demand).
type classMix struct {
	p1, m1, m2 float64
}

func (c classMix) Sample(s *stats.Stream) float64 {
	if s.Bernoulli(c.p1) {
		return s.ExpFloat64() * c.m1
	}
	return s.ExpFloat64() * c.m2
}
func (c classMix) Mean() float64 { return c.p1*c.m1 + (1-c.p1)*c.m2 }
func (c classMix) Var() float64 {
	m2 := 2*c.p1*c.m1*c.m1 + 2*(1-c.p1)*c.m2*c.m2
	m := c.Mean()
	return m2 - m*m
}
func (c classMix) String() string { return fmt.Sprintf("mix(p=%.3f,%g,%g)", c.p1, c.m1, c.m2) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Tables renders the validation.
func (r *ModelValResult) Tables() []*Table {
	t := &Table{
		ID:      "modelval",
		Title:   "model vs simulation loss probability",
		Columns: []string{"config", "n", "rho", "model B", "sim B", "sim 95% CI", "|err|"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.Servers, row.Traffic, row.ModelLoss, row.SimLoss,
			fmt.Sprintf("[%.4f,%.4f]", row.SimCI.Lo, row.SimCI.Hi), row.AbsErr)
	}
	t.Notes = append(t.Notes,
		"homogeneous rows validate Erlang B (PASTA + insensitivity)",
		"heterogeneous rows show the harmonic reading tracking simulation while Eq. (5) readings underpredict")
	return []*Table{t}
}

func runModelVal(cfg Config) ([]*Table, error) {
	r, err := ModelVal(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}
