package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/virt"
	"repro/internal/workload"
)

// OverheadResult carries one Fig. 5/6/8-style measurement: throughput
// series per configuration (native plus 1..MaxVMs co-located VMs), derived
// impact factors, and the regression the paper fits.
type OverheadResult struct {
	ID          string
	Loads       []float64           // offered-load axis (req/s or EBs)
	LoadUnit    string              // "req/s" or "EBs"
	Native      []float64           // native-Linux throughput series
	PerVM       map[int][]float64   // v -> throughput series
	VMCounts    []int               // sorted keys of PerVM
	Impacts     map[int]float64     // v -> stable-mean impact factor
	FitLinear   *virt.LinearCurve   // for Fig. 5/6
	FitRational *virt.RationalCurve // for Fig. 8
	FitR2       float64
}

// overheadScenario is one point of the Fig. 5/6/8 grid: one physical
// server driven natively (vms = 0) or with v co-located VMs of the same
// service splitting the offered load.
func overheadScenario(profilePreset, overheadPreset string, horizon, warmup float64,
	vms int, load float64, closedLoop bool, replications int, seed uint64) scenario.Scenario {

	s := scenario.Scenario{
		Horizon:     horizon,
		Warmup:      &warmup,
		Seed:        seed,
		Replication: &scenario.Replication{Reps: replications},
	}
	if vms == 0 {
		svc := scenario.Service{
			Profile:          scenario.Profile{Preset: profilePreset},
			DedicatedServers: 1,
		}
		if closedLoop {
			svc.Clients = int(load)
		} else {
			svc.Arrivals = workload.PoissonSpec(load)
		}
		s.Mode = "dedicated"
		s.Services = []scenario.Service{svc}
		return s
	}
	svcs := make([]scenario.Service, vms)
	for i := range svcs {
		svcs[i] = scenario.Service{
			Profile:  scenario.Profile{Preset: profilePreset},
			Overhead: &scenario.Overhead{Preset: overheadPreset},
		}
		if closedLoop {
			svcs[i].Clients = int(load) / vms
			if i < int(load)%vms {
				svcs[i].Clients++
			}
			if svcs[i].Clients == 0 {
				svcs[i].Clients = 1
			}
		} else {
			svcs[i].Arrivals = workload.PoissonSpec(load / float64(vms))
		}
	}
	s.Mode = "consolidated"
	s.Services = svcs
	// The VM-count sweeps pack up to 9 VMs on one host; give it the memory
	// to hold them (the two-group case study stays on the default 8 GB
	// hosts).
	s.Fleet = scenario.Fleet{Hosts: 1, HostMemoryGB: float64(vms) + 2}
	return s
}

// overheadSweep declares the (VM count × offered load) grid underlying
// Figs. 5/6/8 and runs it as one sweep through the shared engine. Each
// point averages `replications` parallel independent replications (1 = a
// single run, bit-identical to the pre-engine sweep); point seeds follow
// the historical seed layout so cached artifacts survive the refactor.
func overheadSweep(cfg Config, id, profilePreset, overheadPreset string,
	loads []float64, closedLoop bool, maxVMs, replications int) (*OverheadResult, error) {

	horizon := cfg.scale(40)
	warmup := horizon / 5
	res := &OverheadResult{
		ID:       id,
		Loads:    loads,
		PerVM:    map[int][]float64{},
		Impacts:  map[int]float64{},
		LoadUnit: "req/s",
	}
	if closedLoop {
		res.LoadUnit = "EBs"
	}

	var pts []sweep.Point
	for v := 0; v <= maxVMs; v++ {
		for li, load := range loads {
			pts = append(pts, sweep.Point{
				Label: fmt.Sprintf("v=%d load=%g", v, load),
				Scenario: overheadScenario(profilePreset, overheadPreset,
					horizon, warmup, v, load, closedLoop, replications,
					cfg.Seed+uint64(v)*1000+uint64(li)),
			})
		}
	}
	out, err := cfg.runPoints(id, pts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}

	for v := 0; v <= maxVMs; v++ {
		series := make([]float64, len(loads))
		for li := range loads {
			series[li] = float64(out[v*len(loads)+li].TotalThroughput.Point)
		}
		if v == 0 {
			res.Native = series
		} else {
			res.PerVM[v] = series
			res.VMCounts = append(res.VMCounts, v)
		}
	}

	// Impact factors: stable-mean throughput ratio vs native (Fig. 5b).
	for _, v := range res.VMCounts {
		a, err := virt.StableMeanImpact(res.PerVM[v], res.Native, 0.15)
		if err != nil {
			return nil, fmt.Errorf("%s: impact v=%d: %w", id, v, err)
		}
		res.Impacts[v] = a
	}
	return res, nil
}

// fitCurves performs the paper's regressions on the measured impacts.
func (r *OverheadResult) fitCurves(rational bool) error {
	vms := make([]int, 0, len(r.Impacts))
	factors := make([]float64, 0, len(r.Impacts))
	for _, v := range r.VMCounts {
		vms = append(vms, v)
		factors = append(factors, r.Impacts[v])
	}
	if rational {
		fit, r2, err := virt.FitRational(vms, factors)
		if err != nil {
			return err
		}
		r.FitRational = &fit
		r.FitR2 = r2
		return nil
	}
	fit, r2, err := virt.FitLinear(vms, factors)
	if err != nil {
		return err
	}
	r.FitLinear = &fit
	r.FitR2 = r2
	return nil
}

// Tables renders the throughput sweep (part a) and the impact factors with
// the regression (part b).
func (r *OverheadResult) Tables() []*Table {
	a := &Table{
		ID:      r.ID + "a",
		Title:   "throughput vs offered load (native and v co-located VMs)",
		Columns: append([]string{"load(" + r.LoadUnit + ")", "native"}, vmCols(r.VMCounts)...),
	}
	for li, load := range r.Loads {
		cells := []any{load, r.Native[li]}
		for _, v := range r.VMCounts {
			cells = append(cells, r.PerVM[v][li])
		}
		a.AddRow(cells...)
	}
	b := &Table{
		ID:      r.ID + "b",
		Title:   "impact factor vs #VMs with regression",
		Columns: []string{"#VMs", "impact(measured)", "impact(fitted)"},
	}
	for _, v := range r.VMCounts {
		fitted := 0.0
		if r.FitLinear != nil {
			fitted = r.FitLinear.At(v)
		} else if r.FitRational != nil {
			fitted = r.FitRational.At(v)
		}
		b.AddRow(v, r.Impacts[v], fitted)
	}
	if r.FitLinear != nil {
		b.Notes = append(b.Notes, fmt.Sprintf("fit: %s (R2=%.4f)", r.FitLinear, r.FitR2))
	}
	if r.FitRational != nil {
		b.Notes = append(b.Notes, fmt.Sprintf("fit: %s (R2=%.4f)", r.FitRational, r.FitR2))
	}
	return []*Table{a, b}
}

func vmCols(vms []int) []string {
	out := make([]string, len(vms))
	for i, v := range vms {
		out[i] = fmt.Sprintf("%dVM", v)
	}
	return out
}

// sweepLoads builds an offered-load axis.
func sweepLoads(cfg Config, from, to, step float64) []float64 {
	if cfg.Quick {
		step *= 3
	}
	var out []float64
	for x := from; x <= to+1e-9; x += step {
		out = append(out, x)
	}
	return out
}

func maxVMsFor(cfg Config) int {
	if cfg.Quick {
		return 4
	}
	return 9
}

// Fig5 reproduces the disk-I/O-bound Web sweep: requests orderly access the
// 5.7 GB SPECweb2005 fileset; throughput degrades with VM count and the
// impact factor fits a declining line (a = 1.082 − 0.102·v reconstructed).
func Fig5(cfg Config) (*OverheadResult, error) {
	res, err := overheadSweep(cfg, "fig5", "specweb-ecommerce", "web",
		sweepLoads(cfg, 100, 1500, 100), false, maxVMsFor(cfg), 1)
	if err != nil {
		return nil, err
	}
	if err := res.fitCurves(false); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig5(cfg Config) ([]*Table, error) {
	r, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// Fig6 reproduces the CPU-bound Web sweep: every request fetches one
// cached 8 KB file; CPU is the bottleneck and the impact factor fits
// a = 0.658 − 0.0139·v.
func Fig6(cfg Config) (*OverheadResult, error) {
	res, err := overheadSweep(cfg, "fig6", "specweb-cpubound", "web",
		sweepLoads(cfg, 400, 4000, 400), false, maxVMsFor(cfg), 1)
	if err != nil {
		return nil, err
	}
	if err := res.fitCurves(false); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig6(cfg Config) ([]*Table, error) {
	r, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// Fig8 reproduces the TPC-W DB sweep: closed-loop emulated browsers over a
// 2.7 GB database. Native Linux and one VM sit at roughly half the
// multi-VM plateau (the OS-software ceiling), and the impact factor fits
// the saturating rational a = 1.85·v²/(1+v²). The rational fit is the
// noisiest regression in the suite, so each point averages two parallel
// replications.
func Fig8(cfg Config) (*OverheadResult, error) {
	res, err := overheadSweep(cfg, "fig8", "tpcw-ebook", "db",
		sweepLoads(cfg, 200, 2200, 200), true, maxVMsFor(cfg), 2)
	if err != nil {
		return nil, err
	}
	if err := res.fitCurves(true); err != nil {
		return nil, err
	}
	return res, nil
}

func runFig8(cfg Config) ([]*Table, error) {
	r, err := Fig8(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// Fig7Result compares vCPU pinning policies for the DB VM.
type Fig7Result struct {
	EBs      []float64
	Pinned   []float64
	Unpinned []float64
}

// Fig7 reproduces the vCPU allocation study: one DB VM on one host, vCPUs
// either pinned to physical cores or left to the Xen credit scheduler
// (which costs roughly a quarter of throughput — virt.UnpinnedPenalty).
// The two series share seeds point for point, so the comparison is paired.
func Fig7(cfg Config) (*Fig7Result, error) {
	horizon := cfg.scale(60)
	warmup := horizon / 5
	ebs := sweepLoads(cfg, 100, 1300, 100)
	res := &Fig7Result{EBs: ebs}

	var pts []sweep.Point
	for _, pinned := range []bool{true, false} {
		for li, eb := range ebs {
			overhead := &scenario.Overhead{Preset: "db"}
			if !pinned {
				overhead.Pinning = "xen-scheduled"
			}
			pts = append(pts, sweep.Point{
				Label: fmt.Sprintf("pinned=%t ebs=%g", pinned, eb),
				Scenario: scenario.Scenario{
					Mode: "consolidated",
					Services: []scenario.Service{{
						Profile:  scenario.Profile{Preset: "tpcw-ebook"},
						Overhead: overhead,
						Clients:  int(eb),
					}},
					Fleet:   scenario.Fleet{Hosts: 1},
					Horizon: horizon,
					Warmup:  &warmup,
					Seed:    cfg.Seed + uint64(li),
				},
			})
		}
	}
	out, err := cfg.runPoints("fig7", pts)
	if err != nil {
		return nil, err
	}
	for li := range ebs {
		res.Pinned = append(res.Pinned, float64(out[li].TotalThroughput.Point))
		res.Unpinned = append(res.Unpinned, float64(out[len(ebs)+li].TotalThroughput.Point))
	}
	return res, nil
}

// PlateauRatio reports the unpinned/pinned stable-mean throughput ratio —
// the Fig. 7 penalty.
func (r *Fig7Result) PlateauRatio() float64 {
	a, err := virt.StableMeanImpact(r.Unpinned, r.Pinned, 0.15)
	if err != nil {
		return 0
	}
	return a
}

// Tables renders the pinning comparison.
func (r *Fig7Result) Tables() []*Table {
	t := &Table{
		ID:      "fig7",
		Title:   "DB throughput: pinned vs Xen-scheduled vCPUs",
		Columns: []string{"EBs", "pinned(WIPS)", "xen-scheduled(WIPS)"},
	}
	for i, eb := range r.EBs {
		t.AddRow(eb, r.Pinned[i], r.Unpinned[i])
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"plateau ratio unpinned/pinned = %.3f (paper: pinning clearly improves DB throughput)",
		r.PlateauRatio()))
	return []*Table{t}
}

func runFig7(cfg Config) ([]*Table, error) {
	r, err := Fig7(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}

// impactSeries is a small helper for tests: the measured impacts ordered
// by VM count.
func (r *OverheadResult) impactSeries() []float64 {
	out := make([]float64, 0, len(r.VMCounts))
	for _, v := range r.VMCounts {
		out = append(out, r.Impacts[v])
	}
	return out
}
