package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/erlang"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// PlanAblationRow is one planned fleet in the planner-vs-analytic
// ablation: the placement the search chose, its analytic score, and the
// simulated loss of the same placement as validation.
type PlanAblationRow struct {
	Fleet     string
	Objective string
	Hosts     int
	Units     float64
	ModelLoss float64
	Watts     float64
	SimLoss   float64
	Evals     int
}

// PlanAblationResult couples the rows with the homogeneous analytic
// reference N the planner must reproduce.
type PlanAblationResult struct {
	AnalyticN int
	Rows      []PlanAblationRow
}

// PlanAblation exercises the placement planner (internal/plan) against
// the paper's own sizing: on the homogeneous group-2 case study the
// planner must land exactly on the analytic N of Eq. (5); on a
// heterogeneous supply (reference AMD servers, slower but
// cheaper-to-power Intel machines, disk-rich nodes) it reports how many
// hosts and watts the min-servers and min-power objectives need for the
// same loss target. Every chosen placement is then re-scored by the
// cluster simulator through the shared engine.
func PlanAblation(cfg Config) (*PlanAblationResult, error) {
	base := scenario.CaseStudy(4, 4, "consolidated", 4)
	base.Seed = cfg.Seed

	m, err := eval.ModelFromScenario(base, LossTarget)
	if err != nil {
		return nil, err
	}
	analyticN := 0
	for _, j := range m.Resources {
		n, err := erlang.Servers(m.ConsolidatedTraffic(j, m.Form), LossTarget, 0)
		if err != nil {
			return nil, err
		}
		if n > analyticN {
			analyticN = n
		}
	}

	hetero := base.Clone()
	hetero.Fleet = scenario.Fleet{Classes: []scenario.HostClass{
		{Preset: "amd", Count: 6},
		{Preset: "intel", Count: 6, Power: &scenario.Power{BaseW: 230, MaxW: 310}},
		{Name: "fast-disk", Count: 2, Capability: map[string]float64{"diskio": 1.5}},
	}}

	ev := eval.NewAnalytic(nil)
	sim := eval.NewSim(cfg.engine().Scoped("ablation-plan"))
	ctx := context.Background()

	cases := []struct {
		fleet     string
		s         scenario.Scenario
		objective string
	}{
		{"homogeneous", base, plan.MinServers},
		{"hetero", hetero, plan.MinServers},
		{"hetero", hetero, plan.MinPower},
	}
	res := &PlanAblationResult{AnalyticN: analyticN}
	for _, c := range cases {
		p, err := plan.Search(ctx, ev, nil, plan.Spec{Scenario: c.s, Target: LossTarget, Objective: c.objective})
		if err != nil {
			return nil, fmt.Errorf("ablation-plan: %s/%s: %w", c.fleet, c.objective, err)
		}
		placed := p.Apply(c.s)
		placed.Horizon = cfg.scale(120)
		simRes, err := sim.Evaluate(ctx, placed)
		if err != nil {
			return nil, fmt.Errorf("ablation-plan: simulating %s/%s placement: %w", c.fleet, c.objective, err)
		}
		res.Rows = append(res.Rows, PlanAblationRow{
			Fleet:     c.fleet,
			Objective: c.objective,
			Hosts:     p.Hosts,
			Units:     p.Result.CapabilityUnits,
			ModelLoss: p.Result.Loss,
			Watts:     p.Result.Watts,
			SimLoss:   simRes.Loss,
			Evals:     p.Evaluations,
		})
	}
	return res, nil
}

// Tables renders the ablation.
func (r *PlanAblationResult) Tables() []*Table {
	t := &Table{
		ID:    "ablation-plan",
		Title: "placement planner vs the analytic sizing (DESIGN.md §12)",
		Columns: []string{"fleet", "objective", "hosts", "capability units",
			"model B", "watts", "sim B", "evals"},
	}
	minPowerWatts, homWatts := math.NaN(), math.NaN()
	for _, row := range r.Rows {
		t.AddRow(row.Fleet, row.Objective, row.Hosts, row.Units,
			row.ModelLoss, row.Watts, row.SimLoss, row.Evals)
		if row.Fleet == "homogeneous" {
			homWatts = row.Watts
		}
		if row.Fleet == "hetero" && row.Objective == plan.MinPower {
			minPowerWatts = row.Watts
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("homogeneous planner count must equal the analytic N = %d (tested)", r.AnalyticN))
	if !math.IsNaN(minPowerWatts) && !math.IsNaN(homWatts) {
		t.Notes = append(t.Notes,
			fmt.Sprintf("min-power hetero fleet draws %.0f W vs %.0f W for the homogeneous analytic bound", minPowerWatts, homWatts))
	}
	return []*Table{t}
}

func runPlanAblation(cfg Config) ([]*Table, error) {
	r, err := PlanAblation(cfg)
	if err != nil {
		return nil, err
	}
	return r.Tables(), nil
}
