package experiments

import (
	"strings"
	"testing"

	"repro/internal/plan"
)

// The ablation's acceptance criteria: on the homogeneous case study the
// planner reproduces the analytic N exactly, every placement meets the
// loss target, and the min-power heterogeneous fleet (with its
// cheaper-to-power Intel class) draws no more watts than the homogeneous
// analytic bound.
func TestPlanAblation(t *testing.T) {
	r, err := PlanAblation(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	var homWatts, minPowerWatts float64
	for _, row := range r.Rows {
		if row.ModelLoss > LossTarget {
			t.Errorf("%s/%s: model loss %g above target", row.Fleet, row.Objective, row.ModelLoss)
		}
		if row.Hosts <= 0 || row.Evals <= 0 {
			t.Errorf("%s/%s: degenerate row %+v", row.Fleet, row.Objective, row)
		}
		switch {
		case row.Fleet == "homogeneous":
			homWatts = row.Watts
			if row.Hosts != r.AnalyticN {
				t.Errorf("homogeneous planner chose %d hosts, analytic N = %d", row.Hosts, r.AnalyticN)
			}
		case row.Objective == plan.MinPower:
			minPowerWatts = row.Watts
		}
	}
	if minPowerWatts > homWatts+1e-9 {
		t.Errorf("min-power hetero watts %g exceed homogeneous bound %g", minPowerWatts, homWatts)
	}

	tables := r.Tables()
	if len(tables) != 1 || tables[0].ID != "ablation-plan" {
		t.Fatalf("tables = %+v", tables)
	}
	if !strings.Contains(tables[0].String(), "analytic N") {
		t.Fatal("table misses the analytic-N note")
	}
}

// The registry exposes the ablation under its ID.
func TestPlanAblationRegistered(t *testing.T) {
	e, ok := Lookup("ablation-plan")
	if !ok {
		t.Fatal("ablation-plan not registered")
	}
	if e.Run == nil || e.Title == "" {
		t.Fatalf("incomplete registration: %+v", e)
	}
}
