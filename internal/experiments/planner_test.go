package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/plan"
)

// The ablation's acceptance criteria: on the homogeneous case study the
// planner reproduces the analytic N exactly, every placement meets the
// loss target, and the min-power heterogeneous fleet (with its
// cheaper-to-power Intel class) draws no more watts than the homogeneous
// analytic bound.
func TestPlanAblation(t *testing.T) {
	r, err := PlanAblation(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	var homWatts, minPowerWatts float64
	for _, row := range r.Rows {
		if row.ModelLoss > LossTarget {
			t.Errorf("%s/%s: model loss %g above target", row.Fleet, row.Objective, row.ModelLoss)
		}
		if row.Hosts <= 0 || row.Evals <= 0 {
			t.Errorf("%s/%s: degenerate row %+v", row.Fleet, row.Objective, row)
		}
		switch {
		case row.Fleet == "homogeneous":
			homWatts = row.Watts
			if row.Hosts != r.AnalyticN {
				t.Errorf("homogeneous planner chose %d hosts, analytic N = %d", row.Hosts, r.AnalyticN)
			}
		case row.Objective == plan.MinPower:
			minPowerWatts = row.Watts
		}
	}
	if minPowerWatts > homWatts+1e-9 {
		t.Errorf("min-power hetero watts %g exceed homogeneous bound %g", minPowerWatts, homWatts)
	}

	tables := r.Tables()
	if len(tables) != 1 || tables[0].ID != "ablation-plan" {
		t.Fatalf("tables = %+v", tables)
	}
	if !strings.Contains(tables[0].String(), "analytic N") {
		t.Fatal("table misses the analytic-N note")
	}
}

// The registry exposes the ablation under its ID.
func TestPlanAblationRegistered(t *testing.T) {
	for _, id := range []string{"ablation-plan", "ablation-diurnal-plan"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		if e.Run == nil || e.Title == "" {
			t.Fatalf("%s: incomplete registration: %+v", id, e)
		}
	}
}

// The diurnal ablation's acceptance criteria: every policy keeps every
// bin under the loss target, the smoothed day strictly beats the static
// peak fleet on watt-hours, energy orders per-bin ≤ smoothed ≤ static,
// and the bracket policies degenerate correctly (static never migrates;
// zero cost resizes every bin).
func TestDiurnalPlanAblation(t *testing.T) {
	r, err := DiurnalPlan(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	rows := map[string]DiurnalPlanRow{}
	for _, row := range r.Rows {
		rows[row.Policy] = row
		if row.MaxBinLoss > LossTarget {
			t.Errorf("%s: max bin loss %g above target", row.Policy, row.MaxBinLoss)
		}
		if row.Segments <= 0 || row.MinHosts <= 0 || row.MaxHosts < row.MinHosts {
			t.Errorf("%s: degenerate row %+v", row.Policy, row)
		}
	}
	static, smoothed, perBin := rows["static-peak"], rows["smoothed"], rows["per-bin"]
	if static.Migrations != 0 || static.MigrationWh != 0 || static.MinHosts != static.MaxHosts {
		t.Errorf("static policy moved: %+v", static)
	}
	if perBin.Segments != 24 {
		t.Errorf("zero cost kept %d segments, want 24", perBin.Segments)
	}
	if !(smoothed.TotalWh < static.TotalWh) {
		t.Errorf("smoothed day %g Wh does not beat static %g Wh", smoothed.TotalWh, static.TotalWh)
	}
	if perBin.EnergyWh > smoothed.EnergyWh+1e-9 || smoothed.EnergyWh > static.EnergyWh+1e-9 {
		t.Errorf("energy not ordered per-bin ≤ smoothed ≤ static: %g, %g, %g",
			perBin.EnergyWh, smoothed.EnergyWh, static.EnergyWh)
	}
	if r.SmoothedWh != smoothed.TotalWh || r.StaticWh != static.TotalWh {
		t.Errorf("headline totals diverge from rows: %+v", r)
	}
	if math.IsNaN(r.PeakSimLoss) || r.PeakSimLoss < 0 || r.PeakSimLoss > 1 {
		t.Errorf("peak sim loss %g outside [0, 1]", r.PeakSimLoss)
	}

	tables := r.Tables()
	if len(tables) != 1 || tables[0].ID != "ablation-diurnal-plan" {
		t.Fatalf("tables = %+v", tables)
	}
	if !strings.Contains(tables[0].String(), "saved") {
		t.Fatal("table misses the savings note")
	}
}
