// Package loadgen is the load harness behind cmd/consolidated-load: it
// drives the capacity-planning service with SPECweb-style user sessions —
// session starts drawn from a non-homogeneous Poisson process following a
// diurnal rate shape (internal/workload's NHPP, the burstiness structure
// of Wang et al.'s virtualized-web characterization), each session issuing
// a geometric number of requests separated by exponential think gaps — and
// reports throughput, error counts and latency percentiles as JSON.
//
// The open-loop schedule (which request fires when, and at which endpoint)
// is drawn on a single seeded stream before dispatch, so two runs with the
// same seed issue the identical request sequence; only the measured
// latencies differ.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/diurnal"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DefaultShape is the diurnal session-rate profile: 24 "hours" of rate
// multipliers (mean 1) with a night trough and an evening peak, compressed
// onto the run duration. It is the canonical day shape of
// internal/diurnal — the same profile scenario periods default from — so
// the load harness and the multi-period planner exercise the same day.
var DefaultShape = diurnal.DayShape().Values

// DefaultTargets is the request mix: the single-query hot endpoints with a
// small rotating parameter set (so the service's Erlang memo sees repeat
// traffic the way a real planning client would), plus a batch probe.
var DefaultTargets = []Target{
	{Path: "/v1/servers?rho=120&target=0.001", Weight: 4},
	{Path: "/v1/servers?rho=42.5&target=0.01", Weight: 3},
	{Path: "/v1/servers?rho=1000&target=0.0001", Weight: 2},
	{Path: "/v1/loss?n=140&rho=120", Weight: 3},
	{Path: "/v1/loss?n=8&rho=5", Weight: 2},
	{Path: "/v1/batch", Weight: 1,
		Body: `{"queries":[{"kind":"servers","rho":120,"target":0.001},{"kind":"traffic","n":8,"target":0.01}]}`},
}

// Target is one weighted endpoint of the request mix. A non-empty Body
// makes it a POST.
type Target struct {
	Path   string
	Weight int
	Body   string
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string

	// Duration is the wall-clock run length.
	Duration time.Duration

	// SessionRate is the mean session arrival rate (sessions/s); the
	// instantaneous rate follows Shape around this mean.
	SessionRate float64

	// Shape is the diurnal rate profile (multipliers, any positive mean —
	// it is renormalized); nil selects DefaultShape. The whole profile is
	// compressed onto Duration and cycles if the run outlasts it.
	Shape []float64

	// MeanRequests is the mean geometric number of requests per session;
	// 0 means 5.
	MeanRequests float64

	// ThinkMean is the mean exponential think gap between a session's
	// requests; 0 means 50 ms.
	ThinkMean time.Duration

	// Workers caps concurrent in-flight requests; 0 means 64.
	Workers int

	// Timeout bounds one request; 0 means 5 s.
	Timeout time.Duration

	// Seed drives the schedule; 0 means 1.
	Seed uint64

	// Targets is the request mix; nil selects DefaultTargets.
	Targets []Target

	// Client is the HTTP client; nil builds one with keep-alives sized to
	// Workers.
	Client *http.Client
}

// Percentiles summarizes a latency population in milliseconds.
type Percentiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Report is the JSON result of one run — the artifact the CI load gate
// inspects.
type Report struct {
	BaseURL     string  `json:"base_url"`
	StartedAt   string  `json:"started_at"`
	DurationSec float64 `json:"duration_sec"`
	Seed        uint64  `json:"seed"`

	Sessions  int64 `json:"sessions"`
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Timeouts  int64 `json:"timeouts"`
	Transport int64 `json:"transport_errors"`

	ErrorRate  float64 `json:"error_rate"`
	Throughput float64 `json:"throughput_rps"`

	Latency Percentiles `json:"latency"`

	// StatusCounts maps HTTP status ("200", "400", ...) to request counts;
	// transport failures count under "error".
	StatusCounts map[string]int64 `json:"status_counts"`

	// PerTarget breaks requests and errors down by request path.
	PerTarget map[string]*TargetStats `json:"per_target"`
}

// TargetStats is the per-endpoint slice of the report.
type TargetStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	P99Ms    float64 `json:"p99_ms"`

	lats []float64
}

// request is one scheduled request of the precomputed open-loop plan.
type request struct {
	at     time.Duration // offset from run start
	target int           // index into cfg.Targets
}

// normalized validates cfg and fills defaults, returning the effective
// configuration.
func (cfg Config) normalized() (Config, error) {
	if cfg.BaseURL == "" {
		return cfg, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Duration <= 0 {
		return cfg, fmt.Errorf("loadgen: Duration must be positive, got %v", cfg.Duration)
	}
	if cfg.SessionRate <= 0 || math.IsNaN(cfg.SessionRate) || math.IsInf(cfg.SessionRate, 0) {
		return cfg, fmt.Errorf("loadgen: SessionRate must be positive, got %v", cfg.SessionRate)
	}
	if cfg.Workers < 0 {
		return cfg, fmt.Errorf("loadgen: Workers=%d (negative; 0 selects the default)", cfg.Workers)
	}
	if cfg.Shape == nil {
		cfg.Shape = DefaultShape
	}
	if cfg.MeanRequests == 0 {
		cfg.MeanRequests = 5
	}
	if cfg.MeanRequests < 1 {
		return cfg, fmt.Errorf("loadgen: MeanRequests must be >= 1, got %v", cfg.MeanRequests)
	}
	if cfg.ThinkMean == 0 {
		cfg.ThinkMean = 50 * time.Millisecond
	}
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Targets == nil {
		cfg.Targets = DefaultTargets
	}
	for i, tgt := range cfg.Targets {
		if tgt.Weight <= 0 || tgt.Path == "" {
			return cfg, fmt.Errorf("loadgen: target %d needs a path and positive weight", i)
		}
	}
	return cfg, nil
}

// Run executes one load run and returns its report. It only errors on an
// unusable configuration; request failures are data, not errors.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers,
				MaxIdleConnsPerHost: cfg.Workers,
			},
		}
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")

	plan, sessions := buildPlan(cfg)

	rec := &recorder{
		statuses:  map[string]int64{},
		perTarget: map[string]*TargetStats{},
	}
	for _, tgt := range cfg.Targets {
		path := tgt.Path
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		if rec.perTarget[path] == nil {
			rec.perTarget[path] = &TargetStats{}
		}
	}

	started := time.Now()
	runCtx, cancel := context.WithDeadline(ctx, started.Add(cfg.Duration+cfg.Timeout))
	defer cancel()

	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	defer timer.Stop()
dispatch:
	for _, req := range plan {
		wait := time.Until(started.Add(req.at))
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(tgt Target) {
			defer func() { <-sem; wg.Done() }()
			fire(runCtx, cfg, base, tgt, rec)
		}(cfg.Targets[req.target])
	}
	wg.Wait()
	elapsed := time.Since(started)

	return rec.report(cfg, sessions, started, elapsed), nil
}

// buildPlan draws the full open-loop schedule on one seeded stream:
// session starts from the diurnal NHPP, request offsets within each
// session from the geometric/think-gap model, and a weighted target choice
// per request.
func buildPlan(cfg Config) (plan []request, sessions int64) {
	stream := stats.NewStream(cfg.Seed, "loadgen")

	// Normalize the shape to mean 1 and compress it onto the run: the
	// whole profile spans Duration, cycling if dispatch outruns it.
	mean := 0.0
	for _, v := range cfg.Shape {
		mean += v
	}
	mean /= float64(len(cfg.Shape))
	rates := make([]float64, len(cfg.Shape))
	for i, v := range cfg.Shape {
		rates[i] = cfg.SessionRate * v / mean
	}
	binSec := cfg.Duration.Seconds() / float64(len(rates))
	arrivals := workload.NewNHPP(rates, binSec, true)

	totalWeight := 0
	for _, t := range cfg.Targets {
		totalWeight += t.Weight
	}
	pick := func() int {
		w := stream.IntN(totalWeight)
		for i, t := range cfg.Targets {
			w -= t.Weight
			if w < 0 {
				return i
			}
		}
		return len(cfg.Targets) - 1
	}

	horizon := cfg.Duration.Seconds()
	cont := 1 - 1/cfg.MeanRequests
	for t := arrivals.Next(stream); t < horizon; t += arrivals.Next(stream) {
		sessions++
		at := t
		plan = append(plan, request{at: secs(at), target: pick()})
		for stream.Bernoulli(cont) {
			at += stream.ExpFloat64() * cfg.ThinkMean.Seconds()
			if at >= horizon {
				break
			}
			plan = append(plan, request{at: secs(at), target: pick()})
		}
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].at < plan[j].at })
	return plan, sessions
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// fire issues one request and records its outcome.
func fire(ctx context.Context, cfg Config, base string, tgt Target, rec *recorder) {
	reqCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	method, body := http.MethodGet, io.Reader(nil)
	if tgt.Body != "" {
		method, body = http.MethodPost, strings.NewReader(tgt.Body)
	}
	req, err := http.NewRequestWithContext(reqCtx, method, base+tgt.Path, body)
	if err != nil {
		rec.record(tgt.Path, 0, 0, errKindTransport)
		return
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := cfg.Client.Do(req)
	lat := time.Since(start)
	if err != nil {
		kind := errKindTransport
		if reqCtx.Err() == context.DeadlineExceeded {
			kind = errKindTimeout
		}
		rec.record(tgt.Path, lat, 0, kind)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec.record(tgt.Path, lat, resp.StatusCode, errKindNone)
}

type errKind int

const (
	errKindNone errKind = iota
	errKindTimeout
	errKindTransport
)

// recorder accumulates outcomes under one lock; load-test rates are far
// below contention territory.
type recorder struct {
	mu        sync.Mutex
	lats      []float64 // milliseconds, successful requests
	requests  int64
	errors    int64
	timeouts  int64
	transport int64
	statuses  map[string]int64
	perTarget map[string]*TargetStats
}

func (r *recorder) record(path string, lat time.Duration, status int, kind errKind) {
	if i := strings.IndexByte(path, '?'); i >= 0 {
		path = path[:i]
	}
	ms := float64(lat) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.requests++
	ts := r.perTarget[path]
	if ts == nil {
		ts = &TargetStats{}
		r.perTarget[path] = ts
	}
	ts.Requests++
	switch kind {
	case errKindNone:
		r.statuses[fmt.Sprintf("%d", status)]++
		if status >= 200 && status < 300 {
			r.lats = append(r.lats, ms)
			ts.lats = append(ts.lats, ms)
		} else {
			r.errors++
			ts.Errors++
		}
	case errKindTimeout:
		r.statuses["error"]++
		r.errors++
		r.timeouts++
		ts.Errors++
	case errKindTransport:
		r.statuses["error"]++
		r.errors++
		r.transport++
		ts.Errors++
	}
}

func (r *recorder) report(cfg Config, sessions int64, started time.Time, elapsed time.Duration) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		BaseURL:      cfg.BaseURL,
		StartedAt:    started.UTC().Format(time.RFC3339),
		DurationSec:  elapsed.Seconds(),
		Seed:         cfg.Seed,
		Sessions:     sessions,
		Requests:     r.requests,
		Errors:       r.errors,
		Timeouts:     r.timeouts,
		Transport:    r.transport,
		StatusCounts: r.statuses,
		PerTarget:    r.perTarget,
		Latency:      percentiles(r.lats),
	}
	if r.requests > 0 {
		rep.ErrorRate = float64(r.errors) / float64(r.requests)
	}
	if elapsed > 0 {
		rep.Throughput = float64(r.requests) / elapsed.Seconds()
	}
	for _, ts := range r.perTarget {
		ts.P99Ms = percentiles(ts.lats).P99
		ts.lats = nil
	}
	return rep
}

// percentiles summarizes one latency population (destructively sorts).
func percentiles(lats []float64) Percentiles {
	if len(lats) == 0 {
		return Percentiles{}
	}
	sort.Float64s(lats)
	sum := 0.0
	for _, v := range lats {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	return Percentiles{
		P50:  q(0.50),
		P90:  q(0.90),
		P99:  q(0.99),
		Max:  lats[len(lats)-1],
		Mean: sum / float64(len(lats)),
	}
}
