package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// testConfig keeps runs short: ~1s, modest rate, tight timeout.
func testConfig(url string) Config {
	return Config{
		BaseURL:     url,
		Duration:    800 * time.Millisecond,
		SessionRate: 40,
		Workers:     16,
		Timeout:     2 * time.Second,
		Seed:        7,
	}
}

func TestRunAgainstService(t *testing.T) {
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	rep, err := Run(context.Background(), testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Sessions == 0 {
		t.Fatal("no sessions scheduled")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors against healthy in-process service: %d (statuses %v)", rep.Errors, rep.StatusCounts)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("error rate %v, want 0", rep.ErrorRate)
	}
	if rep.Latency.P99 <= 0 || rep.Latency.P50 > rep.Latency.P99 || rep.Latency.P99 > rep.Latency.Max {
		t.Fatalf("implausible percentiles %+v", rep.Latency)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	if rep.StatusCounts["200"] != rep.Requests {
		t.Fatalf("status counts %v don't cover %d requests", rep.StatusCounts, rep.Requests)
	}
	for path, ts := range rep.PerTarget {
		if ts.Requests > 0 && ts.Errors == 0 && ts.P99Ms <= 0 {
			t.Fatalf("target %s: %d requests but p99 %v", path, ts.Requests, ts.P99Ms)
		}
	}
	// The report must round-trip as JSON (it is the CI artifact).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.Latency.P99 != rep.Latency.P99 {
		t.Fatal("report does not round-trip through JSON")
	}
}

// TestDeterministicSchedule: two plans with the same seed are identical,
// a different seed diverges.
func TestDeterministicSchedule(t *testing.T) {
	cfg, err := testConfig("http://unused").normalized()
	if err != nil {
		t.Fatal(err)
	}
	planA, sessA := buildPlan(cfg)
	planB, sessB := buildPlan(cfg)
	if sessA != sessB || len(planA) != len(planB) {
		t.Fatalf("same seed, different plans: %d/%d sessions, %d/%d requests",
			sessA, sessB, len(planA), len(planB))
	}
	for i := range planA {
		if planA[i] != planB[i] {
			t.Fatalf("plan diverges at request %d: %+v vs %+v", i, planA[i], planB[i])
		}
	}
	cfg.Seed = 8
	planC, _ := buildPlan(cfg)
	if len(planC) == len(planA) {
		same := true
		for i := range planC {
			if planC[i] != planA[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical plans")
		}
	}
}

// TestErrorsAreData: a server returning 500s yields a clean report with
// the failures counted, not a Run error.
func TestErrorsAreData(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Duration = 400 * time.Millisecond
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatal("flaky server produced no recorded errors")
	}
	if rep.ErrorRate <= 0 || rep.ErrorRate >= 1 {
		t.Fatalf("error rate %v, want strictly between 0 and 1", rep.ErrorRate)
	}
	if rep.StatusCounts["500"] != rep.Errors {
		t.Fatalf("status counts %v vs errors %d", rep.StatusCounts, rep.Errors)
	}
}

// TestCancelStopsDispatch: canceling the context ends the run early.
func TestCancelStopsDispatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	cfg := testConfig(ts.URL)
	cfg.Duration = 30 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run ignored cancellation, took %v", elapsed)
	}
	if rep.DurationSec >= 30 {
		t.Fatalf("report claims full duration %v after cancel", rep.DurationSec)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no url", func(c *Config) { c.BaseURL = "" }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative rate", func(c *Config) { c.SessionRate = -1 }},
		{"nan rate", func(c *Config) { c.SessionRate = nan() }},
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"mean requests below 1", func(c *Config) { c.MeanRequests = 0.5 }},
		{"weightless target", func(c *Config) { c.Targets = []Target{{Path: "/x"}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig("http://unused")
			tc.mut(&cfg)
			if _, err := Run(context.Background(), cfg); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
}

func nan() float64 { var z float64; return z / z }

func TestPercentiles(t *testing.T) {
	p := percentiles([]float64{5, 1, 3, 2, 4})
	if p.P50 != 3 || p.Max != 5 || p.Mean != 3 {
		t.Fatalf("got %+v", p)
	}
	if p.P99 != 5 {
		t.Fatalf("p99 of 5 samples should be the max, got %v", p.P99)
	}
	if z := percentiles(nil); z != (Percentiles{}) {
		t.Fatalf("empty population: %+v", z)
	}
}
