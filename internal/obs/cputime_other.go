//go:build !unix

package obs

// cpuSeconds is unavailable off unix; manifests record 0.
func cpuSeconds() float64 { return 0 }
