package obs

import (
	"net/http"
	"sync"
	"time"
)

// DefaultLatencyBounds are the histogram bucket bounds (seconds) used by
// InstrumentHandler: 100µs to 10s, roughly ×3 per bucket — wide enough
// for both the microsecond analytic endpoints and second-scale sweeps.
var DefaultLatencyBounds = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// httpMetrics is the per-route handle set, resolved once at wrap time so
// the per-request path touches only atomic handles.
type httpMetrics struct {
	requests *Counter
	errors   *Counter   // responses with status >= 500
	clientEr *Counter   // responses with status 400..499
	inflight *Gauge     // currently executing requests
	latency  *Histogram // seconds
}

// statusWriter captures the response status without otherwise interfering.
// Instances are pooled: the middleware is designed to add zero allocations
// per request on top of the wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

var statusWriters = sync.Pool{New: func() any { return new(statusWriter) }}

// InstrumentHandler wraps next with per-route HTTP metrics registered in
// reg under http/<route>/: requests, errors_5xx, errors_4xx (counters),
// inflight (gauge) and latency_seconds (histogram). All handles are
// resolved at wrap time; the request path performs only atomic updates
// and a pooled writer swap, allocating nothing itself.
func InstrumentHandler(reg *Registry, route string, next http.Handler) http.Handler {
	m := &httpMetrics{
		requests: reg.Counter("http/" + route + "/requests"),
		errors:   reg.Counter("http/" + route + "/errors_5xx"),
		clientEr: reg.Counter("http/" + route + "/errors_4xx"),
		inflight: reg.Gauge("http/" + route + "/inflight"),
		latency:  reg.Histogram("http/"+route+"/latency_seconds", DefaultLatencyBounds),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()
		m.inflight.Add(1)

		sw := statusWriters.Get().(*statusWriter)
		sw.ResponseWriter = w
		sw.status = 0
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sw.ResponseWriter = nil
		statusWriters.Put(sw)

		m.inflight.Add(-1)
		m.latency.Observe(time.Since(start).Seconds())
		switch {
		case status >= 500:
			m.errors.Inc()
		case status >= 400:
			m.clientEr.Inc()
		}
	})
}
