package obs

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// nullWriter is a ResponseWriter with everything preallocated, so the
// allocation test measures only the middleware.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) WriteHeader(code int)        { w.status = code }
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestInstrumentHandlerCounts(t *testing.T) {
	reg := NewRegistry()
	statuses := []int{200, 200, 404, 500, 204}
	i := 0
	h := InstrumentHandler(reg, "test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := statuses[i]
		i++
		if s == 200 {
			// Implicit 200 via Write without WriteHeader.
			if _, err := w.Write([]byte("ok")); err != nil {
				t.Fatal(err)
			}
			return
		}
		w.WriteHeader(s)
	}))
	for range statuses {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}

	snap := reg.Snapshot()
	if got := snap.Counters["http/test/requests"]; got != uint64(len(statuses)) {
		t.Errorf("requests = %d, want %d", got, len(statuses))
	}
	if got := snap.Counters["http/test/errors_5xx"]; got != 1 {
		t.Errorf("errors_5xx = %d, want 1", got)
	}
	if got := snap.Counters["http/test/errors_4xx"]; got != 1 {
		t.Errorf("errors_4xx = %d, want 1", got)
	}
	if got := snap.Gauges["http/test/inflight"]; got != 0 {
		t.Errorf("inflight after completion = %g, want 0", got)
	}
	lat := snap.Histograms["http/test/latency_seconds"]
	if lat.Count != uint64(len(statuses)) {
		t.Errorf("latency count = %d, want %d", lat.Count, len(statuses))
	}
}

func TestInstrumentHandlerInflightDuringRequest(t *testing.T) {
	reg := NewRegistry()
	gauge := reg.Gauge("http/g/inflight")
	var seen float64
	h := InstrumentHandler(reg, "g", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = gauge.Load()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if seen != 1 {
		t.Errorf("inflight during request = %g, want 1", seen)
	}
	if got := gauge.Load(); got != 0 {
		t.Errorf("inflight after request = %g, want 0", got)
	}
}

// TestInstrumentHandlerAllocations pins the middleware's own request-path
// cost at zero allocations.
func TestInstrumentHandlerAllocations(t *testing.T) {
	reg := NewRegistry()
	body := []byte("ok")
	h := InstrumentHandler(reg, "hot", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := w.Write(body); err != nil {
			t.Fatal(err)
		}
	}))
	req := &http.Request{Method: "GET", URL: &url.URL{Path: "/x"}}
	w := &nullWriter{h: http.Header{}}
	h.ServeHTTP(w, req) // warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		h.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Errorf("middleware allocates %v allocs/op, want 0", allocs)
	}
}
