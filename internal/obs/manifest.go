package obs

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Manifest is the structured record one simulator invocation leaves
// behind: enough provenance (config, seed, code revision, toolchain) and
// outcome (timings, metric snapshot) to audit a quantitative claim or
// compare two runs. One JSON file per run.
type Manifest struct {
	// Tool names the emitting command (simulate, repro, simbench).
	Tool string `json:"tool"`

	// Args is the command line after the program name.
	Args []string `json:"args,omitempty"`

	// Config is the tool-specific resolved configuration block.
	Config any `json:"config,omitempty"`

	// Seed is the root random seed of the run (0 when not applicable).
	Seed uint64 `json:"seed"`

	// GitRevision is the VCS commit the binary was built from, and
	// GitDirty whether the tree had local modifications.
	GitRevision string `json:"git_revision"`
	GitDirty    bool   `json:"git_dirty,omitempty"`

	// GoVersion is the runtime's toolchain version.
	GoVersion string `json:"go_version"`

	// StartedAt is the wall-clock start in RFC3339 UTC.
	StartedAt string `json:"started_at"`

	// WallSeconds and CPUSeconds are the run's elapsed wall time and
	// process CPU time (user+system), filled by Finish.
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`

	// Metrics is the final registry snapshot.
	Metrics Snapshot `json:"metrics"`

	start time.Time
}

// NewManifest starts a manifest for the named tool: it stamps the start
// time and fills the provenance fields (args, go version, git revision).
func NewManifest(tool string, seed uint64) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Args:      os.Args[1:],
		Seed:      seed,
		GoVersion: runtime.Version(),
		start:     time.Now(),
	}
	m.StartedAt = m.start.UTC().Format(time.RFC3339)
	m.GitRevision, m.GitDirty = gitRevision()
	return m
}

// Finish closes the manifest: it records wall and CPU time since
// NewManifest and attaches the metric snapshot.
func (m *Manifest) Finish(metrics Snapshot) *Manifest {
	m.WallSeconds = time.Since(m.start).Seconds()
	m.CPUSeconds = cpuSeconds()
	m.Metrics = metrics
	return m
}

// MarshalIndent renders the manifest as indented JSON with a trailing
// newline.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// gitRevision resolves the commit hash of the running code: first from
// the binary's embedded build info (set for installed binaries), then by
// asking git directly (the `go run` / `go test` case), finally "unknown".
func gitRevision() (rev string, dirty bool) {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if rev != "" {
		return rev, dirty
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown", false
	}
	rev = strings.TrimSpace(string(out))
	status, err := exec.Command("git", "status", "--porcelain").Output()
	if err == nil && len(strings.TrimSpace(string(status))) > 0 {
		dirty = true
	}
	return rev, dirty
}
