package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events").Add(42)
	m := NewManifest("testtool", 7)
	m.Config = map[string]any{"horizon": 120.0}
	m.Finish(r.Snapshot())

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Tool != "testtool" || back.Seed != 7 {
		t.Fatalf("tool/seed = %q/%d", back.Tool, back.Seed)
	}
	if back.GoVersion != runtime.Version() {
		t.Fatalf("go version = %q", back.GoVersion)
	}
	if back.GitRevision == "" {
		t.Fatal("git revision empty")
	}
	if _, err := time.Parse(time.RFC3339, back.StartedAt); err != nil {
		t.Fatalf("started_at %q: %v", back.StartedAt, err)
	}
	if back.WallSeconds < 0 {
		t.Fatalf("wall seconds = %g", back.WallSeconds)
	}
	if back.Metrics.Counters["events"] != 42 {
		t.Fatalf("metrics = %v", back.Metrics)
	}
}

func TestManifestCPUTime(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("rusage unavailable")
	}
	// Burn a little CPU so the reading is visibly positive.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 3)
	}
	_ = x
	if got := cpuSeconds(); got <= 0 {
		t.Fatalf("cpuSeconds = %g, want > 0", got)
	}
}
