// Package obs is the observability layer threaded through the simulation
// stack: a low-overhead metrics registry, structured run manifests, and an
// optional JSONL event tracer.
//
// The registry hands out metric handles at registration time; the hot path
// touches only the handle — an atomic add for counters, an atomic store for
// gauges, a bounded bucket scan for histograms. No map lookup, interface
// dispatch, or allocation happens per observation (verified by
// TestHotPathAllocations). Single-writer subsystems that cannot afford even
// an uncontended atomic (the discrete-event engine's per-event counters)
// keep plain struct fields and register them as CounterFunc/GaugeFunc
// collectors, which the registry reads only when a snapshot is taken.
//
// A Snapshot is the registry frozen into plain maps, embedded into run
// manifests (see Manifest) so every simulator invocation leaves an
// auditable record of what the engine actually did.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Safe for
// concurrent use; Inc/Add never allocate.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reports the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64. Safe for concurrent use;
// Set/Add/SetMax never allocate.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load reports the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Add atomically adds d to the gauge (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket latency/size histogram. Bucket bounds are
// chosen at registration and never change; Observe scans them linearly
// (bounds are few) and performs no allocation. Counts[i] holds
// observations <= Bounds[i]; the final slot is the overflow bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    Gauge // atomic float64 accumulator
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot freezes the histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a Histogram frozen for serialization. Counts has
// one more entry than Bounds; the extra final entry is the overflow
// bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is the registry frozen into plain maps, the metrics block of a
// run manifest. encoding/json sorts map keys, so serialized snapshots are
// byte-deterministic for a given state.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge folds other into s and returns s: counters and histograms (with
// identical bounds) add; gauges keep the maximum, which suits the
// high-water and occupancy gauges the simulators publish. Histograms with
// mismatched bounds keep s's buckets but still add counts and sums.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	for k, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = map[string]uint64{}
		}
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]float64{}
		}
		if cur, ok := s.Gauges[k]; !ok || v > cur {
			s.Gauges[k] = v
		}
	}
	for k, v := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		cur, ok := s.Histograms[k]
		if !ok {
			s.Histograms[k] = v
			continue
		}
		cur.Count += v.Count
		cur.Sum += v.Sum
		if len(cur.Counts) == len(v.Counts) {
			counts := append([]uint64(nil), cur.Counts...)
			for i := range counts {
				counts[i] += v.Counts[i]
			}
			cur.Counts = counts
		}
		s.Histograms[k] = cur
	}
	return s
}

// Registry is a named collection of metrics. Registration (Counter,
// Gauge, Histogram, CounterFunc, GaugeFunc) takes a lock and may
// allocate; the returned handles are lock-free. Registering the same name
// twice returns the original handle; registering one name as two
// different kinds panics — that is a programming error, not runtime
// input.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	histograms   map[string]*Histogram
	counterFuncs map[string]func() uint64
	gaugeFuncs   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		histograms:   map[string]*Histogram{},
		counterFuncs: map[string]func() uint64{},
		gaugeFuncs:   map[string]func() float64{},
	}
}

// checkNew panics if name is already registered under a different kind.
func (r *Registry) checkNew(name, kind string) {
	kinds := []struct {
		k  string
		ok bool
	}{
		{"counter", r.counters[name] != nil},
		{"gauge", r.gauges[name] != nil},
		{"histogram", r.histograms[name] != nil},
		{"counterfunc", r.counterFuncs[name] != nil},
		{"gaugefunc", r.gaugeFuncs[name] != nil},
	}
	for _, c := range kinds {
		if c.ok && c.k != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, c.k, kind))
		}
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkNew(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkNew(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket bounds on first use. Later calls ignore
// bounds and return the original.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkNew(name, "histogram")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterFunc registers a counter collected by calling fn at snapshot
// time — the zero-hot-path form for single-writer subsystems that keep
// plain struct fields. fn must be safe to call whenever Snapshot is.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkNew(name, "counterfunc")
	r.counterFuncs[name] = fn
}

// GaugeFunc registers a gauge collected by calling fn at snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkNew(name, "gaugefunc")
	r.gaugeFuncs[name] = fn
}

// Snapshot freezes every registered metric. Func collectors are invoked
// under the registry lock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if n := len(r.counters) + len(r.counterFuncs); n > 0 {
		s.Counters = make(map[string]uint64, n)
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
		for name, fn := range r.counterFuncs {
			s.Counters[name] = fn()
		}
	}
	if n := len(r.gauges) + len(r.gaugeFuncs); n > 0 {
		s.Gauges = make(map[string]float64, n)
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
		for name, fn := range r.gaugeFuncs {
			s.Gauges[name] = fn()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}
