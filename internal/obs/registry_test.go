package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	g.SetMax(1.0)
	if got := g.Load(); got != 1.5 {
		t.Fatalf("SetMax lowered the gauge to %g", got)
	}
	g.SetMax(3)
	if got := g.Load(); got != 3 {
		t.Fatalf("SetMax = %g, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	// 0.05 and 0.1 land in <=0.1; 0.5 in <=1; 2 in <=10; 100 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 102.65 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestSnapshotIncludesFuncCollectors(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.25)
	r.CounterFunc("cf", func() uint64 { return 11 })
	r.GaugeFunc("gf", func() float64 { return -2 })
	s := r.Snapshot()
	if s.Counters["c"] != 7 || s.Counters["cf"] != 11 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 1.25 || s.Gauges["gf"] != -2 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{
		Counters: map[string]uint64{"c": 2},
		Gauges:   map[string]float64{"hw": 5},
		Histograms: map[string]HistogramSnapshot{
			"h": {Count: 2, Sum: 3, Bounds: []float64{1}, Counts: []uint64{1, 1}},
		},
	}
	b := Snapshot{
		Counters: map[string]uint64{"c": 3, "d": 1},
		Gauges:   map[string]float64{"hw": 4, "other": 9},
		Histograms: map[string]HistogramSnapshot{
			"h": {Count: 1, Sum: 0.5, Bounds: []float64{1}, Counts: []uint64{1, 0}},
		},
	}
	m := a.Merge(b)
	if m.Counters["c"] != 5 || m.Counters["d"] != 1 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if m.Gauges["hw"] != 5 || m.Gauges["other"] != 9 {
		t.Fatalf("gauges = %v", m.Gauges)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 3.5 || h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Fatalf("histogram = %+v", h)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.Gauge("m").Set(1)
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("snapshot JSON unstable:\n%s\n%s", first, again)
		}
	}
}

// TestHotPathAllocations pins the registry's core guarantee: observing a
// metric through a handle never allocates.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(2)
		g.Add(0.5)
		g.SetMax(7)
		h.Observe(0.02)
		h.Observe(50)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%2) * 0.75)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
