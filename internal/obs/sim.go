package obs

import "repro/internal/desim"

// RegisterSimulator publishes a discrete-event simulator's engine
// counters into the registry under the given prefix, as snapshot-time
// func collectors — the engine itself keeps plain fields and pays nothing
// per event. Call after creating the simulator; the registry reads the
// live counters whenever Snapshot runs.
func RegisterSimulator(r *Registry, prefix string, sim *desim.Simulator) {
	r.CounterFunc(prefix+"/events_scheduled", func() uint64 { return sim.Stats().Scheduled })
	r.CounterFunc(prefix+"/events_fired", func() uint64 { return sim.Stats().Fired })
	r.CounterFunc(prefix+"/events_cancelled", func() uint64 { return sim.Stats().Cancelled })
	r.CounterFunc(prefix+"/arena_compactions", func() uint64 { return sim.Stats().Compactions })
	r.GaugeFunc(prefix+"/queue_high_water", func() float64 { return float64(sim.Stats().MaxQueue) })
	r.GaugeFunc(prefix+"/arena_slots", func() float64 { return float64(sim.Stats().ArenaSlots) })
}
