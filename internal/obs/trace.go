package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"repro/internal/desim"
)

// TraceWriter emits scheduler operations as one JSON object per line
// (JSONL) for post-hoc debugging of sim schedules. It implements
// desim.Tracer; install it with Simulator.SetTracer.
//
// A sampling rate keeps full-fidelity tracing optional: sampleEvery = 1
// records every operation, N > 1 records every Nth (counted across all
// operation kinds), preserving relative density between schedules, fires
// and cancels. Lines are hand-formatted into a reused buffer, so tracing
// adds no per-event allocation — only the sampled writes.
//
// TraceWriter is safe for concurrent use (replicated runs may share one
// writer; their lines interleave but each line stays intact).
type TraceWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	closer  io.Closer
	every   uint64
	n       uint64
	seq     uint64
	buf     []byte
	written uint64
	err     error
}

// NewTraceWriter wraps w. sampleEvery <= 1 records every operation;
// N > 1 records one in N. If w is an io.Closer, Close closes it.
func NewTraceWriter(w io.Writer, sampleEvery int) *TraceWriter {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t := &TraceWriter{
		bw:    bufio.NewWriterSize(w, 1<<16),
		every: uint64(sampleEvery),
		buf:   make([]byte, 0, 128),
	}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// TraceEvent implements desim.Tracer.
func (t *TraceWriter) TraceEvent(op desim.TraceOp, now, at desim.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	if t.n%t.every != 0 || t.err != nil {
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, t.seq, 10)
	b = append(b, `,"op":"`...)
	b = append(b, op.String()...)
	b = append(b, `","now":`...)
	b = strconv.AppendFloat(b, now, 'g', -1, 64)
	b = append(b, `,"at":`...)
	b = strconv.AppendFloat(b, at, 'g', -1, 64)
	b = append(b, "}\n"...)
	t.buf = b
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
		return
	}
	t.written++
}

// Written reports how many trace lines have been emitted (post-sampling).
func (t *TraceWriter) Written() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.written
}

// Close flushes buffered lines and closes the underlying writer when it
// is closable. It returns the first error seen while tracing, flushing
// or closing.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	return t.err
}
