package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/desim"
)

func TestTraceWriterRecordsSchedulerOps(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, 1)
	sim := desim.New()
	sim.SetTracer(tw)

	h := sim.After(5, func() {})
	sim.After(1, func() {})
	h.Cancel()
	sim.RunAll()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var ops []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Seq uint64  `json:"seq"`
			Op  string  `json:"op"`
			Now float64 `json:"now"`
			At  float64 `json:"at"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		ops = append(ops, line.Op)
	}
	want := []string{"schedule", "schedule", "cancel", "fire"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestTraceWriterSampling(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, 10)
	sim := desim.New()
	sim.SetTracer(tw)
	for i := 0; i < 100; i++ {
		sim.After(1, func() {})
	}
	sim.RunAll()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	// 200 operations (100 schedules + 100 fires) sampled 1-in-10.
	lines := strings.Count(buf.String(), "\n")
	if lines != 20 {
		t.Fatalf("sampled lines = %d, want 20", lines)
	}
	if tw.Written() != 20 {
		t.Fatalf("Written() = %d, want 20", tw.Written())
	}
}
