package plan_test

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// BenchmarkPlan times a full heterogeneous analytic placement search —
// FFD seed, local-search descent and final evaluation — sharing one memo
// across iterations the way a long-lived planner process would.
func BenchmarkPlan(b *testing.B) {
	s := scenario.CaseStudy(4, 4, "consolidated", 0)
	s.Fleet = scenario.Fleet{Classes: []scenario.HostClass{
		{Preset: "amd", Count: 4},
		{Preset: "intel", Count: 4},
		{Preset: "blade", Count: 4},
	}}
	ev := eval.NewAnalytic(nil)
	spec := plan.Spec{Scenario: s, Target: 0.05, Objective: plan.MinPower, Seed: 7}
	// No ReportAllocs: the pool-parallel candidate batches make the count
	// jitter by a few allocs run to run, and the benchdiff gate treats any
	// allocs/op increase as a regression (same policy as BenchmarkShardedRun).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Search(context.Background(), ev, nil, spec); err != nil {
			b.Fatal(err)
		}
	}
}
