package plan_test

import (
	"context"
	"testing"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// BenchmarkPlan times a full heterogeneous analytic placement search —
// FFD seed, local-search descent and final evaluation — sharing one memo
// across iterations the way a long-lived planner process would.
func BenchmarkPlan(b *testing.B) {
	s := scenario.CaseStudy(4, 4, "consolidated", 0)
	s.Fleet = scenario.Fleet{Classes: []scenario.HostClass{
		{Preset: "amd", Count: 4},
		{Preset: "intel", Count: 4},
		{Preset: "blade", Count: 4},
	}}
	ev := eval.NewAnalytic(nil)
	spec := plan.Spec{Scenario: s, Target: 0.05, Objective: plan.MinPower, Seed: 7}
	// No ReportAllocs: the pool-parallel candidate batches make the count
	// jitter by a few allocs run to run, and the benchdiff gate treats any
	// allocs/op increase as a regression (same policy as BenchmarkShardedRun).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Search(context.Background(), ev, nil, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanPeriods times a full analytic multi-period plan over the
// default 24-bin diurnal day: per-peak segment searches, the bin-grid
// scoring batch, and the segmentation dynamic program. Same no-
// ReportAllocs policy as BenchmarkPlan.
func BenchmarkPlanPeriods(b *testing.B) {
	s := scenario.CaseStudy(4, 4, "consolidated", 0)
	s.Periods = &scenario.Periods{}
	ev := eval.NewAnalytic(nil)
	spec := plan.Spec{Scenario: s, Target: 0.05, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.SearchPeriods(context.Background(), ev, nil, spec, 12); err != nil {
			b.Fatal(err)
		}
	}
}
