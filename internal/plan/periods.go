package plan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/eval"
	"repro/internal/pool"
	"repro/internal/scenario"
)

// BinPlan is one time bin of a multi-period plan: the placement its
// segment runs, and the bin's evaluation under that placement.
type BinPlan struct {
	// Name and Seconds echo the bin from the scenario's periods spec.
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`

	// Segment indexes the contiguous run of bins sharing this placement
	// (0-based, in time order); bins with equal Segment never migrate
	// between each other.
	Segment int `json:"segment"`

	// Hosts, Classes and Dedicated describe the segment's placement in
	// the same shape Plan uses.
	Hosts     int          `json:"hosts"`
	Classes   []ClassCount `json:"classes,omitempty"`
	Dedicated []PoolSize   `json:"dedicated,omitempty"`

	// Result is the bin's stationary sub-scenario evaluated under the
	// segment's placement (not at the segment's sizing peak).
	Result eval.Result `json:"result"`

	// EnergyWh is the bin's energy at that draw: Watts × Seconds / 3600.
	EnergyWh float64 `json:"energy_wh"`
}

// Migration is one reconfiguration boundary in a multi-period plan.
type Migration struct {
	// From and To name the bins on either side of the boundary.
	From string `json:"from"`
	To   string `json:"to"`

	// Moves counts VM migrations the reconfiguration implies: the
	// dedicated pool-size deltas, or the host-count delta times the
	// co-located service count for consolidated fleets.
	Moves int `json:"moves"`

	// CostWh is Moves × the plan's per-migration cost.
	CostWh float64 `json:"cost_wh"`
}

// PeriodPlan is a full multi-period placement: per-bin plans, the
// migration schedule between them, and the day's energy accounting.
type PeriodPlan struct {
	Objective string  `json:"objective"`
	Target    float64 `json:"target"`
	Mode      string  `json:"mode"`

	// MigrationCostWh is the per-VM-move charge the smoothing pass ran
	// with. +Inf (a static plan was forced) cannot be JSON-encoded;
	// callers that encode must pass a finite cost.
	MigrationCostWh float64 `json:"migration_cost_wh"`

	// Bins holds one entry per period bin, in time order.
	Bins []BinPlan `json:"bins"`

	// Migrations lists the boundaries whose placements actually differ
	// (zero-move boundaries between segments are omitted).
	Migrations []Migration `json:"migrations,omitempty"`

	// EnergyWh sums the bins' energies; MigrationWh sums the migration
	// charges; TotalWh (and TotalKWh) is their sum — the objective the
	// smoothing pass minimized.
	EnergyWh    float64 `json:"energy_wh"`
	MigrationWh float64 `json:"migration_wh"`
	TotalWh     float64 `json:"total_wh"`
	TotalKWh    float64 `json:"total_kwh"`

	// Evaluations counts candidate evaluations across every segment
	// search and bin scoring; Seed echoes the search seed.
	Evaluations int   `json:"evaluations"`
	Seed        int64 `json:"seed"`
}

// EncodeJSON renders the period plan as stable, newline-terminated
// indented JSON, the byte-diffable form CI goldens pin.
func (p PeriodPlan) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("plan: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// SearchPeriods plans a periods scenario bin by bin and then smooths the
// bin plans against a per-migration charge.
//
// Every contiguous bin segment is sized once by Search at the segment's
// peak demand (the element-wise maximum of its bins' rate multipliers),
// deduplicated by peak vector, and each bin is scored under its
// segment's placement. A dynamic program over contiguous segmentations
// then picks the partition minimizing total energy plus migrationCostWh
// per VM move at each segment boundary — exact over partitions, so a
// zero cost degenerates to independent per-bin plans and an infinite
// cost collapses to the static peak placement. Ties on cost prefer more
// segments (the finest equivalent schedule). The planning day is linear:
// the wrap-around boundary back to the first bin is not charged.
//
// Like Search, every decision is sequential over deterministic inputs,
// so the same inputs yield a byte-identical PeriodPlan for any pool
// worker count.
func SearchPeriods(ctx context.Context, ev eval.Evaluator, p *pool.Pool, spec Spec, migrationCostWh float64) (PeriodPlan, error) {
	spec, err := spec.normalized()
	if err != nil {
		return PeriodPlan{}, err
	}
	if math.IsNaN(migrationCostWh) || migrationCostWh < 0 {
		return PeriodPlan{}, fmt.Errorf("plan: migration cost %g Wh per move (want >= 0; +Inf forces a static plan)", migrationCostWh)
	}
	resolved := spec.Scenario.Clone()
	resolved.ApplyDefaults()
	if err := resolved.Validate(); err != nil {
		return PeriodPlan{}, err
	}
	bins, err := resolved.ResolvePeriods()
	if err != nil {
		return PeriodPlan{}, err
	}
	if spec.Seed == 0 {
		spec.Seed = int64(resolved.Seed)
	}
	n := len(bins)
	services := len(resolved.Services)

	// Enumerate every contiguous segment's peak-demand vector,
	// deduplicated: the day shape revisits levels, so far fewer than
	// n(n+1)/2 distinct peaks need a search.
	type peakEntry struct {
		mults    []float64
		label    string
		feasible bool
		plan     Plan
		binRes   []eval.Result
		binOK    []bool
	}
	peakIdx := make(map[string]int)
	var peaks []*peakEntry
	segPeak := make([][]int, n) // segPeak[i][j-i] = peak index of segment [i..j]
	for i := 0; i < n; i++ {
		cur := append([]float64(nil), bins[i].Multipliers...)
		segPeak[i] = make([]int, n-i)
		for j := i; j < n; j++ {
			if j > i {
				for t, v := range bins[j].Multipliers {
					if v > cur[t] {
						cur[t] = v
					}
				}
			}
			key := multKey(cur)
			idx, ok := peakIdx[key]
			if !ok {
				idx = len(peaks)
				peakIdx[key] = idx
				peaks = append(peaks, &peakEntry{
					mults: append([]float64(nil), cur...),
					label: fmt.Sprintf("peak%02d", idx),
				})
			}
			segPeak[i][j-i] = idx
		}
	}

	// Size each distinct peak with the single-point planner. A peak the
	// supply cannot serve makes its segments invalid, not the whole
	// plan: with per-service peaks in different bins, splitting can be
	// feasible where the static peak is not.
	evaluations := 0
	for _, pe := range peaks {
		stat, err := resolved.Stationary(pe.label, pe.mults)
		if err != nil {
			return PeriodPlan{}, err
		}
		segSpec := spec
		segSpec.Scenario = stat
		pl, err := Search(ctx, ev, p, segSpec)
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			return PeriodPlan{}, err
		}
		pe.feasible = true
		pe.plan = pl
		evaluations += pl.Evaluations
	}

	// Score each bin under every placement some segment would run it on
	// — one batch, deterministic peak-major bin-minor order, so the sim
	// evaluator lowers the whole grid onto a single engine run.
	type pairKey struct{ peak, bin int }
	needed := make(map[pairKey]bool)
	for i := range segPeak {
		for dj, idx := range segPeak[i] {
			if !peaks[idx].feasible {
				continue
			}
			for b := i; b <= i+dj; b++ {
				needed[pairKey{idx, b}] = true
			}
		}
	}
	var order []pairKey
	var cands []scenario.Scenario
	for pi, pe := range peaks {
		if !pe.feasible {
			continue
		}
		pe.binRes = make([]eval.Result, n)
		pe.binOK = make([]bool, n)
		for b := 0; b < n; b++ {
			if !needed[pairKey{pi, b}] {
				continue
			}
			order = append(order, pairKey{pi, b})
			cands = append(cands, pe.plan.Apply(bins[b].Scenario))
		}
	}
	results, err := eval.EvaluateBatch(ctx, ev, cands)
	if err != nil {
		return PeriodPlan{}, err
	}
	evaluations += len(cands)
	for t, pk := range order {
		pe := peaks[pk.peak]
		pe.binRes[pk.bin] = results[t]
		pe.binOK[pk.bin] = !math.IsNaN(results[t].Loss) && results[t].Loss <= spec.Target
	}

	// Segment validity: a segment stands only if its peak sizing
	// succeeded and every bin stays under the target when run on that
	// placement. (Energies are not pre-summed per segment: the dynamic
	// program accumulates them bin by bin in time order, so partitions
	// whose per-bin placements coincide get bitwise-equal costs and the
	// tie-break below can see the tie.)
	segOK := make([][]bool, n)
	for i := 0; i < n; i++ {
		segOK[i] = make([]bool, n-i)
		pePrev, ok := -1, true
		for j := i; j < n; j++ {
			idx := segPeak[i][j-i]
			pe := peaks[idx]
			if idx != pePrev {
				// The peak grew: re-check earlier bins under the new
				// placement.
				pePrev = idx
				ok = pe.feasible
				for b := i; ok && b < j; b++ {
					ok = pe.binOK[b]
				}
			}
			ok = ok && pe.binOK[j]
			segOK[i][j-i] = ok
		}
	}
	binEnergy := func(peak, b int) float64 {
		return peaks[peak].binRes[b].Watts * bins[b].Seconds / 3600
	}

	// Dynamic program over contiguous segmentations. dp[k][j] is the
	// best partition of bins [0..j-1] whose last segment is [k..j-1];
	// transitions charge the boundary between the previous segment's
	// placement and this one's. Ties on cost keep more segments, then
	// the earliest previous start — all deterministic.
	type cell struct {
		cost float64
		segs int
		prev int
		ok   bool
	}
	better := func(a, b cell) bool {
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		return a.segs > b.segs
	}
	charge := func(a, b Plan) (int, float64) {
		mv := planMoves(a, b, services)
		if mv == 0 {
			return 0, 0
		}
		return mv, float64(mv) * migrationCostWh
	}
	dp := make([][]cell, n)
	for k := range dp {
		dp[k] = make([]cell, n+1)
	}
	for j := 1; j <= n; j++ {
		for k := 0; k < j; k++ {
			if !segOK[k][j-1-k] {
				continue
			}
			idx := segPeak[k][j-1-k]
			if k == 0 {
				cost := 0.0
				for b := 0; b < j; b++ {
					cost += binEnergy(idx, b)
				}
				dp[0][j] = cell{cost: cost, segs: 1, prev: -1, ok: true}
				continue
			}
			var best cell
			for m := 0; m < k; m++ {
				pc := dp[m][k]
				if !pc.ok {
					continue
				}
				_, ch := charge(peaks[segPeak[m][k-1-m]].plan, peaks[idx].plan)
				cost := pc.cost + ch
				for b := k; b < j; b++ {
					cost += binEnergy(idx, b)
				}
				c := cell{cost: cost, segs: pc.segs + 1, prev: m, ok: true}
				if !best.ok || better(c, best) {
					best = c
				}
			}
			dp[k][j] = best
		}
	}
	bestK := -1
	for k := 0; k < n; k++ {
		if !dp[k][n].ok {
			continue
		}
		if bestK < 0 || better(dp[k][n], dp[bestK][n]) {
			bestK = k
		}
	}
	if bestK < 0 {
		return PeriodPlan{}, fmt.Errorf("%w: some period bin exceeds the supply at every segmentation", ErrInfeasible)
	}
	var starts []int
	for k, j := bestK, n; ; {
		starts = append(starts, k)
		prev := dp[k][j].prev
		if prev < 0 {
			break
		}
		k, j = prev, k
	}
	for l, r := 0, len(starts)-1; l < r; l, r = l+1, r-1 {
		starts[l], starts[r] = starts[r], starts[l]
	}

	out := PeriodPlan{
		Objective:       spec.Objective,
		Target:          spec.Target,
		Mode:            resolved.Mode,
		MigrationCostWh: migrationCostWh,
		Evaluations:     evaluations,
		Seed:            spec.Seed,
	}
	for si, start := range starts {
		end := n - 1
		if si+1 < len(starts) {
			end = starts[si+1] - 1
		}
		pe := peaks[segPeak[start][end-start]]
		for b := start; b <= end; b++ {
			e := pe.binRes[b].Watts * bins[b].Seconds / 3600
			out.Bins = append(out.Bins, BinPlan{
				Name:      bins[b].Name,
				Seconds:   bins[b].Seconds,
				Segment:   si,
				Hosts:     pe.plan.Hosts,
				Classes:   pe.plan.Classes,
				Dedicated: pe.plan.Dedicated,
				Result:    pe.binRes[b],
				EnergyWh:  e,
			})
			out.EnergyWh += e
		}
		if si > 0 {
			prev := peaks[segPeak[starts[si-1]][start-1-starts[si-1]]]
			if mv, ch := charge(prev.plan, pe.plan); mv > 0 {
				out.Migrations = append(out.Migrations, Migration{
					From:   bins[start-1].Name,
					To:     bins[start].Name,
					Moves:  mv,
					CostWh: ch,
				})
				out.MigrationWh += ch
			}
		}
	}
	out.TotalWh = out.EnergyWh + out.MigrationWh
	out.TotalKWh = out.TotalWh / 1000
	return out, nil
}

// planMoves counts the VM migrations turning placement a into placement
// b: dedicated pools move one VM per server resized; consolidated
// fleets move every co-located service VM of every added or removed
// host. Plans from the same spec share a mode, so exactly one shape
// matches.
func planMoves(a, b Plan, services int) int {
	moves := 0
	switch {
	case len(a.Dedicated) > 0 || len(b.Dedicated) > 0:
		for i := 0; i < len(a.Dedicated) && i < len(b.Dedicated); i++ {
			moves += intAbs(a.Dedicated[i].Servers - b.Dedicated[i].Servers)
		}
	case len(a.Classes) > 0 || len(b.Classes) > 0:
		for i := 0; i < len(a.Classes) && i < len(b.Classes); i++ {
			moves += intAbs(a.Classes[i].Count - b.Classes[i].Count)
		}
		moves *= services
	default:
		moves = intAbs(a.Hosts-b.Hosts) * services
	}
	return moves
}

func intAbs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// multKey canonicalizes a multiplier vector for deduplication.
func multKey(m []float64) string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}
