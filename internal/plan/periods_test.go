package plan_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/scenario"
)

// periodsFixture is a homogeneous consolidated day with enough level
// changes to exercise segmentation: the case-study mix under a
// four-bin shape with a repeated trough level.
func periodsFixture() scenario.Scenario {
	return scenario.Scenario{
		Name: "plan-periods",
		Mode: "consolidated",
		Services: []scenario.Service{
			scenario.WebSpec(3976, 0),
			scenario.DBSpec(280, 0),
		},
		Fleet: scenario.Fleet{Hosts: 4},
		Periods: &scenario.Periods{
			BinSec: 6 * 3600,
			Bins: []scenario.PeriodBin{
				{Name: "night", Multiplier: 0.3},
				{Name: "morning", Multiplier: 1.0},
				{Name: "evening", Multiplier: 1.5},
				{Name: "late", Multiplier: 0.3},
			},
		},
	}
}

func mustPlanPeriods(t *testing.T, s scenario.Scenario, costWh float64) plan.PeriodPlan {
	t.Helper()
	pp, err := plan.SearchPeriods(context.Background(), eval.NewAnalytic(nil), nil,
		plan.Spec{Scenario: s, Target: target, Seed: 7}, costWh)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

// The single-point planner refuses a periods scenario whole, and the
// multi-period planner refuses scenarios without periods and bad costs.
func TestSearchPeriodsDomain(t *testing.T) {
	s := periodsFixture()
	if _, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil,
		plan.Spec{Scenario: s, Target: target}); !errors.Is(err, eval.ErrUnsupported) {
		t.Errorf("Search on periods scenario: err = %v, want ErrUnsupported", err)
	}
	plain := s.Clone()
	plain.Periods = nil
	if _, err := plan.SearchPeriods(context.Background(), eval.NewAnalytic(nil), nil,
		plan.Spec{Scenario: plain, Target: target}, 0); !errors.Is(err, scenario.ErrInvalid) {
		t.Errorf("SearchPeriods without periods: err = %v, want ErrInvalid", err)
	}
	for _, cost := range []float64{math.NaN(), -1} {
		if _, err := plan.SearchPeriods(context.Background(), eval.NewAnalytic(nil), nil,
			plan.Spec{Scenario: s, Target: target}, cost); err == nil {
			t.Errorf("migration cost %g accepted", cost)
		}
	}
}

// The accounting invariants every period plan must satisfy: bins in
// period order with contiguous segment numbering, every bin under
// target, energies summing, and the migration schedule matching the
// placement deltas.
func TestSearchPeriodsAccounting(t *testing.T) {
	pp := mustPlanPeriods(t, periodsFixture(), 10)
	if pp.Mode != "consolidated" || pp.Objective != plan.MinServers || pp.Seed != 7 {
		t.Fatalf("header: %+v", pp)
	}
	if len(pp.Bins) != 4 {
		t.Fatalf("bins = %d", len(pp.Bins))
	}
	energy, seg := 0.0, 0
	for i, b := range pp.Bins {
		if b.Seconds != 6*3600 {
			t.Errorf("bin %d seconds %g", i, b.Seconds)
		}
		if b.Segment < seg || b.Segment > seg+1 {
			t.Errorf("bin %d segment %d after %d (must be contiguous)", i, b.Segment, seg)
		}
		seg = b.Segment
		if b.Result.Loss > target {
			t.Errorf("bin %s loss %g above target", b.Name, b.Result.Loss)
		}
		if want := b.Result.Watts * b.Seconds / 3600; math.Abs(b.EnergyWh-want) > 1e-9 {
			t.Errorf("bin %s energy %g, want %g", b.Name, b.EnergyWh, want)
		}
		energy += b.EnergyWh
	}
	if math.Abs(energy-pp.EnergyWh) > 1e-9 {
		t.Errorf("EnergyWh %g, bins sum to %g", pp.EnergyWh, energy)
	}
	migration := 0.0
	for _, m := range pp.Migrations {
		if m.Moves <= 0 {
			t.Errorf("migration %s→%s with %d moves", m.From, m.To, m.Moves)
		}
		if want := float64(m.Moves) * pp.MigrationCostWh; m.CostWh != want {
			t.Errorf("migration %s→%s cost %g, want %g", m.From, m.To, m.CostWh, want)
		}
		migration += m.CostWh
	}
	if math.Abs(migration-pp.MigrationWh) > 1e-9 ||
		math.Abs(pp.TotalWh-(pp.EnergyWh+pp.MigrationWh)) > 1e-9 ||
		math.Abs(pp.TotalKWh-pp.TotalWh/1000) > 1e-12 {
		t.Errorf("totals: %+v", pp)
	}
	// Moderate cost on this shape: the two 0.3 bins share the trough
	// sizing and the peaks stand alone, so hosts must actually vary.
	if pp.Bins[0].Hosts == pp.Bins[2].Hosts {
		t.Errorf("trough and peak sized identically (%d hosts): smoothing collapsed too far", pp.Bins[0].Hosts)
	}
}

// Zero migration cost degenerates to independent per-bin planning: each
// bin is its own segment and carries exactly the plan Search finds for
// its stationary sub-scenario.
func TestSearchPeriodsZeroCostIsPerBin(t *testing.T) {
	s := periodsFixture()
	pp := mustPlanPeriods(t, s, 0)
	bins, err := s.ResolvePeriods()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range pp.Bins {
		if b.Segment != i {
			t.Errorf("bin %d in segment %d: zero cost must keep every bin its own segment", i, b.Segment)
		}
		want, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil,
			plan.Spec{Scenario: bins[i].Scenario, Target: target, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if b.Hosts != want.Hosts {
			t.Errorf("bin %s: %d hosts, per-bin Search finds %d", b.Name, b.Hosts, want.Hosts)
		}
	}
}

// Infinite migration cost collapses to the static peak: every bin runs
// the placement Search finds at the element-wise peak demand, and no
// migrations are scheduled.
func TestSearchPeriodsInfiniteCostIsStaticPeak(t *testing.T) {
	s := periodsFixture()
	pp := mustPlanPeriods(t, s, math.Inf(1))
	if len(pp.Migrations) != 0 || pp.MigrationWh != 0 {
		t.Fatalf("infinite cost scheduled migrations: %+v", pp.Migrations)
	}
	peak, err := s.Stationary("peak", []float64{1.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil,
		plan.Spec{Scenario: peak, Target: target, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range pp.Bins {
		if b.Hosts != want.Hosts {
			t.Errorf("bin %s: %d hosts, static peak is %d", b.Name, b.Hosts, want.Hosts)
		}
	}
	// And the finite-cost plan's day must cost no more than the static
	// one: smoothing only trades migrations for energy when it wins.
	finite := mustPlanPeriods(t, s, 10)
	if finite.TotalWh > pp.TotalWh+1e-9 {
		t.Errorf("finite-cost total %g Wh exceeds static %g Wh", finite.TotalWh, pp.TotalWh)
	}
}

// Same spec, any pool size: byte-identical period-plan JSON, including
// on the shipped periods example.
func TestSearchPeriodsDeterminismAcrossPoolSizes(t *testing.T) {
	example, ok := loadExamples(t)["periods-day.json"]
	if !ok {
		t.Fatal("missing example periods-day.json")
	}
	for name, s := range map[string]scenario.Scenario{
		"fixture":          periodsFixture(),
		"periods-day.json": example,
	} {
		var first []byte
		for _, workers := range []int{1, 2, 8} {
			pl, err := pool.New(workers)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := plan.SearchPeriods(context.Background(), eval.NewAnalytic(nil), pl,
				plan.Spec{Scenario: s, Target: target, Seed: 7}, 12)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pp.EncodeJSON()
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = got
			} else if !bytes.Equal(first, got) {
				t.Errorf("%s: period plan JSON differs between pool sizes (workers=%d)", name, workers)
			}
		}
	}
}

// The sim evaluator plugs into the same multi-period search: bins lower
// onto one sweep batch and the result is deterministic.
func TestSearchPeriodsWithSimEvaluator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed planning")
	}
	s := scenario.CaseStudy(2, 2, "consolidated", 2)
	s.Horizon = 20
	s.Periods = &scenario.Periods{
		BinSec: 12 * 3600,
		Bins: []scenario.PeriodBin{
			{Name: "off", Multiplier: 0.4},
			{Name: "on", Multiplier: 1.0},
		},
	}
	ev := eval.NewSim(nil)
	pp, err := plan.SearchPeriods(context.Background(), ev, nil,
		plan.Spec{Scenario: s, Target: 0.2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Bins) != 2 || pp.Bins[0].Result.Source != "sim" {
		t.Fatalf("bins: %+v", pp.Bins)
	}
	again, err := plan.SearchPeriods(context.Background(), ev, nil,
		plan.Spec{Scenario: s, Target: 0.2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pp.EncodeJSON()
	b, _ := again.EncodeJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("sim-backed period plan not deterministic")
	}
}
