// Package plan searches server placements on top of the unified
// evaluation layer (internal/eval): given a workload scenario, a loss
// target B and an objective, it returns the cheapest fleet — fewest
// servers or fewest watts — whose worst per-service loss probability
// still meets B.
//
// The search is exact where the model is exact and heuristic where it is
// not. Homogeneous consolidated fleets and dedicated pools have monotone
// loss in the server count, so a doubling probe plus binary search finds
// the minimal count — the same N and M the paper's Fig. 4 sizing yields.
// Heterogeneous consolidated fleets walk a first-fit-decreasing seed
// through local-search moves (remove one host, swap a host across
// classes) with a seeded annealing kick out of stalls; candidate batches
// evaluate in parallel through the shared internal/pool budget.
//
// Every decision — seed order, move order, batch reduction, annealing
// draws — is made sequentially from deterministic inputs, so the same
// Spec yields a byte-identical Plan regardless of pool worker count.
package plan

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/scenario"
)

// Objectives accepted by Spec.Objective.
const (
	// MinServers minimizes the physical host count, breaking ties on
	// watts.
	MinServers = "min-servers"
	// MinPower minimizes steady-state fleet watts, breaking ties on the
	// host count.
	MinPower = "min-power"
)

// ErrInfeasible reports that no placement within the scenario's supply
// (or the search's server cap) meets the loss target.
var ErrInfeasible = errors.New("plan: no feasible placement meets the loss target")

// maxPoolServers caps the doubling probe for homogeneous and dedicated
// sizing, bounding pathological inputs (target → 0 at huge ρ).
const maxPoolServers = 1 << 16

// defaultMaxIters bounds the heterogeneous local-search rounds when the
// Spec does not say otherwise.
const defaultMaxIters = 200

// Spec is one planning request.
type Spec struct {
	// Scenario carries the workload and, for heterogeneous consolidated
	// fleets, the host-class supply (each class's Count is the maximum
	// the planner may place). Homogeneous consolidated and dedicated
	// scenarios are sized without a supply bound.
	Scenario scenario.Scenario `json:"scenario"`

	// Target is the loss-probability target B in (0, 1): a placement is
	// feasible when every service's loss stays at or below it.
	Target float64 `json:"target"`

	// Objective selects MinServers (default) or MinPower.
	Objective string `json:"objective,omitempty"`

	// Seed drives the annealing kick; zero adopts the scenario's seed.
	Seed int64 `json:"seed,omitempty"`

	// MaxIters bounds local-search rounds (default 200).
	MaxIters int `json:"max_iters,omitempty"`
}

// normalized applies Spec defaults and rejects out-of-domain fields with
// the repository's explicit-error convention.
func (s Spec) normalized() (Spec, error) {
	if s.Objective == "" {
		s.Objective = MinServers
	}
	if s.Objective != MinServers && s.Objective != MinPower {
		return Spec{}, fmt.Errorf("plan: objective %q (want %q or %q)", s.Objective, MinServers, MinPower)
	}
	if math.IsNaN(s.Target) || s.Target <= 0 || s.Target >= 1 {
		return Spec{}, fmt.Errorf("plan: target %g outside (0, 1)", s.Target)
	}
	if s.MaxIters < 0 {
		return Spec{}, fmt.Errorf("plan: max_iters=%d (negative; 0 selects the default %d)", s.MaxIters, defaultMaxIters)
	}
	if s.MaxIters == 0 {
		s.MaxIters = defaultMaxIters
	}
	return s, nil
}

// ClassCount is one host class's placed count in a heterogeneous plan,
// in scenario class order (zero counts are kept so the assignment shape
// is stable).
type ClassCount struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// PoolSize is one service's dedicated pool in a dedicated-mode plan.
type PoolSize struct {
	Name    string `json:"name"`
	Servers int    `json:"servers"`
}

// Plan is a feasible placement and its score.
type Plan struct {
	Objective string  `json:"objective"`
	Target    float64 `json:"target"`
	Mode      string  `json:"mode"`

	// Hosts is the total physical machine count of the placement.
	Hosts int `json:"hosts"`

	// Classes carries per-class counts for heterogeneous consolidated
	// plans; empty for homogeneous fleets.
	Classes []ClassCount `json:"classes,omitempty"`

	// Dedicated carries per-service pool sizes for dedicated-mode plans.
	Dedicated []PoolSize `json:"dedicated,omitempty"`

	// Result is the chosen placement's evaluation.
	Result eval.Result `json:"result"`

	// Evaluations counts candidate evaluations the search spent.
	Evaluations int `json:"evaluations"`

	// Seed echoes the annealing seed the search ran with.
	Seed int64 `json:"seed"`
}

// EncodeJSON renders the plan as stable, newline-terminated indented
// JSON — the byte-diffable form cmd/consolidate prints and CI goldens
// pin.
func (p Plan) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("plan: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Apply stamps the plan's placement onto a scenario: the homogeneous
// host count, the per-class counts (zero-count classes dropped, exactly
// as the searcher's own candidates drop them), or the per-service
// dedicated pool sizes. The scenario must share the plan's mode and
// shape — same class supply or service list, in order. Apply is how a
// plan chosen at one operating point is re-evaluated at another: the
// multi-period planner scores each time bin under its segment's plan,
// and the ablation experiments replay a placement against simulation.
func (p Plan) Apply(s scenario.Scenario) scenario.Scenario {
	c := s.Clone()
	switch {
	case len(p.Dedicated) > 0:
		for i := range c.Services {
			if i < len(p.Dedicated) {
				c.Services[i].DedicatedServers = p.Dedicated[i].Servers
			}
		}
	case len(p.Classes) > 0:
		classes := c.Fleet.Classes
		c.Fleet = scenario.Fleet{}
		for k := range classes {
			if k >= len(p.Classes) || p.Classes[k].Count == 0 {
				continue
			}
			hc := classes[k]
			hc.Count = p.Classes[k].Count
			c.Fleet.Classes = append(c.Fleet.Classes, hc)
		}
	default:
		c.Fleet = scenario.Fleet{Hosts: p.Hosts}
	}
	return c
}

// className names a host class for reporting: the explicit name, else
// the preset.
func className(hc scenario.HostClass) string {
	if hc.Name != "" {
		return hc.Name
	}
	return hc.Preset
}
