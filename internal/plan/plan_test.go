package plan_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/erlang"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/pool"
	"repro/internal/scenario"
)

const target = 0.05

func loadExamples(t *testing.T) map[string]scenario.Scenario {
	t.Helper()
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]scenario.Scenario{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := scenario.ParseBytes(data)
		if err != nil {
			// Sweep grids (base + axes) live beside plain scenarios.
			t.Logf("skipping %s: %v", e.Name(), err)
			continue
		}
		out[e.Name()] = s
	}
	if len(out) == 0 {
		t.Fatal("no example scenarios found")
	}
	return out
}

func mustPlan(t *testing.T, s scenario.Scenario) plan.Plan {
	t.Helper()
	p, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil, plan.Spec{Scenario: s, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Over every analytically-tractable homogeneous consolidated example, the
// planner's host count must equal the paper's Eq. (5) sizing N: the
// smallest n with every resource's Erlang B of the merged traffic at or
// below the target.
func TestPlanHomogeneousMatchesAnalyticN(t *testing.T) {
	covered := 0
	for name, s := range loadExamples(t) {
		resolved := s.Clone()
		resolved.ApplyDefaults()
		if resolved.Mode != "consolidated" || len(resolved.Fleet.Classes) > 0 {
			continue
		}
		m, err := eval.ModelFromScenario(resolved, target)
		if errors.Is(err, eval.ErrUnsupported) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := 0
		for _, j := range m.Resources {
			n, err := erlang.Servers(m.ConsolidatedTraffic(j, m.Form), target, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if n > want {
				want = n
			}
		}
		p := mustPlan(t, s)
		if p.Hosts != want {
			t.Errorf("%s: planned %d hosts, analytic N = %d", name, p.Hosts, want)
		}
		if p.Result.Loss > target {
			t.Errorf("%s: plan loss %g above target", name, p.Result.Loss)
		}
		covered++
	}
	if covered == 0 {
		t.Fatal("no homogeneous consolidated examples covered")
	}
}

// Dedicated-mode plans size each pool to the paper's per-service Mᵢ.
func TestPlanDedicatedMatchesAnalyticM(t *testing.T) {
	covered := 0
	for name, s := range loadExamples(t) {
		resolved := s.Clone()
		resolved.ApplyDefaults()
		if resolved.Mode != "dedicated" {
			continue
		}
		m, err := eval.ModelFromScenario(resolved, target)
		if errors.Is(err, eval.ErrUnsupported) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := mustPlan(t, s)
		if len(p.Dedicated) != len(m.Services) {
			t.Fatalf("%s: %d pools for %d services", name, len(p.Dedicated), len(m.Services))
		}
		totalWant := 0
		for i, svc := range m.Services {
			want := 0
			for _, mu := range svc.ServingRates {
				if math.IsInf(mu, 1) {
					continue
				}
				n, err := erlang.Servers(svc.ArrivalRate/mu, target, 0)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if n > want {
					want = n
				}
			}
			if p.Dedicated[i].Servers != want {
				t.Errorf("%s: service %d pool %d, analytic M = %d", name, i, p.Dedicated[i].Servers, want)
			}
			totalWant += want
		}
		if p.Hosts != totalWant {
			t.Errorf("%s: hosts %d, want %d", name, p.Hosts, totalWant)
		}
		covered++
	}
	if covered == 0 {
		t.Fatal("no dedicated examples covered")
	}
}

// The heterogeneous search returns a feasible assignment within supply,
// and a min-power plan never draws more watts than the min-servers plan
// for the same scenario.
func TestPlanHeteroFeasible(t *testing.T) {
	s := loadExamples(t)["plan-hetero.json"]
	minServers := mustPlan(t, s)
	if minServers.Result.Loss > target {
		t.Fatalf("loss %g above target", minServers.Result.Loss)
	}
	if len(minServers.Classes) != 3 {
		t.Fatalf("classes = %d, want 3 (stable assignment shape)", len(minServers.Classes))
	}
	supply := map[string]int{"amd": 4, "intel": 4, "fast-disk": 2}
	total := 0
	for _, cc := range minServers.Classes {
		if cc.Count < 0 || cc.Count > supply[cc.Name] {
			t.Errorf("class %s count %d outside supply %d", cc.Name, cc.Count, supply[cc.Name])
		}
		total += cc.Count
	}
	if total != minServers.Hosts || total == 0 {
		t.Fatalf("hosts %d vs class total %d", minServers.Hosts, total)
	}

	p, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil,
		plan.Spec{Scenario: s, Target: target, Objective: plan.MinPower})
	if err != nil {
		t.Fatal(err)
	}
	if p.Result.Loss > target {
		t.Fatalf("min-power loss %g above target", p.Result.Loss)
	}
	if p.Result.Watts > minServers.Result.Watts+1e-9 {
		t.Errorf("min-power watts %g exceed min-servers watts %g", p.Result.Watts, minServers.Result.Watts)
	}
}

// A heterogeneous fleet meeting the loss target must not beat the
// analytic homogeneous bound on hosts when its best class is no better
// than the reference server (capability <= 1 means each machine serves
// at most a reference server's share).
func TestPlanHeteroAtLeastContinuousBound(t *testing.T) {
	s := loadExamples(t)["plan-hetero.json"]
	p := mustPlan(t, s)
	m, err := eval.ModelFromScenario(s, target)
	if err != nil {
		t.Fatal(err)
	}
	bound := 0.0
	for _, j := range m.Resources {
		n, err := erlang.ServersContinuous(m.ConsolidatedTraffic(j, m.Form), target, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n > bound {
			bound = n
		}
	}
	if units := p.Result.CapabilityUnits; units < bound-1e-6 {
		t.Errorf("plan capability units %g below continuous-B requirement %g", units, bound)
	}
}

// Same seed, any pool size: byte-identical plan JSON.
func TestPlanDeterminismAcrossPoolSizes(t *testing.T) {
	examples := loadExamples(t)
	for _, name := range []string{"plan-hetero.json", "casestudy.json", "sharded-fleet.json"} {
		s, ok := examples[name]
		if !ok {
			t.Fatalf("missing example %s", name)
		}
		var first []byte
		for _, workers := range []int{1, 2, 8} {
			pl, err := pool.New(workers)
			if err != nil {
				t.Fatal(err)
			}
			p, err := plan.Search(context.Background(), eval.NewAnalytic(nil), pl,
				plan.Spec{Scenario: s, Target: target, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.EncodeJSON()
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = got
			} else if !bytes.Equal(first, got) {
				t.Errorf("%s: plan JSON differs between pool sizes (workers=%d)", name, workers)
			}
		}
	}
}

// An undersized class supply is an explicit ErrInfeasible, not a silent
// best-effort plan.
func TestPlanInfeasibleSupply(t *testing.T) {
	s := scenario.Scenario{
		Mode:     "consolidated",
		Services: []scenario.Service{scenario.WebSpec(20000, 1)},
		Fleet: scenario.Fleet{Classes: []scenario.HostClass{
			{Preset: "blade", Count: 1},
		}},
	}
	_, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil, plan.Spec{Scenario: s, Target: target})
	if !errors.Is(err, plan.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSpecValidation(t *testing.T) {
	base := loadExamples(t)["casestudy.json"]
	cases := []plan.Spec{
		{Scenario: base, Target: 0},
		{Scenario: base, Target: 1},
		{Scenario: base, Target: math.NaN()},
		{Scenario: base, Target: 0.05, Objective: "max-profit"},
		{Scenario: base, Target: 0.05, MaxIters: -1},
	}
	for i, spec := range cases {
		if _, err := plan.Search(context.Background(), eval.NewAnalytic(nil), nil, spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

// The sim evaluator plugs into the same search: plan a small fleet by
// simulation and require a feasible, deterministic result.
func TestPlanWithSimEvaluator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed planning")
	}
	s := scenario.CaseStudy(2, 2, "consolidated", 2)
	s.Horizon = 20
	ev := eval.NewSim(nil)
	p, err := plan.Search(context.Background(), ev, nil, plan.Spec{Scenario: s, Target: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts <= 0 || p.Result.Source != "sim" {
		t.Fatalf("hosts=%d source=%s", p.Hosts, p.Result.Source)
	}
	if p.Result.Loss > 0.2 {
		t.Fatalf("loss %g above target", p.Result.Loss)
	}
	again, err := plan.Search(context.Background(), ev, nil, plan.Spec{Scenario: s, Target: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.EncodeJSON()
	b, _ := again.EncodeJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("sim-backed plan not deterministic")
	}
}
