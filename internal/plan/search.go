package plan

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/eval"
	"repro/internal/pool"
	"repro/internal/power"
	"repro/internal/scenario"
)

// Search finds the cheapest placement of spec.Scenario's workload that
// meets the loss target, scoring candidates with ev. Candidate batches
// run in parallel; p bounds that fan-out unless ev already budgets
// itself against a shared pool (eval.SelfBudgeted), in which case
// wrapping would risk a slot-holder waiting on a slot.
func Search(ctx context.Context, ev eval.Evaluator, p *pool.Pool, spec Spec) (Plan, error) {
	spec, err := spec.normalized()
	if err != nil {
		return Plan{}, err
	}
	resolved := spec.Scenario.Clone()
	resolved.ApplyDefaults()
	if err := resolved.Validate(); err != nil {
		return Plan{}, err
	}
	if resolved.Periods != nil {
		return Plan{}, fmt.Errorf("%w: a periods scenario is time-varying; plan it bin by bin (SearchPeriods)", eval.ErrUnsupported)
	}
	if spec.Seed == 0 {
		spec.Seed = int64(resolved.Seed)
	}
	s := &searcher{ctx: ctx, ev: ev, pool: p, spec: spec, resolved: resolved}
	if sb, ok := ev.(eval.SelfBudgeted); ok && sb.SelfBudgeted() {
		s.selfBudgeted = true
	}

	var plan Plan
	switch {
	case resolved.Mode == "dedicated":
		plan, err = s.searchDedicated()
	case len(resolved.Fleet.Classes) == 0:
		plan, err = s.searchHomogeneous()
	default:
		plan, err = s.searchHetero()
	}
	if err != nil {
		return Plan{}, err
	}
	plan.Objective = spec.Objective
	plan.Target = spec.Target
	plan.Mode = resolved.Mode
	plan.Evaluations = s.evaluations
	plan.Seed = spec.Seed
	return plan, nil
}

type searcher struct {
	ctx          context.Context
	ev           eval.Evaluator
	pool         *pool.Pool
	spec         Spec
	resolved     scenario.Scenario
	selfBudgeted bool
	evaluations  int
}

// batch evaluates candidates concurrently, index-addressed, and reduces
// sequentially: results (and the first error, by index) are independent
// of worker count and scheduling.
func (s *searcher) batch(cands []scenario.Scenario) ([]eval.Result, error) {
	results := make([]eval.Result, len(cands))
	errs := make([]error, len(cands))
	var wg sync.WaitGroup
	for i := range cands {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := func() error {
				var err error
				results[i], err = s.ev.Evaluate(s.ctx, cands[i])
				return err
			}
			if s.selfBudgeted {
				errs[i] = run()
			} else {
				errs[i] = s.pool.Run(s.ctx, run)
			}
		}(i)
	}
	wg.Wait()
	s.evaluations += len(cands)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (s *searcher) eval1(cand scenario.Scenario) (eval.Result, error) {
	res, err := s.batch([]scenario.Scenario{cand})
	if err != nil {
		return eval.Result{}, err
	}
	return res[0], nil
}

func (s *searcher) feasible(r eval.Result) bool {
	return !math.IsNaN(r.Loss) && r.Loss <= s.spec.Target
}

// better reports whether a beats b under the spec's objective.
func (s *searcher) better(a, b eval.Result) bool {
	if s.spec.Objective == MinPower {
		if a.Watts != b.Watts {
			return a.Watts < b.Watts
		}
		return a.Hosts < b.Hosts
	}
	if a.Hosts != b.Hosts {
		return a.Hosts < b.Hosts
	}
	return a.Watts < b.Watts
}

// objValue scalarizes a result for the annealing acceptance test.
func (s *searcher) objValue(r eval.Result) float64 {
	if s.spec.Objective == MinPower {
		return r.Watts
	}
	return float64(r.Hosts)
}

// --- homogeneous consolidated ---------------------------------------

func (s *searcher) homogeneousCandidate(n int) scenario.Scenario {
	c := s.resolved.Clone()
	c.Fleet = scenario.Fleet{Hosts: n}
	return c
}

// searchHomogeneous sizes a single-class consolidated fleet: loss is
// monotone non-increasing in the host count, so a doubling probe plus
// binary search finds the minimal feasible n — the analytic N of the
// paper's Eq. (5) sizing. Fewer hosts also means fewer idle watts at
// fixed offered work, so the same n wins both objectives.
func (s *searcher) searchHomogeneous() (Plan, error) {
	lo, hi := 0, 1 // invariant: lo infeasible (0 hosts serve nothing), hi the probe
	var hiRes eval.Result
	for {
		res, err := s.eval1(s.homogeneousCandidate(hi))
		if err != nil {
			return Plan{}, err
		}
		if s.feasible(res) {
			hiRes = res
			break
		}
		lo = hi
		hi *= 2
		if hi > maxPoolServers {
			return Plan{}, fmt.Errorf("%w: no fleet up to %d hosts reaches loss <= %g", ErrInfeasible, maxPoolServers, s.spec.Target)
		}
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		res, err := s.eval1(s.homogeneousCandidate(mid))
		if err != nil {
			return Plan{}, err
		}
		if s.feasible(res) {
			hi, hiRes = mid, res
		} else {
			lo = mid
		}
	}
	return Plan{Hosts: hi, Result: hiRes}, nil
}

// --- dedicated --------------------------------------------------------

func (s *searcher) dedicatedCandidate(sizes []int) scenario.Scenario {
	c := s.resolved.Clone()
	for i := range c.Services {
		c.Services[i].DedicatedServers = sizes[i]
	}
	return c
}

// searchDedicated sizes each service's pool independently: a service's
// loss depends only on its own pool, so per-service doubling plus binary
// search is exact (the paper's per-service Mᵢ of Eq. 3/4).
func (s *searcher) searchDedicated() (Plan, error) {
	n := len(s.resolved.Services)
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 1
	}
	for i := 0; i < n; i++ {
		lo, hi := 0, 1
		for {
			sizes[i] = hi
			res, err := s.eval1(s.dedicatedCandidate(sizes))
			if err != nil {
				return Plan{}, err
			}
			if res.Services[i].Loss <= s.spec.Target {
				break
			}
			lo = hi
			hi *= 2
			if hi > maxPoolServers {
				return Plan{}, fmt.Errorf("%w: service %d needs more than %d dedicated servers for loss <= %g", ErrInfeasible, i, maxPoolServers, s.spec.Target)
			}
		}
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			sizes[i] = mid
			res, err := s.eval1(s.dedicatedCandidate(sizes))
			if err != nil {
				return Plan{}, err
			}
			if res.Services[i].Loss <= s.spec.Target {
				hi = mid
			} else {
				lo = mid
			}
		}
		sizes[i] = hi
	}
	final, err := s.eval1(s.dedicatedCandidate(sizes))
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{Result: final}
	for i, sz := range sizes {
		plan.Hosts += sz
		plan.Dedicated = append(plan.Dedicated, PoolSize{Name: final.Services[i].Name, Servers: sz})
	}
	return plan, nil
}

// --- heterogeneous consolidated --------------------------------------

func (s *searcher) heteroCandidate(counts []int) scenario.Scenario {
	c := s.resolved.Clone()
	classes := c.Fleet.Classes
	c.Fleet = scenario.Fleet{}
	for k := range classes {
		if counts[k] == 0 {
			continue
		}
		hc := classes[k]
		hc.Count = counts[k]
		c.Fleet.Classes = append(c.Fleet.Classes, hc)
	}
	return c
}

// classBaseWatts reports a class's idle-cost proxy for the min-power
// ranking: its power override's base draw, else the fleet model's.
func (s *searcher) classBaseWatts(hc scenario.HostClass) float64 {
	if hc.Power != nil {
		return hc.Power.BaseW
	}
	if s.resolved.Power != nil && (s.resolved.Power.BaseW != 0 || s.resolved.Power.MaxW != 0) {
		return s.resolved.Power.BaseW
	}
	return power.DefaultServer.Base
}

// ffdOrder ranks classes for the first-fit-decreasing seed: best
// capability first (min-servers) or best capability per idle watt
// (min-power); ties keep scenario order.
func (s *searcher) ffdOrder(resources []string) []int {
	classes := s.resolved.Fleet.Classes
	keys := make([]float64, len(classes))
	for k, hc := range classes {
		cap := eval.ClassCapability(hc, resources)
		if s.spec.Objective == MinPower {
			keys[k] = cap / s.classBaseWatts(hc)
		} else {
			keys[k] = cap
		}
	}
	order := make([]int, len(classes))
	for k := range order {
		order[k] = k
	}
	// Insertion sort keeps equal keys in scenario order (stable).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && keys[order[j]] > keys[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// searchHetero places hosts across the scenario's class supply: an FFD
// seed fills best-ranked classes first until feasible, then local search
// (remove one host; swap one host across classes) descends under the
// objective, with a seeded simulated-annealing kick accepting bounded
// uphill moves out of stalls. Heterogeneous loss is not monotone in any
// single class count, so this is a heuristic; the homogeneous and
// dedicated paths stay exact.
func (s *searcher) searchHetero() (Plan, error) {
	classes := s.resolved.Fleet.Classes
	resources, err := eval.ScenarioResources(s.resolved)
	if err != nil {
		return Plan{}, err
	}
	order := s.ffdOrder(resources)

	// FFD seed: all add-one-host prefixes, evaluated as one batch; the
	// first feasible prefix is the seed.
	var prefixes [][]int
	counts := make([]int, len(classes))
	for _, k := range order {
		for c := 0; c < classes[k].Count; c++ {
			counts[k]++
			prefixes = append(prefixes, append([]int(nil), counts...))
		}
	}
	cands := make([]scenario.Scenario, len(prefixes))
	for i, p := range prefixes {
		cands[i] = s.heteroCandidate(p)
	}
	results, err := s.batch(cands)
	if err != nil {
		return Plan{}, err
	}
	seed := -1
	for i, r := range results {
		if s.feasible(r) {
			seed = i
			break
		}
	}
	if seed < 0 {
		return Plan{}, fmt.Errorf("%w: the full class supply (%d hosts) stays above loss %g", ErrInfeasible, len(prefixes), s.spec.Target)
	}
	cur := append([]int(nil), prefixes[seed]...)
	curRes := results[seed]
	best := append([]int(nil), cur...)
	bestRes := curRes

	rng := rand.New(rand.NewSource(s.spec.Seed))
	temp := math.Max(1, s.objValue(curRes)) * 0.05
	for iter := 0; iter < s.spec.MaxIters; iter++ {
		moves := s.moves(cur)
		if len(moves) == 0 {
			break
		}
		cands := make([]scenario.Scenario, len(moves))
		for i, m := range moves {
			cands[i] = s.heteroCandidate(m)
		}
		results, err := s.batch(cands)
		if err != nil {
			return Plan{}, err
		}
		pick := -1
		for i, r := range results {
			if !s.feasible(r) || !s.better(r, curRes) {
				continue
			}
			if pick < 0 || s.better(r, results[pick]) {
				pick = i
			}
		}
		if pick < 0 {
			// Stalled: annealing kick — accept one random feasible
			// worsening move with Boltzmann probability, else stop.
			feas := make([]int, 0, len(results))
			for i, r := range results {
				if s.feasible(r) {
					feas = append(feas, i)
				}
			}
			if len(feas) == 0 {
				break
			}
			i := feas[rng.Intn(len(feas))]
			delta := s.objValue(results[i]) - s.objValue(curRes)
			if rng.Float64() >= math.Exp(-delta/temp) {
				break
			}
			pick = i
			temp *= 0.8
		}
		cur = moves[pick]
		curRes = results[pick]
		if s.better(curRes, bestRes) {
			best = append([]int(nil), cur...)
			bestRes = curRes
		}
	}

	plan := Plan{Result: bestRes}
	for k, hc := range classes {
		plan.Hosts += best[k]
		plan.Classes = append(plan.Classes, ClassCount{Name: className(hc), Count: best[k]})
	}
	return plan, nil
}

// moves generates the local-search neighborhood of a class assignment:
// remove one host from each occupied class, then swap one host from each
// occupied class to each class with spare supply. Order is
// deterministic (class-index major).
func (s *searcher) moves(counts []int) [][]int {
	classes := s.resolved.Fleet.Classes
	total := 0
	for _, c := range counts {
		total += c
	}
	var out [][]int
	for a := range counts {
		if counts[a] == 0 || total == 1 {
			continue
		}
		m := append([]int(nil), counts...)
		m[a]--
		out = append(out, m)
	}
	for a := range counts {
		if counts[a] == 0 {
			continue
		}
		for b := range counts {
			if b == a || counts[b] >= classes[b].Count {
				continue
			}
			m := append([]int(nil), counts...)
			m[a]--
			m[b]++
			out = append(out, m)
		}
	}
	return out
}
