// Package pool is the process-wide simulation concurrency budget: one
// counting semaphore shared by every layer that runs simulation work.
// cmd/repro sizes a single Pool from -parallel and hands it to the sweep
// engine; the replication engine acquires one slot per running replication
// and individual queueing-level sims acquire one slot per run. Orchestrator
// goroutines (experiments, sweep points) stay unbounded and cheap — only
// actual simulation execution consumes a slot, and no holder of a slot ever
// waits for another slot, so nested fan-out cannot deadlock or
// oversubscribe the machine.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool is a counting semaphore bounding concurrently running simulation
// units. A nil *Pool is valid and means "unbounded": every method is a
// cheap no-op, so callers thread an optional pool without branching.
type Pool struct {
	slots chan struct{}
	size  int

	active atomic.Int64
	peak   atomic.Int64
	units  atomic.Uint64
}

// New builds a pool with the given number of slots. Zero selects
// runtime.GOMAXPROCS(0); negative counts are rejected with a clear error —
// the shared convention for every worker-count knob in this repository.
func New(workers int) (*Pool, error) {
	if workers < 0 {
		return nil, fmt.Errorf("pool: workers=%d (negative; 0 selects GOMAXPROCS)", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, workers), size: workers}, nil
}

// Size reports the slot count (0 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

// Acquire takes one slot, blocking until one frees up or ctx is done. On a
// nil pool it returns immediately. A done context always loses: an
// already-cancelled Acquire never admits work, even when a slot is free —
// the select below would otherwise pick either branch at random, letting
// work start after shutdown began.
func (p *Pool) Acquire(ctx context.Context) error {
	if p == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.slots <- struct{}{}:
		n := p.active.Add(1)
		for {
			old := p.peak.Load()
			if n <= old || p.peak.CompareAndSwap(old, n) {
				break
			}
		}
		p.units.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes one slot only if one is free right now, without
// blocking; it reports whether a slot was taken. A nil pool is unbounded
// and always succeeds. Sharded cluster runs use this to claim extra cores
// for their sibling shards: the caller already holds one slot for the run
// itself, and blocking here for more would let slot-holders wait on each
// other — the deadlock the package contract rules out.
func (p *Pool) TryAcquire() bool {
	if p == nil {
		return true
	}
	select {
	case p.slots <- struct{}{}:
		n := p.active.Add(1)
		for {
			old := p.peak.Load()
			if n <= old || p.peak.CompareAndSwap(old, n) {
				break
			}
		}
		p.units.Add(1)
		return true
	default:
		return false
	}
}

// Release returns one slot. Calls must pair with a successful Acquire or
// TryAcquire; an unpaired Release panics immediately instead of corrupting the slot
// count and deadlocking some later, unrelated Acquire.
func (p *Pool) Release() {
	if p == nil {
		return
	}
	select {
	case <-p.slots:
		p.active.Add(-1)
	default:
		panic("pool: Release without a matching Acquire")
	}
}

// Run acquires a slot for the duration of fn.
func (p *Pool) Run(ctx context.Context, fn func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.Release()
	return fn()
}

// Active reports the number of currently held slots.
func (p *Pool) Active() int {
	if p == nil {
		return 0
	}
	return int(p.active.Load())
}

// Peak reports the occupancy high-water mark.
func (p *Pool) Peak() int {
	if p == nil {
		return 0
	}
	return int(p.peak.Load())
}

// Units reports how many Acquire calls have succeeded — the total count of
// simulation units the pool has admitted.
func (p *Pool) Units() uint64 {
	if p == nil {
		return 0
	}
	return p.units.Load()
}

// Observe registers the pool's occupancy metrics on reg, collected lazily
// at snapshot time (the hot path touches only the pool's own atomics):
// pool/size, pool/active, pool/peak_active gauges and a pool/units_run
// counter.
func (p *Pool) Observe(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.GaugeFunc("pool/size", func() float64 { return float64(p.Size()) })
	reg.GaugeFunc("pool/active", func() float64 { return float64(p.Active()) })
	reg.GaugeFunc("pool/peak_active", func() float64 { return float64(p.Peak()) })
	reg.CounterFunc("pool/units_run", p.Units)
}
