package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNewSemantics(t *testing.T) {
	p, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3", got)
	}

	p, err = New(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Size(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Size = %d, want GOMAXPROCS %d", got, want)
	}

	if _, err := New(-1); err == nil {
		t.Fatal("New(-1) accepted; want a clear rejection")
	}
}

func TestBoundedConcurrency(t *testing.T) {
	p, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	var active, peak atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Run(ctx, func() error {
				n := active.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				active.Add(-1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Fatalf("observed %d concurrent tasks through a 2-slot pool", peak.Load())
	}
	if p.Units() != 16 {
		t.Fatalf("Units = %d, want 16", p.Units())
	}
	if p.Active() != 0 {
		t.Fatalf("Active = %d after all releases", p.Active())
	}
	if p.Peak() < 1 || p.Peak() > 2 {
		t.Fatalf("Peak = %d, want within [1,2]", p.Peak())
	}
}

func TestAcquireCancellation(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer p.Release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); err != context.Canceled {
		t.Fatalf("Acquire on a full pool with cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestAcquireDoneContextNeverAdmits: a done context must lose even when
// slots are free — work must never start after shutdown began. Before the
// ctx.Err() pre-check, the select picked either ready branch at random, so
// roughly half of these calls would have been admitted.
func TestAcquireDoneContextNeverAdmits(t *testing.T) {
	p, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 100; i++ {
		if err := p.Acquire(ctx); err != context.Canceled {
			t.Fatalf("Acquire %d with free slots and done ctx: %v, want context.Canceled", i, err)
		}
	}
	if p.Active() != 0 || p.Units() != 0 {
		t.Fatalf("done-context Acquires leaked state: active=%d units=%d", p.Active(), p.Units())
	}
}

// TestTryAcquire: non-blocking claims succeed exactly while slots are
// free, fail immediately at capacity, and feed the same occupancy
// accounting as Acquire.
func TestTryAcquire(t *testing.T) {
	p, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire succeeded at capacity")
	}
	if p.Active() != 2 || p.Peak() != 2 || p.Units() != 2 {
		t.Fatalf("accounting: active=%d peak=%d units=%d", p.Active(), p.Peak(), p.Units())
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("TryAcquire failed after Release freed a slot")
	}
	p.Release()
	p.Release()
	if p.Active() != 0 {
		t.Fatalf("active=%d after releasing all", p.Active())
	}
	var nilPool *Pool
	if !nilPool.TryAcquire() {
		t.Fatal("nil pool TryAcquire must succeed (unbounded)")
	}
	nilPool.Release()
}

// TestUnpairedReleasePanics: an unbalanced Release must fail loudly at the
// bug, not grow the slot count and deadlock a later Acquire.
func TestUnpairedReleasePanics(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unpaired Release did not panic")
		}
	}()
	p.Release()
}

func TestNilPoolNoOps(t *testing.T) {
	var p *Pool
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Release()
	if err := p.Run(context.Background(), func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 0 || p.Active() != 0 || p.Peak() != 0 || p.Units() != 0 {
		t.Fatal("nil pool reported non-zero state")
	}
	p.Observe(obs.NewRegistry()) // must not panic
}

func TestObserve(t *testing.T) {
	p, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.Observe(reg)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Gauges["pool/size"] != 4 {
		t.Fatalf("pool/size = %g, want 4", snap.Gauges["pool/size"])
	}
	if snap.Gauges["pool/active"] != 1 || snap.Gauges["pool/peak_active"] != 1 {
		t.Fatalf("active/peak = %g/%g, want 1/1",
			snap.Gauges["pool/active"], snap.Gauges["pool/peak_active"])
	}
	if snap.Counters["pool/units_run"] != 1 {
		t.Fatalf("pool/units_run = %d, want 1", snap.Counters["pool/units_run"])
	}
	p.Release()
}
