// Package power models server power draw and emulates the electric
// parameter tester the paper uses to meter its testbed (Section IV-C.2,
// Figs. 12–13).
//
// The underlying model is the paper's Section III-B.3 linear form (from
// ref. [1]): a server draws Base watts idle and Max watts at full
// utilization, interpolating linearly. On top of that, the package applies
// the two platform effects the paper measures but cannot explain:
//
//   - an idle Xen host draws ~9 % less than an idle native-Linux host, and
//   - the same workload hosted on consolidated Xen servers consumes ~30 %
//     less active (above-idle) energy than on dedicated Linux servers.
//
// Both are applied as multiplicative platform factors so experiments can
// reproduce Fig. 12/13's decomposition into idle power and workload power.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Platform identifies the software stack on a host, which shifts its power
// profile per the paper's measurements.
type Platform int

const (
	// NativeLinux is the dedicated-server baseline platform.
	NativeLinux Platform = iota
	// XenRainbow is the consolidated platform (Xen + the Rainbow
	// resource-flowing runtime).
	XenRainbow
)

func (p Platform) String() string {
	if p == NativeLinux {
		return "linux"
	}
	return "xen"
}

// Platform factors reconstructed from Section IV-C.2 / V: "the power
// consumed by the idle Xen platform is 9% less than that consumed by the
// same number of idle Linux platform" and "the power consumed by the same
// workloads hosted on consolidated Xen-based servers is 30% less than that
// hosted on dedicated Linux servers".
const (
	XenIdleFactor   = 0.91
	XenActiveFactor = 0.70
)

// ServerModel is the per-server linear power model.
type ServerModel struct {
	Base float64 // S_base: idle draw, watts
	Max  float64 // S_max: full-utilization draw, watts
}

// DefaultServer mirrors core.DefaultPower (see DESIGN.md §2).
var DefaultServer = ServerModel{Base: 250, Max: 340}

// ErrInvalidModel reports invalid power-model parameters.
var ErrInvalidModel = errors.New("power: invalid model")

// Validate checks the server model.
func (m ServerModel) Validate() error {
	if m.Base < 0 || m.Max < m.Base || math.IsNaN(m.Base) || math.IsNaN(m.Max) ||
		math.IsInf(m.Base, 0) || math.IsInf(m.Max, 0) {
		return fmt.Errorf("%w: base=%g max=%g", ErrInvalidModel, m.Base, m.Max)
	}
	return nil
}

// Draw reports the instantaneous draw in watts of one server at utilization
// u (clamped to [0, 1]) on the given platform.
func (m ServerModel) Draw(u float64, p Platform) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	idle := m.Base
	active := (m.Max - m.Base) * u
	if p == XenRainbow {
		idle *= XenIdleFactor
		active *= XenActiveFactor
	}
	return idle + active
}

// IdleDraw reports the idle draw of one server on the given platform.
func (m ServerModel) IdleDraw(p Platform) float64 { return m.Draw(0, p) }

// Meter integrates energy over time for a group of servers, emulating the
// paper's electric parameter tester "which measures the power consumed by
// one or more servers switching in it". Feed it utilization observations
// with Observe; read totals with Energy and MeanPower.
type Meter struct {
	model    ServerModel
	platform Platform

	elapsed     float64 // seconds observed
	totalJoules float64
	idleJoules  float64 // what the same servers would have drawn idle
	maxServers  int
}

// NewMeter builds a meter for servers with the given model and platform.
func NewMeter(model ServerModel, platform Platform) (*Meter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Meter{model: model, platform: platform}, nil
}

// Observe records that, for dt seconds, the metered group consisted of
// len(utilizations) powered-on servers with the given per-server
// utilizations. It returns an error for negative dt or out-of-range inputs
// (utilizations are clamped like Draw).
func (m *Meter) Observe(dt float64, utilizations []float64) error {
	if dt < 0 || math.IsNaN(dt) {
		return fmt.Errorf("%w: negative interval %g", ErrInvalidModel, dt)
	}
	if dt == 0 {
		return nil
	}
	watts := 0.0
	for _, u := range utilizations {
		watts += m.model.Draw(u, m.platform)
	}
	m.totalJoules += watts * dt
	m.idleJoules += m.model.IdleDraw(m.platform) * float64(len(utilizations)) * dt
	m.elapsed += dt
	if len(utilizations) > m.maxServers {
		m.maxServers = len(utilizations)
	}
	return nil
}

// Energy reports total energy observed, in joules.
func (m *Meter) Energy() float64 { return m.totalJoules }

// IdleEnergy reports the energy the same powered-on servers would have
// consumed idle — the quantity the paper subtracts to isolate "the power
// consumed by the service workloads" (Fig. 13).
func (m *Meter) IdleEnergy() float64 { return m.idleJoules }

// WorkloadEnergy reports Energy − IdleEnergy: the active energy
// attributable to the workloads.
func (m *Meter) WorkloadEnergy() float64 { return m.totalJoules - m.idleJoules }

// Elapsed reports the observed duration in seconds.
func (m *Meter) Elapsed() float64 { return m.elapsed }

// MeanPower reports the time-average power draw in watts (NaN when nothing
// has been observed).
func (m *Meter) MeanPower() float64 {
	if m.elapsed == 0 {
		return math.NaN()
	}
	return m.totalJoules / m.elapsed
}

// MaxServers reports the largest server group observed.
func (m *Meter) MaxServers() int { return m.maxServers }

// Comparison captures the paper's Fig. 12/13 power comparison between a
// dedicated deployment and a consolidated one.
type Comparison struct {
	DedicatedTotal    float64 // joules (or watts if built from draws)
	ConsolidatedTotal float64
	DedicatedIdle     float64
	ConsolidatedIdle  float64
}

// TotalSaving reports 1 − consolidated/dedicated for total energy — the
// paper's "up to 53 % power" headline.
func (c Comparison) TotalSaving() float64 {
	if c.DedicatedTotal == 0 {
		return 0
	}
	return 1 - c.ConsolidatedTotal/c.DedicatedTotal
}

// WorkloadSaving reports the saving on active (above-idle) energy only —
// the paper's Fig. 13 "30 % less" observation.
func (c Comparison) WorkloadSaving() float64 {
	dw := c.DedicatedTotal - c.DedicatedIdle
	cw := c.ConsolidatedTotal - c.ConsolidatedIdle
	if dw == 0 {
		return 0
	}
	return 1 - cw/dw
}

// IdleSaving reports the saving on idle energy (server-count reduction plus
// the Xen idle factor).
func (c Comparison) IdleSaving() float64 {
	if c.DedicatedIdle == 0 {
		return 0
	}
	return 1 - c.ConsolidatedIdle/c.DedicatedIdle
}

// Compare folds two meters into a Comparison.
func Compare(dedicated, consolidated *Meter) Comparison {
	return Comparison{
		DedicatedTotal:    dedicated.Energy(),
		ConsolidatedTotal: consolidated.Energy(),
		DedicatedIdle:     dedicated.IdleEnergy(),
		ConsolidatedIdle:  consolidated.IdleEnergy(),
	}
}

// SteadyStateDraw computes the mean draw in watts of `servers` servers at
// uniform utilization u on platform p — the closed-form used by the
// analytic side of the experiments (Eq. 12/13 with platform factors).
func SteadyStateDraw(model ServerModel, servers int, u float64, p Platform) float64 {
	if servers <= 0 {
		return 0
	}
	return model.Draw(u, p) * float64(servers)
}
