package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDrawEndpointsAndClamp(t *testing.T) {
	m := ServerModel{Base: 250, Max: 340}
	if m.Draw(0, NativeLinux) != 250 {
		t.Fatal("idle draw wrong")
	}
	if m.Draw(1, NativeLinux) != 340 {
		t.Fatal("max draw wrong")
	}
	if m.Draw(-2, NativeLinux) != 250 || m.Draw(3, NativeLinux) != 340 {
		t.Fatal("clamp broken")
	}
	if math.Abs(m.Draw(0.5, NativeLinux)-295) > 1e-12 {
		t.Fatal("midpoint wrong")
	}
}

func TestXenPlatformFactors(t *testing.T) {
	m := DefaultServer
	// Idle Xen = 9 % less than idle Linux (paper Section IV-C.2).
	if got, want := m.IdleDraw(XenRainbow), 250*XenIdleFactor; math.Abs(got-want) > 1e-12 {
		t.Fatalf("xen idle = %g, want %g", got, want)
	}
	// Active component = 30 % less.
	linuxActive := m.Draw(1, NativeLinux) - m.IdleDraw(NativeLinux)
	xenActive := m.Draw(1, XenRainbow) - m.IdleDraw(XenRainbow)
	if math.Abs(xenActive-linuxActive*XenActiveFactor) > 1e-12 {
		t.Fatalf("xen active = %g, want %g", xenActive, linuxActive*XenActiveFactor)
	}
	if NativeLinux.String() != "linux" || XenRainbow.String() != "xen" {
		t.Fatal("platform names wrong")
	}
}

func TestBusyOnlySlightlyAboveIdle(t *testing.T) {
	// Paper: "the servers hosting services only increase up to 7% power
	// consumption than the same idle servers" at case-study utilization
	// (~0.2 on dedicated hosts). Our constants must respect that.
	m := DefaultServer
	u := 0.20
	ratio := m.Draw(u, NativeLinux) / m.IdleDraw(NativeLinux)
	if ratio > 1.08 {
		t.Fatalf("busy/idle ratio at u=0.2 = %g, want <= 1.08", ratio)
	}
	// And Barroso & Hölzle: idle exceeds 50 % of peak.
	if m.IdleDraw(NativeLinux) < 0.5*m.Draw(1, NativeLinux) {
		t.Fatal("idle draw below 50% of peak")
	}
}

func TestValidate(t *testing.T) {
	if err := (ServerModel{Base: -1, Max: 10}).Validate(); err == nil {
		t.Fatal("negative base accepted")
	}
	if err := (ServerModel{Base: 10, Max: 5}).Validate(); err == nil {
		t.Fatal("max < base accepted")
	}
	if err := (ServerModel{Base: math.NaN(), Max: 5}).Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := DefaultServer.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Golden values of the paper's linear form P = S_base + (S_max − S_base)·u
// for the default 250/340 W server, on both platforms. Pinned exactly so
// a factor or formula regression cannot hide behind tolerances.
func TestDrawGoldenValues(t *testing.T) {
	m := DefaultServer
	cases := []struct {
		u        float64
		platform Platform
		want     float64
	}{
		{0, NativeLinux, 250},
		{0.25, NativeLinux, 272.5},
		{0.5, NativeLinux, 295},
		{1, NativeLinux, 340},
		// Xen: 250·0.91 + 90·0.70·u = 227.5 + 63u.
		{0, XenRainbow, 227.5},
		{0.25, XenRainbow, 243.25},
		{0.5, XenRainbow, 259},
		{1, XenRainbow, 290.5},
	}
	for _, c := range cases {
		if got := m.Draw(c.u, c.platform); got != c.want {
			t.Errorf("Draw(%g, %s) = %g, want %g", c.u, c.platform, got, c.want)
		}
	}
}

// Zero utilization is exactly the idle draw — no active term leaks in —
// and a fleet at zero utilization draws servers × idle.
func TestZeroUtilization(t *testing.T) {
	m := ServerModel{Base: 120, Max: 180}
	if got := m.Draw(0, NativeLinux); got != 120 {
		t.Fatalf("zero-utilization draw %g, want the bare base 120", got)
	}
	if got := SteadyStateDraw(m, 7, 0, NativeLinux); got != 7*120 {
		t.Fatalf("fleet zero-utilization draw %g, want %g", got, 7.0*120)
	}
	if got := SteadyStateDraw(m, 0, 0.5, NativeLinux); got != 0 {
		t.Fatalf("empty fleet draws %g, want 0", got)
	}
	if got := SteadyStateDraw(m, -3, 0.5, NativeLinux); got != 0 {
		t.Fatalf("negative fleet draws %g, want 0", got)
	}
}

// Validate rejects every non-physical model shape with the sentinel.
func TestValidateEdgeCases(t *testing.T) {
	bad := []ServerModel{
		{Base: 340, Max: 250}, // S_max < S_base
		{Base: -1, Max: 10},
		{Base: math.NaN(), Max: 340},
		{Base: 250, Max: math.NaN()},
		{Base: math.Inf(1), Max: math.Inf(1)},
		{Base: 250, Max: math.Inf(1)},
	}
	for _, m := range bad {
		err := m.Validate()
		if err == nil {
			t.Errorf("model %+v accepted", m)
			continue
		}
		if !errors.Is(err, ErrInvalidModel) {
			t.Errorf("model %+v: error %v does not wrap ErrInvalidModel", m, err)
		}
	}
	// Degenerate-but-physical shapes stay valid: a zero-draw server and a
	// flat (base == max) server.
	for _, m := range []ServerModel{{}, {Base: 100, Max: 100}} {
		if err := m.Validate(); err != nil {
			t.Errorf("model %+v rejected: %v", m, err)
		}
	}
}

func TestMeterIntegration(t *testing.T) {
	m, err := NewMeter(ServerModel{Base: 100, Max: 200}, NativeLinux)
	if err != nil {
		t.Fatal(err)
	}
	// 2 servers at u=0.5 for 10 s: each draws 150 W → 3000 J.
	if err := m.Observe(10, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Energy()-3000) > 1e-9 {
		t.Fatalf("energy = %g", m.Energy())
	}
	if math.Abs(m.IdleEnergy()-2000) > 1e-9 {
		t.Fatalf("idle energy = %g", m.IdleEnergy())
	}
	if math.Abs(m.WorkloadEnergy()-1000) > 1e-9 {
		t.Fatalf("workload energy = %g", m.WorkloadEnergy())
	}
	if m.Elapsed() != 10 || m.MaxServers() != 2 {
		t.Fatal("bookkeeping wrong")
	}
	if math.Abs(m.MeanPower()-300) > 1e-9 {
		t.Fatalf("mean power = %g", m.MeanPower())
	}
	// Zero-length observation is a no-op.
	if err := m.Observe(0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() != 10 {
		t.Fatal("zero-dt observation changed state")
	}
	// Negative dt rejected.
	if err := m.Observe(-1, nil); err == nil {
		t.Fatal("negative dt accepted")
	}
}

func TestMeterEmpty(t *testing.T) {
	m, _ := NewMeter(DefaultServer, NativeLinux)
	if !math.IsNaN(m.MeanPower()) {
		t.Fatal("empty meter should report NaN mean power")
	}
}

func TestNewMeterValidates(t *testing.T) {
	if _, err := NewMeter(ServerModel{Base: 5, Max: 1}, NativeLinux); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestComparisonSavings(t *testing.T) {
	c := Comparison{
		DedicatedTotal: 1000, ConsolidatedTotal: 470,
		DedicatedIdle: 800, ConsolidatedIdle: 364,
	}
	if math.Abs(c.TotalSaving()-0.53) > 1e-12 {
		t.Fatalf("total saving = %g", c.TotalSaving())
	}
	if math.Abs(c.WorkloadSaving()-(1-106.0/200.0)) > 1e-12 {
		t.Fatalf("workload saving = %g", c.WorkloadSaving())
	}
	if math.Abs(c.IdleSaving()-(1-364.0/800.0)) > 1e-12 {
		t.Fatalf("idle saving = %g", c.IdleSaving())
	}
	// Degenerate zeros.
	var zero Comparison
	if zero.TotalSaving() != 0 || zero.WorkloadSaving() != 0 || zero.IdleSaving() != 0 {
		t.Fatal("degenerate comparison should be zero")
	}
}

func TestCompareMeters(t *testing.T) {
	ded, _ := NewMeter(DefaultServer, NativeLinux)
	cons, _ := NewMeter(DefaultServer, XenRainbow)
	// 8 dedicated servers at u=0.2 vs 4 consolidated at u=0.45, one hour.
	dedU := make([]float64, 8)
	for i := range dedU {
		dedU[i] = 0.2
	}
	consU := make([]float64, 4)
	for i := range consU {
		consU[i] = 0.45
	}
	if err := ded.Observe(3600, dedU); err != nil {
		t.Fatal(err)
	}
	if err := cons.Observe(3600, consU); err != nil {
		t.Fatal(err)
	}
	c := Compare(ded, cons)
	// Paper headline: consolidation saves roughly half the power. With the
	// platform factors this lands in [0.45, 0.58].
	saving := c.TotalSaving()
	if saving < 0.45 || saving > 0.58 {
		t.Fatalf("total saving = %g, want ~0.5", saving)
	}
}

func TestSteadyStateDraw(t *testing.T) {
	got := SteadyStateDraw(ServerModel{Base: 100, Max: 200}, 4, 0.25, NativeLinux)
	if math.Abs(got-4*125) > 1e-12 {
		t.Fatalf("draw = %g", got)
	}
	if SteadyStateDraw(DefaultServer, 0, 1, NativeLinux) != 0 {
		t.Fatal("zero servers should draw nothing")
	}
	if SteadyStateDraw(DefaultServer, -3, 1, NativeLinux) != 0 {
		t.Fatal("negative servers should draw nothing")
	}
}

// Property: Draw is monotone in utilization and Xen never draws more than
// Linux at equal utilization.
func TestDrawMonotoneProperty(t *testing.T) {
	f := func(u1, u2 uint8) bool {
		a := float64(u1) / 255
		b := float64(u2) / 255
		if a > b {
			a, b = b, a
		}
		m := DefaultServer
		if m.Draw(a, NativeLinux) > m.Draw(b, NativeLinux)+1e-12 {
			return false
		}
		return m.Draw(a, XenRainbow) <= m.Draw(a, NativeLinux)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: meter energy equals the sum of per-interval draws (linearity).
func TestMeterLinearityProperty(t *testing.T) {
	f := func(us []uint8, dtRaw uint8) bool {
		dt := float64(dtRaw%100) + 1
		m, _ := NewMeter(DefaultServer, NativeLinux)
		want := 0.0
		utils := make([]float64, len(us))
		for i, u := range us {
			utils[i] = float64(u) / 255
			want += DefaultServer.Draw(utils[i], NativeLinux) * dt
		}
		if err := m.Observe(dt, utils); err != nil {
			return false
		}
		return math.Abs(m.Energy()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
