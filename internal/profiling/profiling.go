// Package profiling wires -cpuprofile/-memprofile flags into the CLI
// commands so hot-path regressions in the simulation core can be diagnosed
// with pprof without editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpu is non-empty) and returns a stop
// function that finalizes both profiles; call it via defer from main. The
// heap profile (when mem is non-empty) is written at stop time, after a GC,
// so it reflects live retained memory at the end of the run.
func Start(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
