package queueing

import (
	"fmt"
	"math"

	"repro/internal/desim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// HeteroConfig describes a loss system whose servers have unequal rates —
// the queueing ground truth for the heterogeneous-server extension
// (core.ServerClass / erlang.BContinuous). Requests that find no idle
// server are lost; an idle server is chosen by the configured policy.
type HeteroConfig struct {
	// Rates lists each server's service rate (relative or absolute; only
	// ratios to the arrival rate matter).
	Rates []float64

	// Arrivals generates the request stream.
	Arrivals workload.ArrivalProcess

	// FastestFirst selects the fastest idle server for each arrival (the
	// sensible dispatcher); false picks uniformly at random among idle
	// servers.
	FastestFirst bool

	// Horizon, Warmup, Seed as in Config.
	Horizon float64
	Warmup  float64
	Seed    uint64
}

// Validate checks the configuration.
func (c HeteroConfig) Validate() error {
	if len(c.Rates) == 0 {
		return fmt.Errorf("%w: no servers", ErrInvalidConfig)
	}
	for i, r := range c.Rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("%w: server %d rate %g", ErrInvalidConfig, i, r)
		}
	}
	if c.Arrivals == nil {
		return fmt.Errorf("%w: nil arrivals", ErrInvalidConfig)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("%w: horizon %g", ErrInvalidConfig, c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("%w: warmup %g", ErrInvalidConfig, c.Warmup)
	}
	return nil
}

// HeteroResult summarizes a heterogeneous loss-system run.
type HeteroResult struct {
	Arrivals int64
	Served   int64
	Lost     int64
	LossProb float64
	LossCI   stats.CI

	// PerServerBusy is each server's busy fraction.
	PerServerBusy []float64

	// CapabilityUnits is Σ rateᵢ / max rate — the pool size in
	// fastest-server units, the quantity the continuous Erlang B
	// approximation consumes.
	CapabilityUnits float64
}

// SimulateHetero runs the heterogeneous loss system.
func SimulateHetero(cfg HeteroConfig) (*HeteroResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := desim.New()
	stream := stats.NewStream(cfg.Seed, "queueing/hetero")
	arrStream := stream.Substream("arrivals")
	svcStream := stream.Substream("service")
	pickStream := stream.Substream("pick")

	n := len(cfg.Rates)
	busy := make([]bool, n)
	busyAvg := make([]desim.TimeAverage, n)
	for i := range busyAvg {
		busyAvg[i].Set(0, 0)
	}
	res := &HeteroResult{}

	maxRate := 0.0
	for _, r := range cfg.Rates {
		if r > maxRate {
			maxRate = r
		}
	}
	for _, r := range cfg.Rates {
		res.CapabilityUnits += r / maxRate
	}

	pickServer := func() int {
		best := -1
		if cfg.FastestFirst {
			for i := 0; i < n; i++ {
				if !busy[i] && (best < 0 || cfg.Rates[i] > cfg.Rates[best]) {
					best = i
				}
			}
			return best
		}
		idle := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !busy[i] {
				idle = append(idle, i)
			}
		}
		if len(idle) == 0 {
			return -1
		}
		return idle[pickStream.IntN(len(idle))]
	}

	var arrive func()
	arrive = func() {
		now := sim.Now()
		if now >= cfg.Warmup {
			res.Arrivals++
		}
		if i := pickServer(); i >= 0 {
			busy[i] = true
			busyAvg[i].Set(now, 1)
			d := svcStream.ExpFloat64() / cfg.Rates[i]
			i := i
			sim.After(d, func() {
				if sim.Now() >= cfg.Warmup {
					res.Served++
				}
				busy[i] = false
				busyAvg[i].Set(sim.Now(), 0)
			})
		} else if now >= cfg.Warmup {
			res.Lost++
		}
		gap := cfg.Arrivals.Next(arrStream)
		if now+gap <= cfg.Horizon {
			sim.At(now+gap, arrive)
		}
	}
	first := cfg.Arrivals.Next(arrStream)
	if first <= cfg.Horizon {
		sim.At(first, arrive)
	}
	sim.Run(cfg.Horizon)

	for i := range busyAvg {
		busyAvg[i].Finish(cfg.Horizon)
		res.PerServerBusy = append(res.PerServerBusy, busyAvg[i].Average())
	}
	if res.Arrivals > 0 {
		res.LossProb = float64(res.Lost) / float64(res.Arrivals)
	}
	res.LossCI = stats.ProportionCI(res.Lost, res.Arrivals, 0.95)
	return res, nil
}
