package queueing

import (
	"math"
	"testing"

	"repro/internal/erlang"
	"repro/internal/stats"
	"repro/internal/workload"
)

func heteroCfg(rates []float64, lambda float64, seed uint64) HeteroConfig {
	return HeteroConfig{
		Rates:        rates,
		Arrivals:     workload.NewPoisson(lambda),
		FastestFirst: true,
		Horizon:      8000,
		Warmup:       800,
		Seed:         seed,
	}
}

func TestHeteroValidate(t *testing.T) {
	good := heteroCfg([]float64{1, 2}, 1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*HeteroConfig){
		func(c *HeteroConfig) { c.Rates = nil },
		func(c *HeteroConfig) { c.Rates = []float64{0} },
		func(c *HeteroConfig) { c.Rates = []float64{-1} },
		func(c *HeteroConfig) { c.Arrivals = nil },
		func(c *HeteroConfig) { c.Horizon = 0 },
		func(c *HeteroConfig) { c.Warmup = c.Horizon },
	}
	for i, mutate := range cases {
		c := heteroCfg([]float64{1, 2}, 1, 1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := SimulateHetero(HeteroConfig{}); err == nil {
		t.Fatal("empty config simulated")
	}
}

func TestHeteroHomogeneousMatchesErlangB(t *testing.T) {
	// Equal rates reduce to the classic M/M/n/n.
	lambda := 2.0
	res, err := SimulateHetero(heteroCfg([]float64{1, 1, 1}, lambda, 11))
	if err != nil {
		t.Fatal(err)
	}
	want := erlang.MustB(3, lambda)
	if !res.LossCI.Contains(want) && stats.RelativeError(res.LossProb, want) > 0.08 {
		t.Fatalf("homogeneous loss %s vs Erlang B %.4f", res.LossCI, want)
	}
	if math.Abs(res.CapabilityUnits-3) > 1e-12 {
		t.Fatalf("capability units %g", res.CapabilityUnits)
	}
}

func TestHeteroPooledApproximation(t *testing.T) {
	// The heterogeneous pool (rates 1.2, 1.2, 1, 1, normalized capability
	// 1+1+0.83+0.83 = 3.67 fast-server units) against the continuous
	// Erlang B at the pooled capability. The approximation should land
	// within a modest factor — this test *documents* its accuracy.
	lambda := 3.0
	rates := []float64{1.2, 1.2, 1.0, 1.0}
	res, err := SimulateHetero(heteroCfg(rates, lambda, 13))
	if err != nil {
		t.Fatal(err)
	}
	rhoFast := lambda / 1.2
	approx, err := erlang.BContinuous(res.CapabilityUnits, rhoFast)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossProb <= 0 {
		t.Fatal("no losses observed; raise the load")
	}
	ratio := res.LossProb / approx
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("pooled approximation off by %gx (sim %.4f, approx %.4f)",
			ratio, res.LossProb, approx)
	}
}

func TestHeteroFastestFirstBeatsRandom(t *testing.T) {
	// Fastest-first assignment wastes less capacity than random
	// assignment, so it loses no more requests.
	lambda := 3.2
	rates := []float64{2, 1, 0.5, 0.5}
	fastest, err := SimulateHetero(heteroCfg(rates, lambda, 17))
	if err != nil {
		t.Fatal(err)
	}
	random := heteroCfg(rates, lambda, 17)
	random.FastestFirst = false
	rnd, err := SimulateHetero(random)
	if err != nil {
		t.Fatal(err)
	}
	if fastest.LossProb > rnd.LossProb+0.01 {
		t.Fatalf("fastest-first lost %.4f vs random %.4f", fastest.LossProb, rnd.LossProb)
	}
}

func TestHeteroBusyOrdering(t *testing.T) {
	// Under fastest-first, faster servers are busier.
	lambda := 1.5
	res, err := SimulateHetero(heteroCfg([]float64{2, 1}, lambda, 19))
	if err != nil {
		t.Fatal(err)
	}
	if res.PerServerBusy[0] <= res.PerServerBusy[1] {
		t.Fatalf("fast server busy %.3f <= slow %.3f",
			res.PerServerBusy[0], res.PerServerBusy[1])
	}
	// Conservation.
	diff := res.Arrivals - res.Served - res.Lost
	if diff < 0 || diff > int64(len(res.PerServerBusy)) {
		t.Fatalf("conservation: %d arrivals, %d served, %d lost",
			res.Arrivals, res.Served, res.Lost)
	}
}

func TestHeteroDeterminism(t *testing.T) {
	a, _ := SimulateHetero(heteroCfg([]float64{1.5, 1}, 2, 23))
	b, _ := SimulateHetero(heteroCfg([]float64{1.5, 1}, 2, 23))
	if a.Arrivals != b.Arrivals || a.Lost != b.Lost {
		t.Fatal("identical seeds diverged")
	}
}
