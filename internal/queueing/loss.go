// Package queueing simulates the loss systems underlying the utility
// analytic model: G/G/n/n pure-loss pools (the Erlang B setting) and
// G/G/n/n+q finite-queue pools (for the response-time view of the
// evaluation). It is the controlled laboratory for the "model vs. reality"
// experiments: by PASTA and Erlang insensitivity, an M/G/n/n simulation's
// loss probability must converge to the Erlang B formula regardless of the
// service-time distribution — and the test suite checks exactly that.
package queueing

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/desim"
	"repro/internal/replicate"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes one simulated pool.
type Config struct {
	// Servers is the number of parallel servers (the paper's n).
	Servers int

	// QueueCap is the waiting-room size: 0 gives the pure loss system
	// (Erlang B); a positive value gives G/G/n/n+q; Infinite queues are
	// requested with QueueCapInfinite.
	QueueCap int

	// Arrivals generates the request stream.
	Arrivals workload.ArrivalProcess

	// Service is the per-request service-time distribution on one server.
	Service stats.Distribution

	// Horizon is the simulated duration in seconds.
	Horizon float64

	// Warmup discards statistics before this time (transient removal).
	Warmup float64

	// Seed drives all randomness; identical configs with identical seeds
	// produce identical results.
	Seed uint64
}

// QueueCapInfinite requests an unbounded waiting room.
const QueueCapInfinite = -1

// ErrInvalidConfig reports an unusable simulation configuration.
var ErrInvalidConfig = errors.New("queueing: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("%w: servers=%d", ErrInvalidConfig, c.Servers)
	}
	if c.QueueCap < QueueCapInfinite {
		return fmt.Errorf("%w: queue cap=%d", ErrInvalidConfig, c.QueueCap)
	}
	if c.Arrivals == nil || c.Service == nil {
		return fmt.Errorf("%w: nil arrivals or service", ErrInvalidConfig)
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("%w: horizon=%g", ErrInvalidConfig, c.Horizon)
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("%w: warmup=%g with horizon=%g", ErrInvalidConfig, c.Warmup, c.Horizon)
	}
	return nil
}

// Result summarizes one run. Counters cover the post-warmup window only.
type Result struct {
	Arrivals int64
	Served   int64
	Lost     int64

	// LossProb is Lost/Arrivals — the paper's "loss probability calculated
	// by requests" B.
	LossProb float64

	// LossCI is a 95 % Wald interval on LossProb.
	LossCI stats.CI

	// TimeBlocked is the fraction of (post-warmup) time all servers were
	// busy and the queue (if any) was full — the paper's "loss probability
	// calculated by time" p_n. PASTA makes it equal LossProb in
	// distribution for Poisson arrivals.
	TimeBlocked float64

	// MeanBusy is the time-average number of busy servers (carried
	// traffic).
	MeanBusy float64

	// Utilization is MeanBusy / Servers.
	Utilization float64

	// Throughput is Served divided by the observation window.
	Throughput float64

	// ResponseTimes summarizes sojourn times (wait + service) of served
	// requests.
	ResponseTimes stats.Accumulator

	// QueueLen is the time-average queue length (0 for pure loss systems).
	QueueLen float64

	// Window is the post-warmup observation duration.
	Window float64
}

// Simulate runs the pool to its horizon and returns the summary.
func Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := desim.New()
	stream := stats.NewStream(cfg.Seed, "queueing")
	arrStream := stream.Substream("arrivals")
	svcStream := stream.Substream("service")

	type job struct {
		arrived desim.Time
	}

	var (
		busy       int
		queue      []job
		res        Result
		busyAvg    desim.TimeAverage
		queueAvg   desim.TimeAverage
		blockedAvg desim.TimeAverage
	)
	blockedState := func() float64 {
		full := busy == cfg.Servers
		if cfg.QueueCap > 0 {
			full = full && len(queue) >= cfg.QueueCap
		}
		if cfg.QueueCap == QueueCapInfinite {
			full = false
		}
		if full {
			return 1
		}
		return 0
	}
	record := func() {
		now := sim.Now()
		if now < cfg.Warmup {
			now = cfg.Warmup
		}
		busyAvg.Set(now, float64(busy))
		queueAvg.Set(now, float64(len(queue)))
		blockedAvg.Set(now, blockedState())
	}

	var finish func()
	startService := func(j job) {
		busy++
		d := cfg.Service.Sample(svcStream)
		arrivedAt := j.arrived
		sim.After(d, func() {
			if sim.Now() >= cfg.Warmup {
				res.Served++
				res.ResponseTimes.Add(sim.Now() - arrivedAt)
			}
			busy--
			finish()
			record()
		})
		record()
	}
	finish = func() {
		if len(queue) > 0 && busy < cfg.Servers {
			j := queue[0]
			queue = queue[1:]
			startService(j)
		}
	}

	var arrive func()
	arrive = func() {
		now := sim.Now()
		if now >= cfg.Warmup {
			res.Arrivals++
		}
		j := job{arrived: now}
		switch {
		case busy < cfg.Servers:
			startService(j)
		case cfg.QueueCap == QueueCapInfinite || len(queue) < cfg.QueueCap:
			queue = append(queue, j)
			record()
		default:
			if now >= cfg.Warmup {
				res.Lost++
			}
		}
		gap := cfg.Arrivals.Next(arrStream)
		next := now + gap
		if next <= cfg.Horizon {
			sim.At(next, arrive)
		}
	}

	// Prime statistics at the warmup boundary and start the arrival stream.
	sim.At(cfg.Warmup, record)
	firstGap := cfg.Arrivals.Next(arrStream)
	if firstGap <= cfg.Horizon {
		sim.At(firstGap, arrive)
	}
	sim.Run(cfg.Horizon)

	busyAvg.Finish(cfg.Horizon)
	queueAvg.Finish(cfg.Horizon)
	blockedAvg.Finish(cfg.Horizon)

	res.Window = cfg.Horizon - cfg.Warmup
	if res.Arrivals > 0 {
		res.LossProb = float64(res.Lost) / float64(res.Arrivals)
	}
	res.LossCI = stats.ProportionCI(res.Lost, res.Arrivals, 0.95)
	if v := busyAvg.Average(); !math.IsNaN(v) {
		res.MeanBusy = v
	}
	res.Utilization = res.MeanBusy / float64(cfg.Servers)
	if v := queueAvg.Average(); !math.IsNaN(v) {
		res.QueueLen = v
	}
	if v := blockedAvg.Average(); !math.IsNaN(v) {
		res.TimeBlocked = v
	}
	if res.Window > 0 {
		res.Throughput = float64(res.Served) / res.Window
	}
	return &res, nil
}

// ReplicationSet is the outcome of a replication study over Simulate.
type ReplicationSet struct {
	// Results holds one full Result per completed replication, in
	// replication order.
	Results []*Result

	// Losses is the per-replication loss probability.
	Losses []float64

	// LossCI is the Student-t confidence interval over Losses.
	LossCI stats.CI

	// EarlyStopped reports whether the precision target was reached before
	// all requested replications ran.
	EarlyStopped bool
}

// RunReplications runs independent replications of cfg through the parallel
// replication engine: replication r uses seed cfg.Seed+r (rcfg.Seed is
// ignored), results merge in replication order so the outcome is identical
// for any worker count, and rcfg.Precision > 0 enables CI-driven early
// stopping on the loss probability. Stateful arrival processes are cloned
// per replication, so concurrent runs never share phase state.
func RunReplications(ctx context.Context, cfg Config, rcfg replicate.Config) (*ReplicationSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rcfg.Replications <= 0 {
		return nil, fmt.Errorf("%w: replications=%d", ErrInvalidConfig, rcfg.Replications)
	}
	rcfg.Seed = cfg.Seed
	eng, err := replicate.Run(ctx, rcfg,
		func(_ int, seed uint64) (*Result, error) {
			c := cfg
			c.Seed = seed
			c.Arrivals = workload.Clone(cfg.Arrivals)
			return Simulate(c)
		},
		func(res *Result) float64 { return res.LossProb })
	if eng == nil {
		return nil, err
	}
	set := &ReplicationSet{
		Results:      eng.Outputs,
		Losses:       eng.Metrics,
		LossCI:       eng.CI,
		EarlyStopped: eng.EarlyStopped,
	}
	return set, err
}

// Replications runs the same configuration with seeds seed, seed+1, ... and
// returns per-replication loss probabilities plus an aggregate CI — the
// independent-replications method for tight confidence intervals. It is a
// thin serial-compatible wrapper over RunReplications; callers wanting
// worker control, early stopping or cancellation should use that directly.
func Replications(cfg Config, replications int) ([]float64, stats.CI, error) {
	if replications <= 0 {
		return nil, stats.CI{}, fmt.Errorf("%w: replications=%d", ErrInvalidConfig, replications)
	}
	set, err := RunReplications(context.Background(), cfg, replicate.Config{Replications: replications})
	if err != nil {
		return nil, stats.CI{}, err
	}
	return set.Losses, set.LossCI, nil
}
