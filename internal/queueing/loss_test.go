package queueing

import (
	"math"
	"testing"

	"repro/internal/erlang"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mmnnConfig(n int, lambda, mu float64, seed uint64) Config {
	return Config{
		Servers:  n,
		QueueCap: 0,
		Arrivals: workload.NewPoisson(lambda),
		Service:  stats.NewExponential(mu),
		Horizon:  4000,
		Warmup:   400,
		Seed:     seed,
	}
}

func TestValidate(t *testing.T) {
	good := mmnnConfig(2, 1, 1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.QueueCap = -2 },
		func(c *Config) { c.Arrivals = nil },
		func(c *Config) { c.Service = nil },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Horizon = math.Inf(1) },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Warmup = c.Horizon },
	}
	for i, mutate := range cases {
		c := mmnnConfig(2, 1, 1, 1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Simulate(Config{}); err == nil {
		t.Fatal("empty config simulated")
	}
}

// TestErlangBAgreementMMnn is the core PASTA check: an M/M/n/n simulation's
// request-loss probability must match the Erlang B formula.
func TestErlangBAgreementMMnn(t *testing.T) {
	cases := []struct {
		n      int
		lambda float64
		mu     float64
	}{
		{1, 0.8, 1},
		{3, 2.5, 1},
		{4, 1.52, 1}, // the case-study operating point (rho=1.52)
		{8, 10, 1},   // overload
	}
	for _, c := range cases {
		res, err := Simulate(mmnnConfig(c.n, c.lambda, c.mu, 42))
		if err != nil {
			t.Fatal(err)
		}
		want := erlang.MustB(c.n, c.lambda/c.mu)
		if !res.LossCI.Contains(want) && stats.RelativeError(res.LossProb, want) > 0.08 {
			t.Errorf("M/M/%d/%d at rho=%g: loss %s vs Erlang B %.4f",
				c.n, c.n, c.lambda/c.mu, res.LossCI, want)
		}
		// PASTA: time-blocking ≈ request-blocking.
		if math.Abs(res.TimeBlocked-res.LossProb) > 0.03 {
			t.Errorf("PASTA violated: p_n=%.4f B=%.4f", res.TimeBlocked, res.LossProb)
		}
		// Carried traffic ≈ rho(1-B).
		wantBusy := c.lambda / c.mu * (1 - want)
		if stats.RelativeError(res.MeanBusy, wantBusy) > 0.05 {
			t.Errorf("carried traffic %.3f, want %.3f", res.MeanBusy, wantBusy)
		}
	}
}

// TestInsensitivity verifies the Erlang insensitivity theorem the model
// leans on ("the serving rate ... follows a general steady distribution"):
// deterministic, hyperexponential and Erlang-k service all reproduce
// Erlang B at equal means.
func TestInsensitivity(t *testing.T) {
	const n, rho = 3, 2.0
	want := erlang.MustB(n, rho)
	services := []stats.Distribution{
		stats.Deterministic{Value: 1 / 1.0},
		stats.HyperExpWithSCV(1.0, 4),
		stats.ErlangKWithMean(1.0, 4),
		stats.LogNormal{Mu: -0.5, Sigma: 1}, // mean e^0 = 1
	}
	for _, svc := range services {
		cfg := mmnnConfig(n, rho, 1, 7)
		cfg.Service = svc
		cfg.Horizon = 8000
		cfg.Warmup = 800
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelativeError(res.LossProb, want) > 0.10 && !res.LossCI.Contains(want) {
			t.Errorf("service %s: loss %.4f vs Erlang B %.4f", svc, res.LossProb, want)
		}
	}
}

// TestNonPoissonArrivalsBreakErlangB quantifies the model's exposure to its
// Poisson assumption: bursty MMPP arrivals at the same mean rate must lose
// MORE requests than Erlang B predicts.
func TestNonPoissonArrivalsBreakErlangB(t *testing.T) {
	const n = 3
	meanRate := 2.0
	want := erlang.MustB(n, meanRate)
	cfg := mmnnConfig(n, meanRate, 1, 13)
	cfg.Arrivals = workload.NewMMPP2(8, 0.4, 2, 7.5) // mean (16+3)/9.5 = 2.0
	cfg.Horizon = 8000
	cfg.Warmup = 800
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossProb <= want*1.2 {
		t.Fatalf("bursty arrivals lost %.4f, Erlang B %.4f — expected clearly more", res.LossProb, want)
	}
}

func TestMM1InfiniteQueueResponseTime(t *testing.T) {
	// M/M/1 with rho = 0.5: mean sojourn = 1/(mu - lambda) = 2.
	cfg := Config{
		Servers:  1,
		QueueCap: QueueCapInfinite,
		Arrivals: workload.NewPoisson(0.5),
		Service:  stats.NewExponential(1),
		Horizon:  120000,
		Warmup:   5000,
		Seed:     3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("infinite queue lost %d requests", res.Lost)
	}
	if stats.RelativeError(res.ResponseTimes.Mean(), 2.0) > 0.06 {
		t.Fatalf("mean sojourn %.3f, want 2", res.ResponseTimes.Mean())
	}
	// Utilization = rho.
	if stats.RelativeError(res.Utilization, 0.5) > 0.05 {
		t.Fatalf("utilization %.3f", res.Utilization)
	}
	// Little's law on the queue: Lq = lambda * Wq = 0.5 * (2 - 1) = 0.5.
	if stats.RelativeError(res.QueueLen, 0.5) > 0.12 {
		t.Fatalf("queue length %.3f, want 0.5", res.QueueLen)
	}
}

func TestMM1KFiniteQueue(t *testing.T) {
	// M/M/1/K with K = 3 total slots (1 server + queue cap 2), rho = 1:
	// loss = 1/(K+1) = 0.25.
	cfg := Config{
		Servers:  1,
		QueueCap: 2,
		Arrivals: workload.NewPoisson(1),
		Service:  stats.NewExponential(1),
		Horizon:  30000,
		Warmup:   2000,
		Seed:     5,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelativeError(res.LossProb, 0.25) > 0.06 {
		t.Fatalf("M/M/1/3 loss %.4f, want 0.25", res.LossProb)
	}
}

func TestThroughputConservation(t *testing.T) {
	// Served + Lost == Arrivals (minus at most the in-flight tail).
	res, err := Simulate(mmnnConfig(4, 3, 1, 21))
	if err != nil {
		t.Fatal(err)
	}
	diff := res.Arrivals - res.Served - res.Lost
	if diff < 0 || diff > int64(4+1) {
		t.Fatalf("conservation violated: arrivals=%d served=%d lost=%d",
			res.Arrivals, res.Served, res.Lost)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Simulate(mmnnConfig(3, 2, 1, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(mmnnConfig(3, 2, 1, 99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Served != b.Served || a.Lost != b.Lost {
		t.Fatal("identical seeds diverged")
	}
	c, err := Simulate(mmnnConfig(3, 2, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals == c.Arrivals && a.Served == c.Served && a.Lost == c.Lost {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestReplications(t *testing.T) {
	cfg := mmnnConfig(3, 2, 1, 7)
	cfg.Horizon = 1500
	cfg.Warmup = 150
	losses, ci, err := Replications(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 8 {
		t.Fatalf("got %d replications", len(losses))
	}
	want := erlang.MustB(3, 2)
	if !ci.Contains(want) && stats.RelativeError(ci.Point, want) > 0.1 {
		t.Fatalf("replication CI %s misses Erlang B %.4f", ci, want)
	}
	if _, _, err := Replications(cfg, 0); err == nil {
		t.Fatal("zero replications accepted")
	}
}

func TestZeroArrivalWindow(t *testing.T) {
	// An arrival process slower than the horizon produces an empty run
	// without errors.
	cfg := Config{
		Servers:  1,
		Arrivals: &workload.Renewal{Inter: stats.Deterministic{Value: 1e9}},
		Service:  stats.NewExponential(1),
		Horizon:  10,
		Warmup:   1,
		Seed:     1,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 0 || res.LossProb != 0 {
		t.Fatalf("unexpected activity: %+v", res)
	}
}

func TestTimeBlockingStableAcrossWindows(t *testing.T) {
	// Steady-state check behind the PASTA comparisons: the blocking
	// probability measured over disjoint halves of a long run agrees,
	// so the single-run estimates used throughout the suite are not
	// transient artifacts.
	base := Config{
		Servers:  4,
		Arrivals: workload.NewPoisson(3),
		Service:  stats.HyperExpWithSCV(1, 6),
		Horizon:  20000,
		Warmup:   2000,
		Seed:     61,
	}
	full, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	half := base
	half.Horizon = 11000
	first, err := Simulate(half)
	if err != nil {
		t.Fatal(err)
	}
	if full.LossProb <= 0 || first.LossProb <= 0 {
		t.Fatal("no losses; raise the load")
	}
	if stats.RelativeError(first.LossProb, full.LossProb) > 0.2 {
		t.Fatalf("window losses diverge: %.4f vs %.4f", first.LossProb, full.LossProb)
	}
}
