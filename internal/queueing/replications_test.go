package queueing

import (
	"context"
	"errors"
	"testing"

	"repro/internal/replicate"
	"repro/internal/workload"
)

// TestRunReplicationsDeterministicAcrossWorkers: the merged study is
// bit-identical for workers 1 and 4, matches the serial wrapper, and
// replication 0 reproduces a plain Simulate with the base seed.
func TestRunReplicationsDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	cfg := mmnnConfig(3, 2, 1, 7)
	cfg.Horizon = 1500
	cfg.Warmup = 150
	single, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialLosses, serialCI, err := Replications(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		set, err := RunReplications(ctx, cfg, replicate.Config{Replications: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(set.Results) != 8 || len(set.Losses) != 8 {
			t.Fatalf("workers=%d: %d results, %d losses", workers, len(set.Results), len(set.Losses))
		}
		r0 := set.Results[0]
		if r0.Arrivals != single.Arrivals || r0.Served != single.Served || r0.Lost != single.Lost {
			t.Fatalf("workers=%d: replication 0 diverged from plain Simulate", workers)
		}
		for i := range serialLosses {
			if set.Losses[i] != serialLosses[i] {
				t.Fatalf("workers=%d: loss %d = %v, serial wrapper %v",
					workers, i, set.Losses[i], serialLosses[i])
			}
		}
		if set.LossCI != serialCI {
			t.Fatalf("workers=%d: CI %+v, serial wrapper %+v", workers, set.LossCI, serialCI)
		}
	}
}

// TestRunReplicationsClonesStatefulArrivals: a bursty MMPP2 config yields
// identical studies on repeated calls — per-replication clones keep the
// configured process pristine.
func TestRunReplicationsClonesStatefulArrivals(t *testing.T) {
	ctx := context.Background()
	cfg := mmnnConfig(3, 2, 1, 13)
	cfg.Arrivals = workload.NewMMPP2(8, 0.4, 2, 7.5)
	cfg.Horizon = 1500
	cfg.Warmup = 150
	first, err := RunReplications(ctx, cfg, replicate.Config{Replications: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunReplications(ctx, cfg, replicate.Config{Replications: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Losses {
		if first.Losses[i] != second.Losses[i] {
			t.Fatalf("replication %d diverged across calls: %v vs %v (arrival state leaked)",
				i, first.Losses[i], second.Losses[i])
		}
	}
}

func TestRunReplicationsEarlyStop(t *testing.T) {
	cfg := mmnnConfig(3, 2, 1, 7)
	cfg.Horizon = 1500
	cfg.Warmup = 150
	set, err := RunReplications(context.Background(), cfg,
		replicate.Config{Replications: 32, Precision: 0.5, MinReplications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !set.EarlyStopped || len(set.Results) >= 32 {
		t.Fatalf("early=%v n=%d, want an early stop", set.EarlyStopped, len(set.Results))
	}
	if set.LossCI.RelativeHalfWidth() > 0.5 {
		t.Fatalf("stopped with CI %+v above the precision target", set.LossCI)
	}

	if _, err := RunReplications(context.Background(), cfg, replicate.Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("zero replications: %v", err)
	}
	bad := cfg
	bad.Servers = 0
	if _, err := RunReplications(context.Background(), bad, replicate.Config{Replications: 2}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("invalid sim config: %v", err)
	}
}
