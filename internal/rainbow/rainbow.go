// Package rainbow implements the on-demand resource allocation policies of
// the authors' Rainbow prototype ([22][23] of the paper) for the cluster
// simulator: how a consolidated host's physical resources are divided among
// the VMs it hosts.
//
// The utility analytic model assumes ideal resource flowing — "whenever
// there is a request to be served, there are no servers being idle"
// (assumption 4). In the simulator that ideal is the default (no policy:
// one shared processor-sharing station per host resource). The policies
// here are the realistic alternatives the model is meant to bound:
//
//   - Static: fixed capacity shares per VM (plain partitioning, no
//     flowing) — the baseline consolidation without Rainbow;
//   - Proportional: periodic demand-driven reallocation with a
//     configurable period and reallocation overhead — a faithful sketch of
//     Rainbow's multi-tiered on-demand scheduling [23];
//   - Priority: Rainbow's service-priority scheme [22], which satisfies
//     higher-priority VMs' demand first and gives lower priorities the
//     remainder.
//
// All policies satisfy the cluster.Partition interface. Section III-B.4's
// first application scores any such policy against the model's ideal-
// flowing bound; see the allocatoreval example and the appA experiment.
package rainbow

import (
	"fmt"
	"math"
)

// Static divides capacity in fixed shares, never reacting to demand.
type Static struct {
	// Weights are per-VM relative weights; nil means equal shares. They
	// are normalized to sum to 1.
	Weights []float64
}

// Shares returns the fixed normalized weights, ignoring backlogs.
func (s Static) Shares(backlogs []float64) []float64 {
	n := len(backlogs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if len(s.Weights) != n {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	total := 0.0
	for _, w := range s.Weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i, w := range s.Weights {
		if w > 0 {
			out[i] = w / total
		}
	}
	return out
}

// Period is 0: static shares never change.
func (s Static) Period() float64 { return 0 }

// Overhead is 0: no reallocation machinery runs.
func (s Static) Overhead() float64 { return 0 }

func (s Static) String() string { return "static" }

// Proportional reallocates capacity every RebalancePeriod seconds in
// proportion to each VM's outstanding work, with MinShare guaranteeing
// every VM a floor (Rainbow never starves a service) and Cost modelling
// the fraction of host capacity the reallocation machinery consumes.
type Proportional struct {
	RebalancePeriod float64 // seconds between reallocations; must be > 0
	MinShare        float64 // per-VM guaranteed share in [0, 1/n]
	Cost            float64 // capacity fraction lost to the machinery, [0, 1)
}

// Shares divides capacity proportionally to backlog above the MinShare
// floors. With zero total backlog it falls back to equal shares.
func (p Proportional) Shares(backlogs []float64) []float64 {
	n := len(backlogs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	floor := p.MinShare
	if floor < 0 {
		floor = 0
	}
	if floor > 1/float64(n) {
		floor = 1 / float64(n)
	}
	remaining := 1 - floor*float64(n)
	total := 0.0
	for _, b := range backlogs {
		if b > 0 {
			total += b
		}
	}
	for i, b := range backlogs {
		out[i] = floor
		if total > 0 && b > 0 {
			out[i] += remaining * b / total
		} else if total == 0 {
			out[i] += remaining / float64(n)
		}
	}
	return out
}

// Period reports the rebalancing interval (at least a small positive value
// to keep the simulator's timer sane).
func (p Proportional) Period() float64 {
	if p.RebalancePeriod <= 0 || math.IsNaN(p.RebalancePeriod) {
		return 1
	}
	return p.RebalancePeriod
}

// Overhead reports the capacity fraction lost, clamped to [0, 0.9].
func (p Proportional) Overhead() float64 {
	if p.Cost < 0 || math.IsNaN(p.Cost) {
		return 0
	}
	if p.Cost > 0.9 {
		return 0.9
	}
	return p.Cost
}

func (p Proportional) String() string {
	return fmt.Sprintf("proportional(T=%g,cost=%g)", p.Period(), p.Overhead())
}

// Priority implements the service-priority resource scheduling scheme of
// Rainbow [22]: VMs are served in priority order, each receiving capacity
// proportional to its demand until capacity runs out; leftovers flow to
// lower priorities.
type Priority struct {
	// Priorities holds one rank per VM; lower value = higher priority.
	// Missing entries (short slice) default to the lowest priority.
	Priorities []int

	// DemandCap is the share a single VM may claim per round, in (0, 1];
	// zero means 1 (a high-priority VM may take everything, the strictest
	// reading of [22]).
	DemandCap float64

	// RebalancePeriod is the reallocation interval; zero means 1 s.
	RebalancePeriod float64

	// Cost is the capacity fraction lost to the machinery.
	Cost float64
}

// Shares allocates capacity by priority rank: within a rank, proportional
// to backlog; each VM capped at DemandCap; leftover flows to lower ranks,
// and any final remainder is spread equally (idle capacity still flows —
// Rainbow's on-demand property).
func (p Priority) Shares(backlogs []float64) []float64 {
	n := len(backlogs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	cap := p.DemandCap
	if cap <= 0 || cap > 1 {
		cap = 1
	}
	rank := func(i int) int {
		if i < len(p.Priorities) {
			return p.Priorities[i]
		}
		return math.MaxInt32
	}
	// Distinct ranks ascending.
	ranks := map[int][]int{}
	var order []int
	for i := 0; i < n; i++ {
		rk := rank(i)
		if _, ok := ranks[rk]; !ok {
			order = append(order, rk)
		}
		ranks[rk] = append(ranks[rk], i)
	}
	// Insertion sort of the small rank list.
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && order[k] < order[k-1]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	remaining := 1.0
	for _, rk := range order {
		members := ranks[rk]
		total := 0.0
		for _, i := range members {
			if backlogs[i] > 0 {
				total += backlogs[i]
			}
		}
		if total == 0 || remaining <= 0 {
			continue
		}
		granted := 0.0
		for _, i := range members {
			if backlogs[i] <= 0 {
				continue
			}
			want := remaining * backlogs[i] / total
			if want > cap {
				want = cap
			}
			out[i] = want
			granted += want
		}
		remaining -= granted
	}
	if remaining > 1e-12 {
		for i := range out {
			out[i] += remaining / float64(n)
		}
	}
	return out
}

// Period reports the reallocation interval.
func (p Priority) Period() float64 {
	if p.RebalancePeriod <= 0 || math.IsNaN(p.RebalancePeriod) {
		return 1
	}
	return p.RebalancePeriod
}

// Overhead reports the capacity fraction lost, clamped like Proportional.
func (p Priority) Overhead() float64 {
	return Proportional{Cost: p.Cost}.Overhead()
}

func (p Priority) String() string {
	return fmt.Sprintf("priority(T=%g,cost=%g)", p.Period(), p.Overhead())
}
