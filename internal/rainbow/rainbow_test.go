package rainbow

import (
	"math"
	"testing"
	"testing/quick"
)

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestStaticEqualShares(t *testing.T) {
	s := Static{}
	shares := s.Shares(make([]float64, 4))
	for _, v := range shares {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("shares = %v", shares)
		}
	}
	if s.Period() != 0 || s.Overhead() != 0 || s.String() != "static" {
		t.Fatal("static metadata wrong")
	}
}

func TestStaticWeights(t *testing.T) {
	s := Static{Weights: []float64{3, 1}}
	shares := s.Shares(make([]float64, 2))
	if math.Abs(shares[0]-0.75) > 1e-12 || math.Abs(shares[1]-0.25) > 1e-12 {
		t.Fatalf("shares = %v", shares)
	}
	// Wrong-length weights fall back to equal.
	shares = s.Shares(make([]float64, 3))
	for _, v := range shares {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("fallback shares = %v", shares)
		}
	}
	// All-zero weights fall back too.
	z := Static{Weights: []float64{0, 0}}
	shares = z.Shares(make([]float64, 2))
	if math.Abs(shares[0]-0.5) > 1e-12 {
		t.Fatalf("zero-weight shares = %v", shares)
	}
}

func TestStaticEmpty(t *testing.T) {
	if got := (Static{}).Shares(nil); len(got) != 0 {
		t.Fatal("empty backlogs should yield empty shares")
	}
}

func TestProportionalTracksBacklog(t *testing.T) {
	p := Proportional{RebalancePeriod: 1}
	shares := p.Shares([]float64{30, 10})
	if math.Abs(shares[0]-0.75) > 1e-12 || math.Abs(shares[1]-0.25) > 1e-12 {
		t.Fatalf("shares = %v", shares)
	}
	// Zero backlog: equal split.
	shares = p.Shares([]float64{0, 0})
	if math.Abs(shares[0]-0.5) > 1e-12 {
		t.Fatalf("idle shares = %v", shares)
	}
}

func TestProportionalMinShare(t *testing.T) {
	p := Proportional{RebalancePeriod: 1, MinShare: 0.2}
	shares := p.Shares([]float64{100, 0})
	if shares[1] < 0.2-1e-12 {
		t.Fatalf("floor violated: %v", shares)
	}
	if math.Abs(sum(shares)-1) > 1e-12 {
		t.Fatalf("shares sum %v", sum(shares))
	}
	// MinShare above 1/n clamps.
	p2 := Proportional{RebalancePeriod: 1, MinShare: 0.9}
	shares = p2.Shares([]float64{1, 1, 1})
	if math.Abs(sum(shares)-1) > 1e-9 {
		t.Fatalf("clamped shares sum %v", sum(shares))
	}
}

func TestProportionalDefaults(t *testing.T) {
	p := Proportional{}
	if p.Period() != 1 {
		t.Fatalf("default period = %g", p.Period())
	}
	if p.Overhead() != 0 {
		t.Fatalf("default overhead = %g", p.Overhead())
	}
	if (Proportional{Cost: 2}).Overhead() != 0.9 {
		t.Fatal("overhead not clamped")
	}
	if (Proportional{Cost: -1}).Overhead() != 0 {
		t.Fatal("negative cost not clamped")
	}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

func TestPriorityOrdering(t *testing.T) {
	p := Priority{Priorities: []int{0, 1}, DemandCap: 0.8}
	// Both backlogged: high priority takes its cap, low gets the rest.
	shares := p.Shares([]float64{10, 10})
	if math.Abs(shares[0]-0.8) > 1e-12 {
		t.Fatalf("high priority share = %v", shares)
	}
	if math.Abs(shares[1]-0.2) > 1e-12 {
		t.Fatalf("low priority share = %v", shares)
	}
}

func TestPriorityIdleCapacityFlows(t *testing.T) {
	p := Priority{Priorities: []int{0, 1}}
	// Only the low-priority VM is backlogged: it gets (nearly) everything.
	shares := p.Shares([]float64{0, 10})
	if shares[1] < 0.9 {
		t.Fatalf("idle capacity did not flow: %v", shares)
	}
	// Nobody backlogged: spread equally.
	shares = p.Shares([]float64{0, 0})
	if math.Abs(shares[0]-0.5) > 1e-9 || math.Abs(shares[1]-0.5) > 1e-9 {
		t.Fatalf("idle spread = %v", shares)
	}
}

func TestPrioritySameRankProportional(t *testing.T) {
	p := Priority{Priorities: []int{0, 0}}
	shares := p.Shares([]float64{30, 10})
	if math.Abs(shares[0]-0.75) > 1e-9 || math.Abs(shares[1]-0.25) > 1e-9 {
		t.Fatalf("same-rank shares = %v", shares)
	}
}

func TestPriorityMissingRanksDefaultLowest(t *testing.T) {
	p := Priority{Priorities: []int{0}} // VM 1 has no explicit rank
	shares := p.Shares([]float64{10, 10})
	if shares[0] < shares[1] {
		t.Fatalf("explicit rank should win: %v", shares)
	}
}

func TestPriorityDefaults(t *testing.T) {
	p := Priority{}
	if p.Period() != 1 {
		t.Fatalf("default period = %g", p.Period())
	}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

// Property: every policy returns non-negative shares summing to <= 1 (+eps)
// for arbitrary backlogs.
func TestSharesInvariantProperty(t *testing.T) {
	policies := []interface {
		Shares([]float64) []float64
	}{
		Static{},
		Static{Weights: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		Proportional{RebalancePeriod: 1, MinShare: 0.05},
		Priority{Priorities: []int{2, 0, 1}, DemandCap: 0.5},
	}
	f := func(raw []uint16) bool {
		backlogs := make([]float64, len(raw))
		for i, v := range raw {
			backlogs[i] = float64(v)
		}
		for _, p := range policies {
			shares := p.Shares(backlogs)
			if len(shares) != len(backlogs) {
				return false
			}
			total := 0.0
			for _, s := range shares {
				if s < -1e-12 || math.IsNaN(s) {
					return false
				}
				total += s
			}
			if total > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
