package replicate

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/pool"
)

func TestNegativeWorkersRejected(t *testing.T) {
	_, err := Run(context.Background(),
		Config{Replications: 2, Workers: -3},
		func(rep int, seed uint64) (uint64, error) { return seed, nil }, nil)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Workers=-3: err = %v, want ErrInvalidConfig", err)
	}
}

// TestSharedPoolIdenticalResults pins the one-budget property: routing a
// study through a shared pool (of any size) changes only scheduling, never
// the merged outputs.
func TestSharedPoolIdenticalResults(t *testing.T) {
	sim := func(rep int, seed uint64) (uint64, error) { return seed * 3, nil }
	metric := func(v uint64) float64 { return float64(v % 7) }

	base, err := Run(context.Background(),
		Config{Replications: 8, Workers: 1, Seed: 11}, sim, metric)
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{1, 2, 8} {
		p, err := pool.New(slots)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(context.Background(),
			Config{Replications: 8, Seed: 11, Pool: p}, sim, metric)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Outputs, base.Outputs) || !reflect.DeepEqual(got.Metrics, base.Metrics) {
			t.Fatalf("pool size %d changed the merged outputs", slots)
		}
		if p.Units() != 8 {
			t.Fatalf("pool size %d admitted %d units, want 8", slots, p.Units())
		}
		if p.Peak() > slots {
			t.Fatalf("pool size %d saw peak occupancy %d", slots, p.Peak())
		}
	}
}
