// Package replicate is the shared parallel replication engine behind the
// independent-replications method every simulator in this repository uses.
// It runs R statistically independent replications of an arbitrary
// simulation function across a bounded worker pool, with:
//
//   - deterministic seed derivation: replication r runs with seed base+r, so
//     replication 0 of an R=1 study reproduces a plain single run bit for
//     bit;
//   - order-independent output: results are merged in replication-index
//     order, so the merged output is identical for any worker count;
//   - context-based cancellation and timeouts, returning the completed
//     contiguous prefix of replications alongside ctx.Err();
//   - optional CI-driven early stopping: once the confidence interval of a
//     caller-chosen scalar metric over the first k replications is
//     relatively tighter than a requested precision, replications beyond k
//     are cancelled and discarded.
//
// Early stopping is evaluated on contiguous prefixes in increasing length
// order, never on whichever subset happened to finish first. The stopping
// point is therefore a pure function of the replication outputs — running
// with 1 worker or NumCPU workers stops at the same k and returns the same
// bytes.
package replicate

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/stats"
)

// ErrInvalidConfig reports an unusable engine configuration.
var ErrInvalidConfig = errors.New("replicate: invalid config")

// Config controls one replication study.
type Config struct {
	// Replications is the number of independent replications R (required,
	// >= 1). With early stopping enabled it is the maximum.
	Replications int

	// Workers bounds the number of concurrently running replications.
	// Zero selects runtime.GOMAXPROCS(0) (or, with a shared Pool, the
	// replication count — the pool is then the binding limit). Negative
	// values are rejected. The worker count never affects results, only
	// wall-clock time.
	Workers int

	// Pool, when non-nil, is a shared concurrency budget: each replication
	// holds one pool slot for the duration of its sim call, so studies
	// running concurrently (e.g. many sweep points) share one bound instead
	// of multiplying their worker counts. Slots are held only while sim
	// executes — never while waiting on other work — so nesting cannot
	// deadlock.
	Pool *pool.Pool

	// Seed is the base seed; replication r runs with Seed+r.
	Seed uint64

	// Precision enables CI-driven early stopping when positive: stop after
	// the smallest prefix of replications whose metric confidence interval
	// has RelativeHalfWidth <= Precision. Zero runs all R replications.
	Precision float64

	// Confidence is the CI level for early stopping (default 0.95).
	Confidence float64

	// MinReplications is the smallest prefix early stopping may accept
	// (default 3, floor 2 — a CI needs at least two observations).
	MinReplications int

	// Obs, when non-nil, receives engine metrics: a histogram of
	// per-replication wall times (replicate/rep_wall_seconds), counters
	// for completed and failed replications, a worker-occupancy
	// high-water gauge, and the early-stop round when one triggers. All
	// updates happen at replication granularity — never inside the
	// simulated hot path.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		if c.Pool != nil {
			// The shared pool is the real limit; let every replication
			// queue on it so free slots are never left idle.
			c.Workers = c.Replications
		} else {
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	if c.Workers > c.Replications {
		c.Workers = c.Replications
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.MinReplications == 0 {
		c.MinReplications = 3
	}
	if c.MinReplications < 2 {
		c.MinReplications = 2
	}
	if c.MinReplications > c.Replications {
		c.MinReplications = c.Replications
	}
	return c
}

func (c Config) validate() error {
	if c.Replications <= 0 {
		return fmt.Errorf("%w: replications=%d", ErrInvalidConfig, c.Replications)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers=%d (negative; 0 selects GOMAXPROCS)", ErrInvalidConfig, c.Workers)
	}
	if c.Precision < 0 {
		return fmt.Errorf("%w: precision=%g", ErrInvalidConfig, c.Precision)
	}
	if c.Confidence < 0 || c.Confidence >= 1 {
		return fmt.Errorf("%w: confidence=%g", ErrInvalidConfig, c.Confidence)
	}
	return nil
}

// Result carries the merged outputs of a replication study.
type Result[T any] struct {
	// Outputs holds one entry per completed replication, in replication
	// order (Outputs[i] ran with seed base+i).
	Outputs []T

	// Metrics holds the early-stop metric per replication (nil when no
	// metric function was supplied).
	Metrics []float64

	// CI is the Student-t confidence interval over Metrics (zero value
	// when no metric function was supplied).
	CI stats.CI

	// EarlyStopped reports whether the precision target cut the study
	// short of Requested replications.
	EarlyStopped bool

	// Requested is the configured replication count R.
	Requested int
}

// outcome is one replication's report back to the collector.
type outcome[T any] struct {
	rep int
	out T
	err error
}

// Run executes the study. sim runs one replication — it receives the
// replication index and its derived seed and must be safe to call
// concurrently (clone any shared mutable inputs). metric extracts the
// early-stop scalar from one output; pass nil to disable early stopping.
//
// On a simulation error the engine stops launching work, waits for
// in-flight replications, and returns the error of the lowest-index failed
// replication (matching what a serial loop would have hit first). On
// context cancellation it returns the completed contiguous prefix together
// with ctx.Err().
func Run[T any](ctx context.Context, cfg Config, sim func(rep int, seed uint64) (T, error), metric func(T) float64) (*Result[T], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sim == nil {
		return nil, fmt.Errorf("%w: nil sim function", ErrInvalidConfig)
	}
	cfg = cfg.withDefaults()
	R := cfg.Replications

	var em *engineMetrics
	if cfg.Obs != nil {
		em = newEngineMetrics(cfg.Obs)
		em.workers.Set(float64(cfg.Workers))
	}

	var (
		mu      sync.Mutex
		next    int  // next replication index to hand out
		stopped bool // set on early stop, error, or cancellation
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if stopped || next >= R {
			return 0, false
		}
		rep := next
		next++
		return rep, true
	}
	halt := func() {
		mu.Lock()
		stopped = true
		mu.Unlock()
	}

	// Buffered to R so workers never block on send, even after the
	// collector stops reading.
	results := make(chan outcome[T], R)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				rep, ok := claim()
				if !ok {
					return
				}
				if err := cfg.Pool.Acquire(ctx); err != nil {
					// Cancellation while queueing for a slot: stop like a
					// worker observing ctx.Err() at the loop top.
					return
				}
				var start time.Time
				if em != nil {
					em.beginRep()
					start = time.Now()
				}
				out, err := sim(rep, cfg.Seed+uint64(rep))
				if em != nil {
					em.endRep(time.Since(start).Seconds(), err)
				}
				cfg.Pool.Release()
				results <- outcome[T]{rep: rep, out: out, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var (
		outputs  = make([]T, R)
		done     = make([]bool, R)
		metrics  []float64
		frontier int // replications 0..frontier-1 all completed
		stopAt   = -1
		firstErr error
		errRep   = R
	)
	if metric != nil {
		metrics = make([]float64, 0, R)
	}
	useEarlyStop := metric != nil && cfg.Precision > 0

	for oc := range results {
		if oc.err != nil {
			if oc.rep < errRep {
				errRep = oc.rep
				firstErr = fmt.Errorf("replication %d: %w", oc.rep, oc.err)
			}
			halt()
			continue
		}
		outputs[oc.rep] = oc.out
		done[oc.rep] = true
		// Advance the contiguous frontier and evaluate the stopping rule at
		// every new prefix length, smallest first — the stopping index is
		// then independent of completion order.
		for frontier < R && done[frontier] {
			if metric != nil {
				metrics = append(metrics, metric(outputs[frontier]))
			}
			frontier++
			if useEarlyStop && stopAt < 0 && frontier >= cfg.MinReplications {
				if prefixCI(metrics[:frontier], cfg.Confidence).RelativeHalfWidth() <= cfg.Precision {
					stopAt = frontier
					if em != nil {
						em.stopRound.Set(float64(stopAt))
					}
					halt()
				}
			}
		}
		if ctx.Err() != nil {
			halt()
		}
	}

	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result[T]{Requested: R}
	n := frontier
	if stopAt >= 0 && stopAt < R {
		n = stopAt
		res.EarlyStopped = true
	}
	res.Outputs = outputs[:n:n]
	if metric != nil {
		res.Metrics = metrics[:n:n]
		res.CI = prefixCI(res.Metrics, cfg.Confidence)
	}
	if err := ctx.Err(); err != nil && n < R && !res.EarlyStopped {
		return res, err
	}
	return res, nil
}

// engineMetrics bundles the registry handles the engine updates while a
// study runs.
type engineMetrics struct {
	wall       *obs.Histogram // per-replication wall time, seconds
	completed  *obs.Counter
	failed     *obs.Counter
	active     *obs.Gauge // currently running replications
	peakActive *obs.Gauge // worker-occupancy high-water mark
	workers    *obs.Gauge // configured worker count
	stopRound  *obs.Gauge // replication count at early stop (0 = none)
}

// repWallBounds buckets per-replication wall times from sub-millisecond
// smoke runs up to minutes-long studies.
var repWallBounds = []float64{1e-3, 1e-2, 0.1, 0.5, 1, 5, 15, 60, 300}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	return &engineMetrics{
		wall:       r.Histogram("replicate/rep_wall_seconds", repWallBounds),
		completed:  r.Counter("replicate/reps_completed"),
		failed:     r.Counter("replicate/reps_failed"),
		active:     r.Gauge("replicate/active_workers"),
		peakActive: r.Gauge("replicate/peak_active_workers"),
		workers:    r.Gauge("replicate/configured_workers"),
		stopRound:  r.Gauge("replicate/early_stop_round"),
	}
}

func (em *engineMetrics) beginRep() {
	em.active.Add(1)
	em.peakActive.SetMax(em.active.Load())
}

func (em *engineMetrics) endRep(wallSeconds float64, err error) {
	em.active.Add(-1)
	em.wall.Observe(wallSeconds)
	if err != nil {
		em.failed.Inc()
	} else {
		em.completed.Inc()
	}
}

// prefixCI computes the Student-t mean CI over the given metric prefix.
func prefixCI(metrics []float64, confidence float64) stats.CI {
	var acc stats.Accumulator
	for _, m := range metrics {
		acc.Add(m)
	}
	return acc.MeanCI(confidence)
}
