package replicate

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// fakeSim is a deterministic stand-in for a simulator: the output depends
// only on the seed, never on timing or worker identity.
func fakeSim(_ int, seed uint64) (float64, error) {
	// A cheap splitmix64-style scramble mapped into [0, 1).
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z%1_000_003) / 1_000_003, nil
}

func identity(x float64) float64 { return x }

func TestValidate(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Replications: 0}, fakeSim, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("zero replications: %v", err)
	}
	if _, err := Run(ctx, Config{Replications: 2, Precision: -1}, fakeSim, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("negative precision: %v", err)
	}
	if _, err := Run(ctx, Config{Replications: 2, Confidence: 1}, fakeSim, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("confidence 1: %v", err)
	}
	if _, err := Run[float64](ctx, Config{Replications: 2}, nil, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil sim: %v", err)
	}
}

// TestDeterminismAcrossWorkers is the engine's core guarantee: identical
// seeds produce bit-identical merged results for any worker count.
func TestDeterminismAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	base := Config{Replications: 16, Seed: 42}
	var ref *Result[float64]
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(ctx, cfg, fakeSim, identity)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outputs) != 16 {
			t.Fatalf("workers=%d: %d outputs", workers, len(res.Outputs))
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range ref.Outputs {
			if res.Outputs[i] != ref.Outputs[i] || res.Metrics[i] != ref.Metrics[i] {
				t.Fatalf("workers=%d: replication %d diverged: %v vs %v",
					workers, i, res.Outputs[i], ref.Outputs[i])
			}
		}
		if res.CI != ref.CI {
			t.Fatalf("workers=%d: CI diverged: %+v vs %+v", workers, res.CI, ref.CI)
		}
	}
}

// TestSeedDerivation pins replication r to seed base+r in index order.
func TestSeedDerivation(t *testing.T) {
	res, err := Run(context.Background(), Config{Replications: 5, Seed: 100, Workers: 3},
		func(_ int, seed uint64) (uint64, error) { return seed, nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Outputs {
		if s != 100+uint64(i) {
			t.Fatalf("replication %d ran with seed %d", i, s)
		}
	}
	if res.Metrics != nil || res.CI.Confidence != 0 {
		t.Fatalf("metricless run produced metrics %v CI %+v", res.Metrics, res.CI)
	}
}

// TestEarlyStopHonorsPrecision: a constant metric has zero variance, so the
// study must stop at MinReplications; tightening the precision to
// impossible levels must disable stopping for a noisy metric.
func TestEarlyStopHonorsPrecision(t *testing.T) {
	ctx := context.Background()
	constant := func(_ int, _ uint64) (float64, error) { return 0.25, nil }
	res, err := Run(ctx, Config{Replications: 64, Precision: 0.05, Workers: 4}, constant, identity)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("constant metric did not early-stop")
	}
	if len(res.Outputs) != 3 { // default MinReplications
		t.Fatalf("stopped after %d replications, want 3", len(res.Outputs))
	}
	if res.CI.Point != 0.25 || res.CI.RelativeHalfWidth() > 0.05 {
		t.Fatalf("CI %+v", res.CI)
	}

	// The stopping point must respect a raised floor.
	res, err = Run(ctx, Config{Replications: 64, Precision: 0.05, MinReplications: 7}, constant, identity)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 7 {
		t.Fatalf("stopped after %d replications, want 7", len(res.Outputs))
	}

	// An unreachable precision must run the study to completion.
	res, err = Run(ctx, Config{Replications: 12, Precision: 1e-12, Workers: 4}, fakeSim, identity)
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyStopped || len(res.Outputs) != 12 {
		t.Fatalf("early=%v n=%d, want full 12", res.EarlyStopped, len(res.Outputs))
	}
}

// TestEarlyStopDeterministicAcrossWorkers: the stopping index is a prefix
// property, so parallel runs stop exactly where the serial run does.
func TestEarlyStopDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	// Metric with decaying noise: early replications are noisy, later ones
	// nearly constant, so the stopping index is somewhere in the middle.
	sim := func(rep int, seed uint64) (float64, error) {
		v, _ := fakeSim(rep, seed)
		return 1 + (v-0.5)/(1+float64(rep)*float64(rep)), nil
	}
	var ref *Result[float64]
	for _, workers := range []int{1, 4} {
		res, err := Run(ctx, Config{Replications: 40, Seed: 7, Precision: 0.02, Workers: workers}, sim, identity)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			if !res.EarlyStopped || len(res.Outputs) == 40 {
				t.Fatalf("test needs a mid-study stop, got early=%v n=%d", res.EarlyStopped, len(res.Outputs))
			}
			continue
		}
		if len(res.Outputs) != len(ref.Outputs) || res.CI != ref.CI {
			t.Fatalf("workers=%d stopped at %d (CI %+v), serial stopped at %d (CI %+v)",
				workers, len(res.Outputs), res.CI, len(ref.Outputs), ref.CI)
		}
	}
}

// TestContextCancellation: a cancelled study returns promptly with the
// completed prefix and ctx.Err(), and leaks no goroutines.
func TestContextCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	release := make(chan struct{})
	sim := func(rep int, seed uint64) (float64, error) {
		if calls.Add(1) == 3 {
			cancel()
		} else if rep > 0 {
			<-release // block until cancellation is visible
		}
		return float64(rep), nil
	}
	done := make(chan struct{})
	var res *Result[float64]
	var err error
	go func() {
		res, err = Run(ctx, Config{Replications: 100, Workers: 2}, sim, identity)
		close(done)
	}()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancel never fired")
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Outputs) >= 100 {
		t.Fatalf("expected a partial prefix, got %+v", res)
	}
	for i, v := range res.Outputs {
		if v != float64(i) {
			t.Fatalf("partial prefix not contiguous at %d: %v", i, v)
		}
	}
	// All workers must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestTimeout: context deadlines behave like cancellation.
func TestTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sim := func(rep int, _ uint64) (float64, error) {
		if rep > 1 {
			<-ctx.Done()
		}
		return float64(rep), nil
	}
	res, err := Run(ctx, Config{Replications: 50, Workers: 2}, sim, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if res == nil || len(res.Outputs) == 50 {
		t.Fatal("expected partial results")
	}
}

// TestErrorPropagation: the reported failure is the lowest-index error, the
// same one a serial loop hits first.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	sim := func(rep int, _ uint64) (float64, error) {
		if rep == 2 || rep == 5 {
			return 0, boom
		}
		return float64(rep), nil
	}
	_, err := Run(context.Background(), Config{Replications: 10, Workers: 4}, sim, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "replication 2") {
		t.Fatalf("error names the wrong replication: %v", err)
	}
}

// TestCIQuality sanity-checks the interval against known sample statistics.
func TestCIQuality(t *testing.T) {
	res, err := Run(context.Background(), Config{Replications: 30, Seed: 9, Workers: 4}, fakeSim, identity)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Mean(res.Metrics)
	if math.Abs(res.CI.Point-want) > 1e-12 {
		t.Fatalf("CI point %v, sample mean %v", res.CI.Point, want)
	}
	if res.CI.HalfWidth() <= 0 || !res.CI.Contains(want) {
		t.Fatalf("degenerate CI %+v", res.CI)
	}
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Replications: 12, Workers: 4, Obs: reg}
	if _, err := Run(context.Background(), cfg, fakeSim, identity); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["replicate/reps_completed"]; got != 12 {
		t.Fatalf("completed = %d, want 12", got)
	}
	if got := s.Counters["replicate/reps_failed"]; got != 0 {
		t.Fatalf("failed = %d, want 0", got)
	}
	wall := s.Histograms["replicate/rep_wall_seconds"]
	if wall.Count != 12 {
		t.Fatalf("wall-time observations = %d, want 12", wall.Count)
	}
	if got := s.Gauges["replicate/configured_workers"]; got != 4 {
		t.Fatalf("configured workers = %g, want 4", got)
	}
	if peak := s.Gauges["replicate/peak_active_workers"]; peak < 1 || peak > 4 {
		t.Fatalf("peak active workers = %g, want within [1, 4]", peak)
	}
	if got := s.Gauges["replicate/active_workers"]; got != 0 {
		t.Fatalf("active workers after Run = %g, want 0", got)
	}
	if got := s.Gauges["replicate/early_stop_round"]; got != 0 {
		t.Fatalf("early stop round = %g, want 0 (no early stop)", got)
	}
}

func TestEngineMetricsEarlyStopAndFailure(t *testing.T) {
	reg := obs.NewRegistry()
	// Constant metric: the CI collapses at MinReplications.
	constSim := func(int, uint64) (float64, error) { return 1, nil }
	res, err := Run(context.Background(),
		Config{Replications: 50, Workers: 1, Precision: 0.01, Obs: reg},
		constSim, identity)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped {
		t.Fatal("expected early stop")
	}
	if got := reg.Snapshot().Gauges["replicate/early_stop_round"]; got != float64(len(res.Outputs)) {
		t.Fatalf("early stop round = %g, want %d", got, len(res.Outputs))
	}

	reg = obs.NewRegistry()
	boom := errors.New("boom")
	failSim := func(rep int, _ uint64) (float64, error) {
		if rep == 1 {
			return 0, boom
		}
		return 1, nil
	}
	if _, err := Run(context.Background(),
		Config{Replications: 2, Workers: 1, Obs: reg}, failSim, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	s := reg.Snapshot()
	if s.Counters["replicate/reps_failed"] != 1 || s.Counters["replicate/reps_completed"] != 1 {
		t.Fatalf("completed/failed = %d/%d, want 1/1",
			s.Counters["replicate/reps_completed"], s.Counters["replicate/reps_failed"])
	}
}
