package scenario

import "repro/internal/stats"

// Clone returns a deep copy of the scenario: every pointer, slice and map
// reachable from it is duplicated, so mutating the copy (axis stamping in
// the sweep expander, ApplyDefaults on a point) never aliases the
// original. Cloning a scenario and marshaling it yields the same bytes as
// marshaling the original.
func (s Scenario) Clone() Scenario {
	if s.Services != nil {
		services := make([]Service, len(s.Services))
		for i := range s.Services {
			services[i] = s.Services[i].clone()
		}
		s.Services = services
	}
	s.Fleet = s.Fleet.clone()
	if s.Alloc != nil {
		alloc := *s.Alloc
		alloc.Weights = append([]float64(nil), s.Alloc.Weights...)
		alloc.Priorities = append([]int(nil), s.Alloc.Priorities...)
		s.Alloc = &alloc
	}
	if s.Warmup != nil {
		w := *s.Warmup
		s.Warmup = &w
	}
	if s.Failures != nil {
		f := *s.Failures
		s.Failures = &f
	}
	if s.Power != nil {
		p := *s.Power
		s.Power = &p
	}
	if s.Replication != nil {
		r := *s.Replication
		s.Replication = &r
	}
	if s.Periods != nil {
		p := *s.Periods
		if p.Bins != nil {
			bins := make([]PeriodBin, len(p.Bins))
			for i, b := range p.Bins {
				b.Multipliers = append([]float64(nil), b.Multipliers...)
				bins[i] = b
			}
			p.Bins = bins
		}
		s.Periods = &p
	}
	return s
}

func (s Service) clone() Service {
	s.Profile = s.Profile.clone()
	if s.Overhead != nil {
		o := s.Overhead.clone()
		s.Overhead = &o
	}
	if s.Arrivals != nil {
		a := s.Arrivals.Clone()
		s.Arrivals = &a
	}
	if s.ThinkTime != nil {
		t := s.ThinkTime.Clone()
		s.ThinkTime = &t
	}
	return s
}

func (p Profile) clone() Profile {
	if p.Demands != nil {
		m := make(map[string]stats.DistSpec, len(p.Demands))
		for k, v := range p.Demands {
			m[k] = v.Clone()
		}
		p.Demands = m
	}
	if p.DemandSCV != nil {
		v := *p.DemandSCV
		p.DemandSCV = &v
	}
	return p
}

func (o Overhead) clone() Overhead {
	if o.Curves != nil {
		m := make(map[string]Curve, len(o.Curves))
		for k, v := range o.Curves {
			m[k] = v
		}
		o.Curves = m
	}
	o.CPUResources = append([]string(nil), o.CPUResources...)
	return o
}

func (f Fleet) clone() Fleet {
	if f.Classes != nil {
		classes := make([]HostClass, len(f.Classes))
		for i := range f.Classes {
			classes[i] = f.Classes[i].clone()
		}
		f.Classes = classes
	}
	return f
}

func (h HostClass) clone() HostClass {
	if h.Capability != nil {
		m := make(map[string]float64, len(h.Capability))
		for k, v := range h.Capability {
			m[k] = v
		}
		h.Capability = m
	}
	if h.Power != nil {
		p := *h.Power
		h.Power = &p
	}
	return h
}
