package scenario

import (
	"fmt"
	"os"
	"reflect"
	"testing"
)

// TestCloneDeepCopies: Clone of every example scenario (defaults applied,
// so the optional pointer sections are populated) must be structurally
// equal to the original while sharing no mutable storage with it — the
// sweep expander hands each point a clone and mutates it freely.
func TestCloneDeepCopies(t *testing.T) {
	for _, file := range exampleFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ParseBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		s.ApplyDefaults()
		c := s.Clone()
		if !reflect.DeepEqual(s, c) {
			t.Fatalf("%s: clone is not equal to the original", file)
		}
		if err := sharedStorage(reflect.ValueOf(&s).Elem(), reflect.ValueOf(&c).Elem(), "scenario"); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
	}
}

// sharedStorage walks two equal values in lockstep and reports any mutable
// storage — pointer, map, populated slice — present in both: shared storage
// means writing through the clone would corrupt the original.
func sharedStorage(a, b reflect.Value, path string) error {
	switch a.Kind() {
	case reflect.Pointer:
		if a.IsNil() {
			return nil
		}
		if a.Pointer() == b.Pointer() {
			return fmt.Errorf("%s: clone shares a pointer with the original", path)
		}
		return sharedStorage(a.Elem(), b.Elem(), path)
	case reflect.Map:
		if a.IsNil() {
			return nil
		}
		if a.Pointer() == b.Pointer() {
			return fmt.Errorf("%s: clone shares a map with the original", path)
		}
		iter := a.MapRange()
		for iter.Next() {
			k := iter.Key()
			if err := sharedStorage(iter.Value(), b.MapIndex(k), fmt.Sprintf("%s[%v]", path, k)); err != nil {
				return err
			}
		}
	case reflect.Slice:
		if a.Len() == 0 {
			return nil
		}
		if a.Pointer() == b.Pointer() {
			return fmt.Errorf("%s: clone shares a slice with the original", path)
		}
		for i := 0; i < a.Len(); i++ {
			if err := sharedStorage(a.Index(i), b.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if err := sharedStorage(a.Field(i), b.Field(i), path+"."+a.Type().Field(i).Name); err != nil {
				return err
			}
		}
	case reflect.Interface:
		if a.IsNil() {
			return nil
		}
		return sharedStorage(a.Elem(), b.Elem(), path)
	}
	return nil
}
