package scenario

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/power"
	"repro/internal/rainbow"
	"repro/internal/replicate"
	"repro/internal/stats"
	"repro/internal/virt"
	"repro/internal/workload"
)

// Compiled is a scenario lowered to the executable layer: a cluster
// configuration, the replication-engine settings, and the power/platform
// parameters for energy reporting. Compile is the single funnel through
// which cmd/simulate, cmd/repro and the case-study experiments construct
// cluster.Config values.
type Compiled struct {
	// Cluster is the per-replication simulation configuration (replication
	// r clones it with seed Cluster.Seed+r).
	Cluster cluster.Config

	// Replication configures the independent-replications engine. Its
	// Seed always equals Cluster.Seed; Replications is >= 1.
	Replication replicate.Config

	// Timeout is the wall-clock budget for the whole study; zero means
	// none.
	Timeout time.Duration

	// Power and Platform parameterize the power meter the caller may run
	// over the results.
	Power    power.ServerModel
	Platform power.Platform
}

// profilePresets are the built-in service demand profiles.
var profilePresets = map[string]func() workload.ServiceProfile{
	"specweb-ecommerce": workload.SPECwebEcommerce,
	"specweb-cpubound":  workload.SPECwebCPUBound,
	"tpcw-ebook":        workload.TPCWEbook,
}

var profilePresetNames = []string{"specweb-ecommerce", "specweb-cpubound", "tpcw-ebook"}

// Compile validates the scenario, applies defaults, and lowers it to a
// Compiled value. Compiling the same scenario twice yields independent
// arrival-process state but otherwise identical configurations, so runs
// from a compiled scenario are reproducible seed for seed.
func (s Scenario) Compile() (Compiled, error) {
	if err := s.Validate(); err != nil {
		return Compiled{}, err
	}
	if s.Periods != nil {
		return Compiled{}, fmt.Errorf("%w: a periods scenario has no single cluster configuration; resolve it to per-bin sub-scenarios first (ResolvePeriods)", ErrInvalid)
	}
	s.ApplyDefaults()

	var out Compiled
	cc := &out.Cluster

	if s.Mode == "dedicated" {
		cc.Mode = cluster.Dedicated
	} else {
		cc.Mode = cluster.Consolidated
	}
	cc.Services = make([]cluster.ServiceSpec, len(s.Services))
	for i := range s.Services {
		spec, err := s.Services[i].compile()
		if err != nil {
			return Compiled{}, fmt.Errorf("service %d: %w", i, err)
		}
		cc.Services[i] = spec
	}
	cc.ConsolidatedServers = s.Fleet.Hosts
	if len(s.Fleet.Classes) > 0 {
		cc.HostClasses = make([]cluster.HostClass, len(s.Fleet.Classes))
		for i, hc := range s.Fleet.Classes {
			cc.HostClasses[i] = hc.compile()
		}
	}
	if s.Alloc != nil {
		cc.Alloc = s.Alloc.compile(len(s.Services))
	}
	cc.AdmissionPerHost = s.AdmissionPerHost
	cc.Horizon = s.Horizon
	cc.Warmup = *s.Warmup
	cc.Seed = s.Seed
	if s.Failures != nil {
		cc.MTBF = s.Failures.MTBF
		cc.MTTR = s.Failures.MTTR
	}
	cc.HostMemoryGB = s.Fleet.HostMemoryGB
	cc.Dom0MemoryGB = s.Fleet.Dom0MemoryGB
	cc.EventQueue = s.EventQueue

	r := s.Replication
	cc.Shards = r.Shards
	out.Replication = replicate.Config{
		Replications: r.Reps,
		Workers:      r.Workers,
		Seed:         s.Seed,
		Precision:    r.Precision,
		Confidence:   r.Confidence,
	}
	if r.TimeoutSec > 0 {
		out.Timeout = time.Duration(r.TimeoutSec * float64(time.Second))
	}

	out.Power = power.ServerModel{Base: s.Power.BaseW, Max: s.Power.MaxW}
	if s.Power.Platform == "linux" {
		out.Platform = power.NativeLinux
	} else {
		out.Platform = power.XenRainbow
	}

	if err := cc.Validate(); err != nil {
		return Compiled{}, fmt.Errorf("%w: compiled config: %v", ErrInvalid, err)
	}
	return out, nil
}

// CompileProfile lowers the service's demand profile to the workload
// layer, applying the Name override and DemandSCV exactly as the full
// Compile does. The analytic evaluation layer (internal/eval) uses it to
// read serving rates without building a whole cluster configuration.
func (s Service) CompileProfile() (workload.ServiceProfile, error) {
	profile, err := s.Profile.compile()
	if err != nil {
		return workload.ServiceProfile{}, err
	}
	if s.Name != "" {
		profile.Name = s.Name
	}
	return profile, nil
}

// CompileOverhead lowers the service's virtualization-overhead spec to the
// virt layer. A service without an overhead spec gets the zero
// virt.HostOverhead (every factor 1).
func (s Service) CompileOverhead() (virt.HostOverhead, error) {
	if s.Overhead == nil {
		return virt.HostOverhead{}, nil
	}
	return s.Overhead.compile()
}

func (s Service) compile() (cluster.ServiceSpec, error) {
	profile, err := s.Profile.compile()
	if err != nil {
		return cluster.ServiceSpec{}, err
	}
	if s.Name != "" {
		profile.Name = s.Name
	}
	spec := cluster.ServiceSpec{
		Profile:          profile,
		DedicatedServers: s.DedicatedServers,
		MemoryGB:         s.MemoryGB,
		Clients:          s.Clients,
	}
	if s.Overhead != nil {
		spec.Overhead, err = s.Overhead.compile()
		if err != nil {
			return cluster.ServiceSpec{}, err
		}
	}
	if s.Arrivals != nil {
		spec.Arrivals, err = s.Arrivals.Build()
		if err != nil {
			return cluster.ServiceSpec{}, err
		}
	}
	if s.ThinkTime != nil {
		spec.ThinkTime, err = s.ThinkTime.Build()
		if err != nil {
			return cluster.ServiceSpec{}, err
		}
	}
	return spec, nil
}

func (p Profile) compile() (workload.ServiceProfile, error) {
	var out workload.ServiceProfile
	if p.Preset != "" {
		out = profilePresets[p.Preset]()
	} else {
		out = workload.ServiceProfile{
			Name:       p.Name,
			Demands:    make(map[string]stats.Distribution, len(p.Demands)),
			OSCeiling:  p.OSCeiling,
			MetricName: p.Metric,
		}
		for r, d := range p.Demands {
			dist, err := d.Build()
			if err != nil {
				return workload.ServiceProfile{}, fmt.Errorf("demand %q: %w", r, err)
			}
			out.Demands[r] = dist
		}
	}
	if p.DemandSCV != nil {
		out = out.WithDemandSCV(*p.DemandSCV)
	}
	return out, nil
}

func (o Overhead) compile() (virt.HostOverhead, error) {
	var out virt.HostOverhead
	switch o.Preset {
	case "web":
		out = virt.WebHostOverhead()
	case "db":
		out = virt.DBHostOverhead()
	case "none":
		// No curves: every factor is 1.
	default:
		if len(o.Curves) > 0 {
			out.Curves = make(map[string]virt.ImpactCurve, len(o.Curves))
			for r, c := range o.Curves {
				out.Curves[r] = c.compile()
			}
		}
	}
	if o.Pinning == "xen-scheduled" {
		out.Pinning = virt.XenScheduledVCPUs
	}
	if len(o.CPUResources) > 0 {
		out.CPUResources = append([]string(nil), o.CPUResources...)
	}
	return out, nil
}

func (c Curve) compile() virt.ImpactCurve {
	switch c.Kind {
	case "linear":
		return virt.LinearCurve{Intercept: c.Intercept, Slope: c.Slope}
	case "rational":
		return virt.RationalCurve{C: c.C}
	default: // "constant" — validate admits nothing else
		return virt.ConstantCurve{Value: c.Value}
	}
}

func (h HostClass) compile() cluster.HostClass {
	out := cluster.HostClass{Name: h.Name, Count: h.Count}
	if h.Preset != "" {
		if out.Name == "" {
			out.Name = h.Preset
		}
		if cap := hostClassPresets[h.Preset]; cap != nil {
			out.Capability = make(map[string]float64, len(cap))
			for r, v := range cap {
				out.Capability[r] = v
			}
		}
		return out
	}
	if len(h.Capability) > 0 {
		out.Capability = make(map[string]float64, len(h.Capability))
		for r, v := range h.Capability {
			out.Capability[r] = v
		}
	}
	return out
}

func (a Alloc) compile(services int) cluster.Partition {
	switch a.Policy {
	case "static":
		return rainbow.Static{Weights: append([]float64(nil), a.Weights...)}
	case "proportional":
		return rainbow.Proportional{
			RebalancePeriod: a.Period,
			MinShare:        a.MinShare,
			Cost:            a.Cost,
		}
	default: // "priority" — validate admits nothing else
		prios := append([]int(nil), a.Priorities...)
		if len(prios) == 0 {
			prios = make([]int, services)
			for i := range prios {
				prios[i] = i
			}
		}
		return rainbow.Priority{
			Priorities:      prios,
			DemandCap:       a.DemandCap,
			RebalancePeriod: a.Period,
			Cost:            a.Cost,
		}
	}
}
