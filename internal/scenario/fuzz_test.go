package scenario

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzParse drives the strict JSON decoder, the validator and the compiler
// with arbitrary input. The invariants: none of them panic; a scenario
// that validates also compiles; and the resolved encoding round-trips
// losslessly. The shipped examples seed the corpus.
func FuzzParse(f *testing.F) {
	for _, file := range exampleFiles(f) {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"services":[{"profile":{"preset":"tpcw-ebook"},"clients":10,"dedicated_servers":1}]}`))
	f.Add([]byte(`{"mode":"dedicated","alloc":{"policy":"static"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseBytes(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		c, err := s.Compile()
		if err != nil {
			// A scenario can validate structurally yet fail the compiled
			// cluster config's cross-checks (e.g. memory placement); that
			// must surface as an error, never a panic.
			return
		}
		if err := c.Cluster.Validate(); err != nil {
			t.Fatalf("compiled config invalid: %v", err)
		}
		// Resolved encoding is a fixed point: encode → parse → encode.
		s.ApplyDefaults()
		var first bytes.Buffer
		if err := s.Encode(&first); err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := ParseBytes(first.Bytes())
		if err != nil {
			t.Fatalf("re-parse of own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip changed the scenario:\n%+v\n%+v", s, back)
		}
	})
}
