package scenario

import (
	"fmt"
	"math"

	"repro/internal/diurnal"
	"repro/internal/workload"
)

// Periods declares the time-aware view of a scenario: an ordered set of
// named time bins, each scaling the services' mean arrival rates, so one
// scenario describes a whole (typically diurnal) traffic cycle instead of
// a single stationary load. A periods scenario is a planning construct —
// it does not compile to one cluster configuration; ResolvePeriods lowers
// it to one stationary sub-scenario per bin, which eval.EvaluatePeriods
// scores and plan.SearchPeriods plans with migration charging (DESIGN.md
// §13).
type Periods struct {
	// BinSec is each bin's duration in seconds; zero defaults to 3600
	// (an hour of the canonical day).
	BinSec float64 `json:"bin_sec,omitempty"`

	// Bins are the ordered time bins. Empty defaults to one day of the
	// canonical 24-bin diurnal profile (diurnal.DayShape) sampled at
	// BinSec: bins h00, h01, … with the day-shape multiplier at each
	// bin's start time.
	Bins []PeriodBin `json:"bins,omitempty"`
}

// PeriodBin is one named time bin of a Periods spec.
type PeriodBin struct {
	// Name labels the bin in plans and reports; empty defaults to the
	// positional "h00", "h01", ….
	Name string `json:"name,omitempty"`

	// Multiplier scales every service's mean arrival rate for this bin.
	// Zero (with Multipliers empty) defaults to the canonical day shape's
	// value at the bin's start time.
	Multiplier float64 `json:"multiplier,omitempty"`

	// Multipliers, when non-empty, gives one multiplier per service in
	// scenario order. Mutually exclusive with Multiplier.
	Multipliers []float64 `json:"multipliers,omitempty"`
}

// applyDefaults materializes the periods defaults: an hourly bin width,
// one day of bins, positional names, and day-shape multipliers sampled at
// each bin's start time (the strictly-containing-window lookup of
// diurnal.Series.At, so non-representable bin edges read the right hour).
func (p *Periods) applyDefaults() {
	if p.BinSec == 0 {
		p.BinSec = 3600
	}
	if len(p.Bins) == 0 && p.BinSec > 0 {
		day := diurnal.DayShape()
		n := int(math.Round(day.BinSec * float64(len(day.Values)) / p.BinSec))
		if n < 1 {
			n = 1
		}
		p.Bins = make([]PeriodBin, n)
	}
	shape := diurnal.DayShape()
	for i := range p.Bins {
		b := &p.Bins[i]
		if b.Name == "" {
			b.Name = fmt.Sprintf("h%02d", i)
		}
		if b.Multiplier == 0 && len(b.Multipliers) == 0 && p.BinSec > 0 {
			b.Multiplier = shape.At(float64(i) * p.BinSec)
		}
	}
}

// validate checks a resolved periods spec against the scenario's services.
func (p *Periods) validate(services []Service) error {
	if !(p.BinSec > 0) || math.IsInf(p.BinSec, 0) {
		return fmt.Errorf("%w: periods bin_sec %g", ErrInvalid, p.BinSec)
	}
	if len(p.Bins) == 0 {
		return fmt.Errorf("%w: periods needs at least one bin", ErrInvalid)
	}
	for i, b := range p.Bins {
		if b.Multiplier != 0 && len(b.Multipliers) > 0 {
			return fmt.Errorf("%w: periods bin %d has both multiplier and multipliers", ErrInvalid, i)
		}
		if len(b.Multipliers) > 0 && len(b.Multipliers) != len(services) {
			return fmt.Errorf("%w: periods bin %d has %d multipliers for %d services", ErrInvalid, i, len(b.Multipliers), len(services))
		}
		check := b.Multipliers
		if len(check) == 0 {
			check = []float64{b.Multiplier}
		}
		for _, m := range check {
			if !(m > 0) || math.IsInf(m, 0) {
				return fmt.Errorf("%w: periods bin %d multiplier %g", ErrInvalid, i, m)
			}
		}
	}
	for i, svc := range services {
		if svc.Arrivals == nil {
			return fmt.Errorf("%w: periods rescale open-loop arrival rates, but service %d is closed-loop", ErrInvalid, i)
		}
	}
	return nil
}

// binMultipliers reports bin b's per-service multipliers (broadcasting the
// scalar form), on a resolved spec.
func (p *Periods) binMultipliers(bin, services int) []float64 {
	b := p.Bins[bin]
	out := make([]float64, services)
	for i := range out {
		if len(b.Multipliers) > 0 {
			out[i] = b.Multipliers[i]
		} else {
			out[i] = b.Multiplier
		}
	}
	return out
}

// PeriodScenario is one resolved time bin: its identity, duration,
// per-service rate multipliers, and the stationary periods-free
// sub-scenario that evaluators and planners consume.
type PeriodScenario struct {
	Index       int
	Name        string
	Seconds     float64
	Multipliers []float64
	Scenario    Scenario
}

// BaseRates reports each service's mean arrival rate — the stationary
// rate the periods multipliers scale. Every service must be open-loop.
func (s Scenario) BaseRates() ([]float64, error) {
	rates := make([]float64, len(s.Services))
	for i := range s.Services {
		svc := s.Services[i]
		if svc.Arrivals == nil {
			return nil, fmt.Errorf("%w: service %d has no open-loop arrival rate", ErrInvalid, i)
		}
		proc, err := svc.Arrivals.Build()
		if err != nil {
			return nil, fmt.Errorf("service %d arrivals: %w", i, err)
		}
		rates[i] = proc.Rate()
	}
	return rates, nil
}

// Stationary returns the periods-free stationary scenario in which each
// service's arrival process is replaced by a Poisson process at mults[i]
// times its mean rate — the sub-scenario one time bin resolves to. The
// receiver may be raw or resolved; the result is resolved.
func (s Scenario) Stationary(label string, mults []float64) (Scenario, error) {
	resolved := s.Clone()
	resolved.ApplyDefaults()
	if len(mults) != len(resolved.Services) {
		return Scenario{}, fmt.Errorf("%w: %d multipliers for %d services", ErrInvalid, len(mults), len(resolved.Services))
	}
	rates, err := resolved.BaseRates()
	if err != nil {
		return Scenario{}, err
	}
	resolved.Periods = nil
	if label != "" {
		if resolved.Name != "" {
			resolved.Name = resolved.Name + "@" + label
		} else {
			resolved.Name = label
		}
	}
	for i := range resolved.Services {
		if !(mults[i] > 0) || math.IsInf(mults[i], 0) {
			return Scenario{}, fmt.Errorf("%w: multiplier[%d] = %g", ErrInvalid, i, mults[i])
		}
		resolved.Services[i].Arrivals = workload.PoissonSpec(rates[i] * mults[i])
	}
	return resolved, nil
}

// ResolvePeriods lowers a periods scenario into one stationary
// sub-scenario per bin: bin b keeps everything about the scenario except
// that each service's arrival process becomes Poisson at the bin's
// multiplier times the service's mean rate. The mean (not instantaneous)
// rate is deliberate: a bin is the stationary regime the paper's model
// prices, so an NHPP or MMPP base process contributes its cycle mean.
func (s Scenario) ResolvePeriods() ([]PeriodScenario, error) {
	resolved := s.Clone()
	resolved.ApplyDefaults()
	if err := resolved.validate(); err != nil {
		return nil, err
	}
	if resolved.Periods == nil {
		return nil, fmt.Errorf("%w: scenario has no periods", ErrInvalid)
	}
	p := resolved.Periods
	out := make([]PeriodScenario, len(p.Bins))
	for b := range p.Bins {
		mults := p.binMultipliers(b, len(resolved.Services))
		sub, err := resolved.Stationary(p.Bins[b].Name, mults)
		if err != nil {
			return nil, fmt.Errorf("periods bin %d: %w", b, err)
		}
		out[b] = PeriodScenario{
			Index:       b,
			Name:        p.Bins[b].Name,
			Seconds:     p.BinSec,
			Multipliers: mults,
			Scenario:    sub,
		}
	}
	return out, nil
}
