package scenario

import (
	"errors"
	"math"
	"testing"

	"repro/internal/diurnal"
)

func periodsBase() Scenario {
	return Scenario{
		Mode: "consolidated",
		Services: []Service{
			WebSpec(3976, 0),
			DBSpec(280, 0),
		},
		Fleet:   Fleet{Hosts: 4},
		Periods: &Periods{},
	}
}

// An empty periods block defaults to one day of the canonical 24-bin
// diurnal shape: hourly bins named positionally, multipliers sampled off
// diurnal.DayShape at each bin's start.
func TestPeriodsDefaults(t *testing.T) {
	s := periodsBase()
	s.ApplyDefaults()
	p := s.Periods
	if p.BinSec != 3600 {
		t.Fatalf("bin_sec = %g", p.BinSec)
	}
	day := diurnal.DayShape()
	if len(p.Bins) != len(day.Values) {
		t.Fatalf("bins = %d, want %d", len(p.Bins), len(day.Values))
	}
	if p.Bins[0].Name != "h00" || p.Bins[23].Name != "h23" {
		t.Fatalf("bin names %q … %q", p.Bins[0].Name, p.Bins[23].Name)
	}
	for i, b := range p.Bins {
		if b.Multiplier != day.Values[i] {
			t.Fatalf("bin %d multiplier %g, want day-shape %g", i, b.Multiplier, day.Values[i])
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// Coarser bins sample the same day at their start times: 4-hour bins
	// read hours 0, 4, 8, ….
	s = periodsBase()
	s.Periods = &Periods{BinSec: 4 * 3600}
	s.ApplyDefaults()
	if n := len(s.Periods.Bins); n != 6 {
		t.Fatalf("4h bins = %d, want 6", n)
	}
	for i, b := range s.Periods.Bins {
		if want := day.Values[4*i]; b.Multiplier != want {
			t.Fatalf("4h bin %d multiplier %g, want %g", i, b.Multiplier, want)
		}
	}
}

func TestPeriodsValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"bad bin_sec", func(s *Scenario) { s.Periods.BinSec = -1 }},
		{"infinite bin_sec", func(s *Scenario) { s.Periods.BinSec = math.Inf(1) }},
		{"zero multiplier", func(s *Scenario) {
			s.Periods.Bins = []PeriodBin{{Multiplier: -0.5}}
		}},
		{"both multiplier forms", func(s *Scenario) {
			s.Periods.Bins = []PeriodBin{{Multiplier: 1, Multipliers: []float64{1, 1}}}
		}},
		{"multipliers arity", func(s *Scenario) {
			s.Periods.Bins = []PeriodBin{{Multipliers: []float64{1}}}
		}},
		{"closed-loop service", func(s *Scenario) {
			s.Services[1].Arrivals = nil
			s.Services[1].Clients = 50
		}},
	}
	for _, c := range cases {
		s := periodsBase()
		c.mutate(&s)
		if err := s.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

// ResolvePeriods lowers each bin to a stationary periods-free scenario
// whose Poisson rates are the base mean rates scaled by the bin's
// multiplier.
func TestResolvePeriods(t *testing.T) {
	s := periodsBase()
	s.Name = "day"
	s.Periods = &Periods{
		BinSec: 1800,
		Bins: []PeriodBin{
			{Name: "trough", Multiplier: 0.25},
			{Multipliers: []float64{2, 0.5}},
		},
	}
	bins, err := s.ResolvePeriods()
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	b0, b1 := bins[0], bins[1]
	if b0.Name != "trough" || b1.Name != "h01" {
		t.Fatalf("names %q, %q", b0.Name, b1.Name)
	}
	if b0.Seconds != 1800 || b1.Seconds != 1800 {
		t.Fatalf("seconds %g, %g", b0.Seconds, b1.Seconds)
	}
	if b0.Scenario.Periods != nil || b1.Scenario.Periods != nil {
		t.Fatal("sub-scenarios must be periods-free")
	}
	if b0.Scenario.Name != "day@trough" {
		t.Fatalf("sub-scenario name %q", b0.Scenario.Name)
	}
	check := func(b PeriodScenario, wantWeb, wantDB float64) {
		t.Helper()
		web, db := b.Scenario.Services[0].Arrivals, b.Scenario.Services[1].Arrivals
		if web.Kind != "poisson" || db.Kind != "poisson" {
			t.Fatalf("bin %s arrival kinds %q, %q", b.Name, web.Kind, db.Kind)
		}
		if web.Rate != wantWeb || db.Rate != wantDB {
			t.Fatalf("bin %s rates %g, %g, want %g, %g", b.Name, web.Rate, db.Rate, wantWeb, wantDB)
		}
	}
	check(b0, 3976*0.25, 280*0.25)
	check(b1, 3976*2, 280*0.5)

	// Every resolved bin validates and compiles on its own.
	for _, b := range bins {
		if _, err := b.Scenario.Compile(); err != nil {
			t.Fatalf("bin %s: %v", b.Name, err)
		}
	}

	// A periods-free scenario does not resolve.
	plain := periodsBase()
	plain.Periods = nil
	if _, err := plain.ResolvePeriods(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("resolve without periods: err = %v", err)
	}
}

// The mean-rate contract: a non-Poisson base process contributes its
// cycle mean, so an NHPP service resolves to Poisson at mean × multiplier.
func TestResolvePeriodsUsesMeanRate(t *testing.T) {
	s := periodsBase()
	s.Services[0].Arrivals.Kind = "nhpp"
	s.Services[0].Arrivals.Rate = 0
	s.Services[0].Arrivals.Rates = []float64{100, 300}
	s.Services[0].Arrivals.BinSec = 10
	s.Services[0].Arrivals.Cycle = true
	s.Periods = &Periods{Bins: []PeriodBin{{Multiplier: 2}}}
	bins, err := s.ResolvePeriods()
	if err != nil {
		t.Fatal(err)
	}
	if got := bins[0].Scenario.Services[0].Arrivals.Rate; got != 400 {
		t.Fatalf("nhpp mean 200 × 2 resolved to %g", got)
	}
}

func TestStationaryRejectsBadMultipliers(t *testing.T) {
	s := periodsBase()
	if _, err := s.Stationary("x", []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("arity: err = %v", err)
	}
	if _, err := s.Stationary("x", []float64{1, math.Inf(1)}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("infinite multiplier: err = %v", err)
	}
}
