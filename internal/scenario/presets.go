package scenario

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/workload"
)

// The case-study workload calibration shared by the presets and the
// experiment runners (DESIGN.md §2).
const (
	// SaturationIntensity is the fraction of dedicated pool capacity the
	// cluster-level case studies offer — the knee of Fig. 9's curves, and
	// the highest load at which the model-predicted consolidated pool
	// still meets QoS.
	SaturationIntensity = 0.70

	// SessionRate converts the paper's Fig. 9(b) x-axis (SPECweb2005
	// sessions) into request rate: each session issues this many requests
	// per second (reconstructed; see DESIGN.md).
	SessionRate = 2.0

	// RequestsPerSession is the mean length of one SPECweb-style session
	// train in the Fig. 9(b) sweep.
	RequestsPerSession = 10
)

// SaturationRates reports the case-study arrival rates for dedicated pools
// of the given sizes: SaturationIntensity × pool capacity on each
// service's bottleneck resource.
func SaturationRates(webServers, dbServers int) (lambdaW, lambdaD float64) {
	lambdaW = SaturationIntensity * float64(webServers) * workload.WebDiskRate
	lambdaD = SaturationIntensity * float64(dbServers) * workload.DBCPURate
	return
}

// WebSpec builds the case-study Web service (SPECweb2005 e-commerce,
// Fig. 5 curves) driven open-loop at rate lambda. The dedicated pool size
// rides along so the same spec serves both deployment modes.
func WebSpec(lambda float64, dedicated int) Service {
	return Service{
		Profile:          Profile{Preset: "specweb-ecommerce"},
		Overhead:         &Overhead{Preset: "web"},
		Arrivals:         workload.PoissonSpec(lambda),
		DedicatedServers: dedicated,
	}
}

// DBSpec builds the case-study DB service (TPC-W e-book, Fig. 8 curve)
// driven open-loop at rate lambda.
func DBSpec(lambda float64, dedicated int) Service {
	return Service{
		Profile:          Profile{Preset: "tpcw-ebook"},
		Overhead:         &Overhead{Preset: "db"},
		Arrivals:         workload.PoissonSpec(lambda),
		DedicatedServers: dedicated,
	}
}

// DBClosedSpec builds the closed-loop DB service with the given emulated
// browsers (TPC-W style, 7 s default think time).
func DBClosedSpec(clients, dedicated int) Service {
	return Service{
		Profile:          Profile{Preset: "tpcw-ebook"},
		Overhead:         &Overhead{Preset: "db"},
		Clients:          clients,
		DedicatedServers: dedicated,
	}
}

// WebSessionsSpec builds the Web service driven by SPECweb-style sessions:
// trains of RequestsPerSession requests separated by half-second think
// gaps, at a session arrival rate offering sessions×SessionRate requests/s
// overall — the Fig. 9(b) sweep's workload.
func WebSessionsSpec(sessions float64, dedicated int) Service {
	return Service{
		Profile:  Profile{Preset: "specweb-ecommerce"},
		Overhead: &Overhead{Preset: "web"},
		Arrivals: &workload.ArrivalSpec{
			Kind:         "sessions",
			SessionRate:  sessions * SessionRate / RequestsPerSession,
			MeanRequests: RequestsPerSession,
			Gap:          &stats.DistSpec{Kind: "exponential", Rate: 2}, // 0.5 s mean gap
		},
		DedicatedServers: dedicated,
	}
}

// CaseStudy builds the two-service case-study scenario at the saturation
// workloads of dedicated pools sized webServers and dbServers. Mode is
// "dedicated" (hosts is ignored) or "consolidated" (hosts shared servers).
func CaseStudy(webServers, dbServers int, mode string, hosts int) Scenario {
	lambdaW, lambdaD := SaturationRates(webServers, dbServers)
	s := Scenario{
		Name: fmt.Sprintf("casestudy-%d+%d-%s", webServers, dbServers, mode),
		Mode: mode,
		Services: []Service{
			WebSpec(lambdaW, webServers),
			DBSpec(lambdaD, dbServers),
		},
	}
	if mode == "consolidated" {
		s.Fleet.Hosts = hosts
	}
	return s
}

// presetBuilders is the named-scenario registry.
var presetBuilders = map[string]func() Scenario{}

// Register adds a named scenario builder. It panics on a duplicate name —
// registration happens at init time, where a collision is a programming
// error.
func Register(name string, build func() Scenario) {
	if name == "" || build == nil {
		panic("scenario: Register needs a name and a builder")
	}
	if _, dup := presetBuilders[name]; dup {
		panic(fmt.Sprintf("scenario: preset %q registered twice", name))
	}
	presetBuilders[name] = build
}

// Preset returns a fresh copy of the named scenario.
func Preset(name string) (Scenario, error) {
	build, ok := presetBuilders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("%w: unknown preset %q (have %s)",
			ErrInvalid, name, presetNameList(Names()))
	}
	return build(), nil
}

// Names lists the registered preset names, sorted.
func Names() []string {
	names := make([]string, 0, len(presetBuilders))
	for n := range presetBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	// The paper's deployment groups (Figs. 10–11): dedicated baselines and
	// their consolidated counterparts at the saturation workloads.
	Register("casestudy-4+4", func() Scenario {
		s := CaseStudy(4, 4, "consolidated", 4)
		s.Name = "casestudy-4+4"
		s.Notes = "Fig. 11 group 2: 4 consolidated Xen servers hosting the Web+DB saturation workloads of a 4+4 dedicated deployment."
		return s
	})
	Register("casestudy-4+4-dedicated", func() Scenario {
		s := CaseStudy(4, 4, "dedicated", 0)
		s.Name = "casestudy-4+4-dedicated"
		s.Notes = "Fig. 11 group 2 baseline: 8 dedicated native-Linux servers (4 Web + 4 DB) at the saturation workloads."
		return s
	})
	Register("casestudy-3+3", func() Scenario {
		s := CaseStudy(3, 3, "consolidated", 3)
		s.Name = "casestudy-3+3"
		s.Notes = "Fig. 10 group 1: 3 consolidated servers matching a 3+3 dedicated deployment."
		return s
	})

	// The Fig. 9 workload-selection operating points (the red circles).
	Register("fig9-db-closed", func() Scenario {
		_, lambdaD := SaturationRates(4, 4)
		clients := int(lambdaD * 7) // Little's law with 7 s think time
		return Scenario{
			Name:     "fig9-db-closed",
			Notes:    "Fig. 9(a) selected point: closed-loop TPC-W browsing on 4 dedicated DB servers.",
			Mode:     "dedicated",
			Services: []Service{DBClosedSpec(clients, 4)},
		}
	})
	Register("fig9-web-sessions", func() Scenario {
		lambdaW, _ := SaturationRates(4, 4)
		return Scenario{
			Name:     "fig9-web-sessions",
			Notes:    "Fig. 9(b) selected point: SPECweb session trains on 4 dedicated Web servers.",
			Mode:     "dedicated",
			Services: []Service{WebSessionsSpec(lambdaW/SessionRate, 4)},
		}
	})
}
