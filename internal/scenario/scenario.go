// Package scenario is the declarative layer between a JSON description of
// a consolidation experiment and an executable cluster configuration. One
// Scenario value covers everything cluster.Config and the replication
// engine can express — services with arbitrary arrival processes or
// closed-loop clients, virtualization overhead curves, fleet shape
// (homogeneous pools or heterogeneous host classes), Rainbow allocator
// policies, failure injection, power parameters and replication settings —
// so any consolidation question a reader of the paper can pose becomes a
// JSON file instead of a fork.
//
// The pipeline is Parse (strict JSON decode) → ApplyDefaults → Validate →
// Compile, which lowers the scenario to cluster.Config plus
// replicate.Config. cmd/simulate, cmd/repro and every case-study
// experiment construct their cluster configurations exclusively through
// this package; the canonical paper setups are registered as named presets
// (see presets.go).
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/stats"
	"repro/internal/workload"
)

// ErrInvalid reports an unusable scenario.
var ErrInvalid = errors.New("scenario: invalid")

// Scenario is the JSON-serializable description of one cluster experiment
// plus its replication study. The zero value of every optional field means
// "use the documented default"; ApplyDefaults materializes the defaults so
// a resolved scenario round-trips losslessly through JSON.
type Scenario struct {
	// Name labels the scenario in reports and manifests.
	Name string `json:"name,omitempty"`

	// Notes is free-form documentation carried along with the file.
	Notes string `json:"notes,omitempty"`

	// Mode is "dedicated" or "consolidated" (default).
	Mode string `json:"mode,omitempty"`

	// Services are the services to host (at least one).
	Services []Service `json:"services"`

	// Fleet shapes the consolidated pool; ignored fields must stay zero in
	// dedicated mode (pool sizes live on each service there).
	Fleet Fleet `json:"fleet"`

	// Alloc selects the consolidated resource allocator; nil means ideal
	// on-demand flowing (the model's assumption 4).
	Alloc *Alloc `json:"alloc,omitempty"`

	// AdmissionPerHost caps concurrent in-flight requests per host; zero
	// means the simulator default (256).
	AdmissionPerHost int `json:"admission_per_host,omitempty"`

	// Horizon is the simulated duration in seconds (default 120).
	Horizon float64 `json:"horizon,omitempty"`

	// Warmup is the statistics warmup boundary in seconds; nil defaults to
	// Horizon/6. An explicit 0 disables the warmup window.
	Warmup *float64 `json:"warmup,omitempty"`

	// Seed drives all randomness; zero defaults to 42.
	Seed uint64 `json:"seed,omitempty"`

	// Failures, when non-nil, enables host failure injection.
	Failures *Failures `json:"failures,omitempty"`

	// Power parameterizes the per-server power model used for energy
	// reporting; nil defaults to the testbed server (250 W idle, 340 W
	// peak) on the platform implied by Mode.
	Power *Power `json:"power,omitempty"`

	// Replication configures the independent-replications study; nil means
	// a single run.
	Replication *Replication `json:"replication,omitempty"`

	// EventQueue selects the discrete-event queue implementation per
	// shard: "heap", "wheel", or ""/"auto" (heap for sequential runs, a
	// density heuristic for sharded ones). The queues fire events in the
	// identical order, so the choice never changes results.
	EventQueue string `json:"event_queue,omitempty"`

	// Periods, when non-nil, makes the scenario time-aware: named time
	// bins scaling the services' arrival rates (defaulting to the
	// canonical 24-bin diurnal day). Periods scenarios do not compile to
	// one cluster configuration — ResolvePeriods lowers them to one
	// stationary sub-scenario per bin for eval.EvaluatePeriods and
	// plan.SearchPeriods.
	Periods *Periods `json:"periods,omitempty"`
}

// Service describes one hosted service.
type Service struct {
	// Name overrides the profile name in reports when non-empty.
	Name string `json:"name,omitempty"`

	// Profile is the service's demand profile (a named preset or inline
	// demands).
	Profile Profile `json:"profile"`

	// Overhead is the virtualization impact model; nil means no overhead.
	Overhead *Overhead `json:"overhead,omitempty"`

	// Arrivals drives the service open-loop. Mutually exclusive with
	// Clients.
	Arrivals *workload.ArrivalSpec `json:"arrivals,omitempty"`

	// Clients, when positive, drives the service closed-loop with that
	// many emulated browsers.
	Clients int `json:"clients,omitempty"`

	// ThinkTime is the closed-loop think-time distribution; nil means
	// exponential with mean 7 s (the TPC-W default).
	ThinkTime *stats.DistSpec `json:"think_time,omitempty"`

	// DedicatedServers is the service's pool size in dedicated mode.
	DedicatedServers int `json:"dedicated_servers,omitempty"`

	// MemoryGB is the VM's memory allocation in consolidated mode; zero
	// means the simulator default (1 GB).
	MemoryGB float64 `json:"memory_gb,omitempty"`
}

// Profile names a service demand profile: either a registered preset
// ("specweb-ecommerce", "specweb-cpubound", "tpcw-ebook") or an inline
// definition with per-resource demand distributions.
type Profile struct {
	// Preset selects a built-in profile; mutually exclusive with Demands.
	Preset string `json:"preset,omitempty"`

	// Name is the inline profile's name (required without Preset).
	Name string `json:"name,omitempty"`

	// Demands maps resource names to per-request service-time
	// distributions on native hardware.
	Demands map[string]stats.DistSpec `json:"demands,omitempty"`

	// OSCeiling caps the request completion rate of a single OS image in
	// requests per second; zero means no ceiling.
	OSCeiling float64 `json:"os_ceiling,omitempty"`

	// Metric is the throughput unit reported for this service.
	Metric string `json:"metric,omitempty"`

	// DemandSCV, when non-nil, replaces every demand distribution with one
	// of the same mean and this squared coefficient of variation — the
	// service-time insensitivity knob.
	DemandSCV *float64 `json:"demand_scv,omitempty"`
}

// Overhead describes the virtualization impact curves of one service:
// either a preset ("web", "db", "none") or inline per-resource curves.
type Overhead struct {
	// Preset selects the case-study curves; mutually exclusive with
	// Curves.
	Preset string `json:"preset,omitempty"`

	// Curves maps resource names to impact curves.
	Curves map[string]Curve `json:"curves,omitempty"`

	// Pinning is "pinned" (default) or "xen-scheduled" (applies the
	// Fig. 7 penalty to CPU-family resources).
	Pinning string `json:"pinning,omitempty"`

	// CPUResources names the resources the pinning policy affects; empty
	// means {"cpu"}.
	CPUResources []string `json:"cpu_resources,omitempty"`
}

// Curve is one declarative impact curve a(v).
type Curve struct {
	// Kind is "linear" (a = intercept + slope·v), "rational"
	// (a = c·v²/(1+v²)) or "constant" (a = value).
	Kind string `json:"kind"`

	Intercept float64 `json:"intercept,omitempty"`
	Slope     float64 `json:"slope,omitempty"`
	C         float64 `json:"c,omitempty"`
	Value     float64 `json:"value,omitempty"`
}

// Fleet shapes the consolidated pool.
type Fleet struct {
	// Hosts is the homogeneous pool size. With Classes set it may be 0 or
	// must equal the summed class counts. Defaults to 4 in consolidated
	// mode when Classes is empty.
	Hosts int `json:"hosts,omitempty"`

	// Classes, when non-empty, makes the pool heterogeneous.
	Classes []HostClass `json:"classes,omitempty"`

	// HostMemoryGB is each host's physical memory; zero means 8 GB.
	HostMemoryGB float64 `json:"host_memory_gb,omitempty"`

	// Dom0MemoryGB is the Domain-0 reservation; zero means 1 GB.
	Dom0MemoryGB float64 `json:"dom0_memory_gb,omitempty"`
}

// HostClass is one hardware class of a heterogeneous pool: either a preset
// ("amd" = reference, "intel" = 1/1.2 capability, "blade" = 1/2) or a
// named class with explicit capability multipliers.
type HostClass struct {
	// Preset selects a built-in class; mutually exclusive with Capability.
	Preset string `json:"preset,omitempty"`

	// Name identifies the class in reports (defaults to Preset).
	Name string `json:"name,omitempty"`

	// Count is how many hosts of this class to instantiate.
	Count int `json:"count"`

	// Capability maps resources to speed multipliers relative to the
	// reference server; missing resources default to 1.
	Capability map[string]float64 `json:"capability,omitempty"`

	// Power, when non-nil, overrides the scenario-level power model for
	// hosts of this class (watts; Platform must stay empty — the fleet
	// platform applies to every class). The analytic evaluator and the
	// placement planner account energy per class with it; the cluster
	// simulator's energy report keeps using the fleet-wide model.
	Power *Power `json:"power,omitempty"`
}

// hostClassPresets are the built-in hardware classes (the paper's
// Discussion: Intel machines run the case-study workloads ~20 % slower
// than the reference AMD servers).
var hostClassPresets = map[string]map[string]float64{
	"amd":   nil, // reference
	"intel": {workload.CPU: 1 / 1.2, workload.DiskIO: 1 / 1.2},
	"blade": {workload.CPU: 0.5, workload.DiskIO: 0.5},
}

// Alloc selects the consolidated resource allocator.
type Alloc struct {
	// Policy is "static", "proportional" or "priority". ("flowing" is
	// expressed by omitting Alloc entirely.)
	Policy string `json:"policy"`

	// Period is the reallocation interval in seconds for proportional and
	// priority policies; zero means 1 s.
	Period float64 `json:"period,omitempty"`

	// Cost is the capacity fraction lost to the reallocation machinery.
	Cost float64 `json:"cost,omitempty"`

	// MinShare is the per-VM guaranteed share floor (proportional).
	MinShare float64 `json:"min_share,omitempty"`

	// Weights are per-VM relative weights (static); empty means equal.
	Weights []float64 `json:"weights,omitempty"`

	// Priorities holds one rank per VM, lower = higher priority
	// (priority); empty means service order.
	Priorities []int `json:"priorities,omitempty"`

	// DemandCap bounds a single VM's per-round share (priority); zero
	// means 1.
	DemandCap float64 `json:"demand_cap,omitempty"`
}

// Failures enables host failure injection: exponential times-to-failure
// and times-to-repair.
type Failures struct {
	MTBF float64 `json:"mtbf"`
	MTTR float64 `json:"mttr"`
}

// Power parameterizes the linear per-server power model.
type Power struct {
	// BaseW is the idle draw, MaxW the full-utilization draw, in watts.
	BaseW float64 `json:"base_w,omitempty"`
	MaxW  float64 `json:"max_w,omitempty"`

	// Platform is "linux" or "xen"; empty selects linux for dedicated
	// scenarios and xen for consolidated ones.
	Platform string `json:"platform,omitempty"`
}

// Replication configures the independent-replications study.
type Replication struct {
	// Reps is the number of replications (seeds seed, seed+1, ...);
	// zero or one means a single run.
	Reps int `json:"reps,omitempty"`

	// Workers bounds concurrent replications; zero means all CPUs. The
	// worker count never changes results.
	Workers int `json:"workers,omitempty"`

	// Precision enables CI-driven early stopping on the pooled loss
	// probability when positive. Requires Reps > 1.
	Precision float64 `json:"precision,omitempty"`

	// Confidence is the CI level for early stopping; zero means 0.95.
	Confidence float64 `json:"confidence,omitempty"`

	// TimeoutSec is the wall-clock budget in seconds; zero means none.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Shards partitions each replication's fleet into up to this many
	// independently simulated shards run on concurrent goroutines
	// (dedicated mode only — a consolidated fleet is one coupling
	// component). Zero or one means sequential. Like Workers, the shard
	// count never changes results.
	Shards int `json:"shards,omitempty"`
}

// Parse strictly decodes one scenario from JSON: unknown fields are
// rejected so typos in scenario files fail loudly instead of silently
// falling back to defaults.
func Parse(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	// Reject trailing garbage after the scenario object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Scenario{}, fmt.Errorf("%w: trailing data after scenario object", ErrInvalid)
	}
	return s, nil
}

// ParseBytes decodes one scenario from a JSON byte slice.
func ParseBytes(data []byte) (Scenario, error) { return Parse(bytes.NewReader(data)) }

// Encode renders the scenario as indented JSON with a trailing newline —
// the canonical form golden fixtures and -dump-scenario use.
func (s Scenario) Encode(w io.Writer) error {
	data, err := s.MarshalIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// MarshalIndent renders the scenario as indented JSON with a trailing
// newline.
func (s Scenario) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ApplyDefaults materializes the documented defaults in place, producing
// the resolved scenario that -dump-scenario emits and run manifests embed.
// Simulator-internal defaults (admission cap, memory sizes, think time)
// stay zero: the compiled configuration applies them identically either
// way.
func (s *Scenario) ApplyDefaults() {
	if s.Mode == "" {
		s.Mode = "consolidated"
	}
	if s.Horizon == 0 {
		s.Horizon = 120
	}
	if s.Warmup == nil {
		w := s.Horizon / 6
		s.Warmup = &w
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Mode == "consolidated" && s.Fleet.Hosts == 0 && len(s.Fleet.Classes) == 0 {
		s.Fleet.Hosts = 4
	}
	if s.Power == nil {
		s.Power = &Power{}
	}
	if s.Power.BaseW == 0 && s.Power.MaxW == 0 {
		s.Power.BaseW, s.Power.MaxW = 250, 340 // the testbed server
	}
	if s.Power.Platform == "" {
		if s.Mode == "dedicated" {
			s.Power.Platform = "linux"
		} else {
			s.Power.Platform = "xen"
		}
	}
	if s.Replication == nil {
		s.Replication = &Replication{}
	}
	if s.Replication.Reps == 0 {
		s.Replication.Reps = 1
	}
	for i := range s.Fleet.Classes {
		hc := &s.Fleet.Classes[i]
		if hc.Name == "" {
			hc.Name = hc.Preset
		}
	}
	if s.Periods != nil {
		s.Periods.applyDefaults()
	}
}

// Validate checks the scenario. It accepts both raw and resolved
// scenarios: zero-valued optional fields are treated as their defaults.
func (s Scenario) Validate() error {
	resolved := s
	resolved.ApplyDefaults()
	return resolved.validate()
}

func (s Scenario) validate() error {
	if s.Mode != "dedicated" && s.Mode != "consolidated" {
		return fmt.Errorf("%w: mode %q (want dedicated or consolidated)", ErrInvalid, s.Mode)
	}
	if len(s.Services) == 0 {
		return fmt.Errorf("%w: no services", ErrInvalid)
	}
	for i := range s.Services {
		if err := s.Services[i].validate(s.Mode); err != nil {
			return fmt.Errorf("service %d: %w", i, err)
		}
	}
	if err := s.Fleet.validate(s.Mode); err != nil {
		return err
	}
	if s.Mode == "dedicated" && s.Alloc != nil {
		return fmt.Errorf("%w: alloc is a consolidated-mode setting", ErrInvalid)
	}
	if s.Alloc != nil {
		if err := s.Alloc.validate(len(s.Services)); err != nil {
			return err
		}
	}
	if s.AdmissionPerHost < 0 {
		return fmt.Errorf("%w: admission_per_host %d", ErrInvalid, s.AdmissionPerHost)
	}
	if !(s.Horizon > 0) || math.IsInf(s.Horizon, 0) {
		return fmt.Errorf("%w: horizon %g", ErrInvalid, s.Horizon)
	}
	if w := *s.Warmup; w < 0 || math.IsNaN(w) || w >= s.Horizon {
		return fmt.Errorf("%w: warmup %g (horizon %g)", ErrInvalid, w, s.Horizon)
	}
	if s.Failures != nil {
		if !(s.Failures.MTBF > 0) || !(s.Failures.MTTR > 0) ||
			math.IsInf(s.Failures.MTBF, 0) || math.IsInf(s.Failures.MTTR, 0) {
			return fmt.Errorf("%w: failures need positive mtbf and mttr", ErrInvalid)
		}
	}
	if p := s.Power; p != nil {
		if p.BaseW < 0 || p.MaxW < p.BaseW || math.IsNaN(p.BaseW) || math.IsNaN(p.MaxW) ||
			math.IsInf(p.MaxW, 0) {
			return fmt.Errorf("%w: power base_w=%g max_w=%g", ErrInvalid, p.BaseW, p.MaxW)
		}
		if p.Platform != "" && p.Platform != "linux" && p.Platform != "xen" {
			return fmt.Errorf("%w: power platform %q", ErrInvalid, p.Platform)
		}
	}
	if r := s.Replication; r != nil {
		if r.Reps < 1 {
			return fmt.Errorf("%w: replication reps %d", ErrInvalid, r.Reps)
		}
		if r.Workers < 0 {
			return fmt.Errorf("%w: replication workers %d", ErrInvalid, r.Workers)
		}
		if r.Precision < 0 || math.IsNaN(r.Precision) {
			return fmt.Errorf("%w: replication precision %g", ErrInvalid, r.Precision)
		}
		if r.Precision > 0 && r.Reps <= 1 {
			return fmt.Errorf("%w: precision-driven early stopping needs reps > 1", ErrInvalid)
		}
		if r.Confidence < 0 || r.Confidence >= 1 || math.IsNaN(r.Confidence) {
			return fmt.Errorf("%w: replication confidence %g", ErrInvalid, r.Confidence)
		}
		if r.TimeoutSec < 0 || math.IsNaN(r.TimeoutSec) {
			return fmt.Errorf("%w: replication timeout_sec %g", ErrInvalid, r.TimeoutSec)
		}
		if r.Shards < 0 {
			return fmt.Errorf("%w: replication shards %d", ErrInvalid, r.Shards)
		}
	}
	switch s.EventQueue {
	case "", "auto", "heap", "wheel":
	default:
		return fmt.Errorf("%w: event_queue %q (want auto, heap or wheel)", ErrInvalid, s.EventQueue)
	}
	if s.Periods != nil {
		if err := s.Periods.validate(s.Services); err != nil {
			return err
		}
	}
	return nil
}

func (s Service) validate(mode string) error {
	if err := s.Profile.validate(); err != nil {
		return err
	}
	if s.Overhead != nil {
		if err := s.Overhead.validate(); err != nil {
			return err
		}
	}
	open := s.Arrivals != nil
	closed := s.Clients > 0
	if !open && !closed {
		return fmt.Errorf("%w: needs either arrivals or clients", ErrInvalid)
	}
	if open && closed {
		return fmt.Errorf("%w: both open-loop arrivals and closed-loop clients", ErrInvalid)
	}
	if s.Clients < 0 {
		return fmt.Errorf("%w: clients %d", ErrInvalid, s.Clients)
	}
	if open {
		if err := s.Arrivals.Validate(); err != nil {
			return err
		}
	}
	if s.ThinkTime != nil {
		if !closed {
			return fmt.Errorf("%w: think_time without clients", ErrInvalid)
		}
		if err := s.ThinkTime.Validate(); err != nil {
			return err
		}
	}
	if mode == "dedicated" && s.DedicatedServers <= 0 {
		return fmt.Errorf("%w: dedicated mode needs dedicated_servers", ErrInvalid)
	}
	if s.DedicatedServers < 0 {
		return fmt.Errorf("%w: dedicated_servers %d", ErrInvalid, s.DedicatedServers)
	}
	if s.MemoryGB < 0 || math.IsNaN(s.MemoryGB) || math.IsInf(s.MemoryGB, 0) {
		return fmt.Errorf("%w: memory_gb %g", ErrInvalid, s.MemoryGB)
	}
	return nil
}

func (p Profile) validate() error {
	switch {
	case p.Preset != "" && len(p.Demands) > 0:
		return fmt.Errorf("%w: profile has both preset and inline demands", ErrInvalid)
	case p.Preset != "":
		if _, ok := profilePresets[p.Preset]; !ok {
			return fmt.Errorf("%w: unknown profile preset %q (have %s)",
				ErrInvalid, p.Preset, presetNameList(profilePresetNames))
		}
		if p.OSCeiling != 0 || p.Metric != "" {
			return fmt.Errorf("%w: os_ceiling/metric are inline-profile fields", ErrInvalid)
		}
	default:
		if p.Name == "" {
			return fmt.Errorf("%w: inline profile needs a name", ErrInvalid)
		}
		if len(p.Demands) == 0 {
			return fmt.Errorf("%w: profile needs a preset or inline demands", ErrInvalid)
		}
		for r, d := range p.Demands {
			if r == "" {
				return fmt.Errorf("%w: empty resource name in demands", ErrInvalid)
			}
			if err := d.Validate(); err != nil {
				return fmt.Errorf("demand %q: %w", r, err)
			}
		}
		if p.OSCeiling < 0 || math.IsNaN(p.OSCeiling) || math.IsInf(p.OSCeiling, 0) {
			return fmt.Errorf("%w: os_ceiling %g", ErrInvalid, p.OSCeiling)
		}
	}
	if p.DemandSCV != nil {
		if v := *p.DemandSCV; v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: demand_scv %g", ErrInvalid, v)
		}
	}
	return nil
}

func (o Overhead) validate() error {
	switch {
	case o.Preset != "" && len(o.Curves) > 0:
		return fmt.Errorf("%w: overhead has both preset and inline curves", ErrInvalid)
	case o.Preset != "":
		if o.Preset != "web" && o.Preset != "db" && o.Preset != "none" {
			return fmt.Errorf("%w: unknown overhead preset %q (web, db, none)", ErrInvalid, o.Preset)
		}
	default:
		for r, c := range o.Curves {
			if r == "" {
				return fmt.Errorf("%w: empty resource name in curves", ErrInvalid)
			}
			if err := c.validate(); err != nil {
				return fmt.Errorf("curve %q: %w", r, err)
			}
		}
	}
	if o.Pinning != "" && o.Pinning != "pinned" && o.Pinning != "xen-scheduled" {
		return fmt.Errorf("%w: pinning %q (pinned, xen-scheduled)", ErrInvalid, o.Pinning)
	}
	return nil
}

func (c Curve) validate() error {
	switch c.Kind {
	case "linear":
		if math.IsNaN(c.Intercept) || math.IsNaN(c.Slope) ||
			math.IsInf(c.Intercept, 0) || math.IsInf(c.Slope, 0) {
			return fmt.Errorf("%w: linear curve %g%+g·v", ErrInvalid, c.Intercept, c.Slope)
		}
	case "rational":
		if !(c.C > 0) || math.IsInf(c.C, 0) {
			return fmt.Errorf("%w: rational curve c %g", ErrInvalid, c.C)
		}
	case "constant":
		if !(c.Value > 0) || math.IsInf(c.Value, 0) {
			return fmt.Errorf("%w: constant curve value %g", ErrInvalid, c.Value)
		}
	case "":
		return fmt.Errorf("%w: curve missing kind", ErrInvalid)
	default:
		return fmt.Errorf("%w: unknown curve kind %q (linear, rational, constant)", ErrInvalid, c.Kind)
	}
	return nil
}

func (f Fleet) validate(mode string) error {
	if mode == "dedicated" {
		if f.Hosts != 0 || len(f.Classes) != 0 {
			return fmt.Errorf("%w: fleet hosts/classes are consolidated-mode settings", ErrInvalid)
		}
		return nil
	}
	if f.Hosts < 0 {
		return fmt.Errorf("%w: fleet hosts %d", ErrInvalid, f.Hosts)
	}
	classTotal := 0
	for i, hc := range f.Classes {
		if err := hc.validate(); err != nil {
			return fmt.Errorf("fleet class %d: %w", i, err)
		}
		classTotal += hc.Count
	}
	switch {
	case len(f.Classes) > 0 && f.Hosts != 0 && f.Hosts != classTotal:
		return fmt.Errorf("%w: fleet hosts %d != summed class counts %d", ErrInvalid, f.Hosts, classTotal)
	case len(f.Classes) == 0 && f.Hosts == 0:
		return fmt.Errorf("%w: consolidated scenario needs fleet hosts or classes", ErrInvalid)
	}
	if f.HostMemoryGB < 0 || math.IsNaN(f.HostMemoryGB) || math.IsInf(f.HostMemoryGB, 0) ||
		f.Dom0MemoryGB < 0 || math.IsNaN(f.Dom0MemoryGB) || math.IsInf(f.Dom0MemoryGB, 0) {
		return fmt.Errorf("%w: fleet memory sizes", ErrInvalid)
	}
	return nil
}

// ResolvedCapability reports the class's capability multipliers with
// presets expanded: nil means the reference server (every multiplier 1).
// The returned map is shared — callers must not mutate it.
func (h HostClass) ResolvedCapability() map[string]float64 {
	if h.Preset != "" {
		return hostClassPresets[h.Preset]
	}
	return h.Capability
}

// Validate checks one host class on its own (fleet-level checks live in
// Scenario.Validate).
func (h HostClass) Validate() error { return h.validate() }

func (h HostClass) validate() error {
	if h.Preset != "" {
		if _, ok := hostClassPresets[h.Preset]; !ok {
			return fmt.Errorf("%w: unknown host class preset %q (amd, intel, blade)", ErrInvalid, h.Preset)
		}
		if len(h.Capability) > 0 {
			return fmt.Errorf("%w: host class has both preset and capability", ErrInvalid)
		}
	} else if h.Name == "" {
		return fmt.Errorf("%w: host class needs a preset or a name", ErrInvalid)
	}
	if h.Count <= 0 {
		return fmt.Errorf("%w: host class count %d", ErrInvalid, h.Count)
	}
	for r, v := range h.Capability {
		if r == "" || !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: host class capability[%s] = %g", ErrInvalid, r, v)
		}
	}
	if p := h.Power; p != nil {
		if p.BaseW <= 0 || p.MaxW < p.BaseW || math.IsNaN(p.BaseW) || math.IsNaN(p.MaxW) ||
			math.IsInf(p.MaxW, 0) {
			return fmt.Errorf("%w: host class power base_w=%g max_w=%g", ErrInvalid, p.BaseW, p.MaxW)
		}
		if p.Platform != "" {
			return fmt.Errorf("%w: host class power takes no platform (the fleet platform applies)", ErrInvalid)
		}
	}
	return nil
}

func (a Alloc) validate(services int) error {
	switch a.Policy {
	case "static":
		if a.Period != 0 || a.Cost != 0 || a.MinShare != 0 || len(a.Priorities) != 0 || a.DemandCap != 0 {
			return fmt.Errorf("%w: static alloc takes only weights", ErrInvalid)
		}
		if len(a.Weights) != 0 && len(a.Weights) != services {
			return fmt.Errorf("%w: %d weights for %d services", ErrInvalid, len(a.Weights), services)
		}
		for i, w := range a.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("%w: weight[%d] = %g", ErrInvalid, i, w)
			}
		}
	case "proportional":
		if len(a.Weights) != 0 || len(a.Priorities) != 0 || a.DemandCap != 0 {
			return fmt.Errorf("%w: proportional alloc takes period, cost and min_share", ErrInvalid)
		}
		if a.MinShare < 0 || a.MinShare > 1 || math.IsNaN(a.MinShare) {
			return fmt.Errorf("%w: min_share %g", ErrInvalid, a.MinShare)
		}
	case "priority":
		if len(a.Weights) != 0 || a.MinShare != 0 {
			return fmt.Errorf("%w: priority alloc takes period, cost, priorities and demand_cap", ErrInvalid)
		}
		if len(a.Priorities) != 0 && len(a.Priorities) != services {
			return fmt.Errorf("%w: %d priorities for %d services", ErrInvalid, len(a.Priorities), services)
		}
		if a.DemandCap < 0 || a.DemandCap > 1 || math.IsNaN(a.DemandCap) {
			return fmt.Errorf("%w: demand_cap %g", ErrInvalid, a.DemandCap)
		}
	case "flowing":
		return fmt.Errorf("%w: ideal flowing is expressed by omitting alloc", ErrInvalid)
	case "":
		return fmt.Errorf("%w: alloc missing policy", ErrInvalid)
	default:
		return fmt.Errorf("%w: unknown alloc policy %q (static, proportional, priority)", ErrInvalid, a.Policy)
	}
	if a.Period < 0 || math.IsNaN(a.Period) || math.IsInf(a.Period, 0) {
		return fmt.Errorf("%w: alloc period %g", ErrInvalid, a.Period)
	}
	if a.Cost < 0 || a.Cost >= 1 || math.IsNaN(a.Cost) {
		return fmt.Errorf("%w: alloc cost %g", ErrInvalid, a.Cost)
	}
	return nil
}

func presetNameList(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
