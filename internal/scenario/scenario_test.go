package scenario

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/virt"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// examplesDir is the shipped scenario corpus, also used as fuzz seeds.
const examplesDir = "../../examples/scenarios"

func exampleFiles(t testing.TB) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios under %s (err %v)", examplesDir, err)
	}
	// sweep-*.json files are sweep specs (internal/sweep), not single
	// scenarios; they are exercised by the sweep package and CI's -sweep
	// smoke instead.
	scenarios := files[:0]
	for _, f := range files {
		if !strings.HasPrefix(filepath.Base(f), "sweep-") {
			scenarios = append(scenarios, f)
		}
	}
	if len(scenarios) == 0 {
		t.Fatalf("no non-sweep example scenarios under %s", examplesDir)
	}
	return scenarios
}

func TestExamplesValidateAndCompile(t *testing.T) {
	for _, file := range exampleFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ParseBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if s.Periods != nil {
			// Periods scenarios are planning constructs: they must refuse
			// to compile as a single cluster configuration, and every
			// resolved bin must compile instead.
			if _, err := s.Compile(); !errors.Is(err, ErrInvalid) {
				t.Fatalf("%s: periods scenario compiled (err %v), want ErrInvalid", file, err)
			}
			bins, err := s.ResolvePeriods()
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			for _, b := range bins {
				if _, err := b.Scenario.Compile(); err != nil {
					t.Fatalf("%s bin %s: %v", file, b.Name, err)
				}
			}
			continue
		}
		if _, err := s.Compile(); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
	}
}

// TestGolden pins the resolved (defaults-applied) encoding of every example
// scenario: parse → ApplyDefaults → encode must match the golden fixture,
// and re-parsing the encoding must reproduce the identical Scenario value.
// Regenerate with `go test ./internal/scenario -run TestGolden -update`.
func TestGolden(t *testing.T) {
	for _, file := range exampleFiles(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ParseBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			s.ApplyDefaults()
			var buf bytes.Buffer
			if err := s.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("resolved encoding drifted from %s:\n%s", golden, buf.String())
			}
			// encode → decode → encode is lossless.
			back, err := ParseBytes(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, back) {
				t.Errorf("round trip changed the scenario: %+v -> %+v", s, back)
			}
		})
	}
}

func TestPresetsCompile(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("only %d presets registered: %v", len(names), names)
	}
	for _, name := range names {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Compile(); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
	if _, err := Preset("no-such-preset"); err == nil {
		t.Error("unknown preset name resolved")
	}
}

func TestApplyDefaults(t *testing.T) {
	s := Scenario{Services: []Service{WebSpec(100, 1)}}
	s.ApplyDefaults()
	if s.Mode != "consolidated" || s.Horizon != 120 || s.Seed != 42 {
		t.Fatalf("defaults: %+v", s)
	}
	if s.Warmup == nil || *s.Warmup != 20 {
		t.Fatalf("warmup default: %v", s.Warmup)
	}
	if s.Fleet.Hosts != 4 {
		t.Fatalf("fleet default: %+v", s.Fleet)
	}
	if s.Power == nil || s.Power.BaseW != 250 || s.Power.MaxW != 340 || s.Power.Platform != "xen" {
		t.Fatalf("power default: %+v", s.Power)
	}
	if s.Replication == nil || s.Replication.Reps != 1 {
		t.Fatalf("replication default: %+v", s.Replication)
	}

	// An explicit zero warmup survives defaulting.
	zero := 0.0
	s2 := Scenario{Services: []Service{WebSpec(100, 1)}, Warmup: &zero}
	s2.ApplyDefaults()
	if *s2.Warmup != 0 {
		t.Fatalf("explicit zero warmup overwritten: %g", *s2.Warmup)
	}
}

func TestValidateRejects(t *testing.T) {
	web := WebSpec(100, 2)
	base := func(mut func(*Scenario)) Scenario {
		s := Scenario{Mode: "consolidated", Services: []Service{web}, Fleet: Fleet{Hosts: 2}}
		mut(&s)
		return s
	}
	neg := -1.0
	big := 1e9
	cases := []struct {
		name string
		s    Scenario
	}{
		{"bad mode", base(func(s *Scenario) { s.Mode = "hybrid" })},
		{"no services", base(func(s *Scenario) { s.Services = nil })},
		{"open and closed", base(func(s *Scenario) { s.Services[0].Clients = 5 })},
		{"neither open nor closed", base(func(s *Scenario) { s.Services[0].Arrivals = nil })},
		{"think time without clients", base(func(s *Scenario) {
			s.Services[0].ThinkTime = &stats.DistSpec{Kind: "exponential", Rate: 1}
		})},
		{"bad arrivals", base(func(s *Scenario) { s.Services[0].Arrivals = workload.PoissonSpec(-5) })},
		{"unknown profile preset", base(func(s *Scenario) { s.Services[0].Profile = Profile{Preset: "specweb-2099"} })},
		{"profile preset plus demands", base(func(s *Scenario) {
			s.Services[0].Profile.Demands = map[string]stats.DistSpec{"cpu": stats.ExpSpec(1)}
		})},
		{"inline profile without name", base(func(s *Scenario) {
			s.Services[0].Profile = Profile{Demands: map[string]stats.DistSpec{"cpu": stats.ExpSpec(1)}}
		})},
		{"negative demand scv", base(func(s *Scenario) { s.Services[0].Profile.DemandSCV = &neg })},
		{"unknown overhead preset", base(func(s *Scenario) { s.Services[0].Overhead = &Overhead{Preset: "kvm"} })},
		{"bad curve kind", base(func(s *Scenario) {
			s.Services[0].Overhead = &Overhead{Curves: map[string]Curve{"cpu": {Kind: "cubic"}}}
		})},
		{"bad pinning", base(func(s *Scenario) { s.Services[0].Overhead = &Overhead{Preset: "web", Pinning: "numa"} })},
		{"dedicated without pool", Scenario{Mode: "dedicated", Services: []Service{WebSpec(100, 0)}}},
		{"dedicated with fleet", Scenario{Mode: "dedicated", Services: []Service{web}, Fleet: Fleet{Hosts: 2}}},
		{"dedicated with alloc", Scenario{Mode: "dedicated", Services: []Service{web}, Alloc: &Alloc{Policy: "static"}}},
		{"hosts vs classes mismatch", base(func(s *Scenario) {
			s.Fleet.Classes = []HostClass{{Preset: "amd", Count: 3}}
		})},
		{"unknown class preset", base(func(s *Scenario) {
			s.Fleet.Hosts = 0
			s.Fleet.Classes = []HostClass{{Preset: "sparc", Count: 2}}
		})},
		{"class without count", base(func(s *Scenario) {
			s.Fleet.Hosts = 0
			s.Fleet.Classes = []HostClass{{Preset: "amd"}}
		})},
		{"alloc without policy", base(func(s *Scenario) { s.Alloc = &Alloc{} })},
		{"alloc flowing spelled out", base(func(s *Scenario) { s.Alloc = &Alloc{Policy: "flowing"} })},
		{"static with period", base(func(s *Scenario) { s.Alloc = &Alloc{Policy: "static", Period: 1} })},
		{"static weight count", base(func(s *Scenario) { s.Alloc = &Alloc{Policy: "static", Weights: []float64{1, 2}} })},
		{"proportional with priorities", base(func(s *Scenario) {
			s.Alloc = &Alloc{Policy: "proportional", Priorities: []int{0}}
		})},
		{"proportional min share", base(func(s *Scenario) { s.Alloc = &Alloc{Policy: "proportional", MinShare: 1.5} })},
		{"priority count", base(func(s *Scenario) { s.Alloc = &Alloc{Policy: "priority", Priorities: []int{0, 1}} })},
		{"alloc cost", base(func(s *Scenario) { s.Alloc = &Alloc{Policy: "proportional", Cost: 1} })},
		{"zero horizon", base(func(s *Scenario) { s.Horizon = -10 })},
		{"warmup past horizon", base(func(s *Scenario) { s.Horizon = 100; s.Warmup = &big })},
		{"mtbf without mttr", base(func(s *Scenario) { s.Failures = &Failures{MTBF: 100} })},
		{"negative mttr", base(func(s *Scenario) { s.Failures = &Failures{MTBF: 100, MTTR: -1} })},
		{"power platform", base(func(s *Scenario) { s.Power = &Power{BaseW: 100, MaxW: 200, Platform: "vmware"} })},
		{"power max below base", base(func(s *Scenario) { s.Power = &Power{BaseW: 300, MaxW: 200} })},
		{"precision with one rep", base(func(s *Scenario) { s.Replication = &Replication{Reps: 1, Precision: 0.05} })},
		{"negative reps", base(func(s *Scenario) { s.Replication = &Replication{Reps: -2} })},
		{"confidence", base(func(s *Scenario) { s.Replication = &Replication{Reps: 3, Confidence: 1.5} })},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`{"services": [], "typo_field": 1}`,
		`{"services": []}{"services": []}`, // trailing garbage
		`[1, 2, 3]`,
	}
	for _, in := range bad {
		if _, err := ParseBytes([]byte(in)); err == nil {
			t.Errorf("parsed %q", in)
		}
	}
}

// TestCompileMatchesHandBuilt pins the tentpole's determinism claim: a run
// from the compiled case-study scenario is bit-for-bit the run from the
// hand-built cluster.Config the experiments used to construct — same seed,
// same metrics.
func TestCompileMatchesHandBuilt(t *testing.T) {
	lambdaW, lambdaD := SaturationRates(4, 4)
	s := CaseStudy(4, 4, "consolidated", 4)
	s.Horizon = 24
	s.Seed = 7
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}

	hand := cluster.Config{
		Mode: cluster.Consolidated,
		Services: []cluster.ServiceSpec{
			{
				Profile:          workload.SPECwebEcommerce(),
				Overhead:         virt.WebHostOverhead(),
				Arrivals:         workload.NewPoisson(lambdaW),
				DedicatedServers: 4,
			},
			{
				Profile:          workload.TPCWEbook(),
				Overhead:         virt.DBHostOverhead(),
				Arrivals:         workload.NewPoisson(lambdaD),
				DedicatedServers: 4,
			},
		},
		ConsolidatedServers: 4,
		Horizon:             24,
		Warmup:              4,
		Seed:                7,
	}

	got, err := cluster.Run(c.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cluster.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Services, want.Services) {
		t.Errorf("service metrics diverge:\ncompiled: %+v\nhand:     %+v", got.Services, want.Services)
	}
	if !reflect.DeepEqual(got.Hosts, want.Hosts) {
		t.Errorf("host metrics diverge")
	}
	if got.Window != want.Window || got.Failures != want.Failures {
		t.Errorf("window/failures diverge: %g/%d vs %g/%d",
			got.Window, got.Failures, want.Window, want.Failures)
	}
}

// TestCompileFreshArrivalState verifies each Compile materializes
// independent arrival-process state, so replications and repeated runs
// never share RNG-consuming structures.
func TestCompileFreshArrivalState(t *testing.T) {
	s, err := Preset("fig9-web-sessions")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cluster.Services[0].Arrivals == b.Cluster.Services[0].Arrivals {
		t.Fatal("compiled scenarios share arrival-process state")
	}
}
