package scenario

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// shardTestHorizon keeps the whole example corpus cheap enough to run at
// three shard counts each: the saturation scenarios push thousands of
// arrivals per second, so a few simulated seconds already exercise every
// dispatch, admission and completion path.
const shardTestHorizon = 4.0

// runExampleAt compiles one example scenario and runs a single cluster
// replication at the given shard count, returning the Result with the Obs
// snapshot stripped (per-shard engine counters legitimately differ between
// shard layouts; the physics must not).
func runExampleAt(t *testing.T, file string, shards int, queue string) *cluster.Result {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Horizon > shardTestHorizon {
		s.Horizon = shardTestHorizon
	}
	if s.Warmup != nil && *s.Warmup > 1 {
		w := 1.0
		s.Warmup = &w
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.ApplyDefaults()
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Cluster
	cfg.Shards = shards
	cfg.EventQueue = queue
	res, err := cluster.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res.Obs = obs.Snapshot{}
	return res
}

// TestShardedExamplesMatchUnsharded is the shard-determinism golden test:
// every shipped example scenario must produce identical Results at shards
// 1, 2 and 4 — byte-for-byte equal service metrics, host utilizations,
// failure counts and windows. Sharding partitions the run across coupling
// components, which exchange no events, so any divergence is a bug in the
// partitioning, the per-shard arenas, or the merge.
func TestShardedExamplesMatchUnsharded(t *testing.T) {
	for _, file := range exampleFiles(t) {
		name := strings.TrimSuffix(filepath.Base(file), ".json")
		if strings.HasPrefix(name, "periods-") {
			// Periods scenarios have no single cluster configuration;
			// their resolved bins are plain stationary scenarios already
			// covered by this corpus.
			continue
		}
		t.Run(name, func(t *testing.T) {
			want := runExampleAt(t, file, 1, "")
			for _, n := range []int{2, 4} {
				got := runExampleAt(t, file, n, "")
				if !reflect.DeepEqual(want, got) {
					t.Errorf("shards=%d diverged from shards=1:\nwant %v\ngot  %v", n, want, got)
				}
			}
		})
	}
}

// TestShardedQueueChoiceMatches pins the other half of the determinism
// contract: for a fixed shard count, the heap and the timing-wheel queues
// pop events in the identical order, so forcing either must reproduce the
// auto-selected Result exactly.
func TestShardedQueueChoiceMatches(t *testing.T) {
	file := filepath.Join(examplesDir, "sharded-fleet.json")
	want := runExampleAt(t, file, 4, "heap")
	for _, queue := range []string{"auto", "wheel"} {
		got := runExampleAt(t, file, 4, queue)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("queue=%s diverged from queue=heap:\nwant %v\ngot  %v", queue, want, got)
		}
	}
}

// TestShardedExampleProducesWork guards the fixture itself: the sharded
// example must actually serve traffic in every service, or the determinism
// assertions above would vacuously pass on an idle fleet.
func TestShardedExampleProducesWork(t *testing.T) {
	res := runExampleAt(t, filepath.Join(examplesDir, "sharded-fleet.json"), 4, "")
	for _, svc := range res.Services {
		if svc.Served == 0 || math.IsNaN(svc.Throughput) {
			t.Errorf("service %s served nothing (throughput %v)", svc.Name, svc.Throughput)
		}
	}
}
