package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/erlang"
)

// Query is one batch question. Kind selects the computation; the other
// fields are its inputs (unused ones must stay zero):
//
//	"servers"     rho, target  -> smallest N with B(N, rho) <= target
//	"loss"        n, rho       -> B(n, rho), carried, utilization, wait
//	"traffic"     n, target    -> largest rho with B(n, rho) <= target
//	"utilization" n, rho       -> carried traffic / n
type Query struct {
	Kind   string  `json:"kind"`
	N      int     `json:"n,omitempty"`
	Rho    float64 `json:"rho,omitempty"`
	Target float64 `json:"target,omitempty"`
}

// QueryResult is one batch answer: the query echoed back, the populated
// outputs for its kind, or a per-query structured error. A batch response
// is 200 as long as the request itself was well-formed; individual
// failures ride in Error so one bad query cannot hide the others'
// answers.
type QueryResult struct {
	Query       Query      `json:"query"`
	Servers     *int       `json:"servers,omitempty"`
	Loss        *float64   `json:"loss,omitempty"`
	Carried     *float64   `json:"carried,omitempty"`
	Utilization *float64   `json:"utilization,omitempty"`
	Wait        *float64   `json:"wait,omitempty"`
	Traffic     *float64   `json:"traffic,omitempty"`
	Error       *ErrorBody `json:"error,omitempty"`
}

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// BatchResponse is the POST /v1/batch response.
type BatchResponse struct {
	Results []QueryResult `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodePost(w, r, func(r *http.Request) error {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		return dec.Decode(&req)
	}) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "batch needs at least one query")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("batch of %d queries exceeds the %d-query cap", len(req.Queries), s.cfg.MaxBatchQueries))
		return
	}

	resp := BatchResponse{Results: make([]QueryResult, len(req.Queries))}
	for i, q := range req.Queries {
		resp.Results[i] = s.answerQuery(q)
	}
	writeJSON(w, http.StatusOK, resp)
}

// answerQuery evaluates one batch query against the memo. It is also the
// sequential core the load harness exercises through /v1/batch.
func (s *Server) answerQuery(q Query) QueryResult {
	res := QueryResult{Query: q}
	fail := func(code, msg string) QueryResult {
		res.Error = &ErrorBody{Code: code, Message: msg}
		return res
	}
	switch q.Kind {
	case "servers":
		if !(q.Target > 0 && q.Target < 1) {
			return fail(CodeInvalidArgument,
				"target: must lie in (0, 1), got "+strconv.FormatFloat(q.Target, 'g', -1, 64))
		}
		n, err := s.memo.Servers(q.Rho, q.Target)
		if err != nil {
			return fail(CodeInvalidArgument, err.Error())
		}
		loss, err := s.memo.B(n, q.Rho)
		if err != nil {
			return fail(CodeInternal, err.Error())
		}
		util := 0.0
		if n > 0 {
			util = q.Rho * (1 - loss) / float64(n)
		}
		res.Servers, res.Loss, res.Utilization = &n, &loss, &util
	case "loss":
		loss, err := s.memo.B(q.N, q.Rho)
		if err != nil {
			return fail(CodeInvalidArgument, err.Error())
		}
		carried := q.Rho * (1 - loss)
		util, wait := 0.0, 1.0
		if q.N > 0 {
			util = carried / float64(q.N)
			if wait, err = s.memo.C(q.N, q.Rho); err != nil {
				return fail(CodeInternal, err.Error())
			}
		}
		res.Loss, res.Carried, res.Utilization, res.Wait = &loss, &carried, &util, &wait
	case "traffic":
		if !(q.Target > 0 && q.Target < 1) {
			return fail(CodeInvalidArgument,
				"target: must lie in (0, 1), got "+strconv.FormatFloat(q.Target, 'g', -1, 64))
		}
		rho, err := erlang.Traffic(q.N, q.Target)
		if err != nil {
			return fail(CodeInvalidArgument, err.Error())
		}
		res.Traffic = &rho
	case "utilization":
		util, err := s.memo.Utilization(q.N, q.Rho)
		if err != nil {
			return fail(CodeInvalidArgument, err.Error())
		}
		res.Utilization = &util
	default:
		return fail(CodeInvalidArgument, "unknown query kind "+strconv.Quote(q.Kind))
	}
	return res
}
