package serve

import (
	"net/http"
	"net/url"
	"testing"
)

// BenchmarkServeQuery measures the full single-query serve path — route
// lookup, metrics middleware, raw-query parse, memoized Erlang lookup and
// append-style JSON encoding — against a warm memo. The simbench/benchdiff
// gate holds this at 0 allocs/op: any allocation on this path is a
// regression, not noise.
func BenchmarkServeQuery(b *testing.B) {
	s, err := New(Config{PreheatRhos: []float64{120}, PreheatServers: 1024})
	if err != nil {
		b.Fatal(err)
	}
	req := &http.Request{Method: "GET", URL: &url.URL{Path: "/v1/servers", RawQuery: "rho=120&target=0.001"}}
	w := &nullResponseWriter{h: http.Header{}}
	s.ServeHTTP(w, req) // warm pools and the header map
	if w.status != 200 {
		b.Fatalf("warmup status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
}

// BenchmarkServeLoss covers the fixed-pool companion endpoint.
func BenchmarkServeLoss(b *testing.B) {
	s, err := New(Config{PreheatRhos: []float64{120}, PreheatServers: 1024})
	if err != nil {
		b.Fatal(err)
	}
	req := &http.Request{Method: "GET", URL: &url.URL{Path: "/v1/loss", RawQuery: "n=140&rho=120"}}
	w := &nullResponseWriter{h: http.Header{}}
	s.ServeHTTP(w, req)
	if w.status != 200 {
		b.Fatalf("warmup status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
}
