package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Error codes of the structured error shape. Every non-2xx response body
// is exactly {"error":{"code":<code>,"message":<message>}}.
const (
	CodeInvalidArgument  = "invalid_argument"
	CodeInfeasible       = "infeasible"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeBodyTooLarge     = "body_too_large"
	CodeCanceled         = "canceled"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeInternal         = "internal"
	CodeUnavailable      = "unavailable"
)

// statusCanceledClient is the non-standard 499 "client closed request"
// status (nginx convention) for requests abandoned mid-flight. The client
// usually never sees it, but it keeps access logs and metrics honest.
const statusCanceledClient = 499

// ErrorBody is the inner object of the structured error shape; exported so
// clients (the load harness, the batch response) can decode it.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the full error envelope.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// appendError appends the structured error JSON to buf. It is the only
// error serializer — the hot path and encoding/json handlers produce the
// identical shape.
func appendError(buf []byte, code, message string) []byte {
	buf = append(buf, `{"error":{"code":`...)
	buf = strconv.AppendQuote(buf, code)
	buf = append(buf, `,"message":`...)
	buf = strconv.AppendQuote(buf, message)
	buf = append(buf, "}}"...)
	return buf
}

// writeError writes a structured error response.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeResponse(w, status, appendError(nil, code, message))
}

// contentTypeJSON is the shared Content-Type header value, assigned
// directly into the header map so the hot path does not allocate a fresh
// []string per response the way Header().Set does.
var contentTypeJSON = []string{"application/json"}

// writeResponse writes body with the JSON content type. The write error is
// ignored: a failed response write means the client is gone, and the
// per-route 5xx metrics already capture server-side failures.
func writeResponse(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h["Content-Type"] = contentTypeJSON
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSON marshals v; a marshal failure (a programming error — every
// response type here is marshalable) degrades to a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "encoding response: "+err.Error())
		return
	}
	writeResponse(w, status, body)
}
