package serve

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden response fixtures")

// goldenCases are the committed response fixtures. The CI serve-smoke job
// curls the same requests against a running binary and byte-diffs against
// the same files, so this test is the local proof that the goldens are
// current. Bodies must therefore be fully deterministic: no timestamps,
// no map iteration, no cache-state dependence (a fresh server never
// reports cache hits).
var goldenCases = []struct {
	name     string
	method   string
	target   string
	bodyFile string // request body file for POSTs, relative to testdata/
	status   int
	golden   string
}{
	{"servers", "GET", "/v1/servers?rho=120&target=0.001", "", 200, "servers.json"},
	{"loss", "GET", "/v1/loss?n=8&rho=5", "", 200, "loss.json"},
	{"batch", "POST", "/v1/batch", "batch-request.json", 200, "batch.json"},
	{"sweep", "POST", "/v1/sweep", "sweep-request.json", 200, "sweep.json"},
	{"plan", "POST", "/v1/plan", "plan-request.json", 200, "plan.json"},
	{"plan-infeasible", "POST", "/v1/plan", "plan-infeasible-request.json", 422, "error-plan-infeasible.json"},
	{"plan-periods", "POST", "/v1/plan", "plan-periods-request.json", 200, "plan-periods.json"},
	{"plan-periods-unknown", "POST", "/v1/plan", "plan-periods-unknown-request.json", 400, "error-plan-periods-unknown.json"},
	{"plan-periods-infeasible", "POST", "/v1/plan", "plan-periods-infeasible-request.json", 422, "error-plan-periods-infeasible.json"},
	{"bad-target", "GET", "/v1/servers?rho=5&target=2", "", 400, "error-bad-target.json"},
	{"healthz", "GET", "/healthz", "", 200, "healthz.json"},
}

func TestGoldenResponses(t *testing.T) {
	s := newTestServer(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.bodyFile != "" {
				data, err := os.ReadFile(filepath.Join("testdata", tc.bodyFile))
				if err != nil {
					t.Fatal(err)
				}
				body = strings.NewReader(string(data))
			} else {
				body = strings.NewReader("")
			}
			w := httptest.NewRecorder()
			s.ServeHTTP(w, httptest.NewRequest(tc.method, tc.target, body))
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d; body %s", w.Code, tc.status, w.Body.String())
			}
			path := filepath.Join("testdata", "golden", tc.golden)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, w.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/serve -run TestGolden -update): %v", err)
			}
			if !bytes.Equal(w.Body.Bytes(), want) {
				t.Errorf("response differs from golden %s:\ngot:  %s\nwant: %s", path, w.Body.String(), want)
			}
		})
	}
}
