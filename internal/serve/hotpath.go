package serve

import (
	"net/url"
	"strconv"
	"strings"
)

// The single-query GET endpoints are the service's hot path: parse the raw
// query string in place, answer from the Erlang memo, and append the
// response JSON into a pooled buffer. After the memo is warm for a traffic
// value, a request allocates nothing (pinned by BenchmarkServeQuery and
// TestServeQueryAllocations).

// qparams is the decoded query-string parameter set of the GET endpoints.
// Presence flags distinguish "absent" from zero values.
type qparams struct {
	rho, target float64
	n           int
	hasRho      bool
	hasTarget   bool
	hasN        bool
}

// parseQuery decodes raw ("rho=120&target=0.001") into p, restricted to
// the keys the endpoint allows. On failure it appends a structured error
// to buf and returns it with ok=false; the caller responds 400 with that
// body. Unknown and duplicate keys are rejected so client typos fail
// loudly instead of silently applying defaults. Escaped values take a
// slow (allocating) unescape path; plain numbers never allocate.
func parseQuery(raw string, allowN, allowRho, allowTarget bool, p *qparams, buf []byte) ([]byte, bool) {
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" {
			continue
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		if strings.IndexByte(val, '%') >= 0 || strings.IndexByte(val, '+') >= 0 {
			u, err := url.QueryUnescape(val)
			if err != nil {
				return appendError(buf, CodeInvalidArgument, "malformed query escape in "+key), false
			}
			val = u
		}
		switch {
		case key == "n" && allowN:
			if p.hasN {
				return appendError(buf, CodeInvalidArgument, "duplicate parameter n"), false
			}
			v, err := strconv.Atoi(val)
			if err != nil {
				return appendError(buf, CodeInvalidArgument, "n: not an integer: "+strconv.Quote(val)), false
			}
			p.n, p.hasN = v, true
		case key == "rho" && allowRho:
			if p.hasRho {
				return appendError(buf, CodeInvalidArgument, "duplicate parameter rho"), false
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return appendError(buf, CodeInvalidArgument, "rho: not a number: "+strconv.Quote(val)), false
			}
			p.rho, p.hasRho = v, true
		case key == "target" && allowTarget:
			if p.hasTarget {
				return appendError(buf, CodeInvalidArgument, "duplicate parameter target"), false
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return appendError(buf, CodeInvalidArgument, "target: not a number: "+strconv.Quote(val)), false
			}
			p.target, p.hasTarget = v, true
		default:
			return appendError(buf, CodeInvalidArgument, "unknown parameter "+strconv.Quote(key)), false
		}
	}
	return buf, true
}

// checkTarget enforces the API-level loss-target domain: the open interval
// (0, 1). (The underlying math accepts 1, but a loss target of 1 or worse
// is always a client mistake at this layer.)
func checkTarget(target float64, buf []byte) ([]byte, bool) {
	if !(target > 0 && target < 1) { // NaN fails too
		return appendError(buf, CodeInvalidArgument,
			"target: must lie in (0, 1), got "+strconv.FormatFloat(target, 'g', -1, 64)), false
	}
	return buf, true
}

// answerServers handles GET /v1/servers?rho=&target=: the paper's sizing
// question — the smallest N with B(N, ρ) <= target — plus the achieved
// loss and per-server utilization at that N.
func (s *Server) answerServers(raw string, buf []byte) ([]byte, int) {
	var p qparams
	buf, ok := parseQuery(raw, false, true, true, &p, buf)
	if !ok {
		return buf, 400
	}
	if !p.hasRho || !p.hasTarget {
		return appendError(buf, CodeInvalidArgument, "need rho and target parameters"), 400
	}
	if buf, ok = checkTarget(p.target, buf); !ok {
		return buf, 400
	}
	n, err := s.memo.Servers(p.rho, p.target)
	if err != nil {
		return appendError(buf, CodeInvalidArgument, err.Error()), 400
	}
	loss, err := s.memo.B(n, p.rho)
	if err != nil {
		return appendError(buf, CodeInternal, err.Error()), 500
	}
	util := 0.0
	if n > 0 {
		util = p.rho * (1 - loss) / float64(n)
	}
	buf = append(buf, `{"rho":`...)
	buf = appendFloat(buf, p.rho)
	buf = append(buf, `,"target":`...)
	buf = appendFloat(buf, p.target)
	buf = append(buf, `,"servers":`...)
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, `,"loss":`...)
	buf = appendFloat(buf, loss)
	buf = append(buf, `,"utilization":`...)
	buf = appendFloat(buf, util)
	buf = append(buf, '}')
	return buf, 200
}

// answerLoss handles GET /v1/loss?n=&rho=: the allocator-bound reading of
// the model ("fix M = N") — with the server count pinned, what loss does
// this traffic see — plus carried traffic, utilization, and the Erlang C
// waiting probability as the delay-system companion.
func (s *Server) answerLoss(raw string, buf []byte) ([]byte, int) {
	var p qparams
	buf, ok := parseQuery(raw, true, true, false, &p, buf)
	if !ok {
		return buf, 400
	}
	if !p.hasN || !p.hasRho {
		return appendError(buf, CodeInvalidArgument, "need n and rho parameters"), 400
	}
	loss, err := s.memo.B(p.n, p.rho)
	if err != nil {
		return appendError(buf, CodeInvalidArgument, err.Error()), 400
	}
	carried := p.rho * (1 - loss)
	util := 0.0
	wait := 1.0
	if p.n > 0 {
		util = carried / float64(p.n)
		wait, err = s.memo.C(p.n, p.rho)
		if err != nil {
			return appendError(buf, CodeInternal, err.Error()), 500
		}
	}
	buf = append(buf, `{"n":`...)
	buf = strconv.AppendInt(buf, int64(p.n), 10)
	buf = append(buf, `,"rho":`...)
	buf = appendFloat(buf, p.rho)
	buf = append(buf, `,"loss":`...)
	buf = appendFloat(buf, loss)
	buf = append(buf, `,"carried":`...)
	buf = appendFloat(buf, carried)
	buf = append(buf, `,"utilization":`...)
	buf = appendFloat(buf, util)
	buf = append(buf, `,"wait":`...)
	buf = appendFloat(buf, wait)
	buf = append(buf, '}')
	return buf, 200
}

// appendFloat appends v in the shortest round-trip form — the same
// encoding JFloat and encoding/json use, so every number in the API is
// byte-deterministic.
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
