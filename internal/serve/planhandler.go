package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// PlanRequest is the POST /v1/plan request: a declarative scenario (the
// same JSON cmd/simulate runs), a loss target, and optional knobs of the
// placement search.
type PlanRequest struct {
	// Scenario is the embedded scenario document; it is parsed with the
	// scenario package's strict decoder so unknown fields are rejected.
	Scenario json.RawMessage `json:"scenario"`

	// Target is the loss-probability target B in (0, 1).
	Target float64 `json:"target"`

	// Objective selects "min-servers" (default) or "min-power".
	Objective string `json:"objective,omitempty"`

	// Seed drives the annealing kick; zero adopts the scenario's seed.
	Seed int64 `json:"seed,omitempty"`

	// MaxIters bounds local-search rounds; zero selects the default.
	MaxIters int `json:"max_iters,omitempty"`

	// Evaluator selects the candidate scorer: "analytic" (default,
	// shares the hot path's Erlang memo) or "sim" (runs candidates
	// through the shared sweep engine — budgeted and cached).
	Evaluator string `json:"evaluator,omitempty"`
}

// handlePlan searches a placement over the unified evaluation layer: the
// cheapest fleet (by the requested objective) whose worst per-service
// loss meets the target. Infeasible supply is a structured 422, analytic
// domain errors (closed-loop services, failure injection) a 400.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodePost(w, r, func(r *http.Request) error {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		return dec.Decode(&req)
	}) {
		return
	}
	if len(req.Scenario) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "plan needs a scenario")
		return
	}
	if math.IsNaN(req.Target) || req.Target <= 0 || req.Target >= 1 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("target %g outside (0, 1)", req.Target))
		return
	}
	switch req.Objective {
	case "", plan.MinServers, plan.MinPower:
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("objective %q (want %q or %q)", req.Objective, plan.MinServers, plan.MinPower))
		return
	}
	if req.MaxIters < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("max_iters=%d (negative; 0 selects the default)", req.MaxIters))
		return
	}
	var ev eval.Evaluator
	switch req.Evaluator {
	case "", "analytic":
		ev = s.analytic
	case "sim":
		ev = s.sim
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("evaluator %q (want \"analytic\" or \"sim\")", req.Evaluator))
		return
	}
	sc, err := scenario.ParseBytes(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	p, err := plan.Search(ctx, ev, s.cfg.Pool, plan.Spec{
		Scenario:  sc,
		Target:    req.Target,
		Objective: req.Objective,
		Seed:      req.Seed,
		MaxIters:  req.MaxIters,
	})
	switch {
	case err == nil:
	case errors.Is(err, plan.ErrInfeasible):
		writeError(w, http.StatusUnprocessableEntity, CodeInfeasible, err.Error())
		return
	case errors.Is(err, eval.ErrUnsupported):
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	default:
		// Scenario validation failures surface here (Search revalidates
		// its private clone); treat anything that is not an execution
		// error as a bad request.
		if r.Context().Err() == nil && ctx.Err() == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
			return
		}
		writeRunError(w, r.Context(), err)
		return
	}
	s.plansRun.Inc()
	s.planEvals.Add(uint64(p.Evaluations))
	writeJSON(w, http.StatusOK, p)
}
