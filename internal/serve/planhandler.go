package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// PlanRequest is the POST /v1/plan request: a declarative scenario (the
// same JSON cmd/simulate runs), a loss target, and optional knobs of the
// placement search.
type PlanRequest struct {
	// Scenario is the embedded scenario document; it is parsed with the
	// scenario package's strict decoder so unknown fields are rejected.
	Scenario json.RawMessage `json:"scenario"`

	// Target is the loss-probability target B in (0, 1).
	Target float64 `json:"target"`

	// Objective selects "min-servers" (default) or "min-power".
	Objective string `json:"objective,omitempty"`

	// Seed drives the annealing kick; zero adopts the scenario's seed.
	Seed int64 `json:"seed,omitempty"`

	// MaxIters bounds local-search rounds; zero selects the default.
	MaxIters int `json:"max_iters,omitempty"`

	// Evaluator selects the candidate scorer: "analytic" (default,
	// shares the hot path's Erlang memo) or "sim" (runs candidates
	// through the shared sweep engine — budgeted and cached).
	Evaluator string `json:"evaluator,omitempty"`

	// Periods, when present, asks for a multi-period schedule instead of
	// a single placement: the scenario must carry a "periods" spec, and
	// the response is a plan.PeriodPlan (per-bin plans, the migration
	// schedule, and the day's watt-hours).
	Periods *PlanPeriods `json:"periods,omitempty"`
}

// PlanPeriods is the periods block of a plan request. The enclosing
// decoder rejects unknown fields recursively, so typos inside this block
// are structured 400s, not silently-defaulted knobs.
type PlanPeriods struct {
	// MigrationCostWh charges every VM move at a segment boundary;
	// finite and >= 0 (the JSON surface cannot carry +Inf — omit the
	// periods block and plan the peak yourself for a static fleet).
	MigrationCostWh float64 `json:"migration_cost_wh,omitempty"`
}

// handlePlan searches a placement over the unified evaluation layer: the
// cheapest fleet (by the requested objective) whose worst per-service
// loss meets the target. Infeasible supply is a structured 422, analytic
// domain errors (closed-loop services, failure injection) a 400.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodePost(w, r, func(r *http.Request) error {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		return dec.Decode(&req)
	}) {
		return
	}
	if len(req.Scenario) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "plan needs a scenario")
		return
	}
	if math.IsNaN(req.Target) || req.Target <= 0 || req.Target >= 1 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("target %g outside (0, 1)", req.Target))
		return
	}
	switch req.Objective {
	case "", plan.MinServers, plan.MinPower:
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("objective %q (want %q or %q)", req.Objective, plan.MinServers, plan.MinPower))
		return
	}
	if req.MaxIters < 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("max_iters=%d (negative; 0 selects the default)", req.MaxIters))
		return
	}
	var ev eval.Evaluator
	switch req.Evaluator {
	case "", "analytic":
		ev = s.analytic
	case "sim":
		ev = s.sim
	default:
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("evaluator %q (want \"analytic\" or \"sim\")", req.Evaluator))
		return
	}
	if req.Periods != nil {
		if c := req.Periods.MigrationCostWh; math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument,
				fmt.Sprintf("periods.migration_cost_wh %g: want a finite charge >= 0 Wh per VM move", c))
			return
		}
	}
	sc, err := scenario.ParseBytes(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	spec := plan.Spec{
		Scenario:  sc,
		Target:    req.Target,
		Objective: req.Objective,
		Seed:      req.Seed,
		MaxIters:  req.MaxIters,
	}
	var result any
	var evaluations int
	if req.Periods != nil {
		pp, perr := plan.SearchPeriods(ctx, ev, s.cfg.Pool, spec, req.Periods.MigrationCostWh)
		result, evaluations, err = pp, pp.Evaluations, perr
	} else {
		p, perr := plan.Search(ctx, ev, s.cfg.Pool, spec)
		result, evaluations, err = p, p.Evaluations, perr
	}
	switch {
	case err == nil:
	case errors.Is(err, plan.ErrInfeasible):
		writeError(w, http.StatusUnprocessableEntity, CodeInfeasible, err.Error())
		return
	case errors.Is(err, eval.ErrUnsupported):
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	default:
		// Scenario validation failures surface here (Search revalidates
		// its private clone); treat anything that is not an execution
		// error as a bad request. A periods block on a periods-free
		// scenario (and the converse) lands here too.
		if r.Context().Err() == nil && ctx.Err() == nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
			return
		}
		writeRunError(w, r.Context(), err)
		return
	}
	s.plansRun.Inc()
	s.planEvals.Add(uint64(evaluations))
	writeJSON(w, http.StatusOK, result)
}
