package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/plan"
)

func postPlan(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(body)))
	return w
}

const planScenario = `{
  "mode": "consolidated",
  "services": [
    {
      "profile": { "preset": "specweb-ecommerce" },
      "overhead": { "preset": "web" },
      "arrivals": { "kind": "poisson", "rate": 2800 },
      "dedicated_servers": 3
    }
  ],
  "fleet": { "hosts": 4 }
}`

func TestPlanEndpoint(t *testing.T) {
	s := newTestServer(t)
	w := postPlan(t, s, `{"scenario": `+planScenario+`, "target": 0.05}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var p plan.Plan
	dec := json.NewDecoder(w.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		t.Fatalf("decoding plan: %v", err)
	}
	if p.Hosts <= 0 || p.Result.Loss > 0.05 || p.Mode != "consolidated" {
		t.Fatalf("degenerate plan: %+v", p)
	}
	if p.Result.Source != "analytic" {
		t.Fatalf("default evaluator = %s", p.Result.Source)
	}

	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve/plans_run"]; got != 1 {
		t.Fatalf("serve/plans_run = %d, want 1", got)
	}
	if got := snap.Counters["serve/plan_evaluations"]; got == 0 {
		t.Fatal("serve/plan_evaluations did not count candidate scores")
	}
}

func TestPlanEndpointRejections(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"missing scenario", `{"target": 0.05}`, 400, CodeInvalidArgument},
		{"bad target", `{"scenario": ` + planScenario + `, "target": 1.5}`, 400, CodeInvalidArgument},
		{"zero target", `{"scenario": ` + planScenario + `, "target": 0}`, 400, CodeInvalidArgument},
		{"bad objective", `{"scenario": ` + planScenario + `, "target": 0.05, "objective": "max-profit"}`, 400, CodeInvalidArgument},
		{"bad evaluator", `{"scenario": ` + planScenario + `, "target": 0.05, "evaluator": "oracle"}`, 400, CodeInvalidArgument},
		{"negative iters", `{"scenario": ` + planScenario + `, "target": 0.05, "max_iters": -1}`, 400, CodeInvalidArgument},
		{"unknown field", `{"scenario": ` + planScenario + `, "target": 0.05, "bogus": 1}`, 400, CodeInvalidArgument},
		{"scenario unknown field", `{"scenario": {"mode": "consolidated", "bogus": 1}, "target": 0.05}`, 400, CodeInvalidArgument},
		{"closed-loop scenario", `{"scenario": {"mode": "consolidated",
			"services": [{"profile": {"preset": "tpcw-ebook"},
				"clients": 40, "think_time": {"kind": "exponential", "rate": 0.14},
				"dedicated_servers": 1}],
			"fleet": {"hosts": 2}}, "target": 0.05}`, 400, CodeInvalidArgument},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := postPlan(t, s, c.body)
			if w.Code != c.status {
				t.Fatalf("status %d, want %d; body %s", w.Code, c.status, w.Body.String())
			}
			if got := decodeError(t, w); got.Code != c.code {
				t.Fatalf("code %s, want %s", got.Code, c.code)
			}
		})
	}

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/plan", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", w.Code)
	}
}

const periodsScenario = `{
  "mode": "consolidated",
  "services": [
    {
      "profile": { "preset": "specweb-ecommerce" },
      "overhead": { "preset": "web" },
      "arrivals": { "kind": "poisson", "rate": 2800 },
      "dedicated_servers": 3
    }
  ],
  "fleet": { "hosts": 4 },
  "periods": {
    "bin_sec": 28800,
    "bins": [
      { "name": "off", "multiplier": 0.4 },
      { "name": "mid", "multiplier": 1.0 },
      { "name": "peak", "multiplier": 1.3 }
    ]
  }
}`

// A periods request returns a full multi-period schedule: per-bin plans
// in time order, consistent energy accounting, and the shared plan
// counters ticking.
func TestPlanEndpointPeriods(t *testing.T) {
	s := newTestServer(t)
	w := postPlan(t, s, `{"scenario": `+periodsScenario+`, "target": 0.05, "periods": {"migration_cost_wh": 12}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var pp plan.PeriodPlan
	dec := json.NewDecoder(w.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pp); err != nil {
		t.Fatalf("decoding period plan: %v", err)
	}
	if len(pp.Bins) != 3 || pp.MigrationCostWh != 12 || pp.Mode != "consolidated" {
		t.Fatalf("degenerate period plan: %+v", pp)
	}
	for _, b := range pp.Bins {
		if b.Hosts <= 0 || b.Result.Loss > 0.05 {
			t.Fatalf("bin %s: hosts=%d loss=%g", b.Name, b.Hosts, b.Result.Loss)
		}
	}
	if pp.TotalWh != pp.EnergyWh+pp.MigrationWh {
		t.Fatalf("totals inconsistent: %+v", pp)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve/plans_run"]; got != 1 {
		t.Fatalf("serve/plans_run = %d, want 1", got)
	}
	if got := snap.Counters["serve/plan_evaluations"]; got == 0 {
		t.Fatal("serve/plan_evaluations did not count period-plan scores")
	}
}

// The periods surface rejects malformed requests as structured 400s:
// bad costs, typos inside the periods block (the strict decoder is
// recursive), a periods block on a periods-free scenario, and a periods
// scenario without the periods block.
func TestPlanEndpointPeriodsRejections(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"negative cost", `{"scenario": ` + periodsScenario + `, "target": 0.05, "periods": {"migration_cost_wh": -1}}`},
		{"unknown field in periods block", `{"scenario": ` + periodsScenario + `, "target": 0.05, "periods": {"migration_cost_wh": 12, "bogus": 1}}`},
		{"periods block without periods scenario", `{"scenario": ` + planScenario + `, "target": 0.05, "periods": {"migration_cost_wh": 12}}`},
		{"periods scenario without periods block", `{"scenario": ` + periodsScenario + `, "target": 0.05}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := postPlan(t, s, c.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", w.Code, w.Body.String())
			}
			if got := decodeError(t, w); got.Code != CodeInvalidArgument {
				t.Fatalf("code %s, want %s", got.Code, CodeInvalidArgument)
			}
		})
	}
}

// An undersized supply is a structured 422, distinguishable from a malformed
// request.
func TestPlanEndpointInfeasible(t *testing.T) {
	s := newTestServer(t)
	data, err := os.ReadFile(filepath.Join("testdata", "plan-infeasible-request.json"))
	if err != nil {
		t.Fatal(err)
	}
	w := postPlan(t, s, string(data))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := decodeError(t, w); got.Code != CodeInfeasible {
		t.Fatalf("code %s, want %s", got.Code, CodeInfeasible)
	}
}
