//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (the race runtime
// allocates on instrumented paths).
const raceEnabled = false
