// Package serve implements the capacity-planning HTTP/JSON service behind
// cmd/consolidated: the paper's analytic questions ("how many servers does
// this traffic need at this loss target", "what loss does this traffic see
// on a fixed pool") exposed as single-query GET endpoints, a batch
// endpoint, and a what-if sweep endpoint lowered onto the existing
// internal/sweep engine, plus health, readiness and metrics.
//
// The single-query path is allocation-free after warmup: queries are
// parsed straight off the raw query string, answered from the memoized
// Erlang tables (erlang.Memo — an immutable lookup structure behind an
// atomic pointer), and encoded with append-style JSON into pooled
// buffers. See DESIGN.md §11.
package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/erlang"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/sweep"
)

// Config parameterizes a Server. The zero value is serviceable: an
// unbounded private pool, no sweep cache, a private registry, and the
// default limits.
type Config struct {
	// Pool is the shared simulation budget for sweep points; nil builds a
	// GOMAXPROCS-sized pool.
	Pool *pool.Pool

	// Cache, when non-nil, memoizes sweep points content-addressed (the
	// same store cmd/repro uses).
	Cache *sweep.Cache

	// Registry collects the service metrics; nil builds a private one.
	Registry *obs.Registry

	// MaxBodyBytes caps POST request bodies; 0 means 1 MiB.
	MaxBodyBytes int64

	// MaxBatchQueries caps queries per batch request; 0 means 4096.
	MaxBatchQueries int

	// MaxSweepPoints caps the expanded grid size per sweep request; 0
	// means 256.
	MaxSweepPoints int

	// RequestTimeout bounds the wall-clock of one POST request's work; 0
	// means 30 s. Negative disables the bound.
	RequestTimeout time.Duration

	// PreheatRhos are traffic values whose Erlang tables are materialized
	// before the server reports ready; nil uses a small default set.
	PreheatRhos []float64

	// PreheatServers is the table depth to preheat; 0 means 1024.
	PreheatServers int
}

// DefaultPreheatRhos are the traffics warmed at startup: the paper's
// case-study loads and round decades a capacity-planning client is likely
// to probe first.
var DefaultPreheatRhos = []float64{1, 5, 10, 42.5, 50, 100, 120, 500, 1000}

// Server is the capacity-planning service: an http.Handler plus the
// long-lived state behind it (Erlang memo, sweep engine, metrics).
type Server struct {
	cfg      Config
	reg      *obs.Registry
	memo     *erlang.Memo
	engine   *sweep.Engine
	analytic *eval.Analytic
	sim      *eval.Sim
	routes   map[string]http.Handler
	ready    atomic.Bool
	bufs     sync.Pool // *respBuf

	sweepsRun *obs.Counter
	sweepPts  *obs.Counter
	plansRun  *obs.Counter
	planEvals *obs.Counter
}

type respBuf struct{ b []byte }

// New builds a ready-to-serve Server: routes registered and instrumented,
// Erlang tables preheated, sweep engine wired to the shared pool and
// cache. It returns an error only for an unbuildable pool.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxBatchQueries == 0 {
		cfg.MaxBatchQueries = 4096
	}
	if cfg.MaxSweepPoints == 0 {
		cfg.MaxSweepPoints = 256
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Pool == nil {
		p, err := pool.New(0)
		if err != nil {
			return nil, err
		}
		cfg.Pool = p
	}
	if cfg.PreheatRhos == nil {
		cfg.PreheatRhos = DefaultPreheatRhos
	}
	if cfg.PreheatServers == 0 {
		cfg.PreheatServers = 1024
	}

	// One analytic evaluator owns the Erlang memo, so the hot single-query
	// path and the placement planner share the same growing tables.
	analytic := eval.NewAnalytic(erlang.NewMemo(0, 0))
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		memo:     analytic.Memo(),
		analytic: analytic,
		engine:   sweep.NewEngine(cfg.Pool, cfg.Cache, cfg.Registry).Scoped("serve"),
		bufs:     sync.Pool{New: func() any { return &respBuf{b: make([]byte, 0, 256)} }},
	}
	s.sim = eval.NewSim(s.engine)
	s.reg.CounterFunc("serve/memo_hits", s.memo.Hits)
	s.reg.CounterFunc("serve/memo_misses", s.memo.Misses)
	s.reg.CounterFunc("serve/memo_fallbacks", s.memo.Fallbacks)
	s.reg.GaugeFunc("serve/memo_rhos", func() float64 { return float64(s.memo.Rhos()) })
	s.sweepsRun = s.reg.Counter("serve/sweeps_run")
	s.sweepPts = s.reg.Counter("serve/sweep_points")
	s.plansRun = s.reg.Counter("serve/plans_run")
	s.planEvals = s.reg.Counter("serve/plan_evaluations")
	cfg.Pool.Observe(s.reg)

	s.routes = map[string]http.Handler{
		"/v1/servers": s.route("servers", s.handleServers),
		"/v1/loss":    s.route("loss", s.handleLoss),
		"/v1/batch":   s.route("batch", s.handleBatch),
		"/v1/sweep":   s.route("sweep", s.handleSweep),
		"/v1/plan":    s.route("plan", s.handlePlan),
		"/healthz":    s.route("healthz", s.handleHealthz),
		"/readyz":     s.route("readyz", s.handleReadyz),
		"/metrics":    s.route("metrics", s.handleMetrics),
	}

	if err := s.memo.Preheat(cfg.PreheatRhos, cfg.PreheatServers); err != nil {
		return nil, err
	}
	s.ready.Store(true)
	return s, nil
}

// route instruments one handler under its metric name.
func (s *Server) route(name string, h http.HandlerFunc) http.Handler {
	return obs.InstrumentHandler(s.reg, name, h)
}

// Registry exposes the server's metric registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetReady flips the readiness probe — the draining hook: a server about
// to shut down turns unready first so load balancers stop routing to it
// while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// ServeHTTP routes by exact path. The route table is immutable after New,
// so the lookup is one map read — no pattern matching, no per-request
// allocation.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.routes[r.URL.Path]; ok {
		h.ServeHTTP(w, r)
		return
	}
	writeError(w, http.StatusNotFound, CodeNotFound, "no such endpoint: "+r.URL.Path)
}

// The hot GET endpoints dispatch on a constant rather than a method value:
// binding a method value per request would allocate a closure, and this
// path is pinned at zero allocations.
const (
	hotServers = iota
	hotLoss
)

// serveHot runs one zero-alloc GET answerer with a pooled buffer.
func (s *Server) serveHot(w http.ResponseWriter, r *http.Request, which int) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use GET")
		return
	}
	rb := s.bufs.Get().(*respBuf)
	var (
		out    []byte
		status int
	)
	switch which {
	case hotServers:
		out, status = s.answerServers(r.URL.RawQuery, rb.b[:0])
	default:
		out, status = s.answerLoss(r.URL.RawQuery, rb.b[:0])
	}
	writeResponse(w, status, out)
	rb.b = out[:0]
	s.bufs.Put(rb)
}

func (s *Server) handleServers(w http.ResponseWriter, r *http.Request) {
	s.serveHot(w, r, hotServers)
}

func (s *Server) handleLoss(w http.ResponseWriter, r *http.Request) {
	s.serveHot(w, r, hotLoss)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeResponse(w, http.StatusOK, []byte(`{"status":"ok"}`))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		writeResponse(w, http.StatusOK, []byte(`{"status":"ready"}`))
		return
	}
	writeResponse(w, http.StatusServiceUnavailable, []byte(`{"status":"draining"}`))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// requestCtx applies the configured per-request work bound.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// decodePost enforces method, body size and strict JSON decoding for the
// POST endpoints. It writes the error response itself when it fails.
func (s *Server) decodePost(w http.ResponseWriter, r *http.Request, decode func(*http.Request) error) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decode(r); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge, err.Error())
			return false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "decoding request body: "+err.Error())
		return false
	}
	return true
}

// writeRunError maps a batch/sweep execution error onto the structured
// shape: the client abandoning the request and the work bound expiring get
// their own codes; everything else is an internal failure.
func writeRunError(w http.ResponseWriter, reqCtx context.Context, err error) {
	switch {
	case reqCtx.Err() == context.Canceled || errors.Is(err, context.Canceled):
		writeError(w, statusCanceledClient, CodeCanceled, "request canceled: "+err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "request timed out: "+err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}
